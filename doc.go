// Package repro is a from-scratch Go reproduction of the foundational
// asynchronous approximate agreement system ("Asynchronous Approximate
// Agreement", PODC 1987): n message-passing parties, up to t faulty, with
// real-valued inputs, reaching ε-agreement inside the convex hull of the
// non-faulty inputs over a fully asynchronous network.
//
// The public API lives in repro/aa; the protocol family, the asynchronous
// network simulator, the adversary suite, and the experiment harness live
// under internal/. See README.md for a tour, DESIGN.md for the system
// inventory and proofs, and EXPERIMENTS.md for the measured reproduction of
// every evaluation table and figure.
//
// # Performance architecture
//
// Experiments execute on a parallel engine (internal/harness): each E*
// driver enumerates its independent (Spec, seed) simulation runs up front
// and submits them to a worker pool that fans them across GOMAXPROCS
// goroutines, aggregating results in deterministic index order — the
// rendered tables are byte-identical to a sequential execution at any
// worker count (cmd/aabench -parallel 1 forces the sequential path).
//
// The simulator's event queue is a bucketed calendar queue (internal/sim):
// a timing wheel of one-tick FIFO buckets over the near future, an
// overflow heap for far-future events, and a flat event arena recycled
// through a free list, so enqueue and dequeue are amortized O(1) per
// event instead of the binary heap's O(log M) — the difference that makes
// the E12 large-n sweeps (n up to 512, ~2.6M messages per run at the top)
// practical. The Run loop drains one virtual-time tick per batch and
// delivers dense ticks batched by destination: each party consumes its
// whole tick through one DeliverBatch call (sim.BatchProcess, with a
// per-envelope shim for processes that don't opt in), hot per-party
// simulator state lives in flat struct-of-arrays on the Network, and
// sends emitted mid-tick are deferred and flushed in trigger order so the
// batched loop's Seq and scheduler-rng streams are exactly the
// per-envelope loop's. The heap remains as the reference core behind
// sim.Config.Core (build default switchable with `-tags simheap`) and the
// per-envelope loop as the reference delivery mode behind
// sim.Config.Batch; equivalence tests pin event-for-event identical
// delivery traces and byte-identical experiment tables across both
// switches, and cmd/aabench -core / -batch benchmark them against each
// other.
//
// Within a batched tick the destination groups are independent work
// units, and internal/sim shards them: parties partition into S
// contiguous shards (sim.Config.Shards / harness.SetSharding / aabench
// -shards; auto picks min(GOMAXPROCS, n/128)) and S workers drain their
// shard's groups concurrently, each staging sends, timers, decisions,
// stats, and payload snapshots into worker-local state. A tick-end
// barrier merges the per-worker op lists by global trigger index and
// feeds the same stable trigger-ordered flush, so Seq assignment,
// scheduler-rng draws, and fate decisions replay the sequential streams
// exactly — experiment tables are byte-identical at every shard count,
// which is what makes the E12-XL sizes (n = 1024 and 4096, ~170M
// messages for one fault-free n=4096 run) tractable on multi-core
// hosts. Warm sharded runs keep the zero-allocation steady state: the
// worker fleet, its pend lists, and its payload arenas all recycle
// through Network.Reset.
//
// Adversary wiring is declarative: internal/scenario turns a scheduler, a
// fault composition, and a run shape into one registry-validated
// Spec ("skew+equivocate/n=64,t=9") that every experiment driver
// enumerates, aarun -scenario executes, and cmd/aafuzz round-trips —
// invalid combinations fail at spec time, never mid-run.
//
// The per-round protocol hot paths are allocation-free: reception views are
// assembled into per-party scratch buffers, sorted in place, and applied
// through the multiset package's trusted-sorted fast paths
// (multiset.ApplyInPlace), which skip both the defensive copy and the O(n)
// sortedness re-scan of the validating multiset.Func.Apply contract. The
// wire package offers append-style encoders (wire.AppendValue et al.) for
// buffer-reusing encode.
//
// Whole runs recycle too: every engine run executes on a pooled
// harness.RunContext whose simulator (sim.Network.Reset), protocol
// parties (core.*.Reset), and reliable-broadcast slabs
// (rbc.Broadcaster.Reset) are reset in place — provably equivalent to
// fresh construction, pinned by byte-identical experiment tables with
// recycling on and off — so a warm worker executes an entire
// scheduler×seed×n sweep with zero steady-state heap allocations on the
// reused-report path (testing.AllocsPerRun pins exactly 0 for the crash,
// trim, and witness protocols).
//
// # Crash recovery
//
// Every protocol party is a core.Snapshotter: Snapshot serializes its
// complete round state into a versioned internal/checkpoint envelope
// (magic, version, body, CRC — about 110 bytes for a mid-round crash
// party at n=9), Restore rolls the party back to exactly those bytes
// with typed rejection of corrupt, truncated, or cross-shape snapshots,
// and Rejoin re-announces the current round so peers catch the party
// up. The scenario axes "recover:k:down:lag" and "amnesia:k:down" drive
// the episode deterministically in the simulator — crash the last k
// fault slots, discard state newer than a lag-stale (or zero)
// checkpoint, rejoin after a darkness window — and internal/livenet
// runs the same episode on real goroutines under a restart supervisor
// (checkpoint and kill delivered on the party's own goroutine, down
// window, stale-inbox drain, Restore + Rejoin), soaked in CI under
// -race (`make recovery-soak`). The E14 sweep quantifies the recovery
// trade: fresh checkpoints reconverge on any repaired transport, stale
// and amnesiac restarts need the adaptive DECIDED re-announce over the
// reliable transport, and raw transport stalls when traffic lands in
// the darkness window. Snapshot/Restore round trips are
// allocation-free, so supervised warm runs keep the zero-alloc steady
// state.
//
// # Agreement as a service
//
// The internal/serve package multiplexes concurrent agreement requests
// over the pooled harness run contexts behind a robustness envelope:
// per-cohort circuit breakers, a token-bucket admission gate, and a
// bounded priority queue that evicts strictly-lower-priority work
// before shedding arrivals (guard order breaker, bucket, queue).
// Admitted requests carry a deadline into every attempt — in live mode
// it propagates down to livenet's per-send timeout — and failed
// attempts retry with exponential backoff, never past the deadline.
// Each request resolves to exactly one structured outcome (decided,
// shed, deadline-exceeded, breaker-open, degraded-partial) and both
// engines enforce the accounting identity Offered = Decided + Shed +
// DeadlineExceeded + BreakerOpen + Degraded, so overload can never
// leak an unaccounted request. Load comes from internal/workload:
// seeded request generators parsed from token specs covering arrival
// processes (poisson, burst), heavy-tailed service times (lognormal,
// pareto), deadline/priority cohorts, and disturbance windows, all
// deterministic per seed. Failing requests are auto-captured as
// internal/incident bundles with a printed replay one-liner. The E15
// sweep (cmd/aaserve, cmd/aabench) drives offered load from 0.5x to 4x
// saturation across clean/lossy/flaky fault mixes; the acceptance bar
// is graceful degradation — 4x goodput within 20% of the 1x plateau
// with every rejection attributed — and `make serve-soak` runs the
// wall-clock arm under -race in CI.
//
// # Record/replay workflow
//
// Every claim above about equivalence is also enforced by data: the
// internal/incident package defines a compact, versioned trace-bundle
// format capturing one run bit-for-bit — canonical scenario string, seed,
// protocol configuration, the per-send delivery log from sched.Recorder, a
// per-send content checksum, and a digest of the observable outcome
// (decisions, timing, message accounting, delivery-sequence hash). `aarun
// -record out.bundle` captures a run, `aarun -replay in.bundle`
// re-executes it and hard-fails on any divergence with the first divergent
// send sequence, and `aafuzz -artifacts DIR` automatically emits a bundle
// (plus its one-line replay command) for every violation it finds.
// Bundles encode at the lowest version that carries their data: v2 adds
// the drop/dup fate log for lossy runs, v3 adds per-party checkpoint
// digests for recovery runs, and fate-free bundles stay byte-identical
// to v1. The
// committed corpus under testdata/incidents/ replays in CI across both
// event cores, both delivery modes, and 1/8 workers (`make
// incident-replay`), so a schedule-equivalence regression anywhere in the
// stack surfaces with the episode name and the exact send where the
// execution first forked.
//
// PERF.md records the measured before/after numbers; the BENCH_*.json
// snapshots at the repo root (written by cmd/aabench -json, refreshed via
// `make bench`) carry the performance trajectory across PRs.
package repro
