// Package repro is a from-scratch Go reproduction of the foundational
// asynchronous approximate agreement system ("Asynchronous Approximate
// Agreement", PODC 1987): n message-passing parties, up to t faulty, with
// real-valued inputs, reaching ε-agreement inside the convex hull of the
// non-faulty inputs over a fully asynchronous network.
//
// The public API lives in repro/aa; the protocol family, the asynchronous
// network simulator, the adversary suite, and the experiment harness live
// under internal/. See README.md for a tour, DESIGN.md for the system
// inventory and proofs, and EXPERIMENTS.md for the measured reproduction of
// every evaluation table and figure.
package repro
