// Package aa is the public API of the asynchronous approximate-agreement
// library: n parties with real-valued inputs, up to t faulty, reach outputs
// within ε of each other inside the convex hull of the non-faulty inputs,
// over a fully asynchronous message-passing network.
//
// Three asynchronous protocols are offered, selected by Model:
//
//   - ModelCrash (n ≥ 2t+1): crash faults; provable per-round halving.
//   - ModelByzantineTrim (n ≥ 7t+1): Byzantine faults with quadratic
//     message complexity; provable per-round halving.
//   - ModelByzantineWitness (n ≥ 3t+1): Byzantine faults at optimal
//     resilience via reliable broadcast and the witness technique; cubic
//     message complexity.
//
// plus ModelSynchronous, a lock-step baseline for comparison.
//
// Use Simulate to run a protocol on the deterministic discrete-event
// simulator under a chosen adversary, or RunLive to run it on a real
// goroutine-per-party runtime with channel transports.
//
// Both runtimes can degrade the network — per-send Bernoulli loss and
// duplication, regional outages, and flapping parties (scenario axes
// "loss:P"/"dup:P"/"outage:k:start:len"/"flap:len" under Simulate,
// LiveOptions fields under RunLive) — and both can wrap every party in an
// ack/retransmit reliable transport (WithReliable / LiveOptions.Reliable)
// that heals the damage by retransmission. The Outcome's Dropped, Duped,
// and Retransmits counters report what the network did; a live timeout
// returns the partial Outcome alongside the error instead of discarding
// the progress.
package aa

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Model selects the protocol / fault model.
type Model int

// Models.
const (
	// ModelCrash tolerates t < n/2 crash faults.
	ModelCrash Model = iota + 1
	// ModelByzantineTrim tolerates t < n/7 Byzantine faults with O(n²)
	// messages per round.
	ModelByzantineTrim
	// ModelByzantineWitness tolerates t < n/3 Byzantine faults with O(n³)
	// messages per round.
	ModelByzantineWitness
	// ModelSynchronous is the lock-step baseline, t < n/3.
	ModelSynchronous
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelCrash:
		return "crash"
	case ModelByzantineTrim:
		return "byzantine-trim"
	case ModelByzantineWitness:
		return "byzantine-witness"
	case ModelSynchronous:
		return "synchronous"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// ErrUnknownModel is returned for an unrecognized Model.
var ErrUnknownModel = errors.New("aa: unknown model")

// Config describes one agreement instance. All parties must use identical
// configurations (the configuration is common knowledge, like the protocol
// itself).
type Config struct {
	// Model selects the protocol / fault model.
	Model Model
	// N is the number of parties, T the fault bound.
	N, T int
	// Epsilon is the agreement precision: honest outputs differ by at most
	// Epsilon.
	Epsilon float64
	// Lo and Hi promise a range containing every honest input; the round
	// count is derived from it. Required unless Adaptive is set.
	Lo, Hi float64
	// Adaptive lets the parties estimate the spread at runtime instead of
	// using [Lo, Hi]; cheaper when the real spread is far below the
	// promised range, but the termination guarantee becomes conditional on
	// scheduler fairness (see DESIGN.md).
	Adaptive bool
	// ExtraRounds adds safety rounds beyond the computed budget.
	ExtraRounds int
	// SyncRoundTicks is the lock-step round length for ModelSynchronous,
	// in simulator ticks. It must be at least the maximum network delay.
	SyncRoundTicks int64
}

// params converts the public configuration to the internal one.
func (c Config) params() (core.Params, error) {
	p := core.Params{
		N:             c.N,
		T:             c.T,
		Eps:           c.Epsilon,
		Lo:            c.Lo,
		Hi:            c.Hi,
		Adaptive:      c.Adaptive,
		ExtraRounds:   c.ExtraRounds,
		RoundDuration: sim.Time(c.SyncRoundTicks),
	}
	switch c.Model {
	case ModelCrash:
		p.Protocol = core.ProtoCrash
	case ModelByzantineTrim:
		p.Protocol = core.ProtoByzTrim
	case ModelByzantineWitness:
		p.Protocol = core.ProtoWitness
	case ModelSynchronous:
		p.Protocol = core.ProtoSync
	default:
		return p, fmt.Errorf("%w: %d", ErrUnknownModel, int(c.Model))
	}
	if p.Protocol == core.ProtoSync && p.RoundDuration == 0 {
		p.RoundDuration = 20
	}
	return p, p.Validate()
}

// Validate checks the configuration without running anything.
func (c Config) Validate() error {
	_, err := c.params()
	return err
}

// Rounds reports the round budget the configuration implies (0 for adaptive
// configurations, whose budget is input-dependent).
func (c Config) Rounds() (int, error) {
	p, err := c.params()
	if err != nil {
		return 0, err
	}
	if c.Adaptive {
		return 0, nil
	}
	return p.FixedRounds()
}

// MinN returns the smallest n supporting fault bound t under a model.
func MinN(m Model, t int) (int, error) {
	switch m {
	case ModelCrash:
		return core.MinN(core.ProtoCrash, t), nil
	case ModelByzantineTrim:
		return core.MinN(core.ProtoByzTrim, t), nil
	case ModelByzantineWitness:
		return core.MinN(core.ProtoWitness, t), nil
	case ModelSynchronous:
		return core.MinN(core.ProtoSync, t), nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrUnknownModel, int(m))
	}
}

// NewProcess builds the protocol state machine for one party with the given
// input. The returned process can be attached to the simulator or to the
// live runtime; advanced users can drive it over their own transport by
// implementing the internal process contract.
func NewProcess(c Config, input float64) (sim.Process, error) {
	p, err := c.params()
	if err != nil {
		return nil, err
	}
	switch p.Protocol {
	case core.ProtoCrash, core.ProtoByzTrim:
		return core.NewAsyncAA(p, input)
	case core.ProtoWitness:
		return core.NewWitnessAA(p, input)
	default:
		return core.NewSyncAA(p, input)
	}
}
