package aa

import (
	"errors"
	"testing"
)

func TestOutcomeSortedValues(t *testing.T) {
	out := &Outcome{Values: map[int]float64{2: 3.5, 0: 1.5, 1: 2.5}}
	got := out.SortedValues()
	want := []float64{1.5, 2.5, 3.5}
	if len(got) != len(want) {
		t.Fatalf("len %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sorted[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOutcomeOK(t *testing.T) {
	ok := &Outcome{Agreed: true, Valid: true}
	if !ok.OK() {
		t.Error("healthy outcome not OK")
	}
	for _, bad := range []*Outcome{
		{Agreed: false, Valid: true},
		{Agreed: true, Valid: false},
		{Agreed: true, Valid: true, Err: errors.New("stalled")},
	} {
		if bad.OK() {
			t.Errorf("bad outcome %+v reported OK", bad)
		}
	}
}

func TestVectorOutcomeOK(t *testing.T) {
	ok := &VectorOutcome{Agreed: true, Valid: true}
	if !ok.OK() {
		t.Error("healthy vector outcome not OK")
	}
	if (&VectorOutcome{Agreed: true, Valid: true, Err: errors.New("x")}).OK() {
		t.Error("erroring vector outcome reported OK")
	}
}
