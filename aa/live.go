package aa

import (
	"context"
	"math"
	"time"

	"repro/internal/livenet"
	"repro/internal/sim"
)

// LiveOptions tunes RunLive.
type LiveOptions struct {
	// MaxJitter is the maximum random per-message delivery delay
	// (default 2ms).
	MaxJitter time.Duration
	// Seed drives the jitter randomness.
	Seed int64
}

// RunLive executes the protocol on a real goroutine-per-party runtime with
// channel transports and jittered delivery, and returns the checked
// outcome. The context bounds the run; a generous timeout should be used
// since the runtime is only as fast as its timers.
func RunLive(ctx context.Context, c Config, inputs []float64, opts LiveOptions) (*Outcome, error) {
	procs := make([]sim.Process, len(inputs))
	for i, v := range inputs {
		p, err := NewProcess(c, v)
		if err != nil {
			return nil, err
		}
		procs[i] = p
	}
	res, err := livenet.Run(ctx, procs, livenet.Options{
		MaxJitter: opts.MaxJitter,
		Seed:      opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Values:   make(map[int]float64, len(res.Decisions)),
		Messages: int(res.Messages),
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range inputs {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	olo, ohi := math.Inf(1), math.Inf(-1)
	for id, v := range res.Decisions {
		out.Values[int(id)] = v
		olo, ohi = math.Min(olo, v), math.Max(ohi, v)
	}
	if len(res.Decisions) > 0 {
		out.Spread = ohi - olo
		tol := 1e-9 * math.Max(1, math.Max(math.Abs(lo), math.Abs(hi)))
		out.Valid = olo >= lo-tol && ohi <= hi+tol
		out.Agreed = out.Spread <= c.Epsilon+tol
	}
	return out, nil
}
