package aa

import (
	"context"
	"math"
	"time"

	"repro/internal/livenet"
	"repro/internal/sim"
)

// LiveOptions tunes RunLive.
type LiveOptions struct {
	// MaxJitter is the maximum random per-message delivery delay
	// (default 2ms).
	MaxJitter time.Duration
	// Seed drives the jitter randomness.
	Seed int64
	// Loss and Dup inject per-send Bernoulli message drop and duplication
	// (probabilities in [0, 1)), drawn from per-party seeded sources.
	Loss, Dup float64
	// FlapParties takes the first FlapParties parties dark for one window
	// apiece — sends to and from a dark party are dropped — after which
	// they resume with their state intact. FlapAfter/FlapStagger/FlapLen
	// shape the windows (defaults 50ms/50ms/100ms).
	FlapParties int
	FlapAfter   time.Duration
	FlapStagger time.Duration
	FlapLen     time.Duration
	// Reliable wraps every party in the ack/retransmit transport
	// (internal/relnet), which heals Loss and FlapParties drops by
	// retransmission; the raw transport degrades instead.
	Reliable bool
}

// RunLive executes the protocol on a real goroutine-per-party runtime with
// channel transports and jittered delivery, and returns the checked
// outcome. The context bounds the run; a generous timeout should be used
// since the runtime is only as fast as its timers.
//
// On timeout the returned error wraps the runtime's deadline failure but
// the Outcome still carries the partial progress — who decided, what was
// dropped, duplicated, and retransmitted — so a degraded run is
// observable, not just dead.
func RunLive(ctx context.Context, c Config, inputs []float64, opts LiveOptions) (*Outcome, error) {
	procs := make([]sim.Process, len(inputs))
	for i, v := range inputs {
		p, err := NewProcess(c, v)
		if err != nil {
			return nil, err
		}
		procs[i] = p
	}
	res, err := livenet.Run(ctx, procs, livenet.Options{
		MaxJitter:   opts.MaxJitter,
		Seed:        opts.Seed,
		Loss:        opts.Loss,
		Dup:         opts.Dup,
		FlapParties: opts.FlapParties,
		FlapAfter:   opts.FlapAfter,
		FlapStagger: opts.FlapStagger,
		FlapLen:     opts.FlapLen,
		Reliable:    opts.Reliable,
	})
	if res == nil {
		return nil, err
	}
	out := &Outcome{
		Values:      make(map[int]float64, len(res.Decisions)),
		Messages:    int(res.Messages),
		Dropped:     int(res.Dropped),
		Duped:       int(res.Duped),
		Retransmits: int(res.Transport.Retransmits),
		Err:         err,
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range inputs {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	olo, ohi := math.Inf(1), math.Inf(-1)
	for id, v := range res.Decisions {
		out.Values[int(id)] = v
		olo, ohi = math.Min(olo, v), math.Max(ohi, v)
	}
	if len(res.Decisions) > 0 {
		out.Spread = ohi - olo
		tol := 1e-9 * math.Max(1, math.Max(math.Abs(lo), math.Abs(hi)))
		out.Valid = olo >= lo-tol && ohi <= hi+tol
		out.Agreed = out.Spread <= c.Epsilon+tol
	}
	return out, err
}
