package aa

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Model: ModelCrash, N: 5, T: 2, Epsilon: 0.01, Lo: 0, Hi: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero model", Config{N: 5, T: 2, Epsilon: 0.01, Hi: 1}},
		{"bad model", Config{Model: Model(99), N: 5, T: 2, Epsilon: 0.01, Hi: 1}},
		{"crash resilience", Config{Model: ModelCrash, N: 4, T: 2, Epsilon: 0.01, Hi: 1}},
		{"trim resilience", Config{Model: ModelByzantineTrim, N: 7, T: 1, Epsilon: 0.01, Hi: 1}},
		{"witness resilience", Config{Model: ModelByzantineWitness, N: 3, T: 1, Epsilon: 0.01, Hi: 1}},
		{"zero epsilon", Config{Model: ModelCrash, N: 5, T: 2, Hi: 1}},
		{"negative epsilon", Config{Model: ModelCrash, N: 5, T: 2, Epsilon: -1, Hi: 1}},
		{"inverted range", Config{Model: ModelCrash, N: 5, T: 2, Epsilon: 0.01, Lo: 2, Hi: 1}},
		{"nan range", Config{Model: ModelCrash, N: 5, T: 2, Epsilon: 0.01, Lo: math.NaN(), Hi: 1}},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
		}
	}
}

func TestMinN(t *testing.T) {
	cases := []struct {
		model Model
		t     int
		want  int
	}{
		{ModelCrash, 0, 1},
		{ModelCrash, 3, 7},
		{ModelByzantineTrim, 1, 8},
		{ModelByzantineTrim, 2, 15},
		{ModelByzantineWitness, 1, 4},
		{ModelByzantineWitness, 3, 10},
		{ModelSynchronous, 2, 7},
	}
	for _, c := range cases {
		got, err := MinN(c.model, c.t)
		if err != nil {
			t.Fatalf("MinN(%v, %d): %v", c.model, c.t, err)
		}
		if got != c.want {
			t.Errorf("MinN(%v, %d) = %d, want %d", c.model, c.t, got, c.want)
		}
	}
	if _, err := MinN(Model(0), 1); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("MinN with bad model: got %v, want ErrUnknownModel", err)
	}
}

func TestConfigRounds(t *testing.T) {
	c := Config{Model: ModelCrash, N: 5, T: 2, Epsilon: 1.0 / 1024, Lo: 0, Hi: 1}
	r, err := c.Rounds()
	if err != nil {
		t.Fatal(err)
	}
	if r != 10 {
		t.Errorf("Rounds() = %d, want 10 (log2(1024) halvings)", r)
	}
	adaptive := Config{Model: ModelCrash, N: 5, T: 2, Epsilon: 0.01, Adaptive: true}
	r, err = adaptive.Rounds()
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("adaptive Rounds() = %d, want 0 (input-dependent)", r)
	}
}

func TestSimulateEveryModel(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"crash", Config{Model: ModelCrash, N: 7, T: 3, Epsilon: 1e-3, Lo: 0, Hi: 10}},
		{"byz-trim", Config{Model: ModelByzantineTrim, N: 8, T: 1, Epsilon: 1e-3, Lo: 0, Hi: 10}},
		{"byz-witness", Config{Model: ModelByzantineWitness, N: 7, T: 2, Epsilon: 1e-3, Lo: 0, Hi: 10}},
		{"synchronous", Config{Model: ModelSynchronous, N: 7, T: 2, Epsilon: 1e-3, Lo: 0, Hi: 10, SyncRoundTicks: 20}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			inputs := make([]float64, c.cfg.N)
			for i := range inputs {
				inputs[i] = 10 * float64(i) / float64(c.cfg.N-1)
			}
			sched := SchedRandom
			if c.cfg.Model == ModelSynchronous {
				sched = SchedSynchronous
			}
			out, err := Simulate(c.cfg, inputs, WithSeed(3), WithScheduler(sched))
			if err != nil {
				t.Fatal(err)
			}
			if !out.OK() {
				t.Fatalf("outcome not OK: spread=%v agreed=%v valid=%v err=%v",
					out.Spread, out.Agreed, out.Valid, out.Err)
			}
			if len(out.Values) != c.cfg.N {
				t.Errorf("got %d decisions, want %d", len(out.Values), c.cfg.N)
			}
			if out.Messages == 0 || out.Bytes == 0 {
				t.Error("no traffic recorded")
			}
		})
	}
}

func TestSimulateWithFaults(t *testing.T) {
	cfg := Config{Model: ModelByzantineWitness, N: 10, T: 3, Epsilon: 1e-3, Lo: -5, Hi: 5}
	inputs := make([]float64, 10)
	for i := range inputs {
		inputs[i] = -5 + float64(i)
	}
	out, err := Simulate(cfg, inputs,
		WithSeed(11),
		WithScheduler(SchedSplitViews),
		WithByzantine(0, ByzEquivocate),
		WithByzantine(4, ByzExtreme),
		WithByzantine(9, ByzSpam),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("outcome not OK under byzantine attack: spread=%v valid=%v err=%v",
			out.Spread, out.Valid, out.Err)
	}
}

func TestSimulateCrashFaults(t *testing.T) {
	cfg := Config{Model: ModelCrash, N: 9, T: 4, Epsilon: 1e-3, Lo: 0, Hi: 1}
	inputs := make([]float64, 9)
	for i := range inputs {
		inputs[i] = float64(i) / 8
	}
	out, err := Simulate(cfg, inputs,
		WithScheduler(SchedSkew),
		WithCrash(0, 3),  // dies mid-first-multicast
		WithCrash(1, 30), // dies a few rounds in
		WithCrash(2, 0),  // never sends anything
		WithCrash(3, 100),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("outcome not OK with 4 crashes: %+v", out)
	}
}

func TestSimulateOptionErrors(t *testing.T) {
	cfg := Config{Model: ModelCrash, N: 3, T: 1, Epsilon: 0.1, Lo: 0, Hi: 1}
	inputs := []float64{0, 0.5, 1}
	if _, err := Simulate(cfg, inputs, WithScheduler("warp")); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if _, err := Simulate(cfg, inputs, WithByzantine(0, "gremlin")); err == nil {
		t.Error("unknown behavior accepted")
	}
	if _, err := Simulate(cfg, inputs[:2]); err == nil {
		t.Error("wrong input count accepted")
	}
}

func TestSimulateDeterminism(t *testing.T) {
	cfg := Config{Model: ModelCrash, N: 7, T: 3, Epsilon: 1e-6, Lo: 0, Hi: 100}
	inputs := []float64{3, 14, 15, 92, 65, 35, 89}
	a, err := Simulate(cfg, inputs, WithSeed(5), WithScheduler(SchedRandom))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg, inputs, WithSeed(5), WithScheduler(SchedRandom))
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range a.Values {
		if b.Values[id] != v {
			t.Fatalf("nondeterministic: party %d got %v then %v", id, v, b.Values[id])
		}
	}
	if a.Messages != b.Messages || a.Rounds != b.Rounds {
		t.Errorf("nondeterministic stats: %+v vs %+v", a, b)
	}
}

func TestRunLive(t *testing.T) {
	cfg := Config{Model: ModelCrash, N: 5, T: 2, Epsilon: 1e-3, Lo: 0, Hi: 1}
	inputs := []float64{0, 0.25, 0.5, 0.75, 1}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := RunLive(ctx, cfg, inputs, LiveOptions{MaxJitter: 500 * time.Microsecond, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("live run not OK: spread=%v valid=%v", out.Spread, out.Valid)
	}
	if len(out.Values) != 5 {
		t.Errorf("got %d decisions, want 5", len(out.Values))
	}
}

func TestSimulateReliableSurvivesLoss(t *testing.T) {
	// The raw transport stalls under sustained loss; WithReliable heals it
	// by retransmission — the E13 resilience claim through the public API.
	cfg := Config{Model: ModelCrash, N: 16, T: 3, Epsilon: 1e-2, Lo: 0, Hi: 100}
	inputs := make([]float64, 16)
	for i := range inputs {
		inputs[i] = float64(i) * 100 / 15
	}
	const scen = "random+loss:0.1/n=16,t=3"
	raw, err := Simulate(cfg, inputs, WithSeed(7), WithScenario(scen), WithMaxEvents(20_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if raw.OK() {
		t.Fatal("raw transport converged under 10% loss; loss axis not applied?")
	}
	rel, err := Simulate(cfg, inputs, WithSeed(7), WithScenario(scen), WithMaxEvents(20_000_000), WithReliable())
	if err != nil {
		t.Fatal(err)
	}
	if !rel.OK() {
		t.Fatalf("reliable transport failed under 10%% loss: %+v", rel.Err)
	}
	if rel.Dropped == 0 {
		t.Error("loss axis dropped nothing")
	}
	if rel.Retransmits == 0 {
		t.Error("reliable transport never retransmitted under loss")
	}
}

func TestRunLivePartialOutcomeOnTimeout(t *testing.T) {
	cfg := Config{Model: ModelCrash, N: 5, T: 2, Epsilon: 1e-3, Lo: 0, Hi: 1}
	inputs := []float64{0, 0.25, 0.5, 0.75, 1}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	// 60% raw loss cannot converge: the timeout must surface the partial
	// outcome (drop counters, any decisions) alongside the error.
	out, err := RunLive(ctx, cfg, inputs, LiveOptions{Seed: 9, Loss: 0.6})
	if err == nil {
		t.Fatal("expected a timeout error under 60% raw loss")
	}
	if out == nil {
		t.Fatal("timeout discarded the partial outcome")
	}
	if out.Dropped == 0 {
		t.Error("loss injection dropped nothing")
	}
	if !errors.Is(out.Err, err) && out.Err == nil {
		t.Error("partial outcome does not carry the error")
	}
}

func TestModelString(t *testing.T) {
	for m, want := range map[Model]string{
		ModelCrash:            "crash",
		ModelByzantineTrim:    "byzantine-trim",
		ModelByzantineWitness: "byzantine-witness",
		ModelSynchronous:      "synchronous",
		Model(42):             "model(42)",
	} {
		if got := m.String(); got != want {
			t.Errorf("Model(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}
