package aa

import (
	"fmt"
	"math"
	"sort"
)

// QuantizedOutcome is the result of SimulateQuantized: continuous
// ε-agreement post-processed onto the discrete grid {k·Step}, after which
// the honest outputs take at most two values, and those two are adjacent
// grid points. Two-valued outputs are what discrete follow-up machinery
// (terminating broadcasts, voting, edge agreement) needs — this adapter is
// the classical bridge from approximate to discrete agreement.
type QuantizedOutcome struct {
	// Values maps party index to its grid output (an exact multiple of
	// Step, up to float representation).
	Values map[int]float64
	// Levels holds the distinct grid values among non-faulty outputs,
	// ascending; len(Levels) <= 2 and adjacent when the run succeeded.
	Levels []float64
	// Step is the grid pitch used.
	Step float64
	// TwoValued reports the discrete guarantee: at most two levels, one
	// step apart.
	TwoValued bool
	// Valid reports that every grid output is within Step of the
	// non-Byzantine input hull (rounding may leave the hull by at most
	// half a step; that slack is inherent to quantization).
	Valid bool
	// Continuous is the underlying continuous outcome.
	Continuous *Outcome
}

// OK reports full success.
func (q *QuantizedOutcome) OK() bool {
	return q.Continuous.Err == nil && q.TwoValued && q.Valid
}

// SimulateQuantized runs the protocol with internal precision Step/2 and
// rounds every output to the nearest multiple of Step (ties toward zero).
// If the continuous run achieves Step/2-agreement, the rounded outputs can
// straddle at most one grid boundary: at most two distinct values, one
// step apart.
func SimulateQuantized(c Config, step float64, inputs []float64, opts ...SimOption) (*QuantizedOutcome, error) {
	if !(step > 0) || math.IsInf(step, 0) {
		return nil, fmt.Errorf("aa: quantize step %v", step)
	}
	inner := c
	inner.Epsilon = step / 2
	cont, err := Simulate(inner, inputs, opts...)
	if err != nil {
		return nil, err
	}
	q := &QuantizedOutcome{
		Values:     make(map[int]float64, len(cont.Values)),
		Step:       step,
		Continuous: cont,
	}
	levels := map[float64]bool{}
	for id, y := range cont.Values {
		g := roundToGrid(y, step)
		q.Values[id] = g
		levels[g] = true
	}
	for l := range levels {
		q.Levels = append(q.Levels, l)
	}
	sort.Float64s(q.Levels)
	switch len(q.Levels) {
	case 0, 1:
		q.TwoValued = cont.Err == nil && cont.Agreed
	case 2:
		q.TwoValued = cont.Agreed &&
			math.Abs((q.Levels[1]-q.Levels[0])-step) <= 1e-9*math.Max(1, step)
	default:
		q.TwoValued = false
	}
	// Grid validity: within half a step of the continuous outputs, which
	// are themselves inside the hull when the continuous run was valid.
	q.Valid = cont.Valid
	for id, g := range q.Values {
		if math.Abs(g-cont.Values[id]) > step/2+1e-9*math.Max(1, step) {
			q.Valid = false
		}
	}
	return q, nil
}

// roundToGrid rounds v to the nearest multiple of step, ties toward zero.
func roundToGrid(v, step float64) float64 {
	k := v / step
	f := math.Floor(k)
	frac := k - f
	switch {
	case frac > 0.5:
		f++
	case frac == 0.5 && k < 0:
		f++ // toward zero for negative values
	}
	return f * step
}
