package aa_test

import (
	"fmt"
	"log"

	"repro/aa"
)

// ExampleSimulate runs five parties with two crash faults under an
// adversarial scheduler and prints the checked outcome.
func ExampleSimulate() {
	cfg := aa.Config{
		Model:   aa.ModelCrash,
		N:       5,
		T:       2,
		Epsilon: 0.01,
		Lo:      0,
		Hi:      10,
	}
	out, err := aa.Simulate(cfg, []float64{0, 2.5, 5, 7.5, 10},
		aa.WithSeed(7),
		aa.WithScheduler(aa.SchedSplitViews),
		aa.WithCrash(0, 3),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agreed=%v valid=%v spread<=eps: %v\n", out.Agreed, out.Valid, out.Spread <= cfg.Epsilon)
	// Output: agreed=true valid=true spread<=eps: true
}

// ExampleSimulate_byzantine shows the optimal-resilience witness protocol
// neutralizing an equivocating party.
func ExampleSimulate_byzantine() {
	cfg := aa.Config{
		Model:   aa.ModelByzantineWitness,
		N:       4,
		T:       1,
		Epsilon: 0.05,
		Lo:      0,
		Hi:      1,
	}
	out, err := aa.Simulate(cfg, []float64{0.1, 0.9, 0.4, 0}, // party 3's entry ignored
		aa.WithSeed(2),
		aa.WithByzantine(3, aa.ByzEquivocate),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("honest outputs agree: %v, inside [0.1, 0.9]: %v\n", out.Agreed, out.Valid)
	// Output: honest outputs agree: true, inside [0.1, 0.9]: true
}

// ExampleConfig_Rounds shows the logarithmic round budget.
func ExampleConfig_Rounds() {
	cfg := aa.Config{Model: aa.ModelCrash, N: 5, T: 2, Epsilon: 1.0 / 1024, Lo: 0, Hi: 1}
	r, err := cfg.Rounds()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d halvings bring spread 1 below 1/1024\n", r)
	// Output: 10 halvings bring spread 1 below 1/1024
}

// ExampleSimulateQuantized demonstrates the bridge from continuous
// ε-agreement to at most two adjacent discrete grid values.
func ExampleSimulateQuantized() {
	cfg := aa.Config{Model: aa.ModelCrash, N: 5, T: 2, Epsilon: 0.1, Lo: 0, Hi: 100}
	out, err := aa.SimulateQuantized(cfg, 0.5, []float64{10, 20, 30, 40, 50}, aa.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid levels: %d (two-valued: %v)\n", len(out.Levels), out.TwoValued)
	// Output: grid levels: 1 (two-valued: true)
}

// ExampleMinN reports the resilience thresholds of the protocol family.
func ExampleMinN() {
	for _, m := range []aa.Model{aa.ModelCrash, aa.ModelByzantineTrim, aa.ModelByzantineWitness} {
		n, err := aa.MinN(m, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s tolerates t=2 from n=%d\n", m, n)
	}
	// Output:
	// crash tolerates t=2 from n=5
	// byzantine-trim tolerates t=2 from n=15
	// byzantine-witness tolerates t=2 from n=7
}
