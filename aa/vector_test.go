package aa

import (
	"testing"
)

func TestSimulateVector2D(t *testing.T) {
	cfg := Config{Model: ModelCrash, N: 7, T: 3, Epsilon: 1e-3, Lo: -10, Hi: 10}
	inputs := [][]float64{
		{-10, 3}, {-5, -7}, {0, 10}, {2, 2}, {5, -10}, {8, 0}, {10, 6},
	}
	out, err := SimulateVector(cfg, inputs,
		WithSeed(3),
		WithScheduler(SchedSplitViews),
		WithCrash(0, 10),
		WithCrash(1, 40),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("vector run failed: spread=%v valid=%v err=%v", out.MaxSpread, out.Valid, out.Err)
	}
	for id, pt := range out.Points {
		if len(pt) != 2 {
			t.Fatalf("party %d point %v", id, pt)
		}
	}
}

func TestSimulateVectorByzantine(t *testing.T) {
	cfg := Config{Model: ModelByzantineWitness, N: 7, T: 2, Epsilon: 1e-2, Lo: 0, Hi: 1}
	inputs := make([][]float64, 7)
	for i := range inputs {
		f := float64(i) / 6
		inputs[i] = []float64{f, 1 - f, 0.5}
	}
	out, err := SimulateVector(cfg, inputs,
		WithSeed(7),
		WithByzantine(0, ByzEquivocate),
		WithByzantine(3, ByzExtreme),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("byzantine vector run failed: spread=%v valid=%v err=%v",
			out.MaxSpread, out.Valid, out.Err)
	}
	if len(out.Points) != 5 {
		t.Errorf("got %d honest points, want 5", len(out.Points))
	}
}

func TestSimulateVectorValidation(t *testing.T) {
	cfg := Config{Model: ModelCrash, N: 3, T: 1, Epsilon: 0.1, Lo: 0, Hi: 1}
	ok := [][]float64{{0, 0}, {1, 1}, {0.5, 0.5}}
	if _, err := SimulateVector(cfg, ok[:2]); err == nil {
		t.Error("wrong point count accepted")
	}
	ragged := [][]float64{{0, 0}, {1}, {0.5, 0.5}}
	if _, err := SimulateVector(cfg, ragged); err == nil {
		t.Error("ragged dimensions accepted")
	}
	sync := cfg
	sync.Model = ModelSynchronous
	if _, err := SimulateVector(sync, ok); err == nil {
		t.Error("synchronous vector accepted")
	}
	if _, err := SimulateVector(cfg, ok, WithCrash(0, 1), WithCrash(1, 1)); err == nil {
		t.Error("overfaulted vector spec accepted")
	}
}

func TestSimulateVectorDeterminism(t *testing.T) {
	cfg := Config{Model: ModelCrash, N: 5, T: 2, Epsilon: 1e-4, Lo: 0, Hi: 1}
	inputs := [][]float64{{0, 1}, {0.2, 0.8}, {0.4, 0.6}, {0.6, 0.4}, {1, 0}}
	a, err := SimulateVector(cfg, inputs, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateVector(cfg, inputs, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for id, pt := range a.Points {
		for d := range pt {
			if b.Points[id][d] != pt[d] {
				t.Fatalf("nondeterministic vector outcome at party %d dim %d", id, d)
			}
		}
	}
}
