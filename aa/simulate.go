package aa

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Outcome is the checked result of a simulated or live execution.
type Outcome struct {
	// Values maps party index to its output, for every party that decided.
	Values map[int]float64
	// Spread is the diameter of the non-faulty outputs.
	Spread float64
	// Agreed reports Spread <= Epsilon.
	Agreed bool
	// Valid reports every non-faulty output inside the non-Byzantine
	// input hull.
	Valid bool
	// Rounds is the asynchronous round complexity of the execution (time
	// of last output over maximum honest delay); zero for live runs.
	Rounds float64
	// Messages and Bytes count everything sent during the run.
	Messages, Bytes int
	// Dropped and Duped count messages the network's loss/duplication
	// axes removed or repeated; zero unless the run injected them.
	Dropped, Duped int
	// Retransmits counts reliable-transport retransmissions; zero unless
	// the run used the reliable transport (WithReliable / LiveOptions).
	Retransmits int
	// Err carries a liveness failure (stall / event-budget / timeout), if
	// any. A live timeout still fills the rest of the Outcome with the
	// partial progress made before the deadline.
	Err error
}

// OK reports full success: live, valid, and ε-agreed.
func (o *Outcome) OK() bool { return o.Err == nil && o.Agreed && o.Valid }

// SortedValues returns the decided values in ascending order.
func (o *Outcome) SortedValues() []float64 {
	out := make([]float64, 0, len(o.Values))
	for _, v := range o.Values {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// Scheduler names accepted by WithScheduler.
const (
	SchedSynchronous = "sync"
	SchedRandom      = "random"
	SchedSkew        = "skew"
	SchedPartition   = "partition"
	SchedSplitViews  = "splitviews"
	SchedStaggered   = "staggered"
)

// Behavior names accepted by WithByzantine.
const (
	ByzSilent     = "silent"
	ByzExtreme    = "extreme"
	ByzEquivocate = "equivocate"
	ByzSpam       = "spam"
	ByzAmplifier  = "amplifier"
)

type simSettings struct {
	seed      int64
	scheduler string
	crashes   []sim.CrashPlan
	byz       map[sim.PartyID]fault.Behavior
	maxEvents int
	scenario  *scenario.Spec
	reliable  bool
}

// SimOption customizes Simulate.
type SimOption func(*simSettings) error

// WithSeed fixes the run's randomness (default 1).
func WithSeed(seed int64) SimOption {
	return func(s *simSettings) error {
		s.seed = seed
		return nil
	}
}

// WithScheduler picks the adversarial scheduler by name (default
// SchedRandom).
func WithScheduler(name string) SimOption {
	return func(s *simSettings) error {
		switch name {
		case SchedSynchronous, SchedRandom, SchedSkew, SchedPartition, SchedSplitViews, SchedStaggered:
			s.scheduler = name
			return nil
		default:
			return fmt.Errorf("aa: unknown scheduler %q", name)
		}
	}
}

// WithCrash makes a party crash after it has performed the given number of
// point-to-point sends (a multicast counts as n sends, so a crash can
// truncate one part-way).
func WithCrash(party, afterSends int) SimOption {
	return func(s *simSettings) error {
		s.crashes = append(s.crashes, sim.CrashPlan{
			Party:      sim.PartyID(party),
			AfterSends: afterSends,
		})
		return nil
	}
}

// WithByzantine replaces a party with the named adversarial behavior.
func WithByzantine(party int, behavior string) SimOption {
	return func(s *simSettings) error {
		b, err := behaviorByName(behavior)
		if err != nil {
			return err
		}
		if s.byz == nil {
			s.byz = make(map[sim.PartyID]fault.Behavior)
		}
		s.byz[sim.PartyID(party)] = b
		return nil
	}
}

// WithMaxEvents overrides the simulator's runaway-execution budget.
func WithMaxEvents(n int) SimOption {
	return func(s *simSettings) error {
		s.maxEvents = n
		return nil
	}
}

// WithReliable wraps every honest party in the ack/retransmit transport
// (internal/relnet): sequence-numbered frames, exponential-backoff
// retransmission, and receive-side dedup. This is what lets a run survive
// the lossy scenario axes ("loss:P", "outage:…", "flap:…") that stall the
// raw transport; without those axes it only adds framing overhead.
func WithReliable() SimOption {
	return func(s *simSettings) error {
		s.reliable = true
		return nil
	}
}

// WithScenario configures the adversary from a declarative scenario spec
// string — scheduler, crash plans, and Byzantine assignments in one value,
// e.g. "skew+equivocate/n=64,t=9" (see internal/scenario for the registry
// and grammar). The spec's n must match the config's N; a spec that omits
// t inherits the protocol's fault bound. It overrides WithScheduler,
// WithCrash, and WithByzantine.
func WithScenario(raw string) SimOption {
	return func(s *simSettings) error {
		spec, err := scenario.Parse(raw)
		if err != nil {
			return err
		}
		s.scenario = &spec
		return nil
	}
}

// ScenarioShape parses a scenario spec string and reports the run shape it
// demands: the party count, and the fault-slot count or -1 when the spec
// leaves t to the protocol. cmd/aarun uses it to derive its -n/-t defaults
// before building the Config.
func ScenarioShape(raw string) (n, t int, err error) {
	spec, err := scenario.Parse(raw)
	if err != nil {
		return 0, 0, err
	}
	return spec.N, spec.T, nil
}

func behaviorByName(name string) (fault.Behavior, error) {
	switch name {
	case ByzSilent:
		return fault.Silent{}, nil
	case ByzExtreme:
		return fault.Extreme{Value: 1e9}, nil
	case ByzEquivocate:
		return fault.Equivocate{Stretch: 2}, nil
	case ByzSpam:
		return fault.Spam{}, nil
	case ByzAmplifier:
		return fault.Amplifier{Push: 1}, nil
	default:
		return nil, fmt.Errorf("aa: unknown byzantine behavior %q", name)
	}
}

func schedulerByName(name string, n, t int) sched.Named {
	half := sim.PartyID(n / 2)
	switch name {
	case SchedSynchronous:
		return sched.Named{Name: name, Scheduler: sched.NewSynchronous(10)}
	case SchedSkew:
		victims := make([]sim.PartyID, 0, t)
		for i := 0; i < t; i++ {
			victims = append(victims, sim.PartyID(i))
		}
		return sched.Named{Name: name, Scheduler: sched.NewSkew(victims, 1, 10)}
	case SchedPartition:
		return sched.Named{Name: name, Scheduler: &sched.Partition{Boundary: half, Within: 1, Across: 10}}
	case SchedSplitViews:
		return sched.Named{Name: name, Scheduler: &sched.SplitViews{Boundary: half, Fast: 1, Slow: 10}}
	case SchedStaggered:
		return sched.Named{Name: name, Scheduler: &sched.Staggered{Base: 1, Step: 2}}
	default:
		return sched.Named{Name: SchedRandom, Scheduler: &sched.UniformRandom{Min: 1, Max: 10}}
	}
}

// Simulate runs one execution on the deterministic discrete-event simulator
// and checks the agreement and validity invariants. inputs must hold one
// value per party (entries for Byzantine parties are ignored).
//
// Repeated calls are cheap: the execution runs on a recycled harness run
// context (simulator, protocol state, and broadcast slabs are reset in
// place rather than rebuilt), so parameter sweeps over Simulate pay
// steady-state construction costs near zero. Results are identical to
// fresh construction — the outcome is a pure function of the Config,
// inputs, and options.
func Simulate(c Config, inputs []float64, opts ...SimOption) (*Outcome, error) {
	p, err := c.params()
	if err != nil {
		return nil, err
	}
	settings := simSettings{seed: 1, scheduler: SchedRandom}
	for _, opt := range opts {
		if err := opt(&settings); err != nil {
			return nil, err
		}
	}
	// A scenario fully replaces the flag-style scheduler/crash/byz wiring;
	// only one of the two specs is ever built.
	var spec harness.Spec
	if settings.scenario != nil {
		if settings.scenario.N != c.N {
			return nil, fmt.Errorf("aa: scenario is for n=%d but config has N=%d", settings.scenario.N, c.N)
		}
		spec, err = harness.SpecFrom(p, inputs, *settings.scenario, settings.seed)
		if err != nil {
			return nil, err
		}
		spec.MaxEvents = settings.maxEvents
	} else {
		spec = harness.Spec{
			Params:    p,
			Inputs:    inputs,
			Scheduler: schedulerByName(settings.scheduler, c.N, c.T),
			Crashes:   settings.crashes,
			Byz:       settings.byz,
			Seed:      settings.seed,
			MaxEvents: settings.maxEvents,
		}
	}
	spec.Reliable = settings.reliable
	rep, err := harness.Run(spec)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Values:   make(map[int]float64, len(rep.Result.Decisions)),
		Spread:   rep.FinalSpread,
		Agreed:   rep.AgreementOK,
		Valid:    rep.ValidityOK,
		Rounds:   rep.Result.Rounds(),
		Messages: rep.Result.Stats.MessagesSent,
		Bytes:    rep.Result.Stats.BytesSent,
		Dropped:  int(rep.Result.Stats.MessagesDropped),
		Duped:    int(rep.Result.Stats.MessagesDuped),
	}
	out.Retransmits = int(rep.Transport.Retransmits)
	out.Err = rep.RunErr
	if out.Err == nil && len(rep.ProtoErrs) > 0 {
		out.Err = rep.ProtoErrs[0]
	}
	for id, v := range rep.Result.Decisions {
		out.Values[int(id)] = v
	}
	return out, nil
}
