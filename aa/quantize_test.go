package aa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSimulateQuantizedTwoValued(t *testing.T) {
	cfg := Config{Model: ModelCrash, N: 9, T: 4, Epsilon: 0.1, Lo: 0, Hi: 100}
	for seed := int64(1); seed <= 20; seed++ {
		inputs := make([]float64, 9)
		for i := range inputs {
			inputs[i] = float64((i*37+int(seed)*13)%101) * 100 / 100
		}
		out, err := SimulateQuantized(cfg, 0.1, inputs,
			WithSeed(seed), WithScheduler(SchedSplitViews), WithCrash(0, 7))
		if err != nil {
			t.Fatal(err)
		}
		if !out.OK() {
			t.Fatalf("seed %d: quantized run failed: levels=%v valid=%v err=%v",
				seed, out.Levels, out.Valid, out.Continuous.Err)
		}
		if len(out.Levels) > 2 {
			t.Fatalf("seed %d: %d levels", seed, len(out.Levels))
		}
		if len(out.Levels) == 2 {
			gap := out.Levels[1] - out.Levels[0]
			if math.Abs(gap-0.1) > 1e-9 {
				t.Fatalf("seed %d: levels %v not adjacent", seed, out.Levels)
			}
		}
		for id, g := range out.Values {
			k := math.Round(g / 0.1)
			if math.Abs(g-k*0.1) > 1e-9 {
				t.Fatalf("seed %d party %d: %v not on grid", seed, id, g)
			}
		}
	}
}

func TestSimulateQuantizedBadStep(t *testing.T) {
	cfg := Config{Model: ModelCrash, N: 3, T: 1, Epsilon: 0.1, Lo: 0, Hi: 1}
	inputs := []float64{0, 0.5, 1}
	for _, step := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := SimulateQuantized(cfg, step, inputs); err == nil {
			t.Errorf("step %v accepted", step)
		}
	}
}

func TestRoundToGrid(t *testing.T) {
	cases := []struct{ v, step, want float64 }{
		{0.24, 0.1, 0.2},
		{0.26, 0.1, 0.3},
		{-0.26, 0.1, -0.3},
		{0, 0.1, 0},
		{5, 1, 5},
		{-0.05, 0.1, 0}, // tie toward zero
		{0.05, 0.1, 0},  // tie toward zero
	}
	for _, c := range cases {
		if got := roundToGrid(c.v, c.step); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("roundToGrid(%v, %v) = %v, want %v", c.v, c.step, got, c.want)
		}
	}
}

// Property: rounding never moves a value by more than half a step, and the
// result is always on the grid.
func TestRoundToGridProperty(t *testing.T) {
	f := func(raw float64, stepRaw uint16) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		v := math.Mod(raw, 1e6)
		step := 0.001 + float64(stepRaw%1000)/100
		g := roundToGrid(v, step)
		if math.Abs(g-v) > step/2+1e-9 {
			return false
		}
		k := math.Round(g / step)
		return math.Abs(g-k*step) <= 1e-6*step*math.Max(1, math.Abs(k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
