package aa

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/vector"
	"repro/internal/wire"
)

// VectorOutcome is the checked result of a d-dimensional execution.
type VectorOutcome struct {
	// Points maps party index to its output point.
	Points map[int][]float64
	// MaxSpread is the largest per-coordinate diameter over the
	// non-faulty outputs (the max-norm disagreement).
	MaxSpread float64
	// Agreed reports MaxSpread <= Epsilon.
	Agreed bool
	// Valid reports box validity: every output coordinate inside that
	// coordinate's non-Byzantine input hull.
	Valid bool
	// Messages and Bytes count all traffic.
	Messages, Bytes int
	// Err carries a liveness failure, if any.
	Err error
}

// OK reports full success.
func (o *VectorOutcome) OK() bool { return o.Err == nil && o.Agreed && o.Valid }

// SimulateVector runs d-dimensional approximate agreement (coordinate-wise
// composition; see internal/vector for the exact guarantees — per-
// coordinate ε-agreement and box validity). The configuration's Lo and Hi
// must bound every coordinate of every honest input. inputs[i] is party
// i's point; all points must have equal dimension.
func SimulateVector(c Config, inputs [][]float64, opts ...SimOption) (*VectorOutcome, error) {
	if c.Model == ModelSynchronous {
		return nil, fmt.Errorf("aa: vector agreement supports the asynchronous models")
	}
	base, err := c.params()
	if err != nil {
		return nil, err
	}
	if len(inputs) != c.N {
		return nil, fmt.Errorf("aa: %d input points for %d parties", len(inputs), c.N)
	}
	dim := 0
	for _, pt := range inputs {
		if pt != nil {
			dim = len(pt)
			break
		}
	}
	vp := vector.Params{Base: base, Dim: dim}
	if err := vp.Validate(); err != nil {
		return nil, err
	}
	settings := simSettings{seed: 1, scheduler: SchedRandom}
	for _, opt := range opts {
		if err := opt(&settings); err != nil {
			return nil, err
		}
	}
	cfg := sim.Config{
		N:         c.N,
		Scheduler: schedulerByName(settings.scheduler, c.N, c.T).Scheduler,
		Seed:      settings.seed,
		Crashes:   settings.crashes,
		MaxEvents: settings.maxEvents,
	}
	rounds, err := base.FixedRounds()
	if err != nil {
		return nil, err
	}
	if len(settings.byz) > 0 {
		cfg.Byzantine = make(map[sim.PartyID]sim.Process, len(settings.byz))
		env := fault.Env{N: c.N, Rounds: rounds * dim, Lo: c.Lo, Hi: c.Hi}
		for id, b := range settings.byz {
			cfg.Byzantine[id] = wrapEachDim{inner: b, dim: dim}.New(env)
		}
	}
	if len(settings.crashes)+len(settings.byz) > c.T {
		return nil, fmt.Errorf("aa: fault assignments exceed T")
	}
	net, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	procs := map[sim.PartyID]*vector.AA{}
	for i := 0; i < c.N; i++ {
		id := sim.PartyID(i)
		if _, isByz := settings.byz[id]; isByz {
			continue
		}
		if len(inputs[i]) != dim {
			return nil, fmt.Errorf("aa: party %d point has %d coordinates, want %d", i, len(inputs[i]), dim)
		}
		proc, err := vector.New(vp, inputs[i])
		if err != nil {
			return nil, fmt.Errorf("aa: party %d: %w", i, err)
		}
		procs[id] = proc
		if err := net.SetProcess(id, proc); err != nil {
			return nil, err
		}
	}
	res, runErr := net.Run()
	out := &VectorOutcome{
		Points:   map[int][]float64{},
		Messages: res.Stats.MessagesSent,
		Bytes:    res.Stats.BytesSent,
		Err:      runErr,
	}
	for id, proc := range procs {
		if err := proc.Err(); err != nil && out.Err == nil {
			out.Err = err
		}
		if pt, ok := proc.Outputs(); ok {
			out.Points[int(id)] = pt
		}
	}
	out.check(c, inputs, settings, dim)
	return out, nil
}

// check computes box validity and max-norm agreement over non-faulty
// parties.
func (o *VectorOutcome) check(c Config, inputs [][]float64, settings simSettings, dim int) {
	crashed := map[int]bool{}
	for _, cp := range settings.crashes {
		crashed[int(cp.Party)] = true
	}
	o.Valid = true
	for d := 0; d < dim; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, pt := range inputs {
			if _, isByz := settings.byz[sim.PartyID(i)]; isByz {
				continue
			}
			lo = math.Min(lo, pt[d])
			hi = math.Max(hi, pt[d])
		}
		tol := 1e-9 * math.Max(1, math.Max(math.Abs(lo), math.Abs(hi)))
		outLo, outHi := math.Inf(1), math.Inf(-1)
		seen := false
		for id, pt := range o.Points {
			if crashed[id] {
				continue
			}
			seen = true
			if pt[d] < lo-tol || pt[d] > hi+tol {
				o.Valid = false
			}
			outLo = math.Min(outLo, pt[d])
			outHi = math.Max(outHi, pt[d])
		}
		if seen {
			o.MaxSpread = math.Max(o.MaxSpread, outHi-outLo)
		}
	}
	o.Agreed = o.MaxSpread <= c.Epsilon+1e-9
}

// wrapEachDim adapts a scalar Byzantine behavior to the vector wire
// format: the adversary's traffic is replayed on every coordinate.
type wrapEachDim struct {
	inner fault.Behavior
	dim   int
}

func (w wrapEachDim) Name() string { return w.inner.Name() + "/vector" }

func (w wrapEachDim) New(env fault.Env) sim.Process {
	return &wrapProc{inner: w.inner.New(env), dim: w.dim}
}

type wrapProc struct {
	inner sim.Process
	dim   int
}

func (w *wrapProc) Init(api sim.API) { w.inner.Init(&wrapAPI{API: api, dim: w.dim}) }

func (w *wrapProc) Deliver(from sim.PartyID, data []byte) {
	w.inner.Deliver(from, data)
}

// wrapAPI fans every adversarial send out across all coordinate tags.
type wrapAPI struct {
	sim.API
	dim int
}

func (w *wrapAPI) Send(to sim.PartyID, data []byte) {
	for d := 0; d < w.dim; d++ {
		w.API.Send(to, wire.MarshalWrapped(uint16(d), data))
	}
}

func (w *wrapAPI) Multicast(data []byte) {
	for d := 0; d < w.dim; d++ {
		w.API.Multicast(wire.MarshalWrapped(uint16(d), data))
	}
}
