// Command aafuzz randomly searches the adversarial configuration space —
// protocols, fault plans, schedulers, input shapes, seeds — for invariant
// violations (lost liveness, hull-validity breaks, missed ε-agreement).
// It prints a reproduction description for anything it finds and exits
// non-zero. A healthy tree survives any budget:
//
//	aafuzz -trials 5000 -seed 42
//
// It also fuzzes the scenario registry (internal/scenario): random spec
// compositions — many deliberately invalid — are driven through the
// Parse → String → re-parse round trip and Resolve, and random valid
// compositions are run end-to-end under the invariant checks. The
// contract under test: a bad scenario fails at spec time, never mid-run,
// and a good one never drifts through the string form. -scenario-trials
// sets that budget separately.
//
// -artifacts DIR turns every failing trial into a replayable incident
// bundle (internal/incident) written under DIR, and prints the one-line
// `aarun -replay` command that reproduces it exactly — the same
// interleaving, send for send.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/harness"
	"repro/internal/incident"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aafuzz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aafuzz", flag.ContinueOnError)
	trials := fs.Int("trials", 1000, "number of randomized executions")
	scenarioTrials := fs.Int("scenario-trials", 400, "number of randomized scenario-registry compositions")
	seed := fs.Int64("seed", time.Now().UnixNano(), "search seed (printed for reproduction)")
	artifacts := fs.String("artifacts", "", "directory for failing-trial incident bundles (created if needed)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenarioTrials > 0 {
		fmt.Printf("fuzzing scenario registry: %d compositions with seed %d\n", *scenarioTrials, *seed)
		sres, err := harness.FuzzScenarios(*scenarioTrials, *seed)
		if err != nil {
			return fmt.Errorf("scenario registry contract: %w", err)
		}
		fmt.Printf("scenario specs: %d valid, %d rejected at spec time; %d run end-to-end\n",
			sres.Registry.Valid, sres.Registry.Invalid, sres.Runs)
		if len(sres.Violations) > 0 {
			for _, v := range sres.Violations {
				fmt.Println("VIOLATION:", v)
			}
			writeArtifacts(*artifacts, "scenario", sres.Failures)
			return fmt.Errorf("%d scenario invariant violations", len(sres.Violations))
		}
	}
	fmt.Printf("fuzzing %d trials with seed %d\n", *trials, *seed)
	start := time.Now()
	res, err := harness.Fuzz(*trials, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("ran %d trials in %.1fs:", res.Trials, time.Since(start).Seconds())
	for proto, count := range res.ByProtocol {
		fmt.Printf(" %s=%d", proto, count)
	}
	fmt.Println()
	fmt.Printf("rounds:   %s\n", res.Rounds)
	fmt.Printf("messages: %s\n", res.Messages)
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Println("VIOLATION:", v)
		}
		writeArtifacts(*artifacts, "fuzz", res.Failures)
		return fmt.Errorf("%d invariant violations", len(res.Violations))
	}
	fmt.Println("no invariant violations")
	return nil
}

// writeArtifacts captures each failing trial as an incident bundle under
// dir and prints the replay command. Artifact failures are reported but
// never mask the violation exit: the fuzzer's verdict stands even when a
// repro cannot be written.
func writeArtifacts(dir, kind string, failures []harness.FuzzViolation) {
	if dir == "" || len(failures) == 0 {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "aafuzz: artifacts dir: %v\n", err)
		return
	}
	for _, v := range failures {
		path, err := writeArtifact(dir, kind, v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aafuzz: artifact for trial %d: %v\n", v.Trial, err)
			continue
		}
		fmt.Printf("reproduce: aarun -replay %s\n", path)
	}
}

// writeArtifact captures one violation into dir and returns the bundle
// path.
func writeArtifact(dir, kind string, v harness.FuzzViolation) (string, error) {
	name := fmt.Sprintf("%s-trial-%d", kind, v.Trial)
	b, err := incident.FromFuzz(v, name)
	if err != nil {
		return "", err
	}
	if _, err := incident.Capture(b); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+incident.BundleExt)
	if err := incident.Save(b, path); err != nil {
		return "", err
	}
	return path, nil
}
