// Command aafuzz randomly searches the adversarial configuration space —
// protocols, fault plans, schedulers, input shapes, seeds — for invariant
// violations (lost liveness, hull-validity breaks, missed ε-agreement).
// It prints a reproduction description for anything it finds and exits
// non-zero. A healthy tree survives any budget:
//
//	aafuzz -trials 5000 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aafuzz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aafuzz", flag.ContinueOnError)
	trials := fs.Int("trials", 1000, "number of randomized executions")
	seed := fs.Int64("seed", time.Now().UnixNano(), "search seed (printed for reproduction)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("fuzzing %d trials with seed %d\n", *trials, *seed)
	start := time.Now()
	res, err := harness.Fuzz(*trials, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("ran %d trials in %.1fs:", res.Trials, time.Since(start).Seconds())
	for proto, count := range res.ByProtocol {
		fmt.Printf(" %s=%d", proto, count)
	}
	fmt.Println()
	fmt.Printf("rounds:   %s\n", res.Rounds)
	fmt.Printf("messages: %s\n", res.Messages)
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Println("VIOLATION:", v)
		}
		return fmt.Errorf("%d invariant violations", len(res.Violations))
	}
	fmt.Println("no invariant violations")
	return nil
}
