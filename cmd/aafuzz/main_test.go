package main

import "testing"

func TestRunSmallBudget(t *testing.T) {
	if err := run([]string{"-trials", "20", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
