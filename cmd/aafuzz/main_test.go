package main

import "testing"

func TestRunSmallBudget(t *testing.T) {
	if err := run([]string{"-trials", "20", "-scenario-trials", "40", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioTrialsOnly(t *testing.T) {
	if err := run([]string{"-trials", "0", "-scenario-trials", "60", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
