package main

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/incident"
)

func TestRunSmallBudget(t *testing.T) {
	if err := run([]string{"-trials", "20", "-scenario-trials", "40", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioTrialsOnly(t *testing.T) {
	if err := run([]string{"-trials", "0", "-scenario-trials", "60", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestArtifactFromForcedFailure pins the failure-artifact path: a violation
// record for a run that dies on the event budget must produce a loadable
// incident bundle whose replay reproduces the same failed execution.
// (A healthy tree yields no organic violations, so the failure is forced
// through a starved event budget — the same record/capture/save path a
// real violation takes.)
func TestArtifactFromForcedFailure(t *testing.T) {
	dir := t.TempDir()
	v := harness.FuzzViolation{
		Trial:      7,
		Desc:       "forced event-budget failure",
		Proto:      core.ProtoCrash,
		N:          7,
		T:          2,
		Eps:        1e-3,
		Lo:         0,
		Hi:         1,
		SchedToken: "random",
		Seed:       99,
		MaxEvents:  60,
		Inputs:     harness.LinearInputs(7, 0, 1),
	}
	path, err := writeArtifact(dir, "fuzz", v)
	if err != nil {
		t.Fatal(err)
	}

	b, err := incident.Load(path)
	if err != nil {
		t.Fatalf("artifact not loadable: %v", err)
	}
	if b.Name != "fuzz-trial-7" || b.Digest.RunErr != incident.RunEventBudget {
		t.Fatalf("artifact %q has run verdict %d", b.Name, b.Digest.RunErr)
	}
	if _, div, err := incident.Replay(b); err != nil || div != nil {
		t.Fatalf("artifact replay: div=%v err=%v", div, err)
	}
}

// TestWriteArtifactsBestEffort pins that artifact emission never panics on
// an unwritable directory or a record that does not lower.
func TestWriteArtifactsBestEffort(t *testing.T) {
	writeArtifacts("", "fuzz", []harness.FuzzViolation{{Trial: 1}})
	writeArtifacts(t.TempDir(), "fuzz", []harness.FuzzViolation{{
		Trial: 2, Desc: "unresolvable", SchedToken: "warpdrive", N: 5, T: 1,
	}})
}
