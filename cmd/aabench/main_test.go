package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-seeds", "1", "-only", "E3,e10", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"e3.csv", "e10.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if lines := strings.Count(string(data), "\n"); lines < 3 {
			t.Errorf("%s: only %d lines", name, lines)
		}
	}
	// Experiments not selected must not have been written.
	if _, err := os.Stat(filepath.Join(dir, "e6.csv")); !os.IsNotExist(err) {
		t.Error("unselected experiment written")
	}
}

func TestCompareSnapshots(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	oldSnap := `{"schema":"aabench/v1","go":"go1.24.0","gomaxprocs":1,"parallelism":1,"seeds":2,
		"experiments":[{"id":"E4","title":"t","wall_ns":10,"runs":2,"ns_per_run":1000,"msgs_per_run":50,"bytes_per_run":800},
		               {"id":"E5","title":"t","wall_ns":10,"runs":2,"ns_per_run":1000,"msgs_per_run":50,"bytes_per_run":800}],
		"micro":[{"name":"rbc/handle","ns_op":100,"allocs_op":20,"bytes_op":0},
		         {"name":"wire/zeroalloc","ns_op":2,"allocs_op":0,"bytes_op":0}]}`
	newSnap := `{"schema":"aabench/v1","go":"go1.24.0","gomaxprocs":1,"parallelism":1,"seeds":2,
		"experiments":[{"id":"E4","title":"t","wall_ns":10,"runs":2,"ns_per_run":2000,"msgs_per_run":50,"bytes_per_run":800}],
		"micro":[{"name":"rbc/handle","ns_op":40,"allocs_op":2,"bytes_op":0},
		         {"name":"rbc/fresh","ns_op":1,"allocs_op":0,"bytes_op":0},
		         {"name":"wire/zeroalloc","ns_op":2,"allocs_op":3,"bytes_op":0}]}`
	for path, body := range map[string]string{oldPath: oldSnap, newPath: newSnap} {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	// The old snapshot's E5 is missing from the new one: a coverage loss is
	// a hole in the drift gate, so compare must both render the "removed"
	// row and return the drift error.
	err := compare(&sb, oldPath, newPath)
	if err == nil {
		t.Fatal("removed experiment accepted as drift-free")
	}
	if !strings.Contains(err.Error(), "E5 removed") {
		t.Fatalf("drift error %q does not name the removed experiment", err)
	}
	out := sb.String()
	for _, want := range []string{
		"E4", "+100.0% REGRESSION", // experiment slowdown flagged
		"E5", "removed", // dropped experiment surfaced
		"rbc/handle", "-60.0%", "-90.0%", // micro improvement, no flag
		"rbc/fresh", "new", // added micro
		"0->3 REGRESSION", // allocations reappearing on a zero-alloc path
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "-60.0% REGRESSION") {
		t.Error("improvement flagged as regression")
	}
	// The CLI entry point accepts the flag form (and surfaces the same
	// removed-experiment drift verdict).
	if err := run([]string{"-compare", oldPath, newPath}); err == nil {
		t.Error("CLI compare accepted a removed experiment as drift-free")
	}
	if err := run([]string{"-compare", oldPath}); err == nil {
		t.Error("missing second snapshot accepted")
	}
	// Unknown schema is rejected.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-compare", oldPath, bad}); err == nil {
		t.Error("unknown schema accepted")
	}
}

// TestCompareFlagsTrafficDrift pins the correctness contract of -compare:
// msgs/bytes-per-run deltas are a hard error (non-zero exit), while pure
// wall-clock regressions remain advisory.
func TestCompareFlagsTrafficDrift(t *testing.T) {
	dir := t.TempDir()
	base := `{"schema":"aabench/v1","go":"go1.24.0","gomaxprocs":1,"parallelism":1,"seeds":2,
		"experiments":[{"id":"E4","title":"t","wall_ns":10,"runs":2,"ns_per_run":1000,"msgs_per_run":50,"bytes_per_run":800}],
		"micro":[]}`
	cases := []struct {
		name    string
		newSnap string
		wantErr string
	}{
		{
			// Slower but byte-identical traffic: advisory only.
			name: "slowdown-only",
			newSnap: `{"schema":"aabench/v1","go":"go1.24.0","gomaxprocs":1,"parallelism":1,"seeds":2,
				"experiments":[{"id":"E4","title":"t","wall_ns":10,"runs":2,"ns_per_run":9000,"msgs_per_run":50,"bytes_per_run":800}],
				"micro":[]}`,
		},
		{
			name: "msgs-drift",
			newSnap: `{"schema":"aabench/v1","go":"go1.24.0","gomaxprocs":1,"parallelism":1,"seeds":2,
				"experiments":[{"id":"E4","title":"t","wall_ns":10,"runs":2,"ns_per_run":1000,"msgs_per_run":51,"bytes_per_run":800}],
				"micro":[]}`,
			wantErr: "msgs/run",
		},
		{
			name: "bytes-drift",
			newSnap: `{"schema":"aabench/v1","go":"go1.24.0","gomaxprocs":1,"parallelism":1,"seeds":2,
				"experiments":[{"id":"E4","title":"t","wall_ns":10,"runs":2,"ns_per_run":1000,"msgs_per_run":50,"bytes_per_run":0}],
				"micro":[]}`,
			wantErr: "bytes/run",
		},
		{
			// An experiment only the new snapshot measures is unpinned until
			// the committed baseline is refreshed — drift, symmetrically
			// with removal.
			name: "new-experiment",
			newSnap: `{"schema":"aabench/v1","go":"go1.24.0","gomaxprocs":1,"parallelism":1,"seeds":2,
				"experiments":[{"id":"E4","title":"t","wall_ns":10,"runs":2,"ns_per_run":1000,"msgs_per_run":50,"bytes_per_run":800},
				               {"id":"E13","title":"t","wall_ns":10,"runs":2,"ns_per_run":1000,"msgs_per_run":50,"bytes_per_run":800}],
				"micro":[]}`,
			wantErr: "E13 only in new snapshot",
		},
		{
			// Doubling every spec scales msgs and runs together, leaving the
			// per-run ratios untouched — the run count itself must be gated.
			name: "runs-drift",
			newSnap: `{"schema":"aabench/v1","go":"go1.24.0","gomaxprocs":1,"parallelism":1,"seeds":2,
				"experiments":[{"id":"E4","title":"t","wall_ns":10,"runs":4,"ns_per_run":1000,"msgs_per_run":50,"bytes_per_run":800}],
				"micro":[]}`,
			wantErr: "runs 2 -> 4",
		},
	}
	oldPath := filepath.Join(dir, "old.json")
	if err := os.WriteFile(oldPath, []byte(base), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			newPath := filepath.Join(dir, c.name+".json")
			if err := os.WriteFile(newPath, []byte(c.newSnap), 0o644); err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			err := compare(&sb, oldPath, newPath)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("advisory-only delta rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("traffic drift accepted; output:\n%s", sb.String())
			}
			if !strings.Contains(err.Error(), "correctness drift") || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("drift error %q does not name the drifted ratio %q", err, c.wantErr)
			}
			// The delta tables must still have been rendered before the
			// verdict, so the operator sees what moved.
			if !strings.Contains(sb.String(), "E4") {
				t.Error("compare error suppressed the delta table")
			}
		})
	}
}

func TestRunJSONSnapshot(t *testing.T) {
	// Stub the micro-benchmark runner: testing.Benchmark calibrates for
	// about a second per case, which this shape check does not need.
	orig := microBenchRunner
	microBenchRunner = func() []microBench {
		return []microBench{{Name: "stub/micro", NsOp: 1, AllocsOp: 0, BytesOp: 0}}
	}
	defer func() { microBenchRunner = orig }()
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := run([]string{"-seeds", "1", "-only", "E3", "-parallel", "2", "-json", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		`"schema": "aabench/v1"`,
		`"id": "E3"`,
		`"msgs_per_run"`,
		`"stub/micro"`,
		`"allocs_op"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("snapshot missing %s", want)
		}
	}
}

func TestRunUnknownFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunUnknownExperimentIsSkipped(t *testing.T) {
	// Asking only for a nonexistent ID simply runs nothing.
	if err := run([]string{"-only", "E99"}); err != nil {
		t.Fatal(err)
	}
}
