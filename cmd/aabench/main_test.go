package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-seeds", "1", "-only", "E3,e10", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"e3.csv", "e10.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if lines := strings.Count(string(data), "\n"); lines < 3 {
			t.Errorf("%s: only %d lines", name, lines)
		}
	}
	// Experiments not selected must not have been written.
	if _, err := os.Stat(filepath.Join(dir, "e6.csv")); !os.IsNotExist(err) {
		t.Error("unselected experiment written")
	}
}

func TestRunJSONSnapshot(t *testing.T) {
	// Stub the micro-benchmark runner: testing.Benchmark calibrates for
	// about a second per case, which this shape check does not need.
	orig := microBenchRunner
	microBenchRunner = func() []microBench {
		return []microBench{{Name: "stub/micro", NsOp: 1, AllocsOp: 0, BytesOp: 0}}
	}
	defer func() { microBenchRunner = orig }()
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := run([]string{"-seeds", "1", "-only", "E3", "-parallel", "2", "-json", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		`"schema": "aabench/v1"`,
		`"id": "E3"`,
		`"msgs_per_run"`,
		`"stub/micro"`,
		`"allocs_op"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("snapshot missing %s", want)
		}
	}
}

func TestRunUnknownFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunUnknownExperimentIsSkipped(t *testing.T) {
	// Asking only for a nonexistent ID simply runs nothing.
	if err := run([]string{"-only", "E99"}); err != nil {
		t.Fatal(err)
	}
}
