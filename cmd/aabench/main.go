// Command aabench regenerates every evaluation artifact (experiments E1–E13
// in DESIGN.md) and prints them as aligned tables, optionally also writing
// CSV files and a machine-readable benchmark snapshot. This is the
// one-command reproduction of the paper's claims; EXPERIMENTS.md records a
// captured run next to the claims themselves, and the BENCH_*.json files at
// the repo root record the performance trajectory across PRs.
//
// Usage:
//
//	aabench [-seeds N] [-only E4] [-csv DIR] [-parallel N] [-shards N] [-core calendar|heap] [-batch on|off] [-xl] [-json FILE] [-micro=false]
//	aabench -compare OLD.json NEW.json
//
// Experiments run on the parallel engine (internal/harness worker pool) by
// default, fanning independent simulation runs across GOMAXPROCS cores;
// -parallel 1 forces the sequential path (the rendered tables are identical
// by construction — the determinism tests pin this). -shards controls the
// second parallelism axis, intra-run sharding (sim.Config.Shards): 0 (the
// default) auto-sizes per run, 1 forces the sequential reference path, and
// any count produces identical tables (the shard equivalence tests pin
// this). -xl appends the E12-XL sharded scaling slice (n ∈ {1024, 4096}) to
// the experiment set — hours of sequential work, so it is opt-in and the
// committed full snapshots carry its rows. Every run executes on a recycled
// harness run context, so per-run state construction is off the measured
// path (see PERF.md "Run-context recycling").
//
// -compare diffs two BENCH_*.json snapshots: a per-experiment delta table
// (ns/run, msgs/run, bytes/run) and a per-micro delta table (ns/op,
// allocs/op), with regressions highlighted. Time deltas are advisory, but
// msgs/bytes-per-run deltas are a correctness contract: any drift makes
// compare exit non-zero, so behavior changes can never hide inside a perf
// compare. `make bench-compare` wraps it for the committed trajectory and
// `make bench-smoke` (CI) compares a fresh reduced run against the
// committed BENCH_SMOKE.json.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"text/tabwriter"
	"time"

	"repro/internal/harness"
	"repro/internal/microbench"
	"repro/internal/serve"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aabench:", err)
		os.Exit(1)
	}
}

// snapshot is the BENCH_*.json schema: one entry per experiment with
// wall-clock and engine-level run accounting, plus substrate
// micro-benchmarks (measured via testing.Benchmark, so ns/op and allocs/op
// mean exactly what `go test -bench -benchmem` means).
type snapshot struct {
	Schema      string       `json:"schema"`
	GoVersion   string       `json:"go"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Parallelism int          `json:"parallelism"`
	Shards      int          `json:"shards"`
	Core        string       `json:"core,omitempty"`
	Batch       string       `json:"batch,omitempty"`
	Seeds       int          `json:"seeds"`
	Generated   string       `json:"generated"`
	Experiments []expBench   `json:"experiments"`
	Micro       []microBench `json:"micro"`
}

type expBench struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	WallNs int64  `json:"wall_ns"`
	// Runs is the number of engine-executed simulation runs the experiment
	// fanned out; the per-run ratios below are averaged over them.
	Runs        int64   `json:"runs"`
	NsPerRun    float64 `json:"ns_per_run"`
	MsgsPerRun  float64 `json:"msgs_per_run"`
	BytesPerRun float64 `json:"bytes_per_run"`
	// AllocsPerRun is the process-wide heap-allocation count per engine run
	// (runtime.MemStats.Mallocs delta around the experiment), the metric the
	// run-context recycling work drives toward zero. It includes the
	// experiment's spec enumeration and table construction, so "near zero"
	// in a committed snapshot means tens per run, not 0.0 — the per-run
	// protocol/simulator allocations themselves are pinned at zero by the
	// harness AllocsPerRun tests.
	AllocsPerRun float64 `json:"allocs_per_run"`
}

type microBench struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
	BytesOp  int64   `json:"bytes_op"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("aabench", flag.ContinueOnError)
	seeds := fs.Int("seeds", 3, "seeds per configuration")
	only := fs.String("only", "", "comma-separated experiment IDs to run (default: all)")
	csvDir := fs.String("csv", "", "directory to also write CSV tables into")
	parallel := fs.Int("parallel", 0, "engine worker count (0 = GOMAXPROCS, 1 = sequential)")
	shards := fs.Int("shards", 0, "intra-run shard count per simulation (0 = auto, 1 = sequential reference path)")
	coreName := fs.String("core", "", "simulator event core: calendar | heap (default: the build's default core)")
	batchName := fs.String("batch", "", "tick delivery mode: on (batched, the default) | off (per-envelope reference loop)")
	xl := fs.Bool("xl", false, "append the E12-XL sharded scaling slice (n in {1024, 4096}) to the experiment set")
	jsonPath := fs.String("json", "", "file to write a BENCH_*.json benchmark snapshot into")
	micro := fs.Bool("micro", true, "include the micro-benchmarks in the -json snapshot (disable for fast CI smoke runs)")
	compareMode := fs.Bool("compare", false, "compare two BENCH_*.json snapshots (args: OLD.json NEW.json) instead of running; exits non-zero when msgs/bytes per run drift")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compareMode {
		if fs.NArg() != 2 {
			return errors.New("-compare needs exactly two snapshot files: OLD.json NEW.json")
		}
		return compare(os.Stdout, fs.Arg(0), fs.Arg(1))
	}
	harness.SetParallelism(*parallel)
	defer harness.SetParallelism(0)
	if *shards < 0 {
		return fmt.Errorf("-shards %d: want >= 0 (0 = auto)", *shards)
	}
	harness.SetSharding(*shards)
	defer harness.SetSharding(0)
	switch *coreName {
	case "":
	case "calendar":
		harness.SetEventCore(sim.CoreCalendar)
	case "heap":
		harness.SetEventCore(sim.CoreHeap)
	default:
		return fmt.Errorf("unknown event core %q (want calendar or heap)", *coreName)
	}
	defer harness.SetEventCore(sim.CoreDefault)
	switch *batchName {
	case "":
	case "on":
		harness.SetBatching(sim.BatchOn)
	case "off":
		harness.SetBatching(sim.BatchOff)
	default:
		return fmt.Errorf("unknown batch mode %q (want on or off)", *batchName)
	}
	defer harness.SetBatching(sim.BatchDefault)
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	snap := snapshot{
		Schema:      "aabench/v1",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: harness.Parallelism(),
		Shards:      harness.Sharding(),
		Core:        harness.EventCore().Resolve().String(),
		Batch:       harness.Batching().Resolve().String(),
		Seeds:       *seeds,
		Generated:   time.Now().UTC().Format(time.RFC3339),
	}
	exps := harness.Experiments(*seeds)
	// E15 lives in internal/serve (it drives the serving layer over the
	// harness, so it cannot register from inside the harness package).
	exps = append(exps, harness.Experiment{
		ID:    "E15",
		Title: "Overload sweep: offered load x fault mix",
		Run:   serve.E15Overload,
	})
	if *xl {
		exps = append(exps, harness.Experiment{
			ID:    "E12XL",
			Title: "Sharded large-n scaling slice",
			Run:   harness.E12XL,
		})
	}
	for _, exp := range exps {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		harness.ResetEngineStats()
		start := time.Now()
		tbl, err := exp.Run()
		if err != nil {
			return fmt.Errorf("%s (%s): %w", exp.ID, exp.Title, err)
		}
		wall := time.Since(start)
		stats := harness.SnapshotEngineStats()
		fmt.Printf("== %s: %s (%.1fs, %d runs) ==\n", exp.ID, exp.Title, wall.Seconds(), stats.Runs)
		if err := tbl.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		snap.Experiments = append(snap.Experiments, expBench{
			ID:           exp.ID,
			Title:        exp.Title,
			WallNs:       wall.Nanoseconds(),
			Runs:         stats.Runs,
			NsPerRun:     perRun(float64(wall.Nanoseconds()), stats.Runs),
			MsgsPerRun:   perRun(float64(stats.MessagesSent), stats.Runs),
			BytesPerRun:  perRun(float64(stats.BytesSent), stats.Runs),
			AllocsPerRun: perRun(float64(stats.Mallocs), stats.Runs),
		})
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, strings.ToLower(exp.ID)+".csv"))
			if err != nil {
				return err
			}
			if err := tbl.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if *jsonPath == "" {
		return nil
	}
	if *micro {
		snap.Micro = microBenchRunner()
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
}

func perRun(total float64, runs int64) float64 {
	if runs == 0 {
		return 0
	}
	return total / float64(runs)
}

// regressionThreshold is the relative slowdown past which a compare row is
// flagged: wall-clock deltas under 5% are noise on shared hardware.
const regressionThreshold = 0.05

// drifted reports whether a per-run traffic ratio changed at all. The
// comparison is exact, not a tolerance: runs are deterministic functions
// of their specs, the ratios are computed by the same float64 division on
// both sides, and JSON round-trips float64 exactly — so any difference
// means protocol traffic actually changed, a hard error that can never
// hide inside a perf compare.
func drifted(oldV, newV float64) bool { return oldV != newV }

// compare renders the per-experiment and per-micro delta tables between
// two snapshot files, flagging regressions. Wall-clock deltas are
// advisory; msgs/bytes-per-run deltas are a correctness contract and any
// drift makes compare return an error (non-zero exit).
func compare(w io.Writer, oldPath, newPath string) error {
	oldSnap, err := readSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := readSnapshot(newPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "snapshot compare: %s (%s, %d seeds, par %d) -> %s (%s, %d seeds, par %d)\n",
		oldPath, oldSnap.GoVersion, oldSnap.Seeds, oldSnap.Parallelism,
		newPath, newSnap.GoVersion, newSnap.Seeds, newSnap.Parallelism)
	if oldSnap.Seeds != newSnap.Seeds || oldSnap.Parallelism != newSnap.Parallelism ||
		oldSnap.GOMAXPROCS != newSnap.GOMAXPROCS || oldSnap.Shards != newSnap.Shards {
		fmt.Fprintln(w, "warning: seeds/parallelism/shards/gomaxprocs differ; per-run ratios may not be comparable")
	}

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "experiment\tns/run old\tns/run new\tdelta\tmsgs/run delta\tbytes/run delta\t")
	oldExp := make(map[string]expBench, len(oldSnap.Experiments))
	for _, e := range oldSnap.Experiments {
		oldExp[e.ID] = e
	}
	var drift []string
	newExp := make(map[string]bool, len(newSnap.Experiments))
	for _, n := range newSnap.Experiments {
		newExp[n.ID] = true
		o, ok := oldExp[n.ID]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.0f\tnew\tnew\tnew\t\n", n.ID, n.NsPerRun)
			// Symmetric with the removed-row case below: an experiment the
			// old snapshot does not pin is a hole in the gate until the
			// committed snapshot is refreshed to cover it.
			drift = append(drift, fmt.Sprintf("%s only in new snapshot (refresh the committed baseline)", n.ID))
			continue
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%s\t%s\t%s\t\n",
			n.ID, o.NsPerRun, n.NsPerRun, delta(o.NsPerRun, n.NsPerRun),
			delta(o.MsgsPerRun, n.MsgsPerRun), delta(o.BytesPerRun, n.BytesPerRun))
		if o.Runs != n.Runs {
			// Runs is deterministic for fixed -seeds; a change means the
			// enumerated run set itself moved, which per-run ratios alone
			// could mask (e.g. every spec duplicated scales both sides).
			drift = append(drift, fmt.Sprintf("%s runs %d -> %d", n.ID, o.Runs, n.Runs))
		}
		if drifted(o.MsgsPerRun, n.MsgsPerRun) {
			drift = append(drift, fmt.Sprintf("%s msgs/run %.2f -> %.2f", n.ID, o.MsgsPerRun, n.MsgsPerRun))
		}
		if drifted(o.BytesPerRun, n.BytesPerRun) {
			drift = append(drift, fmt.Sprintf("%s bytes/run %.2f -> %.2f", n.ID, o.BytesPerRun, n.BytesPerRun))
		}
	}
	// Coverage losses are as important as slowdowns — and a vanished
	// experiment would otherwise be a hole in the drift gate (its
	// msgs/bytes rows simply absent), so it counts as drift too.
	for _, o := range oldSnap.Experiments {
		if !newExp[o.ID] {
			fmt.Fprintf(tw, "%s\t%.0f\t-\tremoved\t-\t-\t\n", o.ID, o.NsPerRun)
			drift = append(drift, fmt.Sprintf("%s removed from new snapshot", o.ID))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "micro\tns/op old\tns/op new\tdelta\tallocs old\tallocs new\tallocs delta\t")
	oldMicro := make(map[string]microBench, len(oldSnap.Micro))
	for _, m := range oldSnap.Micro {
		oldMicro[m.Name] = m
	}
	newMicro := make(map[string]bool, len(newSnap.Micro))
	for _, n := range newSnap.Micro {
		newMicro[n.Name] = true
		o, ok := oldMicro[n.Name]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.1f\tnew\t-\t%d\tnew\t\n", n.Name, n.NsOp, n.AllocsOp)
			continue
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%s\t%d\t%d\t%s\t\n",
			n.Name, o.NsOp, n.NsOp, delta(o.NsOp, n.NsOp),
			o.AllocsOp, n.AllocsOp, delta(float64(o.AllocsOp), float64(n.AllocsOp)))
	}
	for _, o := range oldSnap.Micro {
		if !newMicro[o.Name] {
			fmt.Fprintf(tw, "%s\t%.1f\t-\tremoved\t%d\t-\tremoved\t\n", o.Name, o.NsOp, o.AllocsOp)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(drift) > 0 {
		// Deterministic runs mean msgs/bytes per run can only move when the
		// protocols' observable behavior moved — never acceptable inside a
		// performance compare.
		return fmt.Errorf("correctness drift (msgs/bytes per run changed): %s", strings.Join(drift, "; "))
	}
	return nil
}

func readSnapshot(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != "aabench/v1" {
		return nil, fmt.Errorf("%s: unknown snapshot schema %q", path, s.Schema)
	}
	return &s, nil
}

// delta formats a relative change, flagging regressions past the noise
// threshold. Growth from a zero baseline (e.g. allocations reappearing on
// a pinned zero-alloc path) is always a regression.
func delta(oldV, newV float64) string {
	if oldV == 0 {
		if newV == 0 {
			return "0%"
		}
		return fmt.Sprintf("0->%.3g REGRESSION", newV)
	}
	rel := (newV - oldV) / oldV
	s := fmt.Sprintf("%+.1f%%", 100*rel)
	if rel > regressionThreshold {
		s += " REGRESSION"
	}
	return s
}

// microBenchRunner measures the snapshot micro-benchmarks. It is a
// variable so tests can stub it: testing.Benchmark calibrates for about a
// second per case, far too slow for a unit test that only checks the JSON
// shape.
var microBenchRunner = microBenches

// microBenches measures the protocol substrates the hot-path work targets
// — the shared inventory in internal/microbench, so these numbers are the
// same measurements `go test -bench` reports.
func microBenches() []microBench {
	cases := microbench.Cases()
	out := make([]microBench, 0, len(cases))
	for _, c := range cases {
		r := testing.Benchmark(c.Fn)
		out = append(out, microBench{
			Name:     c.Name,
			NsOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
		})
	}
	return out
}
