// Command aabench regenerates every evaluation artifact (experiments E1–E10
// in DESIGN.md) and prints them as aligned tables, optionally also writing
// CSV files. This is the one-command reproduction of the paper's claims;
// EXPERIMENTS.md records a captured run next to the claims themselves.
//
// Usage:
//
//	aabench [-seeds N] [-only E4] [-csv DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aabench", flag.ContinueOnError)
	seeds := fs.Int("seeds", 3, "seeds per configuration")
	only := fs.String("only", "", "comma-separated experiment IDs to run (default: all)")
	csvDir := fs.String("csv", "", "directory to also write CSV tables into")
	if err := fs.Parse(args); err != nil {
		return err
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	for _, exp := range harness.Experiments(*seeds) {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		start := time.Now()
		tbl, err := exp.Run()
		if err != nil {
			return fmt.Errorf("%s (%s): %w", exp.ID, exp.Title, err)
		}
		fmt.Printf("== %s: %s (%.1fs) ==\n", exp.ID, exp.Title, time.Since(start).Seconds())
		if err := tbl.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, strings.ToLower(exp.ID)+".csv"))
			if err != nil {
				return err
			}
			if err := tbl.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
