// Command aabench regenerates every evaluation artifact (experiments E1–E11
// in DESIGN.md) and prints them as aligned tables, optionally also writing
// CSV files and a machine-readable benchmark snapshot. This is the
// one-command reproduction of the paper's claims; EXPERIMENTS.md records a
// captured run next to the claims themselves, and the BENCH_*.json files at
// the repo root record the performance trajectory across PRs.
//
// Usage:
//
//	aabench [-seeds N] [-only E4] [-csv DIR] [-parallel N] [-json FILE]
//
// Experiments run on the parallel engine (internal/harness worker pool) by
// default, fanning independent simulation runs across GOMAXPROCS cores;
// -parallel 1 forces the sequential path (the rendered tables are identical
// by construction — the determinism tests pin this).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/microbench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aabench:", err)
		os.Exit(1)
	}
}

// snapshot is the BENCH_*.json schema: one entry per experiment with
// wall-clock and engine-level run accounting, plus substrate
// micro-benchmarks (measured via testing.Benchmark, so ns/op and allocs/op
// mean exactly what `go test -bench -benchmem` means).
type snapshot struct {
	Schema      string       `json:"schema"`
	GoVersion   string       `json:"go"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Parallelism int          `json:"parallelism"`
	Seeds       int          `json:"seeds"`
	Generated   string       `json:"generated"`
	Experiments []expBench   `json:"experiments"`
	Micro       []microBench `json:"micro"`
}

type expBench struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	WallNs int64  `json:"wall_ns"`
	// Runs is the number of engine-executed simulation runs the experiment
	// fanned out; the per-run ratios below are averaged over them.
	Runs        int64   `json:"runs"`
	NsPerRun    float64 `json:"ns_per_run"`
	MsgsPerRun  float64 `json:"msgs_per_run"`
	BytesPerRun float64 `json:"bytes_per_run"`
}

type microBench struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
	BytesOp  int64   `json:"bytes_op"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("aabench", flag.ContinueOnError)
	seeds := fs.Int("seeds", 3, "seeds per configuration")
	only := fs.String("only", "", "comma-separated experiment IDs to run (default: all)")
	csvDir := fs.String("csv", "", "directory to also write CSV tables into")
	parallel := fs.Int("parallel", 0, "engine worker count (0 = GOMAXPROCS, 1 = sequential)")
	jsonPath := fs.String("json", "", "file to write a BENCH_*.json benchmark snapshot into")
	if err := fs.Parse(args); err != nil {
		return err
	}
	harness.SetParallelism(*parallel)
	defer harness.SetParallelism(0)
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	snap := snapshot{
		Schema:      "aabench/v1",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: harness.Parallelism(),
		Seeds:       *seeds,
		Generated:   time.Now().UTC().Format(time.RFC3339),
	}
	for _, exp := range harness.Experiments(*seeds) {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		harness.ResetEngineStats()
		start := time.Now()
		tbl, err := exp.Run()
		if err != nil {
			return fmt.Errorf("%s (%s): %w", exp.ID, exp.Title, err)
		}
		wall := time.Since(start)
		stats := harness.SnapshotEngineStats()
		fmt.Printf("== %s: %s (%.1fs, %d runs) ==\n", exp.ID, exp.Title, wall.Seconds(), stats.Runs)
		if err := tbl.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		snap.Experiments = append(snap.Experiments, expBench{
			ID:          exp.ID,
			Title:       exp.Title,
			WallNs:      wall.Nanoseconds(),
			Runs:        stats.Runs,
			NsPerRun:    perRun(float64(wall.Nanoseconds()), stats.Runs),
			MsgsPerRun:  perRun(float64(stats.MessagesSent), stats.Runs),
			BytesPerRun: perRun(float64(stats.BytesSent), stats.Runs),
		})
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, strings.ToLower(exp.ID)+".csv"))
			if err != nil {
				return err
			}
			if err := tbl.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if *jsonPath == "" {
		return nil
	}
	snap.Micro = microBenchRunner()
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
}

func perRun(total float64, runs int64) float64 {
	if runs == 0 {
		return 0
	}
	return total / float64(runs)
}

// microBenchRunner measures the snapshot micro-benchmarks. It is a
// variable so tests can stub it: testing.Benchmark calibrates for about a
// second per case, far too slow for a unit test that only checks the JSON
// shape.
var microBenchRunner = microBenches

// microBenches measures the protocol substrates the hot-path work targets
// — the shared inventory in internal/microbench, so these numbers are the
// same measurements `go test -bench` reports.
func microBenches() []microBench {
	cases := microbench.Cases()
	out := make([]microBench, 0, len(cases))
	for _, c := range cases {
		r := testing.Benchmark(c.Fn)
		out = append(out, microBench{
			Name:     c.Name,
			NsOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
		})
	}
	return out
}
