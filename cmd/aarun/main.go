// Command aarun executes a single approximate-agreement instance on the
// simulator (or the live goroutine runtime) and prints the outcome. It is
// the quickest way to poke at the protocols:
//
//	aarun -model crash -n 7 -t 3 -inputs 1,2,3,4,5,6,7 -eps 0.01
//	aarun -model witness -n 10 -t 3 -sched splitviews -byz 0:equivocate,1:extreme
//	aarun -model crash -n 5 -t 2 -live
//
// -scenario runs a declarative scenario spec (internal/scenario): one
// string names the scheduler, the fault composition, and the run shape,
// and replaces -n/-t/-sched/-crash/-byz in one go. The strings are the
// same ones the E12 table prints, so any row reproduces from the shell:
//
//	aarun -model crash -scenario "splitviews+crash/n=64,t=31"
//	aarun -model trim -scenario "skew+equivocate/n=64,t=9"
//
// The lossy-network axes compose the same way, and -reliable wraps every
// party in the ack/retransmit transport that survives them (on the live
// runtime, -loss/-dup inject wall-clock loss directly):
//
//	aarun -model crash -scenario "random+loss:0.05+dup:0.1/n=16,t=3" -reliable
//	aarun -model crash -n 5 -t 2 -live -loss 0.1 -reliable
//
// -record FILE captures the run as a replayable incident bundle: the
// scenario, seed, every per-send delivery delay, and a digest of the
// outcome (see internal/incident). -replay FILE re-executes a bundle
// through the recorded delay log and hard-fails on any divergence from the
// recorded digest, naming the first divergent send:
//
//	aarun -model trim -scenario "skew+spam/n=15,t=2" -record out.bundle
//	aarun -replay out.bundle
//
// Under -record, Byzantine names resolve through the scenario registry
// (e.g. "extreme" is the range-relative ExtremeRel, as in scenario specs),
// so the captured run is exactly the one the bundle replays.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/aa"
	"repro/internal/harness"
	"repro/internal/incident"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aarun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aarun", flag.ContinueOnError)
	model := fs.String("model", "crash", "crash | trim | witness | sync")
	n := fs.Int("n", 7, "number of parties")
	t := fs.Int("t", 2, "fault bound")
	eps := fs.Float64("eps", 1e-3, "agreement precision")
	lo := fs.Float64("lo", 0, "promised input range low end")
	hi := fs.Float64("hi", 100, "promised input range high end")
	inputsFlag := fs.String("inputs", "", "comma-separated inputs (default: evenly spaced over the range)")
	schedName := fs.String("sched", aa.SchedRandom, "scheduler: sync|random|skew|partition|splitviews|staggered")
	scenarioFlag := fs.String("scenario", "", `scenario spec, e.g. "skew+equivocate/n=64,t=9"; overrides -n/-t/-sched/-crash/-byz`)
	seed := fs.Int64("seed", 1, "random seed")
	crashFlag := fs.String("crash", "", "crash plans id:afterSends,id:afterSends,...")
	byzFlag := fs.String("byz", "", "byzantine assignments id:behavior,... (silent|extreme|equivocate|spam|amplifier)")
	adaptive := fs.Bool("adaptive", false, "adaptive termination (estimate spread at runtime)")
	reliable := fs.Bool("reliable", false, "wrap parties in the ack/retransmit transport (survives loss/outage/flap)")
	live := fs.Bool("live", false, "run on the goroutine runtime instead of the simulator")
	timeout := fs.Duration("timeout", 30*time.Second, "live-run timeout")
	loss := fs.Float64("loss", 0, "live-run per-send drop probability in [0,1)")
	dup := fs.Float64("dup", 0, "live-run per-send duplication probability in [0,1)")
	record := fs.String("record", "", "capture the run into an incident bundle FILE (simulator only)")
	replayFlag := fs.String("replay", "", "replay an incident bundle FILE and diff against its recorded digest (other flags ignored)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *replayFlag != "" {
		return doReplay(*replayFlag)
	}
	if *record != "" && *live {
		return fmt.Errorf("-record needs the deterministic simulator; drop -live")
	}

	if *scenarioFlag != "" {
		sn, st, err := aa.ScenarioShape(*scenarioFlag)
		if err != nil {
			return err
		}
		*n = sn
		if st >= 0 {
			*t = st
		}
	}
	cfg := aa.Config{
		N: *n, T: *t, Epsilon: *eps, Lo: *lo, Hi: *hi, Adaptive: *adaptive,
	}
	switch *model {
	case "crash":
		cfg.Model = aa.ModelCrash
	case "trim":
		cfg.Model = aa.ModelByzantineTrim
	case "witness":
		cfg.Model = aa.ModelByzantineWitness
	case "sync":
		cfg.Model = aa.ModelSynchronous
		cfg.SyncRoundTicks = 20
	default:
		return fmt.Errorf("unknown model %q", *model)
	}

	inputs, err := parseInputs(*inputsFlag, *n, *lo, *hi)
	if err != nil {
		return err
	}

	if *live {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		out, err := aa.RunLive(ctx, cfg, inputs, aa.LiveOptions{
			Seed:     *seed,
			Loss:     *loss,
			Dup:      *dup,
			Reliable: *reliable,
		})
		if err != nil {
			// A timeout still reports the partial progress before failing.
			if out != nil {
				printOutcome(out, cfg)
			}
			return err
		}
		printOutcome(out, cfg)
		return nil
	}

	crashes, err := parseCrashes(*crashFlag)
	if err != nil {
		return err
	}
	byz, err := parseByz(*byzFlag)
	if err != nil {
		return err
	}

	if *record != "" {
		return doRecord(*record, cfg, *model, inputs, recordShape{
			scenario: *scenarioFlag, sched: *schedName,
			n: *n, t: *t, seed: *seed,
			crashes: crashes, byz: byz,
			reliable: *reliable,
		})
	}

	opts := []aa.SimOption{aa.WithSeed(*seed)}
	if *reliable {
		opts = append(opts, aa.WithReliable())
	}
	if *scenarioFlag != "" {
		opts = append(opts, aa.WithScenario(*scenarioFlag))
	} else {
		opts = append(opts, aa.WithScheduler(*schedName))
		for _, c := range crashes {
			opts = append(opts, aa.WithCrash(int(c.Party), c.AfterSends))
		}
		for _, z := range byz {
			opts = append(opts, aa.WithByzantine(int(z.Party), z.Name))
		}
	}

	out, err := aa.Simulate(cfg, inputs, opts...)
	if err != nil {
		return err
	}
	printOutcome(out, cfg)
	if !out.OK() {
		return fmt.Errorf("run failed: agreed=%v valid=%v err=%v", out.Agreed, out.Valid, out.Err)
	}
	return nil
}

func parseInputs(s string, n int, lo, hi float64) ([]float64, error) {
	if s == "" {
		out := make([]float64, n)
		for i := range out {
			if n > 1 {
				out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
			} else {
				out[i] = lo
			}
		}
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("got %d inputs for %d parties", len(parts), n)
	}
	out := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("input %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func parseCrashes(s string) ([]sim.CrashPlan, error) {
	if s == "" {
		return nil, nil
	}
	var out []sim.CrashPlan
	for _, part := range strings.Split(s, ",") {
		var id, after int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d:%d", &id, &after); err != nil {
			return nil, fmt.Errorf("crash plan %q (want id:afterSends): %w", part, err)
		}
		out = append(out, sim.CrashPlan{Party: sim.PartyID(id), AfterSends: after})
	}
	return out, nil
}

func parseByz(s string) ([]incident.ByzRef, error) {
	if s == "" {
		return nil, nil
	}
	var out []incident.ByzRef
	for _, part := range strings.Split(s, ",") {
		fields := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("byzantine assignment %q (want id:behavior)", part)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("byzantine assignment %q: %w", part, err)
		}
		out = append(out, incident.ByzRef{Party: sim.PartyID(id), Name: fields[1]})
	}
	return out, nil
}

// recordShape carries the adversary wiring -record needs to render a
// canonical scenario string and fault overrides.
type recordShape struct {
	scenario string
	sched    string
	n, t     int
	seed     int64
	crashes  []sim.CrashPlan
	byz      []incident.ByzRef
	reliable bool
}

// doRecord captures the configured run into an incident bundle. With
// -scenario, the spec string (t made explicit) is authoritative for the
// adversary; otherwise a fault-free scenario is synthesized from -sched
// and the -crash/-byz lists become explicit overrides — the flag-path
// scheduler parameterizations match the scenario registry defaults
// exactly, so the captured schedule is the one plain aarun would run.
func doRecord(path string, cfg aa.Config, model string, inputs []float64, shape recordShape) error {
	var scenStr string
	if shape.scenario != "" {
		spec, err := scenario.Parse(shape.scenario)
		if err != nil {
			return err
		}
		scenStr = spec.WithT(shape.t).String()
		shape.crashes, shape.byz = nil, nil
	} else {
		scenStr = scenario.Spec{Sched: shape.sched, N: shape.n, T: shape.t}.String()
	}
	b := &incident.Bundle{
		Name:           strings.TrimSuffix(filepath.Base(path), incident.BundleExt),
		Scenario:       scenStr,
		Protocol:       model,
		Adaptive:       cfg.Adaptive,
		Eps:            cfg.Epsilon,
		Lo:             cfg.Lo,
		Hi:             cfg.Hi,
		SyncRoundTicks: sim.Time(cfg.SyncRoundTicks),
		Seed:           shape.seed,
		Inputs:         inputs,
		Crashes:        shape.crashes,
		Byz:            shape.byz,
		Reliable:       shape.reliable,
	}
	rep, err := incident.Capture(b)
	if err != nil {
		return err
	}
	if err := incident.Save(b, path); err != nil {
		return err
	}
	printOutcome(outcomeFromReport(rep), cfg)
	fmt.Printf("recorded  %s (%d sends, %s)\n", path, len(b.Delays), b.Scenario)
	fmt.Printf("replay    aarun -replay %s\n", path)
	if !rep.OK() {
		return fmt.Errorf("recorded run failed: %s", rep.Failure())
	}
	return nil
}

// doReplay re-executes a bundle against its recorded trace and digest.
func doReplay(path string) error {
	b, err := incident.Load(path)
	if err != nil {
		return err
	}
	fmt.Printf("bundle    %s (%s, %s, seed %d, %d sends)\n",
		b.Name, b.Scenario, b.Protocol, b.Seed, len(b.Delays))
	rep, div, err := incident.Replay(b)
	if err != nil {
		return err
	}
	printOutcome(outcomeFromReport(rep), aa.Config{Epsilon: b.Eps})
	if div != nil {
		return div.Error()
	}
	fmt.Println("replay    matches recorded digest")
	return nil
}

// outcomeFromReport adapts a harness report for printOutcome.
func outcomeFromReport(rep *harness.Report) *aa.Outcome {
	out := &aa.Outcome{
		Values:      make(map[int]float64, len(rep.Result.Decisions)),
		Spread:      rep.FinalSpread,
		Agreed:      rep.AgreementOK,
		Valid:       rep.ValidityOK,
		Rounds:      rep.Result.Rounds(),
		Messages:    rep.Result.Stats.MessagesSent,
		Bytes:       rep.Result.Stats.BytesSent,
		Dropped:     int(rep.Result.Stats.MessagesDropped),
		Duped:       int(rep.Result.Stats.MessagesDuped),
		Retransmits: int(rep.Transport.Retransmits),
		Err:         rep.RunErr,
	}
	if out.Err == nil && len(rep.ProtoErrs) > 0 {
		out.Err = rep.ProtoErrs[0]
	}
	for id, v := range rep.Result.Decisions {
		out.Values[int(id)] = v
	}
	return out
}

func printOutcome(out *aa.Outcome, cfg aa.Config) {
	ids := make([]int, 0, len(out.Values))
	for id := range out.Values {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("party %2d -> %.9g\n", id, out.Values[id])
	}
	fmt.Printf("spread    %.3g (eps %.3g)\n", out.Spread, cfg.Epsilon)
	fmt.Printf("agreed    %v\n", out.Agreed)
	fmt.Printf("valid     %v\n", out.Valid)
	if out.Rounds > 0 {
		fmt.Printf("rounds    %.1f\n", out.Rounds)
	}
	fmt.Printf("messages  %d\n", out.Messages)
	if out.Bytes > 0 {
		fmt.Printf("bytes     %d\n", out.Bytes)
	}
	if out.Dropped > 0 || out.Duped > 0 {
		fmt.Printf("lossy     %d dropped, %d duplicated\n", out.Dropped, out.Duped)
	}
	if out.Retransmits > 0 {
		fmt.Printf("reliable  %d retransmits\n", out.Retransmits)
	}
	if out.Err != nil {
		fmt.Printf("error     %v\n", out.Err)
	}
}
