// Command aarun executes a single approximate-agreement instance on the
// simulator (or the live goroutine runtime) and prints the outcome. It is
// the quickest way to poke at the protocols:
//
//	aarun -model crash -n 7 -t 3 -inputs 1,2,3,4,5,6,7 -eps 0.01
//	aarun -model witness -n 10 -t 3 -sched splitviews -byz 0:equivocate,1:extreme
//	aarun -model crash -n 5 -t 2 -live
//
// -scenario runs a declarative scenario spec (internal/scenario): one
// string names the scheduler, the fault composition, and the run shape,
// and replaces -n/-t/-sched/-crash/-byz in one go. The strings are the
// same ones the E12 table prints, so any row reproduces from the shell:
//
//	aarun -model crash -scenario "splitviews+crash/n=64,t=31"
//	aarun -model trim -scenario "skew+equivocate/n=64,t=9"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/aa"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aarun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aarun", flag.ContinueOnError)
	model := fs.String("model", "crash", "crash | trim | witness | sync")
	n := fs.Int("n", 7, "number of parties")
	t := fs.Int("t", 2, "fault bound")
	eps := fs.Float64("eps", 1e-3, "agreement precision")
	lo := fs.Float64("lo", 0, "promised input range low end")
	hi := fs.Float64("hi", 100, "promised input range high end")
	inputsFlag := fs.String("inputs", "", "comma-separated inputs (default: evenly spaced over the range)")
	schedName := fs.String("sched", aa.SchedRandom, "scheduler: sync|random|skew|partition|splitviews|staggered")
	scenarioFlag := fs.String("scenario", "", `scenario spec, e.g. "skew+equivocate/n=64,t=9"; overrides -n/-t/-sched/-crash/-byz`)
	seed := fs.Int64("seed", 1, "random seed")
	crashFlag := fs.String("crash", "", "crash plans id:afterSends,id:afterSends,...")
	byzFlag := fs.String("byz", "", "byzantine assignments id:behavior,... (silent|extreme|equivocate|spam|amplifier)")
	adaptive := fs.Bool("adaptive", false, "adaptive termination (estimate spread at runtime)")
	live := fs.Bool("live", false, "run on the goroutine runtime instead of the simulator")
	timeout := fs.Duration("timeout", 30*time.Second, "live-run timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *scenarioFlag != "" {
		sn, st, err := aa.ScenarioShape(*scenarioFlag)
		if err != nil {
			return err
		}
		*n = sn
		if st >= 0 {
			*t = st
		}
	}
	cfg := aa.Config{
		N: *n, T: *t, Epsilon: *eps, Lo: *lo, Hi: *hi, Adaptive: *adaptive,
	}
	switch *model {
	case "crash":
		cfg.Model = aa.ModelCrash
	case "trim":
		cfg.Model = aa.ModelByzantineTrim
	case "witness":
		cfg.Model = aa.ModelByzantineWitness
	case "sync":
		cfg.Model = aa.ModelSynchronous
		cfg.SyncRoundTicks = 20
	default:
		return fmt.Errorf("unknown model %q", *model)
	}

	inputs, err := parseInputs(*inputsFlag, *n, *lo, *hi)
	if err != nil {
		return err
	}

	if *live {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		out, err := aa.RunLive(ctx, cfg, inputs, aa.LiveOptions{Seed: *seed})
		if err != nil {
			return err
		}
		printOutcome(out, cfg)
		return nil
	}

	opts := []aa.SimOption{aa.WithSeed(*seed)}
	if *scenarioFlag != "" {
		opts = append(opts, aa.WithScenario(*scenarioFlag))
	} else {
		opts = append(opts, aa.WithScheduler(*schedName))
		crashOpts, err := parseCrashes(*crashFlag)
		if err != nil {
			return err
		}
		opts = append(opts, crashOpts...)
		byzOpts, err := parseByz(*byzFlag)
		if err != nil {
			return err
		}
		opts = append(opts, byzOpts...)
	}

	out, err := aa.Simulate(cfg, inputs, opts...)
	if err != nil {
		return err
	}
	printOutcome(out, cfg)
	if !out.OK() {
		return fmt.Errorf("run failed: agreed=%v valid=%v err=%v", out.Agreed, out.Valid, out.Err)
	}
	return nil
}

func parseInputs(s string, n int, lo, hi float64) ([]float64, error) {
	if s == "" {
		out := make([]float64, n)
		for i := range out {
			if n > 1 {
				out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
			} else {
				out[i] = lo
			}
		}
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("got %d inputs for %d parties", len(parts), n)
	}
	out := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("input %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func parseCrashes(s string) ([]aa.SimOption, error) {
	if s == "" {
		return nil, nil
	}
	var opts []aa.SimOption
	for _, part := range strings.Split(s, ",") {
		var id, after int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d:%d", &id, &after); err != nil {
			return nil, fmt.Errorf("crash plan %q (want id:afterSends): %w", part, err)
		}
		opts = append(opts, aa.WithCrash(id, after))
	}
	return opts, nil
}

func parseByz(s string) ([]aa.SimOption, error) {
	if s == "" {
		return nil, nil
	}
	var opts []aa.SimOption
	for _, part := range strings.Split(s, ",") {
		fields := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("byzantine assignment %q (want id:behavior)", part)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("byzantine assignment %q: %w", part, err)
		}
		opts = append(opts, aa.WithByzantine(id, fields[1]))
	}
	return opts, nil
}

func printOutcome(out *aa.Outcome, cfg aa.Config) {
	ids := make([]int, 0, len(out.Values))
	for id := range out.Values {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("party %2d -> %.9g\n", id, out.Values[id])
	}
	fmt.Printf("spread    %.3g (eps %.3g)\n", out.Spread, cfg.Epsilon)
	fmt.Printf("agreed    %v\n", out.Agreed)
	fmt.Printf("valid     %v\n", out.Valid)
	if out.Rounds > 0 {
		fmt.Printf("rounds    %.1f\n", out.Rounds)
	}
	fmt.Printf("messages  %d\n", out.Messages)
	if out.Bytes > 0 {
		fmt.Printf("bytes     %d\n", out.Bytes)
	}
	if out.Err != nil {
		fmt.Printf("error     %v\n", out.Err)
	}
}
