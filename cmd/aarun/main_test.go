package main

import (
	"errors"
	"os"
	"testing"

	"repro/internal/incident"
)

func TestParseInputsDefault(t *testing.T) {
	in, err := parseInputs("", 5, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 5 || in[0] != 0 || in[4] != 8 {
		t.Errorf("default inputs %v", in)
	}
	single, err := parseInputs("", 1, 3, 9)
	if err != nil || single[0] != 3 {
		t.Errorf("single default input %v, %v", single, err)
	}
}

func TestParseInputsExplicit(t *testing.T) {
	in, err := parseInputs(" 1, 2.5 ,3", 3, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if in[0] != 1 || in[1] != 2.5 || in[2] != 3 {
		t.Errorf("inputs %v", in)
	}
	if _, err := parseInputs("1,2", 3, 0, 10); err == nil {
		t.Error("count mismatch accepted")
	}
	if _, err := parseInputs("1,x,3", 3, 0, 10); err == nil {
		t.Error("garbage accepted")
	}
}

func TestParseCrashes(t *testing.T) {
	opts, err := parseCrashes("0:3, 2:10")
	if err != nil || len(opts) != 2 {
		t.Fatalf("opts %v err %v", opts, err)
	}
	if _, err := parseCrashes("nope"); err == nil {
		t.Error("malformed crash accepted")
	}
	none, err := parseCrashes("")
	if err != nil || none != nil {
		t.Errorf("empty crash flag: %v %v", none, err)
	}
}

func TestParseByz(t *testing.T) {
	opts, err := parseByz("0:equivocate,1:silent")
	if err != nil || len(opts) != 2 {
		t.Fatalf("opts %v err %v", opts, err)
	}
	if _, err := parseByz("0"); err == nil {
		t.Error("missing behavior accepted")
	}
	if _, err := parseByz("x:silent"); err == nil {
		t.Error("bad id accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if err := run([]string{"-model", "crash", "-n", "5", "-t", "2", "-eps", "0.01",
		"-hi", "10", "-sched", "splitviews", "-crash", "0:3"}); err != nil {
		t.Fatalf("crash run: %v", err)
	}
	if err := run([]string{"-model", "witness", "-n", "7", "-t", "2",
		"-byz", "0:equivocate"}); err != nil {
		t.Fatalf("witness run: %v", err)
	}
	if err := run([]string{"-model", "trim", "-n", "8", "-t", "1"}); err != nil {
		t.Fatalf("trim run: %v", err)
	}
	if err := run([]string{"-model", "sync", "-n", "7", "-t", "2", "-sched", "sync"}); err != nil {
		t.Fatalf("sync run: %v", err)
	}
}

func TestRunScenario(t *testing.T) {
	if err := run([]string{"-model", "trim", "-scenario", "skew+equivocate/n=15,t=2"}); err != nil {
		t.Fatalf("scenario run: %v", err)
	}
	// A spec without t inherits the -t flag's fault bound.
	if err := run([]string{"-model", "crash", "-t", "3", "-scenario", "splitviews/n=9"}); err != nil {
		t.Fatalf("scenario without t: %v", err)
	}
	if err := run([]string{"-model", "crash", "-scenario", "warp/n=9,t=2"}); err == nil {
		t.Error("unknown scenario scheduler accepted")
	}
	if err := run([]string{"-model", "crash", "-scenario", "sync+gremlin/n=9,t=2"}); err == nil {
		t.Error("unknown scenario fault accepted")
	}
	// More fault slots than the protocol tolerates must die at spec time.
	if err := run([]string{"-model", "crash", "-scenario", "sync+equivocate/n=9,t=5"}); err == nil {
		t.Error("overfaulted scenario accepted")
	}
}

func TestRunRejects(t *testing.T) {
	if err := run([]string{"-model", "warp"}); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run([]string{"-model", "crash", "-n", "4", "-t", "2"}); err == nil {
		t.Error("bad resilience accepted")
	}
	if err := run([]string{"-model", "crash", "-inputs", "1,2"}); err == nil {
		t.Error("input count mismatch accepted")
	}
	if err := run([]string{"-model", "crash", "-sched", "warp"}); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if err := run([]string{"-model", "crash", "-byz", "0:gremlin"}); err == nil {
		t.Error("unknown behavior accepted")
	}
	if err := run([]string{"-model", "crash", "-crash", "zzz"}); err == nil {
		t.Error("malformed crash plan accepted")
	}
}

func TestRecordReplayRoundTrip(t *testing.T) {
	path := t.TempDir() + "/run.bundle"
	// Flag-style adversary: synthesized scenario plus explicit overrides.
	if err := run([]string{"-model", "crash", "-n", "7", "-t", "2", "-eps", "0.01",
		"-sched", "splitviews", "-crash", "0:5", "-seed", "9", "-record", path}); err != nil {
		t.Fatalf("record: %v", err)
	}
	if err := run([]string{"-replay", path}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	// Scenario-style adversary.
	if err := run([]string{"-model", "trim", "-scenario", "skew+equivocate/n=15,t=2",
		"-eps", "0.01", "-record", path}); err != nil {
		t.Fatalf("scenario record: %v", err)
	}
	if err := run([]string{"-replay", path}); err != nil {
		t.Fatalf("scenario replay: %v", err)
	}
}

func TestRecordRejects(t *testing.T) {
	path := t.TempDir() + "/run.bundle"
	if err := run([]string{"-model", "crash", "-live", "-record", path}); err == nil {
		t.Error("-record -live accepted")
	}
	if err := run([]string{"-replay", t.TempDir() + "/missing.bundle"}); err == nil {
		t.Error("replay of a missing bundle succeeded")
	}
}

func TestReplayDetectsTampering(t *testing.T) {
	path := t.TempDir() + "/run.bundle"
	if err := run([]string{"-model", "crash", "-n", "7", "-t", "2", "-eps", "0.01",
		"-record", path}); err != nil {
		t.Fatalf("record: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-replay", path})
	if !errors.Is(err, incident.ErrMalformed) {
		t.Fatalf("tampered bundle: got %v, want ErrMalformed", err)
	}
}
