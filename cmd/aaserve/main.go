// Command aaserve is the agreement-as-a-service front end: it feeds a
// generated request stream (internal/workload) through the serving layer
// (internal/serve), runs one approximate-agreement instance per admitted
// request over a bounded worker pool, and prints the service-level verdict
// — goodput, latency percentiles, and the full shed/deadline/breaker/retry
// accounting. Every offered request lands in exactly one outcome; the
// daemon exits nonzero if the accounting identity ever breaks.
//
//	aaserve -workload "poisson:40+lognormal:4:0.5" -horizon 4000
//	aaserve -workload "burst:20:16:500+cohort:web:0.7:300:1+cohort:batch:0.3:1200:0" -mult 4 -saturate
//	aaserve -mode live -requests 32 -loss 0.1 -flap 1 -reliable
//	aaserve -scenario "random+loss:0.05+dup:0.02" -reliable -artifacts ./failures
//
// Modes: "virtual" (default) runs the deterministic virtual-time engine —
// byte-identical across runs, the E15 configuration; "sim" runs wall-clock
// with simulator-backed instances; "live" runs wall-clock with real
// goroutine parties over internal/livenet, propagating each request's
// deadline into the run context and SendTimeout, with -loss/-dup/-flap/
// -restart injecting live faults.
//
// -saturate rescales the workload's base rate to the worker pool's
// analytic saturation rate before applying -mult, so "-mult 4 -saturate"
// always means 4x overload regardless of the service model. -artifacts DIR
// captures deadline-exceeded, degraded, and breaker-tripping instances as
// replayable incident bundles with a printed one-line repro each,
// mirroring aafuzz -artifacts.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aaserve:", err)
		os.Exit(1)
	}
}

func protoFromModel(m string) (core.Protocol, error) {
	switch m {
	case "crash":
		return core.ProtoCrash, nil
	case "trim":
		return core.ProtoByzTrim, nil
	case "witness":
		return core.ProtoWitness, nil
	case "sync":
		return core.ProtoSync, nil
	default:
		return 0, fmt.Errorf("unknown model %q (crash | trim | witness | sync)", m)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aaserve", flag.ContinueOnError)
	workloadFlag := fs.String("workload", "poisson:40+lognormal:4:0.5",
		"workload spec (internal/workload token grammar)")
	mult := fs.Float64("mult", 1, "offered-load multiplier applied to the workload's rates")
	saturate := fs.Bool("saturate", false, "rescale the base rate to the pool's saturation rate before -mult")
	mode := fs.String("mode", "virtual", "virtual | sim | live")
	horizon := fs.Int64("horizon", 4000, "virtual-mode workload horizon in ticks")
	requests := fs.Int("requests", 32, "sim/live-mode request count")
	model := fs.String("model", "crash", "crash | trim | witness | sync")
	n := fs.Int("n", 10, "parties per instance")
	t := fs.Int("t", 3, "fault bound per instance")
	eps := fs.Float64("eps", 1e-3, "agreement precision")
	lo := fs.Float64("lo", 0, "input range low end")
	hi := fs.Float64("hi", 100, "input range high end")
	adaptive := fs.Bool("adaptive", false, "adaptive termination")
	scenarioFlag := fs.String("scenario", "random",
		`base instance scenario without /params, e.g. "random+loss:0.05"`)
	reliable := fs.Bool("reliable", false, "ack/retransmit transport inside each instance")
	seed := fs.Int64("seed", 1, "seed for the workload stream and instance inputs")
	workers := fs.Int("workers", 4, "worker pool size (concurrent instances)")
	queue := fs.Int("queue", 64, "admission queue depth")
	watermark := fs.Int("watermark", 0, "queue depth shedding priority-0 arrivals (default 3/4 of -queue)")
	bucket := fs.Float64("bucket", 0, "token-bucket admission rate per kilotick (0 = unlimited)")
	burst := fs.Float64("burst", 16, "token-bucket burst")
	retries := fs.Int("retries", 2, "retry budget after a failed instance")
	retryBase := fs.Int64("retry-base", 32, "first retry backoff in ticks")
	breaker := fs.Int("breaker", 5, "consecutive failures tripping a cohort breaker (0 = off)")
	cooldown := fs.Int64("cooldown", 500, "breaker cooldown in ticks before half-open")
	tick := fs.Duration("tick", time.Millisecond, "sim/live-mode wall duration of one workload tick")
	jitter := fs.Duration("jitter", 2*time.Millisecond, "live-mode delivery jitter")
	loss := fs.Float64("loss", 0, "live-mode per-send drop probability in [0,1)")
	dup := fs.Float64("dup", 0, "live-mode per-send duplication probability in [0,1)")
	flap := fs.Int("flap", 0, "live-mode flapping parties")
	restart := fs.Int("restart", 0, "live-mode crash-recovery parties")
	artifacts := fs.String("artifacts", "", "directory for failure incident bundles (see aafuzz -artifacts)")
	csv := fs.Bool("csv", false, "emit the outcome table as CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w, err := workload.Parse(*workloadFlag)
	if err != nil {
		return err
	}
	if *saturate {
		w.Arrival.Rate = w.SaturationRate(*workers)
	}
	w = w.Scale(*mult)

	proto, err := protoFromModel(*model)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Protocol: proto, N: *n, T: *t,
		Eps: *eps, Lo: *lo, Hi: *hi, Adaptive: *adaptive,
		Scenario: *scenarioFlag, Reliable: *reliable, Seed: *seed,
	}
	opts := serve.Options{
		Workers: *workers, QueueDepth: *queue, ShedWatermark: *watermark,
		BucketFill: *bucket, BucketBurst: *burst,
		RetryBudget: *retries, RetryBase: *retryBase,
		BreakerThreshold: *breaker, BreakerCooldown: *cooldown,
	}

	var sum *serve.Summary
	switch *mode {
	case "virtual":
		sum, err = serve.Simulate(w, cfg, opts, *horizon)
	case "sim", "live":
		backend := serve.BackendSim
		if *mode == "live" {
			backend = serve.BackendLive
		}
		sum, err = serve.ServeLive(w, cfg, opts, serve.LiveConfig{
			Backend: backend, TickDur: *tick, Requests: *requests,
			MaxJitter: *jitter, Loss: *loss, Dup: *dup,
			FlapParties: *flap, Restarts: *restart, Reliable: *reliable,
		})
	default:
		return fmt.Errorf("unknown mode %q (virtual | sim | live)", *mode)
	}
	if err != nil {
		return err
	}

	printSummary(w, sum, *csv)
	if *artifacts != "" {
		serve.WriteArtifacts(*artifacts, sum, cfg, os.Stdout)
	}
	return nil
}

func printSummary(w workload.Spec, sum *serve.Summary, csv bool) {
	tbl := trace.NewTable(fmt.Sprintf("aaserve: %s", w),
		"offered", "admitted", "decided", "shed", "deadline", "brk-open", "degraded",
		"retries", "trips", "goodput/kt", "p50", "p99", "msgs/inst")
	tbl.AddRow(
		fmt.Sprint(sum.Offered),
		fmt.Sprint(sum.Admitted),
		fmt.Sprint(sum.Decided),
		fmt.Sprint(sum.Shed),
		fmt.Sprint(sum.DeadlineExceeded),
		fmt.Sprint(sum.BreakerOpen),
		fmt.Sprint(sum.Degraded),
		fmt.Sprint(sum.Retries),
		fmt.Sprint(sum.BreakerTrips),
		trace.F(sum.Goodput()),
		fmt.Sprint(sum.LatencyP(0.5)),
		fmt.Sprint(sum.LatencyP(0.99)),
		trace.F(sum.MsgsPerInstance()),
	)
	if csv {
		tbl.CSV(os.Stdout)
	} else {
		tbl.Render(os.Stdout)
	}
	if sum.Shed > 0 {
		fmt.Printf("shed attribution: bucket=%d queue=%d watermark=%d\n",
			sum.ShedBucket, sum.ShedQueue, sum.ShedWatermark)
	}
}
