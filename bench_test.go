// Benchmark harness: one benchmark per evaluation artifact (experiments
// E1–E14 in DESIGN.md — every table and figure), plus micro-benchmarks of
// the substrates. Each experiment benchmark regenerates its table per
// iteration; run with -v to see a rendered table. cmd/aabench prints all
// tables with more seeds.
package repro_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/microbench"
	"repro/internal/multiset"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runExperiment drives one experiment per iteration and logs the final
// table under -v.
func runExperiment(b *testing.B, run func() (*trace.Table, error)) {
	b.Helper()
	var tbl *trace.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	if tbl != nil {
		var sb strings.Builder
		if err := tbl.Render(&sb); err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + sb.String())
	}
}

// BenchmarkE1Resilience regenerates Table E1 (resilience thresholds).
func BenchmarkE1Resilience(b *testing.B) {
	runExperiment(b, func() (*trace.Table, error) { return harness.E1Resilience(1) })
}

// BenchmarkE2Convergence regenerates Table E2 (per-round convergence rate).
func BenchmarkE2Convergence(b *testing.B) {
	runExperiment(b, func() (*trace.Table, error) { return harness.E2Convergence(1) })
}

// BenchmarkE3Rounds regenerates Table E3 (round complexity vs spread).
func BenchmarkE3Rounds(b *testing.B) {
	runExperiment(b, harness.E3Rounds)
}

// BenchmarkE4Messages regenerates Table E4 (message and bit complexity).
func BenchmarkE4Messages(b *testing.B) {
	runExperiment(b, harness.E4Messages)
}

// BenchmarkE5Trajectories regenerates Figure E5 (diameter by round under
// each Byzantine behavior).
func BenchmarkE5Trajectories(b *testing.B) {
	runExperiment(b, harness.E5Trajectories)
}

// BenchmarkE6Scaling regenerates Figure E6 (scaling with n), capped at
// n=32 to keep the iteration under a second; aabench runs the full sweep.
// It runs on the parallel experiment engine at the default worker count;
// compare against BenchmarkE6ScalingSequential for the engine's speedup
// (~GOMAXPROCS on a multi-core machine).
func BenchmarkE6Scaling(b *testing.B) {
	runExperiment(b, func() (*trace.Table, error) {
		return harness.E6ScalingSizes([]int{8, 16, 32})
	})
}

// BenchmarkE6ScalingSequential is BenchmarkE6Scaling pinned to one engine
// worker: the sequential baseline for the parallel-speedup acceptance
// criterion (the tables rendered by both are byte-identical).
func BenchmarkE6ScalingSequential(b *testing.B) {
	harness.SetParallelism(1)
	defer harness.SetParallelism(0)
	runExperiment(b, func() (*trace.Table, error) {
		return harness.E6ScalingSizes([]int{8, 16, 32})
	})
}

// BenchmarkE7Functions regenerates Table E7 (approximation-function
// ablation).
func BenchmarkE7Functions(b *testing.B) {
	runExperiment(b, func() (*trace.Table, error) { return harness.E7Functions(1) })
}

// BenchmarkE8Adaptive regenerates Table E8 (adaptive vs fixed-range
// termination).
func BenchmarkE8Adaptive(b *testing.B) {
	runExperiment(b, func() (*trace.Table, error) { return harness.E8Adaptive(1) })
}

// BenchmarkE9Attacks regenerates Table E9 (Byzantine strategy
// effectiveness).
func BenchmarkE9Attacks(b *testing.B) {
	runExperiment(b, func() (*trace.Table, error) { return harness.E9Attacks(1) })
}

// BenchmarkE10Vector regenerates Table E10 (coordinate-wise agreement in
// R^d).
func BenchmarkE10Vector(b *testing.B) {
	runExperiment(b, harness.E10Vector)
}

// BenchmarkE11FIFO regenerates Table E11 (FIFO vs unordered channels).
func BenchmarkE11FIFO(b *testing.B) {
	runExperiment(b, harness.E11FIFO)
}

// BenchmarkE12LargeN regenerates Table E12 (large-n scenario sweep),
// capped at n=64 to keep the iteration in the hundreds of milliseconds;
// aabench runs the full sweep up to n=256.
func BenchmarkE12LargeN(b *testing.B) {
	runExperiment(b, func() (*trace.Table, error) {
		return harness.E12LargeNSizes([]int{32, 64})
	})
}

// BenchmarkE13Resilience regenerates Table E13 (lossy-network resilience:
// raw vs reliable transport under loss/dup/outage/flap).
func BenchmarkE13Resilience(b *testing.B) {
	runExperiment(b, harness.E13Resilience)
}

// BenchmarkE14Recovery regenerates Table E14 (crash-recovery sweep:
// checkpoint lag vs transport, rollback-rejoin episodes).
func BenchmarkE14Recovery(b *testing.B) {
	runExperiment(b, harness.E14Recovery)
}

// BenchmarkE15Overload regenerates Table E15 (serving-layer overload
// sweep: offered-load multiplier x fault mix through the admission
// envelope).
func BenchmarkE15Overload(b *testing.B) {
	runExperiment(b, serve.E15Overload)
}

// --- micro-benchmarks of the substrates and a single protocol run ---

func benchOneRun(b *testing.B, p core.Params) {
	b.Helper()
	inputs := harness.LinearInputs(p.N, p.Lo, p.Hi)
	var msgs, bytes int
	for i := 0; i < b.N; i++ {
		rep, err := harness.Run(harness.Spec{
			Params:    p,
			Inputs:    inputs,
			Scheduler: sched.Named{Name: "random", Scheduler: &sched.UniformRandom{Min: 1, Max: 10}},
			Seed:      int64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatalf("run failed: %s", rep.Failure())
		}
		msgs = rep.Result.Stats.MessagesSent
		bytes = rep.Result.Stats.BytesSent
	}
	b.ReportMetric(float64(msgs), "msgs/run")
	b.ReportMetric(float64(bytes), "bytes/run")
}

// BenchmarkRunCrashAA measures one full crash-protocol execution
// (n=10, t=4, eps=1e-3).
func BenchmarkRunCrashAA(b *testing.B) {
	benchOneRun(b, core.Params{Protocol: core.ProtoCrash, N: 10, T: 4, Eps: 1e-3, Lo: 0, Hi: 1})
}

// BenchmarkRunByzTrimAA measures one full trim-protocol execution
// (n=15, t=2).
func BenchmarkRunByzTrimAA(b *testing.B) {
	benchOneRun(b, core.Params{Protocol: core.ProtoByzTrim, N: 15, T: 2, Eps: 1e-3, Lo: 0, Hi: 1})
}

// BenchmarkRunWitnessAA measures one full witness-protocol execution
// (n=10, t=3), the cubic-message member of the family.
func BenchmarkRunWitnessAA(b *testing.B) {
	benchOneRun(b, core.Params{Protocol: core.ProtoWitness, N: 10, T: 3, Eps: 1e-3, Lo: 0, Hi: 1})
}

// BenchmarkRBCRound measures n concurrent reliable broadcasts among n=16
// parties delivered to completion. The body lives in internal/microbench
// (shared with cmd/aabench's -json snapshot as "rbc/round").
func BenchmarkRBCRound(b *testing.B) {
	microbench.RBCRound(b)
}

// benchFuncs is the approximation-function inventory the micro-benchmarks
// sweep, on a quorum-sized multiset. The benchmark bodies live in
// internal/microbench, shared with cmd/aabench's -json snapshot so the two
// measurements can never drift apart.
func benchFuncs() []multiset.Func {
	return []multiset.Func{
		multiset.MidExtremes{Trim: 8},
		multiset.TrimmedMean{Trim: 8},
		multiset.Median{},
		multiset.SelectDouble{Trim: 8, K: 4},
	}
}

// BenchmarkApproxFuncs measures the per-round approximation functions on
// the trusted-sorted fast path — the path every protocol round actually
// takes (multiset.ApplyInPlace → ApplySorted).
func BenchmarkApproxFuncs(b *testing.B) {
	for _, fn := range benchFuncs() {
		fn := fn
		b.Run(fn.Name(), func(b *testing.B) { microbench.ApplySorted(b, fn) })
	}
}

// BenchmarkApproxFuncsValidated measures the validating Apply path (with
// its O(n) sortedness re-scan), the comparison point for the fast path.
func BenchmarkApproxFuncsValidated(b *testing.B) {
	for _, fn := range benchFuncs() {
		fn := fn
		b.Run(fn.Name(), func(b *testing.B) { microbench.ApplyValidated(b, fn) })
	}
}

// BenchmarkWireRoundtrip measures encode+decode of the core round message.
func BenchmarkWireRoundtrip(b *testing.B) {
	microbench.WireRoundtrip(b)
}

// BenchmarkWireAppendReuse measures the buffer-reusing encoder on a scratch
// buffer, the zero-allocation form of the wire hot path.
func BenchmarkWireAppendReuse(b *testing.B) {
	microbench.WireAppendReuse(b)
}

// BenchmarkContractionSearch measures the adversarial one-round contraction
// search used by E2/E7.
func BenchmarkContractionSearch(b *testing.B) {
	microbench.ContractionSearch(b)
}

// BenchmarkSimLoop measures the raw simulator event loop on each event
// core — the calendar-queue-vs-heap comparison the large-n sweeps ride on.
// The bodies live in internal/microbench (shared with cmd/aabench's -json
// snapshot as "simloop/calendar" and "simloop/heap").
func BenchmarkSimLoop(b *testing.B) {
	b.Run("calendar", func(b *testing.B) { microbench.SimLoop(b, sim.CoreCalendar) })
	b.Run("heap", func(b *testing.B) { microbench.SimLoop(b, sim.CoreHeap) })
}

// BenchmarkScenarioE12 measures one representative E12 unit: a full
// crash-protocol run at n=64 under the "splitviews+crash" scenario
// (shared with the snapshot as "scenario/e12").
func BenchmarkScenarioE12(b *testing.B) {
	microbench.ScenarioE12(b)
}

// BenchmarkDeliverBatch measures the tick-delivery core A/B — batched
// destination-grouped delivery versus the per-envelope reference loop on
// the same (observably identical) E12-style run (shared with the snapshot
// as "deliverbatch/on" and "deliverbatch/off").
func BenchmarkDeliverBatch(b *testing.B) {
	b.Run("on", func(b *testing.B) { microbench.DeliverBatch(b, sim.BatchOn) })
	b.Run("off", func(b *testing.B) { microbench.DeliverBatch(b, sim.BatchOff) })
}

// BenchmarkRunReused measures a full crash-protocol run on a warm recycled
// harness.RunContext — the zero-steady-state-allocation engine path
// (shared with the snapshot as "harness/run-reused").
func BenchmarkRunReused(b *testing.B) {
	microbench.RunReused(b)
}

// BenchmarkShardedTick measures the sharded tick-execution path A/B — the
// same dense-tick crash run at shards=1 (sequential reference) and
// shards=4 (partitioned workers + barrier merge). On a single-core host
// the s4 number reports the merge overhead; the wall-clock win needs
// GOMAXPROCS > 1 (shared with the snapshot as "shardedtick/s1" and
// "shardedtick/s4").
func BenchmarkShardedTick(b *testing.B) {
	b.Run("s1", func(b *testing.B) { microbench.ShardedTick(b, 1) })
	b.Run("s4", func(b *testing.B) { microbench.ShardedTick(b, 4) })
}
