package vector

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/sim"
)

// runVector executes a d-dimensional agreement on the simulator and
// returns the decided points of the non-faulty parties.
func runVector(t *testing.T, p Params, inputs [][]float64, crashes []sim.CrashPlan,
	byz map[sim.PartyID]fault.Behavior, scheduler sim.Scheduler, seed int64) map[sim.PartyID][]float64 {
	t.Helper()
	cfg := sim.Config{N: p.Base.N, Scheduler: scheduler, Seed: seed, Crashes: crashes}
	if len(byz) > 0 {
		cfg.Byzantine = map[sim.PartyID]sim.Process{}
		rounds, err := p.Base.FixedRounds()
		if err != nil {
			t.Fatal(err)
		}
		env := fault.Env{N: p.Base.N, Rounds: rounds, Lo: p.Base.Lo, Hi: p.Base.Hi}
		for id, b := range byz {
			cfg.Byzantine[id] = b.New(env)
		}
	}
	net, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	procs := make(map[sim.PartyID]*AA)
	for i := 0; i < p.Base.N; i++ {
		id := sim.PartyID(i)
		if _, isByz := byz[id]; isByz {
			continue
		}
		proc, err := New(p, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		procs[id] = proc
		if err := net.SetProcess(id, proc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := map[sim.PartyID][]float64{}
	for id, proc := range procs {
		if err := proc.Err(); err != nil {
			t.Fatal(err)
		}
		if pt, ok := proc.Outputs(); ok {
			out[id] = pt
		}
	}
	return out
}

func crashBase(n, tf int) core.Params {
	return core.Params{Protocol: core.ProtoCrash, N: n, T: tf, Eps: 1e-3, Lo: -10, Hi: 10}
}

func TestVectorValidate(t *testing.T) {
	p := Params{Base: crashBase(5, 2), Dim: 2}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.Dim = 0
	if err := bad.Validate(); err == nil {
		t.Error("dim 0 accepted")
	}
	bad = p
	bad.Base.N = 2
	if err := bad.Validate(); err == nil {
		t.Error("bad base accepted")
	}
	if _, err := New(p, []float64{1}); err == nil {
		t.Error("wrong input dimension accepted")
	}
	sp := Params{Base: core.Params{Protocol: core.ProtoSync, N: 4, T: 1, Eps: 0.1,
		Lo: 0, Hi: 1, RoundDuration: 5}, Dim: 2}
	if _, err := New(sp, []float64{0, 0}); err == nil {
		t.Error("synchronous base accepted for vector agreement")
	}
}

func TestVectorCrashAgreement2D(t *testing.T) {
	n := 7
	p := Params{Base: crashBase(n, 3), Dim: 2}
	inputs := make([][]float64, n)
	for i := range inputs {
		angle := 2 * math.Pi * float64(i) / float64(n)
		inputs[i] = []float64{8 * math.Cos(angle), 8 * math.Sin(angle)}
	}
	outs := runVector(t, p, inputs, []sim.CrashPlan{{Party: 0, AfterSends: 5}},
		nil, &sched.SplitViews{Boundary: 3, Fast: 1, Slow: 10}, 3)
	if len(outs) != n-1 {
		t.Fatalf("got %d outputs", len(outs))
	}
	assertVectorInvariants(t, p, inputs, outs, map[sim.PartyID]bool{0: true}, nil)
}

func TestVectorWitness3D(t *testing.T) {
	n := 7
	base := core.Params{Protocol: core.ProtoWitness, N: n, T: 2, Eps: 1e-2, Lo: 0, Hi: 1}
	p := Params{Base: base, Dim: 3}
	inputs := make([][]float64, n)
	for i := range inputs {
		f := float64(i) / float64(n-1)
		inputs[i] = []float64{f, 1 - f, f * f}
	}
	byz := map[sim.PartyID]fault.Behavior{
		0: fault.Equivocate{Stretch: 2},
		6: fault.Extreme{Value: 1e6},
	}
	outs := runVector(t, p, inputs, nil, byz,
		&sched.UniformRandom{Min: 1, Max: 8}, 11)
	if len(outs) != n-2 {
		t.Fatalf("got %d outputs", len(outs))
	}
	faulty := map[sim.PartyID]bool{0: true, 6: true}
	assertVectorInvariants(t, p, inputs, outs, faulty, faulty)
}

// assertVectorInvariants checks per-coordinate (box) validity against the
// non-Byzantine inputs and max-norm ε-agreement across outputs.
func assertVectorInvariants(t *testing.T, p Params, inputs [][]float64,
	outs map[sim.PartyID][]float64, crashed, byz map[sim.PartyID]bool) {
	t.Helper()
	for d := 0; d < p.Dim; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, in := range inputs {
			if byz[sim.PartyID(i)] {
				continue
			}
			lo = math.Min(lo, in[d])
			hi = math.Max(hi, in[d])
		}
		outLo, outHi := math.Inf(1), math.Inf(-1)
		for id, pt := range outs {
			if pt[d] < lo-1e-9 || pt[d] > hi+1e-9 {
				t.Errorf("party %d coord %d: %v outside hull [%v, %v]", id, d, pt[d], lo, hi)
			}
			outLo = math.Min(outLo, pt[d])
			outHi = math.Max(outHi, pt[d])
		}
		if outHi-outLo > p.Base.Eps+1e-9 {
			t.Errorf("coord %d spread %v > eps", d, outHi-outLo)
		}
	}
	_ = crashed
}

func TestVectorOutputsBeforeDecision(t *testing.T) {
	p := Params{Base: crashBase(3, 1), Dim: 2}
	proc, err := New(p, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := proc.Outputs(); ok {
		t.Error("outputs available before running")
	}
}

func TestVectorGarbageRouting(t *testing.T) {
	// Garbage, unwrapped messages, and out-of-range coordinate tags must
	// all be ignored without panicking. Use a standalone instance with a
	// stub API.
	p := Params{Base: crashBase(3, 1), Dim: 2}
	proc, err := New(p, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	net, err := sim.New(sim.Config{N: 3, Scheduler: sched.NewSynchronous(1), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pp, err := New(p, []float64{float64(i), float64(-i)})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			pp = proc
		}
		if err := net.SetProcess(sim.PartyID(i), pp); err != nil {
			t.Fatal(err)
		}
	}
	proc.Deliver(1, nil)
	proc.Deliver(1, []byte{99})
	proc.Deliver(1, []byte{6, 0xFF, 0xFF}) // wrapped, dim 65535: out of range
	if err := proc.Err(); err != nil {
		t.Fatal(err)
	}
}
