// Package vector extends approximate agreement from R to R^d by running
// one scalar protocol instance per coordinate, multiplexed over a single
// channel with coordinate-tagged messages. This is the classical
// coordinate-wise construction:
//
//   - ε-agreement holds per coordinate, hence in the max-norm: honest
//     outputs differ by at most ε in every coordinate.
//   - Validity is box validity: every output coordinate lies in the
//     interval hull of that coordinate of the non-faulty inputs, so
//     outputs lie in the bounding box of the honest inputs. (Full convex
//     validity in R^d is the later multidimensional-agreement line of
//     work and needs machinery beyond coordinate-wise composition; the
//     box guarantee is what this construction provably gives, and the
//     vector tests pin exactly that.)
//
// Any member of the scalar family can serve as the per-coordinate engine;
// the coordinate instances share the channel but are logically
// independent, so all resilience and round bounds carry over unchanged.
package vector

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Params configures a d-dimensional instance.
type Params struct {
	// Base configures the per-coordinate scalar protocol. Base.Lo and
	// Base.Hi must bound every coordinate of every honest input.
	Base core.Params
	// Dim is the dimensionality d >= 1.
	Dim int
}

// Validate checks the parameters.
func (p *Params) Validate() error {
	if p.Dim < 1 || p.Dim > 1<<15 {
		return fmt.Errorf("%w: dim = %d", core.ErrBadParams, p.Dim)
	}
	return p.Base.Validate()
}

// AA is the d-dimensional process: d scalar state machines behind one
// channel endpoint.
type AA struct {
	p        Params
	children []sim.Process
	apis     []*childAPI
	api      sim.API
	decided  bool
	pending  int
}

var _ sim.Process = (*AA)(nil)

// New builds a party with the given input point.
func New(p Params, input []float64) (*AA, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(input) != p.Dim {
		return nil, fmt.Errorf("%w: input has %d coordinates, want %d",
			core.ErrBadParams, len(input), p.Dim)
	}
	a := &AA{
		p:        p,
		children: make([]sim.Process, p.Dim),
		apis:     make([]*childAPI, p.Dim),
		pending:  p.Dim,
	}
	for d := 0; d < p.Dim; d++ {
		child, err := newScalar(p.Base, input[d])
		if err != nil {
			return nil, fmt.Errorf("vector: coordinate %d: %w", d, err)
		}
		a.children[d] = child
	}
	return a, nil
}

func newScalar(p core.Params, input float64) (sim.Process, error) {
	switch p.Protocol {
	case core.ProtoCrash, core.ProtoByzTrim:
		return core.NewAsyncAA(p, input)
	case core.ProtoWitness:
		return core.NewWitnessAA(p, input)
	default:
		return nil, fmt.Errorf("%w: vector agreement supports the asynchronous protocols", core.ErrBadParams)
	}
}

// childAPI exposes the parent channel to one coordinate's scalar instance,
// wrapping outbound traffic with the coordinate tag and intercepting
// Decide.
type childAPI struct {
	parent *AA
	dim    uint16
	done   bool
	value  float64
}

var _ sim.API = (*childAPI)(nil)

func (c *childAPI) ID() sim.PartyID { return c.parent.api.ID() }
func (c *childAPI) N() int          { return c.parent.api.N() }

func (c *childAPI) Send(to sim.PartyID, data []byte) {
	c.parent.api.Send(to, wire.MarshalWrapped(c.dim, data))
}

func (c *childAPI) Multicast(data []byte) {
	c.parent.api.Multicast(wire.MarshalWrapped(c.dim, data))
}

func (c *childAPI) SetTimer(delay sim.Time, tag uint64) {
	// Scalar async protocols are timer-free; a child requesting a timer
	// would need tag demultiplexing, which nothing here requires.
}

func (c *childAPI) Rand() *rand.Rand { return c.parent.api.Rand() }

func (c *childAPI) Decide(v float64) { c.parent.onChildDecide(c, v) }

// Init implements sim.Process.
func (a *AA) Init(api sim.API) {
	a.api = api
	for d := range a.children {
		a.apis[d] = &childAPI{parent: a, dim: uint16(d)}
		a.children[d].Init(a.apis[d])
	}
}

// Deliver implements sim.Process: unwrap and route by coordinate.
func (a *AA) Deliver(from sim.PartyID, data []byte) {
	kind, err := wire.Peek(data)
	if err != nil || kind != wire.KindWrapped {
		return
	}
	dim, inner, err := wire.UnmarshalWrapped(data)
	if err != nil || int(dim) >= a.p.Dim {
		return
	}
	a.children[dim].Deliver(from, inner)
}

// Outputs returns the decided point once every coordinate has decided.
func (a *AA) Outputs() ([]float64, bool) {
	if !a.decided {
		return nil, false
	}
	out := make([]float64, a.p.Dim)
	for d, api := range a.apis {
		out[d] = api.value
	}
	return out, true
}

// Err surfaces the first per-coordinate protocol error.
func (a *AA) Err() error {
	for d, child := range a.children {
		if ef, ok := child.(interface{ Err() error }); ok {
			if err := ef.Err(); err != nil {
				return fmt.Errorf("vector: coordinate %d: %w", d, err)
			}
		}
	}
	return nil
}

// onChildDecide is called by childAPI.Decide.
func (a *AA) onChildDecide(c *childAPI, v float64) {
	if c.done {
		return
	}
	c.done = true
	c.value = v
	a.pending--
	if a.pending == 0 && !a.decided {
		a.decided = true
		// The scalar Decide slot carries coordinate 0; the full point is
		// available via Outputs.
		a.api.Decide(a.apis[0].value)
	}
}
