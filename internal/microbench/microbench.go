// Package microbench holds the substrate micro-benchmark bodies shared by
// the root benchmark suite (bench_test.go) and cmd/aabench's -json
// snapshot, so `go test -bench` and the BENCH_*.json trajectory can never
// silently measure different code or parameters.
package microbench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/multiset"
	"repro/internal/rbc"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Case is one named micro-benchmark, keyed by its snapshot identifier
// (micro[*].name in BENCH_*.json).
type Case struct {
	Name string
	Fn   func(b *testing.B)
}

// SortedInput returns the canonical quorum-sized sorted multiset the
// approximation-function benchmarks run on.
func SortedInput() []float64 {
	sorted := make([]float64, 64)
	for i := range sorted {
		sorted[i] = float64(i)
	}
	return sorted
}

// Cases returns the snapshot micro-benchmark inventory, in snapshot order.
func Cases() []Case {
	return []Case{
		{"multiset/apply-sorted/midextremes", func(b *testing.B) {
			ApplySorted(b, multiset.MidExtremes{Trim: 8})
		}},
		{"multiset/apply-sorted/selectdouble", func(b *testing.B) {
			ApplySorted(b, multiset.SelectDouble{Trim: 8, K: 4})
		}},
		{"multiset/contraction-search", ContractionSearch},
		{"wire/value-roundtrip", WireRoundtrip},
		{"wire/value-append-reuse", WireAppendReuse},
		{"rbc/round", RBCRound},
		{"simloop/calendar", func(b *testing.B) { SimLoop(b, sim.CoreCalendar) }},
		{"simloop/heap", func(b *testing.B) { SimLoop(b, sim.CoreHeap) }},
		{"scenario/e12", ScenarioE12},
		{"deliverbatch/on", func(b *testing.B) { DeliverBatch(b, sim.BatchOn) }},
		{"deliverbatch/off", func(b *testing.B) { DeliverBatch(b, sim.BatchOff) }},
		{"shardedtick/s1", func(b *testing.B) { ShardedTick(b, 1) }},
		{"shardedtick/s4", func(b *testing.B) { ShardedTick(b, 4) }},
		{"harness/run-reused", RunReused},
	}
}

// stormProc is a protocol-free message storm: every delivery triggers one
// send until the party's budget drains, isolating the event core (push,
// pop, payload snapshot) from protocol arithmetic.
type stormProc struct {
	api    sim.API
	budget int
	buf    [1]byte
}

func (p *stormProc) Init(api sim.API) {
	p.api = api
	p.send(3)
}

func (p *stormProc) send(k int) {
	n := p.api.N()
	for i := 0; i < k && p.budget > 0; i++ {
		p.budget--
		to := (int(p.api.ID())*31 + p.budget*17 + i) % n
		p.api.Send(sim.PartyID(to), p.buf[:])
	}
	if p.budget == 0 {
		p.budget = -1
		p.api.Decide(0)
	}
}

func (p *stormProc) Deliver(sim.PartyID, []byte) { p.send(1) }

// SimLoop measures the raw simulator event loop on the selected core: 64
// parties, ~19k messages per iteration, delays spread over two hundred
// ticks so the calendar queue's wheel (and the heap's depth) both see
// realistic occupancy. This is the microbenchmark behind the calendar-
// versus-heap acceptance numbers in PERF.md.
func SimLoop(b *testing.B, eventCore sim.EventCore) {
	const n, budget = 64, 300
	for i := 0; i < b.N; i++ {
		net, err := sim.New(sim.Config{
			N:         n,
			Scheduler: &sched.UniformRandom{Min: 1, Max: 200},
			Seed:      1,
			Core:      eventCore,
		})
		if err != nil {
			b.Fatal(err)
		}
		for id := 0; id < n; id++ {
			if err := net.SetProcess(sim.PartyID(id), &stormProc{budget: budget}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := net.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// ScenarioE12 measures one representative E12 unit: a full crash-protocol
// run at n=64 under the "splitviews+crash" scenario — the workload the
// calendar-queue core exists for, resolved through the scenario registry
// exactly as the E12 driver does it.
func ScenarioE12(b *testing.B) {
	scen := scenario.MustParse("splitviews+crash/n=64,t=31")
	p := core.Params{Protocol: core.ProtoCrash, N: 64, T: 31, Eps: 1e-3, Lo: 0, Hi: 1}
	inputs := harness.BimodalInputs(64, 0, 1)
	for i := 0; i < b.N; i++ {
		spec, err := harness.SpecFrom(p, inputs, scen, 17)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := harness.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatalf("run failed: %s", rep.Failure())
		}
	}
}

// DeliverBatch measures the tick-delivery core A/B: the same E12-style
// crash-protocol run at n=64 with batched destination-grouped delivery
// (sim.BatchOn, the default) versus the per-envelope reference loop
// (sim.BatchOff). The runs are observably identical — pinned by the batch
// equivalence tests — so the delta is pure delivery-path cost.
func DeliverBatch(b *testing.B, mode sim.BatchMode) {
	harness.SetBatching(mode)
	defer harness.SetBatching(sim.BatchDefault)
	scen := scenario.MustParse("splitviews+crash/n=64,t=31")
	p := core.Params{Protocol: core.ProtoCrash, N: 64, T: 31, Eps: 1e-3, Lo: 0, Hi: 1}
	inputs := harness.BimodalInputs(64, 0, 1)
	spec, err := harness.SpecFrom(p, inputs, scen, 17)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep, err := harness.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatalf("run failed: %s", rep.Failure())
		}
	}
}

// ShardedTick measures the intra-run sharding A/B: the same E12-style
// crash-protocol run at n=256 (dense multicast ticks well past the worker
// dispatch threshold) at the given shard count, on a warm recycled run
// context so the delta is pure tick-execution cost. shards=1 is the
// sequential reference; shards=4 engages the concurrent worker phase and
// the barrier merge. The runs are observably identical — pinned by the
// shard equivalence tests — so on multi-core hardware the s4/s1 ratio is
// the intra-run speedup, and on a single core it is the sharding overhead.
func ShardedTick(b *testing.B, shards int) {
	harness.SetSharding(shards)
	defer harness.SetSharding(0)
	scen := scenario.MustParse("splitviews+crash/n=256,t=127")
	p := core.Params{Protocol: core.ProtoCrash, N: 256, T: 127, Eps: 1e-3, Lo: 0, Hi: 1}
	spec, err := harness.SpecFrom(p, harness.BimodalInputs(256, 0, 1), scen, 17)
	if err != nil {
		b.Fatal(err)
	}
	spec.MaxEvents = 20_000_000
	ctx := harness.NewRunContext()
	if rep, err := ctx.Run(spec); err != nil {
		b.Fatalf("warm-up failed: %v", err)
	} else if !rep.OK() {
		b.Fatalf("warm-up run failed: %s", rep.Failure())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := ctx.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatalf("run failed: %s", rep.Failure())
		}
	}
}

// RunReused measures one full crash-protocol run (n=10 t=4, splitviews
// scheduler with a crash storm) on a warm recycled harness.RunContext —
// the form every engine run takes since the run-context recycling PR. Its
// allocs_op in the snapshot is the steady-state pin: ~0 after warm-up
// (the reused-report path; TestRunReusedAllocs asserts exactly 0).
func RunReused(b *testing.B) {
	scen := scenario.MustParse("splitviews+crash/n=10,t=4")
	p := core.Params{Protocol: core.ProtoCrash, N: 10, T: 4, Eps: 1e-3, Lo: 0, Hi: 1}
	spec, err := harness.SpecFrom(p, harness.BimodalInputs(10, 0, 1), scen, 17)
	if err != nil {
		b.Fatal(err)
	}
	ctx := harness.NewRunContext()
	if rep, err := ctx.Run(spec); err != nil {
		b.Fatalf("warm-up failed: %v", err)
	} else if !rep.OK() {
		b.Fatalf("warm-up run failed: %s", rep.Failure())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := ctx.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatalf("run failed: %s", rep.Failure())
		}
	}
}

// RBCRound measures n concurrent reliable broadcasts among n=16 parties
// delivered to completion — the witness protocol's per-round substrate
// and the target of the dense-state arena refactor.
func RBCRound(b *testing.B) {
	const n, tf = 16, 5
	for i := 0; i < b.N; i++ {
		queue := make([][]byte, 0, 1024)
		senders := make([]uint16, 0, 1024)
		bcs := make([]*rbc.Broadcaster, n)
		for p := 0; p < n; p++ {
			p := p
			// The broadcaster encodes into a reused scratch buffer, so the
			// multicast function must snapshot the payload (as the simulator
			// and livenet runtimes do) before queueing it.
			bc, err := rbc.New(n, tf, uint16(p), func(data []byte) {
				queue = append(queue, append([]byte(nil), data...))
				senders = append(senders, uint16(p))
			})
			if err != nil {
				b.Fatal(err)
			}
			bcs[p] = bc
		}
		for p := 0; p < n; p++ {
			bcs[p].Broadcast(1, float64(p))
		}
		delivered := 0
		for len(queue) > 0 {
			data, from := queue[0], senders[0]
			queue, senders = queue[1:], senders[1:]
			for p := 0; p < n; p++ {
				if _, ok := bcs[p].Handle(from, data); ok {
					delivered++
				}
			}
		}
		if delivered != n*n {
			b.Fatalf("delivered %d, want %d", delivered, n*n)
		}
	}
}

// ApplySorted measures f's trusted-sorted fast path — the path every
// protocol round takes (multiset.ApplyInPlace → ApplySorted). f is boxed
// once, as the protocols hold it, so no per-call interface allocation is
// charged to the measurement.
func ApplySorted(b *testing.B, f multiset.Func) {
	sorted := SortedInput()
	for i := 0; i < b.N; i++ {
		if _, err := multiset.ApplySorted(f, sorted); err != nil {
			b.Fatal(err)
		}
	}
}

// ApplyValidated measures f's validating Apply path (with its O(n)
// sortedness re-scan), the comparison point for ApplySorted.
func ApplyValidated(b *testing.B, f multiset.Func) {
	sorted := SortedInput()
	for i := 0; i < b.N; i++ {
		if _, err := f.Apply(sorted); err != nil {
			b.Fatal(err)
		}
	}
}

// ContractionSearch measures the adversarial one-round contraction search
// used by experiments E2 and E7.
func ContractionSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := multiset.WorstContraction(multiset.MidExtremes{},
			multiset.ViewModel{N: 9, T: 4}, 500, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// WireRoundtrip measures allocate-per-message encode plus decode of the
// core round message.
func WireRoundtrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := wire.MarshalValue(wire.Value{Round: 7, Horizon: 30, Value: 3.25})
		if _, err := wire.UnmarshalValue(m); err != nil {
			b.Fatal(err)
		}
	}
}

// WireAppendReuse measures the buffer-reusing encoder on a scratch buffer,
// the zero-allocation form of the wire hot path.
func WireAppendReuse(b *testing.B) {
	buf := make([]byte, 0, wire.ValueSize)
	for i := 0; i < b.N; i++ {
		buf = wire.AppendValue(buf[:0], wire.Value{Round: 7, Horizon: 30, Value: 3.25})
		if _, err := wire.UnmarshalValue(buf); err != nil {
			b.Fatal(err)
		}
	}
}
