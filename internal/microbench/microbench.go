// Package microbench holds the substrate micro-benchmark bodies shared by
// the root benchmark suite (bench_test.go) and cmd/aabench's -json
// snapshot, so `go test -bench` and the BENCH_*.json trajectory can never
// silently measure different code or parameters.
package microbench

import (
	"testing"

	"repro/internal/multiset"
	"repro/internal/wire"
)

// Case is one named micro-benchmark, keyed by its snapshot identifier
// (micro[*].name in BENCH_*.json).
type Case struct {
	Name string
	Fn   func(b *testing.B)
}

// SortedInput returns the canonical quorum-sized sorted multiset the
// approximation-function benchmarks run on.
func SortedInput() []float64 {
	sorted := make([]float64, 64)
	for i := range sorted {
		sorted[i] = float64(i)
	}
	return sorted
}

// Cases returns the snapshot micro-benchmark inventory, in snapshot order.
func Cases() []Case {
	return []Case{
		{"multiset/apply-sorted/midextremes", func(b *testing.B) {
			ApplySorted(b, multiset.MidExtremes{Trim: 8})
		}},
		{"multiset/apply-sorted/selectdouble", func(b *testing.B) {
			ApplySorted(b, multiset.SelectDouble{Trim: 8, K: 4})
		}},
		{"multiset/contraction-search", ContractionSearch},
		{"wire/value-roundtrip", WireRoundtrip},
		{"wire/value-append-reuse", WireAppendReuse},
	}
}

// ApplySorted measures f's trusted-sorted fast path — the path every
// protocol round takes (multiset.ApplyInPlace → ApplySorted). f is boxed
// once, as the protocols hold it, so no per-call interface allocation is
// charged to the measurement.
func ApplySorted(b *testing.B, f multiset.Func) {
	sorted := SortedInput()
	for i := 0; i < b.N; i++ {
		if _, err := multiset.ApplySorted(f, sorted); err != nil {
			b.Fatal(err)
		}
	}
}

// ApplyValidated measures f's validating Apply path (with its O(n)
// sortedness re-scan), the comparison point for ApplySorted.
func ApplyValidated(b *testing.B, f multiset.Func) {
	sorted := SortedInput()
	for i := 0; i < b.N; i++ {
		if _, err := f.Apply(sorted); err != nil {
			b.Fatal(err)
		}
	}
}

// ContractionSearch measures the adversarial one-round contraction search
// used by experiments E2 and E7.
func ContractionSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := multiset.WorstContraction(multiset.MidExtremes{},
			multiset.ViewModel{N: 9, T: 4}, 500, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// WireRoundtrip measures allocate-per-message encode plus decode of the
// core round message.
func WireRoundtrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := wire.MarshalValue(wire.Value{Round: 7, Horizon: 30, Value: 3.25})
		if _, err := wire.UnmarshalValue(m); err != nil {
			b.Fatal(err)
		}
	}
}

// WireAppendReuse measures the buffer-reusing encoder on a scratch buffer,
// the zero-allocation form of the wire hot path.
func WireAppendReuse(b *testing.B) {
	buf := make([]byte, 0, wire.ValueSize)
	for i := 0; i < b.N; i++ {
		buf = wire.AppendValue(buf[:0], wire.Value{Round: 7, Horizon: 30, Value: 3.25})
		if _, err := wire.UnmarshalValue(buf); err != nil {
			b.Fatal(err)
		}
	}
}
