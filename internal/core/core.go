package core
