package core

import (
	"math"
	"testing"

	"repro/internal/wire"
)

func TestNewSyncAARejects(t *testing.T) {
	good := Params{Protocol: ProtoSync, N: 4, T: 1, Eps: 0.25, Lo: 0, Hi: 1, RoundDuration: 10}
	if _, err := NewSyncAA(good, 0.5); err != nil {
		t.Fatal(err)
	}
	wrongProto := good
	wrongProto.Protocol = ProtoCrash
	if _, err := NewSyncAA(wrongProto, 0.5); err == nil {
		t.Error("wrong protocol accepted")
	}
	if _, err := NewSyncAA(good, math.NaN()); err == nil {
		t.Error("NaN input accepted")
	}
	if _, err := NewSyncAA(good, 5); err == nil {
		t.Error("out-of-range input accepted")
	}
	bad := good
	bad.RoundDuration = 0
	if _, err := NewSyncAA(bad, 0.5); err == nil {
		t.Error("missing round duration accepted")
	}
}

func TestSyncAAImmediateDecision(t *testing.T) {
	p := Params{Protocol: ProtoSync, N: 4, T: 1, Eps: 10, Lo: 0, Hi: 1, RoundDuration: 10}
	s, err := NewSyncAA(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	api := newFakeAPI(0, 4)
	s.Init(api)
	if !api.decided || api.decision != 0.5 {
		t.Fatalf("pre-converged sync did not decide: %v %v", api.decided, api.decision)
	}
	if len(api.timers) != 0 {
		t.Error("timers set despite immediate decision")
	}
}

func TestWitnessAAImmediateDecision(t *testing.T) {
	p := Params{Protocol: ProtoWitness, N: 4, T: 1, Eps: 10, Lo: 0, Hi: 1}
	w, err := NewWitnessAA(p, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	api := newFakeAPI(0, 4)
	w.Init(api)
	if !api.decided || api.decision != 0.25 {
		t.Fatalf("pre-converged witness did not decide: %v %v", api.decided, api.decision)
	}
}

func TestWitnessAAAccessors(t *testing.T) {
	p := Params{Protocol: ProtoWitness, N: 4, T: 1, Eps: 0.25, Lo: 0, Hi: 1}
	w, err := NewWitnessAA(p, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := w.Estimate(); !ok || v != 0.75 {
		t.Errorf("Estimate = %v, %v", v, ok)
	}
	api := newFakeAPI(0, 4)
	w.Init(api)
	if w.Round() != 1 {
		t.Errorf("Round = %d", w.Round())
	}
}

func TestAsyncAADoubleDecideIgnored(t *testing.T) {
	p := crashParams(3, 1)
	p.Eps = 10 // immediate decision
	a, err := NewAsyncAA(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	api := newFakeAPI(0, 3)
	a.Init(api)
	if !a.Decided() {
		t.Fatal("no immediate decision")
	}
	// Messages after deciding are harmless.
	a.Deliver(1, wire.MarshalValue(wire.Value{Round: 1, Value: 0}))
	a.Deliver(1, wire.MarshalDecided(wire.Decided{Value: 0}))
	if api.decision != 0.5 {
		t.Errorf("decision changed to %v", api.decision)
	}
}

func TestDefaultFuncUnknownProtocol(t *testing.T) {
	p := Params{Protocol: Protocol(42)}
	if p.DefaultFunc() != nil {
		t.Error("unknown protocol returned a function")
	}
	if MinN(Protocol(42), 1) != math.MaxInt {
		t.Error("unknown protocol MinN not saturated")
	}
}

func TestAsyncAAFailPath(t *testing.T) {
	// Force an internal error by corrupting the function after
	// construction (simulates an invariant break) and verify the protocol
	// stalls with a recorded error instead of panicking.
	p := crashParams(3, 1)
	p.Eps = 0.25
	a, err := NewAsyncAA(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	a.fn = brokenFunc{}
	api := newFakeAPI(0, 3)
	a.Init(api)
	feed(t, a, 0, 1, 0)
	feed(t, a, 1, 1, 1)
	if a.Err() == nil {
		t.Fatal("broken function did not surface an error")
	}
	if a.Decided() {
		t.Fatal("decided despite internal error")
	}
	// Further traffic is ignored once failed.
	feed(t, a, 2, 1, 1)
	if a.Round() != 1 {
		t.Error("advanced after failure")
	}
}

type brokenFunc struct{}

func (brokenFunc) Name() string                     { return "broken" }
func (brokenFunc) MinInputs() int                   { return 1 }
func (brokenFunc) Apply([]float64) (float64, error) { return 0, errBroken }

var errBroken = errTestBroken{}

type errTestBroken struct{}

func (errTestBroken) Error() string { return "broken on purpose" }
