package core

import (
	"fmt"
	"math/bits"

	"repro/internal/multiset"
	"repro/internal/rbc"
	"repro/internal/sim"
	"repro/internal/wire"
)

// WitnessAA is the optimal-resilience asynchronous Byzantine protocol
// (ProtoWitness, n ≥ 3t+1). Each round:
//
//  1. Every party reliably broadcasts its current value (internal/rbc), so
//     a Byzantine party cannot tell different parties different values.
//  2. When a party has RBC-delivered round values from n−t distinct
//     origins, it multicasts a report: the set of origins it holds.
//  3. A received report is satisfied once every origin it lists has been
//     RBC-delivered locally. When n−t reports are satisfied, the party
//     applies the approximation function to its delivered multiset and
//     advances. The n−t satisfied reporters are its witnesses.
//
// Two honest parties share ≥ n−2t ≥ t+1 witnesses, hence an honest common
// witness w; both parties' multisets contain w's full report set (≥ n−t
// values, identical by RBC agreement). With f = MidExtremes∘reduce^t the
// median of those ≥ 2t+1 common values survives both parties' trims, which
// yields provable per-round halving, and trimming t from each side restores
// validity against the ≤ t Byzantine values per multiset. This is the
// witness technique the optimal-resilience literature built on the 1987
// foundations; it costs Θ(n³) messages per round (n reliable broadcasts of
// Θ(n²) each), which experiment E4 measures against the Θ(n²) protocols.
//
// Bookkeeping is dense: per-round state lives in index-addressed arrays
// (value slots by origin, delivered/satisfied bitsets, pending reports as
// origin bitmasks), so report coverage checks are word-wide subset tests
// instead of map probes, and completed rounds recycle their arrays through
// a free ring and release the RBC arena slab (rbc.ReleaseRound).
type WitnessAA struct {
	p       Params
	api     sim.API
	bcast   *rbc.Broadcaster
	fn      multiset.Func
	words   int        // bitset words per party set
	rounds  []witRound // indexed by round, 1..horizon
	freeArr []*witArrays
	// Scratch buffers reused across rounds; none survive a Deliver call.
	viewBuf    []float64 // reception view handed to the approximation fn
	maskBuf    []uint64  // origin bitmask of the report being filed
	sendersBuf []uint16  // origins listed in this party's own report
	repScratch []uint16  // decode-into scratch for incoming reports
	wireBuf    []byte    // wire-encoding scratch for report multicasts
	// mcast caches the api.Multicast bound-method value: taking it afresh
	// every Init would allocate a closure per party per run. Rebuilt only
	// when the API identity changes (mcastAPI), which a recycled context
	// never does — its party i always gets the same simulator record.
	mcast    func(data []byte)
	mcastAPI sim.API
	v        float64
	round    uint32
	horizon  uint32
	decided  bool
	err      error
}

// witRound is one round's bookkeeping slot; arr is nil until the round
// sees traffic and is recycled through the free ring after cleanup.
type witRound struct {
	arr     *witArrays
	sentRep bool
}

// witArrays is the dense per-round state: one value slot per origin, a
// delivered-origin bitset, a satisfied-reporter bitset, and the pending
// reports as per-reporter origin bitmasks.
type witArrays struct {
	vals       []float64 // RBC-delivered value per origin
	have       []uint64  // origins delivered locally
	sat        []uint64  // reporters whose report is satisfied
	pendActive []uint64  // reporters with a pending (uncovered) report
	pendMask   []uint64  // words-wide origin mask per reporter
	haveCnt    int
	satCnt     int
}

var (
	_ sim.Process      = (*WitnessAA)(nil)
	_ sim.BatchProcess = (*WitnessAA)(nil)
	_ sim.Estimator    = (*WitnessAA)(nil)
)

// NewWitnessAA builds a party of the witness protocol. Adaptive mode is not
// supported: the witness protocol derives its common round count from the
// public range, which is what makes its guarantees unconditional.
func NewWitnessAA(p Params, input float64) (*WitnessAA, error) {
	w := &WitnessAA{}
	if err := w.Reset(p, input); err != nil {
		return nil, err
	}
	return w, nil
}

// Reset re-initializes the party for a new run with NewWitnessAA's
// validation, recycling the round ring, the dense per-round arrays, the
// broadcaster (rbc slabs included), and every scratch buffer. A shape
// change (different N) drops the shape-bound pools; a same-shape reuse
// allocates nothing after warm-up.
func (w *WitnessAA) Reset(p Params, input float64) error {
	if p.Protocol != ProtoWitness {
		return fmt.Errorf("%w: WitnessAA requires ProtoWitness, got %s", ErrBadParams, p.Protocol)
	}
	if p.Adaptive {
		return fmt.Errorf("%w: witness protocol is fixed-range only", ErrBadParams)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if !isUsable(input) {
		return fmt.Errorf("%w: non-finite input %v", ErrBadParams, input)
	}
	if input < p.Lo || input > p.Hi {
		return fmt.Errorf("%w: input %v outside promised range [%v, %v]",
			ErrBadParams, input, p.Lo, p.Hi)
	}
	sameShape := p.N == w.p.N
	for i := range w.rounds {
		if a := w.rounds[i].arr; a != nil {
			if sameShape {
				w.recycleArrays(a)
			}
			w.rounds[i].arr = nil
		}
	}
	w.rounds = w.rounds[:0]
	if !sameShape {
		clear(w.freeArr)
		w.freeArr = w.freeArr[:0]
	}
	w.p = p
	w.fn = p.fn()
	w.v = input
	w.words = (p.N + 63) / 64
	w.api = nil
	w.round, w.horizon = 0, 0
	w.decided = false
	w.err = nil
	return nil
}

// recycleArrays zeroes a round's bitsets and counters and pushes the
// arrays onto the free ring — the single definition of "clean" shared by
// mid-run cleanup and cross-run Reset.
func (w *WitnessAA) recycleArrays(a *witArrays) {
	for i := range a.have {
		a.have[i] = 0
		a.sat[i] = 0
		a.pendActive[i] = 0
	}
	a.haveCnt = 0
	a.satCnt = 0
	w.freeArr = append(w.freeArr, a)
}

// Init implements sim.Process. All per-run structures are
// reused-or-allocated: a recycled party re-enters Init with warm buffers
// (and a resettable broadcaster) and takes the same code path a fresh one
// does, just without the allocations.
func (w *WitnessAA) Init(api sim.API) {
	w.api = api
	if w.mcast == nil || w.mcastAPI != api {
		w.mcast = api.Multicast
		w.mcastAPI = api
	}
	if w.bcast == nil {
		b, err := rbc.New(w.p.N, w.p.T, uint16(api.ID()), w.mcast)
		if err != nil {
			w.err = err
			return
		}
		w.bcast = b
	} else if err := w.bcast.Reset(w.p.N, w.p.T, uint16(api.ID()), w.mcast); err != nil {
		w.err = err
		return
	}
	r, err := w.p.FixedRounds()
	if err != nil {
		w.err = err
		return
	}
	w.horizon = uint32(r)
	if w.horizon == 0 {
		w.decided = true
		api.Decide(w.v)
		return
	}
	w.bcast.SetMaxRound(w.horizon)
	if need := int(w.horizon) + 1; cap(w.rounds) >= need {
		w.rounds = w.rounds[:need]
		for i := range w.rounds {
			w.rounds[i] = witRound{}
		}
	} else {
		w.rounds = make([]witRound, need)
	}
	if cap(w.maskBuf) >= w.words {
		w.maskBuf = w.maskBuf[:w.words]
	} else {
		w.maskBuf = make([]uint64, w.words)
	}
	if w.viewBuf == nil {
		w.viewBuf = make([]float64, 0, w.p.N)
	}
	if w.sendersBuf == nil {
		w.sendersBuf = make([]uint16, 0, w.p.N)
	}
	w.round = 1
	w.bcast.Broadcast(w.round, w.v)
}

// Deliver implements sim.Process.
func (w *WitnessAA) Deliver(from sim.PartyID, data []byte) {
	w.deliver(from, data)
}

// DeliverBatch implements sim.BatchProcess: a quorum's worth of RBC
// deliveries and reports is integrated in one call per tick. Observable
// behavior (echo/ready/report multicasts, round advances, the decision)
// keeps its exact per-envelope points; the batching win is the warm
// per-party state across the tick's messages.
func (w *WitnessAA) DeliverBatch(b *sim.Batch) {
	for env := b.Next(); env != nil; env = b.Next() {
		w.deliver(env.From, env.Data)
	}
}

// deliver is the shared per-message body.
func (w *WitnessAA) deliver(from sim.PartyID, data []byte) {
	if w.err != nil || w.decided {
		return
	}
	kind, err := wire.Peek(data)
	if err != nil {
		return
	}
	switch kind {
	case wire.KindRBC:
		if d, ok := w.bcast.Handle(uint16(from), data); ok {
			w.onDelivered(d)
		}
	case wire.KindReport:
		m, err := wire.UnmarshalReportInto(data, w.repScratch)
		if err != nil {
			return
		}
		w.repScratch = m.Senders[:0]
		w.onReport(from, m)
	default:
		// Other kinds belong to other protocols; ignore.
	}
}

// arrays returns round's dense state, pulling recycled arrays from the
// free ring (or allocating) on first touch.
func (w *WitnessAA) arrays(round uint32) *witArrays {
	rr := &w.rounds[round]
	if rr.arr != nil {
		return rr.arr
	}
	var a *witArrays
	if k := len(w.freeArr); k > 0 {
		a = w.freeArr[k-1]
		w.freeArr = w.freeArr[:k-1]
	} else {
		sets := make([]uint64, 3*w.words)
		a = &witArrays{
			vals:       make([]float64, w.p.N),
			have:       sets[:w.words:w.words],
			sat:        sets[w.words : 2*w.words : 2*w.words],
			pendActive: sets[2*w.words:],
			pendMask:   make([]uint64, w.p.N*w.words),
		}
	}
	rr.arr = a
	return a
}

// onDelivered records an RBC delivery and re-evaluates reports and quorums.
func (w *WitnessAA) onDelivered(d rbc.Delivery) {
	if !isUsable(d.Value) || d.Round < w.round || d.Round > w.horizon {
		return
	}
	a := w.arrays(d.Round)
	wd, bit := int(d.Origin)>>6, uint64(1)<<(d.Origin&63)
	if a.have[wd]&bit != 0 {
		return
	}
	a.have[wd] |= bit
	a.vals[d.Origin] = d.Value
	a.haveCnt++
	w.maybeReport(d.Round, a)
	w.recheckPending(a)
	w.maybeAdvance()
}

// maybeReport sends this party's report once it holds n−t round values.
func (w *WitnessAA) maybeReport(round uint32, a *witArrays) {
	if w.rounds[round].sentRep || a.haveCnt < w.p.Quorum() {
		return
	}
	w.rounds[round].sentRep = true
	senders := w.sendersBuf[:0]
	for wi, word := range a.have {
		for word != 0 {
			senders = append(senders, uint16(wi*64+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	w.sendersBuf = senders[:0]
	w.wireBuf = wire.AppendReport(w.wireBuf[:0], wire.Report{Round: round, Senders: senders})
	w.api.Multicast(w.wireBuf)
}

// onReport files a report as satisfied or pending. Only a party's first
// report per round counts.
func (w *WitnessAA) onReport(from sim.PartyID, m wire.Report) {
	if m.Round < w.round || m.Round > w.horizon {
		return
	}
	if len(m.Senders) < w.p.Quorum() || len(m.Senders) > w.p.N {
		return // a valid report lists at least a quorum of origins
	}
	for _, s := range m.Senders {
		if int(s) >= w.p.N {
			return
		}
	}
	if from < 0 || int(from) >= w.p.N {
		return
	}
	a := w.arrays(m.Round)
	wd, bit := int(from)>>6, uint64(1)<<(uint(from)&63)
	if a.sat[wd]&bit != 0 || a.pendActive[wd]&bit != 0 {
		return
	}
	mask := w.maskBuf
	for i := range mask {
		mask[i] = 0
	}
	for _, s := range m.Senders {
		mask[s>>6] |= 1 << (s & 63)
	}
	if subset(mask, a.have) {
		a.sat[wd] |= bit
		a.satCnt++
		w.maybeAdvance()
		return
	}
	copy(a.pendMask[int(from)*w.words:(int(from)+1)*w.words], mask)
	a.pendActive[wd] |= bit
}

// subset reports whether every bit of mask is set in have.
func subset(mask, have []uint64) bool {
	for i, m := range mask {
		if m&^have[i] != 0 {
			return false
		}
	}
	return true
}

// recheckPending re-tests pending reports after a new delivery: a pending
// report is satisfied once its origin mask is a subset of the delivered
// set — a word-wide bitset test per reporter.
func (w *WitnessAA) recheckPending(a *witArrays) {
	for wi, word := range a.pendActive {
		for word != 0 {
			bit := word & -word
			word &^= bit
			f := wi*64 + bits.TrailingZeros64(bit)
			if subset(a.pendMask[f*w.words:(f+1)*w.words], a.have) {
				a.pendActive[wi] &^= bit
				a.sat[wi] |= bit
				a.satCnt++
			}
		}
	}
}

// maybeAdvance finishes the current round while it has n−t satisfied
// witnesses, then either starts the next round or decides.
func (w *WitnessAA) maybeAdvance() {
	for !w.decided && w.err == nil {
		a := w.rounds[w.round].arr
		if a == nil || a.satCnt < w.p.Quorum() {
			return
		}
		view := w.viewBuf[:0]
		for wi, word := range a.have {
			for word != 0 {
				view = append(view, a.vals[wi*64+bits.TrailingZeros64(word)])
				word &= word - 1
			}
		}
		w.viewBuf = view
		next, err := multiset.ApplyInPlace(w.fn, view)
		if err != nil {
			w.err = fmt.Errorf("core: witness round %d: %w", w.round, err)
			return
		}
		w.v = next
		w.cleanup(w.round)
		w.round++
		if w.round > w.horizon {
			w.decided = true
			w.api.Decide(w.v)
			return
		}
		w.bcast.Broadcast(w.round, w.v)
	}
}

// cleanup recycles the round's arrays into the free ring and releases the
// RBC arena slab for the round.
func (w *WitnessAA) cleanup(round uint32) {
	if a := w.rounds[round].arr; a != nil {
		w.recycleArrays(a)
		w.rounds[round].arr = nil
	}
	w.bcast.ReleaseRound(round)
}

// Err reports an internal invariant failure, if any.
func (w *WitnessAA) Err() error { return w.err }

// Estimate implements sim.Estimator.
func (w *WitnessAA) Estimate() (float64, bool) { return w.v, true }

// Round reports the round currently being collected (for tests).
func (w *WitnessAA) Round() uint32 { return w.round }
