package core

import (
	"fmt"

	"repro/internal/multiset"
	"repro/internal/rbc"
	"repro/internal/sim"
	"repro/internal/wire"
)

// WitnessAA is the optimal-resilience asynchronous Byzantine protocol
// (ProtoWitness, n ≥ 3t+1). Each round:
//
//  1. Every party reliably broadcasts its current value (internal/rbc), so
//     a Byzantine party cannot tell different parties different values.
//  2. When a party has RBC-delivered round values from n−t distinct
//     origins, it multicasts a report: the set of origins it holds.
//  3. A received report is satisfied once every origin it lists has been
//     RBC-delivered locally. When n−t reports are satisfied, the party
//     applies the approximation function to its delivered multiset and
//     advances. The n−t satisfied reporters are its witnesses.
//
// Two honest parties share ≥ n−2t ≥ t+1 witnesses, hence an honest common
// witness w; both parties' multisets contain w's full report set (≥ n−t
// values, identical by RBC agreement). With f = MidExtremes∘reduce^t the
// median of those ≥ 2t+1 common values survives both parties' trims, which
// yields provable per-round halving, and trimming t from each side restores
// validity against the ≤ t Byzantine values per multiset. This is the
// witness technique the optimal-resilience literature built on the 1987
// foundations; it costs Θ(n³) messages per round (n reliable broadcasts of
// Θ(n²) each), which experiment E4 measures against the Θ(n²) protocols.
type WitnessAA struct {
	p         Params
	api       sim.API
	bcast     *rbc.Broadcaster
	fn        multiset.Func
	vals      map[uint32]map[uint16]float64
	pending   map[uint32]map[sim.PartyID][]uint16
	satisfied map[uint32]map[sim.PartyID]bool
	sentRep   map[uint32]bool
	viewBuf   []float64 // per-round reception scratch, reused across rounds
	v         float64
	round     uint32
	horizon   uint32
	decided   bool
	err       error
}

var (
	_ sim.Process   = (*WitnessAA)(nil)
	_ sim.Estimator = (*WitnessAA)(nil)
)

// NewWitnessAA builds a party of the witness protocol. Adaptive mode is not
// supported: the witness protocol derives its common round count from the
// public range, which is what makes its guarantees unconditional.
func NewWitnessAA(p Params, input float64) (*WitnessAA, error) {
	if p.Protocol != ProtoWitness {
		return nil, fmt.Errorf("%w: WitnessAA requires ProtoWitness, got %s", ErrBadParams, p.Protocol)
	}
	if p.Adaptive {
		return nil, fmt.Errorf("%w: witness protocol is fixed-range only", ErrBadParams)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !isUsable(input) {
		return nil, fmt.Errorf("%w: non-finite input %v", ErrBadParams, input)
	}
	if input < p.Lo || input > p.Hi {
		return nil, fmt.Errorf("%w: input %v outside promised range [%v, %v]",
			ErrBadParams, input, p.Lo, p.Hi)
	}
	return &WitnessAA{
		p:         p,
		fn:        p.fn(),
		v:         input,
		vals:      make(map[uint32]map[uint16]float64),
		pending:   make(map[uint32]map[sim.PartyID][]uint16),
		satisfied: make(map[uint32]map[sim.PartyID]bool),
		sentRep:   make(map[uint32]bool),
	}, nil
}

// Init implements sim.Process.
func (w *WitnessAA) Init(api sim.API) {
	w.api = api
	b, err := rbc.New(w.p.N, w.p.T, uint16(api.ID()), api.Multicast)
	if err != nil {
		w.err = err
		return
	}
	w.bcast = b
	r, err := w.p.FixedRounds()
	if err != nil {
		w.err = err
		return
	}
	w.horizon = uint32(r)
	if w.horizon == 0 {
		w.decided = true
		api.Decide(w.v)
		return
	}
	b.SetMaxRound(w.horizon)
	w.round = 1
	w.bcast.Broadcast(w.round, w.v)
}

// Deliver implements sim.Process.
func (w *WitnessAA) Deliver(from sim.PartyID, data []byte) {
	if w.err != nil || w.decided {
		return
	}
	kind, err := wire.Peek(data)
	if err != nil {
		return
	}
	switch kind {
	case wire.KindRBC:
		for _, d := range w.bcast.Handle(uint16(from), data) {
			w.onDelivered(d)
		}
	case wire.KindReport:
		m, err := wire.UnmarshalReport(data)
		if err != nil {
			return
		}
		w.onReport(from, m)
	default:
		// Other kinds belong to other protocols; ignore.
	}
}

// onDelivered records an RBC delivery and re-evaluates reports and quorums.
func (w *WitnessAA) onDelivered(d rbc.Delivery) {
	if !isUsable(d.Value) || d.Round < w.round || d.Round > w.horizon {
		return
	}
	bucket, ok := w.vals[d.Round]
	if !ok {
		bucket = make(map[uint16]float64, w.p.N)
		w.vals[d.Round] = bucket
	}
	if _, dup := bucket[d.Origin]; dup {
		return
	}
	bucket[d.Origin] = d.Value
	w.maybeReport(d.Round)
	w.recheckPending(d.Round)
	w.maybeAdvance()
}

// maybeReport sends this party's report once it holds n−t round values.
func (w *WitnessAA) maybeReport(round uint32) {
	if w.sentRep[round] || len(w.vals[round]) < w.p.Quorum() {
		return
	}
	w.sentRep[round] = true
	senders := make([]uint16, 0, len(w.vals[round]))
	for origin := range w.vals[round] {
		senders = append(senders, origin)
	}
	w.api.Multicast(wire.MarshalReport(wire.Report{Round: round, Senders: senders}))
}

// onReport files a report as satisfied or pending. Only a party's first
// report per round counts.
func (w *WitnessAA) onReport(from sim.PartyID, m wire.Report) {
	if m.Round < w.round || m.Round > w.horizon {
		return
	}
	if len(m.Senders) < w.p.Quorum() || len(m.Senders) > w.p.N {
		return // a valid report lists at least a quorum of origins
	}
	for _, s := range m.Senders {
		if int(s) >= w.p.N {
			return
		}
	}
	if w.satisfied[m.Round][from] {
		return
	}
	if pend, ok := w.pending[m.Round]; ok {
		if _, dup := pend[from]; dup {
			return
		}
	}
	if w.reportCovered(m.Round, m.Senders) {
		w.markSatisfied(m.Round, from)
		w.maybeAdvance()
		return
	}
	pend, ok := w.pending[m.Round]
	if !ok {
		pend = make(map[sim.PartyID][]uint16)
		w.pending[m.Round] = pend
	}
	pend[from] = m.Senders
}

// reportCovered checks whether every origin in the report has been
// RBC-delivered locally for the round.
func (w *WitnessAA) reportCovered(round uint32, senders []uint16) bool {
	bucket := w.vals[round]
	for _, s := range senders {
		if _, ok := bucket[s]; !ok {
			return false
		}
	}
	return true
}

func (w *WitnessAA) markSatisfied(round uint32, from sim.PartyID) {
	sat, ok := w.satisfied[round]
	if !ok {
		sat = make(map[sim.PartyID]bool)
		w.satisfied[round] = sat
	}
	sat[from] = true
}

// recheckPending re-tests pending reports after a new delivery.
func (w *WitnessAA) recheckPending(round uint32) {
	pend := w.pending[round]
	for from, senders := range pend {
		if w.reportCovered(round, senders) {
			delete(pend, from)
			w.markSatisfied(round, from)
		}
	}
}

// maybeAdvance finishes the current round while it has n−t satisfied
// witnesses, then either starts the next round or decides.
func (w *WitnessAA) maybeAdvance() {
	for !w.decided && w.err == nil {
		if len(w.satisfied[w.round]) < w.p.Quorum() {
			return
		}
		view := w.viewBuf[:0]
		for _, v := range w.vals[w.round] {
			view = append(view, v)
		}
		w.viewBuf = view
		next, err := multiset.ApplyInPlace(w.fn, view)
		if err != nil {
			w.err = fmt.Errorf("core: witness round %d: %w", w.round, err)
			return
		}
		w.v = next
		w.cleanup(w.round)
		w.round++
		if w.round > w.horizon {
			w.decided = true
			w.api.Decide(w.v)
			return
		}
		w.bcast.Broadcast(w.round, w.v)
	}
}

func (w *WitnessAA) cleanup(round uint32) {
	delete(w.vals, round)
	delete(w.pending, round)
	delete(w.satisfied, round)
	delete(w.sentRep, round)
}

// Err reports an internal invariant failure, if any.
func (w *WitnessAA) Err() error { return w.err }

// Estimate implements sim.Estimator.
func (w *WitnessAA) Estimate() (float64, bool) { return w.v, true }

// Round reports the round currently being collected (for tests).
func (w *WitnessAA) Round() uint32 { return w.round }
