package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/multiset"
	"repro/internal/sim"
	"repro/internal/wire"
)

// fakeAPI captures a process's outbound traffic and decisions so protocol
// state machines can be unit-tested without the simulator.
type fakeAPI struct {
	id       sim.PartyID
	n        int
	sent     []sentMsg
	timers   []fakeTimer
	decided  bool
	decision float64
	rng      *rand.Rand
}

type sentMsg struct {
	to   sim.PartyID // -1 for multicast
	data []byte
}

type fakeTimer struct {
	delay sim.Time
	tag   uint64
}

var _ sim.API = (*fakeAPI)(nil)

func newFakeAPI(id sim.PartyID, n int) *fakeAPI {
	return &fakeAPI{id: id, n: n, rng: rand.New(rand.NewSource(1))}
}

func (f *fakeAPI) ID() sim.PartyID  { return f.id }
func (f *fakeAPI) N() int           { return f.n }
func (f *fakeAPI) Rand() *rand.Rand { return f.rng }

func (f *fakeAPI) Send(to sim.PartyID, data []byte) {
	// Snapshot the payload, as both real runtimes do: protocols encode
	// into scratch buffers they reuse for the next message.
	f.sent = append(f.sent, sentMsg{to: to, data: append([]byte(nil), data...)})
}

func (f *fakeAPI) Multicast(data []byte) {
	f.sent = append(f.sent, sentMsg{to: -1, data: append([]byte(nil), data...)})
}

func (f *fakeAPI) SetTimer(delay sim.Time, tag uint64) {
	f.timers = append(f.timers, fakeTimer{delay: delay, tag: tag})
}

func (f *fakeAPI) Decide(v float64) {
	if !f.decided {
		f.decided = true
		f.decision = v
	}
}

// anyBit reports whether any bit is set in a bitset.
func anyBit(words []uint64) bool {
	for _, w := range words {
		if w != 0 {
			return true
		}
	}
	return false
}

// lastValue decodes the most recent multicast VALUE message.
func (f *fakeAPI) lastValue(t *testing.T) wire.Value {
	t.Helper()
	for i := len(f.sent) - 1; i >= 0; i-- {
		if k, _ := wire.Peek(f.sent[i].data); k == wire.KindValue {
			m, err := wire.UnmarshalValue(f.sent[i].data)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
	}
	t.Fatal("no VALUE message sent")
	return wire.Value{}
}

func crashParams(n, t int) Params {
	return Params{Protocol: ProtoCrash, N: n, T: t, Eps: 0.25, Lo: 0, Hi: 1}
}

func TestParamsValidate(t *testing.T) {
	good := crashParams(5, 2)
	if err := good.Validate(); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Params)
		want error
	}{
		{"crash resilience", func(p *Params) { p.N = 4 }, ErrResilience},
		{"unknown protocol", func(p *Params) { p.Protocol = 99 }, ErrBadParams},
		{"zero protocol", func(p *Params) { p.Protocol = 0 }, ErrBadParams},
		{"negative t", func(p *Params) { p.T = -1 }, ErrBadParams},
		{"zero eps", func(p *Params) { p.Eps = 0 }, ErrBadParams},
		{"nan eps", func(p *Params) { p.Eps = math.NaN() }, ErrBadParams},
		{"inverted range", func(p *Params) { p.Lo, p.Hi = 2, 1 }, ErrBadParams},
		{"inf range", func(p *Params) { p.Hi = math.Inf(1) }, ErrBadParams},
		{"bad gamma", func(p *Params) { p.Gamma = 1.5 }, ErrBadParams},
		{"negative extra", func(p *Params) { p.ExtraRounds = -1 }, ErrBadParams},
		{"quorum too small for func", func(p *Params) { p.Func = multiset.MidExtremes{Trim: 2} }, ErrBadParams},
	}
	for _, c := range cases {
		p := crashParams(5, 2)
		c.mut(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if c.want != nil && !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	// Byz trim resilience boundary.
	pb := Params{Protocol: ProtoByzTrim, N: 14, T: 2, Eps: 0.1, Lo: 0, Hi: 1}
	if err := pb.Validate(); !errors.Is(err, ErrResilience) {
		t.Errorf("byztrim n=7t accepted: %v", err)
	}
	pb.N = 15
	if err := pb.Validate(); err != nil {
		t.Errorf("byztrim n=7t+1 rejected: %v", err)
	}
	pb.AllowBelowBound = true
	pb.N = 11
	if err := pb.Validate(); err != nil {
		t.Errorf("AllowBelowBound did not bypass resilience: %v", err)
	}
	// Sync needs a round duration.
	ps := Params{Protocol: ProtoSync, N: 4, T: 1, Eps: 0.1, Lo: 0, Hi: 1}
	if err := ps.Validate(); !errors.Is(err, ErrBadParams) {
		t.Errorf("sync without RoundDuration: %v", err)
	}
	ps.RoundDuration = 10
	if err := ps.Validate(); err != nil {
		t.Errorf("sync with RoundDuration rejected: %v", err)
	}
	// Adaptive mode does not need a range.
	pa := Params{Protocol: ProtoCrash, N: 5, T: 2, Eps: 0.1, Adaptive: true,
		Lo: math.NaN(), Hi: math.NaN()}
	if err := pa.Validate(); err != nil {
		t.Errorf("adaptive params rejected: %v", err)
	}
}

func TestFixedRounds(t *testing.T) {
	p := crashParams(5, 2)
	p.Eps = 1.0 / 16
	r, err := p.FixedRounds()
	if err != nil || r != 4 {
		t.Errorf("FixedRounds = %d, %v; want 4", r, err)
	}
	p.ExtraRounds = 3
	r, err = p.FixedRounds()
	if err != nil || r != 7 {
		t.Errorf("FixedRounds with slack = %d, %v; want 7", r, err)
	}
	p.Eps = 10 // wider than the range
	p.ExtraRounds = 0
	r, err = p.FixedRounds()
	if err != nil || r != 0 {
		t.Errorf("pre-converged FixedRounds = %d, %v; want 0", r, err)
	}
}

func TestProtocolString(t *testing.T) {
	for proto, want := range map[Protocol]string{
		ProtoCrash:   "crash-aa",
		ProtoByzTrim: "byztrim-aa",
		ProtoWitness: "witness-aa",
		ProtoSync:    "sync-aa",
		Protocol(42): "protocol(42)",
	} {
		if got := proto.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestNewAsyncAARejects(t *testing.T) {
	if _, err := NewAsyncAA(Params{Protocol: ProtoWitness, N: 4, T: 1, Eps: 0.1, Hi: 1}, 0); err == nil {
		t.Error("witness protocol accepted by AsyncAA")
	}
	if _, err := NewAsyncAA(crashParams(5, 2), math.NaN()); err == nil {
		t.Error("NaN input accepted")
	}
	if _, err := NewAsyncAA(crashParams(5, 2), 7); err == nil {
		t.Error("out-of-range input accepted in fixed mode")
	}
	p := crashParams(5, 2)
	p.Adaptive = true
	if _, err := NewAsyncAA(p, 7); err != nil {
		t.Errorf("adaptive mode rejected out-of-range input: %v", err)
	}
}

// feed delivers a VALUE message to the protocol.
func feed(t *testing.T, a *AsyncAA, from sim.PartyID, round uint32, v float64) {
	t.Helper()
	a.Deliver(from, wire.MarshalValue(wire.Value{Round: round, Value: v, Horizon: horizonOf(a)}))
}

func horizonOf(a *AsyncAA) uint32 { return a.horizon }

func TestAsyncAARoundAdvance(t *testing.T) {
	p := crashParams(3, 1)
	p.Eps = 0.25 // range 1 -> 2 rounds
	a, err := NewAsyncAA(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	api := newFakeAPI(0, 3)
	a.Init(api)
	if got := a.Round(); got != 1 {
		t.Fatalf("round after init = %d", got)
	}
	first := api.lastValue(t)
	if first.Round != 1 || first.Value != 1 {
		t.Fatalf("first VALUE = %+v", first)
	}
	// Quorum is 2: own value plus one other.
	feed(t, a, 0, 1, 1) // own loopback
	if a.Round() != 1 {
		t.Fatal("advanced without quorum")
	}
	feed(t, a, 1, 1, 0)
	if a.Round() != 2 {
		t.Fatalf("round = %d after quorum, want 2", a.Round())
	}
	second := api.lastValue(t)
	if second.Round != 2 || second.Value != 0.5 {
		t.Fatalf("second VALUE = %+v, want midpoint 0.5", second)
	}
	// Finish round 2: values 0.5 (own) and 0.5 -> decide 0.5.
	feed(t, a, 0, 2, 0.5)
	feed(t, a, 2, 2, 0.5)
	if !a.Decided() || !api.decided || api.decision != 0.5 {
		t.Fatalf("decided=%v decision=%v", api.decided, api.decision)
	}
	if a.Err() != nil {
		t.Fatal(a.Err())
	}
}

func TestAsyncAADuplicateAndGarbageIgnored(t *testing.T) {
	p := crashParams(3, 1)
	p.Eps = 0.25
	a, err := NewAsyncAA(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	api := newFakeAPI(0, 3)
	a.Init(api)
	feed(t, a, 1, 1, 0)
	// Duplicate from the same sender must not complete the quorum.
	feed(t, a, 1, 1, 0.9)
	if a.Round() != 1 {
		t.Fatal("duplicate sender value advanced the round")
	}
	// Garbage and non-finite values are dropped.
	a.Deliver(2, []byte{0xFF, 0x01})
	a.Deliver(2, nil)
	a.Deliver(2, wire.MarshalValue(wire.Value{Round: 1, Value: math.NaN()}))
	a.Deliver(2, wire.MarshalValue(wire.Value{Round: 1, Value: math.Inf(1)}))
	a.Deliver(2, wire.MarshalValue(wire.Value{Round: 0, Value: 0.5})) // round 0 invalid
	if a.Round() != 1 {
		t.Fatal("garbage advanced the round")
	}
	if a.Err() != nil {
		t.Fatal(a.Err())
	}
}

func TestAsyncAABuffersFutureRounds(t *testing.T) {
	p := crashParams(3, 1)
	p.Eps = 0.25
	a, err := NewAsyncAA(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	api := newFakeAPI(0, 3)
	a.Init(api)
	// Round 2 values arrive before round 1 completes.
	feed(t, a, 1, 2, 0.25)
	feed(t, a, 2, 2, 0.25)
	if a.Round() != 1 {
		t.Fatal("future values advanced the round early")
	}
	// Completing round 1 should then cascade straight through round 2.
	feed(t, a, 0, 1, 0)
	feed(t, a, 1, 1, 0.5)
	if !a.Decided() {
		t.Fatal("cascade did not run buffered round 2")
	}
}

func TestAsyncAADecideImmediatelyWhenConverged(t *testing.T) {
	p := crashParams(3, 1)
	p.Eps = 5 // wider than range
	a, err := NewAsyncAA(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	api := newFakeAPI(0, 3)
	a.Init(api)
	if !api.decided || api.decision != 0.5 {
		t.Fatalf("expected immediate decision, got %v %v", api.decided, api.decision)
	}
}

func TestAsyncAAAdaptiveFlow(t *testing.T) {
	p := crashParams(3, 1)
	p.Adaptive = true
	p.Eps = 0.25
	a, err := NewAsyncAA(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	api := newFakeAPI(0, 3)
	a.Init(api)
	// Must multicast INIT, not VALUE.
	if k, _ := wire.Peek(api.sent[0].data); k != wire.KindInit {
		t.Fatalf("first message kind = %v, want INIT", k)
	}
	// Two INITs (quorum) with spread 1 -> horizon = log2(1/0.25) = 2.
	a.Deliver(0, wire.MarshalInit(wire.Init{Value: 0}))
	a.Deliver(1, wire.MarshalInit(wire.Init{Value: 1}))
	if a.horizon != 2 {
		t.Fatalf("horizon = %d, want 2", a.horizon)
	}
	if a.Round() != 1 {
		t.Fatalf("rounds did not start")
	}
	// A late INIT that widens the spread extends the horizon.
	a.Deliver(2, wire.MarshalInit(wire.Init{Value: 4}))
	if a.horizon != 4 {
		t.Fatalf("horizon after late INIT = %d, want 4 (log2(4/0.25))", a.horizon)
	}
	// Horizon also extends from piggybacked VALUE horizons.
	a.Deliver(1, wire.MarshalValue(wire.Value{Round: 1, Horizon: 9, Value: 0.5}))
	if a.horizon != 9 {
		t.Fatalf("horizon after piggyback = %d, want 9", a.horizon)
	}
}

func TestAsyncAAFrozenDecidedValues(t *testing.T) {
	p := crashParams(3, 1)
	p.Adaptive = true
	p.Eps = 0.25
	a, err := NewAsyncAA(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	api := newFakeAPI(0, 3)
	a.Init(api)
	a.Deliver(0, wire.MarshalInit(wire.Init{Value: 0}))
	a.Deliver(1, wire.MarshalInit(wire.Init{Value: 1}))
	// Party 2 announces DECIDED: its value counts for every round.
	a.Deliver(2, wire.MarshalDecided(wire.Decided{Value: 1}))
	feed(t, a, 0, 1, 0) // own value; with frozen party 2 that's quorum 2
	if a.Round() != 2 {
		t.Fatalf("frozen value did not complete quorum: round %d", a.Round())
	}
	if v, _ := a.Estimate(); v != 0.5 {
		t.Fatalf("estimate = %v, want midpoint 0.5", v)
	}
}

func TestSyncAAFlow(t *testing.T) {
	p := Params{Protocol: ProtoSync, N: 4, T: 1, Eps: 0.25, Lo: 0, Hi: 1,
		RoundDuration: 10, Gamma: 0.5} // 2 rounds
	s, err := NewSyncAA(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	api := newFakeAPI(0, 4)
	s.Init(api)
	if len(api.timers) != 1 || api.timers[0].delay != 10 {
		t.Fatalf("timers = %+v", api.timers)
	}
	// Deliver all four round-1 values, then fire the boundary.
	vals := []float64{0, 0.2, 0.8, 1}
	for i, v := range vals {
		s.Deliver(sim.PartyID(i), wire.MarshalValue(wire.Value{Round: 1, Value: v}))
	}
	s.OnTimer(1)
	if s.err != nil {
		t.Fatal(s.err)
	}
	// MidExtremes trim 1: core {0.2, 0.8} -> 0.5.
	if v, _ := s.Estimate(); v != 0.5 {
		t.Fatalf("estimate after round 1 = %v", v)
	}
	// Round 2 with everyone at 0.5 decides.
	for i := 0; i < 4; i++ {
		s.Deliver(sim.PartyID(i), wire.MarshalValue(wire.Value{Round: 2, Value: 0.5}))
	}
	s.OnTimer(2)
	if !api.decided || api.decision != 0.5 {
		t.Fatalf("decided=%v decision=%v", api.decided, api.decision)
	}
}

func TestSyncAASynchronyViolation(t *testing.T) {
	p := Params{Protocol: ProtoSync, N: 4, T: 1, Eps: 0.25, Lo: 0, Hi: 1, RoundDuration: 10}
	s, err := NewSyncAA(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	api := newFakeAPI(0, 4)
	s.Init(api)
	// Only one value arrives before the boundary: below MinInputs(3).
	s.Deliver(0, wire.MarshalValue(wire.Value{Round: 1, Value: 0}))
	s.OnTimer(1)
	if s.Err() == nil {
		t.Fatal("synchrony violation not reported")
	}
}

func TestWitnessAAConstruction(t *testing.T) {
	p := Params{Protocol: ProtoWitness, N: 4, T: 1, Eps: 0.25, Lo: 0, Hi: 1}
	if _, err := NewWitnessAA(p, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWitnessAA(p, 2); err == nil {
		t.Error("out-of-range input accepted")
	}
	if _, err := NewWitnessAA(p, math.Inf(1)); err == nil {
		t.Error("infinite input accepted")
	}
	p.Adaptive = true
	if _, err := NewWitnessAA(p, 0.5); err == nil {
		t.Error("adaptive witness accepted")
	}
	p.Adaptive = false
	p.Protocol = ProtoCrash
	if _, err := NewWitnessAA(p, 0.5); err == nil {
		t.Error("wrong protocol accepted")
	}
}

func TestWitnessAAReportValidation(t *testing.T) {
	p := Params{Protocol: ProtoWitness, N: 4, T: 1, Eps: 0.25, Lo: 0, Hi: 1}
	w, err := NewWitnessAA(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	api := newFakeAPI(0, 4)
	w.Init(api)
	// Reports that are too short, too long, or with out-of-range senders
	// are dropped without effect.
	w.Deliver(1, wire.MarshalReport(wire.Report{Round: 1, Senders: []uint16{1}}))
	w.Deliver(1, wire.MarshalReport(wire.Report{Round: 1, Senders: []uint16{0, 1, 2, 3, 3}}))
	w.Deliver(1, wire.MarshalReport(wire.Report{Round: 1, Senders: []uint16{0, 1, 99}}))
	if a := w.rounds[1].arr; a != nil && (a.satCnt != 0 || anyBit(a.pendActive)) {
		t.Fatal("invalid reports retained")
	}
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
}
