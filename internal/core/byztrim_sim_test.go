package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/wire"
)

// trimNet builds a ByzTrim network with crafted adversaries.
func trimNet(t *testing.T, n, tf int, byz map[sim.PartyID]sim.Process, inputs []float64) (*sim.Network, []*AsyncAA) {
	t.Helper()
	p := Params{Protocol: ProtoByzTrim, N: n, T: tf, Eps: 1e-3, Lo: 0, Hi: 1}
	net, err := sim.New(sim.Config{N: n, Scheduler: unitDelay{}, Seed: 7, Byzantine: byz})
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*AsyncAA, n)
	for i := 0; i < n; i++ {
		if _, isByz := byz[sim.PartyID(i)]; isByz {
			continue
		}
		a, err := NewAsyncAA(p, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = a
		if err := net.SetProcess(sim.PartyID(i), a); err != nil {
			t.Fatal(err)
		}
	}
	return net, procs
}

// roundFlooder sends a distinct extreme value for every round up front,
// plus duplicate conflicting values per round (testing the first-value-
// wins dedupe) and absurd round numbers (testing the buffering cap).
type roundFlooder struct{ rounds int }

func (f *roundFlooder) Init(api sim.API) {
	for r := 1; r <= f.rounds; r++ {
		api.Multicast(wire.MarshalValue(wire.Value{Round: uint32(r), Value: -1e9}))
		api.Multicast(wire.MarshalValue(wire.Value{Round: uint32(r), Value: 1e9})) // dup, ignored
	}
	for _, r := range []uint32{1 << 20, 1 << 24, 1 << 30, ^uint32(0)} {
		api.Multicast(wire.MarshalValue(wire.Value{Round: r, Value: 0.5}))
	}
}

func (f *roundFlooder) Deliver(sim.PartyID, []byte) {}

func TestByzTrimSurvivesRoundFlood(t *testing.T) {
	n, tf := 8, 1
	inputs := []float64{0, 1, 0.25, 0.75, 0.5, 0, 1, 0.5}
	p := Params{Protocol: ProtoByzTrim, N: n, T: tf, Eps: 1e-3, Lo: 0, Hi: 1}
	rounds, err := p.FixedRounds()
	if err != nil {
		t.Fatal(err)
	}
	byz := map[sim.PartyID]sim.Process{2: &roundFlooder{rounds: rounds}}
	net, procs := trimNet(t, n, tf, byz, inputs)
	res, err := net.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, a := range procs {
		if a == nil {
			continue
		}
		if err := a.Err(); err != nil {
			t.Fatalf("party %d: %v", i, err)
		}
		y := res.Decisions[sim.PartyID(i)]
		if y < 0 || y > 1 {
			t.Errorf("party %d output %v outside honest hull [0,1]", i, y)
		}
	}
	if s := res.HonestSpread(); s > 1e-3 {
		t.Errorf("spread %v", s)
	}
}

// TestAsyncAAFutureRoundMemoryBound: absurd round tags from a Byzantine
// sender must not grow the buffer beyond horizon + slack.
func TestAsyncAAFutureRoundMemoryBound(t *testing.T) {
	p := crashParams(3, 1)
	p.Eps = 1.0 / 1024 // horizon 10
	a, err := NewAsyncAA(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	a.Init(newFakeAPI(0, 3))
	for r := uint32(1); r <= 100_000; r += 97 {
		a.Deliver(1, wire.MarshalValue(wire.Value{Round: r, Value: 0.5}))
	}
	if got := a.activeBuckets(); got > int(a.horizon)+futureRoundSlack+1 {
		t.Fatalf("round buffer grew to %d entries", got)
	}
}

// TestAsyncAAHorizonCannotShrink: a Byzantine party piggybacking horizon 0
// must not shorten an honest party's round budget.
func TestAsyncAAHorizonCannotShrink(t *testing.T) {
	p := crashParams(3, 1)
	p.Adaptive = true
	a, err := NewAsyncAA(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	a.Init(newFakeAPI(0, 3))
	a.Deliver(0, wire.MarshalInit(wire.Init{Value: 0}))
	a.Deliver(1, wire.MarshalInit(wire.Init{Value: 100}))
	h := a.horizon
	if h == 0 {
		t.Fatal("no horizon established")
	}
	a.Deliver(2, wire.MarshalValue(wire.Value{Round: 1, Horizon: 0, Value: 50}))
	if a.horizon != h {
		t.Fatalf("horizon shrank from %d to %d", h, a.horizon)
	}
}

// TestByzTrimEquivocationAtProvenBound runs the canonical equivocation
// attack at n = 7t+1 end to end on the simulator: the protocol must
// converge (this is the scenario that stalls forever at n = 5t+1, pinned
// by multiset.TestByzTrimStallsBelowProvenResilience and E1).
func TestByzTrimEquivocationAtProvenBound(t *testing.T) {
	n, tf := 8, 1
	inputs := make([]float64, n)
	for i := range inputs {
		if i >= n/2 {
			inputs[i] = 1
		}
	}
	byz := map[sim.PartyID]sim.Process{0: &perRecipientLiar{n: n, rounds: 12}}
	net, procs := trimNet(t, n, tf, byz, inputs)
	res, err := net.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, a := range procs {
		if a == nil {
			continue
		}
		if err := a.Err(); err != nil {
			t.Fatalf("party %d: %v", i, err)
		}
	}
	if s := res.HonestSpread(); s > 1e-3 {
		t.Errorf("equivocation at 7t+1 prevented convergence: spread %v", s)
	}
}

// perRecipientLiar tells every recipient a different extreme each round.
type perRecipientLiar struct{ n, rounds int }

func (l *perRecipientLiar) Init(api sim.API) {
	for r := 1; r <= l.rounds; r++ {
		for p := 0; p < l.n; p++ {
			v := -100.0 - float64(p)
			if p >= l.n/2 {
				v = 100.0 + float64(p)
			}
			api.Send(sim.PartyID(p), wire.MarshalValue(wire.Value{Round: uint32(r), Value: v}))
		}
	}
}

func (l *perRecipientLiar) Deliver(sim.PartyID, []byte) {}

// TestAsyncAARoundRingSpillSurvivesSlotFree pins the ring/spill interaction:
// a round whose ring slot was occupied at first touch spills to the map, and
// must remain reachable (same bucket, duplicate detection intact) after the
// slot's occupant is dropped — a freed slot must not shadow spilled state.
func TestAsyncAARoundRingSpillSurvivesSlotFree(t *testing.T) {
	a, err := NewAsyncAA(crashParams(5, 2), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	far := uint32(1 + roundRingLen) // collides with round 1's slot
	b1 := a.bucket(1, true)
	spilled := a.bucket(far, true)
	if spilled == b1 {
		t.Fatal("colliding rounds share a bucket")
	}
	spilled.add(0, 0.25)
	a.dropBucket(1) // free the slot round far collided with
	got := a.bucket(far, false)
	if got != spilled {
		t.Fatalf("spilled round %d no longer reachable after slot free: got %p, want %p", far, got, spilled)
	}
	if got := a.bucket(far, true); got != spilled {
		t.Fatalf("create path built a second bucket for spilled round %d", far)
	}
	if !spilled.has(0) || spilled.cnt != 1 {
		t.Fatal("spilled state lost")
	}
	a.dropBucket(far)
	if a.bucket(far, false) != nil {
		t.Fatal("dropped spilled round still reachable")
	}
}
