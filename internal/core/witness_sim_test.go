package core

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/wire"
)

// unitDelay is a deterministic unit-delay scheduler for protocol-level
// tests that exert control via crafted adversaries rather than scheduling.
type unitDelay struct{}

var _ sim.Scheduler = unitDelay{}

func (unitDelay) Delay(sim.Envelope, sim.Time, *rand.Rand) sim.Time { return 1 }

// witnessNet builds an n-party witness network with the given adversarial
// processes occupying the listed parties.
func witnessNet(t *testing.T, n, tf int, byz map[sim.PartyID]sim.Process, inputs []float64) (*sim.Network, []*WitnessAA) {
	t.Helper()
	p := Params{Protocol: ProtoWitness, N: n, T: tf, Eps: 1e-3, Lo: 0, Hi: 1}
	net, err := sim.New(sim.Config{N: n, Scheduler: unitDelay{}, Seed: 5, Byzantine: byz})
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*WitnessAA, n)
	for i := 0; i < n; i++ {
		if _, isByz := byz[sim.PartyID(i)]; isByz {
			continue
		}
		w, err := NewWitnessAA(p, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = w
		if err := net.SetProcess(sim.PartyID(i), w); err != nil {
			t.Fatal(err)
		}
	}
	return net, procs
}

// fakeReporter floods forged witness reports: reports naming origins that
// never broadcast, oversized reports, and reports for absurd rounds. The
// honest parties must converge regardless — forged reports can only ever
// be satisfied if the claimed values were actually RBC-delivered.
type fakeReporter struct{ n int }

func (f *fakeReporter) Init(api sim.API) {
	all := make([]uint16, f.n)
	for i := range all {
		all[i] = uint16(i)
	}
	for r := uint32(1); r <= 30; r++ {
		api.Multicast(wire.MarshalReport(wire.Report{Round: r, Senders: all}))
		api.Multicast(wire.MarshalReport(wire.Report{Round: r + 1000, Senders: all}))
	}
	// Also participate in RBC with an extreme value so its reports are not
	// pure noise.
	api.Multicast(wire.MarshalRBC(wire.RBC{
		Phase: wire.RBCSend, Origin: uint16(api.ID()), Round: 1, Value: 1e9,
	}))
}

func (f *fakeReporter) Deliver(sim.PartyID, []byte) {}

func TestWitnessSurvivesForgedReports(t *testing.T) {
	n, tf := 7, 2
	inputs := []float64{0, 0, 1, 1, 0.5, 1, 0}
	byz := map[sim.PartyID]sim.Process{
		0: &fakeReporter{n: n},
		1: &fakeReporter{n: n},
	}
	net, procs := witnessNet(t, n, tf, byz, inputs)
	res, err := net.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	assertWitnessOutcome(t, res, procs, inputs, byz, 1e-3)
}

// echoDiverger attacks the RBC layer directly: it echoes and readies
// values nobody sent, trying to split deliveries.
type echoDiverger struct{ n int }

func (e *echoDiverger) Init(api sim.API) {
	for r := uint32(1); r <= 15; r++ {
		for origin := 0; origin < e.n; origin++ {
			api.Multicast(wire.MarshalRBC(wire.RBC{
				Phase: wire.RBCEcho, Origin: uint16(origin), Round: r, Value: -5,
			}))
			api.Multicast(wire.MarshalRBC(wire.RBC{
				Phase: wire.RBCReady, Origin: uint16(origin), Round: r, Value: 7,
			}))
		}
	}
}

func (e *echoDiverger) Deliver(sim.PartyID, []byte) {}

func TestWitnessSurvivesRBCForgery(t *testing.T) {
	n, tf := 7, 2
	inputs := []float64{0.1, 0.9, 0.4, 0.6, 0.5, 0.2, 0.8}
	byz := map[sim.PartyID]sim.Process{
		3: &echoDiverger{n: n},
		6: &echoDiverger{n: n},
	}
	net, procs := witnessNet(t, n, tf, byz, inputs)
	res, err := net.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	assertWitnessOutcome(t, res, procs, inputs, byz, 1e-3)
}

// TestWitnessReleasesRBCState pins the end-of-run memory fix: cleanup
// releases each completed round's RBC arena (rbc.ReleaseRound), so a
// party's broadcaster no longer holds one instance per (origin, round)
// for the whole run. Without the release the fault-free run below would
// end holding n·horizon instances; with it only the last round or two can
// still be in flight.
func TestWitnessReleasesRBCState(t *testing.T) {
	n, tf := 7, 2
	inputs := []float64{0.1, 0.9, 0.4, 0.6, 0.5, 0.2, 0.8}
	net, procs := witnessNet(t, n, tf, nil, inputs)
	res, err := net.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	assertWitnessOutcome(t, res, procs, inputs, nil, 1e-3)
	for i, w := range procs {
		if w.horizon < 5 {
			t.Fatalf("horizon %d too small for the leak check to mean anything", w.horizon)
		}
		leakCeiling := n * int(w.horizon)
		held := w.bcast.Instances()
		if held > 2*n {
			t.Errorf("party %d broadcaster holds %d instances after the run, want <= %d (pre-release ceiling %d)",
				i, held, 2*n, leakCeiling)
		}
	}
}

func assertWitnessOutcome(t *testing.T, res *sim.Result, procs []*WitnessAA,
	inputs []float64, byz map[sim.PartyID]sim.Process, eps float64) {
	t.Helper()
	lo, hi := 2.0, -1.0
	for i, in := range inputs {
		if _, isByz := byz[sim.PartyID(i)]; isByz {
			continue
		}
		if in < lo {
			lo = in
		}
		if in > hi {
			hi = in
		}
	}
	for i, w := range procs {
		if w == nil {
			continue
		}
		if err := w.Err(); err != nil {
			t.Fatalf("party %d: %v", i, err)
		}
		y, ok := res.Decisions[sim.PartyID(i)]
		if !ok {
			t.Fatalf("party %d did not decide", i)
		}
		if y < lo-1e-9 || y > hi+1e-9 {
			t.Errorf("party %d output %v outside hull [%v, %v]", i, y, lo, hi)
		}
	}
	if s := res.HonestSpread(); s > eps+1e-9 {
		t.Errorf("spread %v > eps", s)
	}
}
