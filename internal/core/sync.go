package core

import (
	"fmt"

	"repro/internal/multiset"
	"repro/internal/sim"
	"repro/internal/wire"
)

// SyncAA is the lock-step synchronous baseline (ProtoSync). Rounds are
// paced by a local timer of length Params.RoundDuration, which must be at
// least the network's maximum message delay for the synchrony assumption to
// hold — the point of the baseline is to show what that assumption buys and
// what it costs when it breaks (experiment E1 runs it under asynchronous
// schedulers to show exactly that).
//
// Each round the party multicasts its value, lets the timer expire, and
// applies the approximation function to everything that arrived for the
// round (at least n−t values under the synchrony assumption with t faults;
// fewer arrivals than the function's minimum is recorded as an Err and the
// party stalls, which the simulator reports as lost liveness).
//
// Reception state is dense: the fixed horizon is known at Init, so rounds
// index directly into a slice of roundBuckets (value slots plus seen
// bitsets) recycled through a free list — no map probes on the delivery
// path.
type SyncAA struct {
	p   Params
	api sim.API
	fn  multiset.Func
	// rounds[r] is round r's bucket (nil until traffic arrives); len is
	// horizon+1, recycled across runs.
	rounds      []*roundBucket
	freeBuckets []*roundBucket
	viewBuf     []float64 // per-round reception scratch, reused across rounds
	wireBuf     []byte    // wire-encoding scratch; runtimes snapshot on send
	v           float64
	round       uint32
	horizon     uint32
	decided     bool
	err         error
}

var (
	_ sim.Process      = (*SyncAA)(nil)
	_ sim.BatchProcess = (*SyncAA)(nil)
	_ sim.TimerHandler = (*SyncAA)(nil)
	_ sim.Estimator    = (*SyncAA)(nil)
)

// NewSyncAA builds a party of the synchronous baseline.
func NewSyncAA(p Params, input float64) (*SyncAA, error) {
	s := &SyncAA{}
	if err := s.Reset(p, input); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset re-initializes the party for a new run with NewSyncAA's validation,
// recycling the round buckets and scratch buffers (see AsyncAA.Reset).
func (s *SyncAA) Reset(p Params, input float64) error {
	if p.Protocol != ProtoSync {
		return fmt.Errorf("%w: SyncAA requires ProtoSync, got %s", ErrBadParams, p.Protocol)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if !isUsable(input) {
		return fmt.Errorf("%w: non-finite input %v", ErrBadParams, input)
	}
	if input < p.Lo || input > p.Hi {
		return fmt.Errorf("%w: input %v outside promised range [%v, %v]",
			ErrBadParams, input, p.Lo, p.Hi)
	}
	sameShape := p.N == s.p.N
	for i, b := range s.rounds {
		if b != nil {
			if sameShape {
				b.clear()
				s.freeBuckets = append(s.freeBuckets, b)
			}
			s.rounds[i] = nil
		}
	}
	if !sameShape {
		clear(s.freeBuckets)
		s.freeBuckets = s.freeBuckets[:0]
	}
	s.p = p
	s.fn = p.fn()
	s.v = input
	s.api = nil
	s.round, s.horizon = 0, 0
	s.decided = false
	s.err = nil
	return nil
}

// Init implements sim.Process.
func (s *SyncAA) Init(api sim.API) {
	s.api = api
	r, err := s.p.FixedRounds()
	if err != nil {
		s.err = err
		return
	}
	s.horizon = uint32(r)
	if s.horizon == 0 {
		s.decided = true
		api.Decide(s.v)
		return
	}
	if need := int(s.horizon) + 1; cap(s.rounds) >= need {
		s.rounds = s.rounds[:need]
	} else {
		s.rounds = make([]*roundBucket, need)
	}
	s.round = 1
	s.beginRound()
}

func (s *SyncAA) beginRound() {
	s.wireBuf = wire.AppendValue(s.wireBuf[:0], wire.Value{Round: s.round, Value: s.v})
	s.api.Multicast(s.wireBuf)
	s.api.SetTimer(s.p.RoundDuration, uint64(s.round))
}

// Deliver implements sim.Process.
func (s *SyncAA) Deliver(from sim.PartyID, data []byte) {
	s.deliver(from, data)
}

// DeliverBatch implements sim.BatchProcess: the tick's arrivals are
// ingested in one pass (an O(1) bucket insert each); interleaved round
// timers fire from inside Next at their exact tick positions, so the
// round-boundary view reduce happens once per round in both modes.
func (s *SyncAA) DeliverBatch(b *sim.Batch) {
	for env := b.Next(); env != nil; env = b.Next() {
		s.deliver(env.From, env.Data)
	}
}

// deliver is the shared per-message body.
func (s *SyncAA) deliver(from sim.PartyID, data []byte) {
	if s.err != nil || s.decided {
		return
	}
	kind, err := wire.Peek(data)
	if err != nil || kind != wire.KindValue {
		return
	}
	m, err := wire.UnmarshalValue(data)
	if err != nil || !isUsable(m.Value) {
		return
	}
	// A synchronous party accepts values only for the current round: late
	// values are useless by definition of the model, early ones cannot
	// occur under the synchrony assumption and are buffered defensively.
	if m.Round < s.round || uint64(m.Round) > uint64(s.horizon) {
		return
	}
	if from < 0 || int(from) >= s.p.N {
		return
	}
	b := s.rounds[m.Round]
	if b == nil {
		if k := len(s.freeBuckets); k > 0 {
			b = s.freeBuckets[k-1]
			s.freeBuckets[k-1] = nil
			s.freeBuckets = s.freeBuckets[:k-1]
		} else {
			b = newRoundBucket(s.p.N)
		}
		b.round = m.Round
		s.rounds[m.Round] = b
	}
	b.add(from, m.Value)
}

// OnTimer implements sim.TimerHandler: the round boundary.
func (s *SyncAA) OnTimer(tag uint64) {
	if s.err != nil || s.decided || tag != uint64(s.round) {
		return
	}
	view := s.viewBuf[:0]
	if b := s.rounds[s.round]; b != nil {
		view = b.appendValues(view)
		b.clear()
		s.freeBuckets = append(s.freeBuckets, b)
		s.rounds[s.round] = nil
	}
	s.viewBuf = view
	if len(view) < s.fn.MinInputs() {
		s.err = fmt.Errorf("core: sync round %d: %d arrivals, below %s minimum %d (synchrony assumption violated)",
			s.round, len(view), s.fn.Name(), s.fn.MinInputs())
		return
	}
	next, err := multiset.ApplyInPlace(s.fn, view)
	if err != nil {
		s.err = fmt.Errorf("core: sync round %d: %w", s.round, err)
		return
	}
	s.v = next
	s.round++
	if s.round > s.horizon {
		s.decided = true
		s.api.Decide(s.v)
		return
	}
	s.beginRound()
}

// Err reports a synchrony-assumption or invariant failure.
func (s *SyncAA) Err() error { return s.err }

// Estimate implements sim.Estimator.
func (s *SyncAA) Estimate() (float64, bool) { return s.v, true }
