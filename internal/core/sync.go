package core

import (
	"fmt"

	"repro/internal/multiset"
	"repro/internal/sim"
	"repro/internal/wire"
)

// SyncAA is the lock-step synchronous baseline (ProtoSync). Rounds are
// paced by a local timer of length Params.RoundDuration, which must be at
// least the network's maximum message delay for the synchrony assumption to
// hold — the point of the baseline is to show what that assumption buys and
// what it costs when it breaks (experiment E1 runs it under asynchronous
// schedulers to show exactly that).
//
// Each round the party multicasts its value, lets the timer expire, and
// applies the approximation function to everything that arrived for the
// round (at least n−t values under the synchrony assumption with t faults;
// fewer arrivals than the function's minimum is recorded as an Err and the
// party stalls, which the simulator reports as lost liveness).
type SyncAA struct {
	p      Params
	api    sim.API
	fn     multiset.Func
	rounds map[uint32]map[sim.PartyID]float64
	// freeBuckets recycles completed rounds' reception maps, as in AsyncAA.
	freeBuckets []map[sim.PartyID]float64
	viewBuf     []float64 // per-round reception scratch, reused across rounds
	wireBuf     []byte    // wire-encoding scratch; runtimes snapshot on send
	v           float64
	round       uint32
	horizon     uint32
	decided     bool
	err         error
}

var (
	_ sim.Process      = (*SyncAA)(nil)
	_ sim.TimerHandler = (*SyncAA)(nil)
	_ sim.Estimator    = (*SyncAA)(nil)
)

// NewSyncAA builds a party of the synchronous baseline.
func NewSyncAA(p Params, input float64) (*SyncAA, error) {
	s := &SyncAA{}
	if err := s.Reset(p, input); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset re-initializes the party for a new run with NewSyncAA's validation,
// recycling the reception maps and scratch buffers (see AsyncAA.Reset).
func (s *SyncAA) Reset(p Params, input float64) error {
	if p.Protocol != ProtoSync {
		return fmt.Errorf("%w: SyncAA requires ProtoSync, got %s", ErrBadParams, p.Protocol)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if !isUsable(input) {
		return fmt.Errorf("%w: non-finite input %v", ErrBadParams, input)
	}
	if input < p.Lo || input > p.Hi {
		return fmt.Errorf("%w: input %v outside promised range [%v, %v]",
			ErrBadParams, input, p.Lo, p.Hi)
	}
	s.p = p
	s.fn = p.fn()
	s.v = input
	s.api = nil
	s.round, s.horizon = 0, 0
	s.decided = false
	s.err = nil
	if s.rounds == nil {
		s.rounds = make(map[uint32]map[sim.PartyID]float64)
		return nil
	}
	for r, bucket := range s.rounds {
		clear(bucket)
		s.freeBuckets = append(s.freeBuckets, bucket)
		delete(s.rounds, r)
	}
	return nil
}

// Init implements sim.Process.
func (s *SyncAA) Init(api sim.API) {
	s.api = api
	r, err := s.p.FixedRounds()
	if err != nil {
		s.err = err
		return
	}
	s.horizon = uint32(r)
	if s.horizon == 0 {
		s.decided = true
		api.Decide(s.v)
		return
	}
	s.round = 1
	s.beginRound()
}

func (s *SyncAA) beginRound() {
	s.wireBuf = wire.AppendValue(s.wireBuf[:0], wire.Value{Round: s.round, Value: s.v})
	s.api.Multicast(s.wireBuf)
	s.api.SetTimer(s.p.RoundDuration, uint64(s.round))
}

// Deliver implements sim.Process.
func (s *SyncAA) Deliver(from sim.PartyID, data []byte) {
	if s.err != nil || s.decided {
		return
	}
	kind, err := wire.Peek(data)
	if err != nil || kind != wire.KindValue {
		return
	}
	m, err := wire.UnmarshalValue(data)
	if err != nil || !isUsable(m.Value) {
		return
	}
	// A synchronous party accepts values only for the current round: late
	// values are useless by definition of the model, early ones cannot
	// occur under the synchrony assumption and are buffered defensively.
	if m.Round < s.round || uint64(m.Round) > uint64(s.horizon) {
		return
	}
	bucket, ok := s.rounds[m.Round]
	if !ok {
		if k := len(s.freeBuckets); k > 0 {
			bucket = s.freeBuckets[k-1]
			s.freeBuckets[k-1] = nil
			s.freeBuckets = s.freeBuckets[:k-1]
		} else {
			bucket = make(map[sim.PartyID]float64, s.p.N)
		}
		s.rounds[m.Round] = bucket
	}
	if _, dup := bucket[from]; !dup {
		bucket[from] = m.Value
	}
}

// OnTimer implements sim.TimerHandler: the round boundary.
func (s *SyncAA) OnTimer(tag uint64) {
	if s.err != nil || s.decided || tag != uint64(s.round) {
		return
	}
	view := s.viewBuf[:0]
	for _, v := range s.rounds[s.round] {
		view = append(view, v)
	}
	s.viewBuf = view
	if bucket, ok := s.rounds[s.round]; ok {
		clear(bucket)
		s.freeBuckets = append(s.freeBuckets, bucket)
		delete(s.rounds, s.round)
	}
	if len(view) < s.fn.MinInputs() {
		s.err = fmt.Errorf("core: sync round %d: %d arrivals, below %s minimum %d (synchrony assumption violated)",
			s.round, len(view), s.fn.Name(), s.fn.MinInputs())
		return
	}
	next, err := multiset.ApplyInPlace(s.fn, view)
	if err != nil {
		s.err = fmt.Errorf("core: sync round %d: %w", s.round, err)
		return
	}
	s.v = next
	s.round++
	if s.round > s.horizon {
		s.decided = true
		s.api.Decide(s.v)
		return
	}
	s.beginRound()
}

// Err reports a synchrony-assumption or invariant failure.
func (s *SyncAA) Err() error { return s.err }

// Estimate implements sim.Estimator.
func (s *SyncAA) Estimate() (float64, bool) { return s.v, true }
