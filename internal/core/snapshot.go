package core

import (
	"fmt"
	"math/bits"
	"slices"

	"repro/internal/checkpoint"
	"repro/internal/wire"
)

// Snapshotter is the crash-recovery surface every protocol party
// implements next to its Reset(): Snapshot serializes the party's full
// volatile state (round buckets, seen bitsets, witness ring, RBC slabs)
// into the versioned internal/checkpoint format, Restore replaces the
// party's state with a previously taken snapshot of the same shape, and
// Rejoin re-announces the party's current position after a restart so
// peers (and the party's own quorums) can make progress again — the
// catch-up messages are all idempotent re-sends that receivers dedup
// through their normal first-wins paths.
//
// Snapshot appends to a caller-owned buffer and Restore recycles existing
// round state through the party's free lists, so a warm recovery run
// allocates nothing. Restore may only be applied to a party configured
// with the identical shape (the snapshot carries n/t/mode for validation);
// it never touches the party's API wiring, so it is safe mid-run.
type Snapshotter interface {
	Snapshot(buf []byte) ([]byte, error)
	Restore(data []byte) error
	Rejoin()
}

var (
	_ Snapshotter = (*AsyncAA)(nil)
	_ Snapshotter = (*SyncAA)(nil)
	_ Snapshotter = (*WitnessAA)(nil)
)

// maxSnapBuckets caps the bucket count a snapshot may declare (ring plus
// Byzantine spill; real executions stay far below).
const maxSnapBuckets = 1 << 16

// appendSparseF64 encodes a seen-bitset plus the value slot of every set
// bit, in ascending origin order.
func appendSparseF64(buf []byte, seen []uint64, vals []float64) []byte {
	buf = checkpoint.AppendWords(buf, seen)
	for wi, word := range seen {
		for word != 0 {
			buf = checkpoint.AppendF64(buf, vals[wi<<6+bits.TrailingZeros64(word)])
			word &= word - 1
		}
	}
	return buf
}

// readSparseF64 decodes appendSparseF64's encoding into seen and vals
// (shapes must match the writing party's) and returns the set-bit count.
func readSparseF64(d *checkpoint.Dec, seen []uint64, vals []float64) (int, error) {
	d.Words(seen)
	if err := d.Err(); err != nil {
		return 0, err
	}
	cnt := 0
	for wi, word := range seen {
		for word != 0 {
			idx := wi<<6 + bits.TrailingZeros64(word)
			if idx >= len(vals) {
				return 0, fmt.Errorf("core: snapshot origin %d out of range %d", idx, len(vals))
			}
			vals[idx] = d.F64()
			cnt++
			word &= word - 1
		}
	}
	return cnt, d.Err()
}

// --- AsyncAA ---

// Snapshot implements Snapshotter: the adaptive INIT/DECIDED stores, the
// round ring and spill buckets, and the protocol position, appended to buf
// in the checkpoint format.
func (a *AsyncAA) Snapshot(buf []byte) ([]byte, error) {
	buf = checkpoint.Begin(buf)
	buf = checkpoint.AppendUvarint(buf, uint64(a.p.N))
	buf = checkpoint.AppendUvarint(buf, uint64(a.p.T))
	buf = checkpoint.AppendBool(buf, a.p.Adaptive)
	buf = checkpoint.AppendF64(buf, a.input)
	buf = checkpoint.AppendF64(buf, a.v)
	buf = checkpoint.AppendUvarint(buf, uint64(a.round))
	buf = checkpoint.AppendUvarint(buf, uint64(a.horizon))
	buf = checkpoint.AppendBool(buf, a.started)
	buf = checkpoint.AppendBool(buf, a.decided)
	buf = checkpoint.AppendF64(buf, a.initLo)
	buf = checkpoint.AppendF64(buf, a.initHi)
	buf = appendSparseF64(buf, a.initSeen, a.initVals)
	buf = appendSparseF64(buf, a.frozenSeen, a.frozenVals)
	// Buckets in ascending round order — ring slots are walked for their
	// tags and spill keys sorted through the reusable scratch, so the same
	// state always encodes to the same bytes.
	a.snapRounds = a.snapRounds[:0]
	for _, b := range a.ring {
		if b != nil {
			a.snapRounds = append(a.snapRounds, b.round)
		}
	}
	for r := range a.spill {
		a.snapRounds = append(a.snapRounds, r)
	}
	slices.Sort(a.snapRounds) // allocation-free, unlike sort.Slice's closure
	buf = checkpoint.AppendUvarint(buf, uint64(len(a.snapRounds)))
	for _, r := range a.snapRounds {
		b := a.bucket(r, false)
		buf = checkpoint.AppendUvarint(buf, uint64(r))
		buf = appendSparseF64(buf, b.seen, b.vals)
	}
	return checkpoint.Seal(buf), nil
}

// Restore implements Snapshotter. The party keeps its configuration and
// API wiring; every volatile field is replaced by the snapshot's state,
// with current buckets recycled through the free list first.
func (a *AsyncAA) Restore(data []byte) error {
	d, err := checkpoint.Open(data)
	if err != nil {
		return err
	}
	n, t, adaptive := d.Uvarint(), d.Uvarint(), d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if int(n) != a.p.N || int(t) != a.p.T || adaptive != a.p.Adaptive {
		return fmt.Errorf("%w: snapshot shape n=%d t=%d adaptive=%v does not match party n=%d t=%d adaptive=%v",
			ErrBadParams, n, t, adaptive, a.p.N, a.p.T, a.p.Adaptive)
	}
	// Drop the current volatile state exactly as a same-shape Reset does.
	for i, b := range a.ring {
		if b != nil {
			b.clear()
			a.freeBuckets = append(a.freeBuckets, b)
			a.ring[i] = nil
		}
	}
	for r, b := range a.spill {
		b.clear()
		a.freeBuckets = append(a.freeBuckets, b)
		delete(a.spill, r)
	}
	clear(a.initSeen)
	clear(a.frozenSeen)

	a.input = d.F64()
	a.v = d.F64()
	a.round = uint32(d.Uvarint())
	a.horizon = uint32(d.Uvarint())
	a.started = d.Bool()
	a.decided = d.Bool()
	a.initLo = d.F64()
	a.initHi = d.F64()
	if a.initCnt, err = readSparseF64(&d, a.initSeen, a.initVals); err != nil {
		return err
	}
	if a.frozenCnt, err = readSparseF64(&d, a.frozenSeen, a.frozenVals); err != nil {
		return err
	}
	nb := d.Uvarint()
	if nb > maxSnapBuckets {
		return fmt.Errorf("%w: snapshot declares %d round buckets", ErrBadParams, nb)
	}
	for i := uint64(0); i < nb; i++ {
		r := uint32(d.Uvarint())
		if d.Err() != nil {
			return d.Err()
		}
		b := a.bucket(r, true)
		if b.cnt, err = readSparseF64(&d, b.seen, b.vals); err != nil {
			return err
		}
	}
	return d.Done()
}

// Rejoin implements Snapshotter: re-announce the restored position. A
// decided party re-registers its decision with the runtime (the restart
// supervisor withdrew it at kill time; both runtimes dedup the re-call)
// and, when adaptive, re-multicasts DECIDED; an in-progress party
// re-sends its current round value, and a pre-quorum adaptive party
// re-sends INIT — all idempotent at every receiver.
func (a *AsyncAA) Rejoin() {
	if a.err != nil || a.api == nil {
		return
	}
	switch {
	case a.decided:
		a.api.Decide(a.v)
		if a.p.Adaptive {
			a.wireBuf = wire.AppendDecided(a.wireBuf[:0], wire.Decided{Value: a.v})
			a.api.Multicast(a.wireBuf)
		}
	case a.started:
		a.sendRound()
	case a.p.Adaptive:
		a.wireBuf = wire.AppendInit(a.wireBuf[:0], wire.Init{Value: a.input})
		a.api.Multicast(a.wireBuf)
	}
}

// --- SyncAA ---

// Snapshot implements Snapshotter.
func (s *SyncAA) Snapshot(buf []byte) ([]byte, error) {
	buf = checkpoint.Begin(buf)
	buf = checkpoint.AppendUvarint(buf, uint64(s.p.N))
	buf = checkpoint.AppendUvarint(buf, uint64(s.p.T))
	buf = checkpoint.AppendF64(buf, s.v)
	buf = checkpoint.AppendUvarint(buf, uint64(s.round))
	buf = checkpoint.AppendUvarint(buf, uint64(s.horizon))
	buf = checkpoint.AppendBool(buf, s.decided)
	count := 0
	for _, b := range s.rounds {
		if b != nil {
			count++
		}
	}
	buf = checkpoint.AppendUvarint(buf, uint64(count))
	for r, b := range s.rounds {
		if b != nil {
			buf = checkpoint.AppendUvarint(buf, uint64(r))
			buf = appendSparseF64(buf, b.seen, b.vals)
		}
	}
	return checkpoint.Seal(buf), nil
}

// Restore implements Snapshotter. The fixed horizon is part of the shape:
// a snapshot from a differently configured run is rejected.
func (s *SyncAA) Restore(data []byte) error {
	d, err := checkpoint.Open(data)
	if err != nil {
		return err
	}
	n, t := d.Uvarint(), d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if int(n) != s.p.N || int(t) != s.p.T {
		return fmt.Errorf("%w: snapshot shape n=%d t=%d does not match party n=%d t=%d",
			ErrBadParams, n, t, s.p.N, s.p.T)
	}
	v := d.F64()
	round := uint32(d.Uvarint())
	horizon := uint32(d.Uvarint())
	decided := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if horizon != s.horizon {
		return fmt.Errorf("%w: snapshot horizon %d, party horizon %d", ErrBadParams, horizon, s.horizon)
	}
	for i, b := range s.rounds {
		if b != nil {
			b.clear()
			s.freeBuckets = append(s.freeBuckets, b)
			s.rounds[i] = nil
		}
	}
	s.v, s.round, s.decided = v, round, decided
	count := d.Uvarint()
	if count > uint64(len(s.rounds)) {
		return fmt.Errorf("%w: snapshot declares %d round buckets for horizon %d", ErrBadParams, count, horizon)
	}
	for i := uint64(0); i < count; i++ {
		r := d.Uvarint()
		if d.Err() != nil {
			return d.Err()
		}
		if r >= uint64(len(s.rounds)) {
			return fmt.Errorf("%w: snapshot round %d beyond horizon %d", ErrBadParams, r, horizon)
		}
		var b *roundBucket
		if k := len(s.freeBuckets); k > 0 {
			b = s.freeBuckets[k-1]
			s.freeBuckets[k-1] = nil
			s.freeBuckets = s.freeBuckets[:k-1]
		} else {
			b = newRoundBucket(s.p.N)
		}
		b.round = uint32(r)
		s.rounds[r] = b
		if b.cnt, err = readSparseF64(&d, b.seen, b.vals); err != nil {
			return err
		}
	}
	return d.Done()
}

// Rejoin implements Snapshotter: restart the current round's multicast and
// timer. The synchronous baseline's guarantees still rest on the synchrony
// assumption — a recovery window longer than the round pace shows up as
// the usual lost-synchrony Err, which is the honest outcome.
func (s *SyncAA) Rejoin() {
	if s.err != nil || s.api == nil {
		return
	}
	if s.decided {
		// Re-register the withdrawn decision; both runtimes dedup.
		s.api.Decide(s.v)
		return
	}
	if s.round == 0 {
		return
	}
	s.beginRound()
}

// --- WitnessAA ---

// Snapshot implements Snapshotter: the witness ring (value slots,
// delivered/satisfied bitsets, pending report masks) plus the underlying
// RBC broadcaster's slabs.
func (w *WitnessAA) Snapshot(buf []byte) ([]byte, error) {
	buf = checkpoint.Begin(buf)
	buf = checkpoint.AppendUvarint(buf, uint64(w.p.N))
	buf = checkpoint.AppendUvarint(buf, uint64(w.p.T))
	buf = checkpoint.AppendF64(buf, w.v)
	buf = checkpoint.AppendUvarint(buf, uint64(w.round))
	buf = checkpoint.AppendUvarint(buf, uint64(w.horizon))
	buf = checkpoint.AppendBool(buf, w.decided)
	count := 0
	for i := range w.rounds {
		if w.rounds[i].arr != nil || w.rounds[i].sentRep {
			count++
		}
	}
	buf = checkpoint.AppendUvarint(buf, uint64(count))
	for r := range w.rounds {
		rr := &w.rounds[r]
		if rr.arr == nil && !rr.sentRep {
			continue
		}
		buf = checkpoint.AppendUvarint(buf, uint64(r))
		buf = checkpoint.AppendBool(buf, rr.sentRep)
		buf = checkpoint.AppendBool(buf, rr.arr != nil)
		if a := rr.arr; a != nil {
			buf = appendSparseF64(buf, a.have, a.vals)
			buf = checkpoint.AppendWords(buf, a.sat)
			buf = checkpoint.AppendWords(buf, a.pendActive)
			for wi, word := range a.pendActive {
				for word != 0 {
					f := wi<<6 + bits.TrailingZeros64(word)
					buf = checkpoint.AppendWords(buf, a.pendMask[f*w.words:(f+1)*w.words])
					word &= word - 1
				}
			}
		}
	}
	if w.bcast != nil {
		buf = w.bcast.AppendState(buf)
	}
	return checkpoint.Seal(buf), nil
}

// Restore implements Snapshotter. The broadcaster is reset through its
// normal recycling path and refilled from the snapshot's slab records.
func (w *WitnessAA) Restore(data []byte) error {
	d, err := checkpoint.Open(data)
	if err != nil {
		return err
	}
	n, t := d.Uvarint(), d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if int(n) != w.p.N || int(t) != w.p.T {
		return fmt.Errorf("%w: snapshot shape n=%d t=%d does not match party n=%d t=%d",
			ErrBadParams, n, t, w.p.N, w.p.T)
	}
	v := d.F64()
	round := uint32(d.Uvarint())
	horizon := uint32(d.Uvarint())
	decided := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if horizon != w.horizon {
		return fmt.Errorf("%w: snapshot horizon %d, party horizon %d", ErrBadParams, horizon, w.horizon)
	}
	for i := range w.rounds {
		if a := w.rounds[i].arr; a != nil {
			w.recycleArrays(a)
		}
		w.rounds[i] = witRound{}
	}
	w.v, w.round, w.decided = v, round, decided
	count := d.Uvarint()
	if count > uint64(len(w.rounds)) {
		return fmt.Errorf("%w: snapshot declares %d witness rounds for horizon %d", ErrBadParams, count, horizon)
	}
	for i := uint64(0); i < count; i++ {
		if err := w.restoreRound(&d); err != nil {
			return err
		}
	}
	if w.bcast != nil {
		if err := w.bcast.Reset(w.p.N, w.p.T, uint16(w.api.ID()), w.mcast); err != nil {
			return err
		}
		w.bcast.SetMaxRound(w.horizon)
		if err := w.bcast.RestoreState(&d); err != nil {
			return err
		}
	}
	return d.Done()
}

func (w *WitnessAA) restoreRound(d *checkpoint.Dec) error {
	r := d.Uvarint()
	if d.Err() != nil {
		return d.Err()
	}
	if r >= uint64(len(w.rounds)) {
		return fmt.Errorf("%w: snapshot witness round %d beyond horizon %d", ErrBadParams, r, w.horizon)
	}
	rr := &w.rounds[r]
	rr.sentRep = d.Bool()
	hasArr := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if !hasArr {
		return nil
	}
	a := w.arrays(uint32(r))
	var err error
	if a.haveCnt, err = readSparseF64(d, a.have, a.vals); err != nil {
		return err
	}
	d.Words(a.sat)
	d.Words(a.pendActive)
	if d.Err() != nil {
		return d.Err()
	}
	a.satCnt = 0
	for _, word := range a.sat {
		a.satCnt += bits.OnesCount64(word)
	}
	for wi, word := range a.pendActive {
		for word != 0 {
			f := wi<<6 + bits.TrailingZeros64(word)
			if f >= w.p.N {
				return fmt.Errorf("%w: pending reporter %d out of range", ErrBadParams, f)
			}
			d.Words(a.pendMask[f*w.words : (f+1)*w.words])
			word &= word - 1
		}
	}
	return d.Err()
}

// Rejoin implements Snapshotter: re-broadcast the current round's value
// (receivers' first-SEND-wins dedup makes this idempotent) and, if the
// party had already filed its report for the round, re-multicast it.
func (w *WitnessAA) Rejoin() {
	if w.err != nil || w.api == nil {
		return
	}
	if w.decided {
		// Re-register the withdrawn decision; both runtimes dedup.
		w.api.Decide(w.v)
		return
	}
	if w.round == 0 || w.bcast == nil {
		return
	}
	w.bcast.Broadcast(w.round, w.v)
	rr := &w.rounds[w.round]
	if !rr.sentRep || rr.arr == nil {
		return
	}
	senders := w.sendersBuf[:0]
	for wi, word := range rr.arr.have {
		for word != 0 {
			senders = append(senders, uint16(wi*64+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	w.sendersBuf = senders[:0]
	w.wireBuf = wire.AppendReport(w.wireBuf[:0], wire.Report{Round: w.round, Senders: senders})
	w.api.Multicast(w.wireBuf)
}
