package core

import (
	"math/bits"

	"repro/internal/sim"
)

// roundBucket is one round's dense reception state: a value slot per
// origin, a seen bitset, and the received count. It replaces the
// map[sim.PartyID]float64 buckets of the early protocol versions, so the
// per-message hot path is an array store plus a bit test, and view
// assembly walks contiguous memory — the protocol-side half of the
// struct-of-arrays layout the large-n sweeps need.
//
// Like the witness protocol's per-round arrays, buckets recycle through a
// free list: clear re-zeroes only the seen words (value slots are
// overwritten before they are read, guarded by the bitset).
type roundBucket struct {
	round uint32 // the round this bucket currently holds (ring tag)
	cnt   int
	vals  []float64
	seen  []uint64
}

// newRoundBucket allocates a bucket for n parties.
func newRoundBucket(n int) *roundBucket {
	return &roundBucket{
		vals: make([]float64, n),
		seen: make([]uint64, (n+63)/64),
	}
}

// add records from's value; it reports false for a duplicate sender.
func (b *roundBucket) add(from sim.PartyID, v float64) bool {
	wd, bit := int(from)>>6, uint64(1)<<(uint(from)&63)
	if b.seen[wd]&bit != 0 {
		return false
	}
	b.seen[wd] |= bit
	b.vals[from] = v
	b.cnt++
	return true
}

// has reports whether from already contributed.
func (b *roundBucket) has(from sim.PartyID) bool {
	return b.seen[int(from)>>6]&(1<<(uint(from)&63)) != 0
}

// clear empties the bucket for reuse.
func (b *roundBucket) clear() {
	for i := range b.seen {
		b.seen[i] = 0
	}
	b.cnt = 0
	b.round = 0
}

// appendValues appends the bucket's values to out in ascending origin
// order. The view multisets are order-insensitive (every consumer sorts or
// reduces by min/max), so the switch from map iteration order is
// unobservable.
func (b *roundBucket) appendValues(out []float64) []float64 {
	for wi, word := range b.seen {
		for word != 0 {
			out = append(out, b.vals[wi<<6+bits.TrailingZeros64(word)])
			word &= word - 1
		}
	}
	return out
}
