package core

import (
	"fmt"
	"math/bits"

	"repro/internal/multiset"
	"repro/internal/sim"
	"repro/internal/wire"
)

// futureRoundSlack bounds how far beyond the current horizon round-tagged
// values are buffered, so a Byzantine sender cannot exhaust memory with
// absurd round numbers while honest values slightly ahead of a growing
// adaptive horizon are still retained.
const futureRoundSlack = 4096

// roundRingLen is the window of the dense round ring: buckets for rounds
// within roundRingLen of each other live in a direct-indexed ring (the
// common case — honest parties lead each other by at most the horizon);
// colliding far-apart rounds (Byzantine round spam) spill to a map.
const roundRingLen = 64

// AsyncAA is the asynchronous value-exchange protocol (ProtoCrash and
// ProtoByzTrim). Each round r the party multicasts ⟨VAL, r, v⟩, waits until
// it holds round-r values from n−t distinct parties (its own included),
// applies the approximation function, and advances; after the final round it
// decides.
//
// In fixed-range mode every party derives the same round count R from the
// public parameters, so every party sends a value for every round 1..R and
// quorums always fill: liveness and unconditional ε-agreement follow.
//
// In adaptive mode the party first multicasts ⟨INIT, input⟩, estimates the
// spread from n−t INIT values, and derives a private horizon which it
// piggybacks on every VAL message; horizons are joined by maximum. A party
// that decides multicasts ⟨DECIDED, y⟩, and receivers use y as that party's
// value for every later round. The adaptive guarantee is conditional (see
// DESIGN.md §Termination modes); experiment E8 maps the boundary.
//
// Bookkeeping is dense (struct-of-arrays, like the witness ring): per-round
// reception state lives in roundBuckets held by a tag-checked ring indexed
// by round, INIT and DECIDED values in flat per-origin arrays with seen
// bitsets, and the INIT spread estimate is a running min/max pair. The
// quorum test per message is an O(1) count check; the O(n) view assembly
// and multiset reduce run once per completed round, not once per message —
// which is what makes n ≥ 512 sweeps tractable.
type AsyncAA struct {
	p Params
	// ring holds the active rounds' buckets, indexed round % roundRingLen
	// and tag-checked; spill catches ring collisions (rounds ≥ roundRingLen
	// apart, only reachable through Byzantine round tags). freeBuckets
	// recycles completed rounds' buckets across rounds and runs.
	ring        []*roundBucket
	spill       map[uint32]*roundBucket
	freeBuckets []*roundBucket
	// inits and frozen are dense per-origin stores with seen bitsets;
	// initLo/initHi carry the running INIT spread (O(1) per INIT, no
	// staging walk).
	initVals       []float64
	initSeen       []uint64
	initCnt        int
	initLo, initHi float64
	frozenVals     []float64
	frozenSeen     []uint64
	frozenCnt      int
	api            sim.API
	fn             multiset.Func
	viewBuf        []float64 // per-round reception scratch, reused across rounds
	wireBuf        []byte    // wire-encoding scratch; runtimes snapshot on send
	snapRounds     []uint32  // sorted-round scratch for Snapshot, reused
	input          float64
	v              float64
	round          uint32 // round currently being collected (1-based)
	horizon        uint32 // last round; 0 means decide immediately
	started        bool   // value rounds have begun (always true in fixed mode)
	decided        bool
	err            error
}

var (
	_ sim.Process      = (*AsyncAA)(nil)
	_ sim.BatchProcess = (*AsyncAA)(nil)
	_ sim.Estimator    = (*AsyncAA)(nil)
)

// NewAsyncAA builds a party of the asynchronous protocol. Params must have
// Protocol ProtoCrash or ProtoByzTrim and pass Validate; input is this
// party's input value.
func NewAsyncAA(p Params, input float64) (*AsyncAA, error) {
	a := &AsyncAA{}
	if err := a.Reset(p, input); err != nil {
		return nil, err
	}
	return a, nil
}

// Reset re-initializes the party for a new run, performing exactly the
// validation NewAsyncAA performs but recycling the round buckets, the
// dense INIT/DECIDED stores, and the scratch buffers — the recycled-run-
// context form of fresh construction. After a same-shape warm-up run it
// allocates nothing; a shape change (different N) drops the shape-bound
// pools.
func (a *AsyncAA) Reset(p Params, input float64) error {
	if p.Protocol != ProtoCrash && p.Protocol != ProtoByzTrim {
		return fmt.Errorf("%w: AsyncAA does not implement %s", ErrBadParams, p.Protocol)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if !isUsable(input) {
		return fmt.Errorf("%w: non-finite input %v", ErrBadParams, input)
	}
	if !p.Adaptive && (input < p.Lo || input > p.Hi) {
		return fmt.Errorf("%w: input %v outside promised range [%v, %v]",
			ErrBadParams, input, p.Lo, p.Hi)
	}
	sameShape := p.N == a.p.N && a.ring != nil
	if sameShape {
		for i, b := range a.ring {
			if b != nil {
				b.clear()
				a.freeBuckets = append(a.freeBuckets, b)
				a.ring[i] = nil
			}
		}
		for r, b := range a.spill {
			b.clear()
			a.freeBuckets = append(a.freeBuckets, b)
			delete(a.spill, r)
		}
		clear(a.initSeen)
		clear(a.frozenSeen)
	} else {
		words := (p.N + 63) / 64
		a.ring = make([]*roundBucket, roundRingLen)
		a.spill = nil
		clear(a.freeBuckets) // shape-bound: drop old-size buckets entirely
		a.freeBuckets = a.freeBuckets[:0]
		a.initVals = make([]float64, p.N)
		a.initSeen = make([]uint64, words)
		a.frozenVals = make([]float64, p.N)
		a.frozenSeen = make([]uint64, words)
	}
	a.initCnt, a.frozenCnt = 0, 0
	a.initLo, a.initHi = 0, 0
	a.p = p
	a.fn = p.fn()
	a.input, a.v = input, input
	a.api = nil
	a.round, a.horizon = 0, 0
	a.started, a.decided = false, false
	a.err = nil
	return nil
}

// Init implements sim.Process.
func (a *AsyncAA) Init(api sim.API) {
	a.api = api
	if a.p.Adaptive {
		a.wireBuf = wire.AppendInit(a.wireBuf[:0], wire.Init{Value: a.input})
		api.Multicast(a.wireBuf)
		return
	}
	r, err := a.p.FixedRounds()
	if err != nil {
		a.fail(err)
		return
	}
	a.begin(uint32(r))
}

// begin starts the value-exchange rounds. The horizon is joined with any
// horizon already learned from early VAL messages of faster parties.
func (a *AsyncAA) begin(horizon uint32) {
	a.started = true
	if horizon > a.horizon {
		a.horizon = horizon
	}
	a.round = 1
	if a.horizon == 0 {
		a.decide()
		return
	}
	a.sendRound()
	a.advance()
}

// sendRound multicasts the current value tagged with the current round.
func (a *AsyncAA) sendRound() {
	a.wireBuf = wire.AppendValue(a.wireBuf[:0], wire.Value{
		Round:   a.round,
		Horizon: a.horizon,
		Value:   a.v,
	})
	a.api.Multicast(a.wireBuf)
}

// Deliver implements sim.Process.
func (a *AsyncAA) Deliver(from sim.PartyID, data []byte) {
	a.deliver(from, data)
}

// DeliverBatch implements sim.BatchProcess: one call per virtual-time tick,
// with the per-message work reduced to decode plus an O(1) bucket insert —
// the quorum check and the (per-round, not per-message) view reduce happen
// at the same per-envelope points as unbatched delivery, so the two paths
// are observably identical.
func (a *AsyncAA) DeliverBatch(b *sim.Batch) {
	for env := b.Next(); env != nil; env = b.Next() {
		a.deliver(env.From, env.Data)
	}
}

// deliver is the shared per-message body.
func (a *AsyncAA) deliver(from sim.PartyID, data []byte) {
	if a.err != nil {
		return
	}
	kind, err := wire.Peek(data)
	if err != nil {
		return // garbage from a Byzantine sender
	}
	switch kind {
	case wire.KindInit:
		m, err := wire.UnmarshalInit(data)
		if err != nil || !isUsable(m.Value) {
			return
		}
		a.onInit(from, m.Value)
	case wire.KindValue:
		m, err := wire.UnmarshalValue(data)
		if err != nil || !isUsable(m.Value) {
			return
		}
		a.onValue(from, m)
	case wire.KindDecided:
		m, err := wire.UnmarshalDecided(data)
		if err != nil || !isUsable(m.Value) {
			return
		}
		a.onDecided(from, m.Value)
	default:
		// RBC and report traffic belongs to other protocols; ignore.
	}
}

// onInit handles adaptive-mode input announcements. Late INIT values that
// grow the spread estimate extend the horizon monotonically.
func (a *AsyncAA) onInit(from sim.PartyID, v float64) {
	if !a.p.Adaptive {
		return
	}
	if from < 0 || int(from) >= a.p.N {
		return
	}
	wd, bit := int(from)>>6, uint64(1)<<(uint(from)&63)
	if a.initSeen[wd]&bit != 0 {
		return
	}
	a.initSeen[wd] |= bit
	a.initVals[from] = v
	if a.initCnt == 0 {
		a.initLo, a.initHi = v, v
	} else {
		if v < a.initLo {
			a.initLo = v
		}
		if v > a.initHi {
			a.initHi = v
		}
	}
	a.initCnt++
	if !a.started {
		if a.initCnt >= a.p.Quorum() {
			a.begin(uint32(a.p.adaptiveRounds(a.initSpread())))
		}
		return
	}
	a.extendHorizon(uint32(a.p.adaptiveRounds(a.initSpread())))
}

// initSpread is the running spread of the INIT values seen so far — a
// min/max pair maintained by onInit, O(1) per INIT with no staging walk.
func (a *AsyncAA) initSpread() float64 {
	if a.initCnt == 0 {
		return 0
	}
	return a.initHi - a.initLo
}

// extendHorizon joins horizons by maximum (adaptive mode only).
func (a *AsyncAA) extendHorizon(h uint32) {
	if !a.p.Adaptive || a.decided || h <= a.horizon {
		return
	}
	a.horizon = h
}

// onDecided freezes a decided party's final value for every later round.
func (a *AsyncAA) onDecided(from sim.PartyID, v float64) {
	if from < 0 || int(from) >= a.p.N {
		return
	}
	wd, bit := int(from)>>6, uint64(1)<<(uint(from)&63)
	if a.frozenSeen[wd]&bit != 0 {
		return
	}
	a.frozenSeen[wd] |= bit
	a.frozenVals[from] = v
	a.frozenCnt++
	// A frozen value can complete the current round's quorum; the count
	// pair is a cheap superset test (overlap makes it an overestimate) and
	// advance re-checks exactly.
	if b := a.bucket(a.round, false); b == nil {
		if a.frozenCnt >= a.p.Quorum() {
			a.advance()
		}
	} else if b.cnt+a.frozenCnt >= a.p.Quorum() {
		a.advance()
	}
}

// bucket returns round's reception bucket, creating it when create is set:
// from the direct-indexed ring slot when free or matching, spilling to the
// map when a far-apart round (Byzantine round tags) collides.
func (a *AsyncAA) bucket(round uint32, create bool) *roundBucket {
	slot := round % roundRingLen
	b := a.ring[slot]
	if b != nil && b.round == round {
		return b
	}
	// Not in the ring: the round may have been spilled earlier (its slot
	// was occupied then), and a spilled round stays in the map for its
	// lifetime even if the slot has since been freed — a freed slot must
	// not shadow recorded state.
	if sb, ok := a.spill[round]; ok {
		return sb
	}
	if !create {
		return nil
	}
	nb := a.takeBucket(round)
	if b == nil {
		a.ring[slot] = nb
		return nb
	}
	if a.spill == nil {
		a.spill = make(map[uint32]*roundBucket)
	}
	a.spill[round] = nb
	return nb
}

// takeBucket pulls a recycled bucket (or allocates) and tags it.
func (a *AsyncAA) takeBucket(round uint32) *roundBucket {
	var b *roundBucket
	if k := len(a.freeBuckets); k > 0 {
		b = a.freeBuckets[k-1]
		a.freeBuckets[k-1] = nil
		a.freeBuckets = a.freeBuckets[:k-1]
	} else {
		b = newRoundBucket(a.p.N)
	}
	b.round = round
	return b
}

// activeBuckets counts live round buckets (ring plus spill), the memory
// bound the future-round slack guard enforces (used by tests).
func (a *AsyncAA) activeBuckets() int {
	n := len(a.spill)
	for _, b := range a.ring {
		if b != nil {
			n++
		}
	}
	return n
}

// dropBucket recycles a completed round's bucket.
func (a *AsyncAA) dropBucket(round uint32) {
	slot := round % roundRingLen
	if b := a.ring[slot]; b != nil && b.round == round {
		b.clear()
		a.freeBuckets = append(a.freeBuckets, b)
		a.ring[slot] = nil
		return
	}
	if b, ok := a.spill[round]; ok {
		b.clear()
		a.freeBuckets = append(a.freeBuckets, b)
		delete(a.spill, round)
	}
}

// onValue records a round-tagged value, joining the piggybacked horizon.
func (a *AsyncAA) onValue(from sim.PartyID, m wire.Value) {
	a.extendHorizon(m.Horizon)
	if m.Round == 0 || uint64(m.Round) > uint64(a.horizon)+futureRoundSlack {
		return
	}
	if from < 0 || int(from) >= a.p.N {
		return
	}
	b := a.bucket(m.Round, true)
	if !b.add(from, m.Value) {
		return // only a sender's first value for a round counts
	}
	// The quorum test is the count pair; the O(n) view assembly and reduce
	// run only when the current round can actually complete. Values for
	// other rounds can never complete the current round, so the advance
	// probe is skipped entirely — this is the "one view rebuild per round
	// instead of per message" batching win.
	if m.Round == a.round && b.cnt+a.frozenCnt >= a.p.Quorum() {
		a.advance()
	}
}

// advance processes as many rounds as currently have full quorums.
func (a *AsyncAA) advance() {
	if !a.started || a.decided || a.err != nil {
		return
	}
	for {
		view := a.view(a.round)
		if len(view) < a.p.Quorum() {
			return
		}
		next, err := multiset.ApplyInPlace(a.fn, view)
		if err != nil {
			a.fail(fmt.Errorf("core: round %d: %w", a.round, err))
			return
		}
		a.v = next
		a.dropBucket(a.round)
		a.round++
		if a.round > a.horizon {
			a.decide()
			return
		}
		a.sendRound()
	}
}

// view assembles the reception multiset for a round: round-tagged values
// plus frozen DECIDED values from parties that sent nothing for the round.
// The returned slice is the party's reusable scratch buffer — valid until
// the next view call, sorted in place by the apply step.
func (a *AsyncAA) view(round uint32) []float64 {
	out := a.viewBuf[:0]
	b := a.bucket(round, false)
	if b != nil {
		out = b.appendValues(out)
		if a.frozenCnt > 0 {
			for wi, word := range a.frozenSeen {
				word &^= b.seen[wi]
				for word != 0 {
					out = append(out, a.frozenVals[wi<<6+bits.TrailingZeros64(word)])
					word &= word - 1
				}
			}
		}
	} else if a.frozenCnt > 0 {
		for wi, word := range a.frozenSeen {
			for word != 0 {
				out = append(out, a.frozenVals[wi<<6+bits.TrailingZeros64(word)])
				word &= word - 1
			}
		}
	}
	a.viewBuf = out
	return out
}

func (a *AsyncAA) decide() {
	if a.decided {
		return
	}
	a.decided = true
	a.api.Decide(a.v)
	if a.p.Adaptive {
		a.wireBuf = wire.AppendDecided(a.wireBuf[:0], wire.Decided{Value: a.v})
		a.api.Multicast(a.wireBuf)
	}
}

func (a *AsyncAA) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}

// Err reports an internal invariant failure, if any. The harness checks it
// after every run.
func (a *AsyncAA) Err() error { return a.err }

// Estimate implements sim.Estimator.
func (a *AsyncAA) Estimate() (float64, bool) { return a.v, true }

// Round reports the round currently being collected (for tests).
func (a *AsyncAA) Round() uint32 { return a.round }

// Decided reports whether the party has output.
func (a *AsyncAA) Decided() bool { return a.decided }
