package core

import (
	"fmt"

	"repro/internal/multiset"
	"repro/internal/sim"
	"repro/internal/wire"
)

// futureRoundSlack bounds how far beyond the current horizon round-tagged
// values are buffered, so a Byzantine sender cannot exhaust memory with
// absurd round numbers while honest values slightly ahead of a growing
// adaptive horizon are still retained.
const futureRoundSlack = 4096

// AsyncAA is the asynchronous value-exchange protocol (ProtoCrash and
// ProtoByzTrim). Each round r the party multicasts ⟨VAL, r, v⟩, waits until
// it holds round-r values from n−t distinct parties (its own included),
// applies the approximation function, and advances; after the final round it
// decides.
//
// In fixed-range mode every party derives the same round count R from the
// public parameters, so every party sends a value for every round 1..R and
// quorums always fill: liveness and unconditional ε-agreement follow.
//
// In adaptive mode the party first multicasts ⟨INIT, input⟩, estimates the
// spread from n−t INIT values, and derives a private horizon which it
// piggybacks on every VAL message; horizons are joined by maximum. A party
// that decides multicasts ⟨DECIDED, y⟩, and receivers use y as that party's
// value for every later round. The adaptive guarantee is conditional (see
// DESIGN.md §Termination modes); experiment E8 maps the boundary.
type AsyncAA struct {
	p      Params
	rounds map[uint32]map[sim.PartyID]float64
	inits  map[sim.PartyID]float64
	frozen map[sim.PartyID]float64
	// freeBuckets recycles completed rounds' reception maps (cleared, with
	// their buckets intact), so steady-state round turnover — within a run
	// and across recycled runs — inserts into warm maps without allocating.
	freeBuckets []map[sim.PartyID]float64
	api         sim.API
	fn          multiset.Func
	viewBuf     []float64 // per-round reception scratch, reused across rounds
	wireBuf     []byte    // wire-encoding scratch; runtimes snapshot on send
	input       float64
	v           float64
	round       uint32 // round currently being collected (1-based)
	horizon     uint32 // last round; 0 means decide immediately
	started     bool   // value rounds have begun (always true in fixed mode)
	decided     bool
	err         error
}

var (
	_ sim.Process   = (*AsyncAA)(nil)
	_ sim.Estimator = (*AsyncAA)(nil)
)

// NewAsyncAA builds a party of the asynchronous protocol. Params must have
// Protocol ProtoCrash or ProtoByzTrim and pass Validate; input is this
// party's input value.
func NewAsyncAA(p Params, input float64) (*AsyncAA, error) {
	a := &AsyncAA{}
	if err := a.Reset(p, input); err != nil {
		return nil, err
	}
	return a, nil
}

// Reset re-initializes the party for a new run, performing exactly the
// validation NewAsyncAA performs but recycling the reception maps and
// scratch buffers — the recycled-run-context form of fresh construction.
// After a same-shape warm-up run it allocates nothing.
func (a *AsyncAA) Reset(p Params, input float64) error {
	if p.Protocol != ProtoCrash && p.Protocol != ProtoByzTrim {
		return fmt.Errorf("%w: AsyncAA does not implement %s", ErrBadParams, p.Protocol)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if !isUsable(input) {
		return fmt.Errorf("%w: non-finite input %v", ErrBadParams, input)
	}
	if !p.Adaptive && (input < p.Lo || input > p.Hi) {
		return fmt.Errorf("%w: input %v outside promised range [%v, %v]",
			ErrBadParams, input, p.Lo, p.Hi)
	}
	a.p = p
	a.fn = p.fn()
	a.input, a.v = input, input
	a.api = nil
	a.round, a.horizon = 0, 0
	a.started, a.decided = false, false
	a.err = nil
	if a.rounds == nil {
		a.rounds = make(map[uint32]map[sim.PartyID]float64)
		a.inits = make(map[sim.PartyID]float64)
		a.frozen = make(map[sim.PartyID]float64)
		return nil
	}
	for r, bucket := range a.rounds {
		clear(bucket)
		a.freeBuckets = append(a.freeBuckets, bucket)
		delete(a.rounds, r)
	}
	clear(a.inits)
	clear(a.frozen)
	return nil
}

// Init implements sim.Process.
func (a *AsyncAA) Init(api sim.API) {
	a.api = api
	if a.p.Adaptive {
		a.wireBuf = wire.AppendInit(a.wireBuf[:0], wire.Init{Value: a.input})
		api.Multicast(a.wireBuf)
		return
	}
	r, err := a.p.FixedRounds()
	if err != nil {
		a.fail(err)
		return
	}
	a.begin(uint32(r))
}

// begin starts the value-exchange rounds. The horizon is joined with any
// horizon already learned from early VAL messages of faster parties.
func (a *AsyncAA) begin(horizon uint32) {
	a.started = true
	if horizon > a.horizon {
		a.horizon = horizon
	}
	a.round = 1
	if a.horizon == 0 {
		a.decide()
		return
	}
	a.sendRound()
	a.advance()
}

// sendRound multicasts the current value tagged with the current round.
func (a *AsyncAA) sendRound() {
	a.wireBuf = wire.AppendValue(a.wireBuf[:0], wire.Value{
		Round:   a.round,
		Horizon: a.horizon,
		Value:   a.v,
	})
	a.api.Multicast(a.wireBuf)
}

// Deliver implements sim.Process.
func (a *AsyncAA) Deliver(from sim.PartyID, data []byte) {
	if a.err != nil {
		return
	}
	kind, err := wire.Peek(data)
	if err != nil {
		return // garbage from a Byzantine sender
	}
	switch kind {
	case wire.KindInit:
		m, err := wire.UnmarshalInit(data)
		if err != nil || !isUsable(m.Value) {
			return
		}
		a.onInit(from, m.Value)
	case wire.KindValue:
		m, err := wire.UnmarshalValue(data)
		if err != nil || !isUsable(m.Value) {
			return
		}
		a.onValue(from, m)
	case wire.KindDecided:
		m, err := wire.UnmarshalDecided(data)
		if err != nil || !isUsable(m.Value) {
			return
		}
		if _, ok := a.frozen[from]; !ok {
			a.frozen[from] = m.Value
			a.advance()
		}
	default:
		// RBC and report traffic belongs to other protocols; ignore.
	}
}

// onInit handles adaptive-mode input announcements. Late INIT values that
// grow the spread estimate extend the horizon monotonically.
func (a *AsyncAA) onInit(from sim.PartyID, v float64) {
	if !a.p.Adaptive {
		return
	}
	if _, ok := a.inits[from]; ok {
		return
	}
	a.inits[from] = v
	if !a.started {
		if len(a.inits) >= a.p.Quorum() {
			a.begin(uint32(a.p.adaptiveRounds(a.initSpread())))
		}
		return
	}
	a.extendHorizon(uint32(a.p.adaptiveRounds(a.initSpread())))
}

// initSpread computes the spread of the INIT values seen so far, staging
// them in the view scratch (free here: views are only assembled later, in
// advance, which never runs concurrently with an onInit callback).
func (a *AsyncAA) initSpread() float64 {
	vals := a.viewBuf[:0]
	for _, v := range a.inits {
		vals = append(vals, v)
	}
	a.viewBuf = vals[:0]
	return multiset.Spread(vals)
}

// extendHorizon joins horizons by maximum (adaptive mode only).
func (a *AsyncAA) extendHorizon(h uint32) {
	if !a.p.Adaptive || a.decided || h <= a.horizon {
		return
	}
	a.horizon = h
}

// onValue records a round-tagged value, joining the piggybacked horizon.
func (a *AsyncAA) onValue(from sim.PartyID, m wire.Value) {
	a.extendHorizon(m.Horizon)
	if m.Round == 0 || uint64(m.Round) > uint64(a.horizon)+futureRoundSlack {
		return
	}
	bucket, ok := a.rounds[m.Round]
	if !ok {
		if k := len(a.freeBuckets); k > 0 {
			bucket = a.freeBuckets[k-1]
			a.freeBuckets[k-1] = nil
			a.freeBuckets = a.freeBuckets[:k-1]
		} else {
			bucket = make(map[sim.PartyID]float64, a.p.N)
		}
		a.rounds[m.Round] = bucket
	}
	if _, dup := bucket[from]; dup {
		return // only a sender's first value for a round counts
	}
	bucket[from] = m.Value
	a.advance()
}

// advance processes as many rounds as currently have full quorums.
func (a *AsyncAA) advance() {
	if !a.started || a.decided || a.err != nil {
		return
	}
	for {
		view := a.view(a.round)
		if len(view) < a.p.Quorum() {
			return
		}
		next, err := multiset.ApplyInPlace(a.fn, view)
		if err != nil {
			a.fail(fmt.Errorf("core: round %d: %w", a.round, err))
			return
		}
		a.v = next
		if bucket, ok := a.rounds[a.round]; ok {
			clear(bucket)
			a.freeBuckets = append(a.freeBuckets, bucket)
			delete(a.rounds, a.round)
		}
		a.round++
		if a.round > a.horizon {
			a.decide()
			return
		}
		a.sendRound()
	}
}

// view assembles the reception multiset for a round: round-tagged values
// plus frozen DECIDED values from parties that sent nothing for the round.
// The returned slice is the party's reusable scratch buffer — valid until
// the next view call, sorted in place by the apply step.
func (a *AsyncAA) view(round uint32) []float64 {
	bucket := a.rounds[round]
	out := a.viewBuf[:0]
	for _, v := range bucket {
		out = append(out, v)
	}
	for from, v := range a.frozen {
		if _, ok := bucket[from]; !ok {
			out = append(out, v)
		}
	}
	a.viewBuf = out
	return out
}

func (a *AsyncAA) decide() {
	if a.decided {
		return
	}
	a.decided = true
	a.api.Decide(a.v)
	if a.p.Adaptive {
		a.wireBuf = wire.AppendDecided(a.wireBuf[:0], wire.Decided{Value: a.v})
		a.api.Multicast(a.wireBuf)
	}
}

func (a *AsyncAA) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}

// Err reports an internal invariant failure, if any. The harness checks it
// after every run.
func (a *AsyncAA) Err() error { return a.err }

// Estimate implements sim.Estimator.
func (a *AsyncAA) Estimate() (float64, bool) { return a.v, true }

// Round reports the round currently being collected (for tests).
func (a *AsyncAA) Round() uint32 { return a.round }

// Decided reports whether the party has output.
func (a *AsyncAA) Decided() bool { return a.decided }
