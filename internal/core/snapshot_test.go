package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/sim"
	"repro/internal/wire"
)

// snap is a test helper: Snapshot with a fresh buffer, failing on error.
func snap(t *testing.T, s Snapshotter) []byte {
	t.Helper()
	b, err := s.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAsyncSnapshotRoundTrip(t *testing.T) {
	p, err := NewAsyncAA(crashParams(5, 2), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	api := newFakeAPI(0, 5)
	p.Init(api)
	feed(t, p, 0, 1, 0.5)
	feed(t, p, 1, 1, 0.1) // mid-round: 2 of quorum 3

	a1, a2 := snap(t, p), snap(t, p)
	if !bytes.Equal(a1, a2) {
		t.Fatal("same state produced different snapshots")
	}
	// Restore onto itself is the identity.
	if err := p.Restore(a1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap(t, p), a1) {
		t.Fatal("restore(snapshot) changed the state")
	}
	// Advance past the snapshot, then roll back and replay: the replayed
	// state must be byte-identical to the uninterrupted one.
	feed(t, p, 2, 1, 0.9)
	feed(t, p, 3, 1, 0.3)
	b1 := snap(t, p)
	if err := p.Restore(a1); err != nil {
		t.Fatal(err)
	}
	feed(t, p, 2, 1, 0.9)
	feed(t, p, 3, 1, 0.3)
	if !bytes.Equal(snap(t, p), b1) {
		t.Fatal("rollback + replay diverged from the uninterrupted run")
	}
}

func TestAsyncAdaptiveSnapshotCarriesInitAndFrozen(t *testing.T) {
	par := crashParams(7, 2)
	par.Adaptive = true
	p, err := NewAsyncAA(par, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	api := newFakeAPI(0, 7)
	p.Init(api)
	for i, v := range []float64{0.5, 0.2} {
		data := wire.MarshalInit(wire.Init{Value: v})
		p.Deliver(sim.PartyID(i), data)
	}
	p.Deliver(3, wire.MarshalDecided(wire.Decided{Value: 0.4}))
	a := snap(t, p)
	if p.initCnt != 2 || p.frozenCnt != 1 {
		t.Fatalf("test premise: initCnt=%d frozenCnt=%d", p.initCnt, p.frozenCnt)
	}
	// Wipe forward state, then restore and verify counts and spread came
	// back.
	p.Deliver(4, wire.MarshalInit(wire.Init{Value: 0.9}))
	if err := p.Restore(a); err != nil {
		t.Fatal(err)
	}
	if p.initCnt != 2 || p.frozenCnt != 1 {
		t.Errorf("after restore: initCnt=%d frozenCnt=%d", p.initCnt, p.frozenCnt)
	}
	if p.initLo != 0.2 || p.initHi != 0.5 {
		t.Errorf("after restore: spread [%v, %v]", p.initLo, p.initHi)
	}
	if !bytes.Equal(snap(t, p), a) {
		t.Error("restored snapshot differs")
	}
}

func TestAsyncRejoinResends(t *testing.T) {
	p, err := NewAsyncAA(crashParams(5, 2), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	api := newFakeAPI(0, 5)
	p.Init(api)
	sent := len(api.sent)
	p.Rejoin()
	if len(api.sent) != sent+1 {
		t.Fatalf("rejoin sent %d messages, want 1", len(api.sent)-sent)
	}
	m, err := wire.UnmarshalValue(api.sent[len(api.sent)-1].data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Round != p.round || m.Value != p.v {
		t.Errorf("rejoin re-sent round %d value %v, party at round %d value %v",
			m.Round, m.Value, p.round, p.v)
	}
}

func TestAsyncSnapshotShapeMismatchRejected(t *testing.T) {
	p5, _ := NewAsyncAA(crashParams(5, 2), 0.5)
	p7, _ := NewAsyncAA(crashParams(7, 2), 0.5)
	p5.Init(newFakeAPI(0, 5))
	p7.Init(newFakeAPI(0, 7))
	s := snap(t, p5)
	if err := p7.Restore(s); err == nil {
		t.Error("cross-shape restore accepted")
	}
	// Corruption and truncation are rejected with checkpoint sentinels.
	bad := append([]byte(nil), s...)
	bad[len(bad)/2] ^= 0x10
	if err := p5.Restore(bad); !errors.Is(err, checkpoint.ErrMalformed) {
		t.Errorf("corrupt snapshot: %v", err)
	}
	if err := p5.Restore(s[:len(s)-3]); !errors.Is(err, checkpoint.ErrMalformed) {
		t.Errorf("truncated snapshot: %v", err)
	}
}

func TestSyncSnapshotRoundTrip(t *testing.T) {
	par := Params{Protocol: ProtoSync, N: 5, T: 1, Eps: 0.25, Lo: 0, Hi: 1, RoundDuration: 10}
	p, err := NewSyncAA(par, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	api := newFakeAPI(0, 5)
	p.Init(api)
	vals := []float64{0.5, 0.1, 0.9, 0.3}
	for i, v := range vals {
		p.Deliver(sim.PartyID(i), wire.MarshalValue(wire.Value{Round: 1, Value: v}))
	}
	a := snap(t, p)
	if !bytes.Equal(snap(t, p), a) {
		t.Fatal("same state produced different snapshots")
	}
	// Round boundary, then rollback + replay equivalence.
	p.OnTimer(1)
	b1 := snap(t, p)
	if err := p.Restore(a); err != nil {
		t.Fatal(err)
	}
	p.OnTimer(1)
	if !bytes.Equal(snap(t, p), b1) {
		t.Fatal("rollback + replayed timer diverged")
	}
	// Rejoin re-arms the current round: one multicast + one timer.
	sent, timers := len(api.sent), len(api.timers)
	p.Rejoin()
	if len(api.sent) != sent+1 || len(api.timers) != timers+1 {
		t.Errorf("rejoin: %d sends, %d timers added", len(api.sent)-sent, len(api.timers)-timers)
	}
}

// witBus is a loopback network for witness parties: every Send is queued
// and delivered FIFO, so a deterministic prefix of a real execution can be
// paused mid-round for snapshotting.
type witBus struct {
	procs []*WitnessAA
	apis  []*fakeAPI
	q     []sentMsg
	qFrom []sim.PartyID
}

func newWitBus(t *testing.T, n, faults int) *witBus {
	t.Helper()
	par := Params{Protocol: ProtoWitness, N: n, T: faults, Eps: 0.25, Lo: 0, Hi: 1}
	b := &witBus{}
	for i := 0; i < n; i++ {
		p, err := NewWitnessAA(par, float64(i)/float64(n-1))
		if err != nil {
			t.Fatal(err)
		}
		b.procs = append(b.procs, p)
		b.apis = append(b.apis, newFakeAPI(sim.PartyID(i), n))
	}
	return b
}

// pump inits all parties and steps the queue at most steps times,
// returning how many deliveries ran.
func (b *witBus) pump(steps int) int {
	if b.q == nil {
		for i, p := range b.procs {
			p.Init(b.apis[i])
			b.drain(i)
		}
	}
	ran := 0
	for ; ran < steps && len(b.q) > 0; ran++ {
		m, from := b.q[0], b.qFrom[0]
		b.q, b.qFrom = b.q[1:], b.qFrom[1:]
		b.procs[m.to].Deliver(from, m.data)
		b.drain(int(m.to))
	}
	return ran
}

// drain moves a party's freshly captured outbound traffic onto the queue,
// expanding multicasts to per-destination deliveries.
func (b *witBus) drain(i int) {
	api := b.apis[i]
	for _, m := range api.sent {
		if m.to == -1 {
			for to := range b.procs {
				b.q = append(b.q, sentMsg{to: sim.PartyID(to), data: m.data})
				b.qFrom = append(b.qFrom, sim.PartyID(i))
			}
		} else {
			b.q = append(b.q, m)
			b.qFrom = append(b.qFrom, sim.PartyID(i))
		}
	}
	api.sent = api.sent[:0]
}

func TestWitnessSnapshotRoundTrip(t *testing.T) {
	bus := newWitBus(t, 4, 1)
	bus.pump(40) // mid-execution: RBC slabs and witness arrays live
	p := bus.procs[0]
	if p.bcast.Instances() == 0 {
		t.Fatal("test premise: no live RBC state after 40 steps")
	}
	a1, a2 := snap(t, p), snap(t, p)
	if !bytes.Equal(a1, a2) {
		t.Fatal("same state produced different snapshots")
	}
	if err := p.Restore(a1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap(t, p), a1) {
		t.Fatal("restore(snapshot) changed the state")
	}
	// Run to completion, then roll party 0 back and re-snapshot: restore
	// must reproduce the mid-run bytes even from a decided state.
	bus.pump(1 << 20)
	for i, api := range bus.apis {
		if !api.decided {
			t.Fatalf("party %d never decided", i)
		}
	}
	if err := p.Restore(a1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap(t, p), a1) {
		t.Fatal("rollback from decided state diverged")
	}
}

func TestWitnessRejoinRebroadcasts(t *testing.T) {
	bus := newWitBus(t, 4, 1)
	bus.pump(40)
	p, api := bus.procs[0], bus.apis[0]
	api.sent = api.sent[:0]
	p.Rejoin()
	if len(api.sent) == 0 {
		t.Fatal("rejoin sent nothing")
	}
	kind, err := wire.Peek(api.sent[0].data)
	if err != nil || kind != wire.KindRBC {
		t.Fatalf("first rejoin message kind %v, want RBC", kind)
	}
}

// BenchmarkSnapshotRestore measures the checkpoint round trip on a
// mid-round crash-protocol party at n=9 — the restore path rides the warm
// runs' zero-allocation budget, so both directions must stay free of
// per-call heap traffic once the caller recycles the buffer. The reported
// snapshot-bytes metric is the full versioned envelope (magic, version,
// body, CRC).
func BenchmarkSnapshotRestore(b *testing.B) {
	p, err := NewAsyncAA(crashParams(9, 2), 0.5)
	if err != nil {
		b.Fatal(err)
	}
	p.Init(newFakeAPI(0, 9))
	for from := sim.PartyID(1); from < 5; from++ {
		p.Deliver(from, wire.MarshalValue(wire.Value{Round: 1, Value: float64(from) / 5, Horizon: p.horizon}))
	}
	buf, err := p.Snapshot(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = p.Snapshot(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Restore(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(buf)), "snapshot-bytes")
}

// TestRejoinReannouncesDecision pins the restart-supervision liveness
// contract: both runtimes withdraw a killed party's decision (livenet
// undecide, sim restartDown), so a party whose restored checkpoint is
// already decided must re-register that decision through the API on
// Rejoin — a decided non-adaptive party that stays silent hangs the run
// waiting for a decision that already happened. Both runtimes dedup the
// re-call, so the re-announce is safe even when nothing was withdrawn.
func TestRejoinReannouncesDecision(t *testing.T) {
	wide := func(p Params) Params { p.Eps = 5; return p } // eps > range: decide at Init
	cases := []struct {
		name  string
		build func() (Snapshotter, error)
	}{
		{"async", func() (Snapshotter, error) {
			return NewAsyncAA(wide(crashParams(3, 1)), 0.5)
		}},
		{"sync", func() (Snapshotter, error) {
			return NewSyncAA(wide(Params{Protocol: ProtoSync, N: 4, T: 1, Eps: 0.25, Lo: 0, Hi: 1, RoundDuration: 10}), 0.5)
		}},
		{"witness", func() (Snapshotter, error) {
			return NewWitnessAA(wide(Params{Protocol: ProtoWitness, N: 4, T: 1, Eps: 0.25, Lo: 0, Hi: 1}), 0.5)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := c.build()
			if err != nil {
				t.Fatal(err)
			}
			api := newFakeAPI(0, 4)
			p.(sim.Process).Init(api)
			if !api.decided {
				t.Fatal("wide-eps party did not decide at Init")
			}
			b := snap(t, p)

			q, err := c.build()
			if err != nil {
				t.Fatal(err)
			}
			api2 := newFakeAPI(0, 4)
			q.(sim.Process).Init(api2)
			if err := q.Restore(b); err != nil {
				t.Fatal(err)
			}
			// Model the kill: the runtime withdrew the decision.
			api2.decided = false
			api2.decision = 0
			q.Rejoin()
			if !api2.decided || api2.decision != 0.5 {
				t.Fatalf("rejoin did not re-announce: decided=%v decision=%v",
					api2.decided, api2.decision)
			}
		})
	}
}
