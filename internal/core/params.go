// Package core implements the asynchronous approximate-agreement protocol
// family that is this repository's primary contribution: round-based
// convergence protocols in which each party repeatedly exchanges its value,
// collects a quorum of n−t round-tagged values, and applies an approximation
// function to contract the diameter of the honest values geometrically.
//
// Four protocols are provided:
//
//   - CrashAA (ProtoCrash): crash faults, n ≥ 2t+1. With the default
//     mid-extremes function the diameter provably halves per asynchronous
//     round, because any two quorums of size n−t intersect.
//   - ByzTrimAA (ProtoByzTrim): Byzantine faults without reliable broadcast,
//     with f = MidExtremes∘reduce^2t and resilience n ≥ 7t+1. At this
//     resilience any two reception sets share ≥ n−3t ≥ 4t+1 honest values
//     even under equivocation, so the median of the common values survives
//     both parties' 2t-trims and per-round halving is provable; trimming
//     2t ≥ t per side gives validity. Classical presentations claim n > 5t
//     for witness-free Byzantine convergence with more intricate machinery;
//     experiment E1 demonstrates concretely that this trim-based family
//     stalls under an equivocation attack at n = 5t+1 — which is exactly
//     the gap the witness technique (ProtoWitness, n ≥ 3t+1) closes.
//   - WitnessAA (ProtoWitness): Byzantine faults at the optimal resilience
//     n ≥ 3t+1, built from reliable broadcast plus the witness technique;
//     per-round halving is again provable (see internal/rbc and witness.go).
//   - SyncAA (ProtoSync): the lock-step synchronous baseline, used to
//     quantify what asynchrony costs.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/multiset"
	"repro/internal/sim"
)

// Protocol selects a member of the protocol family.
type Protocol int

// Protocol identifiers.
const (
	// ProtoCrash is the asynchronous crash-fault protocol (n ≥ 2t+1).
	ProtoCrash Protocol = iota + 1
	// ProtoByzTrim is the asynchronous Byzantine protocol without reliable
	// broadcast (provable resilience n ≥ 7t+1; see the package comment for
	// why the classical n > 5t claim needs more machinery than trimming).
	ProtoByzTrim
	// ProtoWitness is the asynchronous Byzantine protocol with reliable
	// broadcast and the witness technique (optimal resilience n ≥ 3t+1).
	ProtoWitness
	// ProtoSync is the lock-step synchronous baseline (n ≥ 3t+1).
	ProtoSync
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtoCrash:
		return "crash-aa"
	case ProtoByzTrim:
		return "byztrim-aa"
	case ProtoWitness:
		return "witness-aa"
	case ProtoSync:
		return "sync-aa"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Sentinel errors.
var (
	// ErrResilience indicates (n, t) violates the protocol's fault bound.
	ErrResilience = errors.New("core: fault bound violated")
	// ErrBadParams indicates structurally invalid parameters.
	ErrBadParams = errors.New("core: invalid parameters")
)

// Params configures one protocol instance. The same Params value must be
// used by every party of a run (it is common knowledge, like the protocol
// code itself).
type Params struct {
	// Protocol selects the family member.
	Protocol Protocol
	// N and T are the party count and fault bound.
	N, T int
	// Eps is the agreement precision ε > 0.
	Eps float64
	// Lo and Hi bound the honest inputs in fixed-range mode. The round
	// count is derived from Hi−Lo, so unconditional ε-agreement holds.
	Lo, Hi float64
	// Adaptive switches to adaptive termination: parties estimate the
	// spread from an initial exchange and piggyback round horizons.
	// Guarantees become conditional on scheduler fairness; see DESIGN.md.
	Adaptive bool
	// Gamma overrides the per-round contraction budget in (0,1);
	// zero selects the protocol default.
	Gamma float64
	// ExtraRounds adds safety slack to the computed round count.
	ExtraRounds int
	// Func overrides the approximation function; nil selects the default.
	Func multiset.Func
	// RoundDuration is the lock-step round length for ProtoSync; it must
	// be at least the scheduler's maximum delay for the baseline to be
	// meaningful. Ignored by the asynchronous protocols.
	RoundDuration sim.Time
	// AllowBelowBound skips the resilience check. It exists only so the
	// experiments can demonstrate what breaks below the proven bound
	// (e.g. the trim protocol at the classical n = 5t+1); production
	// callers must leave it false.
	AllowBelowBound bool
}

// Quorum returns the reception-set size n−t the asynchronous protocols wait
// for each round.
func (p *Params) Quorum() int { return p.N - p.T }

// DefaultGamma returns the contraction budget used when Params.Gamma is 0.
// The three asynchronous protocols have proven per-round halving with their
// default functions; the synchronous baseline uses a conservative 0.75
// budget and the experiments report the contraction actually measured.
func (p *Params) DefaultGamma() float64 {
	switch p.Protocol {
	case ProtoCrash, ProtoByzTrim, ProtoWitness:
		return 0.5
	default:
		return 0.75
	}
}

// gamma resolves the effective contraction budget.
func (p *Params) gamma() float64 {
	if p.Gamma != 0 {
		return p.Gamma
	}
	return p.DefaultGamma()
}

// DefaultFunc returns the approximation function used when Params.Func is
// nil.
func (p *Params) DefaultFunc() multiset.Func {
	switch p.Protocol {
	case ProtoCrash:
		return multiset.MidExtremes{}
	case ProtoByzTrim:
		return multiset.MidExtremes{Trim: 2 * p.T}
	case ProtoWitness:
		return multiset.MidExtremes{Trim: p.T}
	case ProtoSync:
		return multiset.MidExtremes{Trim: p.T}
	default:
		return nil
	}
}

// fn resolves the effective approximation function.
func (p *Params) fn() multiset.Func {
	if p.Func != nil {
		return p.Func
	}
	return p.DefaultFunc()
}

// MinN returns the smallest party count the protocol supports for a given
// fault bound.
func MinN(proto Protocol, t int) int {
	switch proto {
	case ProtoCrash:
		return 2*t + 1
	case ProtoByzTrim:
		return 7*t + 1
	case ProtoWitness, ProtoSync:
		return 3*t + 1
	default:
		return math.MaxInt
	}
}

// Validate checks the parameters, including the protocol's resilience
// requirement and that the quorum is large enough for the approximation
// function.
func (p *Params) Validate() error {
	if p.N < 1 || p.T < 0 {
		return fmt.Errorf("%w: n=%d t=%d", ErrBadParams, p.N, p.T)
	}
	if p.Protocol < ProtoCrash || p.Protocol > ProtoSync {
		return fmt.Errorf("%w: unknown protocol %d", ErrBadParams, int(p.Protocol))
	}
	if minN := MinN(p.Protocol, p.T); !p.AllowBelowBound && p.N < minN {
		return fmt.Errorf("%w: %s needs n >= %d for t = %d, got n = %d",
			ErrResilience, p.Protocol, minN, p.T, p.N)
	}
	if !(p.Eps > 0) || math.IsInf(p.Eps, 0) {
		return fmt.Errorf("%w: eps = %v", ErrBadParams, p.Eps)
	}
	if !p.Adaptive || p.Protocol == ProtoSync {
		if math.IsNaN(p.Lo) || math.IsNaN(p.Hi) || math.IsInf(p.Lo, 0) || math.IsInf(p.Hi, 0) || p.Hi < p.Lo {
			return fmt.Errorf("%w: range [%v, %v]", ErrBadParams, p.Lo, p.Hi)
		}
	}
	if g := p.Gamma; g != 0 && (g <= 0 || g >= 1 || math.IsNaN(g)) {
		return fmt.Errorf("%w: gamma = %v", ErrBadParams, g)
	}
	if p.ExtraRounds < 0 {
		return fmt.Errorf("%w: extra rounds = %d", ErrBadParams, p.ExtraRounds)
	}
	fn := p.fn()
	if fn == nil {
		return fmt.Errorf("%w: no approximation function", ErrBadParams)
	}
	minIn := fn.MinInputs()
	viewSize := p.Quorum()
	if p.Protocol == ProtoSync {
		// A synchronous view can shrink to n−t when t parties crash or
		// stay silent; the function must still accept it.
		viewSize = p.N - p.T
	}
	if viewSize < minIn {
		return fmt.Errorf("%w: quorum %d below %s minimum %d",
			ErrBadParams, viewSize, fn.Name(), minIn)
	}
	if p.Protocol == ProtoSync && p.RoundDuration < 1 {
		return fmt.Errorf("%w: sync protocol needs RoundDuration >= 1", ErrBadParams)
	}
	return nil
}

// FixedRounds computes the common round count in fixed-range mode.
func (p *Params) FixedRounds() (int, error) {
	r, err := multiset.RoundBudget(p.Hi-p.Lo, p.Eps, p.gamma())
	if err != nil {
		return 0, fmt.Errorf("core: round budget: %w", err)
	}
	return r + p.ExtraRounds, nil
}

// adaptiveRounds computes a horizon from an observed spread estimate.
func (p *Params) adaptiveRounds(spread float64) int {
	r, err := multiset.RoundBudget(spread, p.Eps, p.gamma())
	if err != nil {
		// Non-finite estimates come only from Byzantine inputs, which the
		// message sanitizer already rejects; treat defensively as zero.
		return p.ExtraRounds
	}
	return r + p.ExtraRounds
}

// isUsable rejects the non-finite values Byzantine parties may inject.
func isUsable(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
