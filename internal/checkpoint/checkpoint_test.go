package checkpoint

import (
	"errors"
	"math"
	"testing"
)

// buildSample encodes one of every primitive and seals it.
func buildSample() []byte {
	buf := Begin(nil)
	buf = AppendUvarint(buf, 300)
	buf = AppendInt(buf, -1)
	buf = AppendBool(buf, true)
	buf = AppendF64(buf, math.Pi)
	buf = AppendWords(buf, []uint64{0xDEAD, 0, ^uint64(0)})
	return Seal(buf)
}

func TestRoundTrip(t *testing.T) {
	snap := buildSample()
	d, err := Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	if v := d.Uvarint(); v != 300 {
		t.Errorf("uvarint = %d", v)
	}
	if v := d.Int(); v != -1 {
		t.Errorf("int = %d", v)
	}
	if !d.Bool() {
		t.Error("bool = false")
	}
	if v := d.F64(); v != math.Pi {
		t.Errorf("f64 = %v", v)
	}
	words := make([]uint64, 3)
	d.Words(words)
	if words[0] != 0xDEAD || words[2] != ^uint64(0) {
		t.Errorf("words = %v", words)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferReuse(t *testing.T) {
	// A recycled buffer (cap from a previous snapshot) must produce the
	// identical encoding.
	first := buildSample()
	reused := Seal(AppendWords(AppendF64(AppendBool(AppendInt(AppendUvarint(Begin(first[:0]), 300), -1), true), math.Pi), []uint64{0xDEAD, 0, ^uint64(0)}))
	if string(reused) != string(first) {
		t.Error("reused buffer produced a different encoding")
	}
}

func TestTruncation(t *testing.T) {
	snap := buildSample()
	for cut := 0; cut < len(snap); cut++ {
		if _, err := Open(snap[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		} else if !errors.Is(err, ErrMalformed) {
			t.Fatalf("truncation at %d: %v not wrapped in ErrMalformed", cut, err)
		}
	}
}

func TestCorruption(t *testing.T) {
	snap := buildSample()
	for i := range snap {
		bad := append([]byte(nil), snap...)
		bad[i] ^= 0x40
		if _, err := Open(bad); err == nil {
			t.Fatalf("byte flip at %d accepted", i)
		}
	}
}

func TestVersionSkew(t *testing.T) {
	snap := buildSample()
	bad := append([]byte(nil), snap...)
	bad[4] = 99 // version low byte
	bad = Seal(bad[:len(bad)-4])
	if _, err := Open(bad); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: %v", err)
	}
}

func TestWordShapeMismatch(t *testing.T) {
	snap := Seal(AppendWords(Begin(nil), []uint64{1, 2}))
	d, err := Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	d.Words(make([]uint64, 3))
	if d.Err() == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestErrorLatching(t *testing.T) {
	snap := Seal(AppendUvarint(Begin(nil), 7))
	d, err := Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	_ = d.Uvarint()
	_ = d.F64() // runs past the payload: must latch, not panic
	_ = d.Int()
	if d.Err() == nil {
		t.Error("overread not latched")
	}
	if err := d.Done(); err == nil {
		t.Error("Done passed after overread")
	}
}

func TestDoneRejectsTrailingBytes(t *testing.T) {
	snap := Seal(AppendUvarint(AppendUvarint(Begin(nil), 1), 2))
	d, err := Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	_ = d.Uvarint()
	if err := d.Done(); err == nil {
		t.Error("trailing payload accepted")
	}
}

func TestDigest(t *testing.T) {
	a, b := buildSample(), Seal(AppendUvarint(Begin(nil), 1))
	if Digest(a) == Digest(b) {
		t.Error("distinct snapshots share a digest")
	}
	if Digest(a) != Digest(buildSample()) {
		t.Error("digest not deterministic")
	}
	if Digest(nil) == 0 {
		t.Error("digest zero")
	}
}
