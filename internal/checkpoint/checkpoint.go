// Package checkpoint defines the versioned binary snapshot format that
// crash-recovery parties persist and restore: a magic + version header, a
// field payload of primitive append/read codecs, and a CRC32 trailer —
// the same hardening discipline as the incident bundle format
// (internal/incident). A snapshot captures the full volatile state of one
// protocol party (round buckets, seen bitsets, witness ring, RBC slabs)
// via the core.Snapshotter interface; this package owns only the encoding
// primitives, so the simulator and livenet can treat snapshots as opaque
// bytes.
//
// Encoding is append-style over a caller-owned buffer (zero-alloc when the
// buffer is recycled); decoding is bounds-checked against truncation and
// corruption and never panics — a damaged checkpoint surfaces as a wrapped
// ErrMalformed/ErrTruncated/ErrCorrupt, exactly like a damaged incident
// bundle.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Version is the current snapshot format version.
const Version = 1

// magic is the leading four bytes of every snapshot.
const magic = "AACP"

// headerLen is magic + u16 version.
const headerLen = len(magic) + 2

// trailerLen is the CRC32 suffix.
const trailerLen = 4

// maxWords caps a bitset read so a corrupt length field cannot drive a
// giant allocation check; shapes in this repo stay far below it.
const maxWords = 1 << 20

// Sentinel decode errors.
var (
	ErrMalformed = errors.New("checkpoint: malformed snapshot")
	ErrTruncated = fmt.Errorf("%w: truncated", ErrMalformed)
	ErrCorrupt   = fmt.Errorf("%w: checksum mismatch", ErrMalformed)
	ErrVersion   = errors.New("checkpoint: unsupported snapshot version")
)

// Begin starts a snapshot: it appends the magic + version header to buf
// (normally buf[:0] of a recycled buffer) and returns the extended slice.
func Begin(buf []byte) []byte {
	buf = append(buf, magic...)
	return binary.LittleEndian.AppendUint16(buf, Version)
}

// Seal appends the CRC32 trailer over everything already in buf (header
// included) and returns the finished snapshot. buf must start with the
// Begin header.
func Seal(buf []byte) []byte {
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// AppendUvarint appends a varint-encoded unsigned field.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendInt appends a non-negative int field (negative values are encoded
// as a sentinel bit so -1 budget-style fields round-trip).
func AppendInt(buf []byte, v int) []byte {
	return binary.AppendVarint(buf, int64(v))
}

// AppendBool appends a single-byte boolean field.
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// AppendF64 appends a float64 field as its IEEE bits.
func AppendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// AppendWords appends a length-prefixed []uint64 (bitset backing or any
// word array).
func AppendWords(buf []byte, words []uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(words)))
	for _, w := range words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// Digest returns the FNV-1a hash of a finished snapshot, forced nonzero —
// the compact fingerprint the incident bundle format records per
// checkpoint so replay can detect snapshot divergence without carrying
// the bytes.
func Digest(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	if h == 0 {
		h = 1
	}
	return h
}

// Dec is the bounds-checked snapshot reader. All read methods latch the
// first error and return zero values afterwards, so restore code can read
// a whole record and check Err once.
type Dec struct {
	data []byte
	off  int
	err  error
}

// Open verifies a snapshot's magic, version, and CRC trailer and returns
// a decoder positioned at the first payload field. The decoder is returned
// by value so restore paths (which run on the warm zero-alloc budget) can
// keep it on the stack.
func Open(data []byte) (Dec, error) {
	if len(data) < headerLen+trailerLen {
		return Dec{}, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return Dec{}, fmt.Errorf("%w: bad magic", ErrMalformed)
	}
	version := binary.LittleEndian.Uint16(data[len(magic):])
	if version == 0 || version > Version {
		return Dec{}, fmt.Errorf("%w: %d (max %d)", ErrVersion, version, Version)
	}
	body := data[:len(data)-trailerLen]
	want := binary.LittleEndian.Uint32(data[len(data)-trailerLen:])
	if crc32.ChecksumIEEE(body) != want {
		return Dec{}, ErrCorrupt
	}
	return Dec{data: body, off: headerLen}, nil
}

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Done verifies the payload was fully consumed without error.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrMalformed, len(d.data)-d.off)
	}
	return nil
}

func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrTruncated, what, d.off)
	}
}

// Uvarint reads one unsigned varint field.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

// Int reads one signed varint field.
func (d *Dec) Int() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return int(v)
}

// Bool reads one boolean field.
func (d *Dec) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.data) {
		d.fail("bool")
		return false
	}
	b := d.data[d.off]
	d.off++
	if b > 1 {
		if d.err == nil {
			d.err = fmt.Errorf("%w: bool byte %d", ErrMalformed, b)
		}
		return false
	}
	return b == 1
}

// F64 reads one float64 field.
func (d *Dec) F64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.data) {
		d.fail("f64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}

// Words reads a length-prefixed word array into dst, which must have
// exactly the recorded length — shape is part of the restoring party's
// configuration, so a mismatch means the snapshot belongs to a different
// shape and is rejected rather than silently truncated.
func (d *Dec) Words(dst []uint64) {
	ln := d.Uvarint()
	if d.err != nil {
		return
	}
	if ln > maxWords || int(ln) != len(dst) {
		d.err = fmt.Errorf("%w: word array length %d, want %d", ErrMalformed, ln, len(dst))
		return
	}
	if d.off+8*int(ln) > len(d.data) {
		d.fail("words")
		return
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(d.data[d.off:])
		d.off += 8
	}
}
