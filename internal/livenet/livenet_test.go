package livenet

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

func crashProcs(t *testing.T, n, faults int, inputs []float64) []sim.Process {
	t.Helper()
	p := core.Params{Protocol: core.ProtoCrash, N: n, T: faults, Eps: 1e-3, Lo: 0, Hi: 1}
	procs := make([]sim.Process, n)
	for i := range procs {
		proc, err := core.NewAsyncAA(p, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = proc
	}
	return procs
}

func TestLiveAgreement(t *testing.T) {
	inputs := []float64{0, 0.3, 0.5, 0.7, 1}
	procs := crashProcs(t, 5, 2, inputs)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := Run(ctx, procs, Options{MaxJitter: 300 * time.Microsecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 5 {
		t.Fatalf("decisions: %v", res.Decisions)
	}
	lo, hi := 2.0, -1.0
	for _, v := range res.Decisions {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo > 1e-3 {
		t.Errorf("spread %v > eps", hi-lo)
	}
	if lo < 0 || hi > 1 {
		t.Errorf("validity violated: [%v, %v]", lo, hi)
	}
	if res.Messages == 0 {
		t.Error("no messages counted")
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
}

func TestLiveWaitFor(t *testing.T) {
	// One party never decides (a stuck process); WaitFor=4 must still
	// complete.
	inputs := []float64{0, 0.25, 0.5, 0.75, 1}
	procs := crashProcs(t, 5, 2, inputs)
	procs[4] = stuckProc{}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := Run(ctx, procs, Options{WaitFor: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) < 4 {
		t.Fatalf("only %d decisions", len(res.Decisions))
	}
}

// stuckProc never sends or decides.
type stuckProc struct{}

func (stuckProc) Init(sim.API)                {}
func (stuckProc) Deliver(sim.PartyID, []byte) {}

func TestLiveTimeout(t *testing.T) {
	procs := []sim.Process{stuckProc{}, stuckProc{}}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := Run(ctx, procs, Options{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestLiveValidation(t *testing.T) {
	if _, err := Run(context.Background(), nil, Options{}); err == nil {
		t.Error("empty process list accepted")
	}
	if _, err := Run(context.Background(), []sim.Process{nil}, Options{}); err == nil {
		t.Error("nil process accepted")
	}
}

func TestLiveTimers(t *testing.T) {
	// A process that decides only when its timer fires.
	done := &timerProc{}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := Run(ctx, []sim.Process{done}, Options{Tick: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions[0] != 42 {
		t.Errorf("decision = %v", res.Decisions[0])
	}
}

type timerProc struct{ api sim.API }

func (p *timerProc) Init(api sim.API) {
	p.api = api
	api.SetTimer(5, 7)
}

func (p *timerProc) Deliver(sim.PartyID, []byte) {}

func (p *timerProc) OnTimer(tag uint64) {
	if tag == 7 {
		p.api.Decide(42)
	}
}
