package livenet

import (
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

func crashProcs(t *testing.T, n, faults int, inputs []float64) []sim.Process {
	t.Helper()
	p := core.Params{Protocol: core.ProtoCrash, N: n, T: faults, Eps: 1e-3, Lo: 0, Hi: 1}
	procs := make([]sim.Process, n)
	for i := range procs {
		proc, err := core.NewAsyncAA(p, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = proc
	}
	return procs
}

func TestLiveAgreement(t *testing.T) {
	inputs := []float64{0, 0.3, 0.5, 0.7, 1}
	procs := crashProcs(t, 5, 2, inputs)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := Run(ctx, procs, Options{MaxJitter: 300 * time.Microsecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 5 {
		t.Fatalf("decisions: %v", res.Decisions)
	}
	lo, hi := 2.0, -1.0
	for _, v := range res.Decisions {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo > 1e-3 {
		t.Errorf("spread %v > eps", hi-lo)
	}
	if lo < 0 || hi > 1 {
		t.Errorf("validity violated: [%v, %v]", lo, hi)
	}
	if res.Messages == 0 {
		t.Error("no messages counted")
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
}

func TestLiveWaitFor(t *testing.T) {
	// One party never decides (a stuck process); WaitFor=4 must still
	// complete.
	inputs := []float64{0, 0.25, 0.5, 0.75, 1}
	procs := crashProcs(t, 5, 2, inputs)
	procs[4] = stuckProc{}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := Run(ctx, procs, Options{WaitFor: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) < 4 {
		t.Fatalf("only %d decisions", len(res.Decisions))
	}
}

// stuckProc never sends or decides.
type stuckProc struct{}

func (stuckProc) Init(sim.API)                {}
func (stuckProc) Deliver(sim.PartyID, []byte) {}

func TestLiveTimeout(t *testing.T) {
	procs := []sim.Process{stuckProc{}, stuckProc{}}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := Run(ctx, procs, Options{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestLiveValidation(t *testing.T) {
	if _, err := Run(context.Background(), nil, Options{}); err == nil {
		t.Error("empty process list accepted")
	}
	if _, err := Run(context.Background(), []sim.Process{nil}, Options{}); err == nil {
		t.Error("nil process accepted")
	}
}

func TestLiveTimers(t *testing.T) {
	// A process that decides only when its timer fires.
	done := &timerProc{}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := Run(ctx, []sim.Process{done}, Options{Tick: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions[0] != 42 {
		t.Errorf("decision = %v", res.Decisions[0])
	}
}

type timerProc struct{ api sim.API }

func (p *timerProc) Init(api sim.API) {
	p.api = api
	api.SetTimer(5, 7)
}

func (p *timerProc) Deliver(sim.PartyID, []byte) {}

func (p *timerProc) OnTimer(tag uint64) {
	if tag == 7 {
		p.api.Decide(42)
	}
}

func TestLivePartialResultOnTimeout(t *testing.T) {
	// Raw transport under heavy injected loss: the run cannot finish, but
	// the timeout must return the partial progress, not just an error.
	inputs := []float64{0, 0.25, 0.5, 0.75, 1}
	procs := crashProcs(t, 5, 2, inputs)
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	res, err := Run(ctx, procs, Options{Loss: 0.6, Seed: 9})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if res == nil {
		t.Fatal("timeout returned no partial result")
	}
	if res.Dropped == 0 {
		t.Error("loss injection dropped nothing")
	}
	if len(res.Decisions)+len(res.Undecided) != 5 {
		t.Errorf("decisions %d + undecided %d != n", len(res.Decisions), len(res.Undecided))
	}
}

func TestLiveShedOldestKeepsSendersUnblocked(t *testing.T) {
	// A one-slot inbox on a recipient whose consumer loop is wedged inside
	// Deliver: the burst must shed (never block a sender goroutine), and
	// the flooder — deciding on a timer long after the burst — must still
	// finish. The slow consumer holds its loop for longer than the whole
	// run, so overflow is guaranteed, not a scheduling race.
	procs := []sim.Process{&floodProc{}, &slowProc{block: 2 * time.Second}}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := Run(ctx, procs, Options{
		WaitFor:    1,
		InboxDepth: 1,
		MaxJitter:  time.Microsecond,
		Tick:       10 * time.Millisecond,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 && res.SendTimeouts == 0 {
		t.Error("overflowed inbox neither shed nor timed out")
	}
	if len(res.Degraded) == 0 {
		t.Error("overflow not attributed to a degraded party")
	}
}

// floodProc fires a burst at party 1 at Init and decides on a timer tick
// well after the burst has landed.
type floodProc struct{ api sim.API }

func (p *floodProc) Init(api sim.API) {
	p.api = api
	for i := 0; i < 256; i++ {
		api.Send(1, []byte{byte(i)})
	}
	api.SetTimer(5, 1)
}
func (p *floodProc) Deliver(sim.PartyID, []byte) {}
func (p *floodProc) OnTimer(uint64)              { p.api.Decide(1) }

// slowProc wedges its consumer loop inside the first Deliver.
type slowProc struct {
	block time.Duration
	once  bool
}

func (p *slowProc) Init(sim.API) {}
func (p *slowProc) Deliver(sim.PartyID, []byte) {
	if !p.once {
		p.once = true
		time.Sleep(p.block)
	}
}

func TestLiveRestartSupervision(t *testing.T) {
	// Two parties are checkpointed, killed, and rejoined mid-run under
	// modest loss with the reliable transport. Loss forces the run through
	// at least one retransmit RTO (32 ticks), so the staggered kills land
	// while the exchange is still in flight; after both rejoin, everyone
	// must converge and the restarts must be attributed.
	const n, faults = 9, 2
	inputs := make([]float64, n)
	for i := range inputs {
		inputs[i] = float64(i) / float64(n-1)
	}
	procs := crashProcs(t, n, faults, inputs)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := Run(ctx, procs, Options{
		MaxJitter:      2 * time.Millisecond,
		Tick:           time.Millisecond,
		Seed:           21,
		Loss:           0.05,
		Reliable:       true,
		RestartParties: 2,
		RestartAfter:   15 * time.Millisecond,
		RestartStagger: 10 * time.Millisecond,
		RestartDown:    20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("restart run did not converge: %v (decided %d, undecided %v, restarts %d)",
			err, len(res.Decisions), res.Undecided, res.Restarts)
	}
	if len(res.Decisions) != n {
		t.Fatalf("decisions: %d of %d", len(res.Decisions), n)
	}
	lo, hi := 2.0, -1.0
	for _, v := range res.Decisions {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo > 1e-3 {
		t.Errorf("spread %v > eps", hi-lo)
	}
	if lo < 0 || hi > 1 {
		t.Errorf("validity violated: [%v, %v]", lo, hi)
	}
	if res.Restarts != 2 {
		t.Errorf("restarts = %d, want 2", res.Restarts)
	}
	if len(res.Restarted) != 2 || res.Restarted[0] != 0 || res.Restarted[1] != 1 {
		t.Errorf("restarted = %v, want [0 1]", res.Restarted)
	}
	t.Logf("restart run: %v elapsed, %d msgs, %d dropped, %d retransmits, %d restarts",
		res.Elapsed, res.Messages, res.Dropped, res.Transport.Retransmits, res.Restarts)
}

func TestLiveRestartRequiresSnapshotter(t *testing.T) {
	// A process without checkpoint support cannot be restart-supervised;
	// the run must refuse up front, not fail mid-restart.
	procs := []sim.Process{stuckProc{}, stuckProc{}}
	if _, err := Run(context.Background(), procs, Options{RestartParties: 1}); err == nil {
		t.Error("snapshot-less process accepted under restart supervision")
	}
}

func TestLiveFlapShedRetransmitSurvival(t *testing.T) {
	// Flap windows on top of one-slot inboxes: the shed storm discards
	// queued frames wholesale, and the flap drops everything in the dark
	// windows, but the retransmit timers — which ride the never-shed timer
	// channel — must keep their cadence and re-deliver until every party
	// converges.
	const n, faults = 5, 1
	inputs := []float64{0, 0.25, 0.5, 0.75, 1}
	procs := crashProcs(t, n, faults, inputs)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := Run(ctx, procs, Options{
		MaxJitter:   500 * time.Microsecond,
		Tick:        time.Millisecond,
		Seed:        17,
		InboxDepth:  1,
		FlapParties: 2,
		FlapAfter:   10 * time.Millisecond,
		FlapStagger: 15 * time.Millisecond,
		FlapLen:     25 * time.Millisecond,
		Reliable:    true,
	})
	if err != nil {
		t.Fatalf("flap+shed run did not converge: %v (decided %d, shed %d, retransmits %d)",
			err, len(res.Decisions), res.Shed, res.Transport.Retransmits)
	}
	if len(res.Decisions) != n {
		t.Fatalf("decisions: %d of %d", len(res.Decisions), n)
	}
	if res.Shed == 0 {
		t.Error("one-slot inboxes shed nothing")
	}
	if res.Transport.Retransmits == 0 {
		t.Error("reliable transport never retransmitted through the shed storm")
	}
	t.Logf("flap+shed run: %v elapsed, %d msgs, %d dropped, %d shed, %d retransmits, %d give-ups",
		res.Elapsed, res.Messages, res.Dropped, res.Shed,
		res.Transport.Retransmits, res.Transport.GiveUps)
}

// TestLiveShedTimeoutRestartInterplay pins the serving layer's worst-case
// interplay in one process: one-slot inboxes shedding their oldest item on
// every contention, a tight per-request SendTimeout (the budget aaserve
// propagates from a request deadline), and restart supervision killing and
// reviving a party — all concurrently over the reliable transport. The
// retransmit timers ride the never-shed timer channel and the supervisor
// runs on the party's own goroutine, so none of the three mechanisms may
// starve another: the run must still converge, with the shedding, the
// restart, and the retransmit cadence all attributed in the result.
func TestLiveShedTimeoutRestartInterplay(t *testing.T) {
	const n, faults = 5, 1
	inputs := []float64{0, 0.25, 0.5, 0.75, 1}
	procs := crashProcs(t, n, faults, inputs)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, procs, Options{
		MaxJitter:      500 * time.Microsecond,
		Tick:           time.Millisecond,
		Seed:           29,
		InboxDepth:     1,
		SendTimeout:    2 * time.Millisecond,
		Reliable:       true,
		RestartParties: 1,
		RestartAfter:   15 * time.Millisecond,
		RestartDown:    20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("shed+timeout+restart run did not converge: %v (decided %d, shed %d, sendTimeouts %d, restarts %d)",
			err, len(res.Decisions), res.Shed, res.SendTimeouts, res.Restarts)
	}
	if len(res.Decisions) != n {
		t.Fatalf("decisions: %d of %d", len(res.Decisions), n)
	}
	lo, hi := 2.0, -1.0
	for _, v := range res.Decisions {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo > 1e-3 {
		t.Errorf("spread %v > eps", hi-lo)
	}
	if res.Shed == 0 {
		t.Error("one-slot inboxes shed nothing")
	}
	if res.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", res.Restarts)
	}
	if res.Transport.Retransmits == 0 {
		t.Error("reliable transport never retransmitted through the shed/restart churn")
	}
	t.Logf("interplay run: %v elapsed, %d msgs, %d shed, %d send-timeouts, %d retransmits, %d restarts, degraded %v",
		res.Elapsed, res.Messages, res.Shed, res.SendTimeouts,
		res.Transport.Retransmits, res.Restarts, res.Degraded)
}

// TestRecoverySoak is the CI recovery soak: two parties killed and
// restarted under 10% loss with the reliable transport and -race, which
// must reconverge with the restarts attributed. Gated behind
// RECOVERY_SOAK=1 to keep default test runs fast.
func TestRecoverySoak(t *testing.T) {
	if os.Getenv("RECOVERY_SOAK") == "" {
		t.Skip("set RECOVERY_SOAK=1 to run the crash-recovery soak")
	}
	const n, faults = 9, 2
	inputs := make([]float64, n)
	for i := range inputs {
		inputs[i] = float64(i) / float64(n-1)
	}
	procs := crashProcs(t, n, faults, inputs)
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Second)
	defer cancel()
	res, err := Run(ctx, procs, Options{
		MaxJitter:      500 * time.Microsecond,
		Tick:           500 * time.Microsecond,
		Seed:           13,
		InboxDepth:     256,
		Loss:           0.1,
		Reliable:       true,
		RestartParties: 2,
		RestartAfter:   15 * time.Millisecond,
		RestartStagger: 10 * time.Millisecond,
		RestartDown:    25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("recovery soak did not converge: %v (decided %d, undecided %v, restarts %d, retransmits %d)",
			err, len(res.Decisions), res.Undecided, res.Restarts, res.Transport.Retransmits)
	}
	if len(res.Decisions) != n {
		t.Fatalf("decisions: %d of %d", len(res.Decisions), n)
	}
	lo, hi := 2.0, -1.0
	for _, v := range res.Decisions {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo > 1e-3 {
		t.Errorf("spread %v > eps", hi-lo)
	}
	if lo < 0 || hi > 1 {
		t.Errorf("validity violated: [%v, %v]", lo, hi)
	}
	if res.Restarts != 2 {
		t.Errorf("restarts = %d, want 2", res.Restarts)
	}
	if res.Dropped == 0 {
		t.Error("soak injected no loss")
	}
	t.Logf("recovery soak: %v elapsed, %d msgs, %d dropped, %d retransmits, %d restarts, degraded %v",
		res.Elapsed, res.Messages, res.Dropped, res.Transport.Retransmits, res.Restarts, res.Degraded)
}

// TestLivenetSoak is the CI soak: loss + duplication + flapping parties
// with the reliable transport under -race, which must converge with no
// hung senders. Gated behind LIVENET_SOAK=1 to keep default test runs
// fast.
func TestLivenetSoak(t *testing.T) {
	if os.Getenv("LIVENET_SOAK") == "" {
		t.Skip("set LIVENET_SOAK=1 to run the lossy-network soak")
	}
	const n, faults = 9, 2
	inputs := make([]float64, n)
	for i := range inputs {
		inputs[i] = float64(i) / float64(n-1)
	}
	procs := crashProcs(t, n, faults, inputs)
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Second)
	defer cancel()
	res, err := Run(ctx, procs, Options{
		MaxJitter:   500 * time.Microsecond,
		Tick:        500 * time.Microsecond,
		Seed:        11,
		InboxDepth:  256,
		Loss:        0.1,
		Dup:         0.05,
		FlapParties: 2,
		FlapAfter:   20 * time.Millisecond,
		FlapStagger: 30 * time.Millisecond,
		FlapLen:     40 * time.Millisecond,
		Reliable:    true,
	})
	if err != nil {
		t.Fatalf("soak did not converge: %v (decided %d, undecided %v, dropped %d, retransmits %d)",
			err, len(res.Decisions), res.Undecided, res.Dropped, res.Transport.Retransmits)
	}
	if len(res.Decisions) != n {
		t.Fatalf("decisions: %d of %d", len(res.Decisions), n)
	}
	lo, hi := 2.0, -1.0
	for _, v := range res.Decisions {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo > 1e-3 {
		t.Errorf("spread %v > eps", hi-lo)
	}
	if lo < 0 || hi > 1 {
		t.Errorf("validity violated: [%v, %v]", lo, hi)
	}
	if res.Dropped == 0 {
		t.Error("soak injected no loss")
	}
	if res.Transport.Retransmits == 0 {
		t.Error("reliable transport never retransmitted under loss")
	}
	t.Logf("soak: %v elapsed, %d msgs, %d dropped, %d duped, %d retransmits, %d dedup, %d shed",
		res.Elapsed, res.Messages, res.Dropped, res.Duped,
		res.Transport.Retransmits, res.Transport.DupsSuppressed, res.Shed)
}
