// Package livenet runs the same protocol state machines as the simulator on
// a real concurrent runtime: one goroutine per party, channel transports,
// and wall-clock timers with random message jitter. It is the
// production-shaped deployment path — the discrete-event simulator proves
// properties under adversarial schedules, livenet demonstrates the code
// running under genuine concurrency.
//
// Each party's process is driven by a single goroutine, so process
// implementations need no internal locking (the same single-threaded
// contract the simulator provides). Timer callbacks are serialized onto the
// same goroutine through a dedicated per-party timer channel, which is
// never shed.
//
// The network degrades gracefully rather than wedging: senders never block
// (a full inbox sheds its oldest data item, counted per party; a delivery
// that still cannot land within SendTimeout is abandoned, counted), the
// loss/dup/flap options inject wall-clock network faults for soak testing,
// and Reliable routes every send through the ack/retransmit transport
// (internal/relnet) — the same sublayer the simulator's lossy scenario
// axes exercise deterministically. When the context expires the partial
// Result (who decided, who degraded, every transport counter) is returned
// alongside ErrTimeout instead of being discarded.
package livenet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relnet"
	"repro/internal/sim"
)

// Options configures a live run.
type Options struct {
	// MaxJitter is the maximum random delivery delay per message
	// (default 2ms). Zero jitter still yields nondeterministic ordering
	// from goroutine scheduling.
	MaxJitter time.Duration
	// Tick converts protocol timer ticks (sim.Time) to wall time
	// (default 1ms per tick).
	Tick time.Duration
	// Seed drives jitter and fault-injection randomness (per-party seeded
	// sources, drawn only on the owning goroutine).
	Seed int64
	// WaitFor is how many parties must decide before the run completes
	// (default: all).
	WaitFor int
	// InboxDepth is the per-party channel buffer (default 4096). When a
	// data inbox is full the oldest queued item is shed (counted in
	// Result.Shed) so that senders never block.
	InboxDepth int
	// SendTimeout bounds how long an in-flight delivery may contend for
	// inbox space before it is abandoned (default 50ms, counted in
	// Result.SendTimeouts). Senders themselves return immediately either
	// way; the timeout applies to the delivery goroutine.
	SendTimeout time.Duration
	// Loss is the per-send probability that the network silently drops
	// the message (counted in Result.Dropped).
	Loss float64
	// Dup is the per-send probability that the network delivers a second
	// copy of the message after additional jitter (counted in
	// Result.Duped).
	Dup float64
	// FlapParties makes parties 0..FlapParties-1 go dark (all their
	// inbound and outbound traffic dropped) for one staggered wall-clock
	// window each, then resume with their in-memory state intact — the
	// live analogue of the simulator's "flap" scenario axis.
	FlapParties int
	// FlapAfter is when the first flap window opens (default 50ms).
	FlapAfter time.Duration
	// FlapStagger separates consecutive parties' windows (default 50ms).
	FlapStagger time.Duration
	// FlapLen is each window's length (default 100ms).
	FlapLen time.Duration
	// Reliable wraps every process in the ack/retransmit transport
	// (internal/relnet), so lost and duplicated frames are retransmitted
	// and deduplicated exactly as in the simulator's reliable runs.
	Reliable bool
}

// Result of a live run. On ErrTimeout the Result still carries the partial
// progress: every decision that landed, who never decided, and the full
// degradation counters.
type Result struct {
	// Decisions maps party index to output for every party that decided.
	Decisions map[sim.PartyID]float64
	// Undecided lists the parties with no decision, ascending.
	Undecided []sim.PartyID
	// Elapsed is the wall time from start to the WaitFor-th decision (or
	// to context expiry).
	Elapsed time.Duration
	// Messages counts point-to-point sends (including retransmissions).
	Messages int64
	// Dropped counts sends the injected loss and flap faults discarded.
	Dropped int64
	// Duped counts injected duplicate deliveries.
	Duped int64
	// Shed counts data items discarded from full inboxes to keep senders
	// unblocked.
	Shed int64
	// SendTimeouts counts deliveries abandoned after SendTimeout of inbox
	// contention.
	SendTimeouts int64
	// Degraded lists the parties that lost traffic to shedding or send
	// timeouts on their inbox, ascending. A run can degrade and still
	// converge — that is the point of the reliable transport.
	Degraded []sim.PartyID
	// Transport aggregates the ack/retransmit counters across parties
	// when the run used Options.Reliable; zero otherwise.
	Transport relnet.Stats
}

// ErrTimeout is returned when the context expires before enough parties
// decide. The accompanying Result is still valid partial progress.
var ErrTimeout = errors.New("livenet: context done before enough parties decided")

type item struct {
	from sim.PartyID
	data []byte
	tag  uint64 // timer channel only
}

type network struct {
	opts    Options
	start   time.Time
	inboxes []chan item // data; shed-oldest on overflow
	timers  []chan item // timer callbacks; never shed
	ctx     context.Context
	cancel  context.CancelFunc

	messages     atomic.Int64
	dropped      atomic.Int64
	duped        atomic.Int64
	shed         []atomic.Int64 // per recipient
	sendTimeouts []atomic.Int64 // per recipient

	mu        sync.Mutex
	decisions map[sim.PartyID]float64
	want      int
	doneCh    chan struct{}
	doneOnce  sync.Once
}

// dark reports whether a party is inside its flap window at time t.
func (n *network) dark(id sim.PartyID, t time.Time) bool {
	if int(id) >= n.opts.FlapParties {
		return false
	}
	open := n.opts.FlapAfter + time.Duration(id)*n.opts.FlapStagger
	since := t.Sub(n.start)
	return since >= open && since < open+n.opts.FlapLen
}

// deliverData lands one message in a party's inbox without ever blocking a
// sender: it runs on the delivery timer's goroutine, sheds the oldest
// queued item when the inbox is full, and gives up (counted) if the inbox
// is still contended after SendTimeout.
func (n *network) deliverData(to sim.PartyID, msg item) {
	ch := n.inboxes[to]
	deadline := time.NewTimer(n.opts.SendTimeout)
	defer deadline.Stop()
	for {
		select {
		case ch <- msg:
			return
		case <-n.ctx.Done():
			return
		case <-deadline.C:
			n.sendTimeouts[to].Add(1)
			return
		default:
		}
		// Inbox full: shed the oldest data item to make room. Timer
		// callbacks live on their own channel, so nothing protocol-fatal
		// is ever discarded here.
		select {
		case <-ch:
			n.shed[to].Add(1)
		default:
		}
	}
}

type liveAPI struct {
	net *network
	id  sim.PartyID
	rng *rand.Rand
}

var _ sim.API = (*liveAPI)(nil)

func (a *liveAPI) ID() sim.PartyID  { return a.id }
func (a *liveAPI) N() int           { return len(a.net.inboxes) }
func (a *liveAPI) Rand() *rand.Rand { return a.rng }

func (a *liveAPI) jitter() time.Duration {
	if a.net.opts.MaxJitter <= 0 {
		return 0
	}
	return time.Duration(a.rng.Int63n(int64(a.net.opts.MaxJitter)))
}

func (a *liveAPI) Send(to sim.PartyID, data []byte) {
	net := a.net
	if to < 0 || int(to) >= len(net.inboxes) {
		return
	}
	net.messages.Add(1)
	if net.opts.Loss > 0 && a.rng.Float64() < net.opts.Loss {
		net.dropped.Add(1)
		return
	}
	if now := time.Now(); net.dark(a.id, now) || net.dark(to, now) {
		net.dropped.Add(1)
		return
	}
	// Copy so the sender may reuse its buffer after Send returns. A
	// duplicated delivery shares the copy: deliveries are read-only.
	buf := make([]byte, len(data))
	copy(buf, data)
	msg := item{from: a.id, data: buf}
	time.AfterFunc(a.jitter(), func() { net.deliverData(to, msg) })
	if net.opts.Dup > 0 && a.rng.Float64() < net.opts.Dup {
		net.duped.Add(1)
		extra := a.jitter() + a.jitter()
		time.AfterFunc(extra, func() { net.deliverData(to, msg) })
	}
}

func (a *liveAPI) Multicast(data []byte) {
	for to := range a.net.inboxes {
		a.Send(sim.PartyID(to), data)
	}
}

func (a *liveAPI) SetTimer(delay sim.Time, tag uint64) {
	net := a.net
	id := a.id
	d := time.Duration(delay) * net.opts.Tick
	time.AfterFunc(d, func() {
		// Timers are never shed; the timer goroutine may wait for space,
		// but no protocol sender is ever behind this channel.
		select {
		case net.timers[id] <- item{tag: tag}:
		case <-net.ctx.Done():
		}
	})
}

func (a *liveAPI) Decide(value float64) {
	net := a.net
	net.mu.Lock()
	defer net.mu.Unlock()
	if _, dup := net.decisions[a.id]; dup {
		return
	}
	net.decisions[a.id] = value
	if len(net.decisions) >= net.want {
		net.doneOnce.Do(func() { close(net.doneCh) })
	}
}

// Run drives the processes until WaitFor of them decide or the context
// expires. Each process is owned by exactly one goroutine. On context
// expiry the partial Result is returned together with ErrTimeout.
func Run(ctx context.Context, procs []sim.Process, opts Options) (*Result, error) {
	if len(procs) == 0 {
		return nil, errors.New("livenet: no processes")
	}
	for i, p := range procs {
		if p == nil {
			return nil, fmt.Errorf("livenet: nil process at index %d", i)
		}
	}
	if opts.MaxJitter == 0 {
		opts.MaxJitter = 2 * time.Millisecond
	}
	if opts.Tick == 0 {
		opts.Tick = time.Millisecond
	}
	if opts.WaitFor <= 0 || opts.WaitFor > len(procs) {
		opts.WaitFor = len(procs)
	}
	if opts.InboxDepth <= 0 {
		opts.InboxDepth = 4096
	}
	if opts.SendTimeout <= 0 {
		opts.SendTimeout = 50 * time.Millisecond
	}
	if opts.FlapParties > len(procs) {
		opts.FlapParties = len(procs)
	}
	if opts.FlapAfter <= 0 {
		opts.FlapAfter = 50 * time.Millisecond
	}
	if opts.FlapStagger <= 0 {
		opts.FlapStagger = 50 * time.Millisecond
	}
	if opts.FlapLen <= 0 {
		opts.FlapLen = 100 * time.Millisecond
	}

	var rel []*relnet.Proc
	if opts.Reliable {
		rel = make([]*relnet.Proc, len(procs))
		wrapped := make([]sim.Process, len(procs))
		for i, p := range procs {
			rel[i] = relnet.Wrap(p)
			wrapped[i] = rel[i]
		}
		procs = wrapped
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	net := &network{
		opts:         opts,
		inboxes:      make([]chan item, len(procs)),
		timers:       make([]chan item, len(procs)),
		ctx:          runCtx,
		cancel:       cancel,
		shed:         make([]atomic.Int64, len(procs)),
		sendTimeouts: make([]atomic.Int64, len(procs)),
		decisions:    make(map[sim.PartyID]float64, len(procs)),
		want:         opts.WaitFor,
		doneCh:       make(chan struct{}),
	}
	for i := range net.inboxes {
		net.inboxes[i] = make(chan item, opts.InboxDepth)
		net.timers[i] = make(chan item, opts.InboxDepth)
	}

	net.start = time.Now()
	var wg sync.WaitGroup
	for i, proc := range procs {
		wg.Add(1)
		go func(id sim.PartyID, p sim.Process) {
			defer wg.Done()
			api := &liveAPI{
				net: net,
				id:  id,
				rng: rand.New(rand.NewSource(opts.Seed ^ (int64(id+1) * 0x5851F42D4C957F2D))),
			}
			p.Init(api)
			for {
				select {
				case <-runCtx.Done():
					return
				case it := <-net.timers[id]:
					if th, ok := p.(sim.TimerHandler); ok {
						th.OnTimer(it.tag)
					}
				case it := <-net.inboxes[id]:
					p.Deliver(it.from, it.data)
				}
			}
		}(sim.PartyID(i), proc)
	}

	var err error
	select {
	case <-net.doneCh:
	case <-ctx.Done():
		err = fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
	}
	elapsed := time.Since(net.start)
	cancel()
	wg.Wait()

	net.mu.Lock()
	defer net.mu.Unlock()
	res := &Result{
		Decisions: make(map[sim.PartyID]float64, len(net.decisions)),
		Elapsed:   elapsed,
		Messages:  net.messages.Load(),
		Dropped:   net.dropped.Load(),
		Duped:     net.duped.Load(),
	}
	for id, v := range net.decisions {
		res.Decisions[id] = v
	}
	for i := range procs {
		id := sim.PartyID(i)
		if _, ok := net.decisions[id]; !ok {
			res.Undecided = append(res.Undecided, id)
		}
		shed, timedOut := net.shed[i].Load(), net.sendTimeouts[i].Load()
		res.Shed += shed
		res.SendTimeouts += timedOut
		if shed > 0 || timedOut > 0 {
			res.Degraded = append(res.Degraded, id)
		}
	}
	for _, r := range rel {
		ts := r.TransportStats()
		res.Transport.DataSent += ts.DataSent
		res.Transport.Retransmits += ts.Retransmits
		res.Transport.AcksSent += ts.AcksSent
		res.Transport.DupsSuppressed += ts.DupsSuppressed
		res.Transport.GiveUps += ts.GiveUps
	}
	return res, err
}
