// Package livenet runs the same protocol state machines as the simulator on
// a real concurrent runtime: one goroutine per party, channel transports,
// and wall-clock timers with random message jitter. It is the
// production-shaped deployment path — the discrete-event simulator proves
// properties under adversarial schedules, livenet demonstrates the code
// running under genuine concurrency.
//
// Each party's process is driven by a single goroutine, so process
// implementations need no internal locking (the same single-threaded
// contract the simulator provides). Timer callbacks are serialized onto the
// same goroutine through a dedicated per-party timer channel, which is
// never shed.
//
// The network degrades gracefully rather than wedging: senders never block
// (a full inbox sheds its oldest data item, counted per party; a delivery
// that still cannot land within SendTimeout is abandoned, counted), the
// loss/dup/flap options inject wall-clock network faults for soak testing,
// and Reliable routes every send through the ack/retransmit transport
// (internal/relnet) — the same sublayer the simulator's lossy scenario
// axes exercise deterministically. When the context expires the partial
// Result (who decided, who degraded, every transport counter) is returned
// alongside ErrTimeout instead of being discarded.
package livenet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relnet"
	"repro/internal/sim"
)

// Options configures a live run.
type Options struct {
	// MaxJitter is the maximum random delivery delay per message
	// (default 2ms). Zero jitter still yields nondeterministic ordering
	// from goroutine scheduling.
	MaxJitter time.Duration
	// Tick converts protocol timer ticks (sim.Time) to wall time
	// (default 1ms per tick).
	Tick time.Duration
	// Seed drives jitter and fault-injection randomness (per-party seeded
	// sources, drawn only on the owning goroutine).
	Seed int64
	// WaitFor is how many parties must decide before the run completes
	// (default: all).
	WaitFor int
	// InboxDepth is the per-party channel buffer (default 4096). When a
	// data inbox is full the oldest queued item is shed (counted in
	// Result.Shed) so that senders never block.
	InboxDepth int
	// SendTimeout bounds how long an in-flight delivery may contend for
	// inbox space before it is abandoned (default 50ms, counted in
	// Result.SendTimeouts). Senders themselves return immediately either
	// way; the timeout applies to the delivery goroutine.
	SendTimeout time.Duration
	// Loss is the per-send probability that the network silently drops
	// the message (counted in Result.Dropped).
	Loss float64
	// Dup is the per-send probability that the network delivers a second
	// copy of the message after additional jitter (counted in
	// Result.Duped).
	Dup float64
	// FlapParties makes parties 0..FlapParties-1 go dark (all their
	// inbound and outbound traffic dropped) for one staggered wall-clock
	// window each, then resume with their in-memory state intact — the
	// live analogue of the simulator's "flap" scenario axis.
	FlapParties int
	// FlapAfter is when the first flap window opens (default 50ms).
	FlapAfter time.Duration
	// FlapStagger separates consecutive parties' windows (default 50ms).
	FlapStagger time.Duration
	// FlapLen is each window's length (default 100ms).
	FlapLen time.Duration
	// Reliable wraps every process in the ack/retransmit transport
	// (internal/relnet), so lost and duplicated frames are retransmitted
	// and deduplicated exactly as in the simulator's reliable runs.
	Reliable bool
	// RestartParties makes parties 0..RestartParties-1 crash and recover
	// once each under restart supervision: the supervisor checkpoints the
	// party's state on its owning goroutine, kills it at a staggered
	// wall-clock instant (its decision is withdrawn, its queued inbox
	// discarded, all state newer than the checkpoint lost), holds it down
	// for RestartDown, then restores the checkpoint and rejoins it via the
	// protocol's catch-up re-announce — the live analogue of the
	// simulator's "recover" scenario axis. Restart-supervised processes
	// must support checkpointing (the built-in protocols do).
	RestartParties int
	// RestartAfter is when the first kill fires (default 75ms).
	RestartAfter time.Duration
	// RestartStagger separates consecutive parties' kills (default 25ms).
	RestartStagger time.Duration
	// RestartDown is how long a killed party stays dark before it rejoins
	// (default 50ms). While down its inbox sheds as usual; everything
	// queued is discarded at the moment of rejoin, as a real process
	// restart would lose its socket buffers.
	RestartDown time.Duration
	// RestartLag is how long before the kill the checkpoint is taken
	// (default 0: the checkpoint is taken at the kill instant, so only
	// in-flight traffic is lost). A positive lag rolls the party back to
	// genuinely stale state, which only converges when the protocol's
	// rejoin path can re-learn the gap (adaptive + Reliable).
	RestartLag time.Duration
}

// Result of a live run. On ErrTimeout the Result still carries the partial
// progress: every decision that landed, who never decided, and the full
// degradation counters.
type Result struct {
	// Decisions maps party index to output for every party that decided.
	Decisions map[sim.PartyID]float64
	// Undecided lists the parties with no decision, ascending.
	Undecided []sim.PartyID
	// Elapsed is the wall time from start to the WaitFor-th decision (or
	// to context expiry).
	Elapsed time.Duration
	// Messages counts point-to-point sends (including retransmissions).
	Messages int64
	// Dropped counts sends the injected loss and flap faults discarded.
	Dropped int64
	// Duped counts injected duplicate deliveries.
	Duped int64
	// Shed counts data items discarded from full inboxes to keep senders
	// unblocked.
	Shed int64
	// SendTimeouts counts deliveries abandoned after SendTimeout of inbox
	// contention.
	SendTimeouts int64
	// Degraded lists the parties that lost traffic to shedding, send
	// timeouts, or ack/retransmit give-ups on their links, ascending. A
	// run can degrade and still converge — that is the point of the
	// reliable transport; a give-up, though, means a frame was abandoned
	// for good, so give-up rows deserve scrutiny even in converged runs.
	Degraded []sim.PartyID
	// Transport aggregates the ack/retransmit counters across parties
	// when the run used Options.Reliable; zero otherwise.
	Transport relnet.Stats
	// Restarts counts completed kill/rejoin cycles across all parties
	// under restart supervision.
	Restarts int64
	// Restarted lists the parties that completed at least one restart
	// cycle, ascending.
	Restarted []sim.PartyID
}

// ErrTimeout is returned when the context expires before enough parties
// decide. The accompanying Result is still valid partial progress.
var ErrTimeout = errors.New("livenet: context done before enough parties decided")

type item struct {
	from sim.PartyID
	data []byte
	tag  uint64 // timer channel only
}

// ctlKind is a restart-supervision control message, processed on the
// party's owning goroutine so snapshots and restores never race protocol
// state.
type ctlKind uint8

const (
	ctlCheckpoint ctlKind = iota
	ctlKill
)

// snapshotter is the structural interface restart-supervised processes
// must implement (satisfied by the core protocols and the relnet wrapper).
type snapshotter interface {
	Snapshot(buf []byte) ([]byte, error)
	Restore(data []byte) error
	Rejoin()
}

type network struct {
	opts    Options
	start   time.Time
	inboxes []chan item // data; shed-oldest on overflow
	timers  []chan item // timer callbacks; never shed
	ctx     context.Context
	cancel  context.CancelFunc

	ctls []chan ctlKind // restart supervision; nil without RestartParties

	messages     atomic.Int64
	dropped      atomic.Int64
	duped        atomic.Int64
	shed         []atomic.Int64 // per recipient
	sendTimeouts []atomic.Int64 // per recipient
	restarted    []atomic.Int64 // completed kill/rejoin cycles per party

	mu         sync.Mutex
	decisions  map[sim.PartyID]float64
	want       int
	doneCh     chan struct{}
	doneOnce   sync.Once
	restartErr error
}

// undecide withdraws a killed party's decision so its rejoin must re-earn
// it. If the run already completed, the withdrawal is moot — the race
// matches the simulator's contract (a run that finishes before a pending
// restart fires stays finished).
func (n *network) undecide(id sim.PartyID) {
	n.mu.Lock()
	delete(n.decisions, id)
	n.mu.Unlock()
}

// fail records the first restart-supervision error (snapshot or restore
// failure); the run's verdict surfaces it.
func (n *network) fail(err error) {
	n.mu.Lock()
	if n.restartErr == nil {
		n.restartErr = err
	}
	n.mu.Unlock()
}

// dark reports whether a party is inside its flap window at time t.
func (n *network) dark(id sim.PartyID, t time.Time) bool {
	if int(id) >= n.opts.FlapParties {
		return false
	}
	open := n.opts.FlapAfter + time.Duration(id)*n.opts.FlapStagger
	since := t.Sub(n.start)
	return since >= open && since < open+n.opts.FlapLen
}

// deliverData lands one message in a party's inbox without ever blocking a
// sender: it runs on the delivery timer's goroutine, sheds the oldest
// queued item when the inbox is full, and gives up (counted) if the inbox
// is still contended after SendTimeout.
func (n *network) deliverData(to sim.PartyID, msg item) {
	ch := n.inboxes[to]
	deadline := time.NewTimer(n.opts.SendTimeout)
	defer deadline.Stop()
	for {
		select {
		case ch <- msg:
			return
		case <-n.ctx.Done():
			return
		case <-deadline.C:
			n.sendTimeouts[to].Add(1)
			return
		default:
		}
		// Inbox full: shed the oldest data item to make room. Timer
		// callbacks live on their own channel, so nothing protocol-fatal
		// is ever discarded here.
		select {
		case <-ch:
			n.shed[to].Add(1)
		default:
		}
	}
}

type liveAPI struct {
	net *network
	id  sim.PartyID
	rng *rand.Rand
}

var _ sim.API = (*liveAPI)(nil)

func (a *liveAPI) ID() sim.PartyID  { return a.id }
func (a *liveAPI) N() int           { return len(a.net.inboxes) }
func (a *liveAPI) Rand() *rand.Rand { return a.rng }

func (a *liveAPI) jitter() time.Duration {
	if a.net.opts.MaxJitter <= 0 {
		return 0
	}
	return time.Duration(a.rng.Int63n(int64(a.net.opts.MaxJitter)))
}

func (a *liveAPI) Send(to sim.PartyID, data []byte) {
	net := a.net
	if to < 0 || int(to) >= len(net.inboxes) {
		return
	}
	net.messages.Add(1)
	if net.opts.Loss > 0 && a.rng.Float64() < net.opts.Loss {
		net.dropped.Add(1)
		return
	}
	if now := time.Now(); net.dark(a.id, now) || net.dark(to, now) {
		net.dropped.Add(1)
		return
	}
	// Copy so the sender may reuse its buffer after Send returns. A
	// duplicated delivery shares the copy: deliveries are read-only.
	buf := make([]byte, len(data))
	copy(buf, data)
	msg := item{from: a.id, data: buf}
	time.AfterFunc(a.jitter(), func() { net.deliverData(to, msg) })
	if net.opts.Dup > 0 && a.rng.Float64() < net.opts.Dup {
		net.duped.Add(1)
		extra := a.jitter() + a.jitter()
		time.AfterFunc(extra, func() { net.deliverData(to, msg) })
	}
}

func (a *liveAPI) Multicast(data []byte) {
	for to := range a.net.inboxes {
		a.Send(sim.PartyID(to), data)
	}
}

func (a *liveAPI) SetTimer(delay sim.Time, tag uint64) {
	net := a.net
	id := a.id
	d := time.Duration(delay) * net.opts.Tick
	time.AfterFunc(d, func() {
		// Timers are never shed; the timer goroutine may wait for space,
		// but no protocol sender is ever behind this channel.
		select {
		case net.timers[id] <- item{tag: tag}:
		case <-net.ctx.Done():
		}
	})
}

func (a *liveAPI) Decide(value float64) {
	net := a.net
	net.mu.Lock()
	defer net.mu.Unlock()
	if _, dup := net.decisions[a.id]; dup {
		return
	}
	net.decisions[a.id] = value
	if len(net.decisions) >= net.want {
		net.doneOnce.Do(func() { close(net.doneCh) })
	}
}

// Run drives the processes until WaitFor of them decide or the context
// expires. Each process is owned by exactly one goroutine. On context
// expiry the partial Result is returned together with ErrTimeout.
func Run(ctx context.Context, procs []sim.Process, opts Options) (*Result, error) {
	if len(procs) == 0 {
		return nil, errors.New("livenet: no processes")
	}
	for i, p := range procs {
		if p == nil {
			return nil, fmt.Errorf("livenet: nil process at index %d", i)
		}
	}
	if opts.MaxJitter == 0 {
		opts.MaxJitter = 2 * time.Millisecond
	}
	if opts.Tick == 0 {
		opts.Tick = time.Millisecond
	}
	if opts.WaitFor <= 0 || opts.WaitFor > len(procs) {
		opts.WaitFor = len(procs)
	}
	if opts.InboxDepth <= 0 {
		opts.InboxDepth = 4096
	}
	if opts.SendTimeout <= 0 {
		opts.SendTimeout = 50 * time.Millisecond
	}
	if opts.FlapParties > len(procs) {
		opts.FlapParties = len(procs)
	}
	if opts.FlapAfter <= 0 {
		opts.FlapAfter = 50 * time.Millisecond
	}
	if opts.FlapStagger <= 0 {
		opts.FlapStagger = 50 * time.Millisecond
	}
	if opts.FlapLen <= 0 {
		opts.FlapLen = 100 * time.Millisecond
	}
	if opts.RestartParties > len(procs) {
		opts.RestartParties = len(procs)
	}
	if opts.RestartAfter <= 0 {
		opts.RestartAfter = 75 * time.Millisecond
	}
	if opts.RestartStagger <= 0 {
		opts.RestartStagger = 25 * time.Millisecond
	}
	if opts.RestartDown <= 0 {
		opts.RestartDown = 50 * time.Millisecond
	}
	for i := 0; i < opts.RestartParties; i++ {
		if _, ok := procs[i].(snapshotter); !ok {
			return nil, fmt.Errorf("livenet: party %d process %T does not support checkpoint restart", i, procs[i])
		}
	}

	var rel []*relnet.Proc
	if opts.Reliable {
		rel = make([]*relnet.Proc, len(procs))
		wrapped := make([]sim.Process, len(procs))
		for i, p := range procs {
			rel[i] = relnet.Wrap(p)
			wrapped[i] = rel[i]
		}
		procs = wrapped
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	net := &network{
		opts:         opts,
		inboxes:      make([]chan item, len(procs)),
		timers:       make([]chan item, len(procs)),
		ctx:          runCtx,
		cancel:       cancel,
		shed:         make([]atomic.Int64, len(procs)),
		sendTimeouts: make([]atomic.Int64, len(procs)),
		restarted:    make([]atomic.Int64, len(procs)),
		decisions:    make(map[sim.PartyID]float64, len(procs)),
		want:         opts.WaitFor,
		doneCh:       make(chan struct{}),
	}
	for i := range net.inboxes {
		net.inboxes[i] = make(chan item, opts.InboxDepth)
		net.timers[i] = make(chan item, opts.InboxDepth)
	}
	if opts.RestartParties > 0 {
		net.ctls = make([]chan ctlKind, len(procs))
		for i := 0; i < opts.RestartParties; i++ {
			net.ctls[i] = make(chan ctlKind, 4)
		}
	}

	net.start = time.Now()
	var wg sync.WaitGroup
	for i, proc := range procs {
		wg.Add(1)
		go func(id sim.PartyID, p sim.Process) {
			defer wg.Done()
			api := &liveAPI{
				net: net,
				id:  id,
				rng: rand.New(rand.NewSource(opts.Seed ^ (int64(id+1) * 0x5851F42D4C957F2D))),
			}
			p.Init(api)
			// A nil ctl channel blocks forever in the select, so parties
			// outside restart supervision pay nothing for the extra case.
			var ctl chan ctlKind
			var sp snapshotter
			var snap []byte
			if net.ctls != nil && net.ctls[id] != nil {
				ctl = net.ctls[id]
				sp = p.(snapshotter)
				// The post-Init state is the fallback checkpoint: a kill
				// that outruns its checkpoint message restarts from zero,
				// like the simulator's amnesia axis.
				b, err := sp.Snapshot(nil)
				if err != nil {
					net.fail(fmt.Errorf("livenet: party %d initial checkpoint: %w", id, err))
					net.cancel()
					return
				}
				snap = b
			}
			for {
				select {
				case <-runCtx.Done():
					return
				case c := <-ctl:
					switch c {
					case ctlCheckpoint:
						b, err := sp.Snapshot(snap[:0])
						if err != nil {
							net.fail(fmt.Errorf("livenet: party %d checkpoint: %w", id, err))
							net.cancel()
							return
						}
						snap = b
					case ctlKill:
						// Crash: withdraw the decision, go dark for
						// RestartDown (the inbox sheds behind our back),
						// then restart from the checkpoint.
						net.undecide(id)
						down := time.NewTimer(opts.RestartDown)
						select {
						case <-runCtx.Done():
							down.Stop()
							return
						case <-down.C:
						}
						// The dead process's socket buffers are gone:
						// discard everything queued while it was down.
						// Timer callbacks survive (stale tags are ignored
						// by their handlers), so retransmit schedules keep
						// their cadence across the restart.
						for drained := false; !drained; {
							select {
							case <-net.inboxes[id]:
							default:
								drained = true
							}
						}
						if err := sp.Restore(snap); err != nil {
							net.fail(fmt.Errorf("livenet: party %d restore: %w", id, err))
							net.cancel()
							return
						}
						sp.Rejoin()
						net.restarted[id].Add(1)
					}
				case it := <-net.timers[id]:
					if th, ok := p.(sim.TimerHandler); ok {
						th.OnTimer(it.tag)
					}
				case it := <-net.inboxes[id]:
					p.Deliver(it.from, it.data)
				}
			}
		}(sim.PartyID(i), proc)
	}

	// Restart supervision: checkpoint and kill messages land on the party's
	// control channel and are processed on its owning goroutine, so no
	// snapshot ever observes torn protocol state.
	for i := 0; i < opts.RestartParties; i++ {
		ctl := net.ctls[i]
		sendCtl := func(c ctlKind) {
			select {
			case ctl <- c:
			case <-runCtx.Done():
			}
		}
		killAt := opts.RestartAfter + time.Duration(i)*opts.RestartStagger
		if opts.RestartLag > 0 {
			ckptAt := killAt - opts.RestartLag
			if ckptAt < 0 {
				ckptAt = 0
			}
			time.AfterFunc(ckptAt, func() { sendCtl(ctlCheckpoint) })
			time.AfterFunc(killAt, func() { sendCtl(ctlKill) })
		} else {
			// Lag zero: checkpoint at the kill instant, so only in-flight
			// traffic is lost. Both messages ride one timer to keep their
			// order.
			time.AfterFunc(killAt, func() { sendCtl(ctlCheckpoint); sendCtl(ctlKill) })
		}
	}

	var err error
	select {
	case <-net.doneCh:
	case <-ctx.Done():
		err = fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
	}
	elapsed := time.Since(net.start)
	cancel()
	wg.Wait()

	net.mu.Lock()
	defer net.mu.Unlock()
	res := &Result{
		Decisions: make(map[sim.PartyID]float64, len(net.decisions)),
		Elapsed:   elapsed,
		Messages:  net.messages.Load(),
		Dropped:   net.dropped.Load(),
		Duped:     net.duped.Load(),
	}
	for id, v := range net.decisions {
		res.Decisions[id] = v
	}
	for i := range procs {
		id := sim.PartyID(i)
		if _, ok := net.decisions[id]; !ok {
			res.Undecided = append(res.Undecided, id)
		}
		shed, timedOut := net.shed[i].Load(), net.sendTimeouts[i].Load()
		res.Shed += shed
		res.SendTimeouts += timedOut
		degraded := shed > 0 || timedOut > 0
		if rel != nil {
			ts := rel[i].TransportStats()
			res.Transport.DataSent += ts.DataSent
			res.Transport.Retransmits += ts.Retransmits
			res.Transport.AcksSent += ts.AcksSent
			res.Transport.DupsSuppressed += ts.DupsSuppressed
			res.Transport.GiveUps += ts.GiveUps
			// A give-up abandoned a frame for good on one of this party's
			// outbound links; that is health-relevant degradation even when
			// the run converged anyway.
			if ts.GiveUps > 0 {
				degraded = true
			}
		}
		if degraded {
			res.Degraded = append(res.Degraded, id)
		}
		if r := net.restarted[i].Load(); r > 0 {
			res.Restarts += r
			res.Restarted = append(res.Restarted, id)
		}
	}
	if err == nil && net.restartErr != nil {
		err = net.restartErr
	}
	return res, err
}
