// Package livenet runs the same protocol state machines as the simulator on
// a real concurrent runtime: one goroutine per party, channel transports,
// and wall-clock timers with random message jitter. It is the
// production-shaped deployment path — the discrete-event simulator proves
// properties under adversarial schedules, livenet demonstrates the code
// running under genuine concurrency.
//
// Each party's process is driven by a single goroutine, so process
// implementations need no internal locking (the same single-threaded
// contract the simulator provides).
package livenet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Options configures a live run.
type Options struct {
	// MaxJitter is the maximum random delivery delay per message
	// (default 2ms). Zero jitter still yields nondeterministic ordering
	// from goroutine scheduling.
	MaxJitter time.Duration
	// Tick converts protocol timer ticks (sim.Time) to wall time
	// (default 1ms per tick).
	Tick time.Duration
	// Seed drives jitter randomness.
	Seed int64
	// WaitFor is how many parties must decide before the run completes
	// (default: all).
	WaitFor int
	// InboxDepth is the per-party channel buffer (default 4096).
	InboxDepth int
}

// Result of a live run.
type Result struct {
	// Decisions maps party index to output for every party that decided.
	Decisions map[sim.PartyID]float64
	// Elapsed is the wall time from start to the WaitFor-th decision.
	Elapsed time.Duration
	// Messages counts point-to-point sends.
	Messages int64
}

// ErrTimeout is returned when the context expires before enough parties
// decide.
var ErrTimeout = errors.New("livenet: context done before enough parties decided")

type item struct {
	from  sim.PartyID
	data  []byte
	timer bool
	tag   uint64
}

type network struct {
	opts     Options
	inboxes  []chan item
	ctx      context.Context
	cancel   context.CancelFunc
	messages atomic.Int64

	mu        sync.Mutex
	decisions map[sim.PartyID]float64
	want      int
	doneCh    chan struct{}
	doneOnce  sync.Once
}

type liveAPI struct {
	net *network
	id  sim.PartyID
	rng *rand.Rand
}

var _ sim.API = (*liveAPI)(nil)

func (a *liveAPI) ID() sim.PartyID  { return a.id }
func (a *liveAPI) N() int           { return len(a.net.inboxes) }
func (a *liveAPI) Rand() *rand.Rand { return a.rng }

func (a *liveAPI) Send(to sim.PartyID, data []byte) {
	if to < 0 || int(to) >= len(a.net.inboxes) {
		return
	}
	a.net.messages.Add(1)
	// Copy so the sender may reuse its buffer after Send returns.
	buf := make([]byte, len(data))
	copy(buf, data)
	msg := item{from: a.id, data: buf}
	jitter := time.Duration(0)
	if a.net.opts.MaxJitter > 0 {
		jitter = time.Duration(a.rng.Int63n(int64(a.net.opts.MaxJitter)))
	}
	net := a.net
	time.AfterFunc(jitter, func() {
		select {
		case net.inboxes[to] <- msg:
		case <-net.ctx.Done():
		}
	})
}

func (a *liveAPI) Multicast(data []byte) {
	for to := range a.net.inboxes {
		a.Send(sim.PartyID(to), data)
	}
}

func (a *liveAPI) SetTimer(delay sim.Time, tag uint64) {
	net := a.net
	id := a.id
	d := time.Duration(delay) * net.opts.Tick
	time.AfterFunc(d, func() {
		select {
		case net.inboxes[id] <- item{timer: true, tag: tag}:
		case <-net.ctx.Done():
		}
	})
}

func (a *liveAPI) Decide(value float64) {
	net := a.net
	net.mu.Lock()
	defer net.mu.Unlock()
	if _, dup := net.decisions[a.id]; dup {
		return
	}
	net.decisions[a.id] = value
	if len(net.decisions) >= net.want {
		net.doneOnce.Do(func() { close(net.doneCh) })
	}
}

// Run drives the processes until WaitFor of them decide or the context
// expires. Each process is owned by exactly one goroutine.
func Run(ctx context.Context, procs []sim.Process, opts Options) (*Result, error) {
	if len(procs) == 0 {
		return nil, errors.New("livenet: no processes")
	}
	for i, p := range procs {
		if p == nil {
			return nil, fmt.Errorf("livenet: nil process at index %d", i)
		}
	}
	if opts.MaxJitter == 0 {
		opts.MaxJitter = 2 * time.Millisecond
	}
	if opts.Tick == 0 {
		opts.Tick = time.Millisecond
	}
	if opts.WaitFor <= 0 || opts.WaitFor > len(procs) {
		opts.WaitFor = len(procs)
	}
	if opts.InboxDepth <= 0 {
		opts.InboxDepth = 4096
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	net := &network{
		opts:      opts,
		inboxes:   make([]chan item, len(procs)),
		ctx:       runCtx,
		cancel:    cancel,
		decisions: make(map[sim.PartyID]float64, len(procs)),
		want:      opts.WaitFor,
		doneCh:    make(chan struct{}),
	}
	for i := range net.inboxes {
		net.inboxes[i] = make(chan item, opts.InboxDepth)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i, proc := range procs {
		wg.Add(1)
		go func(id sim.PartyID, p sim.Process) {
			defer wg.Done()
			api := &liveAPI{
				net: net,
				id:  id,
				rng: rand.New(rand.NewSource(opts.Seed ^ (int64(id+1) * 0x5851F42D4C957F2D))),
			}
			p.Init(api)
			for {
				select {
				case <-runCtx.Done():
					return
				case it := <-net.inboxes[id]:
					if it.timer {
						if th, ok := p.(sim.TimerHandler); ok {
							th.OnTimer(it.tag)
						}
						continue
					}
					p.Deliver(it.from, it.data)
				}
			}
		}(sim.PartyID(i), proc)
	}

	var err error
	select {
	case <-net.doneCh:
	case <-ctx.Done():
		err = fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
	}
	elapsed := time.Since(start)
	cancel()
	wg.Wait()

	net.mu.Lock()
	defer net.mu.Unlock()
	res := &Result{
		Decisions: make(map[sim.PartyID]float64, len(net.decisions)),
		Elapsed:   elapsed,
		Messages:  net.messages.Load(),
	}
	for id, v := range net.decisions {
		res.Decisions[id] = v
	}
	return res, err
}
