package wire

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestInitRoundtrip(t *testing.T) {
	in := Init{Value: -3.75}
	out, err := UnmarshalInit(MarshalInit(in))
	if err != nil || out != in {
		t.Errorf("roundtrip: %+v, %v", out, err)
	}
}

func TestValueRoundtrip(t *testing.T) {
	in := Value{Round: 42, Horizon: 99, Value: math.Pi}
	out, err := UnmarshalValue(MarshalValue(in))
	if err != nil || out != in {
		t.Errorf("roundtrip: %+v, %v", out, err)
	}
}

func TestDecidedRoundtrip(t *testing.T) {
	in := Decided{Value: 1e-300}
	out, err := UnmarshalDecided(MarshalDecided(in))
	if err != nil || out != in {
		t.Errorf("roundtrip: %+v, %v", out, err)
	}
}

func TestRBCRoundtrip(t *testing.T) {
	for _, phase := range []byte{RBCSend, RBCEcho, RBCReady} {
		in := RBC{Phase: phase, Origin: 513, Round: 7, Value: -0.25}
		out, err := UnmarshalRBC(MarshalRBC(in))
		if err != nil || out != in {
			t.Errorf("roundtrip phase %d: %+v, %v", phase, out, err)
		}
	}
}

func TestRBCBadPhase(t *testing.T) {
	b := MarshalRBC(RBC{Phase: RBCSend, Origin: 1, Round: 1, Value: 0})
	b[1] = 0
	if _, err := UnmarshalRBC(b); err == nil {
		t.Error("phase 0 accepted")
	}
	b[1] = RBCReady + 1
	if _, err := UnmarshalRBC(b); err == nil {
		t.Error("phase out of range accepted")
	}
}

func TestReportRoundtrip(t *testing.T) {
	in := Report{Round: 12, Senders: []uint16{0, 5, 1000, 65535}}
	out, err := UnmarshalReport(MarshalReport(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Round != in.Round || !reflect.DeepEqual(out.Senders, in.Senders) {
		t.Errorf("roundtrip: %+v", out)
	}
	empty := Report{Round: 1, Senders: nil}
	out, err = UnmarshalReport(MarshalReport(empty))
	if err != nil || out.Round != 1 || len(out.Senders) != 0 {
		t.Errorf("empty report roundtrip: %+v, %v", out, err)
	}
}

func TestReportTruncatedSenders(t *testing.T) {
	b := MarshalReport(Report{Round: 1, Senders: []uint16{1, 2, 3}})
	if _, err := UnmarshalReport(b[:len(b)-2]); !errors.Is(err, ErrShort) {
		t.Errorf("truncated senders: %v", err)
	}
	// Claimed count larger than the payload.
	b[5] = 0xFF
	b[6] = 0xFF
	if _, err := UnmarshalReport(b); !errors.Is(err, ErrShort) {
		t.Errorf("inflated count: %v", err)
	}
}

func TestPeek(t *testing.T) {
	if k, err := Peek(MarshalInit(Init{})); err != nil || k != KindInit {
		t.Errorf("Peek init = %v, %v", k, err)
	}
	if _, err := Peek(nil); !errors.Is(err, ErrShort) {
		t.Errorf("Peek(nil) = %v", err)
	}
	if _, err := Peek([]byte{0}); !errors.Is(err, ErrBadKind) {
		t.Errorf("Peek(0) = %v", err)
	}
	if _, err := Peek([]byte{200}); !errors.Is(err, ErrBadKind) {
		t.Errorf("Peek(200) = %v", err)
	}
}

func TestTruncation(t *testing.T) {
	msgs := [][]byte{
		MarshalInit(Init{Value: 1}),
		MarshalValue(Value{Round: 1, Value: 1}),
		MarshalDecided(Decided{Value: 1}),
		MarshalRBC(RBC{Phase: RBCEcho, Origin: 1, Round: 1, Value: 1}),
		MarshalReport(Report{Round: 1, Senders: []uint16{1}}),
	}
	decoders := []func([]byte) error{
		func(b []byte) error { _, err := UnmarshalInit(b); return err },
		func(b []byte) error { _, err := UnmarshalValue(b); return err },
		func(b []byte) error { _, err := UnmarshalDecided(b); return err },
		func(b []byte) error { _, err := UnmarshalRBC(b); return err },
		func(b []byte) error { _, err := UnmarshalReport(b); return err },
	}
	for i, msg := range msgs {
		for cut := 0; cut < len(msg); cut++ {
			if err := decoders[i](msg[:cut]); err == nil {
				t.Errorf("message %d truncated to %d bytes accepted", i, cut)
			}
		}
		if err := decoders[i](msg); err != nil {
			t.Errorf("message %d full decode failed: %v", i, err)
		}
	}
}

func TestKindConfusion(t *testing.T) {
	// Decoding a message as the wrong kind must fail even when long enough.
	v := MarshalValue(Value{Round: 1, Value: 2})
	if _, err := UnmarshalInit(v); err == nil {
		t.Error("value decoded as init")
	}
	if _, err := UnmarshalRBC(v); err == nil {
		t.Error("value decoded as rbc")
	}
}

// Property: Value roundtrips for arbitrary field contents, including NaN
// bit patterns (NaN compares unequal, so compare bit images).
func TestValueRoundtripProperty(t *testing.T) {
	f := func(round, horizon uint32, bits uint64) bool {
		in := Value{Round: round, Horizon: horizon, Value: math.Float64frombits(bits)}
		out, err := UnmarshalValue(MarshalValue(in))
		if err != nil {
			return false
		}
		return out.Round == in.Round && out.Horizon == in.Horizon &&
			math.Float64bits(out.Value) == bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: random byte strings never panic any decoder; they either decode
// or error.
func TestDecodersTotalProperty(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Peek(b)
		_, _ = UnmarshalInit(b)
		_, _ = UnmarshalValue(b)
		_, _ = UnmarshalDecided(b)
		_, _ = UnmarshalRBC(b)
		_, _ = UnmarshalReport(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
