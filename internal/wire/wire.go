// Package wire defines the fixed little-endian wire encoding of every
// protocol message. Encoding real bytes (rather than counting structs) is
// what makes the bit-complexity numbers in the experiment tables honest.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Kind is the first byte of every message.
type Kind byte

// Message kinds.
const (
	// KindInit carries a party's raw input during the adaptive spread
	// estimation phase.
	KindInit Kind = iota + 1
	// KindValue carries a round-tagged protocol value with the sender's
	// current round horizon piggybacked.
	KindValue
	// KindDecided announces a final output; receivers may use it as the
	// sender's value for every future round.
	KindDecided
	// KindRBC carries a reliable-broadcast phase message.
	KindRBC
	// KindReport carries a witness-technique report: the set of senders
	// whose round values the reporter holds.
	KindReport
	// KindWrapped carries an inner message tagged with a coordinate index;
	// the multidimensional extension multiplexes one scalar protocol
	// instance per coordinate over a single channel.
	KindWrapped
)

// RBC phases.
const (
	RBCSend byte = iota + 1
	RBCEcho
	RBCReady
)

// Sentinel decoding errors.
var (
	ErrShort   = errors.New("wire: message truncated")
	ErrBadKind = errors.New("wire: unknown message kind")

	// Pre-wrapped per-message-type reject errors. The decoders run on the
	// adversarial hot path (a spam attacker makes every party reject
	// thousands of messages per run), so the reject path must not allocate:
	// these are built once, and errors.Is(err, ErrShort/ErrBadKind) keeps
	// working through the wrap.
	errBadKindByte    = fmt.Errorf("%w (leading byte outside the kind range)", ErrBadKind)
	errShortWrapped   = fmt.Errorf("%w: wrapped", ErrShort)
	errShortInit      = fmt.Errorf("%w: init", ErrShort)
	errShortValue     = fmt.Errorf("%w: value", ErrShort)
	errShortDecided   = fmt.Errorf("%w: decided", ErrShort)
	errShortRBC       = fmt.Errorf("%w: rbc", ErrShort)
	errBadRBCPhase    = errors.New("wire: rbc: phase outside the send/echo/ready range")
	errShortReport    = fmt.Errorf("%w: report", ErrShort)
	errShortReportIDs = fmt.Errorf("%w: report senders", ErrShort)
)

// Init is the adaptive-mode input announcement.
type Init struct {
	Value float64
}

// Value is the core round message.
type Value struct {
	Round   uint32
	Horizon uint32 // sender's current last-round estimate (adaptive mode)
	Value   float64
}

// Decided is the final-output announcement.
type Decided struct {
	Value float64
}

// RBC is a reliable-broadcast phase message for instance (Origin, Round).
type RBC struct {
	Phase  byte
	Origin uint16
	Round  uint32
	Value  float64
}

// Report is the witness-technique report: the sender IDs whose round-Round
// values the reporter has reliably delivered.
type Report struct {
	Round   uint32
	Senders []uint16
}

// Encoded message sizes (fixed-size kinds) and prefix lengths.
const (
	InitSize    = 9
	ValueSize   = 17
	DecidedSize = 9
	RBCSize     = 16
	// ReportHeader is the fixed prefix of a Report; each sender adds 2.
	ReportHeader = 7
	// WrappedHeader is the coordinate-tag prefix of a Wrapped message.
	WrappedHeader = 3
)

// The Append* functions are the buffer-reusing encoders: each appends the
// encoding of its message to dst and returns the extended slice, exactly
// like the standard library's binary.Append* family. A caller that owns a
// scratch buffer encodes without allocating: AppendValue(buf[:0], m). Both
// runtimes snapshot payloads on send (the simulator into its arena, the
// live runtime into a per-message copy), so protocol hot paths multicast
// straight from scratch buffers. The Marshal* functions remain the
// allocate-per-message convenience form and delegate to the appenders, so
// there is a single encoding definition per kind.

// AppendInit appends the encoding of an Init message to dst.
func AppendInit(dst []byte, m Init) []byte {
	dst = append(dst, byte(KindInit))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.Value))
}

// MarshalInit encodes an Init message.
func MarshalInit(m Init) []byte {
	return AppendInit(make([]byte, 0, InitSize), m)
}

// AppendValue appends the encoding of a Value message to dst.
func AppendValue(dst []byte, m Value) []byte {
	dst = append(dst, byte(KindValue))
	dst = binary.LittleEndian.AppendUint32(dst, m.Round)
	dst = binary.LittleEndian.AppendUint32(dst, m.Horizon)
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.Value))
}

// MarshalValue encodes a Value message.
func MarshalValue(m Value) []byte {
	return AppendValue(make([]byte, 0, ValueSize), m)
}

// AppendDecided appends the encoding of a Decided message to dst.
func AppendDecided(dst []byte, m Decided) []byte {
	dst = append(dst, byte(KindDecided))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.Value))
}

// MarshalDecided encodes a Decided message.
func MarshalDecided(m Decided) []byte {
	return AppendDecided(make([]byte, 0, DecidedSize), m)
}

// AppendRBC appends the encoding of an RBC phase message to dst.
func AppendRBC(dst []byte, m RBC) []byte {
	dst = append(dst, byte(KindRBC), m.Phase)
	dst = binary.LittleEndian.AppendUint16(dst, m.Origin)
	dst = binary.LittleEndian.AppendUint32(dst, m.Round)
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.Value))
}

// MarshalRBC encodes an RBC phase message.
func MarshalRBC(m RBC) []byte {
	return AppendRBC(make([]byte, 0, RBCSize), m)
}

// AppendReport appends the encoding of a witness report to dst.
func AppendReport(dst []byte, m Report) []byte {
	dst = append(dst, byte(KindReport))
	dst = binary.LittleEndian.AppendUint32(dst, m.Round)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Senders)))
	for _, s := range m.Senders {
		dst = binary.LittleEndian.AppendUint16(dst, s)
	}
	return dst
}

// MarshalReport encodes a witness report.
func MarshalReport(m Report) []byte {
	return AppendReport(make([]byte, 0, ReportHeader+2*len(m.Senders)), m)
}

// Peek returns the kind of an encoded message without decoding it.
func Peek(b []byte) (Kind, error) {
	if len(b) < 1 {
		return 0, ErrShort
	}
	k := Kind(b[0])
	if k < KindInit || k > KindWrapped {
		return 0, errBadKindByte
	}
	return k, nil
}

// AppendWrapped appends a coordinate-tagged copy of an inner message to dst.
func AppendWrapped(dst []byte, dim uint16, inner []byte) []byte {
	dst = append(dst, byte(KindWrapped))
	dst = binary.LittleEndian.AppendUint16(dst, dim)
	return append(dst, inner...)
}

// MarshalWrapped prefixes an inner message with a coordinate tag.
func MarshalWrapped(dim uint16, inner []byte) []byte {
	return AppendWrapped(make([]byte, 0, WrappedHeader+len(inner)), dim, inner)
}

// UnmarshalWrapped splits a wrapped message into its coordinate tag and
// inner bytes (which alias the input).
func UnmarshalWrapped(b []byte) (dim uint16, inner []byte, err error) {
	if len(b) < 3 || Kind(b[0]) != KindWrapped {
		return 0, nil, errShortWrapped
	}
	return binary.LittleEndian.Uint16(b[1:]), b[3:], nil
}

// UnmarshalInit decodes an Init message.
func UnmarshalInit(b []byte) (Init, error) {
	if len(b) < 9 || Kind(b[0]) != KindInit {
		return Init{}, errShortInit
	}
	return Init{Value: math.Float64frombits(binary.LittleEndian.Uint64(b[1:]))}, nil
}

// UnmarshalValue decodes a Value message.
func UnmarshalValue(b []byte) (Value, error) {
	if len(b) < 17 || Kind(b[0]) != KindValue {
		return Value{}, errShortValue
	}
	return Value{
		Round:   binary.LittleEndian.Uint32(b[1:]),
		Horizon: binary.LittleEndian.Uint32(b[5:]),
		Value:   math.Float64frombits(binary.LittleEndian.Uint64(b[9:])),
	}, nil
}

// UnmarshalDecided decodes a Decided message.
func UnmarshalDecided(b []byte) (Decided, error) {
	if len(b) < 9 || Kind(b[0]) != KindDecided {
		return Decided{}, errShortDecided
	}
	return Decided{Value: math.Float64frombits(binary.LittleEndian.Uint64(b[1:]))}, nil
}

// UnmarshalRBC decodes an RBC phase message.
func UnmarshalRBC(b []byte) (RBC, error) {
	if len(b) < 16 || Kind(b[0]) != KindRBC {
		return RBC{}, errShortRBC
	}
	m := RBC{
		Phase:  b[1],
		Origin: binary.LittleEndian.Uint16(b[2:]),
		Round:  binary.LittleEndian.Uint32(b[4:]),
		Value:  math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
	}
	if m.Phase < RBCSend || m.Phase > RBCReady {
		return RBC{}, errBadRBCPhase
	}
	return m, nil
}

// UnmarshalReport decodes a witness report into freshly allocated storage.
func UnmarshalReport(b []byte) (Report, error) {
	return UnmarshalReportInto(b, nil)
}

// UnmarshalReportInto decodes a witness report, appending the sender IDs
// to scratch (sliced to zero length first) so a caller that owns a reused
// scratch buffer decodes without allocating. The returned Senders slice
// aliases scratch when it has sufficient capacity; the caller should keep
// the returned slice as its next scratch to retain any growth.
func UnmarshalReportInto(b []byte, scratch []uint16) (Report, error) {
	if len(b) < ReportHeader || Kind(b[0]) != KindReport {
		return Report{}, errShortReport
	}
	count := int(binary.LittleEndian.Uint16(b[5:]))
	if len(b) < ReportHeader+2*count {
		return Report{}, errShortReportIDs
	}
	senders := scratch[:0]
	for i := 0; i < count; i++ {
		senders = append(senders, binary.LittleEndian.Uint16(b[ReportHeader+2*i:]))
	}
	return Report{Round: binary.LittleEndian.Uint32(b[1:]), Senders: senders}, nil
}
