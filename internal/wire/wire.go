// Package wire defines the fixed little-endian wire encoding of every
// protocol message. Encoding real bytes (rather than counting structs) is
// what makes the bit-complexity numbers in the experiment tables honest.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Kind is the first byte of every message.
type Kind byte

// Message kinds.
const (
	// KindInit carries a party's raw input during the adaptive spread
	// estimation phase.
	KindInit Kind = iota + 1
	// KindValue carries a round-tagged protocol value with the sender's
	// current round horizon piggybacked.
	KindValue
	// KindDecided announces a final output; receivers may use it as the
	// sender's value for every future round.
	KindDecided
	// KindRBC carries a reliable-broadcast phase message.
	KindRBC
	// KindReport carries a witness-technique report: the set of senders
	// whose round values the reporter holds.
	KindReport
	// KindWrapped carries an inner message tagged with a coordinate index;
	// the multidimensional extension multiplexes one scalar protocol
	// instance per coordinate over a single channel.
	KindWrapped
)

// RBC phases.
const (
	RBCSend byte = iota + 1
	RBCEcho
	RBCReady
)

// Sentinel decoding errors.
var (
	ErrShort   = errors.New("wire: message truncated")
	ErrBadKind = errors.New("wire: unknown message kind")
)

// Init is the adaptive-mode input announcement.
type Init struct {
	Value float64
}

// Value is the core round message.
type Value struct {
	Round   uint32
	Horizon uint32 // sender's current last-round estimate (adaptive mode)
	Value   float64
}

// Decided is the final-output announcement.
type Decided struct {
	Value float64
}

// RBC is a reliable-broadcast phase message for instance (Origin, Round).
type RBC struct {
	Phase  byte
	Origin uint16
	Round  uint32
	Value  float64
}

// Report is the witness-technique report: the sender IDs whose round-Round
// values the reporter has reliably delivered.
type Report struct {
	Round   uint32
	Senders []uint16
}

// MarshalInit encodes an Init message.
func MarshalInit(m Init) []byte {
	b := make([]byte, 9)
	b[0] = byte(KindInit)
	binary.LittleEndian.PutUint64(b[1:], math.Float64bits(m.Value))
	return b
}

// MarshalValue encodes a Value message.
func MarshalValue(m Value) []byte {
	b := make([]byte, 17)
	b[0] = byte(KindValue)
	binary.LittleEndian.PutUint32(b[1:], m.Round)
	binary.LittleEndian.PutUint32(b[5:], m.Horizon)
	binary.LittleEndian.PutUint64(b[9:], math.Float64bits(m.Value))
	return b
}

// MarshalDecided encodes a Decided message.
func MarshalDecided(m Decided) []byte {
	b := make([]byte, 9)
	b[0] = byte(KindDecided)
	binary.LittleEndian.PutUint64(b[1:], math.Float64bits(m.Value))
	return b
}

// MarshalRBC encodes an RBC phase message.
func MarshalRBC(m RBC) []byte {
	b := make([]byte, 16)
	b[0] = byte(KindRBC)
	b[1] = m.Phase
	binary.LittleEndian.PutUint16(b[2:], m.Origin)
	binary.LittleEndian.PutUint32(b[4:], m.Round)
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(m.Value))
	return b
}

// MarshalReport encodes a witness report.
func MarshalReport(m Report) []byte {
	b := make([]byte, 7+2*len(m.Senders))
	b[0] = byte(KindReport)
	binary.LittleEndian.PutUint32(b[1:], m.Round)
	binary.LittleEndian.PutUint16(b[5:], uint16(len(m.Senders)))
	for i, s := range m.Senders {
		binary.LittleEndian.PutUint16(b[7+2*i:], s)
	}
	return b
}

// Peek returns the kind of an encoded message without decoding it.
func Peek(b []byte) (Kind, error) {
	if len(b) < 1 {
		return 0, ErrShort
	}
	k := Kind(b[0])
	if k < KindInit || k > KindWrapped {
		return 0, fmt.Errorf("%w: %d", ErrBadKind, b[0])
	}
	return k, nil
}

// MarshalWrapped prefixes an inner message with a coordinate tag.
func MarshalWrapped(dim uint16, inner []byte) []byte {
	b := make([]byte, 3+len(inner))
	b[0] = byte(KindWrapped)
	binary.LittleEndian.PutUint16(b[1:], dim)
	copy(b[3:], inner)
	return b
}

// UnmarshalWrapped splits a wrapped message into its coordinate tag and
// inner bytes (which alias the input).
func UnmarshalWrapped(b []byte) (dim uint16, inner []byte, err error) {
	if len(b) < 3 || Kind(b[0]) != KindWrapped {
		return 0, nil, fmt.Errorf("%w: wrapped", ErrShort)
	}
	return binary.LittleEndian.Uint16(b[1:]), b[3:], nil
}

// UnmarshalInit decodes an Init message.
func UnmarshalInit(b []byte) (Init, error) {
	if len(b) < 9 || Kind(b[0]) != KindInit {
		return Init{}, fmt.Errorf("%w: init", ErrShort)
	}
	return Init{Value: math.Float64frombits(binary.LittleEndian.Uint64(b[1:]))}, nil
}

// UnmarshalValue decodes a Value message.
func UnmarshalValue(b []byte) (Value, error) {
	if len(b) < 17 || Kind(b[0]) != KindValue {
		return Value{}, fmt.Errorf("%w: value", ErrShort)
	}
	return Value{
		Round:   binary.LittleEndian.Uint32(b[1:]),
		Horizon: binary.LittleEndian.Uint32(b[5:]),
		Value:   math.Float64frombits(binary.LittleEndian.Uint64(b[9:])),
	}, nil
}

// UnmarshalDecided decodes a Decided message.
func UnmarshalDecided(b []byte) (Decided, error) {
	if len(b) < 9 || Kind(b[0]) != KindDecided {
		return Decided{}, fmt.Errorf("%w: decided", ErrShort)
	}
	return Decided{Value: math.Float64frombits(binary.LittleEndian.Uint64(b[1:]))}, nil
}

// UnmarshalRBC decodes an RBC phase message.
func UnmarshalRBC(b []byte) (RBC, error) {
	if len(b) < 16 || Kind(b[0]) != KindRBC {
		return RBC{}, fmt.Errorf("%w: rbc", ErrShort)
	}
	m := RBC{
		Phase:  b[1],
		Origin: binary.LittleEndian.Uint16(b[2:]),
		Round:  binary.LittleEndian.Uint32(b[4:]),
		Value:  math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
	}
	if m.Phase < RBCSend || m.Phase > RBCReady {
		return RBC{}, fmt.Errorf("wire: rbc: bad phase %d", m.Phase)
	}
	return m, nil
}

// UnmarshalReport decodes a witness report.
func UnmarshalReport(b []byte) (Report, error) {
	if len(b) < 7 || Kind(b[0]) != KindReport {
		return Report{}, fmt.Errorf("%w: report", ErrShort)
	}
	count := int(binary.LittleEndian.Uint16(b[5:]))
	if len(b) < 7+2*count {
		return Report{}, fmt.Errorf("%w: report senders", ErrShort)
	}
	m := Report{Round: binary.LittleEndian.Uint32(b[1:])}
	m.Senders = make([]uint16, count)
	for i := 0; i < count; i++ {
		m.Senders[i] = binary.LittleEndian.Uint16(b[7+2*i:])
	}
	return m, nil
}
