package wire

import (
	"bytes"
	"testing"
)

// TestAppendMatchesMarshal pins the appenders to the canonical encodings
// and checks scratch-buffer reuse leaves the bytes identical.
func TestAppendMatchesMarshal(t *testing.T) {
	scratch := make([]byte, 0, 64)
	cases := []struct {
		name    string
		marshal func() []byte
		app     func(dst []byte) []byte
	}{
		{"init",
			func() []byte { return MarshalInit(Init{Value: 3.5}) },
			func(dst []byte) []byte { return AppendInit(dst, Init{Value: 3.5}) }},
		{"value",
			func() []byte { return MarshalValue(Value{Round: 9, Horizon: 40, Value: -1.25}) },
			func(dst []byte) []byte { return AppendValue(dst, Value{Round: 9, Horizon: 40, Value: -1.25}) }},
		{"decided",
			func() []byte { return MarshalDecided(Decided{Value: 0.125}) },
			func(dst []byte) []byte { return AppendDecided(dst, Decided{Value: 0.125}) }},
		{"rbc",
			func() []byte { return MarshalRBC(RBC{Phase: RBCEcho, Origin: 7, Round: 3, Value: 2}) },
			func(dst []byte) []byte { return AppendRBC(dst, RBC{Phase: RBCEcho, Origin: 7, Round: 3, Value: 2}) }},
		{"report",
			func() []byte { return MarshalReport(Report{Round: 5, Senders: []uint16{1, 2, 9}}) },
			func(dst []byte) []byte { return AppendReport(dst, Report{Round: 5, Senders: []uint16{1, 2, 9}}) }},
		{"wrapped",
			func() []byte { return MarshalWrapped(4, []byte{1, 2, 3}) },
			func(dst []byte) []byte { return AppendWrapped(dst, 4, []byte{1, 2, 3}) }},
	}
	for _, c := range cases {
		want := c.marshal()
		got := c.app(scratch[:0])
		if !bytes.Equal(got, want) {
			t.Errorf("%s: append %x, marshal %x", c.name, got, want)
		}
		if cap(scratch) >= len(got) && &got[0] != &scratch[:1][0] {
			t.Errorf("%s: appender did not reuse scratch capacity", c.name)
		}
	}
}

// TestAppendSizesMatchConstants keeps the exported size constants honest.
func TestAppendSizesMatchConstants(t *testing.T) {
	if n := len(MarshalInit(Init{})); n != InitSize {
		t.Errorf("init size %d, const %d", n, InitSize)
	}
	if n := len(MarshalValue(Value{})); n != ValueSize {
		t.Errorf("value size %d, const %d", n, ValueSize)
	}
	if n := len(MarshalDecided(Decided{})); n != DecidedSize {
		t.Errorf("decided size %d, const %d", n, DecidedSize)
	}
	if n := len(MarshalRBC(RBC{Phase: RBCSend})); n != RBCSize {
		t.Errorf("rbc size %d, const %d", n, RBCSize)
	}
	if n := len(MarshalReport(Report{Senders: []uint16{1, 2}})); n != ReportHeader+4 {
		t.Errorf("report size %d, want %d", n, ReportHeader+4)
	}
	if n := len(MarshalWrapped(1, []byte{9})); n != WrappedHeader+1 {
		t.Errorf("wrapped size %d, want %d", n, WrappedHeader+1)
	}
}

// TestUnmarshalReportInto pins the decode-into-scratch semantics: the
// decoded senders alias the scratch when it has capacity, and the result
// matches the allocating decoder.
func TestUnmarshalReportInto(t *testing.T) {
	in := Report{Round: 9, Senders: []uint16{3, 0, 7, 65535}}
	b := MarshalReport(in)
	scratch := make([]uint16, 0, 8)
	out, err := UnmarshalReportInto(b, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if out.Round != in.Round || !bytes.Equal(MarshalReport(out), b) {
		t.Errorf("decode-into roundtrip: %+v", out)
	}
	if &out.Senders[0] != &scratch[:1][0] {
		t.Error("decoder did not reuse scratch capacity")
	}
	// Undersized scratch grows instead of failing.
	out, err = UnmarshalReportInto(b, make([]uint16, 0, 1))
	if err != nil || len(out.Senders) != len(in.Senders) {
		t.Errorf("undersized scratch: %+v, %v", out, err)
	}
}

// TestReportScratchZeroAllocs pins the zero-allocation report fan-in path:
// append-encode into a reused buffer, decode into a reused scratch.
func TestReportScratchZeroAllocs(t *testing.T) {
	m := Report{Round: 4, Senders: []uint16{1, 2, 5, 9}}
	buf := make([]byte, 0, ReportHeader+2*len(m.Senders))
	scratch := make([]uint16, 0, len(m.Senders))
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendReport(buf[:0], m)
		out, err := UnmarshalReportInto(buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		scratch = out.Senders[:0]
	})
	if allocs != 0 {
		t.Errorf("report scratch path allocates %.1f/op, want 0", allocs)
	}
}

// TestAppendValueZeroAllocs pins the zero-allocation reuse path.
func TestAppendValueZeroAllocs(t *testing.T) {
	buf := make([]byte, 0, ValueSize)
	m := Value{Round: 7, Horizon: 30, Value: 3.25}
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendValue(buf[:0], m)
		if _, err := UnmarshalValue(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendValue reuse path allocates %.1f/op, want 0", allocs)
	}
}
