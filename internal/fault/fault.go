// Package fault implements the adversarial party behaviors used to attack
// the approximate-agreement protocols: crash faults are expressed through
// sim.CrashPlan (including mid-multicast truncation), while the Byzantine
// behaviors here are full replacement processes that speak every wire
// dialect (plain round values, reliable-broadcast phases, witness reports)
// so the same behavior attacks every protocol in the family.
//
// Byzantine strategies deliberately do not follow the honest state machine;
// an asynchronous one-shot adversary loses no power by emitting all its
// traffic eagerly, because the scheduler already controls interleaving.
//
// This package holds the behaviors; the entry point for assigning them to
// parties is internal/scenario, whose registry couples each behavior (and
// the crash schedules) to fault-slot assignment in one declarative,
// parseable spec ("skew+equivocate/n=64,t=9"). New experiment code should
// compose scenario.Spec values rather than building Byzantine maps by
// hand.
package fault

import (
	"math"

	"repro/internal/sim"
	"repro/internal/wire"
)

// Env tells a behavior enough about the run to be maximally annoying: the
// protocol's round horizon and the promised input range.
type Env struct {
	N      int
	Rounds int
	Lo, Hi float64
}

// Behavior constructs the adversarial process for one Byzantine party.
type Behavior interface {
	// Name labels the behavior in experiment tables.
	Name() string
	// New creates the process; called once per Byzantine party.
	New(env Env) sim.Process
}

// Silent is the omission adversary: the party never sends anything. It
// forces every quorum to form without the faulty parties.
type Silent struct{}

var _ Behavior = Silent{}

// Name implements Behavior.
func (Silent) Name() string { return "silent" }

// New implements Behavior.
func (Silent) New(Env) sim.Process { return &silentProc{} }

type silentProc struct{}

func (*silentProc) Init(sim.API)                {}
func (*silentProc) Deliver(sim.PartyID, []byte) {}

// Extreme floods every round with a fixed extreme value, both as plain
// round values and as reliable broadcasts, trying to drag the honest hull
// toward (or past) one end.
type Extreme struct {
	// Value is the value to push; typically far outside the honest range.
	Value float64
}

var _ Behavior = Extreme{}

// Name implements Behavior.
func (Extreme) Name() string { return "extreme" }

// New implements Behavior.
func (b Extreme) New(env Env) sim.Process {
	return &scriptedProc{env: env, script: func(api sim.API, env Env) {
		for r := 1; r <= env.Rounds; r++ {
			api.Multicast(wire.MarshalValue(wire.Value{Round: uint32(r), Value: b.Value}))
			api.Multicast(wire.MarshalRBC(wire.RBC{
				Phase: wire.RBCSend, Origin: uint16(api.ID()), Round: uint32(r), Value: b.Value,
			}))
		}
		api.Multicast(wire.MarshalInit(wire.Init{Value: b.Value}))
		api.Multicast(wire.MarshalDecided(wire.Decided{Value: b.Value}))
	}}
}

// ExtremeRel is Extreme with a range-relative push target: the value is
// computed per run as Hi + Scale·(Hi−Lo) from the promised range the
// behavior learns through Env, so the attack stays far outside the honest
// hull whatever range an experiment (or a scenario spec) runs on.
type ExtremeRel struct {
	// Scale is how many range-widths past the high end the lie goes.
	Scale float64
}

var _ Behavior = ExtremeRel{}

// Name implements Behavior.
func (ExtremeRel) Name() string { return "extreme" }

// New implements Behavior.
func (b ExtremeRel) New(env Env) sim.Process {
	return Extreme{Value: env.Hi + b.Scale*(env.Hi-env.Lo)}.New(env)
}

// Equivocate tells the low half of the parties the low extreme and the high
// half the high extreme, every round — the canonical split-the-views attack.
// Against the witness protocol its RBC sends are equivocated too, which
// reliable broadcast is expected to neutralize (a property test relies on
// this).
type Equivocate struct {
	// Stretch widens the lie beyond the promised range by this factor of
	// the range width (0 keeps lies at the range endpoints).
	Stretch float64
}

var _ Behavior = Equivocate{}

// Name implements Behavior.
func (Equivocate) Name() string { return "equivocate" }

// New implements Behavior.
func (b Equivocate) New(env Env) sim.Process {
	width := env.Hi - env.Lo
	lo := env.Lo - b.Stretch*width
	hi := env.Hi + b.Stretch*width
	return &scriptedProc{env: env, script: func(api sim.API, env Env) {
		half := env.N / 2
		for r := 1; r <= env.Rounds; r++ {
			for p := 0; p < env.N; p++ {
				v := lo
				if p >= half {
					v = hi
				}
				api.Send(sim.PartyID(p), wire.MarshalValue(wire.Value{Round: uint32(r), Value: v}))
				api.Send(sim.PartyID(p), wire.MarshalRBC(wire.RBC{
					Phase: wire.RBCSend, Origin: uint16(api.ID()), Round: uint32(r), Value: v,
				}))
			}
		}
		half2 := env.N / 2
		for p := 0; p < env.N; p++ {
			v := lo
			if p >= half2 {
				v = hi
			}
			api.Send(sim.PartyID(p), wire.MarshalInit(wire.Init{Value: v}))
		}
	}}
}

// Spam floods random garbage: random round values (including attempts at
// NaN and infinities, which honest decoders must reject), malformed bytes,
// fake reports, and random RBC phases. It tests input sanitization as much
// as agreement.
type Spam struct{}

var _ Behavior = Spam{}

// Name implements Behavior.
func (Spam) Name() string { return "spam" }

// New implements Behavior.
func (Spam) New(env Env) sim.Process {
	return &scriptedProc{env: env, script: func(api sim.API, env Env) {
		rng := api.Rand()
		poison := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e308, -1e308}
		for r := 1; r <= env.Rounds; r++ {
			v := poison[rng.Intn(len(poison))]
			if rng.Intn(2) == 0 {
				v = env.Lo + rng.Float64()*(env.Hi-env.Lo)*10 - (env.Hi-env.Lo)*5
			}
			api.Multicast(wire.MarshalValue(wire.Value{
				Round:   uint32(rng.Intn(env.Rounds*2) + 1),
				Horizon: uint32(rng.Intn(1 << 16)),
				Value:   v,
			}))
			api.Multicast(wire.MarshalRBC(wire.RBC{
				Phase:  byte(rng.Intn(5)),
				Origin: uint16(rng.Intn(env.N + 2)),
				Round:  uint32(rng.Intn(env.Rounds*2) + 1),
				Value:  v,
			}))
			senders := make([]uint16, rng.Intn(env.N+1))
			for i := range senders {
				senders[i] = uint16(rng.Intn(env.N + 3))
			}
			api.Multicast(wire.MarshalReport(wire.Report{Round: uint32(r), Senders: senders}))
			api.Multicast([]byte{byte(rng.Intn(256)), byte(rng.Intn(256))})
			api.Multicast(nil)
		}
	}}
}

// scriptedProc runs a one-shot script at Init and ignores deliveries.
type scriptedProc struct {
	env    Env
	script func(api sim.API, env Env)
}

var _ sim.Process = (*scriptedProc)(nil)

func (s *scriptedProc) Init(api sim.API)            { s.script(api, s.env) }
func (s *scriptedProc) Deliver(sim.PartyID, []byte) {}

// Amplifier is the adaptive adversary: it tracks the extreme honest values
// it has seen and keeps replaying a value just past the most extreme one,
// per round, trying to hold the diameter open as the honest parties
// contract. Unlike the scripted behaviors it reacts to received traffic.
type Amplifier struct {
	// Push is how far past the observed extreme the lie goes, as a
	// fraction of the promised range width.
	Push float64
}

var _ Behavior = Amplifier{}

// Name implements Behavior.
func (Amplifier) Name() string { return "amplifier" }

// New implements Behavior.
func (b Amplifier) New(env Env) sim.Process {
	return &amplifierProc{env: env, push: b.Push * (env.Hi - env.Lo)}
}

type amplifierProc struct {
	env     Env
	api     sim.API
	push    float64
	lo, hi  float64
	started bool
}

var _ sim.Process = (*amplifierProc)(nil)

func (a *amplifierProc) Init(api sim.API) {
	a.api = api
	a.lo, a.hi = a.env.Lo, a.env.Hi
	a.blast()
}

func (a *amplifierProc) Deliver(_ sim.PartyID, data []byte) {
	kind, err := wire.Peek(data)
	if err != nil || kind != wire.KindValue {
		return
	}
	m, err := wire.UnmarshalValue(data)
	if err != nil || math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
		return
	}
	changed := false
	if m.Value < a.lo {
		a.lo, changed = m.Value, true
	}
	if m.Value > a.hi {
		a.hi, changed = m.Value, true
	}
	if changed {
		a.blast()
	}
}

// blast re-sends the current widened extremes for every round, split so
// half the network is pulled down and half up.
func (a *amplifierProc) blast() {
	half := a.env.N / 2
	for r := 1; r <= a.env.Rounds; r++ {
		for p := 0; p < a.env.N; p++ {
			v := a.lo - a.push
			if p >= half {
				v = a.hi + a.push
			}
			a.api.Send(sim.PartyID(p), wire.MarshalValue(wire.Value{Round: uint32(r), Value: v}))
			a.api.Send(sim.PartyID(p), wire.MarshalRBC(wire.RBC{
				Phase: wire.RBCSend, Origin: uint16(a.api.ID()), Round: uint32(r), Value: v,
			}))
		}
	}
}

// Suite returns the standard Byzantine behavior suite for the experiment
// harness. The behaviors are range-relative (they read the promised range
// from Env at instantiation), so the suite needs no parameters; the
// historical (lo, hi) arguments are retained for callers that pin the
// suite's identity against the scenario registry.
func Suite(lo, hi float64) []Behavior {
	return []Behavior{
		Silent{},
		ExtremeRel{Scale: 100},
		Equivocate{Stretch: 2},
		Spam{},
		Amplifier{Push: 1},
	}
}
