// Package fault implements the adversarial party behaviors used to attack
// the approximate-agreement protocols: crash faults are expressed through
// sim.CrashPlan (including mid-multicast truncation), while the Byzantine
// behaviors here are full replacement processes that speak every wire
// dialect (plain round values, reliable-broadcast phases, witness reports)
// so the same behavior attacks every protocol in the family.
//
// Byzantine strategies deliberately do not follow the honest state machine;
// an asynchronous one-shot adversary loses no power by emitting all its
// traffic eagerly, because the scheduler already controls interleaving.
//
// Behavior processes are pool-friendly: every behavior implements Renewer,
// so the harness run contexts revive a previous run's processes instead of
// rebuilding them, and the processes encode into reusable scratch buffers
// (runtimes snapshot payloads on send), so a warm Byzantine run allocates
// nothing — the same economy contract the honest parties follow.
//
// This package holds the behaviors; the entry point for assigning them to
// parties is internal/scenario, whose registry couples each behavior (and
// the crash schedules) to fault-slot assignment in one declarative,
// parseable spec ("skew+equivocate/n=64,t=9"). New experiment code should
// compose scenario.Spec values rather than building Byzantine maps by
// hand.
package fault

import (
	"math"

	"repro/internal/sim"
	"repro/internal/wire"
)

// Env tells a behavior enough about the run to be maximally annoying: the
// protocol's round horizon and the promised input range.
type Env struct {
	N      int
	Rounds int
	Lo, Hi float64
}

// Behavior constructs the adversarial process for one Byzantine party.
type Behavior interface {
	// Name labels the behavior in experiment tables.
	Name() string
	// New creates the process; called once per Byzantine party.
	New(env Env) sim.Process
}

// Renewer is an optional Behavior extension: a behavior that can revive a
// process built by an earlier New (of any behavior) for a new run instead
// of constructing a fresh one. Renew reports false when proc is not one of
// this behavior's process types; on true, the returned process must be
// observably identical to a fresh New(env) — the harness pins this by
// comparing pooled and fresh-construction experiment tables byte for byte.
type Renewer interface {
	Behavior
	Renew(proc sim.Process, env Env) (sim.Process, bool)
}

// Silent is the omission adversary: the party never sends anything. It
// forces every quorum to form without the faulty parties.
type Silent struct{}

var (
	_ Behavior = Silent{}
	_ Renewer  = Silent{}
)

// Name implements Behavior.
func (Silent) Name() string { return "silent" }

// New implements Behavior.
func (Silent) New(Env) sim.Process { return &silentProc{} }

// Renew implements Renewer.
func (Silent) Renew(proc sim.Process, _ Env) (sim.Process, bool) {
	p, ok := proc.(*silentProc)
	return p, ok
}

type silentProc struct{}

func (*silentProc) Init(sim.API)                {}
func (*silentProc) Deliver(sim.PartyID, []byte) {}

// Extreme floods every round with a fixed extreme value, both as plain
// round values and as reliable broadcasts, trying to drag the honest hull
// toward (or past) one end.
type Extreme struct {
	// Value is the value to push; typically far outside the honest range.
	Value float64
}

var (
	_ Behavior = Extreme{}
	_ Renewer  = Extreme{}
)

// Name implements Behavior.
func (Extreme) Name() string { return "extreme" }

// New implements Behavior.
func (b Extreme) New(env Env) sim.Process {
	return &extremeProc{env: env, value: b.Value}
}

// Renew implements Renewer.
func (b Extreme) Renew(proc sim.Process, env Env) (sim.Process, bool) {
	p, ok := proc.(*extremeProc)
	if !ok {
		return nil, false
	}
	p.env, p.value = env, b.Value
	return p, true
}

// extremeProc is Extreme's one-shot script, with a reusable wire scratch
// (the runtime snapshots payloads on send, so one buffer serves every
// message).
type extremeProc struct {
	env   Env
	value float64
	buf   []byte
}

var _ sim.Process = (*extremeProc)(nil)

func (p *extremeProc) Init(api sim.API) {
	for r := 1; r <= p.env.Rounds; r++ {
		p.buf = wire.AppendValue(p.buf[:0], wire.Value{Round: uint32(r), Value: p.value})
		api.Multicast(p.buf)
		p.buf = wire.AppendRBC(p.buf[:0], wire.RBC{
			Phase: wire.RBCSend, Origin: uint16(api.ID()), Round: uint32(r), Value: p.value,
		})
		api.Multicast(p.buf)
	}
	p.buf = wire.AppendInit(p.buf[:0], wire.Init{Value: p.value})
	api.Multicast(p.buf)
	p.buf = wire.AppendDecided(p.buf[:0], wire.Decided{Value: p.value})
	api.Multicast(p.buf)
}

func (*extremeProc) Deliver(sim.PartyID, []byte) {}

// ExtremeRel is Extreme with a range-relative push target: the value is
// computed per run as Hi + Scale·(Hi−Lo) from the promised range the
// behavior learns through Env, so the attack stays far outside the honest
// hull whatever range an experiment (or a scenario spec) runs on.
type ExtremeRel struct {
	// Scale is how many range-widths past the high end the lie goes.
	Scale float64
}

var (
	_ Behavior = ExtremeRel{}
	_ Renewer  = ExtremeRel{}
)

// Name implements Behavior.
func (ExtremeRel) Name() string { return "extreme" }

// New implements Behavior.
func (b ExtremeRel) New(env Env) sim.Process {
	return Extreme{Value: env.Hi + b.Scale*(env.Hi-env.Lo)}.New(env)
}

// Renew implements Renewer.
func (b ExtremeRel) Renew(proc sim.Process, env Env) (sim.Process, bool) {
	return Extreme{Value: env.Hi + b.Scale*(env.Hi-env.Lo)}.Renew(proc, env)
}

// Equivocate tells the low half of the parties the low extreme and the high
// half the high extreme, every round — the canonical split-the-views attack.
// Against the witness protocol its RBC sends are equivocated too, which
// reliable broadcast is expected to neutralize (a property test relies on
// this).
type Equivocate struct {
	// Stretch widens the lie beyond the promised range by this factor of
	// the range width (0 keeps lies at the range endpoints).
	Stretch float64
}

var (
	_ Behavior = Equivocate{}
	_ Renewer  = Equivocate{}
)

// Name implements Behavior.
func (Equivocate) Name() string { return "equivocate" }

// New implements Behavior.
func (b Equivocate) New(env Env) sim.Process {
	width := env.Hi - env.Lo
	return &equivocateProc{
		env: env,
		lo:  env.Lo - b.Stretch*width,
		hi:  env.Hi + b.Stretch*width,
	}
}

// Renew implements Renewer.
func (b Equivocate) Renew(proc sim.Process, env Env) (sim.Process, bool) {
	p, ok := proc.(*equivocateProc)
	if !ok {
		return nil, false
	}
	width := env.Hi - env.Lo
	p.env, p.lo, p.hi = env, env.Lo-b.Stretch*width, env.Hi+b.Stretch*width
	return p, true
}

type equivocateProc struct {
	env    Env
	lo, hi float64
	buf    []byte
}

var _ sim.Process = (*equivocateProc)(nil)

func (p *equivocateProc) Init(api sim.API) {
	half := p.env.N / 2
	for r := 1; r <= p.env.Rounds; r++ {
		for to := 0; to < p.env.N; to++ {
			v := p.lo
			if to >= half {
				v = p.hi
			}
			p.buf = wire.AppendValue(p.buf[:0], wire.Value{Round: uint32(r), Value: v})
			api.Send(sim.PartyID(to), p.buf)
			p.buf = wire.AppendRBC(p.buf[:0], wire.RBC{
				Phase: wire.RBCSend, Origin: uint16(api.ID()), Round: uint32(r), Value: v,
			})
			api.Send(sim.PartyID(to), p.buf)
		}
	}
	for to := 0; to < p.env.N; to++ {
		v := p.lo
		if to >= half {
			v = p.hi
		}
		p.buf = wire.AppendInit(p.buf[:0], wire.Init{Value: v})
		api.Send(sim.PartyID(to), p.buf)
	}
}

func (*equivocateProc) Deliver(sim.PartyID, []byte) {}

// Spam floods random garbage: random round values (including attempts at
// NaN and infinities, which honest decoders must reject), malformed bytes,
// fake reports, and random RBC phases. It tests input sanitization as much
// as agreement.
type Spam struct{}

var (
	_ Behavior = Spam{}
	_ Renewer  = Spam{}
)

// Name implements Behavior.
func (Spam) Name() string { return "spam" }

// New implements Behavior.
func (Spam) New(env Env) sim.Process { return &spamProc{env: env} }

// Renew implements Renewer.
func (Spam) Renew(proc sim.Process, env Env) (sim.Process, bool) {
	p, ok := proc.(*spamProc)
	if !ok {
		return nil, false
	}
	p.env = env
	return p, true
}

type spamProc struct {
	env     Env
	buf     []byte
	senders []uint16
	junk    [2]byte
}

var _ sim.Process = (*spamProc)(nil)

func (p *spamProc) Init(api sim.API) {
	rng := api.Rand()
	env := p.env
	poison := [...]float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e308, -1e308}
	for r := 1; r <= env.Rounds; r++ {
		v := poison[rng.Intn(len(poison))]
		if rng.Intn(2) == 0 {
			v = env.Lo + rng.Float64()*(env.Hi-env.Lo)*10 - (env.Hi-env.Lo)*5
		}
		p.buf = wire.AppendValue(p.buf[:0], wire.Value{
			Round:   uint32(rng.Intn(env.Rounds*2) + 1),
			Horizon: uint32(rng.Intn(1 << 16)),
			Value:   v,
		})
		api.Multicast(p.buf)
		p.buf = wire.AppendRBC(p.buf[:0], wire.RBC{
			Phase:  byte(rng.Intn(5)),
			Origin: uint16(rng.Intn(env.N + 2)),
			Round:  uint32(rng.Intn(env.Rounds*2) + 1),
			Value:  v,
		})
		api.Multicast(p.buf)
		if need := rng.Intn(env.N + 1); cap(p.senders) < need {
			p.senders = make([]uint16, need)
		} else {
			p.senders = p.senders[:need]
		}
		for i := range p.senders {
			p.senders[i] = uint16(rng.Intn(env.N + 3))
		}
		p.buf = wire.AppendReport(p.buf[:0], wire.Report{Round: uint32(r), Senders: p.senders})
		api.Multicast(p.buf)
		p.junk = [2]byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
		api.Multicast(p.junk[:])
		api.Multicast(nil)
	}
}

func (*spamProc) Deliver(sim.PartyID, []byte) {}

// Amplifier is the adaptive adversary: it tracks the extreme honest values
// it has seen and keeps replaying a value just past the most extreme one,
// per round, trying to hold the diameter open as the honest parties
// contract. Unlike the scripted behaviors it reacts to received traffic.
type Amplifier struct {
	// Push is how far past the observed extreme the lie goes, as a
	// fraction of the promised range width.
	Push float64
}

var (
	_ Behavior = Amplifier{}
	_ Renewer  = Amplifier{}
)

// Name implements Behavior.
func (Amplifier) Name() string { return "amplifier" }

// New implements Behavior.
func (b Amplifier) New(env Env) sim.Process {
	return &amplifierProc{env: env, push: b.Push * (env.Hi - env.Lo)}
}

// Renew implements Renewer.
func (b Amplifier) Renew(proc sim.Process, env Env) (sim.Process, bool) {
	p, ok := proc.(*amplifierProc)
	if !ok {
		return nil, false
	}
	p.env, p.push = env, b.Push*(env.Hi-env.Lo)
	p.api, p.lo, p.hi = nil, 0, 0
	return p, true
}

type amplifierProc struct {
	env    Env
	api    sim.API
	push   float64
	lo, hi float64
	buf    []byte
}

var (
	_ sim.Process      = (*amplifierProc)(nil)
	_ sim.BatchProcess = (*amplifierProc)(nil)
)

func (a *amplifierProc) Init(api sim.API) {
	a.api = api
	a.lo, a.hi = a.env.Lo, a.env.Hi
	a.blast()
}

func (a *amplifierProc) Deliver(_ sim.PartyID, data []byte) {
	a.ingest(data)
}

// DeliverBatch implements sim.BatchProcess; re-blasts keep their exact
// per-envelope trigger points, so batched and unbatched runs are
// observably identical.
func (a *amplifierProc) DeliverBatch(b *sim.Batch) {
	for env := b.Next(); env != nil; env = b.Next() {
		a.ingest(env.Data)
	}
}

func (a *amplifierProc) ingest(data []byte) {
	kind, err := wire.Peek(data)
	if err != nil || kind != wire.KindValue {
		return
	}
	m, err := wire.UnmarshalValue(data)
	if err != nil || math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
		return
	}
	changed := false
	if m.Value < a.lo {
		a.lo, changed = m.Value, true
	}
	if m.Value > a.hi {
		a.hi, changed = m.Value, true
	}
	if changed {
		a.blast()
	}
}

// blast re-sends the current widened extremes for every round, split so
// half the network is pulled down and half up.
func (a *amplifierProc) blast() {
	half := a.env.N / 2
	for r := 1; r <= a.env.Rounds; r++ {
		for to := 0; to < a.env.N; to++ {
			v := a.lo - a.push
			if to >= half {
				v = a.hi + a.push
			}
			a.buf = wire.AppendValue(a.buf[:0], wire.Value{Round: uint32(r), Value: v})
			a.api.Send(sim.PartyID(to), a.buf)
			a.buf = wire.AppendRBC(a.buf[:0], wire.RBC{
				Phase: wire.RBCSend, Origin: uint16(a.api.ID()), Round: uint32(r), Value: v,
			})
			a.api.Send(sim.PartyID(to), a.buf)
		}
	}
}

// Suite returns the standard Byzantine behavior suite for the experiment
// harness. The behaviors are range-relative (they read the promised range
// from Env at instantiation), so the suite needs no parameters; the
// historical (lo, hi) arguments are retained for callers that pin the
// suite's identity against the scenario registry.
func Suite(lo, hi float64) []Behavior {
	return []Behavior{
		Silent{},
		ExtremeRel{Scale: 100},
		Equivocate{Stretch: 2},
		Spam{},
		Amplifier{Push: 1},
	}
}
