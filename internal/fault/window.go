package fault

import (
	"math/rand"

	"repro/internal/sim"
)

// This file holds the correlated network-fault wrappers: unlike the
// Byzantine behaviors above, these do not replace a party's process —
// they wrap the run's scheduler (sim.FateScheduler) and black out
// message traffic for windows of virtual time. A darkened party keeps
// its state and its local timers; only the network drops its traffic,
// which is exactly the "crash-then-recover with pre-crash state" model
// (and what distinguishes flap from a sim.CrashPlan crash, which is
// permanent).
//
// Drop rule: a send is lost when the sender is dark at send time OR the
// recipient is dark at the message's arrival time (send time + the inner
// scheduler's delay). Both endpoints of the window are decided from
// virtual time and the spec's parameters only — no rng draws — so the
// wrappers are transparent to the scheduler rng stream and deterministic
// under capture/replay by construction.

// window is one [Start, Start+Len) blackout interval.
type window struct {
	start, length sim.Time
}

func (w window) dark(at sim.Time) bool {
	return w.length > 0 && at >= w.start && at < w.start+w.length
}

// Outage blacks out a contiguous party range [First, Last] for the
// window [Start, Start+Len): a correlated regional blackout, the
// datacenter-loses-power shape that independent per-send loss cannot
// model. Messages into, out of, and within the region are dropped while
// the window is open; traffic resumes untouched afterwards.
type Outage struct {
	Inner       sim.Scheduler
	First, Last sim.PartyID // inclusive range of dark parties
	Start, Len  sim.Time
}

var _ sim.FateScheduler = (*Outage)(nil)

func (o *Outage) in(p sim.PartyID) bool { return p >= o.First && p <= o.Last }

// Delay implements sim.Scheduler for callers that ignore fates.
func (o *Outage) Delay(env sim.Envelope, now sim.Time, rng *rand.Rand) sim.Time {
	return o.Fate(env, now, rng).Delay
}

// Fate implements sim.FateScheduler.
func (o *Outage) Fate(env sim.Envelope, now sim.Time, rng *rand.Rand) sim.Fate {
	f := sim.FateOf(o.Inner, env, now, rng)
	w := window{start: o.Start, length: o.Len}
	if (o.in(env.From) && w.dark(now)) || (o.in(env.To) && w.dark(now+f.Delay)) {
		f.Drop = true
	}
	return f
}

// Flap darkens each of the first Slots parties for one window apiece,
// staggered in time: party s is dark during [Base + s*Stagger, + Len).
// The party's process keeps running with its pre-outage state — only its
// traffic is lost — so after the window it resumes exactly where it
// stopped, the crash-then-recover shape. Raw transports typically stall
// (the in-window round traffic is gone forever); an ack/retransmit layer
// (internal/relnet) recovers by resending after the window closes.
type Flap struct {
	Inner   sim.Scheduler
	Slots   int // parties 0..Slots-1 flap
	Base    sim.Time
	Stagger sim.Time
	Len     sim.Time
}

var _ sim.FateScheduler = (*Flap)(nil)

// Delay implements sim.Scheduler for callers that ignore fates.
func (f *Flap) Delay(env sim.Envelope, now sim.Time, rng *rand.Rand) sim.Time {
	return f.Fate(env, now, rng).Delay
}

// Fate implements sim.FateScheduler.
func (f *Flap) Fate(env sim.Envelope, now sim.Time, rng *rand.Rand) sim.Fate {
	fa := sim.FateOf(f.Inner, env, now, rng)
	if f.darkAt(env.From, now) || f.darkAt(env.To, now+fa.Delay) {
		fa.Drop = true
	}
	return fa
}

func (f *Flap) darkAt(p sim.PartyID, at sim.Time) bool {
	if p < 0 || int(p) >= f.Slots {
		return false
	}
	w := window{start: f.Base + sim.Time(p)*f.Stagger, length: f.Len}
	return w.dark(at)
}
