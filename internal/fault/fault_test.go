package fault

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/wire"
)

// recorder implements sim.API and captures traffic per recipient.
type recorder struct {
	id   sim.PartyID
	n    int
	sent map[sim.PartyID][][]byte
	rng  *rand.Rand
}

var _ sim.API = (*recorder)(nil)

func newRecorder(id sim.PartyID, n int) *recorder {
	return &recorder{id: id, n: n, sent: map[sim.PartyID][][]byte{}, rng: rand.New(rand.NewSource(1))}
}

func (r *recorder) ID() sim.PartyID               { return r.id }
func (r *recorder) N() int                        { return r.n }
func (r *recorder) Rand() *rand.Rand              { return r.rng }
func (r *recorder) Decide(float64)                {}
func (r *recorder) SetTimer(sim.Time, uint64)     {}
// Send snapshots the payload, as every real runtime does (behavior procs
// encode into reusable scratch buffers and rely on it).
func (r *recorder) Send(to sim.PartyID, d []byte) {
	r.sent[to] = append(r.sent[to], append([]byte(nil), d...))
}
func (r *recorder) Multicast(d []byte) {
	for i := 0; i < r.n; i++ {
		r.Send(sim.PartyID(i), d)
	}
}

func stdEnv() Env { return Env{N: 6, Rounds: 4, Lo: 0, Hi: 10} }

func TestSilent(t *testing.T) {
	rec := newRecorder(2, 6)
	proc := Silent{}.New(stdEnv())
	proc.Init(rec)
	proc.Deliver(0, []byte{1, 2, 3})
	if len(rec.sent) != 0 {
		t.Errorf("silent behavior sent %d messages", len(rec.sent))
	}
	if (Silent{}).Name() != "silent" {
		t.Error("name mismatch")
	}
}

// TestExtremeRelScalesWithRange pins the range-relative extreme behavior:
// the pushed value must sit Scale range-widths past the high end of the
// promised range the behavior learns from Env — on any range.
func TestExtremeRelScalesWithRange(t *testing.T) {
	for _, env := range []Env{
		{N: 6, Rounds: 2, Lo: 0, Hi: 1},
		{N: 6, Rounds: 2, Lo: -50, Hi: 50},
		{N: 6, Rounds: 2, Lo: 1000, Hi: 3000},
	} {
		rec := newRecorder(2, env.N)
		ExtremeRel{Scale: 100}.New(env).Init(rec)
		want := env.Hi + 100*(env.Hi-env.Lo)
		seen := false
		for _, msgs := range rec.sent {
			for _, m := range msgs {
				if k, _ := wire.Peek(m); k != wire.KindValue {
					continue
				}
				v, err := wire.UnmarshalValue(m)
				if err != nil {
					t.Fatal(err)
				}
				seen = true
				if v.Value != want {
					t.Fatalf("range [%v,%v]: pushed %v, want %v", env.Lo, env.Hi, v.Value, want)
				}
			}
		}
		if !seen {
			t.Fatalf("range [%v,%v]: no value messages sent", env.Lo, env.Hi)
		}
	}
	if (ExtremeRel{}).Name() != "extreme" {
		t.Error("name mismatch")
	}
}

func TestExtremeSendsEveryDialect(t *testing.T) {
	rec := newRecorder(2, 6)
	Extreme{Value: 999}.New(stdEnv()).Init(rec)
	kinds := map[wire.Kind]int{}
	rounds := map[uint32]bool{}
	for _, msgs := range rec.sent {
		for _, m := range msgs {
			k, err := wire.Peek(m)
			if err != nil {
				t.Fatalf("extreme sent undecodable message: %v", err)
			}
			kinds[k]++
			if k == wire.KindValue {
				v, _ := wire.UnmarshalValue(m)
				if v.Value != 999 {
					t.Fatalf("value = %v", v.Value)
				}
				rounds[v.Round] = true
			}
		}
	}
	for _, k := range []wire.Kind{wire.KindValue, wire.KindRBC, wire.KindInit, wire.KindDecided} {
		if kinds[k] == 0 {
			t.Errorf("no messages of kind %d", k)
		}
	}
	for r := uint32(1); r <= 4; r++ {
		if !rounds[r] {
			t.Errorf("round %d not covered", r)
		}
	}
}

func TestEquivocateSplitsNetwork(t *testing.T) {
	env := stdEnv()
	rec := newRecorder(0, env.N)
	Equivocate{Stretch: 1}.New(env).Init(rec)
	// Low-half recipients must see strictly smaller VALUE payloads than
	// high-half recipients, and the two must differ (the equivocation).
	loVal, hiVal := math.Inf(1), math.Inf(-1)
	for p := 0; p < env.N; p++ {
		for _, m := range rec.sent[sim.PartyID(p)] {
			if k, _ := wire.Peek(m); k == wire.KindValue {
				v, _ := wire.UnmarshalValue(m)
				if p < env.N/2 {
					loVal = math.Min(loVal, v.Value)
				} else {
					hiVal = math.Max(hiVal, v.Value)
				}
			}
		}
	}
	if !(loVal < hiVal) {
		t.Fatalf("no equivocation: lo=%v hi=%v", loVal, hiVal)
	}
	if loVal != -10 || hiVal != 20 {
		t.Errorf("stretch wrong: lo=%v hi=%v, want -10, 20", loVal, hiVal)
	}
}

func TestSpamIsDecodableOrDroppable(t *testing.T) {
	env := stdEnv()
	rec := newRecorder(1, env.N)
	Spam{}.New(env).Init(rec)
	total := 0
	for _, msgs := range rec.sent {
		total += len(msgs)
		for _, m := range msgs {
			// Must never panic any decoder; errors are fine.
			if k, err := wire.Peek(m); err == nil {
				switch k {
				case wire.KindValue:
					_, _ = wire.UnmarshalValue(m)
				case wire.KindRBC:
					_, _ = wire.UnmarshalRBC(m)
				case wire.KindReport:
					_, _ = wire.UnmarshalReport(m)
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("spam sent nothing")
	}
}

func TestAmplifierReactsToWideningValues(t *testing.T) {
	env := stdEnv()
	rec := newRecorder(3, env.N)
	proc := Amplifier{Push: 0.5}.New(env)
	proc.Init(rec)
	initial := countAll(rec)
	if initial == 0 {
		t.Fatal("amplifier sent nothing at init")
	}
	// A value inside the known range must not trigger a re-blast.
	proc.Deliver(1, wire.MarshalValue(wire.Value{Round: 1, Value: 5}))
	if countAll(rec) != initial {
		t.Error("in-range value triggered a blast")
	}
	// A value beyond the range widens the bounds and triggers a re-blast
	// with the new extreme.
	proc.Deliver(1, wire.MarshalValue(wire.Value{Round: 1, Value: 100}))
	if countAll(rec) <= initial {
		t.Error("widening value did not trigger a blast")
	}
	// NaN and garbage are ignored.
	before := countAll(rec)
	proc.Deliver(1, wire.MarshalValue(wire.Value{Round: 1, Value: math.NaN()}))
	proc.Deliver(1, []byte{0x01})
	if countAll(rec) != before {
		t.Error("garbage triggered a blast")
	}
}

func countAll(r *recorder) int {
	total := 0
	for _, msgs := range r.sent {
		total += len(msgs)
	}
	return total
}

func TestSuite(t *testing.T) {
	suite := Suite(0, 1)
	if len(suite) != 5 {
		t.Fatalf("suite size %d", len(suite))
	}
	names := map[string]bool{}
	for _, b := range suite {
		if names[b.Name()] {
			t.Fatalf("duplicate behavior %q", b.Name())
		}
		names[b.Name()] = true
		proc := b.New(Env{N: 4, Rounds: 2, Lo: 0, Hi: 1})
		if proc == nil {
			t.Fatalf("%s: nil process", b.Name())
		}
		rec := newRecorder(0, 4)
		proc.Init(rec) // must not panic
	}
}
