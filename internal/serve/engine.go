package serve

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// Options are the robustness-envelope knobs shared by both engines.
type Options struct {
	// Workers bounds concurrent agreement instances (the worker pool).
	Workers int
	// QueueDepth bounds the admission queue; a full queue evicts the
	// lowest-priority queued request or sheds the arrival.
	QueueDepth int
	// ShedWatermark is the queue depth above which priority-0 arrivals are
	// shed pre-emptively. Defaults to 3/4 of QueueDepth.
	ShedWatermark int
	// BucketFill is the token-bucket admission rate in requests per
	// kilotick; 0 disables rate admission. BucketBurst is the bucket
	// ceiling (default 16).
	BucketFill, BucketBurst float64
	// RetryBudget is the number of re-attempts after a failed instance;
	// RetryBase is the first backoff in ticks (doubling per retry,
	// relnet-style). A retry that cannot finish before the request's
	// deadline is never scheduled.
	RetryBudget int
	RetryBase   int64
	// BreakerThreshold consecutive instance failures trip a cohort's
	// circuit breaker open; it half-opens after BreakerCooldown ticks.
	// Threshold 0 disables the breaker.
	BreakerThreshold int
	BreakerCooldown  int64
}

// withDefaults fills unset knobs.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.ShedWatermark <= 0 || o.ShedWatermark > o.QueueDepth {
		o.ShedWatermark = o.QueueDepth * 3 / 4
	}
	if o.BucketBurst <= 0 {
		o.BucketBurst = 16
	}
	if o.RetryBudget < 0 {
		o.RetryBudget = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 32
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 500
	}
	return o
}

// Config describes the agreement instances the service runs: one
// approximate-agreement execution per admitted request.
type Config struct {
	// Protocol, N, T, Eps, Lo, Hi, Adaptive are the core.Params the
	// instance runs with.
	Protocol    core.Protocol
	N, T        int
	Eps, Lo, Hi float64
	Adaptive    bool
	// Scenario is the base scenario token string without the /n=,t= params
	// — scheduler plus standing fault axes, e.g. "random" or
	// "random+loss:0.05". Disturbance windows from the workload splice
	// their own axes (outage, flap) on top per request.
	Scenario string
	// Reliable wraps honest parties in the ack/retransmit transport.
	Reliable bool
	// MaxEvents overrides the per-instance simulator event budget.
	MaxEvents int
	// Seed drives instance inputs and tie-breaking; per-request seeds are
	// derived from it and the workload's request seeds.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N, c.T = 10, 3
	}
	if c.Eps == 0 {
		c.Eps = 1e-3
	}
	if c.Lo == 0 && c.Hi == 0 {
		c.Lo, c.Hi = 0, 100
	}
	if c.Scenario == "" {
		c.Scenario = "random"
	}
	return c
}

func (c Config) params() core.Params {
	return core.Params{
		Protocol: c.Protocol, N: c.N, T: c.T,
		Eps: c.Eps, Lo: c.Lo, Hi: c.Hi, Adaptive: c.Adaptive,
	}
}

// composeScenario splices a disturbance-window axis into the base scenario
// and pins explicit n and t (the form incident bundles require).
func composeScenario(cfg Config, kind workload.WindowKind, inWindow bool) string {
	base := cfg.Scenario
	if inWindow {
		switch kind {
		case workload.WindowOutage:
			// A regional outage: the last t parties black out together for
			// a window of the instance's virtual time.
			base += fmt.Sprintf("+outage:%d:40:160", cfg.T)
		case workload.WindowFlapStorm:
			base += "+flap:60"
		}
	}
	return fmt.Sprintf("%s/n=%d,t=%d", base, cfg.N, cfg.T)
}

// attemptSeed derives the instance seed for one attempt of one request.
func attemptSeed(cfg Config, req workload.Request, attempt int) int64 {
	return cfg.Seed ^ req.Seed ^ (int64(attempt)+1)*-0x61c8864680b583eb
}

// RequestOutcome is one request's terminal record.
type RequestOutcome struct {
	ID       int
	Cohort   int
	Outcome  Outcome
	Arrival  int64
	Finish   int64 // tick the terminal outcome was recorded
	Latency  int64 // Finish - Arrival for decided/degraded; 0 otherwise
	Attempts int
	// Scenario and Seed identify the last instance attempt (for incident
	// capture); empty/0 when no attempt ran.
	Scenario string
	Seed     int64
	// Partial: the last failed attempt still decided some parties.
	Partial bool
	// Tripped: the final attempt tripped the cohort's breaker open.
	Tripped bool
}

// Summary is one engine run's service-level result.
type Summary struct {
	Counters
	Outcomes []RequestOutcome
	// Horizon is the workload horizon; End is the tick the last outcome
	// landed (>= Horizon under backlog drain).
	Horizon, End int64
	// Instances counts instance attempts that actually ran; InstanceMsgs
	// totals their protocol messages (retransmits included), so transport
	// cost shows up even when every instance still decides.
	Instances, InstanceMsgs int64

	decidedLat []int64
}

// MsgsPerInstance is the mean message cost of one instance attempt.
func (s *Summary) MsgsPerInstance() float64 {
	if s.Instances == 0 {
		return 0
	}
	return float64(s.InstanceMsgs) / float64(s.Instances)
}

// Goodput is decided requests per kilotick of elapsed service time.
func (s *Summary) Goodput() float64 {
	end := s.End
	if end < s.Horizon {
		end = s.Horizon
	}
	if end <= 0 {
		return 0
	}
	return float64(s.Decided) * 1000 / float64(end)
}

// LatencyP returns the q-quantile (0 < q <= 1) of decided-request latency
// in ticks, or 0 when nothing decided.
func (s *Summary) LatencyP(q float64) int64 {
	if len(s.decidedLat) == 0 {
		return 0
	}
	i := int(q*float64(len(s.decidedLat))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s.decidedLat) {
		i = len(s.decidedLat) - 1
	}
	return s.decidedLat[i]
}

// runningInst is one instance occupying a worker until its virtual
// completion tick. The agreement run itself executes synchronously at
// dispatch (it is a simulation); the request's drawn service time is the
// virtual duration the worker is held for.
type runningInst struct {
	p       *pending
	done    int64
	ok      bool
	partial bool
}

// Simulate runs the workload through the serving envelope in virtual time:
// deterministic, single-threaded, byte-identical across runs for a given
// (workload, config, options, seed). Every instance executes for real on
// the pooled harness run contexts; scheduling, admission, deadlines,
// retries, and breakers all advance on the workload's tick clock.
func Simulate(w workload.Spec, cfg Config, opts Options, horizon int64) (*Summary, error) {
	cfg = cfg.withDefaults()
	opts = opts.withDefaults()
	p := cfg.params()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("serve: config: %w", err)
	}
	// Pre-resolve every scenario variant the workload can demand, so a bad
	// base scenario fails before the first request.
	variants := map[string]scenario.Spec{}
	for _, s := range scenarioVariants(cfg, w) {
		scen, err := scenario.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		variants[s] = scen
	}

	reqs := w.Generate(cfg.Seed, horizon)
	env := newEnvelope(opts, len(w.EffectiveCohorts()))
	q := &reqQueue{}
	sum := &Summary{Horizon: horizon}
	free := opts.Workers
	var running []runningInst

	finish := func(p *pending, o Outcome, now int64, partial, tripped bool) {
		env.c.count(o)
		ro := RequestOutcome{
			ID: p.req.ID, Cohort: p.req.Cohort, Outcome: o,
			Arrival: p.req.Arrival, Finish: now,
			Attempts: p.attempt, Partial: partial, Tripped: tripped,
		}
		if p.attempt > 0 {
			ro.Scenario = p.scenario
			ro.Seed = p.seed
		}
		if o == OutcomeDecided || o == OutcomeDegraded {
			ro.Latency = now - p.req.Arrival
		}
		if o == OutcomeDecided {
			sum.decidedLat = append(sum.decidedLat, ro.Latency)
		}
		sum.Outcomes = append(sum.Outcomes, ro)
		if now > sum.End {
			sum.End = now
		}
	}

	now := int64(0)
	next := 0 // next arrival index
	for {
		// Choose the next event tick: arrival, completion, or a ready
		// queued request meeting a free worker.
		event := int64(-1)
		if next < len(reqs) {
			event = reqs[next].Arrival
		}
		for _, r := range running {
			if event < 0 || r.done < event {
				event = r.done
			}
		}
		if free > 0 {
			if er := q.earliestReady(); er >= 0 {
				at := er
				if at < now {
					at = now
				}
				if event < 0 || at < event {
					event = at
				}
			}
		}
		if event < 0 {
			break
		}
		if event > now {
			now = event
		}

		// 1. Completions due now: record verdicts, free workers, schedule
		// retries.
		for i := 0; i < len(running); {
			r := running[i]
			if r.done > now {
				i++
				continue
			}
			running = append(running[:i], running[i+1:]...)
			free++
			tripped := false
			if !r.ok {
				tripped = env.onAttempt(r.p.req.Cohort, false, r.done)
			} else {
				env.onAttempt(r.p.req.Cohort, true, r.done)
			}
			switch {
			case r.ok && r.done <= r.p.absDeadline():
				finish(r.p, OutcomeDecided, r.done, false, false)
			case r.ok:
				// Decided, but past the deadline: the client is gone.
				finish(r.p, OutcomeDeadline, r.done, false, false)
			default:
				r.p.failed = true
				r.p.partial = r.partial
				canRetry := r.p.attempt < 1+env.retry.budget
				nextStart := r.done + env.retry.backoff(r.p.attempt)
				fits := nextStart+r.p.req.Service <= r.p.absDeadline()
				switch {
				case canRetry && fits:
					r.p.notBefore = nextStart
					q.push(r.p)
					env.c.Retries++
				case canRetry:
					// Budget remains but the deadline cuts the retry off.
					finish(r.p, OutcomeDeadline, r.done, r.partial, tripped)
				default:
					// Budget exhausted with deadline room: serve the last
					// attempt's partial result.
					finish(r.p, OutcomeDegraded, r.done, r.partial, tripped)
				}
			}
		}

		// 2. Arrivals due now: run the admission chain.
		for next < len(reqs) && reqs[next].Arrival <= now {
			req := reqs[next]
			next++
			ad := env.admit(req.Arrival, req, q)
			if ad.victim != nil {
				finish(ad.victim, OutcomeShed, req.Arrival, false, false)
			}
			if !ad.admitted {
				finish(&pending{req: req}, ad.outcome, req.Arrival, false, false)
				continue
			}
			q.push(&pending{req: req})
		}

		// 3. Dispatch ready requests onto free workers. Requests already
		// past their deadline are finished without burning a worker.
		for free > 0 {
			p := q.popReady(now)
			if p == nil {
				break
			}
			if now >= p.absDeadline() {
				finish(p, OutcomeDeadline, now, p.partial, false)
				continue
			}
			p.attempt++
			p.scenario = composeScenario(cfg, windowKind(w, p.req), p.req.Window >= 0)
			p.seed = attemptSeed(cfg, p.req, p.attempt)
			scen := variants[p.scenario]
			inputs := harness.UniformInputs(cfg.N, cfg.Lo, cfg.Hi, p.seed)
			spec, err := harness.SpecFrom(cfg.params(), inputs, scen, p.seed)
			if err != nil {
				return nil, fmt.Errorf("serve: request %d: %w", p.req.ID, err)
			}
			spec.MaxEvents = cfg.MaxEvents
			spec.Reliable = cfg.Reliable
			rep, err := harness.Run(spec)
			if err != nil {
				return nil, fmt.Errorf("serve: request %d: %w", p.req.ID, err)
			}
			sum.Instances++
			sum.InstanceMsgs += int64(rep.Result.Stats.MessagesSent)
			ok := rep.OK()
			partial := !ok && rep.Result != nil && len(rep.Result.Decisions) > 0
			free--
			running = append(running, runningInst{p: p, done: now + p.req.Service, ok: ok, partial: partial})
		}
	}

	sum.Counters = env.c
	sort.Slice(sum.decidedLat, func(i, j int) bool { return sum.decidedLat[i] < sum.decidedLat[j] })
	if !sum.Counters.Accounted() {
		return nil, fmt.Errorf("serve: accounting violated: offered %d != outcomes %d+%d+%d+%d+%d",
			sum.Offered, sum.Decided, sum.Shed, sum.DeadlineExceeded, sum.BreakerOpen, sum.Degraded)
	}
	return sum, nil
}

// windowKind maps a request's window tag back to its kind.
func windowKind(w workload.Spec, req workload.Request) workload.WindowKind {
	if req.Window < 0 || req.Window >= len(w.Windows) {
		return 0
	}
	return w.Windows[req.Window].Kind
}

// scenarioVariants enumerates every composed scenario string the workload
// can produce against this config.
func scenarioVariants(cfg Config, w workload.Spec) []string {
	out := []string{composeScenario(cfg, 0, false)}
	seen := map[string]bool{out[0]: true}
	for _, win := range w.Windows {
		s := composeScenario(cfg, win.Kind, true)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
