package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/incident"
	"repro/internal/workload"
)

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		OutcomeDecided:     "decided",
		OutcomeShed:        "shed",
		OutcomeDeadline:    "deadline-exceeded",
		OutcomeBreakerOpen: "breaker-open",
		OutcomeDegraded:    "degraded-partial",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), s)
		}
	}
}

func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(10, 2) // 10 tokens/kilotick, burst 2
	if !b.take(0) || !b.take(0) {
		t.Fatal("burst tokens refused")
	}
	if b.take(0) {
		t.Fatal("empty bucket granted a token")
	}
	// 10/kt refills one token every 100 ticks.
	if b.take(50) {
		t.Fatal("half a token granted")
	}
	if !b.take(100) {
		t.Fatal("refilled token refused")
	}
	// Refill is capped at burst.
	if !b.take(10_000) || !b.take(10_000) || b.take(10_000) {
		t.Fatal("burst cap not enforced")
	}
	// Disabled bucket always grants.
	d := newTokenBucket(0, 1)
	for i := 0; i < 100; i++ {
		if !d.take(0) {
			t.Fatal("disabled bucket refused")
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := newBreaker(2, 100)
	if !b.allow(0) {
		t.Fatal("closed breaker refused")
	}
	b.onResult(false, 0)
	if !b.allow(1) {
		t.Fatal("one failure tripped a threshold-2 breaker")
	}
	b.onResult(false, 1)
	if b.trips != 1 {
		t.Fatalf("trips = %d after threshold failures", b.trips)
	}
	if b.allow(50) {
		t.Fatal("open breaker admitted before cooldown")
	}
	if !b.allow(101) {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.allow(102) {
		t.Fatal("half-open breaker admitted a second probe")
	}
	b.onResult(false, 102) // probe fails: reopen
	if b.trips != 2 || b.allow(103) {
		t.Fatalf("failed probe did not reopen (trips=%d)", b.trips)
	}
	if !b.allow(202) {
		t.Fatal("second half-open refused the probe")
	}
	b.onResult(true, 203) // probe succeeds: close
	if !b.allow(204) || !b.allow(205) {
		t.Fatal("closed breaker refusing after successful probe")
	}
	// A success resets the consecutive-failure count.
	b.onResult(false, 206)
	b.onResult(true, 207)
	b.onResult(false, 208)
	if !b.allow(209) {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestRetryBackoff(t *testing.T) {
	r := retryPolicy{budget: 3, base: 32}
	for attempt, want := range map[int]int64{1: 32, 2: 64, 3: 128, 10: 32 << 6} {
		if got := r.backoff(attempt); got != want {
			t.Errorf("backoff(%d) = %d, want %d", attempt, got, want)
		}
	}
}

func TestReqQueueOrder(t *testing.T) {
	q := &reqQueue{}
	mk := func(id, prio int, notBefore int64) *pending {
		return &pending{req: workload.Request{ID: id, Priority: prio}, notBefore: notBefore}
	}
	q.push(mk(0, 0, 0))
	q.push(mk(1, 2, 0))
	q.push(mk(2, 1, 0))
	q.push(mk(3, 2, 50)) // backoff-gated
	if p := q.popReady(0); p.req.ID != 1 {
		t.Fatalf("popped %d, want highest priority 1", p.req.ID)
	}
	if p := q.popReady(0); p.req.ID != 2 {
		t.Fatalf("popped %d, want 2", p.req.ID)
	}
	if e := q.earliestReady(); e != 0 {
		t.Fatalf("earliestReady = %d", e)
	}
	// Eviction takes the lowest priority strictly below the bar.
	if v := q.evictLowest(1); v == nil || v.req.ID != 0 {
		t.Fatalf("evicted %+v, want request 0", v)
	}
	if v := q.evictLowest(1); v != nil {
		t.Fatalf("evicted %+v from a queue with no priority<1 items", v)
	}
	if p := q.popReady(0); p != nil {
		t.Fatalf("gated request popped early: %+v", p)
	}
	if p := q.popReady(50); p == nil || p.req.ID != 3 {
		t.Fatal("gated request not popped at its notBefore")
	}
}

// testConfig is a small, fast instance configuration.
func testConfig() Config {
	return Config{Protocol: core.ProtoCrash, N: 5, T: 1, Eps: 1e-3, Lo: 0, Hi: 100, Seed: 5}
}

func TestSimulateDeterministic(t *testing.T) {
	w := workload.MustParse("poisson:30+lognormal:3:0.4+cohort:web:0.7:200:1+cohort:batch:0.3:800:0")
	opts := Options{Workers: 2, QueueDepth: 8, BucketFill: 25, BucketBurst: 4, RetryBudget: 1}
	a, err := Simulate(w, testConfig(), opts, 2000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(w, testConfig(), opts, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("virtual-time engine not deterministic")
	}
	if a.Offered == 0 || a.Decided == 0 {
		t.Fatalf("degenerate run: %+v", a.Counters)
	}
	if !a.Accounted() {
		t.Fatalf("accounting identity broken: %+v", a.Counters)
	}
	if a.LatencyP(0.99) < a.LatencyP(0.5) {
		t.Fatalf("p99 %d < p50 %d", a.LatencyP(0.99), a.LatencyP(0.5))
	}
}

// TestSimulateOverloadSheds drives 6x saturation through a tight bucket
// and checks the overload story: goodput per admission, everything else
// shed with attribution, nothing silently dropped.
func TestSimulateOverloadSheds(t *testing.T) {
	w := workload.MustParse("const:300+lognormal:3:0.4+cohort:web:0.7:200:1+cohort:batch:0.3:800:0")
	opts := Options{Workers: 2, QueueDepth: 8, ShedWatermark: 6, BucketFill: 60, BucketBurst: 8}
	sum, err := Simulate(w, testConfig(), opts, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Accounted() {
		t.Fatalf("accounting identity broken: %+v", sum.Counters)
	}
	if sum.Shed == 0 {
		t.Fatal("6x saturation shed nothing")
	}
	if sum.ShedBucket == 0 {
		t.Error("token bucket never engaged")
	}
	if sum.Shed != sum.ShedBucket+sum.ShedQueue+sum.ShedWatermark {
		t.Errorf("shed attribution drifted: %d != %d+%d+%d",
			sum.Shed, sum.ShedBucket, sum.ShedQueue, sum.ShedWatermark)
	}
	if sum.Decided == 0 {
		t.Fatal("overload collapsed goodput to zero")
	}
}

// TestSimulateDisturbanceWindow pins the failure path: every instance in
// the outage window stalls on the raw network, so the envelope's retries,
// degraded outcomes, and breaker all engage — and the out-of-window
// traffic keeps deciding.
func TestSimulateDisturbanceWindow(t *testing.T) {
	w := workload.MustParse("const:25+lognormal:3:0.3+cohort:web:1:600:1+outagewin:400:1200")
	cfg := testConfig()
	cfg.N, cfg.T = 10, 3
	opts := Options{Workers: 4, QueueDepth: 16, RetryBudget: 1, RetryBase: 16,
		BreakerThreshold: 3, BreakerCooldown: 400}
	sum, err := Simulate(w, cfg, opts, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Accounted() {
		t.Fatalf("accounting identity broken: %+v", sum.Counters)
	}
	if sum.Decided == 0 {
		t.Fatal("out-of-window traffic did not decide")
	}
	failed := sum.DeadlineExceeded + sum.Degraded + sum.BreakerOpen
	if failed == 0 {
		t.Fatalf("outage window produced no failures: %+v", sum.Counters)
	}
	if sum.Retries == 0 {
		t.Error("no retries under the outage window")
	}
	if sum.BreakerTrips == 0 {
		t.Error("breaker never tripped under a full outage window")
	}
	// Requests that ran carry the composed scenario of their window.
	sawOutage := false
	for _, ro := range sum.Outcomes {
		if strings.Contains(ro.Scenario, "outage:3:") {
			sawOutage = true
			break
		}
	}
	if !sawOutage {
		t.Error("no outcome carries the outage-composed scenario")
	}
}

func TestWriteArtifacts(t *testing.T) {
	w := workload.MustParse("const:25+lognormal:3:0.3+cohort:web:1:600:1+outagewin:0:2000")
	cfg := testConfig()
	cfg.N, cfg.T = 10, 3
	opts := Options{Workers: 4, QueueDepth: 16, RetryBudget: 1, RetryBase: 16,
		BreakerThreshold: 3, BreakerCooldown: 400}
	sum, err := Simulate(w, cfg, opts, 1200)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	n := WriteArtifacts(dir, sum, cfg, &buf)
	if n == 0 {
		t.Fatalf("no artifacts from an all-outage run: %+v\n%s", sum.Counters, buf.String())
	}
	if !strings.Contains(buf.String(), "reproduce: aarun -replay ") {
		t.Fatalf("no repro line printed:\n%s", buf.String())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != n {
		t.Fatalf("%d bundles on disk, writer reported %d", len(ents), n)
	}
	if n > maxArtifacts {
		t.Fatalf("artifact cap not enforced: %d", n)
	}
	// Every bundle must load, validate, and carry the outage scenario.
	for _, ent := range ents {
		b, err := incident.Load(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatalf("load %s: %v", ent.Name(), err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("validate %s: %v", ent.Name(), err)
		}
		if !strings.Contains(b.Scenario, "outage:3:") || !strings.Contains(b.Scenario, "/n=10,t=3") {
			t.Fatalf("bundle %s scenario %q lost the composed axes", ent.Name(), b.Scenario)
		}
		if len(b.Inputs) != 10 {
			t.Fatalf("bundle %s has %d inputs", ent.Name(), len(b.Inputs))
		}
	}
}

// TestE15GracefulDegradation is the acceptance bar: at 4x saturation the
// clean mix's goodput stays within 20% of the 1x plateau, with every
// rejected request accounted.
func TestE15GracefulDegradation(t *testing.T) {
	base, err := e15Workload(false)
	if err != nil {
		t.Fatal(err)
	}
	sat := base.SaturationRate(e15Workers)
	cfg := Config{Protocol: core.ProtoCrash, N: 10, T: 3, Eps: 1e-3, Lo: 0, Hi: 100,
		Scenario: "random", Seed: e15Seed}
	goodput := map[float64]float64{}
	for _, mult := range []float64{1, 4} {
		sum, err := Simulate(base.Scale(mult), cfg, e15Options(sat), e15Horizon)
		if err != nil {
			t.Fatal(err)
		}
		if !sum.Accounted() {
			t.Fatalf("%gx: accounting identity broken: %+v", mult, sum.Counters)
		}
		goodput[mult] = sum.Goodput()
		if mult == 4 && sum.Shed == 0 {
			t.Error("4x saturation shed nothing")
		}
	}
	g1, g4 := goodput[1], goodput[4]
	if g1 == 0 {
		t.Fatal("no goodput at 1x")
	}
	if diff := g4 - g1; diff < -0.2*g1 || diff > 0.2*g1 {
		t.Errorf("goodput collapsed: 4x %.1f vs 1x %.1f (>20%% apart)", g4, g1)
	}
}

func TestServeLiveSimBackend(t *testing.T) {
	w := workload.MustParse("poisson:30+lognormal:3:0.3+cohort:web:1:300:1")
	cfg := testConfig()
	sum, err := ServeLive(w, cfg, Options{Workers: 4, QueueDepth: 16}, LiveConfig{
		Backend: BackendSim, TickDur: 200 * time.Microsecond, Requests: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Offered != 24 {
		t.Fatalf("offered %d of 24", sum.Offered)
	}
	if !sum.Accounted() {
		t.Fatalf("live accounting identity broken: %+v", sum.Counters)
	}
	if sum.Decided == 0 {
		t.Fatalf("nothing decided: %+v", sum.Counters)
	}
}

// TestServeSoak is the env-gated -race soak arm (`make serve-soak`):
// heavy-tail arrivals at 2x saturation on the live backend with 10% loss
// and one flapping party over the reliable transport. It asserts the
// goodput floor and that every request is accounted — zero unshed drops.
func TestServeSoak(t *testing.T) {
	if os.Getenv("SERVE_SOAK") == "" {
		t.Skip("set SERVE_SOAK=1 to run the serving soak")
	}
	w := workload.MustParse("burst:20:8:900+pareto:40:1.5+cohort:web:0.8:600:1+cohort:batch:0.2:1500:0")
	// 2x the pool's saturation rate for this service model.
	w = w.Scale(2 * w.SaturationRate(4) / w.Arrival.Rate)
	cfg := Config{Protocol: core.ProtoCrash, N: 5, T: 1, Eps: 1e-3, Lo: 0, Hi: 100, Seed: 11}
	sum, err := ServeLive(w, cfg, Options{
		Workers: 4, QueueDepth: 16, RetryBudget: 2, RetryBase: 16,
		BreakerThreshold: 5, BreakerCooldown: 400,
	}, LiveConfig{
		Backend: BackendLive, TickDur: time.Millisecond, Requests: 32,
		Loss: 0.10, FlapParties: 1, Reliable: true,
		MaxJitter: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Offered != 32 {
		t.Fatalf("offered %d of 32", sum.Offered)
	}
	if !sum.Accounted() {
		t.Fatalf("unshed drops: %+v", sum.Counters)
	}
	// Goodput floor: under 2x overload with injected faults a meaningful
	// fraction of the offered requests must still decide. Observed steady
	// state is 8/32; the floor sits below it so wall-clock jitter on a
	// slow CI machine can flip a deadline-margin request without flaking.
	if sum.Decided < 6 {
		t.Fatalf("goodput floor broken: %d/32 decided (%+v)", sum.Decided, sum.Counters)
	}
	t.Logf("soak: %d/32 decided, shed %d, deadline %d, breaker %d, degraded %d, retries %d, trips %d",
		sum.Decided, sum.Shed, sum.DeadlineExceeded, sum.BreakerOpen, sum.Degraded,
		sum.Retries, sum.BreakerTrips)
}
