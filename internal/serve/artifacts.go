package serve

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/harness"
	"repro/internal/incident"
)

// maxArtifacts bounds how many failure bundles one summary writes: the
// point is a handful of loadable repros, not a bundle per shed request
// during a four-times-saturation storm.
const maxArtifacts = 8

// artifactWorthy selects the outcomes worth a repro bundle: an instance
// actually ran (Attempts > 0) and the request still ended deadline-exceeded
// or degraded-partial, or its final attempt tripped the cohort breaker.
// Admission-time rejections (shed, breaker-open) never ran an instance, so
// there is nothing to replay.
func artifactWorthy(ro RequestOutcome) bool {
	if ro.Attempts == 0 {
		return false
	}
	return ro.Outcome == OutcomeDeadline || ro.Outcome == OutcomeDegraded || ro.Tripped
}

// WriteArtifacts captures the summary's failed instances as loadable
// incident bundles under dir — request scenario + last-attempt seed +
// derived inputs, re-executed on the simulator and digested exactly like
// `aafuzz -artifacts` failures — and prints a one-line repro per bundle to
// w. It returns the number of bundles written. Artifact failures are
// reported on the same writer but never abort the sweep: the service
// verdict stands even when a repro cannot be written.
func WriteArtifacts(dir string, sum *Summary, cfg Config, w io.Writer) int {
	if dir == "" || sum == nil {
		return 0
	}
	cfg = cfg.withDefaults()
	tok, err := incident.ProtoToken(cfg.params().Protocol)
	if err != nil {
		fmt.Fprintf(w, "serve: artifacts: %v\n", err)
		return 0
	}
	var made bool
	written := 0
	for _, ro := range sum.Outcomes {
		if written >= maxArtifacts {
			fmt.Fprintf(w, "serve: artifacts: capped at %d bundles\n", maxArtifacts)
			break
		}
		if !artifactWorthy(ro) {
			continue
		}
		if !made {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintf(w, "serve: artifacts dir: %v\n", err)
				return 0
			}
			made = true
		}
		path, err := writeArtifact(dir, tok, cfg, ro)
		if err != nil {
			fmt.Fprintf(w, "serve: artifact for request %d: %v\n", ro.ID, err)
			continue
		}
		written++
		fmt.Fprintf(w, "request %d %s (attempts=%d): reproduce: aarun -replay %s\n",
			ro.ID, ro.Outcome, ro.Attempts, path)
	}
	return written
}

// writeArtifact captures one failed request as a bundle and returns its
// path. The bundle re-derives the instance's inputs from the recorded seed
// — the same derivation the engine used at dispatch — so the simulated
// repro is the exact instance the envelope saw (live-backend failures
// replay as their deterministic simulated twin).
func writeArtifact(dir, protoTok string, cfg Config, ro RequestOutcome) (string, error) {
	b := &incident.Bundle{
		Name:      fmt.Sprintf("serve-req-%d-%s", ro.ID, ro.Outcome),
		Scenario:  ro.Scenario,
		Protocol:  protoTok,
		Adaptive:  cfg.Adaptive,
		Eps:       cfg.Eps,
		Lo:        cfg.Lo,
		Hi:        cfg.Hi,
		Seed:      ro.Seed,
		MaxEvents: cfg.MaxEvents,
		Inputs:    harness.UniformInputs(cfg.N, cfg.Lo, cfg.Hi, ro.Seed),
		Reliable:  cfg.Reliable,
	}
	if _, err := incident.Capture(b); err != nil {
		return "", err
	}
	path := filepath.Join(dir, b.Name+incident.BundleExt)
	if err := incident.Save(b, path); err != nil {
		return "", err
	}
	return path, nil
}
