package serve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E15 sweep constants: a 4-worker service running crash-protocol instances
// at n=10, t=3, fed a two-cohort workload (web: tight deadline, priority 1;
// batch: loose deadline, sheddable priority 0) whose 1x rate is the
// analytic saturation rate of the worker pool.
const (
	e15Workers = 4
	e15Horizon = 4000
	e15Seed    = 17
)

// e15Workload builds the base (1x) workload: Poisson arrivals at exactly
// the pool's saturation rate under the lognormal(4, 0.5) service model.
// The flaky mix appends the correlated disturbance windows.
func e15Workload(flaky bool) (workload.Spec, error) {
	shape := "poisson:1+lognormal:4:0.5+cohort:web:0.7:300:1+cohort:batch:0.3:1200:0"
	if flaky {
		shape += "+outagewin:800:600+flapstorm:2400:600"
	}
	w, err := workload.Parse(shape)
	if err != nil {
		return workload.Spec{}, err
	}
	w.Arrival.Rate = w.SaturationRate(e15Workers)
	return w, nil
}

// e15Options is the envelope under test. The token bucket admits 90% of
// saturation — the knob that makes goodput plateau instead of collapse:
// everything past the bucket is shed at arrival, cheaply, so the workers
// only ever see sustainable load.
func e15Options(sat float64) Options {
	return Options{
		Workers:          e15Workers,
		QueueDepth:       64,
		ShedWatermark:    48,
		BucketFill:       0.9 * sat,
		BucketBurst:      16,
		RetryBudget:      2,
		RetryBase:        32,
		BreakerThreshold: 5,
		BreakerCooldown:  500,
	}
}

// E15Overload is the overload sweep: offered-load multiplier {0.5x, 1x,
// 2x, 4x of saturation} × fault mix {clean, lossy (5% loss + 2% dup over
// the reliable transport), flaky (raw network with correlated outage and
// flap-storm disturbance windows)} → goodput, decided-latency p50/p99, and
// the full shed/deadline/breaker/retry accounting.
//
// The acceptance bar is graceful degradation, not throughput: at 4x
// offered load the goodput column must sit within 20% of the 1x plateau
// (the bucket sheds the excess at admission), and every offered request
// must land in exactly one outcome column — the engine hard-fails the
// sweep if the accounting identity breaks. The flaky mix shows the rest of
// the envelope: instances inside disturbance windows stall on the raw
// network, burn their retry budgets, trip the batch/web breakers, and
// still leave the out-of-window traffic flowing.
func E15Overload() (*trace.Table, error) {
	tbl := trace.NewTable("E15: overload sweep — offered load x fault mix (crash-aa n=10, t=3, eps=1e-3, 4 workers, bucket at 0.9x saturation)",
		"mix", "mult", "offered/kt", "goodput/kt", "p50", "p99", "msgs/inst",
		"decided", "shed", "deadline", "brk-open", "degraded", "retries", "trips")

	mixes := []struct {
		name     string
		flaky    bool
		scenario string
		reliable bool
	}{
		{"clean", false, "random", false},
		{"lossy", false, "random+loss:0.05+dup:0.02", true},
		{"flaky", true, "random", false},
	}
	for _, mix := range mixes {
		base, err := e15Workload(mix.flaky)
		if err != nil {
			return nil, err
		}
		sat := base.SaturationRate(e15Workers)
		cfg := Config{
			Protocol: core.ProtoCrash, N: 10, T: 3,
			Eps: 1e-3, Lo: 0, Hi: 100,
			Scenario: mix.scenario, Reliable: mix.reliable,
			Seed: e15Seed,
		}
		for _, mult := range []float64{0.5, 1, 2, 4} {
			sum, err := Simulate(base.Scale(mult), cfg, e15Options(sat), e15Horizon)
			if err != nil {
				return nil, fmt.Errorf("E15 %s %gx: %w", mix.name, mult, err)
			}
			tbl.AddRow(
				mix.name,
				trace.F(mult),
				trace.F(mult*sat),
				trace.F(sum.Goodput()),
				fmt.Sprint(sum.LatencyP(0.5)),
				fmt.Sprint(sum.LatencyP(0.99)),
				trace.F(sum.MsgsPerInstance()),
				fmt.Sprint(sum.Decided),
				fmt.Sprint(sum.Shed),
				fmt.Sprint(sum.DeadlineExceeded),
				fmt.Sprint(sum.BreakerOpen),
				fmt.Sprint(sum.Degraded),
				fmt.Sprint(sum.Retries),
				fmt.Sprint(sum.BreakerTrips),
			)
		}
	}
	return tbl, nil
}
