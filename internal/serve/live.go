package serve

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/livenet"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Backend selects how the wall-clock engine executes an instance.
type Backend int

const (
	// BackendSim runs each instance on the deterministic simulator (pooled
	// harness contexts); the worker is then held for the request's modeled
	// service time so overload behaves like overload.
	BackendSim Backend = iota
	// BackendLive runs each instance as real goroutine parties over
	// internal/livenet channels; the instance's own wall-clock duration is
	// its service time, and the request deadline propagates into the
	// context deadline and livenet's SendTimeout.
	BackendLive
)

// LiveConfig configures the wall-clock engine.
type LiveConfig struct {
	Backend Backend
	// TickDur is the wall duration of one workload tick (default 1ms):
	// arrivals, deadlines, backoffs, and breaker cooldowns all scale by it.
	TickDur time.Duration
	// Requests bounds the run: the first Requests of the stream are served
	// (GenerateN), regardless of horizon.
	Requests int
	// Live-backend injection, mirroring livenet.Options.
	MaxJitter   time.Duration
	ProtoTick   time.Duration
	Loss, Dup   float64
	FlapParties int
	Restarts    int
	Reliable    bool
}

// ServeLive drives the workload through the envelope in wall-clock time: a
// generator goroutine releases requests at their arrival ticks, a bounded
// worker pool executes instances, and the same envelope state machines
// (guarded by a mutex, fed the wall clock converted to ticks) make every
// admission, shed, retry, and breaker decision. The returned Summary
// satisfies the same accounting identity as Simulate's.
func ServeLive(w workload.Spec, cfg Config, opts Options, lc LiveConfig) (*Summary, error) {
	cfg = cfg.withDefaults()
	opts = opts.withDefaults()
	p := cfg.params()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("serve: config: %w", err)
	}
	if lc.TickDur <= 0 {
		lc.TickDur = time.Millisecond
	}
	if lc.Requests <= 0 {
		lc.Requests = 32
	}
	variants := map[string]scenario.Spec{}
	for _, s := range scenarioVariants(cfg, w) {
		scen, err := scenario.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		variants[s] = scen
	}

	reqs := w.GenerateN(cfg.Seed, lc.Requests)
	env := newEnvelope(opts, len(w.EffectiveCohorts()))
	q := &reqQueue{}
	sum := &Summary{}

	var (
		mu          sync.Mutex
		genDone     bool
		outstanding int
		runErr      error
	)
	start := time.Now()
	ticksNow := func() int64 { return int64(time.Since(start) / lc.TickDur) }

	// finish records a terminal outcome; callers hold mu.
	finish := func(p *pending, o Outcome, now int64, partial, tripped bool) {
		env.c.count(o)
		ro := RequestOutcome{
			ID: p.req.ID, Cohort: p.req.Cohort, Outcome: o,
			Arrival: p.req.Arrival, Finish: now,
			Attempts: p.attempt, Partial: partial, Tripped: tripped,
		}
		if p.attempt > 0 {
			ro.Scenario = p.scenario
			ro.Seed = p.seed
		}
		if o == OutcomeDecided || o == OutcomeDegraded {
			ro.Latency = now - p.req.Arrival
		}
		if o == OutcomeDecided {
			sum.decidedLat = append(sum.decidedLat, ro.Latency)
		}
		sum.Outcomes = append(sum.Outcomes, ro)
		if now > sum.End {
			sum.End = now
		}
	}

	// Generator: release each request at its arrival tick and run the
	// admission chain under the lock.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, req := range reqs {
			due := start.Add(time.Duration(req.Arrival) * lc.TickDur)
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
			mu.Lock()
			now := ticksNow()
			ad := env.admit(now, req, q)
			if ad.victim != nil {
				outstanding--
				finish(ad.victim, OutcomeShed, now, false, false)
			}
			if ad.admitted {
				outstanding++
				q.push(&pending{req: req})
			} else {
				finish(&pending{req: req}, ad.outcome, now, false, false)
			}
			mu.Unlock()
		}
		mu.Lock()
		genDone = true
		mu.Unlock()
	}()

	worker := func() {
		defer wg.Done()
		for {
			// Claim the next ready request, or exit when the stream is
			// drained. Poll: backoff gates and arrivals are time-driven.
			mu.Lock()
			var p *pending
			for {
				if runErr != nil {
					mu.Unlock()
					return
				}
				p = q.popReady(ticksNow())
				if p != nil {
					break
				}
				if genDone && outstanding == 0 {
					mu.Unlock()
					return
				}
				mu.Unlock()
				time.Sleep(lc.TickDur / 2)
				mu.Lock()
			}
			now := ticksNow()
			if now >= p.absDeadline() {
				outstanding--
				finish(p, OutcomeDeadline, now, p.partial, false)
				mu.Unlock()
				continue
			}
			p.attempt++
			p.scenario = composeScenario(cfg, windowKind(w, p.req), p.req.Window >= 0)
			p.seed = attemptSeed(cfg, p.req, p.attempt)
			scen := variants[p.scenario]
			mu.Unlock()

			ok, partial, msgs, err := runAttempt(cfg, lc, scen, p, start)

			mu.Lock()
			if err != nil {
				if runErr == nil {
					runErr = err
				}
				mu.Unlock()
				return
			}
			sum.Instances++
			sum.InstanceMsgs += msgs
			now = ticksNow()
			tripped := env.onAttempt(p.req.Cohort, ok, now)
			switch {
			case ok && now <= p.absDeadline():
				outstanding--
				finish(p, OutcomeDecided, now, false, false)
			case ok:
				outstanding--
				finish(p, OutcomeDeadline, now, false, false)
			default:
				p.failed = true
				p.partial = partial
				canRetry := p.attempt < 1+env.retry.budget
				nextStart := now + env.retry.backoff(p.attempt)
				fits := nextStart+p.req.Service <= p.absDeadline()
				switch {
				case canRetry && fits:
					p.notBefore = nextStart
					q.push(p)
					env.c.Retries++
				case canRetry:
					outstanding--
					finish(p, OutcomeDeadline, now, partial, tripped)
				default:
					outstanding--
					finish(p, OutcomeDegraded, now, partial, tripped)
				}
			}
			mu.Unlock()
		}
	}
	for i := 0; i < opts.Workers; i++ {
		wg.Add(1)
		go worker()
	}
	wg.Wait()

	if runErr != nil {
		return nil, runErr
	}
	sum.Counters = env.c
	sum.Horizon = sum.End
	sortInt64s(sum.decidedLat)
	if !sum.Counters.Accounted() {
		return nil, fmt.Errorf("serve: live accounting violated: offered %d != outcomes %d+%d+%d+%d+%d",
			sum.Offered, sum.Decided, sum.Shed, sum.DeadlineExceeded, sum.BreakerOpen, sum.Degraded)
	}
	return sum, nil
}

// runAttempt executes one instance attempt on the configured backend.
func runAttempt(cfg Config, lc LiveConfig, scen scenario.Spec, p *pending, start time.Time) (ok, partial bool, msgs int64, err error) {
	switch lc.Backend {
	case BackendLive:
		return runLiveAttempt(cfg, lc, p, start)
	default:
		return runSimAttempt(cfg, lc, scen, p, start)
	}
}

// runSimAttempt runs the instance on the simulator, then holds the worker
// for the remainder of the request's modeled service time.
func runSimAttempt(cfg Config, lc LiveConfig, scen scenario.Spec, p *pending, start time.Time) (bool, bool, int64, error) {
	t0 := time.Now()
	inputs := harness.UniformInputs(cfg.N, cfg.Lo, cfg.Hi, p.seed)
	spec, err := harness.SpecFrom(cfg.params(), inputs, scen, p.seed)
	if err != nil {
		return false, false, 0, fmt.Errorf("serve: request %d: %w", p.req.ID, err)
	}
	spec.MaxEvents = cfg.MaxEvents
	spec.Reliable = cfg.Reliable
	rep, err := harness.Run(spec)
	if err != nil {
		return false, false, 0, fmt.Errorf("serve: request %d: %w", p.req.ID, err)
	}
	if hold := time.Duration(p.req.Service)*lc.TickDur - time.Since(t0); hold > 0 {
		time.Sleep(hold)
	}
	ok := rep.OK()
	partial := !ok && rep.Result != nil && len(rep.Result.Decisions) > 0
	return ok, partial, int64(rep.Result.Stats.MessagesSent), nil
}

// runLiveAttempt runs the instance as real goroutine parties over livenet,
// propagating the request deadline into the run context and SendTimeout.
func runLiveAttempt(cfg Config, lc LiveConfig, p *pending, start time.Time) (bool, bool, int64, error) {
	inputs := harness.UniformInputs(cfg.N, cfg.Lo, cfg.Hi, p.seed)
	procs := make([]sim.Process, cfg.N)
	for i := range procs {
		proc, err := newParty(cfg, inputs[i])
		if err != nil {
			return false, false, 0, fmt.Errorf("serve: request %d: %w", p.req.ID, err)
		}
		procs[i] = proc
	}
	deadline := start.Add(time.Duration(p.absDeadline()) * lc.TickDur)
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return false, false, 0, nil
	}
	// SendTimeout gets a quarter of the remaining budget: a request with
	// little deadline left abandons contended sends quickly instead of
	// burning its budget blocked on a full inbox.
	st := remaining / 4
	if st < time.Millisecond {
		st = time.Millisecond
	}
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	res, err := livenet.Run(ctx, procs, livenet.Options{
		MaxJitter:      lc.MaxJitter,
		Tick:           lc.ProtoTick,
		Seed:           p.seed,
		SendTimeout:    st,
		Loss:           lc.Loss,
		Dup:            lc.Dup,
		FlapParties:    lc.FlapParties,
		RestartParties: lc.Restarts,
		Reliable:       lc.Reliable,
	})
	if err != nil {
		partial := res != nil && len(res.Decisions) > 0
		var msgs int64
		if res != nil {
			msgs = res.Messages
		}
		return false, partial, msgs, nil
	}
	return liveDecisionsOK(res, cfg), false, res.Messages, nil
}

// newParty builds one protocol party for the live backend.
func newParty(cfg Config, input float64) (sim.Process, error) {
	p := cfg.params()
	switch p.Protocol {
	case core.ProtoCrash, core.ProtoByzTrim:
		return core.NewAsyncAA(p, input)
	case core.ProtoWitness:
		return core.NewWitnessAA(p, input)
	default:
		return core.NewSyncAA(p, input)
	}
}

// liveDecisionsOK checks epsilon-agreement and validity over a live run's
// decisions.
func liveDecisionsOK(res *livenet.Result, cfg Config) bool {
	if len(res.Decisions) == 0 {
		return false
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range res.Decisions {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	tol := 1e-9 * math.Max(1, math.Max(math.Abs(cfg.Lo), math.Abs(cfg.Hi)))
	return hi-lo <= cfg.Eps+tol && lo >= cfg.Lo-tol && hi <= cfg.Hi+tol
}

func sortInt64s(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
