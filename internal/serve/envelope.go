// The robustness envelope: every request admitted into the serving layer
// passes through the same chain of guards — per-cohort circuit breaker,
// token-bucket rate admission, then queue-depth and watermark shedding —
// and every rejection is attributed to exactly one structured outcome, so
// the service-level accounting identity
//
//	Offered == Decided + Shed + DeadlineExceeded + BreakerOpen + Degraded
//
// holds by construction: no request is ever silently dropped. The guards
// are pure state machines over a virtual "now" in ticks, which is what
// lets the deterministic virtual-time engine (engine.go) and the
// wall-clock engine (live.go) share them bit-for-bit.
package serve

import (
	"fmt"

	"repro/internal/workload"
)

// Outcome classifies how one request left the service.
type Outcome uint8

const (
	// OutcomeDecided: the agreement instance ran to full epsilon-agreement
	// within the deadline.
	OutcomeDecided Outcome = iota
	// OutcomeShed: rejected at admission by the token bucket, the queue
	// bound, or the watermark's priority shed — before any instance ran.
	OutcomeShed
	// OutcomeDeadline: the per-request deadline expired — in the queue,
	// or with retries that could not finish in the remaining budget.
	OutcomeDeadline
	// OutcomeBreakerOpen: rejected because the cohort's circuit breaker
	// was open.
	OutcomeBreakerOpen
	// OutcomeDegraded: the retry budget ran out with deadline to spare;
	// the request was answered with the last attempt's partial (or empty)
	// result instead of full agreement.
	OutcomeDegraded
)

func (o Outcome) String() string {
	switch o {
	case OutcomeDecided:
		return "decided"
	case OutcomeShed:
		return "shed"
	case OutcomeDeadline:
		return "deadline-exceeded"
	case OutcomeBreakerOpen:
		return "breaker-open"
	case OutcomeDegraded:
		return "degraded-partial"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Counters are the service-level counters, one per outcome plus the
// envelope's internal accounting.
type Counters struct {
	// Offered counts every generated request presented for admission.
	Offered int64
	// Admitted counts requests that entered the queue.
	Admitted int64
	// One counter per structured outcome.
	Decided, Shed, DeadlineExceeded, BreakerOpen, Degraded int64
	// Retries counts re-enqueued attempts after a failed instance.
	Retries int64
	// BreakerTrips counts closed->open transitions across cohorts.
	BreakerTrips int64
	// Shed attribution: the bucket, a full queue (incoming or evicted
	// victim), or the watermark's low-priority shed.
	ShedBucket, ShedQueue, ShedWatermark int64
}

// count records one terminal outcome.
func (c *Counters) count(o Outcome) {
	switch o {
	case OutcomeDecided:
		c.Decided++
	case OutcomeShed:
		c.Shed++
	case OutcomeDeadline:
		c.DeadlineExceeded++
	case OutcomeBreakerOpen:
		c.BreakerOpen++
	case OutcomeDegraded:
		c.Degraded++
	}
}

// Accounted reports the no-silent-drops identity: every offered request
// reached exactly one terminal outcome.
func (c Counters) Accounted() bool {
	return c.Offered == c.Decided+c.Shed+c.DeadlineExceeded+c.BreakerOpen+c.Degraded
}

// tokenBucket is the rate-admission guard: fill tokens per kilotick up to
// burst, one token per admission.
type tokenBucket struct {
	level, burst float64
	fill         float64 // tokens per kilotick; <= 0 disables the bucket
	last         int64
}

func newTokenBucket(fillPerKilotick, burst float64) tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return tokenBucket{level: burst, burst: burst, fill: fillPerKilotick}
}

func (b *tokenBucket) take(now int64) bool {
	if b.fill <= 0 {
		return true
	}
	if now > b.last {
		b.level += float64(now-b.last) * b.fill / 1000
		if b.level > b.burst {
			b.level = b.burst
		}
		b.last = now
	}
	if b.level >= 1 {
		b.level--
		return true
	}
	return false
}

// breakerState is the classic three-state circuit breaker.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker trips open after threshold consecutive instance failures,
// rejects while open, half-opens after cooldown ticks to let exactly one
// probe through, and closes again on the probe's success (re-opens on its
// failure). One breaker per cohort: a cohort whose instances keep failing
// (for example, every request in an outage window) stops burning workers
// without taking the healthy cohorts down with it.
type breaker struct {
	threshold int
	cooldown  int64

	fails    int
	state    breakerState
	openedAt int64
	probing  bool
	trips    int64
}

func newBreaker(threshold int, cooldown int64) breaker {
	return breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether an arrival may pass, transitioning open ->
// half-open when the cooldown has elapsed.
func (b *breaker) allow(now int64) bool {
	if b.threshold <= 0 {
		return true
	}
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now-b.openedAt >= b.cooldown {
			b.state = breakerHalfOpen
			b.probing = true
			return true
		}
		return false
	default: // half-open: one probe in flight
		if !b.probing {
			b.probing = true
			return true
		}
		return false
	}
}

// onResult records one instance attempt's verdict.
func (b *breaker) onResult(ok bool, now int64) {
	if b.threshold <= 0 {
		return
	}
	if ok {
		b.fails = 0
		if b.state != breakerClosed {
			b.state = breakerClosed
			b.probing = false
		}
		return
	}
	b.fails++
	if b.state == breakerHalfOpen {
		// The probe failed: straight back to open.
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		b.trips++
		return
	}
	if b.state == breakerClosed && b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
		b.trips++
	}
}

// retryPolicy is the relnet-style bounded exponential backoff: attempt k's
// retry waits Base << (k-1) ticks (shift capped), and the engine never
// schedules a retry that cannot finish before the request's deadline.
type retryPolicy struct {
	budget int   // extra attempts after the first
	base   int64 // first backoff in ticks
}

func (r retryPolicy) backoff(attempt int) int64 {
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 6 {
		shift = 6
	}
	return r.base << shift
}

// pending is one admitted request waiting in the queue (or between
// retries).
type pending struct {
	req       workload.Request
	scenario  string // composed instance scenario (explicit n, t)
	attempt   int    // completed attempts
	notBefore int64  // backoff gate; 0 = ready
	seed      int64  // last attempt's instance seed
	partial   bool   // last failed attempt still decided some parties
	failed    bool   // at least one attempt ran and failed
}

func (p *pending) absDeadline() int64 { return p.req.Arrival + p.req.Deadline }

// reqQueue is the admission queue: pop order is highest priority first,
// FIFO within a class; eviction order is lowest priority first, oldest
// within a class. Linear scans — the queue is depth-bounded by Options.
type reqQueue struct {
	items []*pending
}

func (q *reqQueue) len() int        { return len(q.items) }
func (q *reqQueue) push(p *pending) { q.items = append(q.items, p) }
func (q *reqQueue) remove(i int) *pending {
	p := q.items[i]
	q.items = append(q.items[:i], q.items[i+1:]...)
	return p
}

// popReady removes and returns the highest-priority request whose backoff
// gate has passed, or nil.
func (q *reqQueue) popReady(now int64) *pending {
	best := -1
	for i, p := range q.items {
		if p.notBefore > now {
			continue
		}
		if best < 0 || p.req.Priority > q.items[best].req.Priority {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return q.remove(best)
}

// earliestReady returns the soonest tick at which popReady could yield, or
// -1 on an empty queue.
func (q *reqQueue) earliestReady() int64 {
	if len(q.items) == 0 {
		return -1
	}
	e := int64(-1)
	for _, p := range q.items {
		if e < 0 || p.notBefore < e {
			e = p.notBefore
		}
	}
	return e
}

// evictLowest removes the oldest request of the lowest priority class
// strictly below `below`, or returns nil when nothing qualifies.
func (q *reqQueue) evictLowest(below int) *pending {
	victim := -1
	for i, p := range q.items {
		if p.req.Priority >= below {
			continue
		}
		if victim < 0 || p.req.Priority < q.items[victim].req.Priority {
			victim = i
		}
	}
	if victim < 0 {
		return nil
	}
	return q.remove(victim)
}

// envelope binds the guards and counters; both engines drive one.
type envelope struct {
	opts     Options
	bucket   tokenBucket
	breakers []breaker // one per cohort
	retry    retryPolicy
	c        Counters
}

func newEnvelope(opts Options, cohorts int) *envelope {
	e := &envelope{
		opts:   opts,
		bucket: newTokenBucket(opts.BucketFill, opts.BucketBurst),
		retry:  retryPolicy{budget: opts.RetryBudget, base: opts.RetryBase},
	}
	e.breakers = make([]breaker, cohorts)
	for i := range e.breakers {
		e.breakers[i] = newBreaker(opts.BreakerThreshold, opts.BreakerCooldown)
	}
	return e
}

// admission is one admit verdict: rejected requests carry their outcome,
// admitted ones may carry an evicted victim that must be finished as shed.
type admission struct {
	admitted bool
	outcome  Outcome  // valid when !admitted
	victim   *pending // non-nil when admission evicted a queued request
}

// admit runs the guard chain for one arrival against the current queue.
// It counts Offered/Admitted and shed attribution but NOT the terminal
// outcome — the engine records outcomes (it owns request bookkeeping).
func (e *envelope) admit(now int64, req workload.Request, q *reqQueue) admission {
	e.c.Offered++
	if !e.breakers[req.Cohort].allow(now) {
		return admission{outcome: OutcomeBreakerOpen}
	}
	if !e.bucket.take(now) {
		e.c.ShedBucket++
		return admission{outcome: OutcomeShed}
	}
	var victim *pending
	if q.len() >= e.opts.QueueDepth {
		victim = q.evictLowest(req.Priority)
		if victim == nil {
			e.c.ShedQueue++
			return admission{outcome: OutcomeShed}
		}
		e.c.ShedQueue++
	} else if q.len() >= e.opts.ShedWatermark && req.Priority <= 0 {
		// Above the watermark only priority > 0 traffic is admitted: the
		// sheddable class goes first, predictably, while there is still
		// headroom for the traffic that must not be dropped.
		e.c.ShedWatermark++
		return admission{outcome: OutcomeShed}
	}
	e.c.Admitted++
	return admission{admitted: true, victim: victim}
}

// onAttempt records an instance attempt's verdict with the cohort breaker
// and reports whether this attempt tripped it open.
func (e *envelope) onAttempt(cohort int, ok bool, now int64) (tripped bool) {
	b := &e.breakers[cohort]
	before := b.trips
	b.onResult(ok, now)
	if b.trips > before {
		e.c.BreakerTrips++
		return true
	}
	return false
}
