package relnet

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
)

// chatterProc multicasts k distinct payloads at Init and records every
// delivery it sees, keyed by (sender, payload index). It never decides, so
// a run ends when the event queue drains — i.e. when every packet has been
// delivered, acked, and retired (or given up on).
type chatterProc struct {
	k    int
	got  map[[2]int]int // {from, index} -> deliveries seen
	junk int            // deliveries that were not chatter payloads
}

func (c *chatterProc) Init(api sim.API) {
	for i := 0; i < c.k; i++ {
		api.Multicast([]byte{byte(api.ID()), byte(i)})
	}
}

func (c *chatterProc) Deliver(from sim.PartyID, data []byte) {
	if len(data) != 2 || sim.PartyID(data[0]) != from {
		c.junk++
		return
	}
	if c.got == nil {
		c.got = make(map[[2]int]int)
	}
	c.got[[2]int{int(from), int(data[1])}]++
}

// runChatter executes n relnet-wrapped chatter processes under the given
// scheduler and returns the wrappers for inspection.
func runChatter(t *testing.T, n, k int, seed int64, scheduler sim.Scheduler) ([]*Proc, []*chatterProc) {
	t.Helper()
	inner := make([]*chatterProc, n)
	wrapped := make([]*Proc, n)
	net, err := sim.New(sim.Config{N: n, Scheduler: scheduler, Seed: seed, MaxEvents: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		inner[i] = &chatterProc{k: k}
		wrapped[i] = Wrap(inner[i])
		if err := net.SetProcess(sim.PartyID(i), wrapped[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Nobody decides, so the run "stalls" by design once the queue drains;
	// any other verdict is a real failure.
	if _, err := net.Run(); err != sim.ErrStalled {
		t.Fatalf("run verdict = %v, want ErrStalled (quiescent drain)", err)
	}
	return wrapped, inner
}

// TestExactlyOnceUnderLossAndDup is the transport's core property: under
// seeded Bernoulli loss and duplication, every payload reaches every
// recipient exactly once — retransmission heals the drops, receive-side
// dedup absorbs both network duplicates and redundant retransmissions —
// and the retransmit traffic stays inside the per-packet backoff budget.
func TestExactlyOnceUnderLossAndDup(t *testing.T) {
	const n, k = 6, 8
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			var scheduler sim.Scheduler = &sched.UniformRandom{Min: 1, Max: 10}
			scheduler = &sched.Loss{Inner: scheduler, P: 0.2}
			scheduler = &sched.Dup{Inner: scheduler, P: 0.2, MaxExtra: 20}
			wrapped, inner := runChatter(t, n, k, seed, scheduler)

			var total Stats
			for i, w := range wrapped {
				st := w.TransportStats()
				total.DataSent += st.DataSent
				total.Retransmits += st.Retransmits
				total.DupsSuppressed += st.DupsSuppressed
				total.GiveUps += st.GiveUps
				if st.DataSent != int64(k*n) {
					t.Errorf("party %d sent %d data frames, want %d", i, st.DataSent, k*n)
				}
			}
			if total.GiveUps != 0 {
				t.Fatalf("%d packets abandoned; retry budget must absorb 20%% loss", total.GiveUps)
			}
			// Every packet is transmitted at most 1 + maxRetries times.
			if cap := total.DataSent * maxRetries; total.Retransmits > cap {
				t.Errorf("retransmits %d exceed per-packet budget cap %d", total.Retransmits, cap)
			}
			if total.Retransmits == 0 {
				t.Error("20% loss produced no retransmissions")
			}
			if total.DupsSuppressed == 0 {
				t.Error("20% duplication produced no dedup suppressions")
			}
			for i, c := range inner {
				if c.junk != 0 {
					t.Errorf("party %d saw %d unframed deliveries", i, c.junk)
				}
				for from := 0; from < n; from++ {
					for idx := 0; idx < k; idx++ {
						if got := c.got[[2]int{from, idx}]; got != 1 {
							t.Fatalf("party %d got payload (%d,%d) %d times, want exactly once",
								i, from, idx, got)
						}
					}
				}
			}
		})
	}
}

// TestRawPassthrough pins the framing escape hatch: traffic that does not
// carry the relnet frame leaders reaches the inner process untouched (the
// Byzantine path), and framed traffic from a wrapper arrives unframed.
func TestRawPassthrough(t *testing.T) {
	inner := &chatterProc{}
	p := Wrap(inner)
	p.Init(&nullAPI{n: 2})
	raw := []byte{3, 1, 4, 1, 5}
	p.Deliver(1, raw)
	if inner.junk != 1 {
		t.Fatalf("raw delivery did not pass through (junk=%d)", inner.junk)
	}
}

// TestResetRecycles pins the pooling contract: a reset wrapper carries no
// link state into its next run.
func TestResetRecycles(t *testing.T) {
	a := &chatterProc{}
	p := Wrap(a)
	api := &nullAPI{n: 2}
	p.Init(api)
	p.Send(1, []byte{9, 9})
	if len(p.out) != 1 || p.nextSeq[1] != 1 {
		t.Fatalf("send not tracked: out=%d nextSeq=%v", len(p.out), p.nextSeq)
	}
	b := &chatterProc{}
	p.Reset(b)
	if p.Inner() != b {
		t.Fatal("Reset did not swap the inner process")
	}
	if len(p.out) != 0 || len(p.nextSeq) != 0 || len(p.timers) != 0 || p.stats != (Stats{}) {
		t.Fatalf("Reset leaked state: out=%d nextSeq=%v timers=%d stats=%+v",
			len(p.out), p.nextSeq, len(p.timers), p.stats)
	}
}

// nullAPI satisfies sim.API for direct wrapper unit tests.
type nullAPI struct {
	n   int
	rng *rand.Rand
}

func (a *nullAPI) ID() sim.PartyID { return 0 }
func (a *nullAPI) N() int          { return a.n }
func (a *nullAPI) Rand() *rand.Rand {
	if a.rng == nil {
		a.rng = rand.New(rand.NewSource(1))
	}
	return a.rng
}
func (a *nullAPI) Send(sim.PartyID, []byte)  {}
func (a *nullAPI) Multicast([]byte)          {}
func (a *nullAPI) SetTimer(sim.Time, uint64) {}
func (a *nullAPI) Decide(float64)            {}
