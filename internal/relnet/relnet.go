// Package relnet is the reliable-transport sublayer: an ack/retransmit
// wrapper that turns a lossy network (the loss/dup/outage/flap scenario
// axes, or a real network behind internal/livenet) back into the
// reliable channels the approximate-agreement protocols assume.
//
// A relnet.Proc wraps any sim.Process. Outbound payloads are framed with
// a per-link sequence number and retransmitted on an exponential-backoff
// schedule (with rng jitter from the party's seeded source) until the
// receiver acknowledges them or the retry budget is exhausted; inbound
// frames are acknowledged and deduplicated (watermark + sparse set), so
// the inner process sees every honest payload exactly once no matter how
// often the network drops or duplicates it. Frames from senders that do
// not speak the framing (Byzantine raw traffic) pass through untouched.
//
// The wrapper is runtime-agnostic: it uses only the sim.API surface
// (Send, SetTimer, Rand), so the same code runs under the deterministic
// simulator — where E-tables sweep raw vs reliable transport under loss
// — and as the livenet send path. All retransmit timing comes from
// API.SetTimer and all jitter from API.Rand, never wall clock, so
// simulated runs capture and replay bit-for-bit (see internal/incident).
package relnet

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// Frame leader bytes. The protocol wire dialect (internal/wire) starts
// messages with kind bytes 1..6, so the leaders cannot collide with
// honest unframed traffic; raw bytes that happen to start with a leader
// can only come from a Byzantine sender, which could forge whole frames
// anyway.
const (
	frameData = 0xA7
	frameAck  = 0xA8
)

// Retransmission schedule: the first retry fires after about baseRTO
// ticks (plus jitter in [0, baseRTO/2]), each subsequent retry doubles
// the timeout, and after maxRetries unacknowledged attempts the packet
// is abandoned (GiveUps). 32 ticks comfortably covers every built-in
// scheduler's common delays (1..25), so acked packets rarely retransmit.
const (
	baseRTO    sim.Time = 32
	maxRetries          = 8
)

// timerTagBit marks the wrapper's own retransmit timers; inner-process
// timer tags pass through SetTimer unmodified and must not set it (the
// protocols here use small tags).
const timerTagBit uint64 = 1 << 63

// Stats counts the wrapper's transport work for one run.
type Stats struct {
	// DataSent counts first-copy data frames sent.
	DataSent int64
	// Retransmits counts retry copies sent after a timeout.
	Retransmits int64
	// AcksSent counts acknowledgement frames sent.
	AcksSent int64
	// DupsSuppressed counts received data frames dropped by dedup
	// (network duplicates and retransmissions of already-acked frames).
	DupsSuppressed int64
	// GiveUps counts packets abandoned after the retry budget.
	GiveUps int64
}

// packet is one unacknowledged outbound payload.
type packet struct {
	to      sim.PartyID
	seq     uint64
	payload []byte // owned copy; reused via the free list
	tries   int
	acked   bool
}

// rcvLink is the per-source dedup state: every seq <= watermark has been
// delivered, plus a sparse set of delivered seqs above it.
type rcvLink struct {
	watermark uint64
	above     map[uint64]struct{}
}

// Proc is the reliable-transport wrapper. It implements sim.Process (and
// TimerHandler) toward the runtime and sim.API toward the inner process.
// Create with Wrap, or recycle an existing one with Reset.
type Proc struct {
	inner sim.Process
	api   sim.API

	nextSeq []uint64           // per-destination next link seq (1-based)
	out     map[uint64]*packet // outstanding, keyed by link key (to, seq)
	rcv     []rcvLink          // per-source dedup
	free    []*packet          // recycled packet records

	timers map[uint64]uint64 // retransmit timer id -> link key
	nextID uint64

	buf   []byte // frame scratch (Send paths)
	stats Stats
}

var (
	_ sim.Process      = (*Proc)(nil)
	_ sim.TimerHandler = (*Proc)(nil)
	_ sim.API          = (*Proc)(nil)
	_ sim.Estimator    = (*Proc)(nil)
)

// Wrap builds a reliable-transport wrapper around a process.
func Wrap(inner sim.Process) *Proc {
	p := &Proc{}
	p.Reset(inner)
	return p
}

// Reset re-arms the wrapper around a (possibly different) inner process,
// recycling its link state, packet records, and scratch — the pool-
// friendly contract harness run contexts rely on.
func (p *Proc) Reset(inner sim.Process) {
	p.inner = inner
	p.api = nil
	p.nextSeq = p.nextSeq[:0]
	if p.out == nil {
		p.out = make(map[uint64]*packet)
	}
	for k, pk := range p.out {
		p.recycle(pk)
		delete(p.out, k)
	}
	for i := range p.rcv {
		p.rcv[i].watermark = 0
		clear(p.rcv[i].above)
	}
	p.rcv = p.rcv[:0]
	if p.timers == nil {
		p.timers = make(map[uint64]uint64)
	}
	clear(p.timers)
	p.nextID = 0
	p.stats = Stats{}
}

// Inner returns the wrapped process (the harness reads protocol state —
// estimator, error surface — through it).
func (p *Proc) Inner() sim.Process { return p.inner }

// TransportStats returns the wrapper's transport counters.
func (p *Proc) TransportStats() Stats { return p.stats }

func (p *Proc) recycle(pk *packet) {
	pk.payload = pk.payload[:0]
	pk.tries = 0
	pk.acked = false
	p.free = append(p.free, pk)
}

func linkKey(to sim.PartyID, seq uint64) uint64 {
	// Link seqs are per-destination counters; 2^48 sends per link is far
	// beyond any run, so the key packs without collision.
	return uint64(to)<<48 | seq&(1<<48-1)
}

// --- sim.Process toward the runtime ---

// Init implements sim.Process: the wrapper captures the real API and
// hands itself to the inner process as its API.
func (p *Proc) Init(api sim.API) {
	p.api = api
	p.inner.Init(p)
}

// Deliver implements sim.Process: parse the frame, ack and dedup data,
// retire acked packets, and pass raw (unframed) traffic through.
func (p *Proc) Deliver(from sim.PartyID, data []byte) {
	if len(data) >= 2 {
		switch data[0] {
		case frameData:
			if seq, n := binary.Uvarint(data[1:]); n > 0 && seq > 0 {
				p.deliverData(from, seq, data[1+n:])
				return
			}
		case frameAck:
			if seq, n := binary.Uvarint(data[1:]); n > 0 && seq > 0 && 1+n == len(data) {
				p.deliverAck(from, seq)
				return
			}
		}
	}
	// Not a frame this layer produced: a Byzantine sender talking the
	// protocol dialect directly. Hand it through unchanged.
	p.inner.Deliver(from, data)
}

func (p *Proc) deliverData(from sim.PartyID, seq uint64, payload []byte) {
	// Always ack, even duplicates: the previous ack may have been lost.
	p.buf = append(p.buf[:0], frameAck)
	p.buf = binary.AppendUvarint(p.buf, seq)
	p.stats.AcksSent++
	p.api.Send(from, p.buf)

	// Grow by reslicing within capacity: Reset leaves the recycled links
	// zeroed but with their dedup maps retained, and append(…, rcvLink{})
	// would overwrite those maps and re-allocate them every run.
	for int(from) >= len(p.rcv) {
		if len(p.rcv) < cap(p.rcv) {
			p.rcv = p.rcv[:len(p.rcv)+1]
		} else {
			p.rcv = append(p.rcv, rcvLink{})
		}
	}
	link := &p.rcv[from]
	if seq <= link.watermark {
		p.stats.DupsSuppressed++
		return
	}
	if link.above == nil {
		link.above = make(map[uint64]struct{})
	}
	if _, dup := link.above[seq]; dup {
		p.stats.DupsSuppressed++
		return
	}
	link.above[seq] = struct{}{}
	for {
		if _, ok := link.above[link.watermark+1]; !ok {
			break
		}
		link.watermark++
		delete(link.above, link.watermark)
	}
	p.inner.Deliver(from, payload)
}

func (p *Proc) deliverAck(from sim.PartyID, seq uint64) {
	key := linkKey(from, seq)
	if pk, ok := p.out[key]; ok {
		// Mark rather than delete: the pending retransmit timer still
		// references the key and retires the record when it fires.
		pk.acked = true
	}
}

// OnTimer implements sim.TimerHandler: retransmit timers (tag bit set)
// are handled here; everything else belongs to the inner process.
func (p *Proc) OnTimer(tag uint64) {
	if tag&timerTagBit == 0 {
		if th, ok := p.inner.(sim.TimerHandler); ok {
			th.OnTimer(tag)
		}
		return
	}
	key, ok := p.timers[tag&^timerTagBit]
	if !ok {
		return
	}
	delete(p.timers, tag&^timerTagBit)
	pk, ok := p.out[key]
	if !ok {
		return
	}
	if pk.acked {
		delete(p.out, key)
		p.recycle(pk)
		return
	}
	if pk.tries > maxRetries {
		p.stats.GiveUps++
		delete(p.out, key)
		p.recycle(pk)
		return
	}
	p.stats.Retransmits++
	p.sendFrame(pk)
}

// sendFrame (re)transmits a packet and arms its next retransmit timer
// with exponential backoff and seeded jitter.
func (p *Proc) sendFrame(pk *packet) {
	p.buf = append(p.buf[:0], frameData)
	p.buf = binary.AppendUvarint(p.buf, pk.seq)
	p.buf = append(p.buf, pk.payload...)
	p.api.Send(pk.to, p.buf)

	rto := baseRTO << pk.tries
	rto += sim.Time(p.api.Rand().Int63n(int64(baseRTO/2) + 1))
	pk.tries++
	p.nextID++
	p.timers[p.nextID] = linkKey(pk.to, pk.seq)
	p.api.SetTimer(rto, timerTagBit|p.nextID)
}

// --- sim.API toward the inner process ---

// ID implements sim.API.
func (p *Proc) ID() sim.PartyID { return p.api.ID() }

// N implements sim.API.
func (p *Proc) N() int { return p.api.N() }

// Rand implements sim.API.
func (p *Proc) Rand() *rand.Rand { return p.api.Rand() }

// Decide implements sim.API.
func (p *Proc) Decide(value float64) { p.api.Decide(value) }

// SetTimer implements sim.API, passing inner-process timers through.
func (p *Proc) SetTimer(delay sim.Time, tag uint64) { p.api.SetTimer(delay, tag) }

// Send implements sim.API: frame the payload with the link's next seq,
// record it for retransmission, and transmit the first copy.
func (p *Proc) Send(to sim.PartyID, data []byte) {
	for int(to) >= len(p.nextSeq) {
		p.nextSeq = append(p.nextSeq, 0)
	}
	p.nextSeq[to]++
	seq := p.nextSeq[to]

	var pk *packet
	if n := len(p.free); n > 0 {
		pk = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		pk = &packet{}
	}
	pk.to = to
	pk.seq = seq
	pk.payload = append(pk.payload[:0], data...)
	p.out[linkKey(to, seq)] = pk

	p.stats.DataSent++
	p.sendFrame(pk)
}

// Multicast implements sim.API. Frames carry per-link sequence numbers,
// so a multicast expands into per-destination sends (same order as the
// simulator's own expansion: ascending party ID).
func (p *Proc) Multicast(data []byte) {
	for to := 0; to < p.api.N(); to++ {
		p.Send(sim.PartyID(to), data)
	}
}

// --- protocol-state passthrough for the harness ---

// Snapshot forwards the crash-recovery checkpoint hook to the inner
// process. The wrapper's own link state (sequence counters, dedup
// watermarks, outstanding packets) is deliberately NOT part of the
// snapshot: resetting sequence numbers on restore would make every
// post-rejoin frame collide with the receivers' dedup watermarks, so
// transport state survives the crash the way durable connection state
// would — only protocol state rolls back.
func (p *Proc) Snapshot(buf []byte) ([]byte, error) {
	sn, ok := p.inner.(snapshotter)
	if !ok {
		return nil, fmt.Errorf("relnet: inner process %T does not support checkpointing", p.inner)
	}
	return sn.Snapshot(buf)
}

// Restore forwards the checkpoint restore to the inner process.
func (p *Proc) Restore(data []byte) error {
	sn, ok := p.inner.(snapshotter)
	if !ok {
		return fmt.Errorf("relnet: inner process %T does not support checkpointing", p.inner)
	}
	return sn.Restore(data)
}

// Rejoin forwards the catch-up hook; the re-sent traffic flows back out
// through the wrapper's Send and gets fresh link sequence numbers, so
// peers that already saw the pre-crash copies accept it.
func (p *Proc) Rejoin() {
	if sn, ok := p.inner.(snapshotter); ok {
		sn.Rejoin()
	}
}

// snapshotter mirrors core.Snapshotter / sim's structural interface.
type snapshotter interface {
	Snapshot(buf []byte) ([]byte, error)
	Restore(data []byte) error
	Rejoin()
}

// Estimate implements sim.Estimator by reading through to the inner
// process (reporting "no estimate" when it is not an estimator).
func (p *Proc) Estimate() (float64, bool) {
	if e, ok := p.inner.(sim.Estimator); ok {
		return e.Estimate()
	}
	return 0, false
}

// Err surfaces the inner process's protocol error, if it tracks one.
func (p *Proc) Err() error {
	if e, ok := p.inner.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}
