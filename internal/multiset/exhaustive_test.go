package multiset

import "testing"

// Exhaustive certification of the crash halving lemma over the vertex
// class, for every (n, t) up to n = 21.
func TestExhaustiveCrashHalving(t *testing.T) {
	for n := 3; n <= 21; n += 2 {
		tf := (n - 1) / 2
		rep, err := ExhaustiveContraction(MidExtremes{}, ViewModel{N: n, T: tf})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Gamma > 0.5+1e-12 {
			t.Errorf("n=%d t=%d: exact worst gamma %v > 0.5", n, tf, rep.Gamma)
		}
		if rep.Gamma < 0.5-1e-12 {
			t.Errorf("n=%d t=%d: exact worst gamma %v < 0.5 (bound should be tight)", n, tf, rep.Gamma)
		}
		if rep.ValidityViolated {
			t.Errorf("n=%d t=%d: validity violated in crash model", n, tf)
		}
		if rep.Trials == 0 {
			t.Fatal("no configurations enumerated")
		}
	}
}

// Exhaustive certification of the Byzantine trim lemma at the proven
// resilience n = 7t+1, including every fabricated-multiset combination
// over the grid.
func TestExhaustiveByzTrimHalving(t *testing.T) {
	for _, tf := range []int{1, 2} {
		n := 7*tf + 1
		rep, err := ExhaustiveContraction(MidExtremes{Trim: 2 * tf},
			ViewModel{N: n, T: tf, Byzantine: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Gamma > 0.5+1e-12 {
			t.Errorf("t=%d: exact worst gamma %v > 0.5", tf, rep.Gamma)
		}
		if rep.ValidityViolated {
			t.Errorf("t=%d: validity violated despite 2t trim", tf)
		}
	}
}

// One step below the proven resilience, the exact enumeration must find
// the stall.
func TestExhaustiveByzTrimStallAt7t(t *testing.T) {
	rep, err := ExhaustiveContraction(MidExtremes{Trim: 2},
		ViewModel{N: 7, T: 1, Byzantine: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gamma < 1-1e-12 {
		t.Errorf("gamma %v at n=7t; expected the exact stall (1.0)", rep.Gamma)
	}
}

// The exhaustive and randomized searches must agree on the vertex class.
func TestExhaustiveMatchesRandomized(t *testing.T) {
	vm := ViewModel{N: 9, T: 4}
	exact, err := ExhaustiveContraction(MidExtremes{}, vm)
	if err != nil {
		t.Fatal(err)
	}
	random, err := WorstContraction(MidExtremes{}, vm, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if random.Gamma > exact.Gamma+1e-9 {
		t.Errorf("randomized search %v exceeded exact vertex worst case %v",
			random.Gamma, exact.Gamma)
	}
}

func TestExhaustiveErrors(t *testing.T) {
	if _, err := ExhaustiveContraction(MidExtremes{}, ViewModel{N: 0}); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := ExhaustiveContraction(MidExtremes{Trim: 4}, ViewModel{N: 5, T: 2}); err == nil {
		t.Error("undersized view accepted")
	}
}

func TestGridCombos(t *testing.T) {
	combos := gridCombos([]float64{1, 2, 3}, 2)
	// Combinations with repetition: C(3+2-1, 2) = 6.
	if len(combos) != 6 {
		t.Fatalf("got %d combos, want 6", len(combos))
	}
	if len(gridCombos([]float64{1}, 0)) != 1 {
		t.Error("empty combo base case")
	}
}
