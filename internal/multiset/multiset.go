// Package multiset implements the sorted-multiset machinery that every
// approximate-agreement protocol is built from: the reduce (trim) and select
// operators of Dolev–Lynch–Pinter–Stark–Weihl, the approximation functions
// applied to a party's reception set each round, and tools to measure the
// worst-case per-round contraction a function achieves under adversarial
// view selection.
package multiset

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sentinel errors.
var (
	// ErrEmpty is returned when an operation needs a non-empty multiset.
	ErrEmpty = errors.New("multiset: empty multiset")
	// ErrTooSmall is returned when trimming would discard every element.
	ErrTooSmall = errors.New("multiset: multiset too small for requested trim")
	// ErrUnsorted is returned when input values are not ascending.
	ErrUnsorted = errors.New("multiset: values not sorted ascending")
)

// Sorted returns a sorted copy of values.
func Sorted(values []float64) []float64 {
	out := make([]float64, len(values))
	copy(out, values)
	sort.Float64s(out)
	return out
}

// checkSorted verifies ascending order.
func checkSorted(values []float64) error {
	for i := 1; i < len(values); i++ {
		if values[i] < values[i-1] {
			return ErrUnsorted
		}
	}
	return nil
}

// Reduce returns the multiset with the c smallest and c largest elements
// removed (the classical reduce^c operator). The input must be sorted
// ascending.
//
// The returned slice is a subslice of the input, not a copy: it shares the
// input's backing array, so writes through either alias the other and the
// result is only valid while the caller keeps the input intact. Callers
// that need an independent copy must copy explicitly; callers that only
// read (every Func in this package) can use the alias allocation-free.
func Reduce(sorted []float64, c int) ([]float64, error) {
	if err := checkSorted(sorted); err != nil {
		return nil, err
	}
	return reduceTrusted(sorted, c)
}

// reduceTrusted is Reduce for input the caller guarantees is sorted: it
// skips the O(n) checkSorted re-scan. Every per-round protocol apply goes
// through here via ApplySorted.
func reduceTrusted(sorted []float64, c int) ([]float64, error) {
	if c < 0 {
		return nil, fmt.Errorf("multiset: negative trim %d", c)
	}
	if len(sorted) <= 2*c {
		return nil, fmt.Errorf("%w: len %d, trim %d per side", ErrTooSmall, len(sorted), c)
	}
	return sorted[c : len(sorted)-c], nil
}

// Select returns every k-th element of the sorted multiset starting from the
// first (the classical select_k operator): indices 0, k, 2k, ...
func Select(sorted []float64, k int) ([]float64, error) {
	if len(sorted) > 0 && k >= 1 {
		if err := checkSorted(sorted); err != nil {
			return nil, err
		}
	}
	return SelectInto(make([]float64, 0, selectLen(len(sorted), k)), sorted, k)
}

// SelectInto is Select writing into dst's backing array (the result is
// appended to dst[:0]), so a caller with a scratch buffer of sufficient
// capacity selects without allocating. The input must be sorted ascending;
// sortedness is trusted, not re-checked. Like append, it returns the
// (possibly grown) slice.
func SelectInto(dst, sorted []float64, k int) ([]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("multiset: select step %d, need >= 1", k)
	}
	if len(sorted) == 0 {
		return nil, ErrEmpty
	}
	dst = dst[:0]
	for i := 0; i < len(sorted); i += k {
		dst = append(dst, sorted[i])
	}
	return dst, nil
}

// selectLen returns the exact output length of select_k on n elements.
func selectLen(n, k int) int {
	if k < 1 {
		return 0
	}
	return (n + k - 1) / k
}

// Mean returns the arithmetic mean.
func Mean(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values)), nil
}

// Spread returns max − min of a non-empty value slice (not necessarily
// sorted); it is the diameter of the multiset.
func Spread(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// Func is an approximation function: the rule a party applies to its sorted
// reception multiset to compute its next-round value. Implementations must
// be deterministic and permutation-invariant (they see sorted input).
type Func interface {
	// Name identifies the function in experiment tables.
	Name() string
	// Apply computes the new value from a sorted (ascending) multiset.
	Apply(sorted []float64) (float64, error)
	// MinInputs returns the smallest multiset size the function accepts.
	MinInputs() int
}

// sortedFunc is the trusted fast path implemented by every Func in this
// package: applySorted assumes (and does not re-check) that its input is
// sorted ascending, eliminating the O(n) validation scan that Apply pays on
// every call. External Func implementations that cannot provide it still
// work — ApplySorted falls back to Apply.
type sortedFunc interface {
	applySorted(sorted []float64) (float64, error)
}

// ApplySorted applies f to a multiset the caller guarantees is sorted
// ascending, using f's trusted fast path when it has one. Passing unsorted
// input is a caller bug: the result is unspecified (no error is
// guaranteed). Protocol hot loops use this via ApplyInPlace; code handling
// untrusted input should use f.Apply, which validates.
func ApplySorted(f Func, sorted []float64) (float64, error) {
	if sf, ok := f.(sortedFunc); ok {
		return sf.applySorted(sorted)
	}
	return f.Apply(sorted)
}

// ApplyInPlace sorts values in place and applies f through its trusted fast
// path. It is the zero-allocation protocol hot path: no defensive copy
// (compare Sorted) and no sortedness re-scan. The caller must own values;
// on return the slice is sorted.
func ApplyInPlace(f Func, values []float64) (float64, error) {
	sort.Float64s(values)
	return ApplySorted(f, values)
}

// MidExtremes is f(V) = (min(reduce^Trim(V)) + max(reduce^Trim(V))) / 2:
// the midpoint of the trimmed range.
//
// With Trim = 0 in the crash model it provably halves the diameter each
// asynchronous round when any two reception sets intersect (n > 2t): if x
// is a value in both views, new_i ≤ (x+max)/2 and new_j ≥ (min+x)/2, so
// |new_i − new_j| ≤ (max−min)/2.
type MidExtremes struct {
	// Trim is the number of elements discarded from each end first.
	Trim int
}

var _ Func = MidExtremes{}

// Name implements Func.
func (f MidExtremes) Name() string {
	if f.Trim == 0 {
		return "midextremes"
	}
	return fmt.Sprintf("midextremes/trim%d", f.Trim)
}

// MinInputs implements Func.
func (f MidExtremes) MinInputs() int { return 2*f.Trim + 1 }

// Apply implements Func.
func (f MidExtremes) Apply(sorted []float64) (float64, error) {
	if err := checkSorted(sorted); err != nil {
		return 0, err
	}
	return f.applySorted(sorted)
}

func (f MidExtremes) applySorted(sorted []float64) (float64, error) {
	core, err := reduceTrusted(sorted, f.Trim)
	if err != nil {
		return 0, err
	}
	return (core[0] + core[len(core)-1]) / 2, nil
}

// TrimmedMean is f(V) = mean(reduce^Trim(V)): discard the Trim smallest and
// Trim largest values, average the rest. With Trim >= t it guarantees
// validity against t Byzantine values in the multiset; the classical
// asynchronous Byzantine configuration uses Trim = 2t with n ≥ 5t+1.
type TrimmedMean struct {
	Trim int
}

var _ Func = TrimmedMean{}

// Name implements Func.
func (f TrimmedMean) Name() string { return fmt.Sprintf("trimmedmean/trim%d", f.Trim) }

// MinInputs implements Func.
func (f TrimmedMean) MinInputs() int { return 2*f.Trim + 1 }

// Apply implements Func.
func (f TrimmedMean) Apply(sorted []float64) (float64, error) {
	if err := checkSorted(sorted); err != nil {
		return 0, err
	}
	return f.applySorted(sorted)
}

func (f TrimmedMean) applySorted(sorted []float64) (float64, error) {
	core, err := reduceTrusted(sorted, f.Trim)
	if err != nil {
		return 0, err
	}
	return Mean(core)
}

// Median is f(V) = the lower median of V. Included for the function-choice
// ablation; the median alone does not guarantee convergence under all
// asynchronous adversaries, which the ablation demonstrates.
type Median struct{}

var _ Func = Median{}

// Name implements Func.
func (Median) Name() string { return "median" }

// MinInputs implements Func.
func (Median) MinInputs() int { return 1 }

// Apply implements Func.
func (m Median) Apply(sorted []float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, ErrEmpty
	}
	if err := checkSorted(sorted); err != nil {
		return 0, err
	}
	return m.applySorted(sorted)
}

func (Median) applySorted(sorted []float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, ErrEmpty
	}
	return sorted[(len(sorted)-1)/2], nil
}

// SelectDouble is the DLPSW family f_{c,k}(V) = mean(select_k(reduce^c(V))),
// the synchronous-optimal averaging rule, included for the baseline and the
// function ablation.
type SelectDouble struct {
	Trim int
	K    int
}

var _ Func = SelectDouble{}

// Name implements Func.
func (f SelectDouble) Name() string { return fmt.Sprintf("selectdouble/c%d_k%d", f.Trim, f.K) }

// MinInputs implements Func.
func (f SelectDouble) MinInputs() int { return 2*f.Trim + 1 }

// Apply implements Func.
func (f SelectDouble) Apply(sorted []float64) (float64, error) {
	if err := checkSorted(sorted); err != nil {
		return 0, err
	}
	return f.applySorted(sorted)
}

// applySorted computes mean(select_k(reduce^c(V))) by striding the reduced
// subslice directly, without materializing the selection: zero allocations.
func (f SelectDouble) applySorted(sorted []float64) (float64, error) {
	core, err := reduceTrusted(sorted, f.Trim)
	if err != nil {
		return 0, err
	}
	if f.K < 1 {
		return 0, fmt.Errorf("multiset: select step %d, need >= 1", f.K)
	}
	if len(core) == 0 {
		return 0, ErrEmpty
	}
	sum, count := 0.0, 0
	for i := 0; i < len(core); i += f.K {
		sum += core[i]
		count++
	}
	return sum / float64(count), nil
}

// RoundBudget returns the number of rounds needed to bring an initial
// spread S down to eps when each round contracts the diameter by a factor
// of at most gamma in (0,1): the least R with S·gamma^R ≤ eps. It returns
// 0 when S ≤ eps already and an error on nonsensical parameters.
func RoundBudget(s, eps, gamma float64) (int, error) {
	switch {
	case math.IsNaN(s) || math.IsInf(s, 0) || s < 0:
		return 0, fmt.Errorf("multiset: round budget: bad spread %v", s)
	case eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0):
		return 0, fmt.Errorf("multiset: round budget: bad epsilon %v", eps)
	case gamma <= 0 || gamma >= 1:
		return 0, fmt.Errorf("multiset: round budget: gamma %v outside (0,1)", gamma)
	}
	if s <= eps {
		return 0, nil
	}
	r := math.Log(s/eps) / math.Log(1/gamma)
	budget := int(math.Ceil(r))
	// Guard against floating-point edge cases at the boundary.
	for s*math.Pow(gamma, float64(budget)) > eps {
		budget++
	}
	return budget, nil
}
