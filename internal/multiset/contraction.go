package multiset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ViewModel describes how an asynchronous adversary can shape two parties'
// reception multisets in a single round.
//
// In the crash model there is a common pool of N genuine values (the current
// values of all parties); each party receives an arbitrary (N−T)-subset.
//
// In the Byzantine model there are N−T honest values; each party's multiset
// contains at least N−2T of them plus up to T values fabricated per-view
// (Byzantine senders may equivocate, so the fabricated values need not be
// consistent across views).
type ViewModel struct {
	N, T      int
	Byzantine bool
}

// Validate checks the model parameters.
func (vm ViewModel) Validate() error {
	if vm.N < 1 || vm.T < 0 || vm.T >= vm.N {
		return fmt.Errorf("multiset: view model n=%d t=%d invalid", vm.N, vm.T)
	}
	return nil
}

// ContractionReport is the outcome of an adversarial search over one round.
type ContractionReport struct {
	// Gamma is the largest observed |f(U)−f(W)| / spread(pool): a lower
	// bound on the function's worst-case per-round contraction factor.
	Gamma float64
	// ValidityViolated is true if some view produced an output outside the
	// convex hull of the genuine values.
	ValidityViolated bool
	// Trials is the number of (pool, view pair) configurations examined.
	Trials int
}

// WorstContraction searches adversarially for the configuration of values
// and reception sets that makes two parties' next-round values as far apart
// as possible, relative to the current diameter. The search combines the
// canonical structured worst case (one party sees the low end of the pool,
// the other the high end, with Byzantine values pulling outward) with
// randomized pools and subsets. The result is a lower bound on the true
// worst case; EXPERIMENTS.md reports these numbers next to the provable
// bounds.
func WorstContraction(f Func, vm ViewModel, trials int, seed int64) (ContractionReport, error) {
	if err := vm.Validate(); err != nil {
		return ContractionReport{}, err
	}
	m := vm.N - vm.T // reception set size
	if m < f.MinInputs() {
		return ContractionReport{}, fmt.Errorf(
			"multiset: view size %d below %s minimum %d", m, f.Name(), f.MinInputs())
	}
	rng := rand.New(rand.NewSource(seed))
	rep := ContractionReport{}

	consider := func(pool []float64, u, w []float64) error {
		spread := Spread(pool)
		if spread == 0 {
			return nil
		}
		su, sw := Sorted(u), Sorted(w)
		fu, err := f.Apply(su)
		if err != nil {
			return err
		}
		fw, err := f.Apply(sw)
		if err != nil {
			return err
		}
		lo, hi := minMax(pool)
		if fu < lo-1e-12 || fu > hi+1e-12 || fw < lo-1e-12 || fw > hi+1e-12 {
			rep.ValidityViolated = true
		}
		g := math.Abs(fu-fw) / spread
		if g > rep.Gamma {
			rep.Gamma = g
		}
		rep.Trials++
		return nil
	}

	// The pool holds the genuine values a view can draw from: all n current
	// values in the crash model, the n−t honest values under Byzantine
	// faults (fabricated values are added per view, not pooled).
	poolSize := vm.N
	if vm.Byzantine {
		poolSize = vm.N - vm.T
	}

	// Structured worst case: pool split between the extremes, one view takes
	// the low end, the other the high end.
	for split := 1; split < poolSize; split++ {
		pool := make([]float64, poolSize)
		for i := split; i < poolSize; i++ {
			pool[i] = 1
		}
		u, w, err := vm.extremeViews(pool, m)
		if err != nil {
			return rep, err
		}
		if err := consider(pool, u, w); err != nil {
			return rep, err
		}
	}

	// Randomized search.
	for i := 0; i < trials; i++ {
		pool := make([]float64, poolSize)
		for j := range pool {
			switch rng.Intn(3) {
			case 0:
				pool[j] = 0
			case 1:
				pool[j] = 1
			default:
				pool[j] = rng.Float64()
			}
		}
		u, err := vm.randomView(pool, m, rng)
		if err != nil {
			return rep, err
		}
		w, err := vm.randomView(pool, m, rng)
		if err != nil {
			return rep, err
		}
		if err := consider(pool, u, w); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// extremeViews builds the canonical adversarial view pair: view u prefers
// the smallest pool values, view w the largest. In the Byzantine model the
// pool holds the N−T honest values, each view takes N−2T of them plus T
// fabricated extremes (far below for u, far above for w) — the exact shape
// of a reception set under maximal equivocation.
func (vm ViewModel) extremeViews(pool []float64, m int) (u, w []float64, err error) {
	sorted := Sorted(pool)
	if !vm.Byzantine {
		if len(sorted) < m {
			return nil, nil, fmt.Errorf("multiset: pool smaller than view")
		}
		u = append([]float64(nil), sorted[:m]...)
		w = append([]float64(nil), sorted[len(sorted)-m:]...)
		return u, w, nil
	}
	honest := m - vm.T
	if len(sorted) < honest {
		return nil, nil, fmt.Errorf("multiset: pool smaller than honest view part")
	}
	const out = 1e6
	u = append([]float64(nil), sorted[:honest]...)
	w = append([]float64(nil), sorted[len(sorted)-honest:]...)
	for i := 0; i < vm.T; i++ {
		u = append(u, -out)
		w = append(w, out)
	}
	return u, w, nil
}

// randomView draws a view. In the crash model it is a random m-subset of
// the n-value pool. In the Byzantine model the pool holds the N−T honest
// values and the view takes m−b of them plus b <= T fabricated values.
func (vm ViewModel) randomView(pool []float64, m int, rng *rand.Rand) ([]float64, error) {
	b := 0
	if vm.Byzantine {
		b = rng.Intn(vm.T + 1)
	}
	honest := m - b
	if honest > len(pool) {
		honest = len(pool)
	}
	idx := rng.Perm(len(pool))[:honest]
	sort.Ints(idx)
	view := make([]float64, 0, m)
	for _, j := range idx {
		view = append(view, pool[j])
	}
	for i := 0; i < b; i++ {
		switch rng.Intn(4) {
		case 0:
			view = append(view, -1e6)
		case 1:
			view = append(view, 1e6)
		case 2:
			view = append(view, 0.5)
		default:
			view = append(view, rng.Float64())
		}
	}
	return view, nil
}

func minMax(values []float64) (lo, hi float64) {
	lo, hi = values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
