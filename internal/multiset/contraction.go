package multiset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ViewModel describes how an asynchronous adversary can shape two parties'
// reception multisets in a single round.
//
// In the crash model there is a common pool of N genuine values (the current
// values of all parties); each party receives an arbitrary (N−T)-subset.
//
// In the Byzantine model there are N−T honest values; each party's multiset
// contains at least N−2T of them plus up to T values fabricated per-view
// (Byzantine senders may equivocate, so the fabricated values need not be
// consistent across views).
type ViewModel struct {
	N, T      int
	Byzantine bool
}

// Validate checks the model parameters.
func (vm ViewModel) Validate() error {
	if vm.N < 1 || vm.T < 0 || vm.T >= vm.N {
		return fmt.Errorf("multiset: view model n=%d t=%d invalid", vm.N, vm.T)
	}
	return nil
}

// ContractionReport is the outcome of an adversarial search over one round.
type ContractionReport struct {
	// Gamma is the largest observed |f(U)−f(W)| / spread(pool): a lower
	// bound on the function's worst-case per-round contraction factor.
	Gamma float64
	// ValidityViolated is true if some view produced an output outside the
	// convex hull of the genuine values.
	ValidityViolated bool
	// Trials is the number of (pool, view pair) configurations examined.
	Trials int
}

// contractionSearch holds the scratch state of one WorstContraction call.
// Every buffer is allocated once up front and reused across all structured
// and randomized trials, so the per-trial cost is free of allocations: the
// pool, the two views, the sorted-pool staging area, and the index table
// for the in-place partial Fisher–Yates subset draw.
type contractionSearch struct {
	f   Func
	vm  ViewModel
	m   int // reception set size
	rng *rand.Rand
	rep ContractionReport

	pool       []float64 // genuine values, len poolSize
	sortedPool []float64 // sorted staging copy of pool
	u, w       []float64 // the two reception views, cap m
	idx        []int     // Fisher–Yates index table, len poolSize
}

// WorstContraction searches adversarially for the configuration of values
// and reception sets that makes two parties' next-round values as far apart
// as possible, relative to the current diameter. The search combines the
// canonical structured worst case (one party sees the low end of the pool,
// the other the high end, with Byzantine values pulling outward) with
// randomized pools and subsets. The result is a lower bound on the true
// worst case; EXPERIMENTS.md reports these numbers next to the provable
// bounds.
func WorstContraction(f Func, vm ViewModel, trials int, seed int64) (ContractionReport, error) {
	if err := vm.Validate(); err != nil {
		return ContractionReport{}, err
	}
	m := vm.N - vm.T // reception set size
	if m < f.MinInputs() {
		return ContractionReport{}, fmt.Errorf(
			"multiset: view size %d below %s minimum %d", m, f.Name(), f.MinInputs())
	}
	// The pool holds the genuine values a view can draw from: all n current
	// values in the crash model, the n−t honest values under Byzantine
	// faults (fabricated values are added per view, not pooled).
	poolSize := vm.N
	if vm.Byzantine {
		poolSize = vm.N - vm.T
	}
	s := &contractionSearch{
		f:          f,
		vm:         vm,
		m:          m,
		rng:        rand.New(rand.NewSource(seed)),
		pool:       make([]float64, poolSize),
		sortedPool: make([]float64, poolSize),
		u:          make([]float64, 0, m),
		w:          make([]float64, 0, m),
		idx:        make([]int, poolSize),
	}

	// Structured worst case: pool split between the extremes, one view takes
	// the low end, the other the high end.
	for split := 1; split < poolSize; split++ {
		for i := range s.pool {
			if i < split {
				s.pool[i] = 0
			} else {
				s.pool[i] = 1
			}
		}
		if err := s.extremeViews(); err != nil {
			return s.rep, err
		}
		if err := s.consider(); err != nil {
			return s.rep, err
		}
	}

	// Randomized search.
	for i := 0; i < trials; i++ {
		for j := range s.pool {
			switch s.rng.Intn(3) {
			case 0:
				s.pool[j] = 0
			case 1:
				s.pool[j] = 1
			default:
				s.pool[j] = s.rng.Float64()
			}
		}
		s.u = s.randomView(s.u)
		s.w = s.randomView(s.w)
		if err := s.consider(); err != nil {
			return s.rep, err
		}
	}
	return s.rep, nil
}

// consider scores the current (pool, u, w) configuration. The views are
// scratch owned by the search, so they are sorted in place and applied
// through the trusted fast path — no copies, no re-validation.
func (s *contractionSearch) consider() error {
	spread := Spread(s.pool)
	if spread == 0 {
		return nil
	}
	sort.Float64s(s.u)
	sort.Float64s(s.w)
	fu, err := ApplySorted(s.f, s.u)
	if err != nil {
		return err
	}
	fw, err := ApplySorted(s.f, s.w)
	if err != nil {
		return err
	}
	lo, hi := minMax(s.pool)
	if fu < lo-1e-12 || fu > hi+1e-12 || fw < lo-1e-12 || fw > hi+1e-12 {
		s.rep.ValidityViolated = true
	}
	g := math.Abs(fu-fw) / spread
	if g > s.rep.Gamma {
		s.rep.Gamma = g
	}
	s.rep.Trials++
	return nil
}

// extremeViews builds the canonical adversarial view pair into the u/w
// scratch: view u prefers the smallest pool values, view w the largest. In
// the Byzantine model the pool holds the N−T honest values, each view takes
// N−2T of them plus T fabricated extremes (far below for u, far above for
// w) — the exact shape of a reception set under maximal equivocation.
func (s *contractionSearch) extremeViews() error {
	sorted := s.sortedPool
	copy(sorted, s.pool)
	sort.Float64s(sorted)
	if !s.vm.Byzantine {
		if len(sorted) < s.m {
			return fmt.Errorf("multiset: pool smaller than view")
		}
		s.u = append(s.u[:0], sorted[:s.m]...)
		s.w = append(s.w[:0], sorted[len(sorted)-s.m:]...)
		return nil
	}
	honest := s.m - s.vm.T
	if len(sorted) < honest {
		return fmt.Errorf("multiset: pool smaller than honest view part")
	}
	const out = 1e6
	s.u = append(s.u[:0], sorted[:honest]...)
	s.w = append(s.w[:0], sorted[len(sorted)-honest:]...)
	for i := 0; i < s.vm.T; i++ {
		s.u = append(s.u, -out)
		s.w = append(s.w, out)
	}
	return nil
}

// randomView draws a view into dst (reusing its capacity) and returns it.
// In the crash model it is a random m-subset of the n-value pool, drawn by
// an in-place partial Fisher–Yates shuffle of the index table — no rng.Perm
// allocation. In the Byzantine model the pool holds the N−T honest values
// and the view takes m−b of them plus b <= T fabricated values.
func (s *contractionSearch) randomView(dst []float64) []float64 {
	b := 0
	if s.vm.Byzantine {
		b = s.rng.Intn(s.vm.T + 1)
	}
	honest := s.m - b
	if honest > len(s.pool) {
		honest = len(s.pool)
	}
	n := len(s.pool)
	for i := range s.idx {
		s.idx[i] = i
	}
	dst = dst[:0]
	for i := 0; i < honest; i++ {
		j := i + s.rng.Intn(n-i)
		s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
		dst = append(dst, s.pool[s.idx[i]])
	}
	for i := 0; i < b; i++ {
		switch s.rng.Intn(4) {
		case 0:
			dst = append(dst, -1e6)
		case 1:
			dst = append(dst, 1e6)
		case 2:
			dst = append(dst, 0.5)
		default:
			dst = append(dst, s.rng.Float64())
		}
	}
	return dst
}

func minMax(values []float64) (lo, hi float64) {
	lo, hi = values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
