package multiset

import (
	"testing"
)

func TestViewModelValidate(t *testing.T) {
	if err := (ViewModel{N: 5, T: 2}).Validate(); err != nil {
		t.Error(err)
	}
	for _, vm := range []ViewModel{{N: 0, T: 0}, {N: 3, T: 3}, {N: 3, T: -1}} {
		if err := vm.Validate(); err == nil {
			t.Errorf("%+v accepted", vm)
		}
	}
}

// The crash protocol's lemma: MidExtremes over intersecting (n−t)-views
// never exceeds gamma = 1/2, and the structured split attack achieves
// exactly 1/2.
func TestCrashMidExtremesContraction(t *testing.T) {
	for _, c := range []struct{ n, tFaults int }{{3, 1}, {5, 2}, {9, 4}, {13, 6}} {
		rep, err := WorstContraction(MidExtremes{}, ViewModel{N: c.n, T: c.tFaults}, 3000, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Gamma > 0.5+1e-9 {
			t.Errorf("n=%d t=%d: gamma %v > 0.5 (halving lemma violated)", c.n, c.tFaults, rep.Gamma)
		}
		if rep.Gamma < 0.5-1e-9 {
			t.Errorf("n=%d t=%d: gamma %v < 0.5 (structured attack should achieve 1/2)", c.n, c.tFaults, rep.Gamma)
		}
		if rep.ValidityViolated {
			t.Errorf("n=%d t=%d: validity violated in crash model", c.n, c.tFaults)
		}
	}
}

// The Byzantine trim protocol's lemma: MidExtremes∘reduce^2t stays at
// gamma <= 1/2 with valid outputs when n >= 7t+1, even under per-view
// fabricated values.
func TestByzTrimContractionAtProvenResilience(t *testing.T) {
	for _, c := range []struct{ n, tFaults int }{{8, 1}, {15, 2}, {22, 3}} {
		fn := MidExtremes{Trim: 2 * c.tFaults}
		rep, err := WorstContraction(fn, ViewModel{N: c.n, T: c.tFaults, Byzantine: true}, 3000, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Gamma > 0.5+1e-9 {
			t.Errorf("n=%d t=%d: gamma %v > 0.5", c.n, c.tFaults, rep.Gamma)
		}
		if rep.ValidityViolated {
			t.Errorf("n=%d t=%d: validity violated despite 2t trim", c.n, c.tFaults)
		}
	}
}

// Below the proven bound (the classical n = 5t+1), the search must find the
// stalling configuration: gamma reaches 1.
func TestByzTrimStallsBelowProvenResilience(t *testing.T) {
	fn := MidExtremes{Trim: 4} // 2t with t=2
	rep, err := WorstContraction(fn, ViewModel{N: 11, T: 2, Byzantine: true}, 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gamma < 0.99 {
		t.Errorf("gamma %v at n=5t+1; expected the search to find the stall (gamma ~ 1)", rep.Gamma)
	}
}

// Insufficient trim lets fabricated values escape the hull: the search must
// flag the validity violation.
func TestValidityViolationDetected(t *testing.T) {
	rep, err := WorstContraction(MidExtremes{}, ViewModel{N: 7, T: 2, Byzantine: true}, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ValidityViolated {
		t.Error("untrimmed function under Byzantine values must violate validity")
	}
}

func TestWorstContractionErrors(t *testing.T) {
	if _, err := WorstContraction(MidExtremes{}, ViewModel{N: 0, T: 0}, 10, 1); err == nil {
		t.Error("invalid model accepted")
	}
	// View too small for the function's trim.
	if _, err := WorstContraction(MidExtremes{Trim: 5}, ViewModel{N: 5, T: 2}, 10, 1); err == nil {
		t.Error("undersized view accepted")
	}
}

func TestContractionReportTrials(t *testing.T) {
	rep, err := WorstContraction(MidExtremes{}, ViewModel{N: 5, T: 1}, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials == 0 {
		t.Error("no trials recorded")
	}
}
