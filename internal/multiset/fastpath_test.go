package multiset

import (
	"math"
	"math/rand"
	"testing"
)

// testFuncs is the full Func inventory exercised by the fast-path tests.
func testFuncs() []Func {
	return []Func{
		MidExtremes{},
		MidExtremes{Trim: 2},
		TrimmedMean{Trim: 0},
		TrimmedMean{Trim: 3},
		Median{},
		SelectDouble{Trim: 1, K: 2},
		SelectDouble{Trim: 2, K: 3},
	}
}

// TestApplySortedMatchesApply checks the trusted fast path computes exactly
// what the validating path computes, across sizes and random contents.
func TestApplySortedMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range testFuncs() {
		for size := f.MinInputs(); size < f.MinInputs()+24; size++ {
			vals := make([]float64, size)
			for i := range vals {
				vals[i] = math.Round(rng.Float64()*20) / 4 // ties included
			}
			sorted := Sorted(vals)
			want, errWant := f.Apply(sorted)
			got, errGot := ApplySorted(f, sorted)
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("%s size %d: Apply err %v, ApplySorted err %v", f.Name(), size, errWant, errGot)
			}
			if want != got {
				t.Fatalf("%s size %d: Apply %v, ApplySorted %v", f.Name(), size, want, got)
			}
		}
	}
}

// TestApplyInPlaceMatchesSortedCopy checks the in-place hot path against the
// allocate-and-copy path, and that it leaves the input sorted.
func TestApplyInPlaceMatchesSortedCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, f := range testFuncs() {
		size := f.MinInputs() + 9
		vals := make([]float64, size)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		want, errWant := f.Apply(Sorted(vals))
		got, errGot := ApplyInPlace(f, vals)
		if errWant != nil || errGot != nil {
			t.Fatalf("%s: errs %v / %v", f.Name(), errWant, errGot)
		}
		if want != got {
			t.Fatalf("%s: Apply(Sorted) %v, ApplyInPlace %v", f.Name(), want, got)
		}
		if err := checkSorted(vals); err != nil {
			t.Fatalf("%s: input not sorted after ApplyInPlace", f.Name())
		}
	}
}

// TestApplyErrorParityOnTooSmall checks both paths reject undersized input.
func TestApplyErrorParityOnTooSmall(t *testing.T) {
	f := MidExtremes{Trim: 3}
	small := []float64{1, 2, 3}
	if _, err := f.Apply(small); err == nil {
		t.Fatal("Apply accepted undersized multiset")
	}
	if _, err := ApplySorted(f, small); err == nil {
		t.Fatal("ApplySorted accepted undersized multiset")
	}
}

// TestApplyStillValidates ensures the public Apply path kept its unsorted
// detection after the fast-path refactor.
func TestApplyStillValidates(t *testing.T) {
	unsorted := []float64{3, 1, 2, 0, 5}
	for _, f := range testFuncs() {
		if _, err := f.Apply(unsorted); err == nil {
			t.Fatalf("%s: Apply accepted unsorted input", f.Name())
		}
	}
}

// fallbackFunc has no trusted fast path; ApplySorted must fall back to Apply.
type fallbackFunc struct{}

func (fallbackFunc) Name() string      { return "fallback" }
func (fallbackFunc) MinInputs() int    { return 1 }
func (fallbackFunc) Apply(s []float64) (float64, error) {
	if err := checkSorted(s); err != nil {
		return 0, err
	}
	return s[0], nil
}

func TestApplySortedFallback(t *testing.T) {
	got, err := ApplySorted(fallbackFunc{}, []float64{7, 9})
	if err != nil || got != 7 {
		t.Fatalf("fallback: got %v, %v", got, err)
	}
}

// TestSelectIntoReusesCapacity checks SelectInto writes into the provided
// backing array when capacity suffices and matches Select.
func TestSelectIntoReusesCapacity(t *testing.T) {
	sorted := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8}
	scratch := make([]float64, 0, 16)
	for k := 1; k <= 4; k++ {
		want, err := Select(sorted, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SelectInto(scratch, sorted, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: len %d want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d: got %v want %v", k, got, want)
			}
		}
		if &got[0] != &scratch[:1][0] {
			t.Fatalf("k=%d: SelectInto did not reuse the scratch backing array", k)
		}
	}
	if _, err := SelectInto(scratch, nil, 1); err == nil {
		t.Fatal("SelectInto accepted empty input")
	}
	if _, err := SelectInto(scratch, sorted, 0); err == nil {
		t.Fatal("SelectInto accepted step 0")
	}
}

// TestReduceAliasing documents (and pins) that Reduce returns a subslice of
// its input, not a copy.
func TestReduceAliasing(t *testing.T) {
	in := []float64{0, 1, 2, 3, 4}
	out, err := Reduce(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &in[1] {
		t.Fatal("Reduce result does not alias the input")
	}
}

// TestApplySortedZeroAllocs pins the zero-allocation guarantee of every
// built-in Func's trusted path, including SelectDouble (whose validating
// path materializes the selection).
func TestApplySortedZeroAllocs(t *testing.T) {
	sorted := make([]float64, 64)
	for i := range sorted {
		sorted[i] = float64(i)
	}
	for _, f := range testFuncs() {
		f := f
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := ApplySorted(f, sorted); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: ApplySorted allocates %.1f/op, want 0", f.Name(), allocs)
		}
	}
}
