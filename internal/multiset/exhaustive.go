package multiset

import (
	"fmt"
	"math"
)

// ExhaustiveContraction verifies a contraction bound by exact enumeration
// instead of randomized search. It enumerates every pool over the value
// vertex class {0, 1} (by symmetry a pool is characterized by its count of
// ones), every pair of reachable views, and — in the Byzantine model —
// every multiset of fabricated values drawn from a 5-point grid that
// includes far-out extremes. For the piecewise-linear functions in this
// package, worst cases lie on such vertex configurations, so the result is
// the exact worst case over the class and a high-confidence certificate
// for the general bound (the randomized search in WorstContraction covers
// off-vertex configurations).
//
// The enumeration is polynomial: pools are counted multisets, and a view
// is characterized by how many ones it takes from the pool plus the
// fabricated multiset.
func ExhaustiveContraction(f Func, vm ViewModel) (ContractionReport, error) {
	if err := vm.Validate(); err != nil {
		return ContractionReport{}, err
	}
	m := vm.N - vm.T
	if m < f.MinInputs() {
		return ContractionReport{}, fmt.Errorf(
			"multiset: view size %d below %s minimum %d", m, f.Name(), f.MinInputs())
	}
	poolSize := vm.N
	maxByz := 0
	if vm.Byzantine {
		poolSize = vm.N - vm.T
		maxByz = vm.T
	}
	rep := ContractionReport{}

	// grid of fabricated values (Byzantine model only).
	grid := []float64{-1e6, 0, 0.5, 1, 1e6}

	// Enumerate pools: ones = number of 1-values among poolSize entries.
	// ones = 0 or poolSize gives spread 0 (skipped by the gamma ratio).
	for ones := 1; ones < poolSize; ones++ {
		zeros := poolSize - ones
		// Enumerate the two views' outputs over all reachable view shapes,
		// then take the max pairwise distance. A view takes h honest
		// values (h = m − b with b fabricated) of which k are ones.
		var outputs []float64
		var anyInvalid bool
		for b := 0; b <= maxByz; b++ {
			h := m - b
			if h > poolSize || h < 0 {
				continue
			}
			loK := h - zeros
			if loK < 0 {
				loK = 0
			}
			hiK := h
			if hiK > ones {
				hiK = ones
			}
			for k := loK; k <= hiK; k++ {
				honest := make([]float64, 0, m)
				for i := 0; i < h-k; i++ {
					honest = append(honest, 0)
				}
				for i := 0; i < k; i++ {
					honest = append(honest, 1)
				}
				if b == 0 {
					out, err := ApplySorted(f, Sorted(honest))
					if err != nil {
						return rep, err
					}
					outputs = append(outputs, out)
					if out < -1e-12 || out > 1+1e-12 {
						anyInvalid = true
					}
					rep.Trials++
					continue
				}
				// Enumerate fabricated multisets of size b over the grid
				// (combinations with repetition).
				combos := gridCombos(grid, b)
				for _, fab := range combos {
					view := append(append([]float64{}, honest...), fab...)
					out, err := ApplySorted(f, Sorted(view))
					if err != nil {
						return rep, err
					}
					outputs = append(outputs, out)
					if out < -1e-12 || out > 1+1e-12 {
						anyInvalid = true
					}
					rep.Trials++
				}
			}
		}
		if anyInvalid {
			rep.ValidityViolated = true
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, o := range outputs {
			lo = math.Min(lo, o)
			hi = math.Max(hi, o)
		}
		// Pool spread is 1 by construction (both 0s and 1s present).
		if g := hi - lo; g > rep.Gamma {
			rep.Gamma = g
		}
	}
	return rep, nil
}

// gridCombos enumerates all size-b multisets over the grid values
// (combinations with repetition), returned as slices.
func gridCombos(grid []float64, b int) [][]float64 {
	if b == 0 {
		return [][]float64{{}}
	}
	var out [][]float64
	var rec func(start int, cur []float64)
	rec = func(start int, cur []float64) {
		if len(cur) == b {
			out = append(out, append([]float64(nil), cur...))
			return
		}
		for i := start; i < len(grid); i++ {
			rec(i, append(cur, grid[i]))
		}
	}
	rec(0, make([]float64, 0, b))
	return out
}
