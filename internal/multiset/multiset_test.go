package multiset

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSorted(t *testing.T) {
	in := []float64{3, 1, 2}
	got := Sorted(in)
	if !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Errorf("Sorted = %v", got)
	}
	if !reflect.DeepEqual(in, []float64{3, 1, 2}) {
		t.Error("Sorted mutated its input")
	}
}

func TestReduce(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	got, err := Reduce(sorted, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []float64{2, 3, 4}) {
		t.Errorf("Reduce(...,1) = %v", got)
	}
	got, err = Reduce(sorted, 0)
	if err != nil || len(got) != 5 {
		t.Errorf("Reduce(...,0) = %v, %v", got, err)
	}
	if _, err := Reduce(sorted, 3); !errors.Is(err, ErrTooSmall) {
		t.Errorf("over-trim error = %v, want ErrTooSmall", err)
	}
	if _, err := Reduce(sorted, -1); err == nil {
		t.Error("negative trim accepted")
	}
	if _, err := Reduce([]float64{2, 1}, 0); !errors.Is(err, ErrUnsorted) {
		t.Errorf("unsorted error = %v, want ErrUnsorted", err)
	}
}

func TestSelect(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7}
	got, err := Select(sorted, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []float64{1, 4, 7}) {
		t.Errorf("Select(...,3) = %v", got)
	}
	if _, err := Select(nil, 1); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty error = %v", err)
	}
	if _, err := Select(sorted, 0); err == nil {
		t.Error("zero step accepted")
	}
}

func TestMeanSpread(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Mean(nil) err = %v", err)
	}
	m, err := Mean([]float64{1, 2, 3, 6})
	if err != nil || m != 3 {
		t.Errorf("Mean = %v, %v", m, err)
	}
	if s := Spread([]float64{5, -2, 3}); s != 7 {
		t.Errorf("Spread = %v, want 7", s)
	}
	if s := Spread(nil); s != 0 {
		t.Errorf("Spread(nil) = %v", s)
	}
}

func TestFuncsBasic(t *testing.T) {
	sorted := []float64{0, 1, 2, 3, 10}
	cases := []struct {
		fn   Func
		want float64
	}{
		{MidExtremes{}, 5},
		{MidExtremes{Trim: 1}, 2},
		{TrimmedMean{Trim: 0}, 3.2},
		{TrimmedMean{Trim: 1}, 2},
		{Median{}, 2},
		{SelectDouble{Trim: 1, K: 2}, 2}, // reduce -> {1,2,3}, select2 -> {1,3}, mean 2
	}
	for _, c := range cases {
		got, err := c.fn.Apply(sorted)
		if err != nil {
			t.Fatalf("%s: %v", c.fn.Name(), err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.fn.Name(), got, c.want)
		}
	}
}

func TestFuncsRejectBadInput(t *testing.T) {
	funcs := []Func{MidExtremes{Trim: 1}, TrimmedMean{Trim: 1}, Median{}, SelectDouble{Trim: 1, K: 2}}
	for _, fn := range funcs {
		if _, err := fn.Apply([]float64{3, 1, 2}); err == nil {
			t.Errorf("%s accepted unsorted input", fn.Name())
		}
		if _, err := fn.Apply(nil); err == nil {
			t.Errorf("%s accepted empty input", fn.Name())
		}
	}
	if (MidExtremes{Trim: 2}).MinInputs() != 5 {
		t.Error("MinInputs wrong for MidExtremes")
	}
}

func TestFuncNames(t *testing.T) {
	for fn, want := range map[Func]string{
		MidExtremes{}:               "midextremes",
		MidExtremes{Trim: 2}:        "midextremes/trim2",
		TrimmedMean{Trim: 4}:        "trimmedmean/trim4",
		Median{}:                    "median",
		SelectDouble{Trim: 1, K: 2}: "selectdouble/c1_k2",
	} {
		if got := fn.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestRoundBudget(t *testing.T) {
	r, err := RoundBudget(1024, 1, 0.5)
	if err != nil || r != 10 {
		t.Errorf("RoundBudget(1024,1,0.5) = %d, %v; want 10", r, err)
	}
	r, err = RoundBudget(0.5, 1, 0.5)
	if err != nil || r != 0 {
		t.Errorf("already-converged budget = %d, %v; want 0", r, err)
	}
	for _, bad := range []struct{ s, e, g float64 }{
		{-1, 1, 0.5},
		{math.NaN(), 1, 0.5},
		{1, 0, 0.5},
		{1, math.Inf(1), 0.5},
		{1, 1, 0},
		{1, 1, 1},
		{1, 1, -0.5},
	} {
		if _, err := RoundBudget(bad.s, bad.e, bad.g); err == nil {
			t.Errorf("RoundBudget(%v,%v,%v) accepted", bad.s, bad.e, bad.g)
		}
	}
}

// Property: the budget actually suffices — S * gamma^R <= eps.
func TestRoundBudgetSufficientProperty(t *testing.T) {
	f := func(sRaw, eRaw, gRaw uint32) bool {
		s := 1 + float64(sRaw%1_000_000)
		eps := 1e-6 + float64(eRaw%1000)/1000
		gamma := 0.05 + 0.9*float64(gRaw%1000)/1000
		r, err := RoundBudget(s, eps, gamma)
		if err != nil {
			return false
		}
		return s*math.Pow(gamma, float64(r)) <= eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: every Func output lies within [min, max] of its input multiset.
func TestFuncOutputInRangeProperty(t *testing.T) {
	funcs := []Func{MidExtremes{}, MidExtremes{Trim: 2}, TrimmedMean{Trim: 0},
		TrimmedMean{Trim: 2}, Median{}, SelectDouble{Trim: 2, K: 3}}
	f := func(raw []float64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 0, len(raw)+7)
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Mod(v, 1e9))
			}
		}
		for len(vals) < 7 {
			vals = append(vals, rng.Float64())
		}
		sorted := Sorted(vals)
		lo, hi := sorted[0], sorted[len(sorted)-1]
		for _, fn := range funcs {
			if len(sorted) < fn.MinInputs() {
				continue
			}
			out, err := fn.Apply(sorted)
			if err != nil {
				return false
			}
			if out < lo-1e-9 || out > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: MidExtremes halves the gap between any two intersecting views
// drawn from a common pool — the exact lemma the crash protocol's round
// budget is built on.
func TestMidExtremesHalvingProperty(t *testing.T) {
	f := func(poolRaw []float64, aMask, bMask uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pool := make([]float64, 0, 16)
		for _, v := range poolRaw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && len(pool) < 16 {
				pool = append(pool, math.Mod(v, 1e6))
			}
		}
		for len(pool) < 4 {
			pool = append(pool, rng.Float64())
		}
		// Build two views that share at least one element.
		pick := func(mask uint16) []float64 {
			var out []float64
			for i, v := range pool {
				if mask&(1<<uint(i%16)) != 0 {
					out = append(out, v)
				}
			}
			return out
		}
		u, w := pick(aMask), pick(bMask)
		shared := pool[int(uint64(seed)%uint64(len(pool)))]
		u = append(u, shared)
		w = append(w, shared)
		fu, err := MidExtremes{}.Apply(Sorted(u))
		if err != nil {
			return false
		}
		fw, err := MidExtremes{}.Apply(Sorted(w))
		if err != nil {
			return false
		}
		all := append(append([]float64{}, u...), w...)
		return math.Abs(fu-fw) <= Spread(all)/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
