package trace

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds order statistics of a sample, used by the fuzz harness and
// experiment sweeps to report distributions instead of single points.
type Summary struct {
	N              int
	Min, Max, Mean float64
	P50, P95       float64
	StdDev         float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
// Inputs must be finite with |max − min| representable (≤ MaxFloat64);
// the harness's metrics (rounds, message counts, spreads) are far inside
// that domain.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	s := Summary{
		N:   len(sorted),
		Min: sorted[0],
		Max: sorted[len(sorted)-1],
		P50: quantile(sorted, 0.50),
		P95: quantile(sorted, 0.95),
	}
	// Welford's online algorithm: numerically stable and overflow-free for
	// the mean even with values near ±MaxFloat64 (a naive sum overflows).
	mean, m2 := 0.0, 0.0
	for i, v := range sorted {
		delta := v - mean
		mean += delta / float64(i+1)
		m2 += delta * (v - mean)
	}
	s.Mean = mean
	s.StdDev = math.Sqrt(m2 / float64(len(sorted)))
	return s
}

// quantile returns the q-quantile of a sorted sample by nearest-rank with
// linear interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders a compact one-line summary.
func (s Summary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%s p50=%s mean=%s p95=%s max=%s",
		s.N, F(s.Min), F(s.P50), F(s.Mean), F(s.P95), F(s.Max))
}
