// Package trace renders experiment results as aligned text tables and CSV,
// and provides the small formatting helpers the harness and the benchmark
// suite share. The tables printed by cmd/aabench and bench_test.go are the
// repository's reproduction of the paper's evaluation artifacts.
package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned text rendering. Cell widths are measured in
// runes so unicode content (e.g. sparkline figures) stays aligned.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if n := utf8.RuneCountInString(cell); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes an RFC-4180-ish CSV rendering (cells with commas or quotes are
// quoted).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(strconv.Quote(cell))
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// F formats a float compactly for a table cell.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 0.01 && v < 1e6:
		return strconv.FormatFloat(v, 'f', 4, 64)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}

// I formats an int.
func I(v int) string { return strconv.Itoa(v) }

// B formats a bool as yes/no.
func B(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}

// Ratio formats a/b with guards.
func Ratio(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return F(a / b)
}

// Sprintf is fmt.Sprintf re-exported so callers of this package do not need
// a second fmt import just for cells.
func Sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }
