package trace

import (
	"math"
	"strings"
)

// sparkRunes are the eight block-element levels used by Sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a value series as a compact unicode bar chart — the
// textual "figure" form used by the trajectory experiment (E5): a
// geometric halving series renders as a clean decay staircase. Values are
// scaled to the series' own [min, max]; non-finite entries render as
// spaces.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var sb strings.Builder
	for _, v := range values {
		switch {
		case math.IsNaN(v) || math.IsInf(v, 0):
			sb.WriteByte(' ')
		case hi == lo:
			sb.WriteRune(sparkRunes[0])
		default:
			idx := int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
			sb.WriteRune(sparkRunes[idx])
		}
	}
	return sb.String()
}
