package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Errorf("summary %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Errorf("stddev %v, want sqrt(2)", s.StdDev)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary %+v", s)
	}
	one := Summarize([]float64{7})
	if one.Min != 7 || one.Max != 7 || one.P50 != 7 || one.P95 != 7 || one.StdDev != 0 {
		t.Errorf("singleton summary %+v", one)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("input mutated")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if s.P50 != 5 {
		t.Errorf("p50 of {0,10} = %v, want 5", s.P50)
	}
	if s.P95 != 9.5 {
		t.Errorf("p95 of {0,10} = %v, want 9.5", s.P95)
	}
}

func TestSummaryString(t *testing.T) {
	if (Summary{}).String() != "n=0" {
		t.Error("empty string form")
	}
	str := Summarize([]float64{1, 2, 3}).String()
	for _, part := range []string{"n=3", "min=", "p50=", "mean=", "p95=", "max="} {
		if !strings.Contains(str, part) {
			t.Errorf("summary string %q missing %q", str, part)
		}
	}
}

// Property: min <= p50 <= p95 <= max and min <= mean <= max.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Stay inside Summarize's documented domain: finite, with the
			// sample diameter representable.
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Mod(v, 1e12))
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := Summarize(vals)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.Max &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
