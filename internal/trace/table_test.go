package trace

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tbl := NewTable("title", "name", "value")
	tbl.AddRow("a", "1")
	tbl.AddRow("longer", "22")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "title" {
		t.Errorf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name    value") {
		t.Errorf("header %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "------  -----") {
		t.Errorf("rule %q", lines[2])
	}
	// All rows padded to the same width.
	if len(lines[3]) != len(lines[4]) {
		t.Errorf("misaligned rows %q vs %q", lines[3], lines[4])
	}
}

func TestRenderNoTitle(t *testing.T) {
	tbl := NewTable("", "c")
	tbl.AddRow("x")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(sb.String(), "\n") {
		t.Error("leading blank line for empty title")
	}
}

func TestShortRowPadded(t *testing.T) {
	tbl := NewTable("t", "a", "b", "c")
	tbl.AddRow("only")
	if len(tbl.Rows[0]) != 3 {
		t.Fatalf("row not padded: %v", tbl.Rows[0])
	}
	if tbl.Rows[0][1] != "" || tbl.Rows[0][2] != "" {
		t.Errorf("padding cells not empty: %v", tbl.Rows[0])
	}
}

func TestCSV(t *testing.T) {
	tbl := NewTable("ignored", "x", "y")
	tbl.AddRow("plain", `has,comma`)
	tbl.AddRow(`has"quote`, "line\nbreak")
	var sb strings.Builder
	if err := tbl.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "x,y\nplain,\"has,comma\"\n\"has\\\"quote\",\"line\\nbreak\"\n"
	if got != want {
		t.Errorf("CSV:\n%q\nwant:\n%q", got, want)
	}
}

func TestFormatters(t *testing.T) {
	cases := map[float64]string{
		0:     "0",
		0.5:   "0.5000",
		123:   "123.0000",
		1e7:   "1e+07",
		1e-09: "1e-09",
	}
	for in, want := range cases {
		if got := F(in); got != want {
			t.Errorf("F(%v) = %q, want %q", in, got, want)
		}
	}
	if I(42) != "42" {
		t.Error("I(42)")
	}
	if B(true) != "yes" || B(false) != "no" {
		t.Error("B")
	}
	if Ratio(1, 0) != "n/a" {
		t.Error("Ratio divide by zero")
	}
	if Ratio(1, 2) != "0.5000" {
		t.Errorf("Ratio(1,2) = %q", Ratio(1, 2))
	}
	if Sprintf("%d-%s", 1, "a") != "1-a" {
		t.Error("Sprintf")
	}
}
