package trace

import (
	"math"
	"testing"
	"unicode/utf8"
)

func TestSparklineShape(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("length %d", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("endpoints %q", s)
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("not monotone: %q", s)
		}
	}
}

func TestSparklineEdgeCases(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty series")
	}
	if s := Sparkline([]float64{5, 5, 5}); s != "▁▁▁" {
		t.Errorf("constant series %q", s)
	}
	s := Sparkline([]float64{0, math.NaN(), 1})
	if []rune(s)[1] != ' ' {
		t.Errorf("NaN rendering %q", s)
	}
}

func TestSparklineHalvingDecay(t *testing.T) {
	series := make([]float64, 10)
	v := 1.0
	for i := range series {
		series[i] = v
		v /= 2
	}
	s := []rune(Sparkline(series))
	if s[0] != '█' {
		t.Errorf("peak not full block: %q", string(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1] {
			t.Errorf("decay not monotone: %q", string(s))
		}
	}
	if s[len(s)-1] != '▁' {
		t.Errorf("tail not minimal: %q", string(s))
	}
}
