package scenario

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

func TestRecoverParseRoundTrip(t *testing.T) {
	for _, raw := range []string{
		"random+recover/n=9,t=2",
		"sync+recover:2:300:50/n=9,t=3",
		"random+amnesia/n=9,t=1",
		"random+amnesia:1:250/n=9,t=2",
		"random+loss:0.05+recover:1:400:100/n=9,t=2",
	} {
		s, err := Parse(raw)
		if err != nil {
			t.Fatalf("Parse(%q): %v", raw, err)
		}
		if got := s.String(); got != raw {
			t.Errorf("round trip %q -> %q", raw, got)
		}
		again, err := Parse(s.String())
		if err != nil || !reflect.DeepEqual(again, s) {
			t.Errorf("re-parse of %q drifted: %+v vs %+v (%v)", raw, again, s, err)
		}
	}
}

func TestRecoverResolvePlans(t *testing.T) {
	res, err := MustParse("random+recover:2:300:50/n=9,t=3").Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.RestartPlan{
		{Party: 1, Checkpoint: 250, Down: 300, Rejoin: 300 + restartDarkLen},
		{Party: 2, Checkpoint: 250, Down: 300, Rejoin: 300 + restartDarkLen},
	}
	if !reflect.DeepEqual(res.Restarts, want) {
		t.Errorf("plans %+v, want %+v", res.Restarts, want)
	}
	// The darkness window wraps the scheduler: both planned parties are
	// dark over [down, rejoin).
	out, ok := res.Scheduler.Scheduler.(*fault.Outage)
	if !ok {
		t.Fatalf("scheduler %T, want *fault.Outage darkness wrapper", res.Scheduler.Scheduler)
	}
	if out.First != 1 || out.Last != 2 || out.Start != 300 || out.Len != restartDarkLen {
		t.Errorf("darkness window %+v", out)
	}

	// Amnesia recovers from the zero checkpoint regardless of down time.
	res, err = MustParse("random+amnesia:1:250/n=9,t=2").Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want = []sim.RestartPlan{{Party: 1, Checkpoint: 0, Down: 250, Rejoin: 250 + restartDarkLen}}
	if !reflect.DeepEqual(res.Restarts, want) {
		t.Errorf("amnesia plans %+v, want %+v", res.Restarts, want)
	}

	// A lag deeper than the down time clamps to the zero checkpoint.
	res, err = MustParse("random+recover:1:100:500/n=9,t=1").Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts[0].Checkpoint != 0 {
		t.Errorf("deep-lag checkpoint %d, want 0", res.Restarts[0].Checkpoint)
	}

	// Restart-free specs resolve with no plans.
	res, err = MustParse("random+loss/n=9,t=2").Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != nil {
		t.Errorf("loss-only spec carries restart plans: %+v", res.Restarts)
	}
}

func TestRecoverParseRejects(t *testing.T) {
	cases := map[string]string{
		"random+recover/n=9":                 "restart without explicit t",
		"random+recover/n=9,t=0":             "restart with zero fault slots",
		"random+recover:3:400:100/n=9,t=2":   "k exceeds t",
		"random+recover:0:400:100/n=9,t=2":   "k below 1",
		"random+recover:1:0:100/n=9,t=2":     "down below 1",
		"random+recover:1:400:-1/n=9,t=2":    "negative lag",
		"random+recover:1:400/n=9,t=2":       "recover arg arity",
		"random+amnesia:1:400:100/n=9,t=2":   "amnesia arg arity",
		"random+recover:x:400:100/n=9,t=2":   "garbage k",
		"random+crash+recover/n=9,t=2":       "party faults compose with restarts",
		"random+recover+amnesia/n=9,t=2":     "two restart axes",
		"random+recover:1:2000000:0/n=9,t=2": "down past the delay cap",
	}
	for raw, why := range cases {
		if _, err := Parse(raw); err == nil {
			t.Errorf("Parse(%q) accepted (%s)", raw, why)
		}
	}
}

// Satellite: window-bearing axes reject unreachable windows with the
// ErrBadWindow sentinel at spec time instead of silently no-op'ing.
func TestWindowValidation(t *testing.T) {
	cases := []struct {
		raw     string
		badWin  bool
		comment string
	}{
		{"random+outage:2:50:0/n=9,t=2", true, "zero-length outage"},
		{"random+outage:2:50:-3/n=9,t=2", true, "negative outage length"},
		{"random+outage:2:9999999:10/n=9,t=2", true, "outage start past delay cap"},
		{"random+outage:2:-1:10/n=9,t=2", true, "negative outage start"},
		{"random+flap:0/n=9,t=2", true, "zero-length flap"},
		{"random+flap:-5/n=9,t=2", true, "negative flap length"},
		{"random+flap:9999999/n=9,t=2", true, "flap length past delay cap"},
		{"random+recover:1:9999999:0/n=9,t=2", true, "recover down past delay cap"},
		{"random+outage:2:50:100/n=9,t=2", false, "valid outage"},
		{"random+flap:60/n=9,t=2", false, "valid flap"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.raw)
		if tc.badWin {
			if !errors.Is(err, ErrBadWindow) {
				t.Errorf("%s (%q): err = %v, want ErrBadWindow", tc.comment, tc.raw, err)
			}
		} else if err != nil {
			t.Errorf("%s (%q): %v", tc.comment, tc.raw, err)
		}
	}
}

func TestIsRestartFault(t *testing.T) {
	for tok, want := range map[string]bool{
		"recover":           true,
		"recover:1:400:100": true,
		"amnesia":           true,
		"amnesia:1:250":     true,
		"outage":            false,
		"crash":             false,
		"loss:0.05":         false,
	} {
		if got := IsRestartFault(tok); got != want {
			t.Errorf("IsRestartFault(%q) = %v, want %v", tok, got, want)
		}
	}
	if !reflect.DeepEqual(RestartFaultNames(), []string{"amnesia", "recover"}) {
		t.Errorf("RestartFaultNames() = %v", RestartFaultNames())
	}
}
