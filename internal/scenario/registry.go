package scenario

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/sim"
)

// ErrBadWindow rejects fault windows the simulator could never open:
// zero or negative lengths, and windows starting past sim.MaxDelayCap
// (the largest virtual time any message delay can reach, so a later
// window is a silent no-op in every run). Both are spec-time errors —
// a window typo must fail at Parse, not degrade into a fault-free run.
var ErrBadWindow = errors.New("scenario: fault window outside simulable range")

// SchedulerBuilder constructs a fresh scheduler instance for an n-party run
// with fault bound t. arg is the optional ":<value>" suffix of the spec
// token ("" when absent); builders that take no argument must reject a
// non-empty one, so typos fail at spec time.
type SchedulerBuilder func(n, t int, arg string) (sim.Scheduler, error)

// FaultKind is one registered fault: either a Byzantine behavior (Behavior
// non-nil) or a crash schedule (Crash non-nil). Exactly one is set.
type FaultKind struct {
	// Behavior replaces the party with an adversarial process.
	Behavior fault.Behavior
	// Crash builds the crash plan for fault slot `slot` of t in an n-party
	// run (slots are parties 0..t-1).
	Crash func(n, t, slot int) sim.CrashPlan
}

// NetFaultBuilder wraps a run's scheduler with one network-fault axis
// (loss, dup, outage, flap) for an n-party run with fault bound t. arg is
// the token's ":<value>" suffix ("" when absent). Unlike FaultKind, a
// network fault occupies no fault slot: it degrades the transport, not a
// party's protocol state.
type NetFaultBuilder func(n, t int, arg string, inner sim.Scheduler) (sim.Scheduler, error)

var (
	schedulers = map[string]SchedulerBuilder{}
	faults     = map[string]FaultKind{}
	netFaults  = map[string]NetFaultBuilder{}
)

// specMetachars are the bytes the spec grammar reserves; a registered name
// containing one would break the documented String → Parse round trip.
const specMetachars = "+/:,= \t\n"

// RegisterScheduler adds a scheduler to the registry. It panics on a
// duplicate, empty, or grammar-breaking name; registration happens at
// init time.
func RegisterScheduler(name string, b SchedulerBuilder) {
	if name == "" || b == nil {
		panic("scenario: RegisterScheduler: empty name or nil builder")
	}
	if strings.ContainsAny(name, specMetachars) {
		panic(fmt.Sprintf("scenario: scheduler name %q contains spec grammar characters (%q)", name, specMetachars))
	}
	if _, dup := schedulers[name]; dup {
		panic("scenario: duplicate scheduler " + name)
	}
	schedulers[name] = b
}

// RegisterFault adds a fault kind to the registry. Exactly one of Behavior
// and Crash must be set.
func RegisterFault(name string, k FaultKind) {
	if name == "" || (k.Behavior == nil) == (k.Crash == nil) {
		panic("scenario: RegisterFault: need exactly one of Behavior/Crash for " + name)
	}
	if strings.ContainsAny(name, specMetachars) {
		panic(fmt.Sprintf("scenario: fault name %q contains spec grammar characters (%q)", name, specMetachars))
	}
	if _, dup := faults[name]; dup {
		panic("scenario: duplicate fault " + name)
	}
	faults[name] = k
}

// RegisterNetFault adds a network-fault axis to the registry. Its name
// must not collide with a party fault: both appear in the same "+" list.
func RegisterNetFault(name string, b NetFaultBuilder) {
	if name == "" || b == nil {
		panic("scenario: RegisterNetFault: empty name or nil builder")
	}
	if strings.ContainsAny(name, specMetachars) {
		panic(fmt.Sprintf("scenario: net fault name %q contains spec grammar characters (%q)", name, specMetachars))
	}
	if _, dup := netFaults[name]; dup {
		panic("scenario: duplicate net fault " + name)
	}
	if _, dup := faults[name]; dup {
		panic("scenario: net fault " + name + " collides with a party fault")
	}
	netFaults[name] = b
}

// IsNetFault reports whether a fault token (base name, or name:arg) names
// a registered network-fault axis.
func IsNetFault(token string) bool {
	base, _, _ := strings.Cut(token, ":")
	_, ok := netFaults[base]
	return ok
}

// Fault looks up a registered fault kind by name. Consumers outside the
// spec grammar (e.g. internal/incident resolving a bundle's explicit
// Byzantine assignments) use this instead of reaching into the registry.
func Fault(name string) (FaultKind, bool) {
	k, ok := faults[name]
	return k, ok
}

// SchedulerNames returns every registered scheduler key, sorted.
func SchedulerNames() []string {
	out := make([]string, 0, len(schedulers))
	for name := range schedulers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FaultNames returns every registered fault key, sorted.
func FaultNames() []string {
	out := make([]string, 0, len(faults))
	for name := range faults {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NetFaultNames returns every registered network-fault key, sorted.
func NetFaultNames() []string {
	out := make([]string, 0, len(netFaults))
	for name := range netFaults {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SuiteSchedulers lists the standard six-scheduler adversary suite in the
// canonical experiment-table order (the order sched.Suite has always used).
func SuiteSchedulers() []string {
	return []string{"sync", "random", "skew", "partition", "splitviews", "staggered"}
}

// ByzSuite lists the standard Byzantine behaviors in fault.Suite order.
func ByzSuite() []string {
	return []string{"silent", "extreme", "equivocate", "spam", "amplifier"}
}

// timeArg parses an optional sim.Time argument, returning def when absent.
func timeArg(arg string, def sim.Time) (sim.Time, error) {
	if arg == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(arg, 10, 64)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("scenario: bad delay argument %q", arg)
	}
	return sim.Time(v), nil
}

// floatArg parses an optional float argument, returning def when absent.
func floatArg(arg string, def float64) (float64, error) {
	if arg == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(arg, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("scenario: bad numeric argument %q", arg)
	}
	return v, nil
}

// probArg parses an optional probability argument in (0, 1), returning
// def when absent. 0 would be a no-op axis (omit the token instead) and
// 1 a total blackout, so both are rejected at spec time.
func probArg(arg string, def float64) (float64, error) {
	if arg == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(arg, 64)
	if err != nil || v <= 0 || v >= 1 {
		return 0, fmt.Errorf("scenario: bad probability argument %q (want 0 < p < 1)", arg)
	}
	return v, nil
}

// noArg rejects a scheduler argument for schedulers that take none.
func noArg(name, arg string) error {
	if arg != "" {
		return fmt.Errorf("scenario: scheduler %s takes no argument, got %q", name, arg)
	}
	return nil
}

// firstT returns party IDs 0..t-1, the conventional victim/fault slots.
func firstT(t int) []sim.PartyID {
	out := make([]sim.PartyID, 0, t)
	for i := 0; i < t; i++ {
		out = append(out, sim.PartyID(i))
	}
	return out
}

// The built-in registry mirrors — exactly — the parameterizations the
// experiment drivers have always used (sched.Suite, fault.Suite(0,1),
// harness.maxCrashes), so converting a driver to scenarios cannot move a
// table by a byte. Optional ":<arg>" suffixes expose the one knob each
// scheduler has (e.g. "sync:5" is lock-step with delay 5).
func init() {
	RegisterScheduler("sync", func(_, _ int, arg string) (sim.Scheduler, error) {
		d, err := timeArg(arg, 10)
		if err != nil {
			return nil, err
		}
		return sched.NewSynchronous(d), nil
	})
	RegisterScheduler("random", func(_, _ int, arg string) (sim.Scheduler, error) {
		max, err := timeArg(arg, 10)
		if err != nil {
			return nil, err
		}
		return &sched.UniformRandom{Min: 1, Max: max}, nil
	})
	RegisterScheduler("skew", func(_, t int, arg string) (sim.Scheduler, error) {
		slow, err := timeArg(arg, 10)
		if err != nil {
			return nil, err
		}
		return sched.NewSkew(firstT(t), 1, slow), nil
	})
	RegisterScheduler("partition", func(n, _ int, arg string) (sim.Scheduler, error) {
		across, err := timeArg(arg, 10)
		if err != nil {
			return nil, err
		}
		return &sched.Partition{Boundary: sim.PartyID(n / 2), Within: 1, Across: across}, nil
	})
	RegisterScheduler("splitviews", func(n, _ int, arg string) (sim.Scheduler, error) {
		slow, err := timeArg(arg, 10)
		if err != nil {
			return nil, err
		}
		return &sched.SplitViews{Boundary: sim.PartyID(n / 2), Fast: 1, Slow: slow}, nil
	})
	RegisterScheduler("staggered", func(_, _ int, arg string) (sim.Scheduler, error) {
		step, err := timeArg(arg, 2)
		if err != nil {
			return nil, err
		}
		return &sched.Staggered{Base: 1, Step: step}, nil
	})
	RegisterScheduler("heavytail", func(_, _ int, arg string) (sim.Scheduler, error) {
		alpha, err := floatArg(arg, 1.5)
		if err != nil {
			return nil, err
		}
		return &sched.HeavyTail{Base: 1, Alpha: alpha, Cap: 400}, nil
	})
	// unordered/fifo are the E11 channel-model pair: the same benign
	// scheduler, bare and wrapped with per-link FIFO ordering. FIFO is
	// stateful, which is why builders return fresh instances per run.
	RegisterScheduler("unordered", func(_, _ int, arg string) (sim.Scheduler, error) {
		if err := noArg("unordered", arg); err != nil {
			return nil, err
		}
		return &sched.UniformRandom{Min: 1, Max: 25}, nil
	})
	RegisterScheduler("fifo", func(_, _ int, arg string) (sim.Scheduler, error) {
		if err := noArg("fifo", arg); err != nil {
			return nil, err
		}
		return sched.NewFIFO(&sched.UniformRandom{Min: 1, Max: 25}), nil
	})

	// "crash" is the standard staggered mid-multicast schedule (harness
	// maxCrashes): early slots die mid-INIT-multicast, later ones survive
	// longer. "crashinit" kills every slot just past its INIT multicast —
	// the overload demonstration's schedule.
	RegisterFault("crash", FaultKind{Crash: func(n, _, slot int) sim.CrashPlan {
		return sim.CrashPlan{Party: sim.PartyID(slot), AfterSends: n/2 + slot*n*2}
	}})
	RegisterFault("crashinit", FaultKind{Crash: func(n, _, slot int) sim.CrashPlan {
		return sim.CrashPlan{Party: sim.PartyID(slot), AfterSends: n + slot}
	}})
	// The Byzantine kinds mirror fault.Suite — every behavior is
	// range-relative, reading the run's true promised range through
	// fault.Env at instantiation (extreme pushes 100 range-widths past the
	// high end, whatever the range).
	RegisterFault("silent", FaultKind{Behavior: fault.Silent{}})
	RegisterFault("extreme", FaultKind{Behavior: fault.ExtremeRel{Scale: 100}})
	RegisterFault("equivocate", FaultKind{Behavior: fault.Equivocate{Stretch: 2}})
	RegisterFault("spam", FaultKind{Behavior: fault.Spam{}})
	RegisterFault("amplifier", FaultKind{Behavior: fault.Amplifier{Push: 1}})

	// The lossy-network axes. These wrap the spec's scheduler (they occupy
	// no fault slots) and compose in token order: in "random+loss:0.05+dup:0.1"
	// the base delay is drawn first, then loss rolls, then dup — the fixed
	// rng-draw order the determinism contract (sim.FateScheduler) requires.
	RegisterNetFault("loss", func(_, _ int, arg string, inner sim.Scheduler) (sim.Scheduler, error) {
		p, err := probArg(arg, 0.05)
		if err != nil {
			return nil, err
		}
		return &sched.Loss{Inner: inner, P: p}, nil
	})
	RegisterNetFault("dup", func(_, _ int, arg string, inner sim.Scheduler) (sim.Scheduler, error) {
		p, err := probArg(arg, 0.05)
		if err != nil {
			return nil, err
		}
		return &sched.Dup{Inner: inner, P: p, MaxExtra: 20}, nil
	})
	// "outage[:k:start:len]" blacks out the LAST k parties (a region
	// disjoint from the fault slots at 0..t-1, so outages stack with
	// crash/byz compositions) for the window [start, start+len).
	RegisterNetFault("outage", func(n, _ int, arg string, inner sim.Scheduler) (sim.Scheduler, error) {
		k, start, length := max(1, n/4), sim.Time(50), sim.Time(100)
		if arg != "" {
			parts := strings.Split(arg, ":")
			if len(parts) != 3 {
				return nil, fmt.Errorf("scenario: outage argument %q (want k:start:len)", arg)
			}
			kk, err := strconv.Atoi(parts[0])
			if err != nil || kk < 1 || kk > n {
				return nil, fmt.Errorf("scenario: outage region size %q out of range [1, n=%d]", parts[0], n)
			}
			st, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil || st < 0 || sim.Time(st) > sim.MaxDelayCap {
				return nil, fmt.Errorf("%w: outage start %q (want 0 <= start <= %d)", ErrBadWindow, parts[1], sim.MaxDelayCap)
			}
			ln, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil || ln < 1 {
				return nil, fmt.Errorf("%w: outage length %q (want >= 1)", ErrBadWindow, parts[2])
			}
			k, start, length = kk, sim.Time(st), sim.Time(ln)
		}
		return &fault.Outage{
			Inner: inner,
			First: sim.PartyID(n - k),
			Last:  sim.PartyID(n - 1),
			Start: start,
			Len:   length,
		}, nil
	})
	// "flap[:len]" takes each fault slot (parties 0..t-1) dark for one
	// len-tick window apiece, staggered in time; the party resumes with
	// its pre-outage state, unlike a sim.CrashPlan crash.
	RegisterNetFault("flap", func(_, t int, arg string, inner sim.Scheduler) (sim.Scheduler, error) {
		length := sim.Time(60)
		if arg != "" {
			v, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || v < 1 || sim.Time(v) > sim.MaxDelayCap {
				return nil, fmt.Errorf("%w: flap window length %q (want 1 <= len <= %d)", ErrBadWindow, arg, sim.MaxDelayCap)
			}
			length = sim.Time(v)
		}
		return &fault.Flap{Inner: inner, Slots: t, Base: 40, Stagger: 60, Len: length}, nil
	})
}
