package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/sim"
)

// The crash-recovery axis: "recover:k:down:lag" crashes the LAST k fault
// slots (parties t-k..t-1) at virtual time down, losing everything newer
// than a checkpoint taken lag ticks earlier, and rejoins them after a
// fixed darkness window; "amnesia:k:down" is the same episode recovering
// from the zero checkpoint (post-Init state). Like the lossy-network
// axes, restart tokens occupy no fault slot and are rng-free; unlike
// them, they both wrap the scheduler (a fault.Outage over the darkness
// window, so a downed party's traffic is actually lost) and contribute
// sim.RestartPlans (so its state is actually rolled back).

// restartDarkLen is the rejoin delay: the darkness window is
// [down, down+restartDarkLen), long enough that an ack/retransmit
// transport's give-up horizon (relnet baseRTO backoff) has retries left
// when the party comes back.
const restartDarkLen sim.Time = 64

// RestartFaultBuilder resolves one restart token into concrete restart
// plans for an n-party run with fault bound t. arg is the token's
// ":<value>" suffix ("" when absent).
type RestartFaultBuilder func(n, t int, arg string) ([]sim.RestartPlan, error)

var restartFaults = map[string]RestartFaultBuilder{}

// RegisterRestartFault adds a crash-recovery axis to the registry. Its
// name shares the "+" list with party and network faults, so it must not
// collide with either.
func RegisterRestartFault(name string, b RestartFaultBuilder) {
	if name == "" || b == nil {
		panic("scenario: RegisterRestartFault: empty name or nil builder")
	}
	if strings.ContainsAny(name, specMetachars) {
		panic(fmt.Sprintf("scenario: restart fault name %q contains spec grammar characters (%q)", name, specMetachars))
	}
	if _, dup := restartFaults[name]; dup {
		panic("scenario: duplicate restart fault " + name)
	}
	if _, dup := faults[name]; dup {
		panic("scenario: restart fault " + name + " collides with a party fault")
	}
	if _, dup := netFaults[name]; dup {
		panic("scenario: restart fault " + name + " collides with a net fault")
	}
	restartFaults[name] = b
}

// IsRestartFault reports whether a fault token (base name, or name:arg)
// names a registered crash-recovery axis.
func IsRestartFault(token string) bool {
	base, _, _ := strings.Cut(token, ":")
	_, ok := restartFaults[base]
	return ok
}

// RestartFaultNames returns every registered restart-fault key, sorted.
func RestartFaultNames() []string {
	out := make([]string, 0, len(restartFaults))
	for name := range restartFaults {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// restartPlans resolves every restart token in the spec (at most one by
// validateShape) into its concrete plans.
func (s Spec) restartPlans(t int) ([]sim.RestartPlan, error) {
	for _, f := range s.Faults {
		base, narg, _ := strings.Cut(f, ":")
		if build, ok := restartFaults[base]; ok {
			return build(s.N, t, narg)
		}
	}
	return nil, nil
}

// darknessFor wraps the scheduler with the outage window implied by a
// restart axis: every planned party is dark from its crash to its rejoin.
// Plans share one window and target a contiguous party range by
// construction (the builders place them at t-k..t-1).
func darknessFor(inner sim.Scheduler, plans []sim.RestartPlan) sim.Scheduler {
	lo, hi := plans[0].Party, plans[0].Party
	start, end := plans[0].Down, plans[0].Rejoin
	for _, p := range plans[1:] {
		if p.Party < lo {
			lo = p.Party
		}
		if p.Party > hi {
			hi = p.Party
		}
		if p.Down < start {
			start = p.Down
		}
		if p.Rejoin > end {
			end = p.Rejoin
		}
	}
	return &fault.Outage{Inner: inner, First: lo, Last: hi, Start: start, Len: end - start}
}

// buildRecover parses "k:down:lag" (or "k:down" in amnesia form, which
// always recovers from the zero checkpoint) and lays the plans over the
// last k fault slots.
func buildRecover(name string, amnesia bool) RestartFaultBuilder {
	return func(n, t int, arg string) ([]sim.RestartPlan, error) {
		if t < 1 {
			return nil, fmt.Errorf("scenario: %s needs at least one fault slot (t >= 1)", name)
		}
		k, down, lag := 1, sim.Time(400), sim.Time(100)
		if arg != "" {
			parts := strings.Split(arg, ":")
			want := 3
			if amnesia {
				want = 2
			}
			if len(parts) != want {
				return nil, fmt.Errorf("scenario: %s argument %q (want %s)", name, arg, map[bool]string{true: "k:down", false: "k:down:lag"}[amnesia])
			}
			kk, err := strconv.Atoi(parts[0])
			if err != nil || kk < 1 {
				return nil, fmt.Errorf("scenario: %s party count %q (want >= 1)", name, parts[0])
			}
			dn, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil || dn < 1 || sim.Time(dn) > sim.MaxDelayCap {
				return nil, fmt.Errorf("%w: %s down time %q (want 1 <= down <= %d)", ErrBadWindow, name, parts[1], sim.MaxDelayCap)
			}
			k, down = kk, sim.Time(dn)
			if !amnesia {
				lg, err := strconv.ParseInt(parts[2], 10, 64)
				if err != nil || lg < 0 {
					return nil, fmt.Errorf("scenario: %s checkpoint lag %q (want >= 0)", name, parts[2])
				}
				lag = sim.Time(lg)
			}
		}
		if k > t {
			return nil, fmt.Errorf("scenario: %s recovers %d parties but only %d fault slots exist", name, k, t)
		}
		ckpt := down - lag
		if amnesia || ckpt < 0 {
			ckpt = 0
		}
		plans := make([]sim.RestartPlan, 0, k)
		for i := 0; i < k; i++ {
			plans = append(plans, sim.RestartPlan{
				Party:      sim.PartyID(t - k + i),
				Checkpoint: ckpt,
				Down:       down,
				Rejoin:     down + restartDarkLen,
			})
		}
		return plans, nil
	}
}

func init() {
	RegisterRestartFault("recover", buildRecover("recover", false))
	RegisterRestartFault("amnesia", buildRecover("amnesia", true))
}
