// Package scenario is the declarative adversary layer over the simulator:
// one composable Spec value names a delivery schedule (topology + timing),
// a fault composition, and the run shape (n parties, t fault slots), and
// resolves into everything internal/harness needs to execute it. It
// replaces the per-driver wiring of sched.Named suites, fault.Behavior
// assignments, and crash schedules that each experiment used to hand-roll.
//
// Specs have a compact string form,
//
//	<scheduler>[:<arg>][+<fault>[+<fault>...]][/n=<N>[,t=<T>]]
//
// e.g. "splitviews/n=64,t=31", "skew+equivocate/n=64,t=9", or
// "sync:5+crash/n=10,t=4". Parse and String round-trip exactly; the fuzz
// harness (cmd/aafuzz) pins this, along with the guarantee that invalid
// combinations fail at spec time, never mid-run.
//
// Fault composition: a spec with T fault slots assigns its party-fault
// kinds cyclically to parties 0..T-1, so "crash" alone crashes all T
// slots, and "crash+equivocate" alternates the two kinds across them.
// Crash kinds become sim.CrashPlans; Byzantine kinds become replacement
// processes.
//
// Network faults: the "+" list also accepts lossy-network axes — "loss:P"
// (per-send Bernoulli drop), "dup:P" (duplicate delivery at a later
// tick), "outage:k:start:len" (correlated blackout of the last k parties
// over a virtual-time window), and "flap:len" (each fault slot goes dark
// for one staggered window, then resumes with its pre-outage state).
// These occupy no fault slots: they wrap the spec's scheduler as
// sim.FateScheduler layers, composing in token order after the base
// delay draw. All drop/dup decisions come from the run's seeded
// scheduler rng (never wall clock), so lossy runs capture and replay
// bit-for-bit like every other scenario (see internal/incident).
//
// The registry (registry.go) maps scheduler and fault names to factories
// and is extensible via RegisterScheduler / RegisterFault; the built-ins
// reproduce the historical experiment parameterizations exactly, which is
// how the E1–E11 tables stayed byte-identical across the conversion.
package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Spec is one declarative scenario: who delays what, who is faulty and
// how, at what scale. The zero Spec is invalid; N is required.
type Spec struct {
	// Sched is the scheduler registry key, optionally with a ":<arg>"
	// parameter suffix (e.g. "sync:5").
	Sched string
	// Faults are fault registry keys: party faults are assigned cyclically
	// to the T fault slots (parties 0..T-1), while network-fault tokens
	// ("loss:0.05", "dup:0.1", "outage:4:50:100", "flap:60") wrap the
	// scheduler and occupy no slot. Empty means a fault-free run.
	Faults []string
	// N is the number of parties.
	N int
	// T is the number of fault slots (and what t-parameterized schedulers
	// like skew target). TUnset (-1) means "derive from the protocol" —
	// callers must normalize via WithT before Resolve.
	T int
}

// TUnset marks a spec whose fault bound is left to the consumer (aarun
// derives it from the protocol's resilience when the string omits t=).
const TUnset = -1

// String renders the spec in its canonical parseable form.
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(s.Sched)
	for _, f := range s.Faults {
		b.WriteByte('+')
		b.WriteString(f)
	}
	fmt.Fprintf(&b, "/n=%d", s.N)
	if s.T != TUnset {
		fmt.Fprintf(&b, ",t=%d", s.T)
	}
	return b.String()
}

// WithT returns the spec with T filled in if it was TUnset.
func (s Spec) WithT(t int) Spec {
	if s.T == TUnset {
		s.T = t
	}
	return s
}

// tokenErrf formats a positioned single-token parse error: the raw spec,
// the 1-based token index, the offending token, and its byte offset, so
// the reader of a failed sweep knows exactly which axis to fix. The
// underlying cause wraps with %w — sentinel checks like
// errors.Is(err, ErrBadWindow) keep working through Parse.
func tokenErrf(raw string, idx, off int, tok string, err error) error {
	return fmt.Errorf("scenario: %q: token %d %q (char %d): %w", raw, idx, tok, off, err)
}

// Parse reads the canonical string form. The parsed spec is validated.
// Errors about a single token (unknown name, bad ":<arg>" suffix, bad
// parameter) name the token and its position in the string; cross-token
// shape errors (fault slots vs t, restart compositions) carry no position
// because no single token owns them.
func Parse(raw string) (Spec, error) {
	s := Spec{T: TUnset}
	head := raw
	if i := strings.IndexByte(raw, '/'); i >= 0 {
		head = raw[:i]
		off := i + 1
		for _, kv := range strings.Split(raw[i+1:], ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return Spec{}, fmt.Errorf("scenario: %q: parameter %q (char %d): want k=v", raw, kv, off)
			}
			x, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil {
				return Spec{}, fmt.Errorf("scenario: %q: parameter %q (char %d): %w", raw, kv, off, err)
			}
			switch strings.TrimSpace(k) {
			case "n":
				s.N = x
			case "t":
				// Explicit negatives are rejected here rather than left to
				// Validate: t=-1 would otherwise collide with the TUnset
				// sentinel and silently drop from the string form.
				if x < 0 {
					return Spec{}, fmt.Errorf("scenario: %q: parameter %q (char %d): t = %d, need >= 0", raw, kv, off, x)
				}
				s.T = x
			default:
				return Spec{}, fmt.Errorf("scenario: %q: parameter %q (char %d): unknown parameter %q", raw, kv, off, k)
			}
			off += len(kv) + 1
		}
	}
	// Split the head on "+", tracking each token's byte offset.
	parts := strings.Split(head, "+")
	offs := make([]int, len(parts))
	for i, off := 1, 0; i < len(parts); i++ {
		off += len(parts[i-1]) + 1
		offs[i] = off
	}
	s.Sched = strings.TrimSpace(parts[0])
	for _, f := range parts[1:] {
		s.Faults = append(s.Faults, strings.TrimSpace(f))
	}
	// Registry membership, token by token, before any shape checks: a typo
	// should name its token, not fall through to a slot-count complaint.
	name, arg := s.schedKey()
	if _, ok := schedulers[name]; !ok {
		return Spec{}, tokenErrf(raw, 1, offs[0], parts[0],
			fmt.Errorf("unknown scheduler %q (have %s)", name, strings.Join(SchedulerNames(), ", ")))
	}
	for i, f := range s.Faults {
		if IsNetFault(f) || IsRestartFault(f) {
			continue
		}
		if _, ok := faults[f]; !ok {
			return Spec{}, tokenErrf(raw, i+2, offs[i+1], parts[i+1],
				fmt.Errorf("unknown fault %q (have %s; net faults: %s; restart faults: %s)",
					f, strings.Join(FaultNames(), ", "), strings.Join(NetFaultNames(), ", "),
					strings.Join(RestartFaultNames(), ", ")))
		}
	}
	// Cross-token shape checks (fault slots vs t, restart composition, run
	// shape): these have no single offending token, so no position.
	if err := s.validateShape(); err != nil {
		return Spec{}, err
	}
	// Probe each token's factory individually so ":<arg>" problems carry
	// their token position. The probe uses a safe t on TUnset specs, as
	// Validate does.
	t := s.T
	if t == TUnset {
		t = 0
	}
	base, err := schedulers[name](s.N, t, arg)
	if err != nil {
		return Spec{}, tokenErrf(raw, 1, offs[0], parts[0], err)
	}
	for i, f := range s.Faults {
		fb, narg, _ := strings.Cut(f, ":")
		if build, ok := netFaults[fb]; ok {
			if _, err := build(s.N, t, narg, base); err != nil {
				return Spec{}, tokenErrf(raw, i+2, offs[i+1], parts[i+1], err)
			}
		} else if build, ok := restartFaults[fb]; ok {
			if _, err := build(s.N, t, narg); err != nil {
				return Spec{}, tokenErrf(raw, i+2, offs[i+1], parts[i+1], err)
			}
		}
	}
	return s, nil
}

// MustParse is Parse for registered, well-formed literals in driver code.
func MustParse(raw string) Spec {
	s, err := Parse(raw)
	if err != nil {
		panic(err)
	}
	return s
}

// schedKey splits the scheduler token into registry key and argument.
func (s Spec) schedKey() (name, arg string) {
	name, arg, _ = strings.Cut(s.Sched, ":")
	return name, arg
}

// partyFaults returns the fault tokens that occupy fault slots — every
// token that is not a registered network-fault or restart axis. When no
// slot-free tokens are present the spec's own slice is returned without
// allocating.
func (s Spec) partyFaults() []string {
	for i, f := range s.Faults {
		if IsNetFault(f) || IsRestartFault(f) {
			out := make([]string, 0, len(s.Faults)-1)
			out = append(out, s.Faults[:i]...)
			for _, g := range s.Faults[i+1:] {
				if !IsNetFault(g) && !IsRestartFault(g) {
					out = append(out, g)
				}
			}
			return out
		}
	}
	return s.Faults
}

// validateShape checks everything except the scheduler and net-fault
// arguments: registry membership and the run shape.
func (s Spec) validateShape() error {
	name, _ := s.schedKey()
	if _, ok := schedulers[name]; !ok {
		return fmt.Errorf("scenario: unknown scheduler %q (have %s)",
			name, strings.Join(SchedulerNames(), ", "))
	}
	if s.N < 1 {
		return fmt.Errorf("scenario: %s: n = %d, need >= 1", s.Sched, s.N)
	}
	// Network-fault and restart tokens occupy no fault slots, so only
	// party faults count against T (and a net-only composition is fine
	// with t unset).
	party, restarts := 0, 0
	for _, f := range s.Faults {
		if IsNetFault(f) {
			continue // the ":<arg>" suffix is validated when the wrapper builds
		}
		if IsRestartFault(f) {
			restarts++
			continue
		}
		if _, ok := faults[f]; !ok {
			return fmt.Errorf("scenario: unknown fault %q (have %s; net faults: %s; restart faults: %s)",
				f, strings.Join(FaultNames(), ", "), strings.Join(NetFaultNames(), ", "),
				strings.Join(RestartFaultNames(), ", "))
		}
		party++
	}
	if restarts > 1 {
		return fmt.Errorf("scenario: %s: at most one restart axis per spec", s.Sched)
	}
	if restarts > 0 {
		// Restart parties live in the last fault slots; party-fault kinds
		// fill every slot cyclically, so the two can only collide — the
		// combination is rejected here rather than by sim.Config.Validate
		// mid-assembly.
		if party > 0 {
			return fmt.Errorf("scenario: %s: restart axes do not compose with party faults (slots overlap)", s.Sched)
		}
		if s.T == TUnset {
			return fmt.Errorf("scenario: %s: restart axes need an explicit t", s.Sched)
		}
		if s.T < 1 {
			return fmt.Errorf("scenario: %s: restart axes need t >= 1, got t=%d", s.Sched, s.T)
		}
	}
	if s.T != TUnset {
		if s.T < 0 || s.T >= s.N {
			return fmt.Errorf("scenario: %s: t = %d out of range [0, n=%d)", s.Sched, s.T, s.N)
		}
		if party > s.T {
			return fmt.Errorf("scenario: %s: %d fault kinds for %d fault slots", s.Sched, party, s.T)
		}
	} else if party > 0 {
		return fmt.Errorf("scenario: %s: faults need an explicit t", s.Sched)
	}
	return nil
}

// buildScheduler instantiates the spec's scheduler with the given fault
// bound, validating the ":<arg>" suffixes in the process. Network-fault
// tokens wrap the base scheduler in token order (the first listed is the
// innermost layer), fixing the per-send rng draw order the determinism
// contract requires.
func (s Spec) buildScheduler(t int) (sched.Named, error) {
	name, arg := s.schedKey()
	scheduler, err := schedulers[name](s.N, t, arg)
	if err != nil {
		return sched.Named{}, err
	}
	for _, f := range s.Faults {
		base, narg, _ := strings.Cut(f, ":")
		if build, ok := netFaults[base]; ok {
			scheduler, err = build(s.N, t, narg, scheduler)
			if err != nil {
				return sched.Named{}, err
			}
			continue
		}
		if build, ok := restartFaults[base]; ok {
			// A restart axis darkens the downed parties' traffic for the
			// crash window (the state rollback itself rides Resolve's
			// sim.RestartPlans; see restart.go).
			plans, perr := build(s.N, t, narg)
			if perr != nil {
				return sched.Named{}, perr
			}
			scheduler = darknessFor(scheduler, plans)
		}
	}
	return sched.Named{Name: s.Sched, Scheduler: scheduler}, nil
}

// Validate checks the spec against the registry and the run shape, so that
// every invalid combination fails here — at spec time — rather than inside
// a half-finished simulation.
func (s Spec) Validate() error {
	if err := s.validateShape(); err != nil {
		return err
	}
	// Instantiating the scheduler validates the argument too; the probe
	// uses a safe t so :arg typos surface even on TUnset specs.
	t := s.T
	if t == TUnset {
		t = 0
	}
	_, err := s.buildScheduler(t)
	return err
}

// Resolved is a spec instantiated for execution: a named scheduler plus the
// concrete crash plans and Byzantine assignments. Each Resolve call builds
// fresh scheduler state, so stateful schedulers (fifo) are never shared
// across concurrent runs.
type Resolved struct {
	Scheduler sched.Named
	Crashes   []sim.CrashPlan
	Byz       map[sim.PartyID]fault.Behavior
	// Restarts carries the crash-recovery plans of a restart axis; the
	// matching darkness window is already layered into Scheduler.
	Restarts []sim.RestartPlan
}

// Resolve instantiates the spec. The spec must be valid and have a
// concrete T. The scheduler is constructed exactly once, here (Validate's
// probe is not repeated).
func (s Spec) Resolve() (*Resolved, error) {
	if s.T == TUnset {
		return nil, fmt.Errorf("scenario: %s: t unresolved (use WithT)", s)
	}
	if err := s.validateShape(); err != nil {
		return nil, err
	}
	named, err := s.buildScheduler(s.T)
	if err != nil {
		return nil, err
	}
	res := &Resolved{Scheduler: named}
	res.Restarts, err = s.restartPlans(s.T)
	if err != nil {
		return nil, err
	}
	// Network-fault tokens live inside the scheduler wrapper stack built
	// above; only party faults fill the cyclic slot assignment.
	pf := s.partyFaults()
	if len(pf) > 0 {
		// Count the slot split up front so both containers are allocated
		// exactly once at their final size (spec resolution runs once per
		// enumerated engine run; see the run-context recycling notes in
		// internal/harness).
		crashSlots := 0
		for slot := 0; slot < s.T; slot++ {
			if faults[pf[slot%len(pf)]].Crash != nil {
				crashSlots++
			}
		}
		if crashSlots > 0 {
			res.Crashes = make([]sim.CrashPlan, 0, crashSlots)
		}
		if byzSlots := s.T - crashSlots; byzSlots > 0 {
			res.Byz = make(map[sim.PartyID]fault.Behavior, byzSlots)
		}
	}
	for slot := 0; slot < s.T && len(pf) > 0; slot++ {
		kind := faults[pf[slot%len(pf)]]
		if kind.Crash != nil {
			res.Crashes = append(res.Crashes, kind.Crash(s.N, s.T, slot))
		} else {
			res.Byz[sim.PartyID(slot)] = kind.Behavior
		}
	}
	return res, nil
}

// Suite returns the standard six-scheduler adversary sweep at (n, t), each
// paired with the given fault composition — the scenario form of the old
// sched.Suite × fault wiring every sweep experiment used.
func Suite(n, t int, faultKeys ...string) []Spec {
	out := make([]Spec, 0, 6)
	for _, name := range SuiteSchedulers() {
		out = append(out, Spec{Sched: name, Faults: faultKeys, N: n, T: t})
	}
	return out
}

// Cross returns the full cross-product of schedulers × fault compositions
// × sizes, with t derived per size — the enumeration behind large-n sweep
// workloads like E12. A nil faultSets means the single fault-free
// composition.
func Cross(scheds []string, faultSets [][]string, sizes []int, tFor func(n int) int) []Spec {
	if faultSets == nil {
		faultSets = [][]string{nil}
	}
	out := make([]Spec, 0, len(scheds)*len(faultSets)*len(sizes))
	for _, n := range sizes {
		for _, sc := range scheds {
			for _, fs := range faultSets {
				out = append(out, Spec{Sched: sc, Faults: fs, N: n, T: tFor(n)})
			}
		}
	}
	return out
}
