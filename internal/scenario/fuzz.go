package scenario

import (
	"fmt"
	"math/rand"
	"reflect"
)

// FuzzStats summarizes one registry fuzz campaign.
type FuzzStats struct {
	// Trials is the number of random compositions drawn.
	Trials int
	// Valid and Invalid partition the trials by Validate's verdict.
	Valid, Invalid int
	// GarbageParsed counts random byte strings Parse accepted (fine if the
	// bytes happened to form a real spec; the point is that none panic).
	GarbageParsed int
}

// Random draws a random scenario composition from the registry, valid or
// not: out-of-range shapes, over-full fault lists, and bogus scheduler
// arguments are all in the distribution, because the contract under test
// is that every invalid combination is rejected at spec time.
func Random(rng *rand.Rand) Spec {
	scheds := SchedulerNames()
	s := Spec{Sched: scheds[rng.Intn(len(scheds))], T: TUnset}
	if rng.Intn(4) == 0 {
		s.Sched += fmt.Sprintf(":%d", rng.Intn(30)-5) // sometimes <= 0: invalid
	}
	s.N = rng.Intn(40) - 2 // sometimes < 1: invalid
	if rng.Intn(8) > 0 {
		s.T = rng.Intn(12) - 1 // sometimes == -1 (TUnset) or >= N: both paths
	}
	kinds := FaultNames()
	for k := rng.Intn(4); k > 0; k-- {
		s.Faults = append(s.Faults, kinds[rng.Intn(len(kinds))])
	}
	// Network-fault axes ride the same "+" list; arguments range from
	// plausible through boundary-invalid (p=0, k=0, negative windows) to
	// raw garbage, because rejection at spec time is the contract.
	if rng.Intn(3) == 0 {
		nets := NetFaultNames()
		tok := nets[rng.Intn(len(nets))]
		switch rng.Intn(3) {
		case 0:
			// Bare token: registry defaults.
		case 1:
			switch tok {
			case "loss", "dup":
				tok += fmt.Sprintf(":0.%02d", rng.Intn(100)) // 0.00 is invalid
			case "outage":
				tok += fmt.Sprintf(":%d:%d:%d", rng.Intn(6), rng.Intn(100)-5, rng.Intn(100)-5)
			case "flap":
				tok += fmt.Sprintf(":%d", rng.Intn(100)-5)
			}
		default:
			tok += ":" + []string{"x", "-1", "1.5", "0:0", "2"}[rng.Intn(5)]
		}
		s.Faults = append(s.Faults, tok)
	}
	// Crash-recovery axes: bare, boundary (k=0, down past the delay cap,
	// negative lag), and raw-garbage arguments all appear, plus the
	// invalid compositions above (party faults + recover, multiple
	// restart tokens across draws) — spec-time rejection is the contract.
	if rng.Intn(4) == 0 {
		tok := RestartFaultNames()[rng.Intn(len(restartFaults))]
		switch rng.Intn(3) {
		case 0:
			// Bare token: registry defaults.
		case 1:
			if tok == "amnesia" {
				tok += fmt.Sprintf(":%d:%d", rng.Intn(4), rng.Intn(600)-5)
			} else {
				tok += fmt.Sprintf(":%d:%d:%d", rng.Intn(4), rng.Intn(600)-5, rng.Intn(200)-5)
			}
		default:
			tok += ":" + []string{"x", "-1", "1.5", "0:0", "2"}[rng.Intn(5)]
		}
		s.Faults = append(s.Faults, tok)
	}
	return s
}

// Fuzz drives `trials` random compositions through the spec lifecycle and
// checks the registry's contracts: String→Parse round-trips exactly for
// every valid spec, Resolve succeeds on exactly the valid ones, and Parse
// never panics — not even on raw garbage. It returns an error on the first
// contract violation.
func Fuzz(trials int, seed int64) (*FuzzStats, error) {
	rng := rand.New(rand.NewSource(seed))
	stats := &FuzzStats{}
	for i := 0; i < trials; i++ {
		stats.Trials++
		s := Random(rng)
		raw := s.String()
		if err := s.Validate(); err != nil {
			stats.Invalid++
			// Invalidity must survive the round trip: the string form of a
			// bad spec must not parse into a good one.
			if _, perr := Parse(raw); perr == nil {
				return stats, fmt.Errorf("invalid spec %q (%v) round-trips to a valid one", raw, err)
			}
			// And Resolve must refuse what Validate refused.
			if _, rerr := s.Resolve(); rerr == nil {
				return stats, fmt.Errorf("invalid spec %q resolved despite %v", raw, err)
			}
			continue
		}
		stats.Valid++
		parsed, err := Parse(raw)
		if err != nil {
			return stats, fmt.Errorf("valid spec %q fails to re-parse: %w", raw, err)
		}
		if !reflect.DeepEqual(parsed, s) {
			return stats, fmt.Errorf("round trip drifted: %q -> %+v, want %+v", raw, parsed, s)
		}
		if s.T != TUnset {
			if _, err := s.Resolve(); err != nil {
				return stats, fmt.Errorf("valid spec %q fails to resolve: %w", raw, err)
			}
		}
		// Parse must tolerate arbitrary bytes without panicking.
		if _, err := Parse(mutate(rng, raw)); err == nil {
			stats.GarbageParsed++
		}
	}
	return stats, nil
}

// mutate mangles a spec string: splices, duplicate separators, random bytes.
func mutate(rng *rand.Rand, raw string) string {
	b := []byte(raw)
	for k := 1 + rng.Intn(4); k > 0; k-- {
		switch rng.Intn(3) {
		case 0:
			if len(b) > 0 {
				b[rng.Intn(len(b))] = byte(rng.Intn(256))
			}
		case 1:
			pos := rng.Intn(len(b) + 1)
			b = append(b[:pos:pos], append([]byte{"+/,:="[rng.Intn(5)]}, b[pos:]...)...)
		default:
			if len(b) > 1 {
				pos := rng.Intn(len(b) - 1)
				b = append(b[:pos], b[pos+1:]...)
			}
		}
	}
	return string(b)
}
