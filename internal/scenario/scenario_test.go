package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"sync/n=9,t=4",
		"sync:5+crash/n=10,t=4",
		"skew+equivocate/n=64,t=9",
		"splitviews/n=64",
		"random+crash+equivocate/n=13,t=6",
		"fifo/n=7,t=2",
	}
	for _, raw := range cases {
		s, err := Parse(raw)
		if err != nil {
			t.Fatalf("Parse(%q): %v", raw, err)
		}
		if got := s.String(); got != raw {
			t.Errorf("round trip %q -> %q", raw, got)
		}
		again, err := Parse(s.String())
		if err != nil || !reflect.DeepEqual(again, s) {
			t.Errorf("re-parse of %q drifted: %+v vs %+v (%v)", raw, again, s, err)
		}
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"warp/n=9,t=2":                 "unknown scheduler",
		"sync/n=9,t=2,x=1":             "unknown parameter",
		"sync/n=0,t=0":                 "n out of range",
		"sync/n=9,t=9":                 "t out of range",
		"sync+gremlin/n=9,t=2":         "unknown fault",
		"sync+crash":                   "faults without n",
		"sync+crash/n=9":               "faults without t",
		"sync+crash+spam+spam/n=9,t=2": "more fault kinds than slots",
		"sync:0/n=9,t=2":               "bad scheduler argument",
		"sync/n=9,t=-1":                "explicit negative t (TUnset sentinel collision)",
		"unordered:3/n=9,t=2":          "argument on arg-less scheduler",
		"sync/n=":                      "empty parameter value",
		"":                             "empty spec",
	}
	for raw, why := range cases {
		if _, err := Parse(raw); err == nil {
			t.Errorf("Parse(%q) accepted (%s)", raw, why)
		}
	}
}

// TestParseErrorNamesToken pins the satellite contract: a parse error
// about a single token names the token, its 1-based index, and its byte
// position in the raw string, so a failed sweep row says which axis to
// fix. Cross-token shape errors (slot counts, restart composition) carry
// no position — no single token owns them.
func TestParseErrorNamesToken(t *testing.T) {
	cases := []struct {
		raw  string
		want []string
	}{
		{"warp/n=9,t=2", []string{`token 1 "warp"`, `(char 0)`, `unknown scheduler "warp"`}},
		{"sync:0/n=9,t=2", []string{`token 1 "sync:0"`, `(char 0)`}},
		{"sync+gremlin/n=9,t=2", []string{`token 2 "gremlin"`, `(char 5)`, `unknown fault "gremlin"`}},
		{"random+crash+gremlin/n=9,t=2", []string{`token 3 "gremlin"`, `(char 13)`}},
		{"random+loss:2/n=9,t=2", []string{`token 2 "loss:2"`, `(char 7)`}},
		{"random+crash+flap:0/n=9,t=2", []string{`token 3 "flap:0"`, `(char 13)`}},
		{"random+outage:2:50:0/n=9,t=2", []string{`token 2 "outage:2:50:0"`, `(char 7)`}},
		{"random+recover:1:9999999:0/n=9,t=2", []string{`token 2 "recover:1:9999999:0"`, `(char 7)`}},
		{"sync/n=9,x=1", []string{`parameter "x=1"`, `(char 9)`}},
		{"sync/n=", []string{`parameter "n="`, `(char 5)`}},
		{"sync/n=9,t=-1", []string{`parameter "t=-1"`, `(char 9)`, "need >= 0"}},
		// Shape errors stay positionless: both tokens are individually fine.
		{"sync+crash+spam+spam/n=9,t=2", []string{"fault kinds for"}},
	}
	for _, tc := range cases {
		_, err := Parse(tc.raw)
		if err == nil {
			t.Errorf("Parse(%q) accepted", tc.raw)
			continue
		}
		for _, want := range tc.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("Parse(%q) error %q missing %q", tc.raw, err, want)
			}
		}
	}
}

// TestResolveMirrorsLegacySuite pins the registry against the historical
// wiring: the six-scheduler suite must produce exactly sched.Suite's
// parameterizations, and the fault kinds exactly fault.Suite(0,1) plus the
// harness's staggered crash plans.
func TestResolveMirrorsLegacySuite(t *testing.T) {
	n, tf := 15, 2
	suite := Suite(n, tf)
	legacy := sched.Suite(n, tf)
	if len(suite) != len(legacy) {
		t.Fatalf("suite size %d, legacy %d", len(suite), len(legacy))
	}
	for i, spec := range suite {
		if spec.Sched != legacy[i].Name {
			t.Fatalf("suite[%d] = %s, legacy %s", i, spec.Sched, legacy[i].Name)
		}
		res, err := spec.Resolve()
		if err != nil {
			t.Fatalf("resolve %s: %v", spec, err)
		}
		if res.Scheduler.Name != legacy[i].Name {
			t.Errorf("%s: resolved name %q", spec, res.Scheduler.Name)
		}
		if got, want := reflect.TypeOf(res.Scheduler.Scheduler), reflect.TypeOf(legacy[i].Scheduler); got != want {
			t.Errorf("%s: scheduler type %v, legacy %v", spec, got, want)
		}
		if !reflect.DeepEqual(res.Scheduler.Scheduler, legacy[i].Scheduler) {
			t.Errorf("%s: scheduler %+v, legacy %+v", spec, res.Scheduler.Scheduler, legacy[i].Scheduler)
		}
	}

	res, err := Spec{Sched: "sync", Faults: []string{"crash"}, N: 9, T: 4}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	for slot, plan := range res.Crashes {
		want := sim.CrashPlan{Party: sim.PartyID(slot), AfterSends: 9/2 + slot*9*2}
		if plan != want {
			t.Errorf("crash slot %d: %+v, want %+v", slot, plan, want)
		}
	}

	legacyByz := fault.Suite(0, 1)
	for i, name := range ByzSuite() {
		res, err := Spec{Sched: "splitviews", Faults: []string{name}, N: 10, T: 3}.Resolve()
		if err != nil {
			t.Fatalf("resolve %s: %v", name, err)
		}
		if len(res.Byz) != 3 || len(res.Crashes) != 0 {
			t.Fatalf("%s: %d byz, %d crashes", name, len(res.Byz), len(res.Crashes))
		}
		if !reflect.DeepEqual(res.Byz[0], legacyByz[i]) {
			t.Errorf("%s: behavior %+v, legacy %+v", name, res.Byz[0], legacyByz[i])
		}
	}
}

// TestResolveMixedFaults pins the cyclic slot assignment of composite
// fault lists.
func TestResolveMixedFaults(t *testing.T) {
	res, err := MustParse("random+crash+equivocate/n=13,t=5").Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crashes) != 3 { // slots 0, 2, 4
		t.Fatalf("crashes %+v", res.Crashes)
	}
	if len(res.Byz) != 2 { // slots 1, 3
		t.Fatalf("byz %+v", res.Byz)
	}
	for _, p := range []sim.PartyID{1, 3} {
		if _, ok := res.Byz[p]; !ok {
			t.Errorf("slot %d not byzantine", p)
		}
	}
}

// TestResolveFreshInstances pins that stateful schedulers are never shared
// across resolutions.
func TestResolveFreshInstances(t *testing.T) {
	spec := MustParse("fifo/n=7,t=2")
	a, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if a.Scheduler.Scheduler == b.Scheduler.Scheduler {
		t.Fatal("fifo scheduler instance shared across resolutions")
	}
}

func TestSchedulerArg(t *testing.T) {
	res, err := MustParse("sync:5/n=9,t=4").Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Scheduler.Scheduler.Delay(sim.Envelope{}, 0, nil); d != 5 {
		t.Fatalf("sync:5 delay = %d", d)
	}
	if res.Scheduler.Name != "sync:5" {
		t.Fatalf("resolved name %q", res.Scheduler.Name)
	}
}

func TestCross(t *testing.T) {
	specs := Cross([]string{"sync", "splitviews"}, [][]string{nil, {"crash"}},
		[]int{64, 128}, func(n int) int { return (n - 1) / 2 })
	if len(specs) != 8 {
		t.Fatalf("cross product size %d", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s, err)
		}
		if s.T != (s.N-1)/2 {
			t.Errorf("%s: t not derived", s)
		}
	}
}

func TestFuzzRegistry(t *testing.T) {
	stats, err := Fuzz(800, 7)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Valid == 0 || stats.Invalid == 0 {
		t.Fatalf("degenerate fuzz distribution: %+v", stats)
	}
}

// TestRegisterRejectsGrammarNames pins that extension registrants cannot
// break the String → Parse round trip with metacharacter names.
func TestRegisterRejectsGrammarNames(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("registering %q did not panic", name)
			}
		}()
		fn()
	}
	for _, name := range []string{"crash+burn", "net/slow", "sync:x", "a,b", "a=b", "two words"} {
		name := name
		mustPanic(name, func() {
			RegisterScheduler(name, func(_, _ int, _ string) (sim.Scheduler, error) { return nil, nil })
		})
		mustPanic(name, func() {
			RegisterFault(name, FaultKind{Behavior: fault.Silent{}})
		})
	}
}

func TestRegistryNames(t *testing.T) {
	for _, name := range SuiteSchedulers() {
		if _, ok := schedulers[name]; !ok {
			t.Errorf("suite scheduler %q unregistered", name)
		}
	}
	for _, name := range ByzSuite() {
		if _, ok := faults[name]; !ok {
			t.Errorf("byz suite fault %q unregistered", name)
		}
	}
	if !strings.Contains(strings.Join(FaultNames(), ","), "crashinit") {
		t.Error("crashinit unregistered")
	}
}
