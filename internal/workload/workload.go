// Package workload generates deterministic, seeded request load for the
// serving layer (internal/serve): arrival processes, per-request service
// latency models, client cohorts, and correlated disturbance windows, all
// expressible as one compact parseable spec string — the traffic-shape
// analogue of internal/scenario's adversary specs, so overload sweeps can
// enumerate workload shapes exactly like fault compositions.
//
// Specs have a token string form,
//
//	<arrival>[+<latency>][+cohort:...][+<window>...]
//
// e.g. "poisson:40+lognormal:4:0.5+cohort:web:0.75:300:1+flapstorm:2000:800".
// The first token is the arrival process; the remaining tokens may appear
// in any order and String renders them canonically (latency, cohorts,
// windows). Parse and String round-trip canonical strings exactly, and —
// like scenario.Parse — every parse error names the offending token and
// its byte position in the input, so a sweep over generated specs fails
// with the axis that broke, not just the string.
//
// Rates are in requests per kilotick (1000 virtual ticks); durations,
// deadlines, and window bounds are in ticks. Generation is a pure function
// of (Spec, seed, horizon): arrival times are drawn first from one seeded
// stream, then per-request service and cohort draws follow in arrival
// order, so the same spec and seed always produce byte-identical request
// sequences — the property the deterministic overload sweep (E15) and the
// bench-smoke drift gate ride on.
//
// Arrival processes:
//
//	const:R          evenly spaced arrivals at R per kilotick
//	poisson:R        exponential interarrivals with mean 1000/R ticks
//	diurnal:P:B:K    inhomogeneous Poisson, rate swinging sinusoidally
//	                 between trough B and peak K per kilotick with period
//	                 P ticks (thinning at the peak rate)
//	burst:R:S:E      open-loop bursts: a const base stream at R plus S
//	                 simultaneous arrivals every E ticks
//
// Latency models (modeled intrinsic service cost per instance, in ticks):
//
//	lognormal:M:S    exp(N(M, S)): the classic service-time body
//	bimodal:F:S:P    F ticks with probability 1-P, else S (cache hit/miss)
//	pareto:M:A       M / U^(1/A): heavy tail; requires A > 1 so the mean
//	                 (and thus a saturation rate) exists
//
// Cohorts ("cohort:NAME:WEIGHT:DEADLINE[:PRIO]") partition requests by a
// seeded weighted draw; each cohort carries its own deadline budget and
// shed priority (higher = shed later). Disturbance windows
// ("outagewin:START:LEN", "flapstorm:START:LEN") mark intervals of
// correlated trouble: every request arriving inside a window is tagged
// with it, and the serving layer composes the matching scenario fault axis
// (a regional outage or a flap storm) into those requests' agreement
// instances.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// ArrivalKind enumerates the arrival processes.
type ArrivalKind uint8

const (
	ArrivalConst ArrivalKind = iota
	ArrivalPoisson
	ArrivalDiurnal
	ArrivalBurst
)

// Arrival is one arrival process. Rate (and Peak) are requests per
// kilotick; Period is in ticks.
type Arrival struct {
	Kind ArrivalKind
	// Rate is the base rate: the constant rate (const, burst), the mean
	// rate (poisson), or the trough rate (diurnal).
	Rate float64
	// Peak is the diurnal peak rate.
	Peak float64
	// Period is the diurnal period or the burst interval, in ticks.
	Period int64
	// Size is the burst size.
	Size int
}

// LatencyKind enumerates the service-latency models.
type LatencyKind uint8

const (
	LatLognormal LatencyKind = iota
	LatBimodal
	LatPareto
)

// Latency is one service-latency model; A, B, C are the model parameters
// in token order (lognormal: mu, sigma; bimodal: fast, slow, p(slow);
// pareto: scale, alpha).
type Latency struct {
	Kind    LatencyKind
	A, B, C float64
}

// Mean returns the analytic mean service cost in ticks — the quantity
// saturation rates are derived from (capacity = workers / mean).
func (l Latency) Mean() float64 {
	switch l.Kind {
	case LatBimodal:
		return l.A*(1-l.C) + l.B*l.C
	case LatPareto:
		return l.A * l.B / (l.B - 1)
	default: // lognormal
		return math.Exp(l.A + l.B*l.B/2)
	}
}

// draw samples one service cost (>= 1 tick).
func (l Latency) draw(rng *rand.Rand) int64 {
	var v float64
	switch l.Kind {
	case LatBimodal:
		if rng.Float64() < l.C {
			v = l.B
		} else {
			v = l.A
		}
	case LatPareto:
		v = l.A / math.Pow(1-rng.Float64(), 1/l.B)
	default:
		v = math.Exp(rng.NormFloat64()*l.B + l.A)
	}
	if v < 1 {
		return 1
	}
	if v > 1e9 {
		return 1e9
	}
	return int64(v)
}

// Cohort is one client class: a share of the traffic with its own deadline
// budget and shed priority.
type Cohort struct {
	Name string
	// Weight is the cohort's share of requests (normalized over all
	// cohorts by the seeded assignment draw).
	Weight float64
	// Deadline is the per-request budget in ticks from arrival.
	Deadline int64
	// Priority orders load shedding: higher-priority requests are shed
	// last. Priority 0 is sheddable at the queue watermark.
	Priority int
}

// WindowKind enumerates the correlated disturbance windows.
type WindowKind uint8

const (
	// WindowOutage composes a regional-outage fault axis into instances
	// arriving inside the window.
	WindowOutage WindowKind = iota
	// WindowFlapStorm composes a flap fault axis into instances arriving
	// inside the window.
	WindowFlapStorm
)

// Window is one disturbance interval [Start, Start+Len) in ticks.
type Window struct {
	Kind       WindowKind
	Start, Len int64
}

// Spec is one declarative workload. The zero Spec is invalid (Arrival.Rate
// must be positive); use Parse or construct and Validate.
type Spec struct {
	Arrival Arrival
	Latency Latency
	Cohorts []Cohort
	Windows []Window
}

// DefaultDeadline is the implicit cohort's per-request budget in ticks.
const DefaultDeadline = 400

// defaultLatency is the implicit service model: lognormal(4, 0.5), mean
// ~62 ticks.
var defaultLatency = Latency{Kind: LatLognormal, A: 4, B: 0.5}

// defaultCohort is the implicit single client class.
var defaultCohort = Cohort{Name: "default", Weight: 1, Deadline: DefaultDeadline, Priority: 1}

// Request is one generated request. All times are virtual ticks.
type Request struct {
	// ID is the request's index in arrival order.
	ID int
	// Arrival is the arrival tick.
	Arrival int64
	// Service is the modeled intrinsic service cost in ticks (one
	// latency-model draw; the cost of one instance attempt).
	Service int64
	// Cohort indexes Spec.EffectiveCohorts().
	Cohort int
	// Deadline is the budget in ticks from Arrival (cohort-derived).
	Deadline int64
	// Priority is the shed priority (cohort-derived).
	Priority int
	// Window indexes Spec.Windows for the first disturbance window
	// containing Arrival, or -1.
	Window int
	// Seed is the per-request instance seed, derived deterministically
	// from the generation seed and ID.
	Seed int64
}

// EffectiveCohorts returns the spec's cohorts, or the implicit default
// cohort when none are declared.
func (s Spec) EffectiveCohorts() []Cohort {
	if len(s.Cohorts) == 0 {
		return []Cohort{defaultCohort}
	}
	return s.Cohorts
}

// EffectiveLatency returns the spec's latency model, or the implicit
// default when the spec carries none (zero-valued Latency).
func (s Spec) EffectiveLatency() Latency {
	if s.Latency == (Latency{}) {
		return defaultLatency
	}
	return s.Latency
}

// Scale returns the spec with every arrival rate multiplied by mult — the
// offered-load multiplier axis of the overload sweep. Burst sizes scale
// too (rounded up), so a 4x burst workload genuinely offers 4x.
func (s Spec) Scale(mult float64) Spec {
	s.Arrival.Rate *= mult
	s.Arrival.Peak *= mult
	if s.Arrival.Kind == ArrivalBurst {
		s.Arrival.Size = int(math.Ceil(float64(s.Arrival.Size) * mult))
	}
	// Cohorts and Windows are shared, immutable-by-convention slices; Scale
	// only rewrites the value-typed Arrival.
	return s
}

// String renders the spec in its canonical parseable form: arrival,
// latency (when explicit), cohorts, windows.
func (s Spec) String() string {
	var b strings.Builder
	switch s.Arrival.Kind {
	case ArrivalPoisson:
		fmt.Fprintf(&b, "poisson:%s", ftoa(s.Arrival.Rate))
	case ArrivalDiurnal:
		fmt.Fprintf(&b, "diurnal:%d:%s:%s", s.Arrival.Period, ftoa(s.Arrival.Rate), ftoa(s.Arrival.Peak))
	case ArrivalBurst:
		fmt.Fprintf(&b, "burst:%s:%d:%d", ftoa(s.Arrival.Rate), s.Arrival.Size, s.Arrival.Period)
	default:
		fmt.Fprintf(&b, "const:%s", ftoa(s.Arrival.Rate))
	}
	if s.Latency != (Latency{}) {
		switch s.Latency.Kind {
		case LatBimodal:
			fmt.Fprintf(&b, "+bimodal:%s:%s:%s", ftoa(s.Latency.A), ftoa(s.Latency.B), ftoa(s.Latency.C))
		case LatPareto:
			fmt.Fprintf(&b, "+pareto:%s:%s", ftoa(s.Latency.A), ftoa(s.Latency.B))
		default:
			fmt.Fprintf(&b, "+lognormal:%s:%s", ftoa(s.Latency.A), ftoa(s.Latency.B))
		}
	}
	for _, c := range s.Cohorts {
		fmt.Fprintf(&b, "+cohort:%s:%s:%d:%d", c.Name, ftoa(c.Weight), c.Deadline, c.Priority)
	}
	for _, w := range s.Windows {
		tok := "outagewin"
		if w.Kind == WindowFlapStorm {
			tok = "flapstorm"
		}
		fmt.Fprintf(&b, "+%s:%d:%d", tok, w.Start, w.Len)
	}
	return b.String()
}

// ftoa renders a parameter float compactly ("40", "0.5").
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// tokenErr is the parse-error shape: every error names the offending
// token, its 1-based index, and its byte position in the raw spec.
func tokenErr(raw string, idx, off int, tok, format string, args ...any) error {
	return fmt.Errorf("workload: %q: token %d %q (char %d): %s",
		raw, idx, tok, off, fmt.Sprintf(format, args...))
}

// Parse reads the token string form. The parsed spec is validated; errors
// name the offending token and its position.
func Parse(raw string) (Spec, error) {
	if strings.TrimSpace(raw) == "" {
		return Spec{}, fmt.Errorf("workload: empty spec")
	}
	var s Spec
	parts := strings.Split(raw, "+")
	off := 0
	for i, part := range parts {
		tok := strings.TrimSpace(part)
		idx := i + 1
		fields := strings.Split(tok, ":")
		name := fields[0]
		args := fields[1:]
		var err error
		if i == 0 {
			err = s.parseArrival(name, args)
			if err == nil {
				switch name {
				case "const", "poisson", "diurnal", "burst":
				default:
					err = fmt.Errorf("unknown arrival process %q (have const, poisson, diurnal, burst)", name)
				}
			}
		} else {
			err = s.parseAxis(name, args)
		}
		if err != nil {
			return Spec{}, tokenErr(raw, idx, off, tok, "%v", err)
		}
		off += len(part) + 1
	}
	if err := s.Validate(); err != nil {
		return Spec{}, fmt.Errorf("workload: %q: %w", raw, err)
	}
	return s, nil
}

// MustParse is Parse for well-formed literals in driver code.
func MustParse(raw string) Spec {
	s, err := Parse(raw)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Spec) parseArrival(name string, args []string) error {
	switch name {
	case "const", "poisson":
		r, err := floatArg(args, 0, "rate")
		if err != nil {
			return err
		}
		if len(args) != 1 {
			return fmt.Errorf("%s wants 1 argument (rate), got %d", name, len(args))
		}
		s.Arrival = Arrival{Kind: ArrivalConst, Rate: r}
		if name == "poisson" {
			s.Arrival.Kind = ArrivalPoisson
		}
	case "diurnal":
		if len(args) != 3 {
			return fmt.Errorf("diurnal wants 3 arguments (period:trough:peak), got %d", len(args))
		}
		p, err := intArg(args, 0, "period")
		if err != nil {
			return err
		}
		base, err := floatArg(args, 1, "trough rate")
		if err != nil {
			return err
		}
		peak, err := floatArg(args, 2, "peak rate")
		if err != nil {
			return err
		}
		s.Arrival = Arrival{Kind: ArrivalDiurnal, Rate: base, Peak: peak, Period: p}
	case "burst":
		if len(args) != 3 {
			return fmt.Errorf("burst wants 3 arguments (rate:size:every), got %d", len(args))
		}
		r, err := floatArg(args, 0, "rate")
		if err != nil {
			return err
		}
		size, err := intArg(args, 1, "size")
		if err != nil {
			return err
		}
		every, err := intArg(args, 2, "every")
		if err != nil {
			return err
		}
		s.Arrival = Arrival{Kind: ArrivalBurst, Rate: r, Size: int(size), Period: every}
	default:
		// Reported by the caller as an unknown arrival process; parse
		// nothing here.
	}
	return nil
}

func (s *Spec) parseAxis(name string, args []string) error {
	switch name {
	case "lognormal", "bimodal", "pareto":
		if s.Latency != (Latency{}) {
			return fmt.Errorf("second latency model (one per spec)")
		}
		switch name {
		case "lognormal":
			if len(args) != 2 {
				return fmt.Errorf("lognormal wants 2 arguments (mu:sigma), got %d", len(args))
			}
			mu, err := floatArg(args, 0, "mu")
			if err != nil {
				return err
			}
			sigma, err := floatArg(args, 1, "sigma")
			if err != nil {
				return err
			}
			s.Latency = Latency{Kind: LatLognormal, A: mu, B: sigma}
		case "bimodal":
			if len(args) != 3 {
				return fmt.Errorf("bimodal wants 3 arguments (fast:slow:pslow), got %d", len(args))
			}
			fast, err := floatArg(args, 0, "fast")
			if err != nil {
				return err
			}
			slow, err := floatArg(args, 1, "slow")
			if err != nil {
				return err
			}
			p, err := floatArg(args, 2, "pslow")
			if err != nil {
				return err
			}
			s.Latency = Latency{Kind: LatBimodal, A: fast, B: slow, C: p}
		case "pareto":
			if len(args) != 2 {
				return fmt.Errorf("pareto wants 2 arguments (scale:alpha), got %d", len(args))
			}
			scale, err := floatArg(args, 0, "scale")
			if err != nil {
				return err
			}
			alpha, err := floatArg(args, 1, "alpha")
			if err != nil {
				return err
			}
			s.Latency = Latency{Kind: LatPareto, A: scale, B: alpha}
		}
	case "cohort":
		if len(args) != 3 && len(args) != 4 {
			return fmt.Errorf("cohort wants name:weight:deadline[:prio], got %d arguments", len(args))
		}
		c := Cohort{Name: args[0], Priority: 1}
		if c.Name == "" {
			return fmt.Errorf("empty cohort name")
		}
		w, err := floatArg(args, 1, "weight")
		if err != nil {
			return err
		}
		c.Weight = w
		d, err := intArg(args, 2, "deadline")
		if err != nil {
			return err
		}
		c.Deadline = d
		if len(args) == 4 {
			p, err := intArg(args, 3, "priority")
			if err != nil {
				return err
			}
			c.Priority = int(p)
		}
		s.Cohorts = append(s.Cohorts, c)
	case "outagewin", "flapstorm":
		if len(args) != 2 {
			return fmt.Errorf("%s wants 2 arguments (start:len), got %d", name, len(args))
		}
		start, err := intArg(args, 0, "start")
		if err != nil {
			return err
		}
		length, err := intArg(args, 1, "len")
		if err != nil {
			return err
		}
		w := Window{Kind: WindowOutage, Start: start, Len: length}
		if name == "flapstorm" {
			w.Kind = WindowFlapStorm
		}
		s.Windows = append(s.Windows, w)
	default:
		return fmt.Errorf("unknown token %q (have lognormal, bimodal, pareto, cohort, outagewin, flapstorm)", name)
	}
	return nil
}

func floatArg(args []string, i int, what string) (float64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing %s argument", what)
	}
	v, err := strconv.ParseFloat(args[i], 64)
	if err != nil {
		return 0, fmt.Errorf("%s %q: not a number", what, args[i])
	}
	return v, nil
}

func intArg(args []string, i int, what string) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing %s argument", what)
	}
	v, err := strconv.ParseInt(args[i], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s %q: not an integer", what, args[i])
	}
	return v, nil
}

// Validate checks the spec's shape so that every invalid workload fails at
// spec time, never mid-generation.
func (s Spec) Validate() error {
	a := s.Arrival
	if !(a.Rate > 0) || math.IsInf(a.Rate, 0) {
		return fmt.Errorf("arrival rate %v, need > 0", a.Rate)
	}
	switch a.Kind {
	case ArrivalDiurnal:
		if a.Period < 1 {
			return fmt.Errorf("diurnal period %d, need >= 1", a.Period)
		}
		if !(a.Peak >= a.Rate) {
			return fmt.Errorf("diurnal peak %v below trough %v", a.Peak, a.Rate)
		}
	case ArrivalBurst:
		if a.Size < 1 {
			return fmt.Errorf("burst size %d, need >= 1", a.Size)
		}
		if a.Period < 1 {
			return fmt.Errorf("burst interval %d, need >= 1", a.Period)
		}
	}
	l := s.EffectiveLatency()
	switch l.Kind {
	case LatLognormal:
		if l.B < 0 {
			return fmt.Errorf("lognormal sigma %v, need >= 0", l.B)
		}
	case LatBimodal:
		if l.A < 1 || l.B < l.A {
			return fmt.Errorf("bimodal wants 1 <= fast <= slow, got %v, %v", l.A, l.B)
		}
		if l.C < 0 || l.C > 1 {
			return fmt.Errorf("bimodal pslow %v outside [0, 1]", l.C)
		}
	case LatPareto:
		if l.A < 1 {
			return fmt.Errorf("pareto scale %v, need >= 1", l.A)
		}
		if !(l.B > 1) {
			return fmt.Errorf("pareto alpha %v, need > 1 (finite mean)", l.B)
		}
	}
	if math.IsInf(l.Mean(), 0) || l.Mean() <= 0 {
		return fmt.Errorf("latency model has no finite positive mean")
	}
	for _, c := range s.Cohorts {
		if strings.ContainsAny(c.Name, "+/:,= \t\n") {
			return fmt.Errorf("cohort name %q contains spec metacharacters", c.Name)
		}
		if !(c.Weight > 0) {
			return fmt.Errorf("cohort %s weight %v, need > 0", c.Name, c.Weight)
		}
		if c.Deadline < 1 {
			return fmt.Errorf("cohort %s deadline %d, need >= 1", c.Name, c.Deadline)
		}
		if c.Priority < 0 {
			return fmt.Errorf("cohort %s priority %d, need >= 0", c.Name, c.Priority)
		}
	}
	for _, w := range s.Windows {
		if w.Start < 0 || w.Len < 1 {
			return fmt.Errorf("disturbance window [%d, +%d), need start >= 0 and len >= 1", w.Start, w.Len)
		}
	}
	return nil
}

// reqSeed derives the per-request instance seed (splitmix-style mix so
// adjacent IDs land far apart in seed space).
func reqSeed(seed int64, id int) int64 {
	return seed ^ (int64(id)+1)*-0x61c8864680b583eb // 2^64/phi, signed
}

// Generate produces every request arriving in [0, horizon), in arrival
// order. It is a pure function of (spec, seed, horizon).
func (s Spec) Generate(seed int64, horizon int64) []Request {
	return s.generate(seed, horizon, -1)
}

// GenerateN produces the first n requests of the stream regardless of
// horizon — the bounded-count form the daemon uses.
func (s Spec) GenerateN(seed int64, n int) []Request {
	return s.generate(seed, math.MaxInt64, n)
}

func (s Spec) generate(seed int64, horizon int64, limit int) []Request {
	// Two independent deterministic streams: arrivals first, then the
	// per-request draws in arrival order. Splitting the streams keeps a
	// latency-model change from perturbing arrival times.
	arrivalRng := rand.New(rand.NewSource(seed ^ 0x41525256)) // "ARRV"
	drawRng := rand.New(rand.NewSource(seed ^ 0x44524157))    // "DRAW"
	times := s.arrivals(arrivalRng, horizon, limit)
	lat := s.EffectiveLatency()
	cohorts := s.EffectiveCohorts()
	totalW := 0.0
	for _, c := range cohorts {
		totalW += c.Weight
	}
	reqs := make([]Request, len(times))
	for i, at := range times {
		r := Request{
			ID:      i,
			Arrival: at,
			Service: lat.draw(drawRng),
			Window:  -1,
			Seed:    reqSeed(seed, i),
		}
		// Weighted cohort draw.
		pick := drawRng.Float64() * totalW
		ci := 0
		for j, c := range cohorts {
			if pick < c.Weight || j == len(cohorts)-1 {
				ci = j
				break
			}
			pick -= c.Weight
		}
		r.Cohort = ci
		r.Deadline = cohorts[ci].Deadline
		r.Priority = cohorts[ci].Priority
		for wi, w := range s.Windows {
			if at >= w.Start && at < w.Start+w.Len {
				r.Window = wi
				break
			}
		}
		reqs[i] = r
	}
	return reqs
}

// arrivals draws the arrival-time stream: ascending ticks in [0, horizon),
// at most limit entries when limit >= 0.
func (s Spec) arrivals(rng *rand.Rand, horizon int64, limit int) []int64 {
	var out []int64
	emit := func(t int64) bool {
		if t >= horizon || (limit >= 0 && len(out) >= limit) {
			return false
		}
		out = append(out, t)
		return true
	}
	a := s.Arrival
	switch a.Kind {
	case ArrivalPoisson:
		mean := 1000 / a.Rate
		t := 0.0
		for {
			t += rng.ExpFloat64() * mean
			if !emit(int64(t)) {
				return out
			}
		}
	case ArrivalDiurnal:
		// Thinning: candidates at the peak rate, accepted with probability
		// rate(t)/peak where rate swings sinusoidally over Period.
		mean := 1000 / a.Peak
		t := 0.0
		for {
			t += rng.ExpFloat64() * mean
			if t >= float64(horizon) && limit < 0 {
				return out
			}
			phase := 2 * math.Pi * t / float64(a.Period)
			rate := a.Rate + (a.Peak-a.Rate)*0.5*(1-math.Cos(phase))
			if rng.Float64() < rate/a.Peak {
				if !emit(int64(t)) {
					return out
				}
			}
		}
	case ArrivalBurst:
		ia := 1000 / a.Rate
		base := ia
		nextBurst := a.Period
		for {
			if int64(base) < nextBurst {
				if !emit(int64(base)) {
					return out
				}
				base += ia
				continue
			}
			for i := 0; i < a.Size; i++ {
				if !emit(nextBurst) {
					return out
				}
			}
			nextBurst += a.Period
		}
	default: // const
		ia := 1000 / a.Rate
		t := ia
		for {
			if !emit(int64(t)) {
				return out
			}
			t += ia
		}
	}
}

// SaturationRate returns the offered-load rate (requests per kilotick)
// that saturates a pool of the given worker count under this spec's
// latency model: workers / mean-service, the 1x anchor of the overload
// sweep's multiplier axis.
func (s Spec) SaturationRate(workers int) float64 {
	return float64(workers) * 1000 / s.EffectiveLatency().Mean()
}
