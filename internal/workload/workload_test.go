package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"const:40",
		"poisson:12.5",
		"diurnal:2000:10:80",
		"burst:20:16:500",
		"poisson:40+lognormal:4:0.5",
		"poisson:40+bimodal:20:400:0.1",
		"const:8+pareto:30:1.5",
		"poisson:40+lognormal:4:0.5+cohort:web:0.75:300:1+cohort:batch:0.25:1200:0",
		"poisson:40+cohort:web:1:300:2+outagewin:800:600+flapstorm:2000:800",
	}
	for _, raw := range cases {
		s, err := Parse(raw)
		if err != nil {
			t.Fatalf("Parse(%q): %v", raw, err)
		}
		if got := s.String(); got != raw {
			t.Errorf("round trip %q -> %q", raw, got)
		}
		again, err := Parse(s.String())
		if err != nil || !reflect.DeepEqual(again, s) {
			t.Errorf("re-parse of %q drifted: %+v vs %+v (%v)", raw, again, s, err)
		}
	}
}

// TestParseErrorMessages pins the satellite contract: every parse error
// names the offending token, its index, and its byte position in the raw
// spec — not just a wrapped sentinel.
func TestParseErrorMessages(t *testing.T) {
	cases := []struct {
		raw  string
		want []string
	}{
		{"warp:4", []string{`token 1 "warp:4"`, `(char 0)`, "unknown arrival process"}},
		{"poisson:x", []string{`token 1 "poisson:x"`, `(char 0)`, `rate "x": not a number`}},
		{"poisson:40+gremlin:1", []string{`token 2 "gremlin:1"`, `(char 11)`, `unknown token "gremlin"`}},
		{"poisson:40+lognormal:4", []string{`token 2 "lognormal:4"`, `(char 11)`, "wants 2 arguments"}},
		{"poisson:40+lognormal:4:z", []string{`token 2 "lognormal:4:z"`, `(char 11)`, `sigma "z": not a number`}},
		{"const:5+pareto:30:1.5+bimodal:1:2:0.5", []string{`token 3 "bimodal:1:2:0.5"`, `(char 22)`, "second latency model"}},
		{"poisson:40+cohort::1:300", []string{`token 2`, `(char 11)`, "empty cohort name"}},
		{"poisson:40+cohort:a:1:0", []string{`cohort a deadline 0, need >= 1`}},
		{"burst:20:0:500", []string{`burst size 0`}},
		{"poisson:40+outagewin:5", []string{`token 2 "outagewin:5"`, `(char 11)`, "wants 2 arguments"}},
		{"poisson:40+flapstorm:-1:50", []string{"disturbance window"}},
	}
	for _, tc := range cases {
		_, err := Parse(tc.raw)
		if err == nil {
			t.Errorf("Parse(%q) accepted", tc.raw)
			continue
		}
		for _, want := range tc.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("Parse(%q) error %q missing %q", tc.raw, err, want)
			}
		}
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"":                        "empty spec",
		"poisson:0":               "zero rate",
		"poisson:-3":              "negative rate",
		"diurnal:0:5:10":          "zero period",
		"diurnal:100:10:5":        "peak below trough",
		"pareto:30:1+poisson:4":   "latency token first",
		"const:5+pareto:30:0.9":   "pareto alpha <= 1 (infinite mean)",
		"const:5+bimodal:9:3:0.5": "bimodal slow < fast",
		"poisson:4+cohort:a:0:10": "zero cohort weight",
	}
	for raw, why := range cases {
		if _, err := Parse(raw); err == nil {
			t.Errorf("Parse(%q) accepted (%s)", raw, why)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := MustParse("poisson:40+lognormal:4:0.5+cohort:web:0.75:300:1+cohort:batch:0.25:1200:0+flapstorm:500:400")
	a := s.Generate(7, 4000)
	b := s.Generate(7, 4000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different request streams")
	}
	c := s.Generate(8, 4000)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
	if len(a) == 0 {
		t.Fatal("no requests generated")
	}
	last := int64(-1)
	windowed := 0
	cohorts := map[int]int{}
	for i, r := range a {
		if r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if r.Arrival < last {
			t.Fatalf("arrivals out of order at %d: %d < %d", i, r.Arrival, last)
		}
		last = r.Arrival
		if r.Arrival >= 4000 {
			t.Fatalf("arrival %d past horizon", r.Arrival)
		}
		if r.Service < 1 {
			t.Fatalf("service %d < 1", r.Service)
		}
		if r.Window >= 0 {
			windowed++
			if r.Arrival < 500 || r.Arrival >= 900 {
				t.Fatalf("request at %d tagged with window [500, 900)", r.Arrival)
			}
		} else if r.Arrival >= 500 && r.Arrival < 900 {
			t.Fatalf("request at %d missed its window", r.Arrival)
		}
		cohorts[r.Cohort]++
		want := s.Cohorts[r.Cohort]
		if r.Deadline != want.Deadline || r.Priority != want.Priority {
			t.Fatalf("request %d cohort fields drifted", i)
		}
	}
	if windowed == 0 {
		t.Error("no requests landed in the disturbance window")
	}
	if len(cohorts) != 2 {
		t.Errorf("cohort draw used %d of 2 cohorts", len(cohorts))
	}
}

func TestGenerateRates(t *testing.T) {
	// A const workload at 40/kilotick over 10 kiloticks yields ~400
	// requests; poisson the same in expectation.
	for _, raw := range []string{"const:40", "poisson:40"} {
		s := MustParse(raw)
		n := len(s.Generate(3, 10_000))
		if n < 300 || n > 500 {
			t.Errorf("%s: %d requests over 10 kiloticks, want ~400", raw, n)
		}
	}
	// Burst adds size-S spikes on top of the base stream.
	s := MustParse("burst:10:25:1000")
	reqs := s.Generate(3, 10_000)
	// ~100 base + 9..10 bursts of 25.
	if n := len(reqs); n < 300 || n > 400 {
		t.Errorf("burst: %d requests, want ~325-350", n)
	}
	spike := 0
	for _, r := range reqs {
		if r.Arrival == 3000 {
			spike++
		}
	}
	if spike < 25 {
		t.Errorf("burst at t=3000 has %d arrivals, want >= 25", spike)
	}
	// Diurnal swings between trough and peak: the busiest period half
	// must carry more than the quietest.
	s = MustParse("diurnal:2000:5:80")
	reqs = s.Generate(3, 10_000)
	if n := len(reqs); n < 250 || n > 600 {
		t.Errorf("diurnal: %d requests, want mean-rate ~425", n)
	}
}

func TestGenerateNAndScale(t *testing.T) {
	s := MustParse("poisson:20+lognormal:4:0.5")
	reqs := s.GenerateN(11, 50)
	if len(reqs) != 50 {
		t.Fatalf("GenerateN returned %d requests", len(reqs))
	}
	base := len(s.Generate(5, 20_000))
	doubled := len(s.Scale(2).Generate(5, 20_000))
	if doubled < base*3/2 {
		t.Errorf("Scale(2): %d requests vs base %d, want ~2x", doubled, base)
	}
	if s.Scale(2).Arrival.Rate != 40 {
		t.Errorf("Scale(2) rate = %v", s.Scale(2).Arrival.Rate)
	}
}

func TestLatencyMeans(t *testing.T) {
	cases := []struct {
		l    Latency
		want float64
	}{
		{Latency{Kind: LatLognormal, A: 4, B: 0.5}, math.Exp(4.125)},
		{Latency{Kind: LatBimodal, A: 20, B: 400, C: 0.1}, 58},
		{Latency{Kind: LatPareto, A: 30, B: 1.5}, 90},
	}
	for _, tc := range cases {
		if got := tc.l.Mean(); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("mean = %v, want %v", got, tc.want)
		}
	}
	// Empirical means should track the analytic ones loosely.
	s := Spec{Arrival: Arrival{Kind: ArrivalConst, Rate: 100}, Latency: Latency{Kind: LatPareto, A: 30, B: 1.5}}
	reqs := s.Generate(1, 100_000)
	var sum float64
	for _, r := range reqs {
		sum += float64(r.Service)
	}
	mean := sum / float64(len(reqs))
	if mean < 45 || mean > 180 {
		t.Errorf("empirical pareto mean %v far from analytic 90", mean)
	}
	if sat := s.SaturationRate(4); math.Abs(sat-4000.0/90) > 1e-9 {
		t.Errorf("saturation rate %v", sat)
	}
}
