package sched

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// reversing always gives later sends smaller delays, the maximal
// reordering adversary.
type reversing struct{ next sim.Time }

func (r *reversing) Delay(sim.Envelope, sim.Time, *rand.Rand) sim.Time {
	if r.next == 0 {
		r.next = 100
	}
	d := r.next
	if r.next > 1 {
		r.next--
	}
	return d
}

func TestFIFOOrdersPerLink(t *testing.T) {
	f := NewFIFO(&reversing{})
	now := sim.Time(0)
	var lastAt sim.Time
	for i := 0; i < 50; i++ {
		env := sim.Envelope{From: 1, To: 2, Seq: uint64(i)}
		d := f.Delay(env, now, nil)
		at := now + d
		if at <= lastAt {
			t.Fatalf("send %d delivered at %d, not after %d", i, at, lastAt)
		}
		lastAt = at
	}
}

func TestFIFOIndependentLinks(t *testing.T) {
	f := NewFIFO(NewSynchronous(10))
	// Different links are not serialized against each other.
	d1 := f.Delay(sim.Envelope{From: 1, To: 2}, 0, nil)
	d2 := f.Delay(sim.Envelope{From: 1, To: 3}, 0, nil)
	d3 := f.Delay(sim.Envelope{From: 2, To: 2}, 0, nil)
	if d1 != 10 || d2 != 10 || d3 != 10 {
		t.Errorf("cross-link interference: %d %d %d", d1, d2, d3)
	}
	// Same link at the same instant is pushed strictly later.
	d4 := f.Delay(sim.Envelope{From: 1, To: 2}, 0, nil)
	if d4 != 11 {
		t.Errorf("same-link second delay %d, want 11", d4)
	}
}

// The protocols' round tags make them order-insensitive: the same
// execution under maximal reordering and under FIFO-forced ordering both
// satisfy every invariant.
func TestProtocolsAgnosticToFIFO(t *testing.T) {
	raw := buildRun(t, &UniformRandom{Min: 1, Max: 30}, 5)
	fifo := buildRun(t, NewFIFO(&UniformRandom{Min: 1, Max: 30}), 5)
	for _, res := range []*sim.Result{raw, fifo} {
		if len(res.Decisions) != 5 {
			t.Fatalf("decisions %v", res.Decisions)
		}
		if s := res.HonestSpread(); s > 1e-4 {
			t.Errorf("spread %v", s)
		}
	}
}
