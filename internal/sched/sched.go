// Package sched implements message-delivery schedulers for the asynchronous
// network simulator. A scheduler is the adversary's ordering power: it picks
// a finite delay for every message, which fixes the whole interleaving.
//
// The strategies here span the space the approximate-agreement literature
// cares about: lock-step synchrony (baseline), benign random asynchrony,
// bounded skew against a victim set, partitions with slow cross-links, and
// the split-views attack that maximizes disagreement between the reception
// sets of different parties (the known worst case for convergence-rate
// measurements).
//
// This package holds the mechanisms; the entry point for composing them
// into runnable adversaries is internal/scenario, whose registry owns the
// canonical parameterization of every scheduler here and pairs it with
// fault compositions in one declarative, parseable spec. New experiment
// code should enumerate scenario.Spec values rather than constructing
// schedulers directly.
package sched

import (
	"math/rand"

	"repro/internal/sim"
)

// Synchronous delivers every message with the same constant delay, yielding
// lock-step rounds. The zero value is invalid; use NewSynchronous.
type Synchronous struct {
	delay sim.Time
}

// NewSynchronous returns a constant-delay scheduler. Delay must be >= 1.
func NewSynchronous(delay sim.Time) *Synchronous {
	if delay < 1 {
		delay = 1
	}
	return &Synchronous{delay: delay}
}

var _ sim.Scheduler = (*Synchronous)(nil)

// Delay implements sim.Scheduler.
func (s *Synchronous) Delay(_ sim.Envelope, _ sim.Time, _ *rand.Rand) sim.Time {
	return s.delay
}

// UniformRandom draws each delay independently and uniformly from
// [Min, Max]. It models benign asynchrony with no adversarial intent.
type UniformRandom struct {
	Min, Max sim.Time
}

var _ sim.Scheduler = (*UniformRandom)(nil)

// Delay implements sim.Scheduler.
func (s *UniformRandom) Delay(_ sim.Envelope, _ sim.Time, rng *rand.Rand) sim.Time {
	lo, hi := s.Min, s.Max
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo + sim.Time(rng.Int63n(int64(hi-lo)+1))
}

// Skew delays every message sent by or to a victim set by SlowDelay while
// the rest of the network runs at FastDelay. This starves victims of
// timeliness without ever dropping their messages — the canonical way an
// asynchronous adversary biases which n−t values each party collects.
// Victims is a dense membership table indexed by PartyID (parties beyond
// its length are non-victims), so the per-delivery test is an array load
// rather than a map probe on the scheduler hot path.
type Skew struct {
	Victims   []bool
	FastDelay sim.Time
	SlowDelay sim.Time
}

var _ sim.Scheduler = (*Skew)(nil)

// NewSkew builds a Skew scheduler over the given victims.
func NewSkew(victims []sim.PartyID, fast, slow sim.Time) *Skew {
	size := 0
	for _, v := range victims {
		if int(v) >= size {
			size = int(v) + 1
		}
	}
	set := make([]bool, size)
	for _, v := range victims {
		if v >= 0 {
			set[v] = true
		}
	}
	return &Skew{Victims: set, FastDelay: fast, SlowDelay: slow}
}

// Delay implements sim.Scheduler.
func (s *Skew) Delay(env sim.Envelope, _ sim.Time, _ *rand.Rand) sim.Time {
	if s.victim(env.From) || s.victim(env.To) {
		return max1(s.SlowDelay)
	}
	return max1(s.FastDelay)
}

func (s *Skew) victim(p sim.PartyID) bool {
	return p >= 0 && int(p) < len(s.Victims) && s.Victims[p]
}

// Partition splits the parties into two blocks: messages within a block are
// fast, messages across are slow (but still delivered — asynchrony, not a
// network split). Parties with ID < Boundary form the first block.
type Partition struct {
	Boundary sim.PartyID
	Within   sim.Time
	Across   sim.Time
}

var _ sim.Scheduler = (*Partition)(nil)

// Delay implements sim.Scheduler.
func (s *Partition) Delay(env sim.Envelope, _ sim.Time, _ *rand.Rand) sim.Time {
	a := env.From < s.Boundary
	b := env.To < s.Boundary
	if a == b {
		return max1(s.Within)
	}
	return max1(s.Across)
}

// SplitViews is the convergence attack: the party set is split into a low
// half (ID < Boundary) and a high half. Messages from low-half senders to
// high-half recipients are delayed by Slow, and symmetrically messages from
// high-half senders to low-half recipients; everything else travels at Fast.
// When inputs are sorted by party ID (the harness's bimodal generator does
// this) each half predominantly sees its own half's values, which maximizes
// the disagreement between reception sets round after round. This is the
// scheduler against which worst-case contraction factors are measured.
type SplitViews struct {
	Boundary sim.PartyID
	Fast     sim.Time
	Slow     sim.Time
}

var _ sim.Scheduler = (*SplitViews)(nil)

// Delay implements sim.Scheduler.
func (s *SplitViews) Delay(env sim.Envelope, _ sim.Time, _ *rand.Rand) sim.Time {
	fromLow := env.From < s.Boundary
	toLow := env.To < s.Boundary
	if fromLow != toLow {
		return max1(s.Slow)
	}
	return max1(s.Fast)
}

// Staggered delivers messages from party i with delay Base + i*Step, so
// higher-ID parties are systematically late. It exercises jump-over-round
// buffering in protocols without targeting any specific party set.
type Staggered struct {
	Base sim.Time
	Step sim.Time
}

var _ sim.Scheduler = (*Staggered)(nil)

// Delay implements sim.Scheduler.
func (s *Staggered) Delay(env sim.Envelope, _ sim.Time, _ *rand.Rand) sim.Time {
	return max1(s.Base + sim.Time(env.From)*s.Step)
}

func max1(t sim.Time) sim.Time {
	if t < 1 {
		return 1
	}
	return t
}

// Named couples a scheduler with a label for experiment tables.
type Named struct {
	Name      string
	Scheduler sim.Scheduler
}

// Suite returns the standard adversary-scheduler suite used by the
// experiment harness. n is the number of parties; t the fault bound. The
// suite always includes synchrony (as the best case) and the split-views
// attack (as the empirically worst case).
func Suite(n, t int) []Named {
	half := sim.PartyID(n / 2)
	victims := make([]sim.PartyID, 0, t)
	for i := 0; i < t; i++ {
		victims = append(victims, sim.PartyID(i))
	}
	return []Named{
		{Name: "sync", Scheduler: NewSynchronous(10)},
		{Name: "random", Scheduler: &UniformRandom{Min: 1, Max: 10}},
		{Name: "skew", Scheduler: NewSkew(victims, 1, 10)},
		{Name: "partition", Scheduler: &Partition{Boundary: half, Within: 1, Across: 10}},
		{Name: "splitviews", Scheduler: &SplitViews{Boundary: half, Fast: 1, Slow: 10}},
		{Name: "staggered", Scheduler: &Staggered{Base: 1, Step: 2}},
	}
}
