package sched

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// buildRun assembles a crash-protocol network over the given scheduler.
func buildRun(t *testing.T, scheduler sim.Scheduler, seed int64) *sim.Result {
	t.Helper()
	p := core.Params{Protocol: core.ProtoCrash, N: 5, T: 2, Eps: 1e-4, Lo: 0, Hi: 1}
	net, err := sim.New(sim.Config{N: 5, Scheduler: scheduler, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	inputs := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := 0; i < 5; i++ {
		proc, err := core.NewAsyncAA(p, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := net.SetProcess(sim.PartyID(i), proc); err != nil {
			t.Fatal(err)
		}
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// buildRunN assembles a crash-protocol network of the given size and batch
// mode over the given scheduler.
func buildRunN(t *testing.T, n int, scheduler sim.Scheduler, seed int64, batch sim.BatchMode) *sim.Result {
	t.Helper()
	p := core.Params{Protocol: core.ProtoCrash, N: n, T: (n - 1) / 2, Eps: 1e-3, Lo: 0, Hi: 1}
	net, err := sim.New(sim.Config{N: n, Scheduler: scheduler, Seed: seed, Batch: batch})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		proc, err := core.NewAsyncAA(p, float64(i)/float64(n-1))
		if err != nil {
			t.Fatal(err)
		}
		if err := net.SetProcess(sim.PartyID(i), proc); err != nil {
			t.Fatal(err)
		}
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRecordReplayReproducesExecution(t *testing.T) {
	rec := NewRecorder(&UniformRandom{Min: 1, Max: 20})
	original := buildRun(t, rec, 42)

	// Replay with a different fallback and a different network seed: the
	// recorded delays alone must reproduce the execution exactly.
	replay := NewReplay(rec.Log(), 1)
	replayed := buildRun(t, replay, 999)

	if original.FinishTime != replayed.FinishTime {
		t.Errorf("finish time %d vs %d", original.FinishTime, replayed.FinishTime)
	}
	if original.Stats != replayed.Stats {
		t.Errorf("stats %+v vs %+v", original.Stats, replayed.Stats)
	}
	for id, v := range original.Decisions {
		if replayed.Decisions[id] != v {
			t.Errorf("party %d decided %v vs %v", id, v, replayed.Decisions[id])
		}
	}
}

// TestRecorderBatchModeIdentity pins the batch-awareness contract: a run
// dense enough to trigger batched tick delivery (n=24 synchronous, so every
// tick carries hundreds of deliveries) records byte-for-byte the same delay
// log under batch on and batch off, and a log recorded in either mode
// replays the execution exactly in the other. This holds because batched
// delivery defers sends as trigger-ordered pending ops and assigns sequence
// numbers and scheduler draws at flush in exactly the unbatched order.
func TestRecorderBatchModeIdentity(t *testing.T) {
	const n, seed = 24, 77
	sched := &UniformRandom{Min: 1, Max: 9}

	recOff := NewRecorder(sched)
	resOff := buildRunN(t, n, recOff, seed, sim.BatchOff)
	recOn := NewRecorder(sched)
	resOn := buildRunN(t, n, recOn, seed, sim.BatchOn)

	logOff, logOn := recOff.Dense(), recOn.Dense()
	if len(logOff) != len(logOn) {
		t.Fatalf("log length %d (batch off) vs %d (batch on)", len(logOff), len(logOn))
	}
	if len(logOff) == 0 {
		t.Fatal("empty recorded log")
	}
	for seq := range logOff {
		if logOff[seq] != logOn[seq] {
			t.Fatalf("seq %d: delay %d (batch off) vs %d (batch on)", seq, logOff[seq], logOn[seq])
		}
	}
	if resOff.Stats != resOn.Stats {
		t.Errorf("stats %+v vs %+v", resOff.Stats, resOn.Stats)
	}

	// Cross-replay: a log recorded under batch off drives a batch-on run
	// (and vice versa) to the identical execution.
	crossOn := buildRunN(t, n, NewReplayDense(logOff, 1), seed+1, sim.BatchOn)
	crossOff := buildRunN(t, n, NewReplayDense(logOn, 1), seed+2, sim.BatchOff)
	for _, pair := range []struct {
		name string
		got  *sim.Result
	}{{"off-log under batch on", crossOn}, {"on-log under batch off", crossOff}} {
		if pair.got.FinishTime != resOff.FinishTime {
			t.Errorf("%s: finish time %d vs %d", pair.name, pair.got.FinishTime, resOff.FinishTime)
		}
		if pair.got.Stats != resOff.Stats {
			t.Errorf("%s: stats %+v vs %+v", pair.name, pair.got.Stats, resOff.Stats)
		}
		for id, v := range resOff.Decisions {
			if pair.got.Decisions[id] != v {
				t.Errorf("%s: party %d decided %v vs %v", pair.name, id, pair.got.Decisions[id], v)
			}
		}
	}
}

func TestRecorderDenseLog(t *testing.T) {
	rec := NewRecorder(NewSynchronous(4))
	rng := rand.New(rand.NewSource(1))
	rec.Delay(sim.Envelope{Seq: 0}, 0, rng)
	rec.Delay(sim.Envelope{Seq: 2}, 0, rng)
	dense := rec.Dense()
	if len(dense) != 3 || dense[0] != 4 || dense[1] != 0 || dense[2] != 4 {
		t.Fatalf("dense log %v", dense)
	}
	// Dense returns a copy.
	dense[0] = 99
	if rec.Dense()[0] != 4 {
		t.Error("dense log not copied")
	}
	// The map view skips unrecorded sequences.
	m := rec.Log()
	if len(m) != 2 || m[0] != 4 || m[2] != 4 {
		t.Fatalf("map log %v", m)
	}
}

func TestRecorderClampsAndLogs(t *testing.T) {
	rec := NewRecorder(NewSynchronous(1))
	env := sim.Envelope{Seq: 7}
	d := rec.Delay(env, 0, rand.New(rand.NewSource(1)))
	if d != 1 {
		t.Errorf("delay %d", d)
	}
	log := rec.Log()
	if log[7] != 1 {
		t.Errorf("log %v", log)
	}
	// Log returns a copy.
	log[7] = 99
	if rec.Log()[7] != 1 {
		t.Error("log not copied")
	}
}

func TestReplayFallback(t *testing.T) {
	r := NewReplay(map[uint64]sim.Time{1: 5}, 3)
	if d := r.Delay(sim.Envelope{Seq: 1}, 0, nil); d != 5 {
		t.Errorf("recorded delay %d", d)
	}
	if d := r.Delay(sim.Envelope{Seq: 2}, 0, nil); d != 3 {
		t.Errorf("fallback delay %d", d)
	}
	zero := NewReplay(nil, 0)
	if d := zero.Delay(sim.Envelope{Seq: 9}, 0, nil); d != 1 {
		t.Errorf("zero fallback not clamped: %d", d)
	}
}

func TestHeavyTailShape(t *testing.T) {
	h := &HeavyTail{Base: 2, Alpha: 1.5, Cap: 200}
	rng := rand.New(rand.NewSource(3))
	slow := 0
	for i := 0; i < 5000; i++ {
		d := h.Delay(sim.Envelope{}, 0, rng)
		if d < 2 || d > 200 {
			t.Fatalf("delay %d outside [2, 200]", d)
		}
		if d > 20 {
			slow++
		}
	}
	// A Pareto(1.5) tail puts a few percent of mass past 10x the base.
	if slow == 0 {
		t.Error("no heavy-tail samples at all")
	}
	if slow > 2500 {
		t.Errorf("tail too heavy: %d/5000 slow", slow)
	}
	// Defaults are repaired.
	d := (&HeavyTail{}).Delay(sim.Envelope{}, 0, rng)
	if d < 1 {
		t.Errorf("default delay %d", d)
	}
}

// A protocol run under heavy-tail asynchrony still satisfies everything.
func TestHeavyTailProtocolRun(t *testing.T) {
	res := buildRun(t, &HeavyTail{Base: 1, Alpha: 1.2, Cap: 500}, 11)
	if len(res.Decisions) != 5 {
		t.Fatalf("decisions %v", res.Decisions)
	}
	if s := res.HonestSpread(); s > 1e-4 {
		t.Errorf("spread %v", s)
	}
}
