package sched

import (
	"math/rand"

	"repro/internal/sim"
)

// FIFO wraps a scheduler and enforces per-link FIFO delivery: messages
// from the same sender to the same recipient are delivered in send order,
// while the inner scheduler still chooses the pacing. Many classical
// presentations assume FIFO channels; the protocols here do not need them
// (round tags make reordering harmless), and running the suite both ways
// is how that claim is checked.
//
// FIFO is stateful and must not be shared across concurrent simulations.
type FIFO struct {
	inner sim.Scheduler
	// lastAt tracks the latest scheduled delivery time per (from, to).
	lastAt map[linkKey]sim.Time
}

type linkKey struct {
	from, to sim.PartyID
}

var _ sim.Scheduler = (*FIFO)(nil)

// NewFIFO wraps inner with per-link ordering.
func NewFIFO(inner sim.Scheduler) *FIFO {
	return &FIFO{inner: inner, lastAt: make(map[linkKey]sim.Time)}
}

// Delay implements sim.Scheduler.
func (f *FIFO) Delay(env sim.Envelope, now sim.Time, rng *rand.Rand) sim.Time {
	d := f.inner.Delay(env, now, rng)
	if d < 1 {
		d = 1
	}
	key := linkKey{from: env.From, to: env.To}
	at := now + d
	if last, ok := f.lastAt[key]; ok && at <= last {
		at = last + 1
		d = at - now
	}
	f.lastAt[key] = at
	return d
}
