// Lossy-network fate wrappers: per-send Bernoulli loss and duplication
// layered over any base scheduler. The wrappers implement
// sim.FateScheduler, so they compose with every delay strategy in this
// package (and with each other, and with the window wrappers in
// internal/fault) while the fate-free schedulers keep their exact
// pre-fate code path in the simulator.
//
// Determinism contract (see sim.FateScheduler): every drop/dup decision
// is drawn from the seeded scheduler rng the simulator passes in — never
// from wall clock — and each wrapper consumes its draws in a fixed order
// after the inner scheduler's (innermost base delay first, then wrappers
// in composition order). Loss and Dup draw exactly one Float64 per send
// unconditionally (Dup draws one extra Int63n only when the duplicate
// fires), so the stream is a pure function of the seed and the send
// sequence, and capture/replay and the batched/unbatched loops see
// identical streams.
package sched

import (
	"math/rand"

	"repro/internal/sim"
)

// Loss drops each send independently with probability P (per-send
// Bernoulli loss). Dropped sends are counted by the simulator but never
// delivered; acks and retransmissions are separate sends and roll the
// dice again.
type Loss struct {
	Inner sim.Scheduler
	P     float64
}

var _ sim.FateScheduler = (*Loss)(nil)

// Delay implements sim.Scheduler for callers that ignore fates.
func (l *Loss) Delay(env sim.Envelope, now sim.Time, rng *rand.Rand) sim.Time {
	return l.Fate(env, now, rng).Delay
}

// Fate implements sim.FateScheduler.
func (l *Loss) Fate(env sim.Envelope, now sim.Time, rng *rand.Rand) sim.Fate {
	f := sim.FateOf(l.Inner, env, now, rng)
	// The draw is unconditional — even for a send an inner wrapper already
	// dropped — so stacking order never perturbs the rng stream shape.
	if rng.Float64() < l.P {
		f.Drop = true
	}
	return f
}

// Dup duplicates each send independently with probability P: a second
// copy of the same envelope arrives Extra ∈ [1, MaxExtra] ticks after the
// primary copy. Receive-side dedup (internal/relnet) is what makes this
// harmless; raw transports see the payload twice.
type Dup struct {
	Inner    sim.Scheduler
	P        float64
	MaxExtra sim.Time // upper bound on the duplicate's extra lag (>= 1)
}

var _ sim.FateScheduler = (*Dup)(nil)

// Delay implements sim.Scheduler for callers that ignore fates.
func (d *Dup) Delay(env sim.Envelope, now sim.Time, rng *rand.Rand) sim.Time {
	return d.Fate(env, now, rng).Delay
}

// Fate implements sim.FateScheduler.
func (d *Dup) Fate(env sim.Envelope, now sim.Time, rng *rand.Rand) sim.Fate {
	f := sim.FateOf(d.Inner, env, now, rng)
	if rng.Float64() < d.P && !f.Drop && f.DupExtra == 0 {
		hi := d.MaxExtra
		if hi < 1 {
			hi = 1
		}
		f.DupExtra = 1 + sim.Time(rng.Int63n(int64(hi)))
	}
	return f
}
