package sched

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func env(from, to sim.PartyID) sim.Envelope {
	return sim.Envelope{From: from, To: to}
}

func TestSynchronous(t *testing.T) {
	s := NewSynchronous(7)
	for i := 0; i < 5; i++ {
		if d := s.Delay(env(sim.PartyID(i), 0), 0, nil); d != 7 {
			t.Fatalf("delay = %d, want 7", d)
		}
	}
	if d := NewSynchronous(0).Delay(env(0, 1), 0, nil); d != 1 {
		t.Errorf("zero delay not clamped: %d", d)
	}
}

func TestUniformRandomBounds(t *testing.T) {
	s := &UniformRandom{Min: 3, Max: 9}
	rng := rand.New(rand.NewSource(1))
	seen := map[sim.Time]bool{}
	for i := 0; i < 500; i++ {
		d := s.Delay(env(0, 1), 0, rng)
		if d < 3 || d > 9 {
			t.Fatalf("delay %d outside [3,9]", d)
		}
		seen[d] = true
	}
	if len(seen) < 5 {
		t.Errorf("poor delay diversity: %v", seen)
	}
	// Degenerate configurations are repaired.
	bad := &UniformRandom{Min: 0, Max: 0}
	if d := bad.Delay(env(0, 1), 0, rng); d != 1 {
		t.Errorf("degenerate range delay = %d", d)
	}
	inverted := &UniformRandom{Min: 5, Max: 2}
	if d := inverted.Delay(env(0, 1), 0, rng); d != 5 {
		t.Errorf("inverted range delay = %d", d)
	}
}

func TestSkew(t *testing.T) {
	s := NewSkew([]sim.PartyID{0, 1}, 1, 50)
	if d := s.Delay(env(0, 3), 0, nil); d != 50 {
		t.Errorf("victim sender delay = %d", d)
	}
	if d := s.Delay(env(3, 1), 0, nil); d != 50 {
		t.Errorf("victim recipient delay = %d", d)
	}
	if d := s.Delay(env(2, 3), 0, nil); d != 1 {
		t.Errorf("bystander delay = %d", d)
	}
}

func TestPartition(t *testing.T) {
	s := &Partition{Boundary: 2, Within: 1, Across: 40}
	if d := s.Delay(env(0, 1), 0, nil); d != 1 {
		t.Errorf("within-low delay = %d", d)
	}
	if d := s.Delay(env(2, 3), 0, nil); d != 1 {
		t.Errorf("within-high delay = %d", d)
	}
	if d := s.Delay(env(1, 2), 0, nil); d != 40 {
		t.Errorf("across delay = %d", d)
	}
	if d := s.Delay(env(3, 0), 0, nil); d != 40 {
		t.Errorf("across delay = %d", d)
	}
}

func TestSplitViews(t *testing.T) {
	s := &SplitViews{Boundary: 2, Fast: 1, Slow: 30}
	if d := s.Delay(env(0, 1), 0, nil); d != 1 {
		t.Errorf("same-half delay = %d", d)
	}
	if d := s.Delay(env(0, 3), 0, nil); d != 30 {
		t.Errorf("cross-half delay = %d", d)
	}
	if d := s.Delay(env(3, 1), 0, nil); d != 30 {
		t.Errorf("cross-half delay = %d", d)
	}
}

func TestStaggered(t *testing.T) {
	s := &Staggered{Base: 2, Step: 3}
	if d := s.Delay(env(0, 1), 0, nil); d != 2 {
		t.Errorf("party 0 delay = %d", d)
	}
	if d := s.Delay(env(4, 1), 0, nil); d != 14 {
		t.Errorf("party 4 delay = %d", d)
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite(10, 3)
	if len(suite) != 6 {
		t.Fatalf("suite size %d", len(suite))
	}
	names := map[string]bool{}
	rng := rand.New(rand.NewSource(1))
	for _, nm := range suite {
		if nm.Name == "" || nm.Scheduler == nil {
			t.Fatalf("malformed entry %+v", nm)
		}
		if names[nm.Name] {
			t.Fatalf("duplicate name %q", nm.Name)
		}
		names[nm.Name] = true
		// Every scheduler must produce legal delays for arbitrary pairs.
		for from := 0; from < 10; from++ {
			for to := 0; to < 10; to++ {
				d := nm.Scheduler.Delay(env(sim.PartyID(from), sim.PartyID(to)), 0, rng)
				if d < 1 || d > sim.MaxDelayCap {
					t.Fatalf("%s: illegal delay %d", nm.Name, d)
				}
			}
		}
	}
	for _, want := range []string{"sync", "random", "skew", "partition", "splitviews", "staggered"} {
		if !names[want] {
			t.Errorf("suite missing %q", want)
		}
	}
}
