package sched

import (
	"math"
	"math/rand"

	"repro/internal/sim"
)

// Recorder wraps a scheduler and logs the delay assigned to every message
// send (keyed by the envelope's global send sequence number, which is
// deterministic for a fixed protocol binary and seed). The log can then
// drive a Replay scheduler, which reproduces the exact interleaving — the
// debugging loop for any execution the fuzzer or the grid flags:
//
//	rec := sched.NewRecorder(inner)
//	... run, observe failure ...
//	replay := sched.NewReplay(rec.Log(), fallbackDelay)
//	... re-run with extra instrumentation, same interleaving ...
//
// The log is a dense slice indexed by send sequence: the simulator allocates
// sequence numbers contiguously from zero, and batched tick delivery flushes
// deferred sends in exactly the unbatched trigger order, so the sequence a
// Recorder observes is identical across batch modes. A zero entry means "no
// send recorded at that sequence" (timer events consume no sequence numbers,
// and real delays are always >= 1). A run drives its scheduler from a single
// goroutine, so the Recorder is deliberately lock-free; parallel sweeps give
// each run its own Recorder instance, which keeps them race-free.
type Recorder struct {
	inner sim.Scheduler
	log   []sim.Time
}

var _ sim.Scheduler = (*Recorder)(nil)

// NewRecorder wraps inner.
func NewRecorder(inner sim.Scheduler) *Recorder {
	return &Recorder{inner: inner}
}

// Delay implements sim.Scheduler.
func (r *Recorder) Delay(env sim.Envelope, now sim.Time, rng *rand.Rand) sim.Time {
	d := r.inner.Delay(env, now, rng)
	if d < 1 {
		d = 1
	}
	if d > sim.MaxDelayCap {
		d = sim.MaxDelayCap
	}
	for uint64(len(r.log)) <= env.Seq {
		r.log = append(r.log, 0)
	}
	r.log[env.Seq] = d
	return d
}

// Log returns a copy of the recorded delays as a map, for callers that want
// sparse lookup semantics. Unrecorded sequences are absent.
func (r *Recorder) Log() map[uint64]sim.Time {
	out := make(map[uint64]sim.Time, len(r.log))
	for seq, d := range r.log {
		if d != 0 {
			out[uint64(seq)] = d
		}
	}
	return out
}

// Dense returns a copy of the recorded delays as a dense slice indexed by
// send sequence. A zero entry means no delay was recorded for that sequence.
// This is the compact form persisted in incident bundles.
func (r *Recorder) Dense() []sim.Time {
	out := make([]sim.Time, len(r.log))
	copy(out, r.log)
	return out
}

// Replay re-issues recorded delays by send sequence number. Sends beyond
// the recorded log (possible when the re-run diverges, e.g. extra
// instrumentation traffic) get the fallback delay.
type Replay struct {
	log      []sim.Time
	fallback sim.Time
}

var _ sim.Scheduler = (*Replay)(nil)

// NewReplay builds a replay scheduler from a recorded map log.
func NewReplay(log map[uint64]sim.Time, fallback sim.Time) *Replay {
	var max uint64
	for seq := range log {
		if seq >= max {
			max = seq + 1
		}
	}
	dense := make([]sim.Time, max)
	for seq, d := range log {
		dense[seq] = d
	}
	return NewReplayDense(dense, fallback)
}

// NewReplayDense builds a replay scheduler from a dense log indexed by send
// sequence (zero entries mean "unrecorded" and fall back). The slice is
// copied, so the caller may keep mutating its own.
func NewReplayDense(log []sim.Time, fallback sim.Time) *Replay {
	if fallback < 1 {
		fallback = 1
	}
	cp := make([]sim.Time, len(log))
	copy(cp, log)
	return &Replay{log: cp, fallback: fallback}
}

// Delay implements sim.Scheduler.
func (r *Replay) Delay(env sim.Envelope, _ sim.Time, _ *rand.Rand) sim.Time {
	if env.Seq < uint64(len(r.log)) {
		if d := r.log[env.Seq]; d != 0 {
			return d
		}
	}
	return r.fallback
}

// HeavyTail models real wide-area networks: most messages are fast, but a
// Pareto-like tail is very slow. Alpha controls the tail weight (smaller =
// heavier); Base scales the delay unit.
type HeavyTail struct {
	Base  sim.Time
	Alpha float64
	Cap   sim.Time
}

var _ sim.Scheduler = (*HeavyTail)(nil)

// Delay implements sim.Scheduler.
func (h *HeavyTail) Delay(_ sim.Envelope, _ sim.Time, rng *rand.Rand) sim.Time {
	alpha := h.Alpha
	if alpha <= 0 {
		alpha = 1.5
	}
	base := h.Base
	if base < 1 {
		base = 1
	}
	capd := h.Cap
	if capd < base {
		capd = 100 * base
	}
	// Inverse-CDF Pareto sample: base / U^(1/alpha).
	u := rng.Float64()
	if u <= 0 {
		u = 1e-12
	}
	d := sim.Time(float64(base) * math.Pow(1/u, 1/alpha))
	if d < base {
		d = base
	}
	if d > capd {
		d = capd
	}
	return d
}
