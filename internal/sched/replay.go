package sched

import (
	"math"
	"math/rand"
	"sync"

	"repro/internal/sim"
)

// Recorder wraps a scheduler and logs the delay assigned to every message
// send (keyed by the envelope's global send sequence number, which is
// deterministic for a fixed protocol binary and seed). The log can then
// drive a Replay scheduler, which reproduces the exact interleaving — the
// debugging loop for any execution the fuzzer or the grid flags:
//
//	rec := sched.NewRecorder(inner)
//	... run, observe failure ...
//	replay := sched.NewReplay(rec.Log(), fallbackDelay)
//	... re-run with extra instrumentation, same interleaving ...
type Recorder struct {
	inner sim.Scheduler

	mu  sync.Mutex
	log map[uint64]sim.Time
}

var _ sim.Scheduler = (*Recorder)(nil)

// NewRecorder wraps inner.
func NewRecorder(inner sim.Scheduler) *Recorder {
	return &Recorder{inner: inner, log: make(map[uint64]sim.Time)}
}

// Delay implements sim.Scheduler.
func (r *Recorder) Delay(env sim.Envelope, now sim.Time, rng *rand.Rand) sim.Time {
	d := r.inner.Delay(env, now, rng)
	if d < 1 {
		d = 1
	}
	if d > sim.MaxDelayCap {
		d = sim.MaxDelayCap
	}
	r.mu.Lock()
	r.log[env.Seq] = d
	r.mu.Unlock()
	return d
}

// Log returns a copy of the recorded delays.
func (r *Recorder) Log() map[uint64]sim.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[uint64]sim.Time, len(r.log))
	for k, v := range r.log {
		out[k] = v
	}
	return out
}

// Replay re-issues recorded delays by send sequence number. Sends beyond
// the recorded log (possible when the re-run diverges, e.g. extra
// instrumentation traffic) get the fallback delay.
type Replay struct {
	log      map[uint64]sim.Time
	fallback sim.Time
}

var _ sim.Scheduler = (*Replay)(nil)

// NewReplay builds a replay scheduler from a recorded log.
func NewReplay(log map[uint64]sim.Time, fallback sim.Time) *Replay {
	if fallback < 1 {
		fallback = 1
	}
	cp := make(map[uint64]sim.Time, len(log))
	for k, v := range log {
		cp[k] = v
	}
	return &Replay{log: cp, fallback: fallback}
}

// Delay implements sim.Scheduler.
func (r *Replay) Delay(env sim.Envelope, _ sim.Time, _ *rand.Rand) sim.Time {
	if d, ok := r.log[env.Seq]; ok {
		return d
	}
	return r.fallback
}

// HeavyTail models real wide-area networks: most messages are fast, but a
// Pareto-like tail is very slow. Alpha controls the tail weight (smaller =
// heavier); Base scales the delay unit.
type HeavyTail struct {
	Base  sim.Time
	Alpha float64
	Cap   sim.Time
}

var _ sim.Scheduler = (*HeavyTail)(nil)

// Delay implements sim.Scheduler.
func (h *HeavyTail) Delay(_ sim.Envelope, _ sim.Time, rng *rand.Rand) sim.Time {
	alpha := h.Alpha
	if alpha <= 0 {
		alpha = 1.5
	}
	base := h.Base
	if base < 1 {
		base = 1
	}
	capd := h.Cap
	if capd < base {
		capd = 100 * base
	}
	// Inverse-CDF Pareto sample: base / U^(1/alpha).
	u := rng.Float64()
	if u <= 0 {
		u = 1e-12
	}
	d := sim.Time(float64(base) * math.Pow(1/u, 1/alpha))
	if d < base {
		d = base
	}
	if d > capd {
		d = capd
	}
	return d
}
