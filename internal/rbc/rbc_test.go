package rbc

import (
	"testing"

	"repro/internal/wire"
)

// bus wires b Broadcasters together with synchronous-ish delivery: every
// multicast is queued and drained round-robin, collecting deliveries per
// party. It gives tests precise control over who hears what.
type bus struct {
	t       *testing.T
	n, f    int
	bcs     []*Broadcaster
	queue   [][]byte // pending multicasts, tagged with sender
	senders []uint16
	// delivered[p] collects party p's deliveries.
	delivered [][]Delivery
	// mute[p] drops all traffic from party p (simulates a silent fault).
	mute map[uint16]bool
	// drop[p] drops traffic addressed to party p (partition).
	drop map[uint16]bool
}

func newBus(t *testing.T, n, f int) *bus {
	t.Helper()
	b := &bus{
		t:         t,
		n:         n,
		f:         f,
		delivered: make([][]Delivery, n),
		mute:      map[uint16]bool{},
		drop:      map[uint16]bool{},
	}
	b.bcs = make([]*Broadcaster, n)
	for i := 0; i < n; i++ {
		i := i
		bc, err := New(n, f, uint16(i), func(data []byte) {
			if b.mute[uint16(i)] {
				return
			}
			msg := make([]byte, len(data))
			copy(msg, data)
			b.queue = append(b.queue, msg)
			b.senders = append(b.senders, uint16(i))
		})
		if err != nil {
			t.Fatal(err)
		}
		b.bcs[i] = bc
	}
	return b
}

// handle feeds one message to party p, collecting any delivery.
func (b *bus) handle(p int, from uint16, data []byte) {
	if d, ok := b.bcs[p].Handle(from, data); ok {
		b.delivered[p] = append(b.delivered[p], d)
	}
}

// drain processes queued multicasts until quiescence.
func (b *bus) drain() {
	for len(b.queue) > 0 {
		data := b.queue[0]
		from := b.senders[0]
		b.queue = b.queue[1:]
		b.senders = b.senders[1:]
		for p := 0; p < b.n; p++ {
			if b.drop[uint16(p)] {
				continue
			}
			if d, ok := b.bcs[p].Handle(from, data); ok {
				b.delivered[p] = append(b.delivered[p], d)
			}
		}
	}
}

// inject sends a crafted message from a (possibly byzantine) sender to all.
func (b *bus) inject(from uint16, m wire.RBC) {
	for p := 0; p < b.n; p++ {
		if b.drop[uint16(p)] {
			continue
		}
		if d, ok := b.bcs[p].Handle(from, wire.MarshalRBC(m)); ok {
			b.delivered[p] = append(b.delivered[p], d)
		}
	}
	b.drain()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(3, 1, 0, func([]byte) {}); err == nil {
		t.Error("n=3 t=1 accepted (needs n >= 3t+1)")
	}
	if _, err := New(4, 1, 4, func([]byte) {}); err == nil {
		t.Error("self out of range accepted")
	}
	if _, err := New(4, 1, 0, nil); err == nil {
		t.Error("nil multicast accepted")
	}
	if _, err := New(4, -1, 0, func([]byte) {}); err == nil {
		t.Error("negative t accepted")
	}
}

func TestHappyPathAllDeliver(t *testing.T) {
	b := newBus(t, 4, 1)
	b.bcs[0].Broadcast(1, 3.5)
	b.drain()
	for p := 0; p < 4; p++ {
		if len(b.delivered[p]) != 1 {
			t.Fatalf("party %d delivered %d times", p, len(b.delivered[p]))
		}
		d := b.delivered[p][0]
		if d.Origin != 0 || d.Round != 1 || d.Value != 3.5 {
			t.Errorf("party %d delivered %+v", p, d)
		}
	}
	if v, ok := b.bcs[1].Delivered(Instance{Origin: 0, Round: 1}); !ok || v != 3.5 {
		t.Errorf("Delivered() = %v, %v", v, ok)
	}
}

func TestConcurrentInstances(t *testing.T) {
	b := newBus(t, 7, 2)
	for i := 0; i < 7; i++ {
		b.bcs[i].Broadcast(1, float64(i))
		b.bcs[i].Broadcast(2, float64(10+i))
	}
	b.drain()
	for p := 0; p < 7; p++ {
		if len(b.delivered[p]) != 14 {
			t.Fatalf("party %d delivered %d, want 14", p, len(b.delivered[p]))
		}
	}
}

// A Byzantine origin that equivocates in its SEND cannot get two honest
// parties to deliver different values: the echo quorums intersect.
func TestNoEquivocationDelivery(t *testing.T) {
	b := newBus(t, 4, 1)
	// Byzantine party 3 sends SEND(v=1) to parties 0,1 and SEND(v=2) to 2.
	m1 := wire.MarshalRBC(wire.RBC{Phase: wire.RBCSend, Origin: 3, Round: 1, Value: 1})
	m2 := wire.MarshalRBC(wire.RBC{Phase: wire.RBCSend, Origin: 3, Round: 1, Value: 2})
	b.handle(0, 3, m1)
	b.handle(1, 3, m1)
	b.handle(2, 3, m2)
	b.drain()
	values := map[float64]bool{}
	for p := 0; p < 3; p++ {
		for _, d := range b.delivered[p] {
			values[d.Value] = true
		}
	}
	if len(values) > 1 {
		t.Fatalf("honest parties delivered different values: %v", values)
	}
}

// Totality: if one honest party delivers, all honest parties deliver, even
// when the origin goes silent right after a minimal send.
func TestTotalityViaReadyAmplification(t *testing.T) {
	b := newBus(t, 4, 1)
	// Origin 0 is byzantine: it sends SEND only to 1 and 2, never to 3.
	m := wire.MarshalRBC(wire.RBC{Phase: wire.RBCSend, Origin: 0, Round: 1, Value: 7})
	b.handle(1, 0, m)
	b.handle(2, 0, m)
	b.mute[0] = true // origin contributes nothing further
	b.drain()
	// With echoes from 1, 2 plus... only 2 echoes < n-t = 3: no one can
	// become ready, so nobody delivers — consistency, not totality, case.
	anyDelivered := false
	for p := 0; p < 4; p++ {
		if len(b.delivered[p]) > 0 {
			anyDelivered = true
		}
	}
	if anyDelivered {
		t.Fatal("delivery without an echo quorum")
	}

	// Now let the origin's send reach party 3 as well: 3 echoes = quorum,
	// everyone (including the never-sent-to party 0... which is the origin
	// itself here) delivers.
	b.handle(3, 0, m)
	b.drain()
	for p := 1; p < 4; p++ {
		if len(b.delivered[p]) != 1 || b.delivered[p][0].Value != 7 {
			t.Errorf("party %d: %+v", p, b.delivered[p])
		}
	}
}

// t+1 READY messages are enough to join, but t READYs forged by the faulty
// parties alone can never cause a delivery (2t+1 needed, only t faulty).
func TestForgedReadiesInsufficient(t *testing.T) {
	b := newBus(t, 4, 1)
	// The single byzantine party (3) sends READY for a value nobody sent.
	b.inject(3, wire.RBC{Phase: wire.RBCReady, Origin: 2, Round: 1, Value: 66})
	for p := 0; p < 4; p++ {
		if len(b.delivered[p]) != 0 {
			t.Fatalf("party %d delivered from forged readies", p)
		}
	}
}

// Duplicate echoes/readies from the same sender count once.
func TestDuplicateVotesIgnored(t *testing.T) {
	b := newBus(t, 4, 1)
	m := wire.RBC{Phase: wire.RBCEcho, Origin: 2, Round: 1, Value: 5}
	for i := 0; i < 10; i++ {
		b.inject(3, m) // same echo, many times
	}
	// One echo from one party is far below the quorum of 3.
	for p := 0; p < 4; p++ {
		for _, d := range b.delivered[p] {
			t.Fatalf("party %d delivered %+v from duplicate echoes", p, d)
		}
	}
}

func TestSendFromNonOriginIgnored(t *testing.T) {
	b := newBus(t, 4, 1)
	// Party 1 claims to relay a SEND with origin 0: must be ignored.
	b.inject(1, wire.RBC{Phase: wire.RBCSend, Origin: 0, Round: 1, Value: 9})
	for p := 0; p < 4; p++ {
		if len(b.delivered[p]) != 0 {
			t.Fatal("delivery from spoofed SEND")
		}
	}
}

func TestMalformedAndOutOfRangeDropped(t *testing.T) {
	bc, err := New(4, 1, 0, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := bc.Handle(1, []byte{1, 2}); ok {
		t.Error("malformed message produced deliveries")
	}
	if _, ok := bc.Handle(9, wire.MarshalRBC(wire.RBC{Phase: wire.RBCEcho, Origin: 1, Round: 1})); ok {
		t.Error("out-of-range sender accepted")
	}
	if _, ok := bc.Handle(1, wire.MarshalRBC(wire.RBC{Phase: wire.RBCEcho, Origin: 9, Round: 1})); ok {
		t.Error("out-of-range origin accepted")
	}
	nan := wire.MarshalRBC(wire.RBC{Phase: wire.RBCEcho, Origin: 1, Round: 1})
	// Corrupt the value into NaN bits.
	for i := 8; i < 16; i++ {
		nan[i] = 0xFF
	}
	if _, ok := bc.Handle(1, nan); ok {
		t.Error("NaN value accepted")
	}
	if _, ok := bc.Handle(1, wire.MarshalRBC(wire.RBC{Phase: wire.RBCEcho, Origin: 1, Round: 0})); ok {
		t.Error("round 0 accepted")
	}
}

// TestReleaseRoundFreesQuiescentState pins the arena-release contract: a
// doomed round's slab is freed exactly when every instance is quiescent
// (SEND seen and delivered), and further traffic for it is dropped.
func TestReleaseRoundFreesQuiescentState(t *testing.T) {
	b := newBus(t, 4, 1)
	for p := 0; p < 4; p++ {
		b.bcs[p].Broadcast(1, float64(p))
	}
	b.drain()
	for p := 0; p < 4; p++ {
		if got := b.bcs[p].Instances(); got != 4 {
			t.Fatalf("party %d holds %d instances before release, want 4", p, got)
		}
		b.bcs[p].ReleaseRound(1)
		if got := b.bcs[p].Instances(); got != 0 {
			t.Errorf("party %d holds %d instances after release, want 0", p, got)
		}
		if _, ok := b.bcs[p].Delivered(Instance{Origin: 0, Round: 1}); ok {
			t.Errorf("party %d still reports deliveries for a released round", p)
		}
	}
	// Straggler traffic for the released round is dropped without
	// resurrecting state.
	b.inject(2, wire.RBC{Phase: wire.RBCEcho, Origin: 0, Round: 1, Value: 9})
	for p := 0; p < 4; p++ {
		if got := b.bcs[p].Instances(); got != 0 {
			t.Errorf("party %d resurrected %d instances", p, got)
		}
	}
}

// TestReleaseRoundDefersUntilQuiescent checks that a round released while
// still in flight keeps behaving exactly like an unreleased one — the
// pending echoes and the delivery still happen — and is freed only once
// every instance is inert (echoed, readied, and delivered).
func TestReleaseRoundDefersUntilQuiescent(t *testing.T) {
	b := newBus(t, 4, 1)
	b.bcs[0].Broadcast(1, 2.5)
	// Release before any traffic is processed: the round must still run
	// its full SEND/ECHO/READY cascade for every origin that shows up.
	for p := 0; p < 4; p++ {
		b.bcs[p].ReleaseRound(1)
	}
	b.drain()
	for p := 0; p < 4; p++ {
		if len(b.delivered[p]) != 1 || b.delivered[p][0].Value != 2.5 {
			t.Fatalf("party %d delivered %+v, want the released-but-live round to deliver", p, b.delivered[p])
		}
		// Only origin 0 broadcast, so the other three instances never saw a
		// SEND: the round is not quiescent and its slab must still be live.
		if got := b.bcs[p].Instances(); got == 0 {
			t.Errorf("party %d freed a non-quiescent round", p)
		}
	}
}

// TestHandleEchoReadySteadyStateAllocs pins the dense hot path: once a
// round's arena slab exists, ECHO and READY handling — including the
// threshold-crossing READY multicast and the delivery — allocates nothing.
func TestHandleEchoReadySteadyStateAllocs(t *testing.T) {
	const n, tf = 64, 21
	bc, err := New(n, tf, 0, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	bc.SetMaxRound(2)
	// Pre-marshal one ECHO and one READY per sender so the loop under
	// measurement does no encoding of its own.
	echoes := make([][]byte, n)
	readies := make([][]byte, n)
	for i := range echoes {
		echoes[i] = wire.MarshalRBC(wire.RBC{Phase: wire.RBCEcho, Origin: 3, Round: 1, Value: 1.5})
		readies[i] = wire.MarshalRBC(wire.RBC{Phase: wire.RBCReady, Origin: 3, Round: 1, Value: 1.5})
	}
	// Materialize the slab and the encoding scratch outside the window.
	bc.Handle(0, echoes[0])
	k := 1
	allocs := testing.AllocsPerRun(200, func() {
		from := uint16(k % n)
		bc.Handle(from, echoes[from])
		bc.Handle(from, readies[from])
		k++
	})
	if allocs != 0 {
		t.Errorf("ECHO/READY steady state allocates %.1f/op, want 0", allocs)
	}
}

func TestMaxRoundCapBoundsState(t *testing.T) {
	bc, err := New(4, 1, 0, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	bc.SetMaxRound(8)
	for r := uint32(1); r <= 100; r++ {
		bc.Handle(1, wire.MarshalRBC(wire.RBC{Phase: wire.RBCEcho, Origin: 1, Round: r, Value: 1}))
	}
	if got := bc.Instances(); got != 8 {
		t.Errorf("instances = %d, want 8 (cap)", got)
	}
}

// TestSetMaxRoundRaisedAndRemoved pins the cap transitions: raising the
// cap grows the dense round table (no out-of-range panic on the newly
// legal rounds) and removing it migrates existing state to the uncapped
// container.
func TestSetMaxRoundRaisedAndRemoved(t *testing.T) {
	bc, err := New(4, 1, 0, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	bc.SetMaxRound(4)
	echo := func(r uint32) {
		bc.Handle(1, wire.MarshalRBC(wire.RBC{Phase: wire.RBCEcho, Origin: 1, Round: r, Value: 1}))
	}
	echo(3)
	bc.SetMaxRound(12)
	echo(9) // beyond the original table: must track, not panic
	if got := bc.Instances(); got != 2 {
		t.Errorf("instances = %d, want 2 after raising the cap", got)
	}
	bc.SetMaxRound(0) // cap removed: state must survive the migration
	echo(100)
	if got := bc.Instances(); got != 3 {
		t.Errorf("instances = %d, want 3 after removing the cap", got)
	}
}
