package rbc

import (
	"testing"

	"repro/internal/wire"
)

// bus wires b Broadcasters together with synchronous-ish delivery: every
// multicast is queued and drained round-robin, collecting deliveries per
// party. It gives tests precise control over who hears what.
type bus struct {
	t       *testing.T
	n, f    int
	bcs     []*Broadcaster
	queue   [][]byte // pending multicasts, tagged with sender
	senders []uint16
	// delivered[p] collects party p's deliveries.
	delivered [][]Delivery
	// mute[p] drops all traffic from party p (simulates a silent fault).
	mute map[uint16]bool
	// drop[p] drops traffic addressed to party p (partition).
	drop map[uint16]bool
}

func newBus(t *testing.T, n, f int) *bus {
	t.Helper()
	b := &bus{
		t:         t,
		n:         n,
		f:         f,
		delivered: make([][]Delivery, n),
		mute:      map[uint16]bool{},
		drop:      map[uint16]bool{},
	}
	b.bcs = make([]*Broadcaster, n)
	for i := 0; i < n; i++ {
		i := i
		bc, err := New(n, f, uint16(i), func(data []byte) {
			if b.mute[uint16(i)] {
				return
			}
			msg := make([]byte, len(data))
			copy(msg, data)
			b.queue = append(b.queue, msg)
			b.senders = append(b.senders, uint16(i))
		})
		if err != nil {
			t.Fatal(err)
		}
		b.bcs[i] = bc
	}
	return b
}

// drain processes queued multicasts until quiescence.
func (b *bus) drain() {
	for len(b.queue) > 0 {
		data := b.queue[0]
		from := b.senders[0]
		b.queue = b.queue[1:]
		b.senders = b.senders[1:]
		for p := 0; p < b.n; p++ {
			if b.drop[uint16(p)] {
				continue
			}
			ds := b.bcs[p].Handle(from, data)
			b.delivered[p] = append(b.delivered[p], ds...)
		}
	}
}

// inject sends a crafted message from a (possibly byzantine) sender to all.
func (b *bus) inject(from uint16, m wire.RBC) {
	for p := 0; p < b.n; p++ {
		if b.drop[uint16(p)] {
			continue
		}
		ds := b.bcs[p].Handle(from, wire.MarshalRBC(m))
		b.delivered[p] = append(b.delivered[p], ds...)
	}
	b.drain()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(3, 1, 0, func([]byte) {}); err == nil {
		t.Error("n=3 t=1 accepted (needs n >= 3t+1)")
	}
	if _, err := New(4, 1, 4, func([]byte) {}); err == nil {
		t.Error("self out of range accepted")
	}
	if _, err := New(4, 1, 0, nil); err == nil {
		t.Error("nil multicast accepted")
	}
	if _, err := New(4, -1, 0, func([]byte) {}); err == nil {
		t.Error("negative t accepted")
	}
}

func TestHappyPathAllDeliver(t *testing.T) {
	b := newBus(t, 4, 1)
	b.bcs[0].Broadcast(1, 3.5)
	b.drain()
	for p := 0; p < 4; p++ {
		if len(b.delivered[p]) != 1 {
			t.Fatalf("party %d delivered %d times", p, len(b.delivered[p]))
		}
		d := b.delivered[p][0]
		if d.Origin != 0 || d.Round != 1 || d.Value != 3.5 {
			t.Errorf("party %d delivered %+v", p, d)
		}
	}
	if v, ok := b.bcs[1].Delivered(Instance{Origin: 0, Round: 1}); !ok || v != 3.5 {
		t.Errorf("Delivered() = %v, %v", v, ok)
	}
}

func TestConcurrentInstances(t *testing.T) {
	b := newBus(t, 7, 2)
	for i := 0; i < 7; i++ {
		b.bcs[i].Broadcast(1, float64(i))
		b.bcs[i].Broadcast(2, float64(10+i))
	}
	b.drain()
	for p := 0; p < 7; p++ {
		if len(b.delivered[p]) != 14 {
			t.Fatalf("party %d delivered %d, want 14", p, len(b.delivered[p]))
		}
	}
}

// A Byzantine origin that equivocates in its SEND cannot get two honest
// parties to deliver different values: the echo quorums intersect.
func TestNoEquivocationDelivery(t *testing.T) {
	b := newBus(t, 4, 1)
	// Byzantine party 3 sends SEND(v=1) to parties 0,1 and SEND(v=2) to 2.
	m1 := wire.MarshalRBC(wire.RBC{Phase: wire.RBCSend, Origin: 3, Round: 1, Value: 1})
	m2 := wire.MarshalRBC(wire.RBC{Phase: wire.RBCSend, Origin: 3, Round: 1, Value: 2})
	b.delivered[0] = append(b.delivered[0], b.bcs[0].Handle(3, m1)...)
	b.delivered[1] = append(b.delivered[1], b.bcs[1].Handle(3, m1)...)
	b.delivered[2] = append(b.delivered[2], b.bcs[2].Handle(3, m2)...)
	b.drain()
	values := map[float64]bool{}
	for p := 0; p < 3; p++ {
		for _, d := range b.delivered[p] {
			values[d.Value] = true
		}
	}
	if len(values) > 1 {
		t.Fatalf("honest parties delivered different values: %v", values)
	}
}

// Totality: if one honest party delivers, all honest parties deliver, even
// when the origin goes silent right after a minimal send.
func TestTotalityViaReadyAmplification(t *testing.T) {
	b := newBus(t, 4, 1)
	// Origin 0 is byzantine: it sends SEND only to 1 and 2, never to 3.
	m := wire.MarshalRBC(wire.RBC{Phase: wire.RBCSend, Origin: 0, Round: 1, Value: 7})
	b.delivered[1] = append(b.delivered[1], b.bcs[1].Handle(0, m)...)
	b.delivered[2] = append(b.delivered[2], b.bcs[2].Handle(0, m)...)
	b.mute[0] = true // origin contributes nothing further
	b.drain()
	// With echoes from 1, 2 plus... only 2 echoes < n-t = 3: no one can
	// become ready, so nobody delivers — consistency, not totality, case.
	anyDelivered := false
	for p := 0; p < 4; p++ {
		if len(b.delivered[p]) > 0 {
			anyDelivered = true
		}
	}
	if anyDelivered {
		t.Fatal("delivery without an echo quorum")
	}

	// Now let the origin's send reach party 3 as well: 3 echoes = quorum,
	// everyone (including the never-sent-to party 0... which is the origin
	// itself here) delivers.
	b.delivered[3] = append(b.delivered[3], b.bcs[3].Handle(0, m)...)
	b.drain()
	for p := 1; p < 4; p++ {
		if len(b.delivered[p]) != 1 || b.delivered[p][0].Value != 7 {
			t.Errorf("party %d: %+v", p, b.delivered[p])
		}
	}
}

// t+1 READY messages are enough to join, but t READYs forged by the faulty
// parties alone can never cause a delivery (2t+1 needed, only t faulty).
func TestForgedReadiesInsufficient(t *testing.T) {
	b := newBus(t, 4, 1)
	// The single byzantine party (3) sends READY for a value nobody sent.
	b.inject(3, wire.RBC{Phase: wire.RBCReady, Origin: 2, Round: 1, Value: 66})
	for p := 0; p < 4; p++ {
		if len(b.delivered[p]) != 0 {
			t.Fatalf("party %d delivered from forged readies", p)
		}
	}
}

// Duplicate echoes/readies from the same sender count once.
func TestDuplicateVotesIgnored(t *testing.T) {
	b := newBus(t, 4, 1)
	m := wire.RBC{Phase: wire.RBCEcho, Origin: 2, Round: 1, Value: 5}
	for i := 0; i < 10; i++ {
		b.inject(3, m) // same echo, many times
	}
	// One echo from one party is far below the quorum of 3.
	for p := 0; p < 4; p++ {
		for _, d := range b.delivered[p] {
			t.Fatalf("party %d delivered %+v from duplicate echoes", p, d)
		}
	}
}

func TestSendFromNonOriginIgnored(t *testing.T) {
	b := newBus(t, 4, 1)
	// Party 1 claims to relay a SEND with origin 0: must be ignored.
	b.inject(1, wire.RBC{Phase: wire.RBCSend, Origin: 0, Round: 1, Value: 9})
	for p := 0; p < 4; p++ {
		if len(b.delivered[p]) != 0 {
			t.Fatal("delivery from spoofed SEND")
		}
	}
}

func TestMalformedAndOutOfRangeDropped(t *testing.T) {
	bc, err := New(4, 1, 0, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if ds := bc.Handle(1, []byte{1, 2}); ds != nil {
		t.Error("malformed message produced deliveries")
	}
	if ds := bc.Handle(9, wire.MarshalRBC(wire.RBC{Phase: wire.RBCEcho, Origin: 1, Round: 1})); ds != nil {
		t.Error("out-of-range sender accepted")
	}
	if ds := bc.Handle(1, wire.MarshalRBC(wire.RBC{Phase: wire.RBCEcho, Origin: 9, Round: 1})); ds != nil {
		t.Error("out-of-range origin accepted")
	}
	nan := wire.MarshalRBC(wire.RBC{Phase: wire.RBCEcho, Origin: 1, Round: 1})
	// Corrupt the value into NaN bits.
	for i := 8; i < 16; i++ {
		nan[i] = 0xFF
	}
	if ds := bc.Handle(1, nan); ds != nil {
		t.Error("NaN value accepted")
	}
	if ds := bc.Handle(1, wire.MarshalRBC(wire.RBC{Phase: wire.RBCEcho, Origin: 1, Round: 0})); ds != nil {
		t.Error("round 0 accepted")
	}
}

func TestMaxRoundCapBoundsState(t *testing.T) {
	bc, err := New(4, 1, 0, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	bc.SetMaxRound(8)
	for r := uint32(1); r <= 100; r++ {
		bc.Handle(1, wire.MarshalRBC(wire.RBC{Phase: wire.RBCEcho, Origin: 1, Round: r, Value: 1}))
	}
	if got := bc.Instances(); got != 8 {
		t.Errorf("instances = %d, want 8 (cap)", got)
	}
}
