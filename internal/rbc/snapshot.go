package rbc

import (
	"fmt"
	"math/bits"
	"slices"

	"repro/internal/checkpoint"
)

// maxSnapRounds caps the round count a snapshot may declare, so a damaged
// record cannot drive an unbounded restore loop (protocol horizons are
// logarithmic in the promised range and stay far below this).
const maxSnapRounds = maxDenseRounds

// instance flag bits in the snapshot encoding.
const (
	snapTouched = 1 << iota
	snapSendSeen
	snapEchoed
	snapReadied
	snapDelivered
)

// AppendState appends the broadcaster's full volatile state — every round
// slab, instance flag, vote tally, and seen bitset — to buf using the
// checkpoint field primitives, and returns the extended slice. Rounds are
// emitted in ascending round order so identical state always produces
// identical bytes (checkpoint digests are compared across replays).
func (b *Broadcaster) AppendState(buf []byte) []byte {
	buf = checkpoint.AppendUvarint(buf, uint64(b.n))
	buf = checkpoint.AppendUvarint(buf, uint64(b.t))
	buf = checkpoint.AppendUvarint(buf, uint64(b.maxRound))
	count := 0
	b.eachRound(func(uint32, *roundState) { count++ })
	buf = checkpoint.AppendUvarint(buf, uint64(count))
	b.eachRound(func(r uint32, rs *roundState) {
		buf = b.appendRound(buf, r, rs)
	})
	return buf
}

// eachRound visits every live round state in ascending round order.
func (b *Broadcaster) eachRound(fn func(uint32, *roundState)) {
	if b.byRound != nil {
		for r, rs := range b.byRound {
			if rs != nil {
				fn(uint32(r), rs)
			}
		}
		return
	}
	b.snapRounds = b.snapRounds[:0]
	for r := range b.rounds {
		b.snapRounds = append(b.snapRounds, r)
	}
	slices.Sort(b.snapRounds) // allocation-free, unlike sort.Slice's closure
	for _, r := range b.snapRounds {
		fn(r, b.rounds[r])
	}
}

func (b *Broadcaster) appendRound(buf []byte, r uint32, rs *roundState) []byte {
	buf = checkpoint.AppendUvarint(buf, uint64(r))
	buf = checkpoint.AppendInt(buf, rs.active)
	buf = checkpoint.AppendInt(buf, rs.complete)
	buf = checkpoint.AppendBool(buf, rs.doomed)
	buf = checkpoint.AppendBool(buf, rs.freed)
	buf = checkpoint.AppendBool(buf, rs.inst != nil)
	if rs.inst == nil {
		return buf
	}
	for i := range rs.inst {
		st := &rs.inst[i]
		flags := uint64(0)
		if st.touched {
			flags |= snapTouched
		}
		if st.sendSeen {
			flags |= snapSendSeen
		}
		if st.echoed {
			flags |= snapEchoed
		}
		if st.readied {
			flags |= snapReadied
		}
		if st.delivered {
			flags |= snapDelivered
		}
		buf = checkpoint.AppendUvarint(buf, flags)
		if st.delivered {
			buf = checkpoint.AppendF64(buf, st.deliveredAs)
		}
		buf = appendTally(buf, &st.echo)
		buf = appendTally(buf, &st.ready)
	}
	return buf
}

func appendTally(buf []byte, t *tally) []byte {
	buf = checkpoint.AppendWords(buf, t.seen)
	buf = checkpoint.AppendUvarint(buf, uint64(len(t.votes)))
	for _, v := range t.votes {
		buf = checkpoint.AppendF64(buf, v.val)
		buf = checkpoint.AppendInt(buf, int(v.count))
	}
	return buf
}

// RestoreState reads the state AppendState wrote back into the
// broadcaster, which must already be configured (Reset + SetMaxRound) with
// the identical shape — n, t, and round cap are validated against the
// record. Round slabs are re-materialized through the normal free-pool
// path, so a warm restore performs no allocation.
func (b *Broadcaster) RestoreState(d *checkpoint.Dec) error {
	n, t, maxRound := d.Uvarint(), d.Uvarint(), d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if int(n) != b.n || int(t) != b.t || uint32(maxRound) != b.maxRound {
		return fmt.Errorf("rbc: snapshot shape n=%d t=%d max=%d, broadcaster n=%d t=%d max=%d",
			n, t, maxRound, b.n, b.t, b.maxRound)
	}
	count := d.Uvarint()
	if count > maxSnapRounds {
		return fmt.Errorf("rbc: snapshot declares %d rounds", count)
	}
	for i := uint64(0); i < count; i++ {
		if err := b.restoreRound(d); err != nil {
			return err
		}
	}
	return d.Err()
}

func (b *Broadcaster) restoreRound(d *checkpoint.Dec) error {
	r := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if r == 0 || (b.maxRound > 0 && uint32(r) > b.maxRound) || r > maxSnapRounds {
		return fmt.Errorf("rbc: snapshot round %d outside cap %d", r, b.maxRound)
	}
	rs := b.round(uint32(r))
	rs.active = d.Int()
	rs.complete = d.Int()
	rs.doomed = d.Bool()
	rs.freed = d.Bool()
	materialized := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if rs.active < 0 || rs.active > b.n || rs.complete < 0 || rs.complete > b.n {
		return fmt.Errorf("rbc: snapshot round %d counters out of range", r)
	}
	if !materialized {
		return nil
	}
	b.materialize(rs)
	for i := range rs.inst {
		st := &rs.inst[i]
		flags := d.Uvarint()
		if err := d.Err(); err != nil {
			return err
		}
		st.touched = flags&snapTouched != 0
		st.sendSeen = flags&snapSendSeen != 0
		st.echoed = flags&snapEchoed != 0
		st.readied = flags&snapReadied != 0
		st.delivered = flags&snapDelivered != 0
		if st.delivered {
			st.deliveredAs = d.F64()
		}
		if err := restoreTally(d, &st.echo, b.n); err != nil {
			return fmt.Errorf("rbc: round %d instance %d echo: %w", r, i, err)
		}
		if err := restoreTally(d, &st.ready, b.n); err != nil {
			return fmt.Errorf("rbc: round %d instance %d ready: %w", r, i, err)
		}
	}
	return d.Err()
}

func restoreTally(d *checkpoint.Dec, t *tally, n int) error {
	d.Words(t.seen)
	nv := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if int(nv) > n {
		return fmt.Errorf("%d distinct vote values for %d parties", nv, n)
	}
	t.votes = t.votes[:0]
	for i := uint64(0); i < nv; i++ {
		val := d.F64()
		count := d.Int()
		if count < 0 || count > n {
			return fmt.Errorf("vote count %d out of range", count)
		}
		t.votes = append(t.votes, vote{val: val, count: int32(count)})
	}
	// The per-sender bitset and the value counts must agree; a mismatch
	// means the record is internally inconsistent.
	seen := 0
	for _, w := range t.seen {
		seen += bits.OnesCount64(w)
	}
	total := 0
	for _, v := range t.votes {
		total += int(v.count)
	}
	if seen != total {
		return fmt.Errorf("tally bitset has %d senders, votes total %d", seen, total)
	}
	return nil
}
