// Package rbc implements Bracha-style asynchronous reliable broadcast,
// tolerating t < n/3 Byzantine parties. It is the substrate the witness
// technique is built on: RBC forces a Byzantine sender to be consistent —
// if any honest party delivers (origin, round, v), every honest party
// eventually delivers exactly that v for (origin, round) — which removes
// equivocation from the Byzantine approximate-agreement analysis.
//
// Protocol per instance (origin, round):
//
//	origin:                multicast ⟨SEND, v⟩
//	on ⟨SEND, v⟩ from origin (first):   multicast ⟨ECHO, v⟩
//	on n−t ⟨ECHO, v⟩:                   multicast ⟨READY, v⟩ (once)
//	on t+1 ⟨READY, v⟩:                  multicast ⟨READY, v⟩ (once)
//	on 2t+1 ⟨READY, v⟩:                 deliver v
//
// The n−t echo threshold is a quorum: two quorums intersect in ≥ n−2t ≥ t+1
// parties, hence in an honest party, so two honest parties can never become
// ready for different values; the t+1 ready amplification gives totality.
package rbc

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/wire"
)

// Instance identifies one broadcast: a sender and a protocol round.
type Instance struct {
	Origin uint16
	Round  uint32
}

// Delivery is a completed reliable broadcast.
type Delivery struct {
	Origin uint16
	Round  uint32
	Value  float64
}

// Broadcaster multiplexes all RBC instances for a single party. It is a
// pure state machine: the owner feeds it incoming wire messages via Handle
// and gives it a multicast function for its own traffic.
type Broadcaster struct {
	n, t      int
	self      uint16
	multicast func(data []byte)
	// maxRound discards instances tagged beyond the protocol horizon so a
	// Byzantine party cannot grow state without bound. Zero means no cap.
	maxRound uint32
	inst     map[Instance]*instanceState
}

type instanceState struct {
	echoed    bool
	readied   bool
	delivered bool
	// echoes and readies record each sender's first (and only counted)
	// message, per Bracha's one-vote-per-party rule.
	echoes      map[uint16]float64
	readies     map[uint16]float64
	echoVotes   map[float64]int
	readyVotes  map[float64]int
	sendSeen    bool
	deliveredAs float64
}

// New creates a Broadcaster. The multicast function must deliver to all n
// parties (self included); n must satisfy n >= 3t+1.
func New(n, t int, self uint16, multicast func(data []byte)) (*Broadcaster, error) {
	if n < 3*t+1 || t < 0 {
		return nil, fmt.Errorf("rbc: need n >= 3t+1, got n=%d t=%d", n, t)
	}
	if int(self) >= n {
		return nil, fmt.Errorf("rbc: self %d out of range [0,%d)", self, n)
	}
	if multicast == nil {
		return nil, errors.New("rbc: nil multicast")
	}
	return &Broadcaster{
		n:         n,
		t:         t,
		self:      self,
		multicast: multicast,
		inst:      make(map[Instance]*instanceState),
	}, nil
}

// SetMaxRound caps the instance rounds the broadcaster will track.
func (b *Broadcaster) SetMaxRound(r uint32) { b.maxRound = r }

// Broadcast starts this party's own broadcast for a round.
func (b *Broadcaster) Broadcast(round uint32, v float64) {
	b.multicast(wire.MarshalRBC(wire.RBC{
		Phase:  wire.RBCSend,
		Origin: b.self,
		Round:  round,
		Value:  v,
	}))
}

func (b *Broadcaster) state(key Instance) *instanceState {
	st, ok := b.inst[key]
	if !ok {
		st = &instanceState{
			echoes:     make(map[uint16]float64),
			readies:    make(map[uint16]float64),
			echoVotes:  make(map[float64]int),
			readyVotes: make(map[float64]int),
		}
		b.inst[key] = st
	}
	return st
}

// Handle processes one incoming RBC wire message from a party and returns
// the deliveries it triggers (zero or one). Malformed or out-of-cap
// messages are silently dropped, as Byzantine input must be.
func (b *Broadcaster) Handle(from uint16, data []byte) []Delivery {
	m, err := wire.UnmarshalRBC(data)
	if err != nil {
		return nil
	}
	if int(from) >= b.n || int(m.Origin) >= b.n {
		return nil
	}
	if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
		return nil
	}
	if m.Round == 0 || (b.maxRound > 0 && m.Round > b.maxRound) {
		return nil
	}
	key := Instance{Origin: m.Origin, Round: m.Round}
	st := b.state(key)
	switch m.Phase {
	case wire.RBCSend:
		// Only the origin's first SEND counts.
		if from != m.Origin || st.sendSeen {
			return nil
		}
		st.sendSeen = true
		if !st.echoed {
			st.echoed = true
			b.multicast(wire.MarshalRBC(wire.RBC{
				Phase: wire.RBCEcho, Origin: m.Origin, Round: m.Round, Value: m.Value,
			}))
		}
	case wire.RBCEcho:
		if _, dup := st.echoes[from]; dup {
			return nil
		}
		st.echoes[from] = m.Value
		st.echoVotes[m.Value]++
		if st.echoVotes[m.Value] >= b.n-b.t && !st.readied {
			st.readied = true
			b.multicast(wire.MarshalRBC(wire.RBC{
				Phase: wire.RBCReady, Origin: m.Origin, Round: m.Round, Value: m.Value,
			}))
		}
	case wire.RBCReady:
		if _, dup := st.readies[from]; dup {
			return nil
		}
		st.readies[from] = m.Value
		st.readyVotes[m.Value]++
		if st.readyVotes[m.Value] >= b.t+1 && !st.readied {
			st.readied = true
			b.multicast(wire.MarshalRBC(wire.RBC{
				Phase: wire.RBCReady, Origin: m.Origin, Round: m.Round, Value: m.Value,
			}))
		}
		if st.readyVotes[m.Value] >= 2*b.t+1 && !st.delivered {
			st.delivered = true
			st.deliveredAs = m.Value
			return []Delivery{{Origin: m.Origin, Round: m.Round, Value: m.Value}}
		}
	}
	return nil
}

// Delivered reports whether an instance has delivered, and its value.
func (b *Broadcaster) Delivered(key Instance) (float64, bool) {
	st, ok := b.inst[key]
	if !ok || !st.delivered {
		return 0, false
	}
	return st.deliveredAs, true
}

// Instances reports how many instances hold state (for memory tests).
func (b *Broadcaster) Instances() int { return len(b.inst) }
