// Package rbc implements Bracha-style asynchronous reliable broadcast,
// tolerating t < n/3 Byzantine parties. It is the substrate the witness
// technique is built on: RBC forces a Byzantine sender to be consistent —
// if any honest party delivers (origin, round, v), every honest party
// eventually delivers exactly that v for (origin, round) — which removes
// equivocation from the Byzantine approximate-agreement analysis.
//
// Protocol per instance (origin, round):
//
//	origin:                multicast ⟨SEND, v⟩
//	on ⟨SEND, v⟩ from origin (first):   multicast ⟨ECHO, v⟩
//	on n−t ⟨ECHO, v⟩:                   multicast ⟨READY, v⟩ (once)
//	on t+1 ⟨READY, v⟩:                  multicast ⟨READY, v⟩ (once)
//	on 2t+1 ⟨READY, v⟩:                 deliver v
//
// The n−t echo threshold is a quorum: two quorums intersect in ≥ n−2t ≥ t+1
// parties, hence in an honest party, so two honest parties can never become
// ready for different values; the t+1 ready amplification gives totality.
//
// State is dense and index-addressed: one arena slab per round holds all n
// instances (indexed by origin), per-sender vote bookkeeping is a
// seen-bitset instead of a map, and vote tallies are small value/count
// slices (real vote-value cardinality is tiny even under Byzantine input).
// This is the Θ(n³)-message hot path of the witness protocol; see PERF.md.
package rbc

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/wire"
)

// Instance identifies one broadcast: a sender and a protocol round.
type Instance struct {
	Origin uint16
	Round  uint32
}

// Delivery is a completed reliable broadcast.
type Delivery struct {
	Origin uint16
	Round  uint32
	Value  float64
}

// voteCap is the arena-backed capacity of a vote tally. Honest executions
// see exactly one distinct value per instance; a tally only spills to a
// heap-allocated slice when Byzantine senders vote for a fifth value.
const voteCap = 4

// maxDenseRounds bounds the round-indexed slab table; a horizon above it
// (never hit by the protocols, whose round counts are logarithmic in the
// promised range) falls back to the map container.
const maxDenseRounds = 1 << 12

// Broadcaster multiplexes all RBC instances for a single party. It is a
// pure state machine: the owner feeds it incoming wire messages via Handle
// and gives it a multicast function for its own traffic.
type Broadcaster struct {
	n, t  int
	words int // bitset words per sender set
	self  uint16
	// multicast must not retain the slice past the call: the Broadcaster
	// encodes into an internal scratch buffer it reuses for the next
	// message. The simulator and livenet both copy on send.
	multicast func(data []byte)
	// maxRound discards instances tagged beyond the protocol horizon so a
	// Byzantine party cannot grow state without bound. Zero means no cap.
	maxRound uint32
	// byRound is the dense round table, allocated when SetMaxRound declares
	// a horizon before any traffic; rounds is the uncapped fallback.
	byRound []*roundState
	rounds  map[uint32]*roundState
	buf     []byte // wire-encoding scratch

	// Recycling state. freeSlabs holds arena slabs (instance array plus the
	// two shared vote backings) returned by quiescent-round release and by
	// Reset; freeRS holds zeroed roundState records; denseSpare keeps the
	// dense round table's backing across Reset so SetMaxRound can re-carve
	// it. All three are shape-bound to n and dropped when Reset changes it.
	freeSlabs  []slab
	freeRS     []*roundState
	denseSpare []*roundState
	mapSpare   map[uint32]*roundState

	// snapRounds is the sorted-round scratch the snapshot encoder uses when
	// the map container is active, reused across snapshots.
	snapRounds []uint32
}

// slab is one recyclable round arena: the instance array and the two
// backing allocations its tallies are carved from.
type slab struct {
	inst  []instanceState
	seen  []uint64
	votes []vote
}

// roundState is the per-round arena: all n instances of a round, indexed
// by origin, with their vote storage carved from four shared backing
// allocations (instead of one struct plus four maps per instance).
type roundState struct {
	inst   []instanceState
	seen   []uint64 // backing of the instances' seen-bitsets, for recycling
	votes  []vote   // backing of the instances' vote tallies, for recycling
	active int      // instances touched, for the Instances() memory hook
	// complete counts inert instances — echoed, readied, and delivered.
	// Such an instance can never emit anything again: a late SEND finds
	// echoed already set, further votes find readied and delivered set. So
	// when complete reaches n the round is quiescent and its slab can be
	// freed (and later messages dropped) without changing any observable
	// behavior. An instance of a faulty sender that never completes keeps
	// its round's slab alive — that retention is inherent to exactness,
	// because a suppressed ECHO/READY could starve a slower party.
	complete int
	// doomed marks a ReleaseRound request; freed marks the slab released
	// (further messages for the round are dropped).
	doomed bool
	freed  bool
}

type instanceState struct {
	touched     bool
	sendSeen    bool
	echoed      bool
	readied     bool
	delivered   bool
	deliveredAs float64
	echo        tally
	ready       tally
}

// inert reports that the instance can never emit another message or
// delivery, whatever arrives.
func (st *instanceState) inert() bool {
	return st.echoed && st.readied && st.delivered
}

// tally records one vote per sender (Bracha's rule) in dense form: a
// seen-bitset for duplicate suppression and a small value/count slice for
// threshold tests. Which value a particular sender voted for is never
// consulted afterwards, so no per-sender value array is kept.
type tally struct {
	seen  []uint64 // duplicate-suppression bitset over senders
	votes []vote   // distinct values with counts; cardinality is tiny
}

type vote struct {
	val   float64
	count int32
}

// record counts sender's vote for v. It returns the updated count for v,
// or dup=true if the sender already voted in this tally.
func (t *tally) record(from uint16, v float64) (count int, dup bool) {
	w, bit := int(from)>>6, uint64(1)<<(from&63)
	if t.seen[w]&bit != 0 {
		return 0, true
	}
	t.seen[w] |= bit
	for i := range t.votes {
		if t.votes[i].val == v {
			t.votes[i].count++
			return int(t.votes[i].count), false
		}
	}
	t.votes = append(t.votes, vote{val: v, count: 1})
	return 1, false
}

// New creates a Broadcaster. The multicast function must deliver to all n
// parties (self included) and must not retain the slice after returning
// (copy if needed); n must satisfy n >= 3t+1.
func New(n, t int, self uint16, multicast func(data []byte)) (*Broadcaster, error) {
	if n < 3*t+1 || t < 0 {
		return nil, fmt.Errorf("rbc: need n >= 3t+1, got n=%d t=%d", n, t)
	}
	if int(self) >= n {
		return nil, fmt.Errorf("rbc: self %d out of range [0,%d)", self, n)
	}
	if multicast == nil {
		return nil, errors.New("rbc: nil multicast")
	}
	b := &Broadcaster{buf: make([]byte, 0, wire.RBCSize)}
	if err := b.Reset(n, t, self, multicast); err != nil {
		return nil, err
	}
	return b, nil
}

// Reset reconfigures the broadcaster for a new execution, recycling every
// round's arena slab (and the dense round table's backing) instead of
// dropping them — the shape-preserving case performs no allocation. It is
// observably equivalent to New: all protocol state is cleared and recycled
// slabs are re-zeroed before reuse. Changing n drops the shape-bound pools.
func (b *Broadcaster) Reset(n, t int, self uint16, multicast func(data []byte)) error {
	if n < 3*t+1 || t < 0 {
		return fmt.Errorf("rbc: need n >= 3t+1, got n=%d t=%d", n, t)
	}
	if int(self) >= n {
		return fmt.Errorf("rbc: self %d out of range [0,%d)", self, n)
	}
	if multicast == nil {
		return errors.New("rbc: nil multicast")
	}
	if n != b.n {
		b.freeSlabs = b.freeSlabs[:0]
		clear(b.freeSlabs[:cap(b.freeSlabs)])
	}
	b.n, b.t = n, t
	b.words = (n + 63) / 64
	b.self = self
	b.multicast = multicast
	b.maxRound = 0
	if b.byRound != nil {
		for i, rs := range b.byRound {
			if rs != nil {
				b.recycle(rs)
				b.byRound[i] = nil
			}
		}
		b.denseSpare = b.byRound[:0]
		b.byRound = nil
	}
	if b.rounds == nil {
		// A previous SetMaxRound switched to the dense table and parked the
		// (empty) map container in mapSpare; restore it rather than remake.
		if b.mapSpare != nil {
			b.rounds, b.mapSpare = b.mapSpare, nil
		} else {
			b.rounds = make(map[uint32]*roundState)
		}
	} else {
		for r, rs := range b.rounds {
			b.recycle(rs)
			delete(b.rounds, r)
		}
	}
	return nil
}

// recycle returns a round's slab to the free pool (shape permitting) and
// its zeroed state record to the record pool.
func (b *Broadcaster) recycle(rs *roundState) {
	if rs.inst != nil && len(rs.inst) == b.n {
		b.freeSlabs = append(b.freeSlabs, slab{inst: rs.inst, seen: rs.seen, votes: rs.votes})
	}
	*rs = roundState{}
	b.freeRS = append(b.freeRS, rs)
}

// SetMaxRound caps the instance rounds the broadcaster will track. Called
// before any traffic it also switches the round table to its dense
// round-indexed form; raising the cap later grows the table, and removing
// it (or exceeding the dense bound) migrates back to the map container.
func (b *Broadcaster) SetMaxRound(r uint32) {
	b.maxRound = r
	if b.byRound != nil {
		if r == 0 || r > maxDenseRounds {
			m := make(map[uint32]*roundState)
			for i, rs := range b.byRound {
				if rs != nil {
					m[uint32(i)] = rs
				}
			}
			b.rounds, b.byRound = m, nil
		} else if int(r)+1 > len(b.byRound) {
			grown := make([]*roundState, r+1)
			copy(grown, b.byRound)
			b.byRound = grown
		}
		return
	}
	if r > 0 && r <= maxDenseRounds && len(b.rounds) == 0 {
		if cap(b.denseSpare) >= int(r)+1 {
			b.byRound = b.denseSpare[:r+1]
			clear(b.byRound)
		} else {
			b.byRound = make([]*roundState, r+1)
		}
		b.denseSpare = nil
		b.mapSpare = b.rounds // empty (len checked above); parked for Reset
		b.rounds = nil
	}
}

// Broadcast starts this party's own broadcast for a round.
func (b *Broadcaster) Broadcast(round uint32, v float64) {
	b.cast(wire.RBCSend, b.self, round, v)
}

// cast encodes into the scratch buffer and multicasts.
func (b *Broadcaster) cast(phase byte, origin uint16, round uint32, v float64) {
	b.buf = wire.AppendRBC(b.buf[:0], wire.RBC{
		Phase: phase, Origin: origin, Round: round, Value: v,
	})
	b.multicast(b.buf)
}

// round returns the (possibly empty) state record for a round, creating it
// (from the record pool when possible) if absent. Callers have already
// validated r against maxRound.
func (b *Broadcaster) round(r uint32) *roundState {
	if b.byRound != nil {
		if rs := b.byRound[r]; rs != nil {
			return rs
		}
		rs := b.newRoundState()
		b.byRound[r] = rs
		return rs
	}
	rs, ok := b.rounds[r]
	if !ok {
		rs = b.newRoundState()
		b.rounds[r] = rs
	}
	return rs
}

func (b *Broadcaster) newRoundState() *roundState {
	if k := len(b.freeRS); k > 0 {
		rs := b.freeRS[k-1]
		b.freeRS[k-1] = nil
		b.freeRS = b.freeRS[:k-1]
		return rs
	}
	return &roundState{}
}

// materialize attaches the round's arena slab — three backing arrays shared
// by all n instances, instead of per-instance maps — recycling a slab from
// the free pool when one is available (re-zeroed here, so a recycled round
// is indistinguishable from a fresh one).
func (b *Broadcaster) materialize(rs *roundState) {
	n, w := b.n, b.words
	if k := len(b.freeSlabs); k > 0 {
		rec := b.freeSlabs[k-1]
		b.freeSlabs[k-1] = slab{}
		b.freeSlabs = b.freeSlabs[:k-1]
		rs.inst, rs.seen, rs.votes = rec.inst, rec.seen, rec.votes
		clear(rs.inst)
		clear(rs.seen)
	} else {
		rs.inst = make([]instanceState, n)
		rs.seen = make([]uint64, 2*n*w)
		rs.votes = make([]vote, 2*n*voteCap)
	}
	seen, votes := rs.seen, rs.votes
	for i := range rs.inst {
		st := &rs.inst[i]
		st.echo = tally{
			seen:  seen[(2*i)*w : (2*i+1)*w],
			votes: votes[(2*i)*voteCap : (2*i)*voteCap : (2*i+1)*voteCap],
		}
		st.ready = tally{
			seen:  seen[(2*i+1)*w : (2*i+2)*w],
			votes: votes[(2*i+1)*voteCap : (2*i+1)*voteCap : (2*i+2)*voteCap],
		}
	}
}

// ReleaseRound asks the broadcaster to free round r's arena slab. The slab
// is released as soon as the round is quiescent — every instance echoed,
// readied, and delivered — at which point no message can trigger another
// send or delivery, so dropping the state (and all further messages for
// the round) is observably identical to keeping it. Until quiescence the
// round keeps answering messages normally, so protocol traffic (and the
// experiment tables measuring it) is byte-for-byte unchanged; a round
// whose faulty senders leave instances forever incomplete is retained,
// the price of exactness. After release, Delivered reports false for the
// round.
func (b *Broadcaster) ReleaseRound(r uint32) {
	if r == 0 || (b.maxRound > 0 && r > b.maxRound) {
		return
	}
	rs := b.round(r)
	rs.doomed = true
	b.maybeFree(rs)
}

func (b *Broadcaster) maybeFree(rs *roundState) {
	if !rs.doomed || rs.freed || rs.inst == nil || rs.complete < b.n {
		return
	}
	// The quiescent round's slab goes back to the free pool rather than to
	// the GC, so the next round (or the next recycled run) materializes
	// without allocating.
	b.freeSlabs = append(b.freeSlabs, slab{inst: rs.inst, seen: rs.seen, votes: rs.votes})
	rs.inst, rs.seen, rs.votes = nil, nil, nil
	rs.active = 0
	rs.freed = true
}

// Handle processes one incoming RBC wire message from a party and returns
// the delivery it triggers, if any. Malformed or out-of-cap messages are
// silently dropped, as Byzantine input must be.
func (b *Broadcaster) Handle(from uint16, data []byte) (Delivery, bool) {
	m, err := wire.UnmarshalRBC(data)
	if err != nil {
		return Delivery{}, false
	}
	if int(from) >= b.n || int(m.Origin) >= b.n {
		return Delivery{}, false
	}
	if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
		return Delivery{}, false
	}
	if m.Round == 0 || (b.maxRound > 0 && m.Round > b.maxRound) {
		return Delivery{}, false
	}
	rs := b.round(m.Round)
	if rs.freed {
		return Delivery{}, false
	}
	if rs.inst == nil {
		b.materialize(rs)
	}
	st := &rs.inst[m.Origin]
	if !st.touched {
		st.touched = true
		rs.active++
	}
	var del Delivery
	var delivered bool
	switch m.Phase {
	case wire.RBCSend:
		// Only the origin's first SEND counts.
		if from != m.Origin || st.sendSeen {
			return Delivery{}, false
		}
		st.sendSeen = true
		if !st.echoed {
			st.echoed = true
			b.cast(wire.RBCEcho, m.Origin, m.Round, m.Value)
			if st.inert() {
				rs.complete++
			}
		}
	case wire.RBCEcho:
		count, dup := st.echo.record(from, m.Value)
		if dup {
			return Delivery{}, false
		}
		if count >= b.n-b.t && !st.readied {
			st.readied = true
			b.cast(wire.RBCReady, m.Origin, m.Round, m.Value)
			if st.inert() {
				rs.complete++
			}
		}
	case wire.RBCReady:
		count, dup := st.ready.record(from, m.Value)
		if dup {
			return Delivery{}, false
		}
		if count >= b.t+1 && !st.readied {
			st.readied = true
			b.cast(wire.RBCReady, m.Origin, m.Round, m.Value)
			if st.inert() {
				rs.complete++
			}
		}
		if count >= 2*b.t+1 && !st.delivered {
			st.delivered = true
			st.deliveredAs = m.Value
			if st.inert() {
				rs.complete++
			}
			del = Delivery{Origin: m.Origin, Round: m.Round, Value: m.Value}
			delivered = true
		}
	}
	if rs.doomed {
		b.maybeFree(rs)
	}
	return del, delivered
}

// Delivered reports whether an instance has delivered, and its value. A
// round freed by ReleaseRound reports false.
func (b *Broadcaster) Delivered(key Instance) (float64, bool) {
	if key.Round == 0 || (b.maxRound > 0 && key.Round > b.maxRound) {
		return 0, false
	}
	var rs *roundState
	if b.byRound != nil {
		rs = b.byRound[key.Round]
	} else {
		rs = b.rounds[key.Round]
	}
	if rs == nil || rs.inst == nil || int(key.Origin) >= b.n {
		return 0, false
	}
	st := &rs.inst[key.Origin]
	if !st.delivered {
		return 0, false
	}
	return st.deliveredAs, true
}

// Instances reports how many instances hold live state (for memory tests).
// Released rounds contribute zero.
func (b *Broadcaster) Instances() int {
	total := 0
	if b.byRound != nil {
		for _, rs := range b.byRound {
			if rs != nil {
				total += rs.active
			}
		}
		return total
	}
	for _, rs := range b.rounds {
		total += rs.active
	}
	return total
}
