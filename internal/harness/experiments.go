package harness

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/multiset"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Experiment is a named driver that produces one reproduction table.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*trace.Table, error)
}

// Experiments returns every experiment in DESIGN.md order. Seeds is the
// number of seeds per configuration (the benchmark suite uses a smaller
// count than cmd/aabench).
func Experiments(seeds int) []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Resilience thresholds", Run: func() (*trace.Table, error) { return E1Resilience(seeds) }},
		{ID: "E2", Title: "Per-round convergence rate", Run: func() (*trace.Table, error) { return E2Convergence(seeds) }},
		{ID: "E3", Title: "Round complexity vs initial spread", Run: func() (*trace.Table, error) { return E3Rounds() }},
		{ID: "E4", Title: "Message and bit complexity", Run: func() (*trace.Table, error) { return E4Messages() }},
		{ID: "E5", Title: "Diameter trajectories under attack", Run: func() (*trace.Table, error) { return E5Trajectories() }},
		{ID: "E6", Title: "Scaling with n", Run: func() (*trace.Table, error) { return E6Scaling() }},
		{ID: "E7", Title: "Approximation-function ablation", Run: func() (*trace.Table, error) { return E7Functions(seeds) }},
		{ID: "E8", Title: "Adaptive vs fixed-range termination", Run: func() (*trace.Table, error) { return E8Adaptive(seeds) }},
		{ID: "E9", Title: "Byzantine strategy effectiveness", Run: func() (*trace.Table, error) { return E9Attacks(seeds) }},
		{ID: "E10", Title: "Coordinate-wise agreement in R^d", Run: E10Vector},
		{ID: "E11", Title: "FIFO vs unordered channels", Run: E11FIFO},
		{ID: "E12", Title: "Large-n scenario sweep", Run: func() (*trace.Table, error) { return E12LargeN() }},
		{ID: "E13", Title: "Lossy-network resilience", Run: E13Resilience},
		{ID: "E14", Title: "Crash-recovery sweep", Run: E14Recovery},
	}
}

// sweepOutcome is the aggregate of one sweep across the scheduler suite and
// seed range: the worst observed final spread and effective contraction,
// and whether every run satisfied all invariants.
type sweepOutcome struct {
	worstSpread   float64
	worstGammaEff float64
	allOK         bool
	firstFailure  string
	runs          int
}

// sweepJob is one sweep, enumerated as engine specs. Experiments build one
// job per table configuration and submit every job's specs to the engine as
// a single batch (runSweeps), so the whole table fans out across workers.
type sweepJob struct {
	rounds int
	specs  []Spec
	labels []string // "<scheduler>/seed<k>", for failure attribution
}

// newSweepJob enumerates the (scenario, seed) grid for one configuration:
// the standard six-scheduler suite, each carrying the given fault
// composition (scenario registry keys; empty means fault-free).
func newSweepJob(p core.Params, inputs []float64, seeds int, faultKeys ...string) (*sweepJob, error) {
	rounds, err := p.FixedRounds()
	if err != nil {
		return nil, err
	}
	j := &sweepJob{rounds: rounds}
	for _, scen := range scenario.Suite(p.N, p.T, faultKeys...) {
		if p.Protocol == core.ProtoSync && scen.Sched != "sync" {
			continue // the baseline is only defined under synchrony
		}
		for seed := int64(0); seed < int64(seeds); seed++ {
			spec, err := SpecFrom(p, inputs, scen, seed*7919+1)
			if err != nil {
				return nil, err
			}
			j.specs = append(j.specs, spec)
			j.labels = append(j.labels, fmt.Sprintf("%s/seed%d", scen.Sched, seed))
		}
	}
	return j, nil
}

// aggregate folds the job's reports, in spec order, into the outcome. Index
// order matters only for firstFailure; the numeric aggregates are maxima
// and therefore order-independent.
func (j *sweepJob) aggregate(reps []*Report) sweepOutcome {
	out := sweepOutcome{allOK: true}
	for i, rep := range reps {
		out.runs++
		if rep.FinalSpread > out.worstSpread {
			out.worstSpread = rep.FinalSpread
		}
		if g := gammaEff(rep, j.rounds); g > out.worstGammaEff {
			out.worstGammaEff = g
		}
		if !rep.OK() && out.allOK {
			out.allOK = false
			out.firstFailure = fmt.Sprintf("%s: %s", j.labels[i], rep.Failure())
		}
	}
	return out
}

// runSweeps flattens the jobs into one engine batch and hands each job its
// slice of the ordered reports.
func runSweeps(jobs []*sweepJob) ([]sweepOutcome, error) {
	var all []Spec
	var labels []string
	for _, j := range jobs {
		all = append(all, j.specs...)
		labels = append(labels, j.labels...)
	}
	reps, err := RunAllLabeled(all, func(i int) string { return "sweep " + labels[i] })
	if err != nil {
		return nil, err
	}
	outs := make([]sweepOutcome, len(jobs))
	off := 0
	for i, j := range jobs {
		outs[i] = j.aggregate(reps[off : off+len(j.specs)])
		off += len(j.specs)
	}
	return outs, nil
}

// sweep runs a single configuration's sweep through the engine.
func sweep(p core.Params, inputs []float64, seeds int, faultKeys ...string) (sweepOutcome, error) {
	job, err := newSweepJob(p, inputs, seeds, faultKeys...)
	if err != nil {
		return sweepOutcome{}, err
	}
	outs, err := runSweeps([]*sweepJob{job})
	if err != nil {
		return sweepOutcome{}, err
	}
	return outs[0], nil
}

// gammaEff computes the effective per-round contraction of a finished run.
func gammaEff(rep *Report, rounds int) float64 {
	if rounds == 0 || rep.InitialSpread == 0 || rep.FinalSpread == 0 {
		return 0
	}
	return math.Pow(rep.FinalSpread/rep.InitialSpread, 1/float64(rounds))
}

// stdScenario returns the scenario used when an experiment needs a single
// deterministic adversarial schedule, optionally with faults.
func stdScenario(n, t int, faultKeys ...string) scenario.Spec {
	return scenario.Spec{Sched: "splitviews", Faults: faultKeys, N: n, T: t}
}

// stdSchedule is stdScenario's resolved scheduler, for tests and non-Spec
// drivers that assemble sim configurations directly.
func stdSchedule(n int) sched.Named {
	res, err := stdScenario(n, 0).Resolve()
	if err != nil {
		panic(err)
	}
	return res.Scheduler
}

// --- E1: resilience thresholds ---

// E1Resilience demonstrates each protocol at its fault bound and the loss of
// liveness or safety one fault past it (the protocol is configured for its
// bound t, and the adversary injects t+1 faults).
func E1Resilience(seeds int) (*trace.Table, error) {
	tbl := trace.NewTable("E1: resilience thresholds (protocol at bound t, then overloaded with t+1 faults)",
		"protocol", "n", "t", "faults", "bound", "live", "valid", "eps-agreed", "note")
	type cfg struct {
		proto  core.Protocol
		n, t   int
		isCash bool
	}
	cases := []cfg{
		{core.ProtoCrash, 9, 4, true},
		{core.ProtoByzTrim, 15, 2, false},
		{core.ProtoWitness, 10, 3, false},
	}
	// Enumerate everything up front — the at-bound sweeps as one engine
	// batch, the overload demonstrations (which may legitimately fail at
	// spec level) as a second.
	jobs := make([]*sweepJob, len(cases))
	overloads := make([]Spec, 0, len(cases)+1)
	params := make([]core.Params, len(cases))
	for i, c := range cases {
		p := core.Params{Protocol: c.proto, N: c.n, T: c.t, Eps: 1e-3, Lo: 0, Hi: 100}
		params[i] = p
		inputs := BimodalInputs(c.n, 0, 100)
		faultKey := "equivocate"
		if c.isCash {
			faultKey = "crash"
		}
		job, err := newSweepJob(p, inputs, seeds, faultKey)
		if err != nil {
			return nil, err
		}
		jobs[i] = job
		over, err := overloadSpec(p, inputs, c.isCash)
		if err != nil {
			return nil, err
		}
		overloads = append(overloads, over)
	}
	// The trim protocol at the classical n = 5t+1 resilience: the
	// equivocation attack parks the two halves of the network on different
	// trimmed medians and the diameter never contracts. This run is why
	// ProtoByzTrim claims n >= 7t+1 and why the witness technique exists.
	p5 := core.Params{Protocol: core.ProtoByzTrim, N: 11, T: 2, Eps: 1e-3, Lo: 0, Hi: 100,
		AllowBelowBound: true}
	under, err := uncheckedSpec(p5, BimodalInputs(11, 0, 100),
		stdScenario(11, 2, "equivocate"), 99)
	if err != nil {
		return nil, err
	}
	overloads = append(overloads, under)

	outs, err := runSweeps(jobs)
	if err != nil {
		return nil, err
	}
	overloadOuts := runAllOutcomes(overloads)

	for i, c := range cases {
		p, out := params[i], outs[i]
		tbl.AddRow(p.Protocol.String(), trace.I(c.n), trace.I(c.t), trace.I(c.t),
			trace.Sprintf("t<=%d", (c.n-1)/faultDivisor(c.proto)), trace.B(out.allOK),
			trace.B(out.allOK), trace.B(out.allOK), "at bound: all invariants hold")

		// One past the bound.
		live, valid, agreed, note := overloadVerdict(overloadOuts[i])
		tbl.AddRow(p.Protocol.String(), trace.I(c.n), trace.I(c.t), trace.I(c.t+1),
			"exceeded", trace.B(live), trace.B(valid), trace.B(agreed), note)
	}
	o5 := overloadOuts[len(cases)]
	if o5.err != nil {
		return nil, o5.err
	}
	tbl.AddRow(p5.Protocol.String()+"@5t+1", "11", "2", "2", "below proven bound",
		trace.B(o5.rep.RunErr == nil), trace.B(o5.rep.ValidityOK), trace.B(o5.rep.AgreementOK),
		"equivocation stalls contraction at classical resilience")
	return tbl, nil
}

func faultDivisor(p core.Protocol) int {
	switch p {
	case core.ProtoCrash:
		return 2
	case core.ProtoByzTrim:
		return 7
	default:
		return 3
	}
}

// overloadSpec builds the spec that injects t+1 faults against a protocol
// configured for t: the standard scenario with one extra fault slot.
func overloadSpec(p core.Params, inputs []float64, crash bool) (Spec, error) {
	faultKey := "equivocate"
	if crash {
		faultKey = "crashinit"
	}
	return uncheckedSpec(p, inputs, stdScenario(p.N, p.T+1, faultKey), 99)
}

// overloadVerdict reports which property an overload run broke.
func overloadVerdict(o runOutcome) (live, valid, agreed bool, note string) {
	if o.err != nil {
		return false, false, false, o.err.Error()
	}
	rep := o.rep
	live = rep.RunErr == nil
	valid = rep.ValidityOK
	agreed = rep.AgreementOK
	switch {
	case !live:
		note = "liveness lost (quorum unreachable)"
	case !valid:
		note = "validity violated"
	case !agreed:
		note = "agreement violated"
	default:
		note = "survived this adversary (bound is worst-case)"
	}
	return live, valid, agreed, note
}

// uncheckedSpec builds a spec bypassing the fault-count guard (used only by
// the overload demonstrations of E1, whose scenarios deliberately assign
// more fault slots than the protocol's bound).
func uncheckedSpec(p core.Params, inputs []float64, scen scenario.Spec, seed int64) (Spec, error) {
	spec, err := SpecFrom(p, inputs, scen, seed)
	if err != nil {
		return Spec{}, err
	}
	spec.MaxEvents = 2_000_000
	spec.allowOverfault = true
	return spec, nil
}

// --- E2: convergence rate ---

// E2Convergence reports, per protocol and (n,t), the provable contraction
// bound, the single-round adversarial-search contraction (multiset layer),
// and the worst end-to-end effective rate across the scheduler and fault
// suite.
func E2Convergence(seeds int) (*trace.Table, error) {
	tbl := trace.NewTable("E2: per-round convergence rate gamma (lower is faster; budget is what the round count assumes)",
		"protocol", "n", "t", "bound", "search-1round", "measured-e2e", "all-ok")
	type cfg struct {
		proto core.Protocol
		n, t  int
		bound string
	}
	cases := []cfg{
		{core.ProtoCrash, 5, 2, "0.5 (proven)"},
		{core.ProtoCrash, 9, 4, "0.5 (proven)"},
		{core.ProtoCrash, 13, 6, "0.5 (proven)"},
		{core.ProtoByzTrim, 8, 1, "0.5 (proven)"},
		{core.ProtoByzTrim, 15, 2, "0.5 (proven)"},
		{core.ProtoByzTrim, 22, 3, "0.5 (proven)"},
		{core.ProtoWitness, 4, 1, "0.5 (proven)"},
		{core.ProtoWitness, 7, 2, "0.5 (proven)"},
		{core.ProtoWitness, 10, 3, "0.5 (proven)"},
	}
	jobs := make([]*sweepJob, len(cases))
	params := make([]core.Params, len(cases))
	for i, c := range cases {
		p := core.Params{Protocol: c.proto, N: c.n, T: c.t, Eps: 1e-4, Lo: 0, Hi: 1}
		params[i] = p
		inputs := BimodalInputs(c.n, 0, 1)
		faultKey := "equivocate"
		if c.proto == core.ProtoCrash {
			faultKey = "crash"
		}
		job, err := newSweepJob(p, inputs, seeds, faultKey)
		if err != nil {
			return nil, err
		}
		jobs[i] = job
	}
	outs, err := runSweeps(jobs)
	if err != nil {
		return nil, err
	}
	// The single-round adversarial searches are engine work too: one per
	// non-witness case, fanned across the workers.
	searches, err := mapOrdered(len(cases), func(i int) (string, error) {
		c := cases[i]
		if c.proto == core.ProtoWitness {
			return "-", nil
		}
		repSearch, err := multiset.WorstContraction(params[i].DefaultFunc(),
			multiset.ViewModel{N: c.n, T: c.t, Byzantine: c.proto == core.ProtoByzTrim},
			4000, 11)
		if err != nil {
			return "", err
		}
		return trace.F(repSearch.Gamma), nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cases {
		tbl.AddRow(params[i].Protocol.String(), trace.I(c.n), trace.I(c.t), c.bound,
			searches[i], trace.F(outs[i].worstGammaEff), trace.B(outs[i].allOK))
	}
	return tbl, nil
}

// --- E3: round complexity vs spread ---

// E3Rounds shows the logarithmic dependence of the round count on the
// initial spread, and the measured asynchronous rounds of real executions.
func E3Rounds() (*trace.Table, error) {
	tbl := trace.NewTable("E3: rounds to eps-agreement vs initial spread (crash-aa, n=10 t=4, eps=1e-3)",
		"spread", "log2(S/eps)", "budget-R", "measured-rounds", "final-spread", "ok")
	spreads := []float64{1e1, 1e2, 1e3, 1e4, 1e5, 1e6}
	specs := make([]Spec, 0, len(spreads))
	budgets := make([]int, 0, len(spreads))
	// Lock-step delay 5 with the standard staggered crash schedule, as a
	// scenario: the scheduler argument carries the one non-suite knob.
	scen := scenario.MustParse("sync:5+crash/n=10,t=4")
	for _, s := range spreads {
		p := core.Params{Protocol: core.ProtoCrash, N: 10, T: 4, Eps: 1e-3, Lo: 0, Hi: s}
		budget, err := p.FixedRounds()
		if err != nil {
			return nil, err
		}
		budgets = append(budgets, budget)
		spec, err := SpecFrom(p, BimodalInputs(10, 0, s), scen, 3)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	reps, err := RunAll(specs)
	if err != nil {
		return nil, err
	}
	for i, s := range spreads {
		rep := reps[i]
		tbl.AddRow(trace.F(s), trace.F(math.Log2(s/specs[i].Params.Eps)), trace.I(budgets[i]),
			trace.F(rep.Result.Rounds()), trace.F(rep.FinalSpread), trace.B(rep.OK()))
	}
	return tbl, nil
}

// --- E4: message and bit complexity ---

// E4Case is one protocol's size sweep in the message-complexity table.
type E4Case struct {
	Proto core.Protocol
	Sizes []int
}

// E4Messages measures total and per-round message/byte counts, and
// normalizes by n² to expose the quadratic (crash, trim) versus cubic
// (witness) scaling.
func E4Messages() (*trace.Table, error) {
	return E4MessagesFor([]E4Case{
		{core.ProtoCrash, []int{5, 9, 17, 33}},
		{core.ProtoByzTrim, []int{8, 15, 29, 43}},
		{core.ProtoWitness, []int{4, 7, 13, 25}},
	})
}

// E4MessagesFor is E4Messages restricted to the given protocol sweeps; the
// witness determinism test uses it to pin the cubic-message protocol's
// table at several engine parallelism levels.
func E4MessagesFor(cases []E4Case) (*trace.Table, error) {
	tbl := trace.NewTable("E4: message and bit complexity (bimodal inputs over [0,1], eps=1e-3, splitviews scheduler)",
		"protocol", "n", "t", "R", "msgs", "msgs/round", "msgs/round/n^2", "bytes", "ok")
	var specs []Spec
	var rounds []int
	for _, c := range cases {
		for _, n := range c.Sizes {
			t := maxT(c.Proto, n)
			p := core.Params{Protocol: c.Proto, N: n, T: t, Eps: 1e-3, Lo: 0, Hi: 1}
			r, err := p.FixedRounds()
			if err != nil {
				return nil, err
			}
			rounds = append(rounds, r)
			spec, err := SpecFrom(p, BimodalInputs(n, 0, 1), stdScenario(n, t), 5)
			if err != nil {
				return nil, err
			}
			specs = append(specs, spec)
		}
	}
	reps, err := RunAll(specs)
	if err != nil {
		return nil, err
	}
	for i, spec := range specs {
		p, rep, r := spec.Params, reps[i], rounds[i]
		msgs := rep.Result.Stats.MessagesSent
		perRound := float64(msgs) / float64(r)
		tbl.AddRow(p.Protocol.String(), trace.I(p.N), trace.I(p.T), trace.I(r),
			trace.I(msgs), trace.F(perRound), trace.F(perRound/float64(p.N*p.N)),
			trace.I(rep.Result.Stats.BytesSent), trace.B(rep.OK()))
	}
	return tbl, nil
}

// maxT returns the largest fault bound a protocol supports at a given n.
func maxT(p core.Protocol, n int) int {
	switch p {
	case core.ProtoCrash:
		return (n - 1) / 2
	case core.ProtoByzTrim:
		return (n - 1) / 7
	default:
		return (n - 1) / 3
	}
}

// --- E5: trajectories ---

// E5Trajectories samples the honest diameter at round boundaries under each
// Byzantine behavior. It uses the trim protocol, whose views stay maximally
// divergent under the split-views scheduler, so the geometric halving is
// visible round by round (the witness protocol's views are near-identical
// once its reports align, so it collapses in about one round — E2 covers
// it).
func E5Trajectories() (*trace.Table, error) {
	n, t := 15, 2
	p := core.Params{Protocol: core.ProtoByzTrim, N: n, T: t, Eps: 1e-3, Lo: 0, Hi: 1}
	rounds, err := p.FixedRounds()
	if err != nil {
		return nil, err
	}
	behaviors := scenario.ByzSuite()
	cols := []string{"round"}
	cols = append(cols, behaviors...)
	tbl := trace.NewTable("E5: honest diameter by round under each Byzantine behavior (byztrim-aa, n=15 t=2, splitviews scheduler)", cols...)
	specs := make([]Spec, len(behaviors))
	for i, b := range behaviors {
		spec, err := SpecFrom(p, BimodalInputs(n, 0, 1), stdScenario(n, t, b), 9)
		if err != nil {
			return nil, err
		}
		spec.RecordTrajectory = true
		specs[i] = spec
	}
	reps, err := RunAllLabeled(specs, func(i int) string { return "E5 " + behaviors[i] })
	if err != nil {
		return nil, err
	}
	series := make([][]float64, len(behaviors))
	for i, b := range behaviors {
		if !reps[i].OK() {
			return nil, fmt.Errorf("E5 %s: %s", b, reps[i].Failure())
		}
		series[i] = sampleTrajectory(reps[i], rounds)
	}
	for r := 0; r <= rounds; r++ {
		row := []string{trace.I(r)}
		for i := range behaviors {
			row = append(row, trace.F(series[i][r]))
		}
		tbl.AddRow(row...)
	}
	// Figure form: each column as a decay sparkline.
	figure := []string{"figure"}
	for i := range behaviors {
		figure = append(figure, trace.Sparkline(series[i]))
	}
	tbl.AddRow(figure...)
	return tbl, nil
}

// sampleTrajectory resamples a trajectory at uniform round marks using the
// run's measured max honest delay as the round unit.
func sampleTrajectory(rep *Report, rounds int) []float64 {
	out := make([]float64, rounds+1)
	delta := rep.Result.MaxHonestDelay
	if delta == 0 {
		delta = 1
	}
	// The witness protocol needs several delays per protocol round (RBC is
	// multi-phase); scale time so the final sample lands on the last round.
	total := rep.Result.FinishTime
	cur := rep.InitialSpread
	j := 0
	for r := 0; r <= rounds; r++ {
		limit := sim.Time(float64(total) * float64(r) / float64(rounds))
		for j < len(rep.Trajectory) && rep.Trajectory[j].Time <= limit {
			cur = rep.Trajectory[j].Diameter
			j++
		}
		out[r] = cur
	}
	return out
}

// --- E6: scaling ---

// E6Scaling sweeps n at the maximum witness fault ratio and reports
// virtual-time, message, and byte scaling for all three protocols.
func E6Scaling() (*trace.Table, error) {
	return E6ScalingSizes([]int{8, 16, 32, 64})
}

// E6ScalingSizes is E6Scaling with a custom size sweep (the benchmark suite
// uses smaller sizes to keep iteration time sane).
func E6ScalingSizes(sizes []int) (*trace.Table, error) {
	return E6ScalingFor([]core.Protocol{core.ProtoCrash, core.ProtoByzTrim, core.ProtoWitness}, sizes)
}

// E6ScalingFor is the scaling sweep restricted to the given protocols and
// sizes; the witness determinism test pins the witness rows on their own.
func E6ScalingFor(protos []core.Protocol, sizes []int) (*trace.Table, error) {
	tbl := trace.NewTable("E6: scaling with n (eps=1e-3, inputs linear over [0,1], random scheduler)",
		"protocol", "n", "t", "virt-rounds", "msgs", "bytes", "deliveries", "ok")
	var specs []Spec
	for _, proto := range protos {
		for _, n := range sizes {
			t := maxT(proto, n)
			p := core.Params{Protocol: proto, N: n, T: t, Eps: 1e-3, Lo: 0, Hi: 1}
			spec, err := SpecFrom(p, LinearInputs(n, 0, 1), scenario.Spec{Sched: "random", N: n, T: t}, 13)
			if err != nil {
				return nil, err
			}
			spec.MaxEvents = 20_000_000
			specs = append(specs, spec)
		}
	}
	reps, err := RunAll(specs)
	if err != nil {
		return nil, err
	}
	for i, spec := range specs {
		p, rep := spec.Params, reps[i]
		tbl.AddRow(p.Protocol.String(), trace.I(p.N), trace.I(p.T),
			trace.F(rep.Result.Rounds()), trace.I(rep.Result.Stats.MessagesSent),
			trace.I(rep.Result.Stats.BytesSent), trace.I(rep.Result.Stats.MessagesDelivered),
			trace.B(rep.OK()))
	}
	return tbl, nil
}

// --- E7: approximation-function ablation ---

// E7Functions compares approximation functions in the crash protocol: the
// single-round adversarial-search contraction and whether end-to-end runs
// meet the eps deadline within the default (halving) round budget.
func E7Functions(seeds int) (*trace.Table, error) {
	n, t := 10, 4
	tbl := trace.NewTable("E7: approximation-function ablation (crash-aa, n=10 t=4, round budget assumes gamma=0.5)",
		"function", "search-1round", "measured-e2e", "eps-met", "note")
	funcs := []struct {
		fn   multiset.Func
		note string
	}{
		{multiset.MidExtremes{}, "default; provable halving"},
		{multiset.MidExtremes{Trim: 2}, "trimmed midpoint"},
		{multiset.TrimmedMean{Trim: 0}, "plain mean of quorum"},
		{multiset.TrimmedMean{Trim: 2}, "mean of 2-trimmed quorum"},
		{multiset.Median{}, "no contraction guarantee"},
		{multiset.SelectDouble{Trim: 1, K: 2}, "DLPSW select family"},
	}
	jobs := make([]*sweepJob, len(funcs))
	for i, fc := range funcs {
		p := core.Params{Protocol: core.ProtoCrash, N: n, T: t, Eps: 1e-3, Lo: 0, Hi: 1,
			Func: fc.fn, Gamma: 0.5}
		job, err := newSweepJob(p, BimodalInputs(n, 0, 1), seeds, "crash")
		if err != nil {
			return nil, err
		}
		jobs[i] = job
	}
	outs, err := runSweeps(jobs)
	if err != nil {
		return nil, err
	}
	searches, err := mapOrdered(len(funcs), func(i int) (multiset.ContractionReport, error) {
		return multiset.WorstContraction(funcs[i].fn, multiset.ViewModel{N: n, T: t}, 4000, 11)
	})
	if err != nil {
		return nil, err
	}
	for i, fc := range funcs {
		tbl.AddRow(fc.fn.Name(), trace.F(searches[i].Gamma), trace.F(outs[i].worstGammaEff),
			trace.B(outs[i].allOK), fc.note)
	}
	return tbl, nil
}

// --- E8: adaptive vs fixed termination ---

// E8Adaptive compares fixed-range and adaptive termination on a workload
// whose true spread (10) is far below the promised range (1e6): adaptive
// mode should finish in a fraction of the rounds. It also stresses adaptive
// mode with crash-truncated multicasts and skewed scheduling, where its
// guarantee is only conditional.
func E8Adaptive(seeds int) (*trace.Table, error) {
	n, t := 10, 4
	tbl := trace.NewTable("E8: adaptive vs fixed-range termination (crash-aa, n=10 t=4, eps=1e-3, range [0,1e6], true spread 10)",
		"mode", "scheduler", "rounds", "msgs", "final-spread", "eps-met")
	inputs := LinearInputs(n, 0, 10)
	// Enumerate the full (mode, scheduler, seed) grid; each (mode,
	// scheduler) group is a contiguous block of `seeds` specs, so the
	// aggregation below walks the ordered reports block by block.
	type group struct {
		mode string
		sc   string
	}
	var specs []Spec
	var groups []group
	for _, adaptive := range []bool{false, true} {
		for _, scen := range scenario.Suite(n, t, "crash") {
			mode := "fixed"
			if adaptive {
				mode = "adaptive"
			}
			groups = append(groups, group{mode: mode, sc: scen.Sched})
			for seed := int64(0); seed < int64(seeds); seed++ {
				p := core.Params{Protocol: core.ProtoCrash, N: n, T: t, Eps: 1e-3,
					Lo: 0, Hi: 1e6, Adaptive: adaptive}
				spec, err := SpecFrom(p, inputs, scen, seed*104729+7)
				if err != nil {
					return nil, err
				}
				specs = append(specs, spec)
			}
		}
	}
	reps, err := RunAll(specs)
	if err != nil {
		return nil, err
	}
	for gi, g := range groups {
		worstRounds, worstMsgs, worstSpread := 0.0, 0, 0.0
		ok := true
		for _, rep := range reps[gi*seeds : (gi+1)*seeds] {
			worstRounds = math.Max(worstRounds, rep.Result.Rounds())
			if rep.Result.Stats.MessagesSent > worstMsgs {
				worstMsgs = rep.Result.Stats.MessagesSent
			}
			worstSpread = math.Max(worstSpread, rep.FinalSpread)
			ok = ok && rep.OK()
		}
		tbl.AddRow(g.mode, g.sc, trace.F(worstRounds), trace.I(worstMsgs),
			trace.F(worstSpread), trace.B(ok))
	}
	return tbl, nil
}

// --- E9: attack effectiveness ---

// E9Attacks measures what each Byzantine behavior costs the two Byzantine
// protocols: the worst final spread and whether all invariants held.
func E9Attacks(seeds int) (*trace.Table, error) {
	tbl := trace.NewTable("E9: Byzantine strategy effectiveness (bimodal inputs over [0,1], eps=1e-3)",
		"behavior", "protocol", "n", "t", "worst-final-spread", "all-ok", "first-failure")
	cases := []struct {
		proto core.Protocol
		n, t  int
	}{
		{core.ProtoByzTrim, 15, 2},
		{core.ProtoWitness, 10, 3},
	}
	type rowMeta struct {
		behavior string
		proto    core.Protocol
		n, t     int
	}
	var jobs []*sweepJob
	var metas []rowMeta
	for _, b := range scenario.ByzSuite() {
		for _, c := range cases {
			p := core.Params{Protocol: c.proto, N: c.n, T: c.t, Eps: 1e-3, Lo: 0, Hi: 1}
			job, err := newSweepJob(p, BimodalInputs(c.n, 0, 1), seeds, b)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, job)
			metas = append(metas, rowMeta{behavior: b, proto: c.proto, n: c.n, t: c.t})
		}
	}
	outs, err := runSweeps(jobs)
	if err != nil {
		return nil, err
	}
	for i, meta := range metas {
		out := outs[i]
		fail := "-"
		if !out.allOK {
			fail = out.firstFailure
		}
		tbl.AddRow(meta.behavior, meta.proto.String(), trace.I(meta.n), trace.I(meta.t),
			trace.F(out.worstSpread), trace.B(out.allOK), fail)
	}
	return tbl, nil
}
