package harness

import (
	"strings"
	"testing"
)

// TestExperimentsRun executes every experiment driver end to end with a
// small seed count and sanity-checks the tables they produce.
func TestExperimentsRun(t *testing.T) {
	for _, exp := range Experiments(1) {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			tbl, err := exp.Run()
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: empty table", exp.ID)
			}
			var sb strings.Builder
			if err := tbl.Render(&sb); err != nil {
				t.Fatalf("%s: render: %v", exp.ID, err)
			}
			t.Logf("\n%s", sb.String())
		})
	}
}
