package harness

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FuzzResult summarizes a randomized adversarial search.
type FuzzResult struct {
	// Trials is the number of executions performed.
	Trials int
	// Violations describes every invariant violation found (empty on a
	// healthy protocol suite).
	Violations []string
	// ByProtocol counts trials per protocol.
	ByProtocol map[string]int
	// Rounds and Messages summarize the per-trial execution costs.
	Rounds, Messages trace.Summary
}

// Fuzz runs `trials` randomized executions: random protocol, random legal
// (n, t), random scheduler parameters, random crash timings and Byzantine
// behavior assignments, random input shapes — asserting the liveness,
// validity, and ε-agreement invariants on each. It is the search a
// reviewer would run overnight; the unit suite runs a small budget.
//
// Adaptive-mode ε-agreement is conditional by design (DESIGN.md), so
// adaptive trials assert only liveness and validity.
func Fuzz(trials int, seed int64) (*FuzzResult, error) {
	rng := rand.New(rand.NewSource(seed))
	res := &FuzzResult{ByProtocol: map[string]int{}}
	var rounds, messages []float64
	for i := 0; i < trials; i++ {
		spec, adaptive, desc := randomSpec(rng)
		rep, err := Run(spec)
		if err != nil {
			return res, fmt.Errorf("fuzz trial %d (%s): %w", i, desc, err)
		}
		res.Trials++
		res.ByProtocol[spec.Params.Protocol.String()]++
		rounds = append(rounds, rep.Result.Rounds())
		messages = append(messages, float64(rep.Result.Stats.MessagesSent))
		bad := false
		if rep.RunErr != nil || len(rep.ProtoErrs) > 0 || !rep.ValidityOK {
			bad = true
		}
		if !adaptive && !rep.AgreementOK {
			bad = true
		}
		if bad {
			res.Violations = append(res.Violations,
				fmt.Sprintf("trial %d: %s: %s", i, desc, rep.Failure()))
		}
	}
	res.Rounds = trace.Summarize(rounds)
	res.Messages = trace.Summarize(messages)
	return res, nil
}

// randomSpec draws one legal adversarial configuration.
func randomSpec(rng *rand.Rand) (Spec, bool, string) {
	protos := []core.Protocol{core.ProtoCrash, core.ProtoCrash, core.ProtoByzTrim, core.ProtoWitness}
	proto := protos[rng.Intn(len(protos))]
	var n, t int
	switch proto {
	case core.ProtoCrash:
		t = 1 + rng.Intn(4)
		n = 2*t + 1 + rng.Intn(4)
	case core.ProtoByzTrim:
		t = 1 + rng.Intn(2)
		n = 7*t + 1 + rng.Intn(3)
	default:
		t = 1 + rng.Intn(3)
		n = 3*t + 1 + rng.Intn(3)
	}
	adaptive := proto == core.ProtoCrash && rng.Intn(4) == 0
	lo := -100 + 200*rng.Float64()
	hi := lo + 200*rng.Float64() + 1e-6
	p := core.Params{
		Protocol: proto,
		N:        n,
		T:        t,
		Eps:      []float64{1e-1, 1e-2, 1e-3}[rng.Intn(3)],
		Lo:       lo,
		Hi:       hi,
		Adaptive: adaptive,
	}

	var inputs []float64
	inputKind := rng.Intn(4)
	switch inputKind {
	case 0:
		inputs = LinearInputs(n, lo, hi)
	case 1:
		inputs = BimodalInputs(n, lo, hi)
	case 2:
		inputs = OutlierInputs(n, lo, hi)
	default:
		inputs = UniformInputs(n, lo, hi, rng.Int63())
	}

	scheds := sched.Suite(n, t)
	scheds = append(scheds, sched.Named{
		Name:      "heavytail",
		Scheduler: &sched.HeavyTail{Base: 1, Alpha: 1.2 + rng.Float64(), Cap: 400},
	})
	sc := scheds[rng.Intn(len(scheds))]

	spec := Spec{
		Params:    p,
		Inputs:    inputs,
		Scheduler: sc,
		Seed:      rng.Int63(),
	}
	var faults []string
	budget := rng.Intn(t + 1)
	if proto == core.ProtoCrash {
		for i := 0; i < budget; i++ {
			after := rng.Intn(4 * n * 3)
			spec.Crashes = append(spec.Crashes, sim.CrashPlan{
				Party:      sim.PartyID(i),
				AfterSends: after,
			})
			faults = append(faults, fmt.Sprintf("crash%d@%d", i, after))
		}
	} else {
		suite := fault.Suite(lo, hi)
		for i := 0; i < budget; i++ {
			b := suite[rng.Intn(len(suite))]
			if spec.Byz == nil {
				spec.Byz = map[sim.PartyID]fault.Behavior{}
			}
			spec.Byz[sim.PartyID(i)] = b
			faults = append(faults, fmt.Sprintf("byz%d:%s", i, b.Name()))
		}
	}
	desc := fmt.Sprintf("%s n=%d t=%d eps=%g adaptive=%v sched=%s inputs=%d faults=[%s] seed=%d",
		p.Protocol, n, t, p.Eps, adaptive, sc.Name, inputKind, strings.Join(faults, ","), spec.Seed)
	return spec, adaptive, desc
}
