package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FuzzByz is one Byzantine assignment in a FuzzViolation, by scenario
// registry behavior name.
type FuzzByz struct {
	Party sim.PartyID
	Name  string
}

// FuzzViolation is the structured record of one failed trial: everything
// needed to rebuild the execution (cmd/aafuzz turns these into incident
// bundles, the repro artifacts). Either Scenario is a full scenario string
// (scenario-layer trials), or SchedToken names the scheduler and
// Crashes/Byz carry the explicit fault assignments (protocol-fuzzer trials,
// whose random crash timings are not expressible as registry fault kinds).
// Both forms are faithful: the fuzzer draws schedulers from sched.Suite,
// whose parameterizations are the scenario registry defaults, and heavytail
// trials carry their alpha in the token ("heavytail:<alpha>").
type FuzzViolation struct {
	Trial      int
	Desc       string
	Failure    string
	Proto      core.Protocol
	N, T       int
	Eps        float64
	Lo, Hi     float64
	Adaptive   bool
	Reliable   bool
	SchedToken string
	Scenario   string
	Seed       int64
	MaxEvents  int
	Inputs     []float64
	Crashes    []sim.CrashPlan
	Byz        []FuzzByz
}

// FuzzResult summarizes a randomized adversarial search.
type FuzzResult struct {
	// Trials is the number of executions performed.
	Trials int
	// Violations describes every invariant violation found (empty on a
	// healthy protocol suite).
	Violations []string
	// Failures carries the structured form of Violations, index-aligned.
	Failures []FuzzViolation
	// ByProtocol counts trials per protocol.
	ByProtocol map[string]int
	// Rounds and Messages summarize the per-trial execution costs.
	Rounds, Messages trace.Summary
}

// Fuzz runs `trials` randomized executions: random protocol, random legal
// (n, t), random scheduler parameters, random crash timings and Byzantine
// behavior assignments, random input shapes — asserting the liveness,
// validity, and ε-agreement invariants on each. It is the search a
// reviewer would run overnight; the unit suite runs a small budget.
//
// Adaptive-mode ε-agreement is conditional by design (DESIGN.md), so
// adaptive trials assert only liveness and validity.
func Fuzz(trials int, seed int64) (*FuzzResult, error) {
	rng := rand.New(rand.NewSource(seed))
	res := &FuzzResult{ByProtocol: map[string]int{}}
	var rounds, messages []float64
	for i := 0; i < trials; i++ {
		spec, adaptive, desc := randomSpec(rng)
		rep, err := Run(spec)
		if err != nil {
			return res, fmt.Errorf("fuzz trial %d (%s): %w", i, desc, err)
		}
		res.Trials++
		res.ByProtocol[spec.Params.Protocol.String()]++
		rounds = append(rounds, rep.Result.Rounds())
		messages = append(messages, float64(rep.Result.Stats.MessagesSent))
		bad := false
		if rep.RunErr != nil || len(rep.ProtoErrs) > 0 || !rep.ValidityOK {
			bad = true
		}
		if !adaptive && !rep.AgreementOK {
			bad = true
		}
		if bad {
			res.Violations = append(res.Violations,
				fmt.Sprintf("trial %d: %s: %s", i, desc, rep.Failure()))
			res.Failures = append(res.Failures, violationFrom(i, desc, rep, spec))
		}
	}
	res.Rounds = trace.Summarize(rounds)
	res.Messages = trace.Summarize(messages)
	return res, nil
}

// randomSpec draws one legal adversarial configuration.
func randomSpec(rng *rand.Rand) (Spec, bool, string) {
	protos := []core.Protocol{core.ProtoCrash, core.ProtoCrash, core.ProtoByzTrim, core.ProtoWitness}
	proto := protos[rng.Intn(len(protos))]
	var n, t int
	switch proto {
	case core.ProtoCrash:
		t = 1 + rng.Intn(4)
		n = 2*t + 1 + rng.Intn(4)
	case core.ProtoByzTrim:
		t = 1 + rng.Intn(2)
		n = 7*t + 1 + rng.Intn(3)
	default:
		t = 1 + rng.Intn(3)
		n = 3*t + 1 + rng.Intn(3)
	}
	adaptive := proto == core.ProtoCrash && rng.Intn(4) == 0
	lo := -100 + 200*rng.Float64()
	hi := lo + 200*rng.Float64() + 1e-6
	p := core.Params{
		Protocol: proto,
		N:        n,
		T:        t,
		Eps:      []float64{1e-1, 1e-2, 1e-3}[rng.Intn(3)],
		Lo:       lo,
		Hi:       hi,
		Adaptive: adaptive,
	}

	var inputs []float64
	inputKind := rng.Intn(4)
	switch inputKind {
	case 0:
		inputs = LinearInputs(n, lo, hi)
	case 1:
		inputs = BimodalInputs(n, lo, hi)
	case 2:
		inputs = OutlierInputs(n, lo, hi)
	default:
		inputs = UniformInputs(n, lo, hi, rng.Int63())
	}

	scheds := sched.Suite(n, t)
	// The heavytail token carries its alpha ("heavytail:<alpha>") so a
	// violation record resolves through the scenario registry to the same
	// distribution; FormatFloat 'g'/-1 round-trips the float exactly.
	alpha := 1.2 + rng.Float64()
	scheds = append(scheds, sched.Named{
		Name:      "heavytail:" + strconv.FormatFloat(alpha, 'g', -1, 64),
		Scheduler: &sched.HeavyTail{Base: 1, Alpha: alpha, Cap: 400},
	})
	sc := scheds[rng.Intn(len(scheds))]

	spec := Spec{
		Params:    p,
		Inputs:    inputs,
		Scheduler: sc,
		Seed:      rng.Int63(),
	}
	var faults []string
	budget := rng.Intn(t + 1)
	if proto == core.ProtoCrash {
		for i := 0; i < budget; i++ {
			after := rng.Intn(4 * n * 3)
			spec.Crashes = append(spec.Crashes, sim.CrashPlan{
				Party:      sim.PartyID(i),
				AfterSends: after,
			})
			faults = append(faults, fmt.Sprintf("crash%d@%d", i, after))
		}
	} else {
		suite := fault.Suite(lo, hi)
		for i := 0; i < budget; i++ {
			b := suite[rng.Intn(len(suite))]
			if spec.Byz == nil {
				spec.Byz = map[sim.PartyID]fault.Behavior{}
			}
			spec.Byz[sim.PartyID(i)] = b
			faults = append(faults, fmt.Sprintf("byz%d:%s", i, b.Name()))
		}
	}
	desc := fmt.Sprintf("%s n=%d t=%d eps=%g adaptive=%v sched=%s inputs=%d faults=[%s] seed=%d",
		p.Protocol, n, t, p.Eps, adaptive, sc.Name, inputKind, strings.Join(faults, ","), spec.Seed)
	return spec, adaptive, desc
}

// violationFrom snapshots a failed trial's full configuration. Byzantine
// behaviors are recorded by name (sorted by party), which resolves back
// through the scenario registry: the fuzzer assigns behaviors from
// fault.Suite, whose instances the registry registers verbatim.
func violationFrom(trial int, desc string, rep *Report, spec Spec) FuzzViolation {
	v := FuzzViolation{
		Trial:      trial,
		Desc:       desc,
		Failure:    rep.Failure(),
		Proto:      spec.Params.Protocol,
		N:          spec.Params.N,
		T:          spec.Params.T,
		Eps:        spec.Params.Eps,
		Lo:         spec.Params.Lo,
		Hi:         spec.Params.Hi,
		Adaptive:   spec.Params.Adaptive,
		Reliable:   spec.Reliable,
		SchedToken: spec.Scheduler.Name,
		Seed:       spec.Seed,
		MaxEvents:  spec.MaxEvents,
		Inputs:     append([]float64(nil), spec.Inputs...),
		Crashes:    append([]sim.CrashPlan(nil), spec.Crashes...),
	}
	for id, b := range spec.Byz {
		v.Byz = append(v.Byz, FuzzByz{Party: id, Name: b.Name()})
	}
	sort.Slice(v.Byz, func(i, j int) bool { return v.Byz[i].Party < v.Byz[j].Party })
	return v
}

// ScenarioFuzzResult summarizes a scenario-layer fuzz campaign: the
// registry contracts (parse → re-parse round-trips, invalid compositions
// rejected at spec time) plus end-to-end runs of randomly composed valid
// scenarios.
type ScenarioFuzzResult struct {
	// Registry carries the pure spec-lifecycle statistics.
	Registry scenario.FuzzStats
	// Runs counts scenarios executed end-to-end; Violations lists every
	// invariant violation (empty on a healthy tree).
	Runs       int
	Violations []string
	// Failures carries the structured form of Violations, index-aligned;
	// each record's Scenario field is the full spec string.
	Failures []FuzzViolation
}

// FuzzScenarios fuzzes the scenario layer. Phase one drives random (often
// invalid) compositions through Parse/String/Validate/Resolve and fails on
// any contract break — this is what guarantees a bad scenario dies at spec
// time, never mid-run. Phase two composes random valid scenarios over the
// full registry, pairs each with a protocol that tolerates its fault mix
// at the fault bound, runs it, and asserts liveness, validity, and
// ε-agreement, exactly like the protocol fuzzer.
func FuzzScenarios(trials int, seed int64) (*ScenarioFuzzResult, error) {
	stats, err := scenario.Fuzz(trials, seed)
	res := &ScenarioFuzzResult{Registry: *stats}
	if err != nil {
		return res, err
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5CE9A410))
	for i := 0; i < trials/4; i++ {
		p, scen, reliable := randomRunnableScenario(rng)
		spec, err := SpecFrom(p, LinearInputs(p.N, p.Lo, p.Hi), scen, rng.Int63())
		if err != nil {
			// A composition that passed scenario.Validate must lower
			// cleanly; anything else is a registry/harness contract break.
			return res, fmt.Errorf("scenario %s failed to lower: %w", scen, err)
		}
		spec.Reliable = reliable
		for _, f := range scen.Faults {
			if scenario.IsNetFault(f) || scenario.IsRestartFault(f) {
				// Lossy and recovery axes trade messages for retransmissions;
				// give the run the same headroom the E13 resilience sweep uses.
				spec.MaxEvents = 20_000_000
				break
			}
		}
		rep, err := Run(spec)
		if err != nil {
			return res, fmt.Errorf("scenario %s failed to run: %w", scen, err)
		}
		res.Runs++
		if !rep.OK() {
			res.Violations = append(res.Violations,
				fmt.Sprintf("scenario %s seed=%d: %s", scen, spec.Seed, rep.Failure()))
			v := violationFrom(i, scen.String(), rep, spec)
			v.Scenario = scen.WithT(p.T).String()
			v.SchedToken = ""
			v.Crashes, v.Byz = nil, nil
			res.Failures = append(res.Failures, v)
		}
	}
	return res, nil
}

// randomRunnableScenario composes a random valid scenario and a protocol
// configured to tolerate its fault mix. The third result reports whether
// the run needs the reliable transport: destructive network axes (loss,
// outage, flap) are only survivable with retransmission, while duplication
// alone is harmless to the crash protocol (receive-side processing is
// idempotent there) and so sometimes runs raw.
func randomRunnableScenario(rng *rand.Rand) (core.Params, scenario.Spec, bool) {
	scheds := scenario.SchedulerNames()
	byz := scenario.ByzSuite()
	crashKinds := []string{"crash", "crashinit"}

	var p core.Params
	var faultPool []string
	switch rng.Intn(3) {
	case 0: // crash protocol: crash kinds only
		t := 1 + rng.Intn(3)
		p = core.Params{Protocol: core.ProtoCrash, N: 2*t + 1 + rng.Intn(3), T: t}
		faultPool = crashKinds
	case 1: // trim protocol: any fault kind
		p = core.Params{Protocol: core.ProtoByzTrim, N: 8 + rng.Intn(3), T: 1}
		faultPool = append(append([]string{}, byz...), crashKinds...)
	default: // witness protocol: any fault kind
		t := 1 + rng.Intn(2)
		p = core.Params{Protocol: core.ProtoWitness, N: 3*t + 1 + rng.Intn(3), T: t}
		faultPool = append(append([]string{}, byz...), crashKinds...)
	}
	p.Eps = []float64{1e-1, 1e-2, 1e-3}[rng.Intn(3)]
	p.Lo, p.Hi = 0, 1

	scen := scenario.Spec{Sched: scheds[rng.Intn(len(scheds))], N: p.N, T: p.T}
	for k := rng.Intn(p.T + 1); k > 0; k-- {
		scen.Faults = append(scen.Faults, faultPool[rng.Intn(len(faultPool))])
	}
	var reliable bool
	if rng.Intn(3) == 0 {
		switch rng.Intn(4) {
		case 0:
			scen.Faults = append(scen.Faults, fmt.Sprintf("loss:0.0%d", 1+rng.Intn(9)))
			reliable = true
		case 1:
			scen.Faults = append(scen.Faults, fmt.Sprintf("dup:0.%d", 1+rng.Intn(3)))
			reliable = p.Protocol != core.ProtoCrash
		case 2:
			scen.Faults = append(scen.Faults,
				fmt.Sprintf("outage:1:%d:%d", 20+rng.Intn(41), 30+rng.Intn(51)))
			reliable = true
		default:
			scen.Faults = append(scen.Faults, fmt.Sprintf("flap:%d", 20+rng.Intn(61)))
			reliable = true
		}
	}
	// Crash-recovery axes occupy no fault slot but do not compose with
	// party faults, so they only enter trials whose fault draw came up
	// empty. The fuzzer keeps to the guaranteed-convergent corner of the
	// axis — lag 0 (the rollback discards nothing) or an amnesiac restart
	// at t=1 (nothing has been delivered yet) — because a rollback with
	// real lag loses traffic the transport has already acked, which only
	// the adaptive DECIDED re-announce recovers (E14 measures that trade
	// deliberately; the fuzzer asserts unconditional convergence). A
	// destructive recovery axis always rides the reliable transport:
	// traffic sent into the darkness window is unrecoverable raw.
	if len(scen.Faults) == 0 && rng.Intn(4) == 0 {
		k := 1 + rng.Intn(p.T)
		if rng.Intn(2) == 0 {
			scen.Faults = append(scen.Faults, fmt.Sprintf("recover:%d:%d:0", k, 20+rng.Intn(180)))
		} else {
			scen.Faults = append(scen.Faults, fmt.Sprintf("amnesia:%d:1", k))
		}
		if rng.Intn(2) == 0 {
			scen.Faults = append(scen.Faults, fmt.Sprintf("loss:0.0%d", 1+rng.Intn(5)))
		}
		reliable = true
	}
	return p, scen, reliable
}
