package harness

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/relnet"
	"repro/internal/sim"
)

// This file is the run-context recycling layer: the structural answer to
// the last allocation cost the hot-path PRs left standing, the per-*run*
// construction of a fresh simulator (calendar wheel, event arena, payload
// blocks), fresh protocol parties, and fresh RBC slabs for every one of
// the hundreds of engine runs behind each experiment table.
//
// A RunContext owns one resettable copy of all of that. Run(spec) resets
// the pieces the spec needs (sim.Network.Reset, the party Resets, and —
// through WitnessAA.Init — rbc.Broadcaster.Reset) and executes; after a
// one-run warm-up of a given shape, a context executes an entire
// scheduler×seed sweep with zero steady-state heap allocations on the
// reused-report path (pinned by TestRunReusedAllocs).
//
// Equivalence argument. A run must remain a pure function of its Spec, so
// Reset must be indistinguishable from fresh construction. Every Reset in
// the stack re-derives all run-visible state from its arguments (reseeded
// rand sources produce identical streams; cleared maps and re-zeroed
// bitsets are observably empty; recycled slabs are re-zeroed before
// reuse) — the same deferred-quiescent style of argument PR 2 used for
// rbc.ReleaseRound. TestRunContextReuseByteIdentical pins it end to end:
// every experiment table renders byte-identically with recycling on and
// off, at engine parallelism 1 and 8.

// noRecycling, when set, makes the package-level Run build a fresh
// RunContext per run instead of drawing from the pool — the
// fresh-construction baseline the equivalence tests compare against.
var noRecycling atomic.Bool

// SetStateRecycling toggles run-context recycling for the package-level
// Run (and therefore RunAll and every experiment driver). It is on by
// default; the byte-identity tests switch it off to regenerate tables with
// per-run fresh construction.
func SetStateRecycling(on bool) { noRecycling.Store(!on) }

// StateRecycling reports whether run-context recycling is enabled.
func StateRecycling() bool { return !noRecycling.Load() }

// ctxPool recycles run contexts across runs and across the engine's worker
// goroutines. sync.Pool's per-P caching gives each pool worker an
// effectively private context without explicit worker slots, and lets the
// GC drop contexts (with their arenas) under memory pressure.
var ctxPool = sync.Pool{New: func() any { return NewRunContext() }}

func acquireContext() *RunContext {
	if noRecycling.Load() {
		return NewRunContext()
	}
	return ctxPool.Get().(*RunContext)
}

func releaseContext(c *RunContext) {
	if !noRecycling.Load() {
		ctxPool.Put(c)
	}
}

// RunContext is a reusable execution context: a resettable simulator, a
// pool of resettable protocol parties per protocol family, and reusable
// report/result/estimator storage. A context is single-threaded; the
// engine recycles one per worker via the package pool. The zero value is
// not ready; use NewRunContext.
type RunContext struct {
	net    *sim.Network
	asyncs []*core.AsyncAA
	wits   []*core.WitnessAA
	syncs  []*core.SyncAA
	// est collects the estimator-capable honest parties of the current
	// run, for trajectory sampling (diameter only — identity irrelevant).
	est []sim.Estimator
	byz map[sim.PartyID]sim.Process
	// rel pools reliable-transport wrappers (Spec.Reliable); relUsed is
	// how many the current run attached, for the post-run stats sweep.
	rel     []*relnet.Proc
	relUsed int

	// Observer state for trajectory/trace runs. obsFn caches the observer
	// closure (one bound-method value per context, not one per run); the
	// remaining fields are the per-run parameters it reads, so a warm
	// trajectory-recording run allocates nothing (TestTrajectoryReusedAllocs).
	obsFn    func(now sim.Time, env sim.Envelope)
	obsTrace func(now sim.Time, env sim.Envelope)
	obsRep   *Report
	obsLast  float64
	obsTraj  bool

	// byzPool recycles Byzantine behavior processes across runs: a run's
	// processes are parked here at the start of the next run, and
	// fault.Renewer behaviors revive a parked process of their type
	// instead of rebuilding it — the same pooling the protocol parties
	// get, which is what pins the warm Byzantine path at zero allocations
	// (TestByzRunReusedAllocs). Pool size is bounded by the largest
	// Byzantine cohort the context has served.
	byzPool []sim.Process

	// rep and res back the reused-report Run path; they are handed to the
	// caller and remain valid until the next Run on this context.
	rep Report
	res sim.Result
}

// NewRunContext builds an empty context. Its pools warm up lazily: the
// first run of a given shape allocates, later same-shape runs do not.
func NewRunContext() *RunContext { return &RunContext{} }

// Run executes a spec on the context and returns the context-owned report,
// which is valid until the next Run call on the same context. This is the
// zero-steady-state-allocation form; callers that retain reports across
// runs (the engine's RunAll) use the package-level Run instead.
func (c *RunContext) Run(spec Spec) (*Report, error) {
	c.rep.Result = &c.res
	if err := c.run(spec, &c.rep); err != nil {
		return nil, err
	}
	return &c.rep, nil
}

// party returns the context's recycled party i for the spec's protocol,
// reset for a new run. Errors are exactly those of the New* constructors.
func (c *RunContext) party(p core.Params, i int, input float64) (sim.Process, error) {
	switch p.Protocol {
	case core.ProtoCrash, core.ProtoByzTrim:
		for len(c.asyncs) <= i {
			c.asyncs = append(c.asyncs, new(core.AsyncAA))
		}
		if err := c.asyncs[i].Reset(p, input); err != nil {
			return nil, err
		}
		return c.asyncs[i], nil
	case core.ProtoWitness:
		for len(c.wits) <= i {
			c.wits = append(c.wits, new(core.WitnessAA))
		}
		if err := c.wits[i].Reset(p, input); err != nil {
			return nil, err
		}
		return c.wits[i], nil
	case core.ProtoSync:
		for len(c.syncs) <= i {
			c.syncs = append(c.syncs, new(core.SyncAA))
		}
		if err := c.syncs[i].Reset(p, input); err != nil {
			return nil, err
		}
		return c.syncs[i], nil
	default:
		return nil, fmt.Errorf("harness: unknown protocol %v", p.Protocol)
	}
}

// observe is the context's reusable observer body: the optional trace
// callback first, then change-sampled honest-diameter trajectory points.
func (c *RunContext) observe(now sim.Time, env sim.Envelope) {
	if c.obsTrace != nil {
		c.obsTrace(now, env)
	}
	if !c.obsTraj {
		return
	}
	d, ok := honestDiameter(c.est)
	if !ok {
		return
	}
	if d != c.obsLast {
		c.obsRep.Trajectory = append(c.obsRep.Trajectory, TrajPoint{Time: now, Diameter: d})
		c.obsLast = d
	}
}

// maxByzPool bounds the Byzantine process pool; every built-in behavior
// renews, so the pool normally stabilizes at the largest cohort size.
const maxByzPool = 64

// byzProc builds the adversarial process for one Byzantine party, reviving
// a pooled process when the behavior supports it (fault.Renewer) and
// falling back to fresh construction otherwise. Pool order cannot affect
// determinism: Renew fully re-derives the process state from env, so any
// process of the right type is interchangeable with a fresh one.
func (c *RunContext) byzProc(b fault.Behavior, env fault.Env) sim.Process {
	if rn, ok := b.(fault.Renewer); ok {
		for i, cand := range c.byzPool {
			if proc, ok := rn.Renew(cand, env); ok {
				last := len(c.byzPool) - 1
				c.byzPool[i] = c.byzPool[last]
				c.byzPool[last] = nil
				c.byzPool = c.byzPool[:last]
				return proc
			}
		}
	}
	return b.New(env)
}

// run executes spec into rep, recycling the context's simulator and party
// state. rep's storage (Result maps, ProtoErrs, Trajectory) is reused when
// already allocated and (re)allocated when not, so the same body serves
// both the reused-report and the fresh-report path.
func (c *RunContext) run(spec Spec, rep *Report) error {
	p := spec.Params
	if len(spec.Inputs) != p.N {
		return fmt.Errorf("harness: %d inputs for %d parties", len(spec.Inputs), p.N)
	}
	if !spec.allowOverfault && len(spec.Crashes)+len(spec.Byz) > p.T {
		return errTooManyFaults
	}
	env, err := behaviorEnv(p)
	if err != nil {
		return err
	}
	cfg := sim.Config{
		N:         p.N,
		Scheduler: spec.Scheduler.Scheduler,
		Seed:      spec.Seed,
		Crashes:   spec.Crashes,
		Restarts:  spec.Restarts,
		MaxEvents: spec.MaxEvents,
		Core:      EventCore(),
		Batch:     Batching(),
		Shards:    Sharding(),
	}
	// Park the previous run's Byzantine processes in the pool before
	// clearing the map (the start-of-run point also covers error returns,
	// which skip any end-of-run cleanup). The processes are small concrete
	// records (scratch buffers plus parameters), so keeping them warm does
	// not pin a run graph the way the pre-pooling process closures did.
	if len(c.byz) > 0 {
		for _, proc := range c.byz {
			// The cap bounds the pool when behaviors don't implement
			// fault.Renewer (their parked processes would never be drawn
			// again): beyond it, references are simply dropped to the GC.
			if len(c.byzPool) < maxByzPool {
				c.byzPool = append(c.byzPool, proc)
			}
		}
		clear(c.byz)
	}
	if len(spec.Byz) > 0 {
		if c.byz == nil {
			c.byz = make(map[sim.PartyID]sim.Process, len(spec.Byz))
		}
		for id, b := range spec.Byz {
			c.byz[id] = c.byzProc(b, env)
		}
		cfg.Byzantine = c.byz
	}
	if c.net == nil {
		net, err := sim.New(cfg)
		if err != nil {
			return err
		}
		c.net = net
	} else if err := c.net.Reset(cfg); err != nil {
		return err
	}
	net := c.net
	c.est = c.est[:0]
	c.relUsed = 0
	for i := 0; i < p.N; i++ {
		id := sim.PartyID(i)
		if _, isByz := spec.Byz[id]; isByz {
			continue
		}
		proc, err := c.party(p, i, spec.Inputs[i])
		if err != nil {
			return fmt.Errorf("harness: party %d: %w", i, err)
		}
		if spec.Reliable {
			// Wrap the honest party in the ack/retransmit transport. The
			// wrapper forwards Estimate/Err to the protocol underneath, so
			// trajectory sampling and the protocol-error sweep below see
			// through it.
			if len(c.rel) == c.relUsed {
				c.rel = append(c.rel, relnet.Wrap(proc))
			} else {
				c.rel[c.relUsed].Reset(proc)
			}
			proc = c.rel[c.relUsed]
			c.relUsed++
		}
		if err := net.SetProcess(id, proc); err != nil {
			return err
		}
		if est, ok := proc.(sim.Estimator); ok && !isCrashPlanned(spec.Crashes, id) {
			c.est = append(c.est, est)
		}
	}
	rep.ProtoErrs = rep.ProtoErrs[:0]
	rep.Trajectory = rep.Trajectory[:0]
	if spec.RecordTrajectory || spec.Observer != nil {
		if spec.RecordTrajectory {
			// Preallocate the trajectory from the round budget: the honest
			// diameter is sampled on change only, and every party's
			// estimate moves at most once per round, so n·(rounds+2)
			// covers a run's samples — later growth (a pathological
			// schedule) still appends correctly, it just allocates.
			if need := p.N * (env.Rounds + 2); cap(rep.Trajectory) < need {
				rep.Trajectory = make([]TrajPoint, 0, need)
			}
		}
		c.obsTrace = spec.Observer
		c.obsTraj = spec.RecordTrajectory
		c.obsRep = rep
		c.obsLast = math.Inf(1)
		if c.obsFn == nil {
			c.obsFn = c.observe
		}
		net.SetObserver(c.obsFn)
	}
	rep.RunErr = net.RunInto(rep.Result)
	// Detach the observer immediately: left in place it would pin the
	// (possibly caller-retained) report, the trajectory, and the user's
	// trace callback from an idle pooled context.
	if spec.RecordTrajectory || spec.Observer != nil {
		net.SetObserver(nil)
		c.obsTrace = nil
		c.obsRep = nil
		c.obsTraj = false
	}
	for i := 0; i < p.N; i++ {
		id := sim.PartyID(i)
		if ef, ok := net.Party(id).(interface{ Err() error }); ok {
			if _, isByz := spec.Byz[id]; !isByz {
				if perr := ef.Err(); perr != nil {
					rep.ProtoErrs = append(rep.ProtoErrs, fmt.Errorf("party %d: %w", i, perr))
				}
			}
		}
	}
	rep.Checkpoints = append(rep.Checkpoints[:0], net.CheckpointDigests()...)
	rep.Transport = relnet.Stats{}
	for _, w := range c.rel[:c.relUsed] {
		s := w.TransportStats()
		rep.Transport.DataSent += s.DataSent
		rep.Transport.Retransmits += s.Retransmits
		rep.Transport.AcksSent += s.AcksSent
		rep.Transport.DupsSuppressed += s.DupsSuppressed
		rep.Transport.GiveUps += s.GiveUps
	}
	rep.check(spec)
	return nil
}
