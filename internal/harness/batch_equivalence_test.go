package harness

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file pins the batched tick-delivery core (sim.BatchOn, the default)
// to the per-envelope reference loop (sim.BatchOff): byte-identical
// experiment tables across the full driver set, on both event cores, at
// engine parallelism 1 and 8 — the experiment-level form of the trace
// equivalence pinned in internal/sim. Together with the core- and
// recycling-equivalence suites this keeps every fast path honest against
// the same reference semantics.

// renderBatched renders the listed experiments (E12 reduced) with the given
// batch mode, event core, and worker count.
func renderBatched(t *testing.T, mode sim.BatchMode, eventCore sim.EventCore, workers int) map[string]string {
	t.Helper()
	SetBatching(mode)
	SetEventCore(eventCore)
	SetParallelism(workers)
	defer SetBatching(sim.BatchDefault)
	defer SetEventCore(sim.CoreDefault)
	defer SetParallelism(0)
	out := make(map[string]string)
	for _, exp := range Experiments(1) {
		run := exp.Run
		if exp.ID == "E12" {
			run = func() (*trace.Table, error) { return E12LargeNSizes([]int{16, 32}) }
		}
		tbl, err := run()
		if err != nil {
			t.Fatalf("%s (batch=%v, core=%v, workers=%d): %v", exp.ID, mode, eventCore, workers, err)
		}
		var sb strings.Builder
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
		out[exp.ID] = sb.String()
	}
	return out
}

// TestBatchDeliveryByteIdentical regenerates the full E1–E12 table set with
// batching off (the reference loop) and compares byte-for-byte against
// batching on, across both event cores and at one and eight workers. Any
// leak in the deferred-flush equivalence machinery — send order, Seq
// assignment, rng draws, mid-tick completion, stats repair — perturbs some
// run's schedule and surfaces as a table diff.
func TestBatchDeliveryByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every experiment table five times; run without -short")
	}
	want := renderBatched(t, sim.BatchOff, sim.CoreDefault, 1) // reference loop, sequential
	for _, cfg := range []struct {
		mode    sim.BatchMode
		core    sim.EventCore
		workers int
	}{
		{sim.BatchOn, sim.CoreDefault, 1},
		{sim.BatchOn, sim.CoreDefault, 8},
		{sim.BatchOn, sim.CoreHeap, 1},
		{sim.BatchOff, sim.CoreDefault, 8},
	} {
		got := renderBatched(t, cfg.mode, cfg.core, cfg.workers)
		for id, ref := range want {
			if got[id] != ref {
				t.Errorf("%s diverges (batch=%v, core=%v, workers=%d):\n--- reference ---\n%s\n--- got ---\n%s",
					id, cfg.mode, cfg.core, cfg.workers, ref, got[id])
			}
		}
	}
}

// TestE12LargeN512Smoke exercises the n=512 scale axis the batched
// delivery + SoA work unlocks: a reduced scenario slice (one benign and
// two adversarial schedulers, fault-free and crash-storm) at n=512 on the
// crash protocol, asserting full invariant success. It runs from the CI
// bench-smoke job (make e12-smoke); locally it is opt-in via
// E12_LARGE_SMOKE=1 because a single run pushes ~3M messages.
func TestE12LargeN512Smoke(t *testing.T) {
	if os.Getenv("E12_LARGE_SMOKE") == "" {
		t.Skip("set E12_LARGE_SMOKE=1 to run the n=512 sweep smoke")
	}
	const n = 512
	p := core.Params{Protocol: core.ProtoCrash, N: n, T: (n - 1) / 2, Eps: 1e-3, Lo: 0, Hi: 1}
	var specs []Spec
	var labels []string
	for _, scen := range []string{
		"random/n=512,t=255",
		"splitviews/n=512,t=255",
		"splitviews+crash/n=512,t=255",
		"staggered+crash/n=512,t=255",
	} {
		spec, err := SpecFrom(p, BimodalInputs(n, 0, 1), scenario.MustParse(scen), 17)
		if err != nil {
			t.Fatal(err)
		}
		spec.MaxEvents = 50_000_000
		specs = append(specs, spec)
		labels = append(labels, scen)
	}
	reps, err := RunAllLabeled(specs, func(i int) string { return "E12-512 " + labels[i] })
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if !rep.OK() {
			t.Errorf("%s: %s", labels[i], rep.Failure())
		}
		t.Logf("%s: %d msgs, %d delivered, rounds %.2f",
			labels[i], rep.Result.Stats.MessagesSent, rep.Result.Stats.MessagesDelivered, rep.Result.Rounds())
	}
}
