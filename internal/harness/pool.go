package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// This file is the parallel experiment engine: a worker pool that fans
// independent simulation runs across GOMAXPROCS goroutines while keeping
// every observable output — tables, aggregates, error messages — byte-for-
// byte identical to a sequential execution.
//
// Determinism argument. Every run is a pure function of its Spec: the
// simulator's randomness comes from Spec.Seed alone, the scheduler suite is
// stateless (the one stateful scheduler, sched.FIFO, is instantiated
// per-spec), and protocols share no mutable state across runs. Workers pull
// indices from an atomic counter, write results into a preallocated slot
// per index, and all aggregation happens after the barrier in index order —
// so scheduling nondeterminism can never reach an experiment table.
//
// Each run executes on a recycled RunContext (context.go) drawn from a
// sync.Pool, whose per-P caching effectively gives every worker goroutine
// its own warm context: the simulator wheel, party state, and RBC slabs
// are reset — provably equivalent to fresh construction — instead of
// rebuilt, which removes the per-run allocation load (and the cross-worker
// GC pressure that used to scale with Parallelism()).

// parallelism overrides the worker count; 0 means runtime.GOMAXPROCS(0).
// It is read atomically because experiments may run while a test flips it.
var parallelism atomic.Int32

// SetParallelism sets the engine's worker count. 1 forces the sequential
// path (no goroutines at all); 0 restores the default of GOMAXPROCS.
// The determinism tests compare the two settings byte for byte.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
}

// Parallelism reports the engine's current worker count.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// eventCore selects the simulator event queue for every engine run. The
// cores are trace-equivalent (pinned by the core-equivalence tests); the
// switch exists for those tests and for cross-core benchmarking
// (cmd/aabench -core).
var eventCore atomic.Int32

// SetEventCore selects the simulator event core used by Run (and therefore
// every experiment). sim.CoreDefault restores the build's default.
func SetEventCore(c sim.EventCore) { eventCore.Store(int32(c)) }

// EventCore reports the event core currently in effect.
func EventCore() sim.EventCore { return sim.EventCore(eventCore.Load()) }

// batchMode selects batched versus per-envelope tick delivery for every
// engine run. The modes are observably equivalent (pinned by the batch
// equivalence tests); the switch exists for those tests and for A/B
// benchmarking (cmd/aabench -batch).
var batchMode atomic.Int32

// SetBatching selects the simulator delivery mode used by Run (and
// therefore every experiment). sim.BatchDefault restores the default
// (batched).
func SetBatching(m sim.BatchMode) { batchMode.Store(int32(m)) }

// Batching reports the delivery mode currently in effect.
func Batching() sim.BatchMode { return sim.BatchMode(batchMode.Load()) }

// sharding selects the intra-run shard count for every engine run
// (sim.Config.Shards). All shard counts are observably equivalent (pinned
// by the shard equivalence tests); the switch exists for those tests and
// for scaling benchmarks (cmd/aabench -shards). Note the two parallelism
// axes compose: Parallelism() fans independent runs across workers, while
// sharding splits the ticks of each single run — the auto heuristic keeps
// small runs sequential so the axes don't fight over cores on the mixed
// sweeps.
var sharding atomic.Int32

// SetSharding sets the intra-run shard count used by Run (and therefore
// every experiment). 1 forces the sequential reference path; 0 restores
// the default (auto: min(GOMAXPROCS, n/128)).
func SetSharding(n int) {
	if n < 0 {
		n = 0
	}
	sharding.Store(int32(n))
}

// Sharding reports the intra-run shard count currently in effect.
func Sharding() int { return int(sharding.Load()) }

// EngineStats aggregates run-level accounting across every engine-executed
// simulation since the last reset. cmd/aabench snapshots it around each
// experiment to report msgs/run and allocs/run in the BENCH_*.json
// trajectory.
type EngineStats struct {
	// Runs counts completed simulation runs.
	Runs int64
	// MessagesSent / MessagesDelivered / BytesSent sum the per-run
	// sim.Stats counters.
	MessagesSent      int64
	MessagesDelivered int64
	BytesSent         int64
	// Mallocs is the process-wide heap-allocation count since the last
	// ResetEngineStats (runtime.MemStats.Mallocs delta). Divided by Runs it
	// tracks the run-context recycling contract: a warm sweep should sit
	// near zero allocations per run. It is process-wide, so concurrent
	// non-engine work (or the table renderer) inflates it slightly.
	Mallocs int64
}

var engineRuns, engineMsgsSent, engineMsgsDelivered, engineBytes atomic.Int64

// engineMallocsBase is the MemStats.Mallocs baseline captured at reset.
var engineMallocsBase atomic.Uint64

func readMallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// ResetEngineStats zeroes the cumulative engine counters and re-baselines
// the allocation counter.
func ResetEngineStats() {
	engineRuns.Store(0)
	engineMsgsSent.Store(0)
	engineMsgsDelivered.Store(0)
	engineBytes.Store(0)
	engineMallocsBase.Store(readMallocs())
}

// SnapshotEngineStats reads the cumulative engine counters.
func SnapshotEngineStats() EngineStats {
	return EngineStats{
		Runs:              engineRuns.Load(),
		MessagesSent:      engineMsgsSent.Load(),
		MessagesDelivered: engineMsgsDelivered.Load(),
		BytesSent:         engineBytes.Load(),
		Mallocs:           int64(readMallocs() - engineMallocsBase.Load()),
	}
}

func countRun(rep *Report) {
	if rep.Result == nil {
		engineRuns.Add(1)
		return
	}
	countStats(rep.Result.Stats)
}

// countStats credits one completed simulation run to the engine counters.
// Spec-based runs are counted by RunAll; non-Spec experiments that drive
// the simulator directly (the vector extension) call it themselves.
func countStats(stats sim.Stats) {
	engineRuns.Add(1)
	engineMsgsSent.Add(int64(stats.MessagesSent))
	engineMsgsDelivered.Add(int64(stats.MessagesDelivered))
	engineBytes.Add(int64(stats.BytesSent))
}

// mapOrdered evaluates fn(0..n-1) across the worker pool and returns the
// results indexed by input order. With Parallelism() == 1 (or n < 2) it
// degenerates to a plain loop on the calling goroutine. Every index is
// evaluated even when an earlier one fails, and the error reported is
// always the lowest-index one — both properties keep the parallel and
// sequential paths observably identical (a sequential loop would have
// surfaced exactly that error first).
func mapOrdered[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					out[i], errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunAll executes every spec on the engine and returns the reports in spec
// order. A spec-level error (bad inputs, fault budget exceeded, ...) aborts
// the batch; protocol-level failures are part of the Report, as with Run.
func RunAll(specs []Spec) ([]*Report, error) {
	return RunAllLabeled(specs, nil)
}

// RunAllLabeled is RunAll with an error-context labeler: when spec i fails,
// label(i) prefixes the error so callers keep the per-run context the old
// inline loops had.
func RunAllLabeled(specs []Spec, label func(i int) string) ([]*Report, error) {
	return mapOrdered(len(specs), func(i int) (*Report, error) {
		rep, err := Run(specs[i])
		if err != nil {
			if label != nil {
				return nil, fmt.Errorf("%s: %w", label(i), err)
			}
			return nil, err
		}
		countRun(rep)
		return rep, nil
	})
}

// runOutcome pairs a report with its spec-level error for batches where the
// experiment treats a failed Run as data rather than as an abort (the E1
// overload demonstrations intentionally run past the fault bound).
type runOutcome struct {
	rep *Report
	err error
}

// runAllOutcomes executes every spec on the engine, never aborting: each
// slot carries its own (report, error) pair, in spec order.
func runAllOutcomes(specs []Spec) []runOutcome {
	outs, _ := mapOrdered(len(specs), func(i int) (runOutcome, error) {
		rep, err := Run(specs[i])
		if err == nil {
			countRun(rep)
		}
		return runOutcome{rep: rep, err: err}, nil
	})
	return outs
}
