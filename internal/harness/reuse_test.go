package harness

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// This file pins the run-context recycling contract from two sides:
//
//   - Equivalence: every experiment table renders byte-identically whether
//     runs execute on recycled contexts or on per-run fresh construction,
//     at engine parallelism 1 and 8. Together with the determinism tests
//     this proves Reset is observably equivalent to New across the whole
//     stack (simulator, protocols, RBC).
//   - Economy: a warm context executes full protocol runs with zero
//     steady-state heap allocations on the reused-report path.

// renderRecycled renders the listed experiments (plus a reduced E12) with
// the given recycling setting and worker count.
func renderRecycled(t *testing.T, recycle bool, workers int) map[string]string {
	t.Helper()
	SetStateRecycling(recycle)
	SetParallelism(workers)
	defer SetStateRecycling(true)
	defer SetParallelism(0)
	out := make(map[string]string)
	for _, exp := range Experiments(1) {
		run := exp.Run
		if exp.ID == "E12" {
			// The full E12 sweep exists to measure large n, not to gate it;
			// the reduced sizes exercise the same driver and aggregation.
			run = func() (*trace.Table, error) { return E12LargeNSizes([]int{16, 32}) }
		}
		tbl, err := run()
		if err != nil {
			t.Fatalf("%s (recycle=%v, workers=%d): %v", exp.ID, recycle, workers, err)
		}
		var sb strings.Builder
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
		out[exp.ID] = sb.String()
	}
	return out
}

// TestRunContextReuseByteIdentical regenerates the full E1–E12 table set
// with run-context recycling on and off, at one worker and at eight, and
// asserts byte-identical renderings. Any state leaking across a Reset —
// in the simulator, a protocol party, or an RBC slab — would perturb some
// run's delivery schedule or decision and surface as a table diff.
func TestRunContextReuseByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every experiment table four times; run without -short")
	}
	want := renderRecycled(t, false, 1) // fresh construction, sequential: the reference
	for _, cfg := range []struct {
		recycle bool
		workers int
	}{
		{true, 1},
		{true, 8},
		{false, 8},
	} {
		got := renderRecycled(t, cfg.recycle, cfg.workers)
		for id, ref := range want {
			if got[id] != ref {
				t.Errorf("%s diverges (recycle=%v, workers=%d):\n--- reference ---\n%s\n--- got ---\n%s",
					id, cfg.recycle, cfg.workers, ref, got[id])
			}
		}
	}
}

// TestRunContextReuseByteIdenticalLargeN is the large-n arm of the
// equivalence pin: the reduced sizes above never engage the calendar
// queue's overflow migration, multi-block payload turnover, or the
// party-pool shrink path the way n ≥ 64 message volumes do, so one
// render of the E12 driver at n ∈ {64, 128} (mixed shapes force contexts
// to grow and shrink mid-sweep) is compared recycled-vs-fresh at the
// full worker count.
func TestRunContextReuseByteIdenticalLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("renders a large-n E12 sweep twice; run without -short")
	}
	render := func(recycle bool) string {
		SetStateRecycling(recycle)
		defer SetStateRecycling(true)
		tbl, err := E12LargeNSizes([]int{64, 128})
		if err != nil {
			t.Fatalf("E12 large-n (recycle=%v): %v", recycle, err)
		}
		var sb strings.Builder
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if fresh, recycled := render(false), render(true); fresh != recycled {
		t.Errorf("large-n E12 diverges:\n--- fresh ---\n%s\n--- recycled ---\n%s", fresh, recycled)
	}
}

// TestRunReusedAllocs pins the tentpole economy claim: after a one-run
// warm-up, a context's reused-report Run performs zero steady-state heap
// allocations for the crash, trim, and witness protocols. 200 measured
// runs amortize away the residual warm-up effects (map geometry, slice
// growth), which testing.AllocsPerRun's integer average then floors.
func TestRunReusedAllocs(t *testing.T) {
	cases := []struct {
		name     string
		p        core.Params
		scen     string
		reliable bool
	}{
		{"crash-aa", core.Params{Protocol: core.ProtoCrash, N: 10, T: 4, Eps: 1e-3, Lo: 0, Hi: 1},
			"splitviews+crash/n=10,t=4", false},
		{"byztrim-aa", core.Params{Protocol: core.ProtoByzTrim, N: 15, T: 2, Eps: 1e-3, Lo: 0, Hi: 1},
			"splitviews/n=15,t=2", false},
		{"witness-aa", core.Params{Protocol: core.ProtoWitness, N: 10, T: 3, Eps: 1e-3, Lo: 0, Hi: 1},
			"splitviews/n=10,t=3", false},
		// The reliable-transport wrapper recycles its link state through
		// Reset (dedup maps survive the rcv reslice), so the ack/retransmit
		// path rides the same zero-alloc budget as the raw one.
		{"crash-aa-reliable", core.Params{Protocol: core.ProtoCrash, N: 10, T: 4, Eps: 1e-3, Lo: 0, Hi: 1},
			"random+loss:0.05/n=10,t=4", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec, err := SpecFrom(c.p, BimodalInputs(c.p.N, 0, 1), scenario.MustParse(c.scen), 7)
			if err != nil {
				t.Fatal(err)
			}
			spec.Reliable = c.reliable
			ctx := NewRunContext()
			if rep, err := ctx.Run(spec); err != nil {
				t.Fatalf("warm-up failed: %v", err)
			} else if !rep.OK() {
				t.Fatalf("warm-up run failed: %s", rep.Failure())
			}
			var runErr error
			var runFail string
			allocs := testing.AllocsPerRun(200, func() {
				rep, err := ctx.Run(spec)
				switch {
				case err != nil:
					runErr = err
				case !rep.OK():
					runFail = rep.Failure()
				}
			})
			if runErr != nil {
				t.Fatalf("run failed: %v", runErr)
			}
			if runFail != "" {
				t.Fatalf("run failed: %s", runFail)
			}
			if allocs != 0 {
				t.Errorf("warm steady state allocates %.2f/run, want 0", allocs)
			}
		})
	}
}

// TestByzRunReusedAllocs pins the Byzantine arm of the economy claim:
// behavior processes are pooled through the run context (fault.Renewer)
// and encode into reusable scratch, so a warm Byzantine run — scripted
// one-shot attackers and the reactive amplifier alike, on both the trim
// and the witness protocol — performs zero steady-state heap allocations,
// exactly like the fault-free path.
func TestByzRunReusedAllocs(t *testing.T) {
	cases := []struct {
		name string
		p    core.Params
		scen string
	}{
		{"byztrim-scripted", core.Params{Protocol: core.ProtoByzTrim, N: 22, T: 3, Eps: 1e-3, Lo: 0, Hi: 1},
			"splitviews+extreme+equivocate+spam/n=22,t=3"},
		{"byztrim-amplifier", core.Params{Protocol: core.ProtoByzTrim, N: 15, T: 2, Eps: 1e-3, Lo: 0, Hi: 1},
			"splitviews+amplifier/n=15,t=2"},
		{"witness-equivocate", core.Params{Protocol: core.ProtoWitness, N: 10, T: 3, Eps: 1e-3, Lo: 0, Hi: 1},
			"splitviews+equivocate+silent/n=10,t=3"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec, err := SpecFrom(c.p, BimodalInputs(c.p.N, 0, 1), scenario.MustParse(c.scen), 7)
			if err != nil {
				t.Fatal(err)
			}
			ctx := NewRunContext()
			if rep, err := ctx.Run(spec); err != nil {
				t.Fatalf("warm-up failed: %v", err)
			} else if !rep.OK() {
				t.Fatalf("warm-up run failed: %s", rep.Failure())
			}
			var runErr error
			var runFail string
			allocs := testing.AllocsPerRun(100, func() {
				rep, err := ctx.Run(spec)
				switch {
				case err != nil:
					runErr = err
				case !rep.OK():
					runFail = rep.Failure()
				}
			})
			if runErr != nil {
				t.Fatalf("run failed: %v", runErr)
			}
			if runFail != "" {
				t.Fatalf("run failed: %s", runFail)
			}
			if allocs != 0 {
				t.Errorf("warm Byzantine steady state allocates %.2f/run, want 0", allocs)
			}
		})
	}
}

// TestTrajectoryReusedAllocs pins the trajectory-recording arm (the E5
// path): the observer closure is cached on the context and the trajectory
// storage is preallocated from the round budget, so warm sampled runs
// allocate nothing.
func TestTrajectoryReusedAllocs(t *testing.T) {
	p := core.Params{Protocol: core.ProtoByzTrim, N: 15, T: 2, Eps: 1e-3, Lo: 0, Hi: 1}
	spec, err := SpecFrom(p, BimodalInputs(p.N, 0, 1), scenario.MustParse("splitviews+amplifier/n=15,t=2"), 7)
	if err != nil {
		t.Fatal(err)
	}
	spec.RecordTrajectory = true
	ctx := NewRunContext()
	rep, err := ctx.Run(spec)
	if err != nil {
		t.Fatalf("warm-up failed: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("warm-up run failed: %s", rep.Failure())
	}
	if len(rep.Trajectory) == 0 {
		t.Fatal("no trajectory recorded")
	}
	var runErr error
	allocs := testing.AllocsPerRun(100, func() {
		if rep, err := ctx.Run(spec); err != nil {
			runErr = err
		} else if len(rep.Trajectory) == 0 {
			runErr = errNoTrajectory
		}
	})
	if runErr != nil {
		t.Fatalf("run failed: %v", runErr)
	}
	if allocs != 0 {
		t.Errorf("warm trajectory steady state allocates %.2f/run, want 0", allocs)
	}
}

var errNoTrajectory = errors.New("no trajectory recorded")

// TestRunContextSurvivesShapeChanges drives one context through a sweep
// that changes protocol, n, and fault composition between consecutive runs
// — the E12 usage pattern — and checks each report against a fresh-context
// run of the same spec.
func TestRunContextSurvivesShapeChanges(t *testing.T) {
	specs := []struct {
		p    core.Params
		scen string
	}{
		{core.Params{Protocol: core.ProtoCrash, N: 9, T: 4, Eps: 1e-3, Lo: 0, Hi: 1}, "random+crash/n=9,t=4"},
		{core.Params{Protocol: core.ProtoWitness, N: 7, T: 2, Eps: 1e-3, Lo: 0, Hi: 1}, "splitviews/n=7,t=2"},
		{core.Params{Protocol: core.ProtoCrash, N: 17, T: 8, Eps: 1e-3, Lo: 0, Hi: 1}, "skew+crash/n=17,t=8"},
		{core.Params{Protocol: core.ProtoWitness, N: 13, T: 4, Eps: 1e-3, Lo: 0, Hi: 1}, "partition+equivocate/n=13,t=4"},
		{core.Params{Protocol: core.ProtoSync, N: 9, T: 2, Eps: 1e-3, Lo: 0, Hi: 1, RoundDuration: 10}, "sync:5/n=9,t=2"},
		{core.Params{Protocol: core.ProtoByzTrim, N: 15, T: 2, Eps: 1e-3, Lo: 0, Hi: 1}, "staggered+extreme/n=15,t=2"},
	}
	ctx := NewRunContext()
	for _, c := range specs {
		spec, err := SpecFrom(c.p, BimodalInputs(c.p.N, 0, 1), scenario.MustParse(c.scen), 23)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ctx.Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", c.scen, err)
		}
		want, err := NewRunContext().Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got.OK() != want.OK() || got.FinalSpread != want.FinalSpread ||
			got.Result.Stats != want.Result.Stats ||
			got.Result.FinishTime != want.Result.FinishTime {
			t.Errorf("%s: recycled run diverges from fresh: got %+v stats %+v, want %+v stats %+v",
				c.scen, got.FinalSpread, got.Result.Stats, want.FinalSpread, want.Result.Stats)
		}
	}
}
