package harness

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/trace"
)

// renderAt renders one experiment table at a given engine parallelism.
func renderAt(t *testing.T, workers int, run func() (*trace.Table, error)) string {
	t.Helper()
	SetParallelism(workers)
	defer SetParallelism(0)
	tbl, err := run()
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestEngineDeterminism is the core engine contract: for fixed seeds the
// parallel path must render byte-identical tables to the sequential path.
// E1 (sweeps + overload batch), E2 (sweeps + contraction searches), and E7
// (function-ablation sweeps) cover every aggregation shape the engine has.
func TestEngineDeterminism(t *testing.T) {
	cases := []struct {
		id  string
		run func() (*trace.Table, error)
	}{
		{"E1", func() (*trace.Table, error) { return E1Resilience(2) }},
		{"E2", func() (*trace.Table, error) { return E2Convergence(1) }},
		{"E7", func() (*trace.Table, error) { return E7Functions(1) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			seq := renderAt(t, 1, c.run)
			par := renderAt(t, 8, c.run)
			if seq != par {
				t.Fatalf("%s: parallel table differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
					c.id, seq, par)
			}
			again := renderAt(t, 8, c.run)
			if par != again {
				t.Fatalf("%s: two parallel renders differ", c.id)
			}
		})
	}
}

// TestMapOrderedPreservesOrder checks slot assignment under heavy fan-out.
func TestMapOrderedPreservesOrder(t *testing.T) {
	SetParallelism(8)
	defer SetParallelism(0)
	const n = 500
	out, err := mapOrdered(n, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d holds %d, want %d", i, v, i*i)
		}
	}
}

// TestMapOrderedLowestIndexError checks the error the engine reports is the
// one a sequential loop would have hit first, regardless of completion
// order.
func TestMapOrderedLowestIndexError(t *testing.T) {
	SetParallelism(8)
	defer SetParallelism(0)
	_, err := mapOrdered(100, func(i int) (int, error) {
		if i%30 == 7 { // fails at 7, 37, 67, 97
			return 0, fmt.Errorf("boom %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "boom 7" {
		t.Fatalf("got error %v, want boom 7", err)
	}
}

// TestRunAllMatchesRun checks engine-executed reports carry the same
// verdicts as direct sequential Run calls.
func TestRunAllMatchesRun(t *testing.T) {
	var specs []Spec
	for seed := int64(1); seed <= 6; seed++ {
		specs = append(specs, Spec{
			Params:    core.Params{Protocol: core.ProtoCrash, N: 7, T: 3, Eps: 1e-3, Lo: 0, Hi: 1},
			Inputs:    LinearInputs(7, 0, 1),
			Scheduler: sched.Named{Name: "random", Scheduler: &sched.UniformRandom{Min: 1, Max: 10}},
			Seed:      seed,
		})
	}
	SetParallelism(4)
	got, err := RunAll(specs)
	SetParallelism(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		want, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		g := got[i]
		if g.FinalSpread != want.FinalSpread ||
			g.Result.Stats != want.Result.Stats ||
			g.OK() != want.OK() {
			t.Fatalf("spec %d: engine report diverges from direct Run (spread %v vs %v, stats %+v vs %+v)",
				i, g.FinalSpread, want.FinalSpread, g.Result.Stats, want.Result.Stats)
		}
	}
}

// TestRunAllSpecError checks spec-level errors abort the batch with the
// labeled context.
func TestRunAllSpecError(t *testing.T) {
	specs := []Spec{{
		Params:    core.Params{Protocol: core.ProtoCrash, N: 7, T: 3, Eps: 1e-3, Lo: 0, Hi: 1},
		Inputs:    LinearInputs(5, 0, 1), // wrong input count
		Scheduler: sched.Named{Name: "sync", Scheduler: sched.NewSynchronous(1)},
	}}
	_, err := RunAllLabeled(specs, func(i int) string { return "ctx" })
	if err == nil || !strings.HasPrefix(err.Error(), "ctx: ") {
		t.Fatalf("got %v, want ctx-labeled error", err)
	}
}

// TestEngineStats checks the cumulative counters see every engine run.
func TestEngineStats(t *testing.T) {
	ResetEngineStats()
	spec := Spec{
		Params:    core.Params{Protocol: core.ProtoCrash, N: 7, T: 3, Eps: 1e-3, Lo: 0, Hi: 1},
		Inputs:    LinearInputs(7, 0, 1),
		Scheduler: sched.Named{Name: "sync", Scheduler: sched.NewSynchronous(1)},
		Seed:      1,
	}
	reps, err := RunAll([]Spec{spec, spec, spec})
	if err != nil {
		t.Fatal(err)
	}
	s := SnapshotEngineStats()
	if s.Runs != 3 {
		t.Fatalf("Runs = %d, want 3", s.Runs)
	}
	var wantMsgs int64
	for _, rep := range reps {
		wantMsgs += int64(rep.Result.Stats.MessagesSent)
	}
	if s.MessagesSent != wantMsgs {
		t.Fatalf("MessagesSent = %d, want %d", s.MessagesSent, wantMsgs)
	}
	ResetEngineStats()
	if s := SnapshotEngineStats(); s.Runs != 0 || s.MessagesSent != 0 {
		t.Fatalf("reset left %+v", s)
	}
}

// TestSetParallelism pins the knob's semantics.
func TestSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Fatalf("default Parallelism() = %d, want >= 1", got)
	}
	SetParallelism(-5)
	if got := Parallelism(); got < 1 {
		t.Fatalf("negative reset Parallelism() = %d, want >= 1", got)
	}
}

// errSentinel exercises error passthrough without labeling.
var errSentinel = errors.New("sentinel")

func TestRunAllUnlabeledError(t *testing.T) {
	_, err := mapOrdered(1, func(int) (struct{}, error) { return struct{}{}, errSentinel })
	if !errors.Is(err, errSentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
}
