package harness

import (
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// E12LargeN is the large-n scenario sweep: the full six-scheduler suite ×
// {fault-free, crash-storm} cross-product at n ∈ {64, 128, 256} on the
// crash protocol, plus a block of composite scenarios (mixed fault kinds,
// skewed delivery against the equivocators' victims) on the trim protocol.
// The sweep is the first workload that is only practical on the calendar-
// queue event core: at n = 256 a single run pushes ~650k messages through
// the queue, where the binary heap's log M pops dominated the wall clock.
//
// Every row is one scenario.Spec, printed in its canonical string form —
// the same strings aarun -scenario accepts, so any row can be re-run (or
// varied) from the command line verbatim.
func E12LargeN() (*trace.Table, error) {
	return E12LargeNSizes([]int{64, 128, 256})
}

// E12LargeNSizes is E12LargeN with a custom size sweep (the benchmark
// suite and the core-equivalence tests use smaller sizes to keep iteration
// time sane). One seed per scenario: the point is scale and composition
// coverage, not seed statistics — E1–E9 own those.
func E12LargeNSizes(sizes []int) (*trace.Table, error) {
	tbl := trace.NewTable("E12: large-n scenario sweep (crash-aa at (n-1)/2 + composite scenarios on byztrim-aa, eps=1e-3, bimodal inputs over [0,1])",
		"scenario", "protocol", "virt-rounds", "msgs", "deliveries", "final-spread", "ok")

	crashT := func(n int) int { return (n - 1) / 2 }
	scale := scenario.Cross(scenario.SuiteSchedulers(), [][]string{nil, {"crash"}}, sizes, crashT)

	// Composite scenarios: mixed fault kinds in one spec, and schedulers
	// aimed at the faulty slots. One line each — this enumeration is the
	// whole point of the scenario layer.
	composites := []scenario.Spec{
		scenario.MustParse("splitviews+equivocate/n=64,t=9"),
		scenario.MustParse("skew+equivocate/n=64,t=9"),
		scenario.MustParse("splitviews+crash+equivocate/n=64,t=9"),
		scenario.MustParse("random+silent+extreme+spam/n=64,t=9"),
	}

	type row struct {
		scen  scenario.Spec
		proto core.Protocol
	}
	rows := make([]row, 0, len(scale)+len(composites))
	specs := make([]Spec, 0, cap(rows))
	for _, scen := range scale {
		p := core.Params{Protocol: core.ProtoCrash, N: scen.N, T: scen.T, Eps: 1e-3, Lo: 0, Hi: 1}
		spec, err := SpecFrom(p, BimodalInputs(scen.N, 0, 1), scen, 17)
		if err != nil {
			return nil, err
		}
		spec.MaxEvents = 20_000_000
		rows = append(rows, row{scen: scen, proto: p.Protocol})
		specs = append(specs, spec)
	}
	for _, scen := range composites {
		p := core.Params{Protocol: core.ProtoByzTrim, N: scen.N, T: scen.T, Eps: 1e-3, Lo: 0, Hi: 1}
		spec, err := SpecFrom(p, BimodalInputs(scen.N, 0, 1), scen, 17)
		if err != nil {
			return nil, err
		}
		spec.MaxEvents = 20_000_000
		rows = append(rows, row{scen: scen, proto: p.Protocol})
		specs = append(specs, spec)
	}

	reps, err := RunAllLabeled(specs, func(i int) string { return "E12 " + rows[i].scen.String() })
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		rep := reps[i]
		tbl.AddRow(r.scen.String(), r.proto.String(),
			trace.F(rep.Result.Rounds()), trace.I(rep.Result.Stats.MessagesSent),
			trace.I(rep.Result.Stats.MessagesDelivered), trace.F(rep.FinalSpread),
			trace.B(rep.OK()))
	}
	return tbl, nil
}

// E12XL is the extra-large-n slice that the intra-run sharding layer exists
// for: n ∈ {1024, 4096}. It is not part of the default Experiments()
// registry — a single n=4096 run pushes ~170M messages, far past the CI and
// equivalence-matrix budgets — and is reached through aabench -xl (the
// committed BENCH snapshots carry its rows) and the reduced `make e12-xl`
// CI slice, which runs E12XLSizes([]int{1024}) at shards=4.
func E12XL() (*trace.Table, error) {
	return E12XLSizes([]int{1024, 4096})
}

// E12XLSizes is E12XL with a custom size sweep. The scenario slice is
// deliberately thin — one fault-free and one crash-storm row per size on
// two schedulers — because at these sizes each row is minutes of sequential
// work; breadth lives in E12LargeN, this sweep measures scale.
func E12XLSizes(sizes []int) (*trace.Table, error) {
	tbl := trace.NewTable("E12-XL: sharded large-n scaling slice (crash-aa at (n-1)/2, eps=1e-3, bimodal inputs over [0,1])",
		"scenario", "protocol", "virt-rounds", "msgs", "deliveries", "final-spread", "ok")

	crashT := func(n int) int { return (n - 1) / 2 }
	scale := scenario.Cross([]string{"random", "splitviews"}, [][]string{nil, {"crash"}}, sizes, crashT)

	rows := make([]scenario.Spec, 0, len(scale))
	specs := make([]Spec, 0, len(scale))
	for _, scen := range scale {
		p := core.Params{Protocol: core.ProtoCrash, N: scen.N, T: scen.T, Eps: 1e-3, Lo: 0, Hi: 1}
		spec, err := SpecFrom(p, BimodalInputs(scen.N, 0, 1), scen, 17)
		if err != nil {
			return nil, err
		}
		// ~170M messages for one fault-free n=4096 run; the budget scales
		// with the largest size requested.
		spec.MaxEvents = 400_000_000
		rows = append(rows, scen)
		specs = append(specs, spec)
	}

	reps, err := RunAllLabeled(specs, func(i int) string { return "E12-XL " + rows[i].String() })
	if err != nil {
		return nil, err
	}
	for i, scen := range rows {
		rep := reps[i]
		tbl.AddRow(scen.String(), core.ProtoCrash.String(),
			trace.F(rep.Result.Rounds()), trace.I(rep.Result.Stats.MessagesSent),
			trace.I(rep.Result.Stats.MessagesDelivered), trace.F(rep.FinalSpread),
			trace.B(rep.OK()))
	}
	return tbl, nil
}
