package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// This file pins the crash-recovery path (scenario recover/amnesia axes →
// sim.RestartPlan → checkpoint snapshot/restore) at the harness level:
//
//   - Equivalence: a recovery run — snapshot mid-run, crash, darkness,
//     restore, catch-up — produces identical decisions, stats, finish time,
//     and checkpoint digests across {heap, calendar} event cores × batch
//     {on, off} × shards {1, 4}. Restart actions fire at tick boundaries,
//     which the batching/sharding equivalence contracts keep mode-invariant.
//   - Economy: warm runs with recovery enabled stay 0 allocs/run — the
//     snapshot appends into recycled per-plan buffers and the restore pulls
//     protocol state from the existing free lists.

// recoverySpec is a run where the restart lands mid-execution: the
// adaptive baseline finishes around t=88, so checkpoint at 20, crash at
// 50, rejoin at 114 exercise rollback and catch-up rather than firing
// after the decisions.
// Reliable transport is what makes catch-up converge: traffic sent into
// the darkness window is retransmitted after the rejoin.
func recoverySpec(t *testing.T) Spec {
	t.Helper()
	p := core.Params{Protocol: core.ProtoCrash, N: 9, T: 2, Eps: 1e-3, Lo: 0, Hi: 1, Adaptive: true}
	spec, err := SpecFrom(p, BimodalInputs(p.N, 0, 1), scenario.MustParse("random+recover:2:50:30/n=9,t=2"), 7)
	if err != nil {
		t.Fatal(err)
	}
	spec.Reliable = true
	return spec
}

// TestRecoveryRunConverges pins the semantic content of one recovery run:
// the run converges, both planned parties checkpoint (two digests, in
// firing order), and both re-decide after the rejoin — the rollback
// actually discarded their pre-crash decisions.
func TestRecoveryRunConverges(t *testing.T) {
	spec := recoverySpec(t)
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("recovery run failed: %s", rep.Failure())
	}
	if len(rep.Checkpoints) != 2 {
		t.Fatalf("checkpoint digests %v, want 2 (one per planned party)", rep.Checkpoints)
	}
	for i, d := range rep.Checkpoints {
		if d == 0 {
			t.Errorf("checkpoint %d digest is zero", i)
		}
	}
	for _, rp := range spec.Restarts {
		at, ok := rep.Result.DecidedAt[rp.Party]
		if !ok {
			t.Fatalf("restarted party %d never re-decided", rp.Party)
		}
		if at <= rp.Rejoin {
			t.Errorf("party %d decided at t=%d, want after rejoin t=%d (rollback did not fire)",
				rp.Party, at, rp.Rejoin)
		}
	}
}

// TestRecoveryEquivalenceAcrossModes runs the same recovery spec on every
// engine configuration — {calendar, heap} event core × batch {on, off} ×
// shards {1, 4} — and requires identical decisions, message stats, finish
// time, and checkpoint digests. A restart action observing mid-tick state
// in one mode and tick-boundary state in another would surface here as a
// digest or decision diff.
func TestRecoveryEquivalenceAcrossModes(t *testing.T) {
	spec := recoverySpec(t)
	type cfg struct {
		core   sim.EventCore
		mode   sim.BatchMode
		shards int
	}
	var cfgs []cfg
	for _, ec := range []sim.EventCore{sim.CoreDefault, sim.CoreHeap} {
		for _, bm := range []sim.BatchMode{sim.BatchOn, sim.BatchOff} {
			for _, sh := range []int{1, 4} {
				cfgs = append(cfgs, cfg{ec, bm, sh})
			}
		}
	}
	run := func(c cfg) *Report {
		SetEventCore(c.core)
		SetBatching(c.mode)
		SetSharding(c.shards)
		defer SetEventCore(sim.CoreDefault)
		defer SetBatching(sim.BatchDefault)
		defer SetSharding(0)
		rep, err := Run(spec)
		if err != nil {
			t.Fatalf("core=%v batch=%v shards=%d: %v", c.core, c.mode, c.shards, err)
		}
		return rep
	}
	want := run(cfgs[0])
	if !want.OK() {
		t.Fatalf("reference recovery run failed: %s", want.Failure())
	}
	if len(want.Checkpoints) != 2 {
		t.Fatalf("reference checkpoints %v, want 2", want.Checkpoints)
	}
	for _, c := range cfgs[1:] {
		got := run(c)
		label := func() string {
			return "core=" + map[sim.EventCore]string{sim.CoreDefault: "calendar", sim.CoreHeap: "heap"}[c.core] +
				" batch=" + map[sim.BatchMode]string{sim.BatchOn: "on", sim.BatchOff: "off"}[c.mode]
		}
		if got.FinalSpread != want.FinalSpread || got.Result.FinishTime != want.Result.FinishTime ||
			got.Result.Stats != want.Result.Stats {
			t.Errorf("%s shards=%d diverges: spread %v finish %d stats %+v, want %v %d %+v",
				label(), c.shards, got.FinalSpread, got.Result.FinishTime, got.Result.Stats,
				want.FinalSpread, want.Result.FinishTime, want.Result.Stats)
		}
		if len(got.Checkpoints) != len(want.Checkpoints) {
			t.Errorf("%s shards=%d checkpoint count %d, want %d", label(), c.shards, len(got.Checkpoints), len(want.Checkpoints))
			continue
		}
		for i := range want.Checkpoints {
			if got.Checkpoints[i] != want.Checkpoints[i] {
				t.Errorf("%s shards=%d checkpoint %d digest %#x, want %#x",
					label(), c.shards, i, got.Checkpoints[i], want.Checkpoints[i])
			}
		}
		for id, at := range want.Result.DecidedAt {
			if got.Result.DecidedAt[id] != at {
				t.Errorf("%s shards=%d party %d decided at %d, want %d",
					label(), c.shards, id, got.Result.DecidedAt[id], at)
			}
		}
	}
}

// TestRecoveryRunReusedAllocs extends the zero-alloc warm-run contract to
// recovery runs: the checkpoint codec appends into the network's recycled
// per-plan snapshot buffers, the restore pulls round state from the
// protocol free lists, and the digest log reuses the report's slice, so a
// warm recovery run allocates nothing.
func TestRecoveryRunReusedAllocs(t *testing.T) {
	spec := recoverySpec(t)
	ctx := NewRunContext()
	if rep, err := ctx.Run(spec); err != nil {
		t.Fatalf("warm-up failed: %v", err)
	} else if !rep.OK() {
		t.Fatalf("warm-up run failed: %s", rep.Failure())
	}
	var runErr error
	var runFail string
	allocs := testing.AllocsPerRun(200, func() {
		rep, err := ctx.Run(spec)
		switch {
		case err != nil:
			runErr = err
		case !rep.OK():
			runFail = rep.Failure()
		case len(rep.Checkpoints) != 2:
			runFail = "checkpoint digests missing"
		}
	})
	if runErr != nil {
		t.Fatalf("run failed: %v", runErr)
	}
	if runFail != "" {
		t.Fatalf("run failed: %s", runFail)
	}
	if allocs != 0 {
		t.Errorf("warm recovery steady state allocates %.2f/run, want 0", allocs)
	}
}
