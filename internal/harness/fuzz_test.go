package harness

import "testing"

// TestFuzzBudget runs a randomized adversarial search; any violation is a
// genuine protocol bug.
func TestFuzzBudget(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 15
	}
	res, err := Fuzz(trials, 20260613)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != trials {
		t.Errorf("ran %d trials, want %d", res.Trials, trials)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if len(res.ByProtocol) < 2 {
		t.Errorf("poor protocol coverage: %v", res.ByProtocol)
	}
}

// TestFuzzScenarios runs the scenario-layer fuzz: registry contracts plus
// end-to-end runs of random valid compositions. Any violation means either
// a registry combination that should have been rejected at spec time, or a
// genuine protocol bug.
func TestFuzzScenarios(t *testing.T) {
	trials := 200
	if testing.Short() {
		trials = 60
	}
	res, err := FuzzScenarios(trials, 20260728)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Registry.Valid == 0 || res.Registry.Invalid == 0 || res.Runs == 0 {
		t.Errorf("degenerate scenario fuzz coverage: %+v", res)
	}
}

// TestFuzzDeterministic: the same seed explores the same configurations.
func TestFuzzDeterministic(t *testing.T) {
	a, err := Fuzz(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fuzz(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trials != b.Trials || len(a.Violations) != len(b.Violations) {
		t.Error("fuzz not deterministic per seed")
	}
	for proto, count := range a.ByProtocol {
		if b.ByProtocol[proto] != count {
			t.Errorf("protocol mix differs: %v vs %v", a.ByProtocol, b.ByProtocol)
		}
	}
}
