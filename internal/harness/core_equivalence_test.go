package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// This file pins the calendar-queue event core to the binary-heap
// reference: event-for-event identical delivery traces across the full
// scheduler × fault matrix, and byte-identical experiment tables. It is
// the contract that let the calendar queue replace the heap on the hot
// path (and what keeps the `simheap` escape hatch honest).

// deliveryRecord is one observed delivery, in observer order.
type deliveryRecord struct {
	Now      sim.Time
	From, To sim.PartyID
	Seq      uint64
	Len      int
}

// runTraced executes one scenario on the given core and returns the full
// delivery trace plus the report.
func runTraced(t *testing.T, p core.Params, scen scenario.Spec, eventCore sim.EventCore) ([]deliveryRecord, *Report) {
	t.Helper()
	SetEventCore(eventCore)
	defer SetEventCore(sim.CoreDefault)
	spec, err := SpecFrom(p, BimodalInputs(p.N, 0, 1), scen, 11)
	if err != nil {
		t.Fatalf("%s: %v", scen, err)
	}
	var trace []deliveryRecord
	spec.Observer = func(now sim.Time, env sim.Envelope) {
		trace = append(trace, deliveryRecord{
			Now: now, From: env.From, To: env.To, Seq: env.Seq, Len: len(env.Data),
		})
	}
	rep, err := Run(spec)
	if err != nil {
		t.Fatalf("%s on %v: %v", scen, eventCore, err)
	}
	return trace, rep
}

// TestCoreEquivalenceTraces runs the full scheduler suite × fault matrix
// on both event cores with a delivery-trace observer and asserts
// event-for-event identical orders, plus identical decisions and stats.
func TestCoreEquivalenceTraces(t *testing.T) {
	faultKinds := []string{"", "crash", "silent", "extreme", "equivocate", "spam", "amplifier"}
	for _, faultKind := range faultKinds {
		// Crash-kind (and fault-free) runs use the crash protocol at its
		// bound; Byzantine kinds need a Byzantine-tolerant protocol — the
		// witness protocol, whose RBC traffic is the hardest queue load.
		p := core.Params{Protocol: core.ProtoCrash, N: 9, T: 4, Eps: 1e-3, Lo: 0, Hi: 1}
		var faults []string
		switch faultKind {
		case "":
		case "crash":
			faults = []string{"crash"}
		default:
			p = core.Params{Protocol: core.ProtoWitness, N: 7, T: 2, Eps: 1e-3, Lo: 0, Hi: 1}
			faults = []string{faultKind}
		}
		for _, scen := range scenario.Suite(p.N, p.T, faults...) {
			name := scen.String()
			if faultKind == "" {
				name = scen.Sched + "+none"
			}
			t.Run(name, func(t *testing.T) {
				heapTrace, heapRep := runTraced(t, p, scen, sim.CoreHeap)
				calTrace, calRep := runTraced(t, p, scen, sim.CoreCalendar)
				if len(heapTrace) == 0 {
					t.Fatal("empty delivery trace")
				}
				if len(heapTrace) != len(calTrace) {
					t.Fatalf("trace lengths diverge: heap %d, calendar %d", len(heapTrace), len(calTrace))
				}
				for i := range heapTrace {
					if heapTrace[i] != calTrace[i] {
						t.Fatalf("delivery %d diverges: heap %+v, calendar %+v",
							i, heapTrace[i], calTrace[i])
					}
				}
				if heapRep.Result.Stats != calRep.Result.Stats {
					t.Fatalf("stats diverge: heap %+v, calendar %+v",
						heapRep.Result.Stats, calRep.Result.Stats)
				}
				if len(heapRep.Result.Decisions) != len(calRep.Result.Decisions) {
					t.Fatal("decision counts diverge")
				}
				for id, v := range heapRep.Result.Decisions {
					if calRep.Result.Decisions[id] != v {
						t.Fatalf("party %d decision diverges", id)
					}
					if calRep.Result.DecidedAt[id] != heapRep.Result.DecidedAt[id] {
						t.Fatalf("party %d decision time diverges", id)
					}
				}
			})
		}
	}
}

// renderAll renders every listed experiment on the given core.
func renderAll(t *testing.T, eventCore sim.EventCore, ids map[string]bool) map[string]string {
	t.Helper()
	SetEventCore(eventCore)
	defer SetEventCore(sim.CoreDefault)
	out := make(map[string]string)
	for _, exp := range Experiments(1) {
		if !ids[exp.ID] {
			continue
		}
		tbl, err := exp.Run()
		if err != nil {
			t.Fatalf("%s on %v: %v", exp.ID, eventCore, err)
		}
		var sb strings.Builder
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
		out[exp.ID] = sb.String()
	}
	return out
}

// TestTablesByteIdenticalAcrossCores regenerates the full E1–E11 table set
// on each event core and asserts byte-identical renderings — the
// experiment-level form of the trace equivalence, covering every driver,
// seed schedule, and aggregation path. E12 is compared at reduced sizes
// (its full sweep exists to measure the calendar core, not to gate it).
func TestTablesByteIdenticalAcrossCores(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every experiment table twice; run without -short")
	}
	ids := map[string]bool{}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11"} {
		ids[id] = true
	}
	heapTables := renderAll(t, sim.CoreHeap, ids)
	calTables := renderAll(t, sim.CoreCalendar, ids)
	for id, want := range heapTables {
		if got := calTables[id]; got != want {
			t.Errorf("%s diverges across cores:\n--- heap ---\n%s\n--- calendar ---\n%s", id, want, got)
		}
	}

	run12 := func(eventCore sim.EventCore) string {
		SetEventCore(eventCore)
		defer SetEventCore(sim.CoreDefault)
		tbl, err := E12LargeNSizes([]int{16, 32})
		if err != nil {
			t.Fatalf("E12 on %v: %v", eventCore, err)
		}
		var sb strings.Builder
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if heap12, cal12 := run12(sim.CoreHeap), run12(sim.CoreCalendar); heap12 != cal12 {
		t.Errorf("E12 diverges across cores:\n--- heap ---\n%s\n--- calendar ---\n%s", heap12, cal12)
	}
}
