package harness

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// E13Resilience is the lossy-network resilience sweep: loss ∈ {0, 1%, 5%,
// 20%} × transport ∈ {raw, reliable} × fault ∈ {crash, flap}, plus dup and
// regional-outage rows, on the crash protocol at n=16, t=3. The raw rows
// show how the protocol degrades when the reliable-channel assumption of
// the asynchronous model is broken — under Bernoulli loss a party waits
// forever for a round message that will never arrive, so runs stall with
// partial (or zero) decisions — while the reliable rows show the
// ack/retransmit sublayer (internal/relnet) restoring convergence at the
// price of retransmit traffic, which the table quantifies per cell.
//
// Every scenario string is canonical and replayable: the same tokens work
// in aarun -scenario, and the loss/dup decisions are drawn from the run's
// seeded scheduler rng, so each cell records and replays bit-for-bit
// through internal/incident.
func E13Resilience() (*trace.Table, error) {
	tbl := trace.NewTable("E13: lossy-network resilience — raw vs reliable transport (crash-aa, n=16, t=3, eps=1e-3, bimodal inputs over [0,100])",
		"scenario", "transport", "decided", "ok", "verdict", "drops", "dups", "retransmits", "giveups", "msgs")

	const n, t = 16, 3
	var scens []scenario.Spec
	addLoss := func(fault string) {
		for _, loss := range []string{"", "loss:0.01", "loss:0.05", "loss:0.2"} {
			s := scenario.Spec{Sched: "random", N: n, T: t}
			if fault != "" {
				s.Faults = append(s.Faults, fault)
			}
			if loss != "" {
				s.Faults = append(s.Faults, loss)
			}
			scens = append(scens, s)
		}
	}
	addLoss("crash")
	addLoss("flap:60")
	scens = append(scens,
		scenario.MustParse("random+dup:0.1/n=16,t=3"),
		scenario.MustParse("random+loss:0.05+dup:0.1/n=16,t=3"),
		scenario.MustParse("random+outage:4:50:100/n=16,t=3"),
	)

	type row struct {
		scen     scenario.Spec
		reliable bool
	}
	rows := make([]row, 0, 2*len(scens))
	specs := make([]Spec, 0, 2*len(scens))
	for _, scen := range scens {
		p := core.Params{Protocol: core.ProtoCrash, N: n, T: t, Eps: 1e-3, Lo: 0, Hi: 100}
		for _, reliable := range []bool{false, true} {
			spec, err := SpecFrom(p, BimodalInputs(n, 0, 100), scen, 17)
			if err != nil {
				return nil, err
			}
			spec.Reliable = reliable
			spec.MaxEvents = 20_000_000
			rows = append(rows, row{scen: scen, reliable: reliable})
			specs = append(specs, spec)
		}
	}

	reps, err := RunAllLabeled(specs, func(i int) string {
		tr := "raw"
		if rows[i].reliable {
			tr = "rel"
		}
		return fmt.Sprintf("E13 %s %s", rows[i].scen, tr)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		rep := reps[i]
		transport := "raw"
		if r.reliable {
			transport = "reliable"
		}
		tbl.AddRow(r.scen.String(), transport,
			trace.I(len(rep.Result.Decisions)), trace.B(rep.OK()), e13Verdict(rep),
			trace.I(rep.Result.Stats.MessagesDropped), trace.I(rep.Result.Stats.MessagesDuped),
			trace.I(int(rep.Transport.Retransmits)), trace.I(int(rep.Transport.GiveUps)),
			trace.I(rep.Result.Stats.MessagesSent))
	}
	return tbl, nil
}

// e13Verdict compresses a report's outcome into one table token. A
// "+giveups" suffix flags rows where the reliable transport abandoned a
// frame after exhausting its retries: the run may still converge, but an
// abandoned frame means the retry budget was the only thing between this
// cell and a stall, so flagged rows deserve scrutiny.
func e13Verdict(rep *Report) string {
	verdict := ""
	switch {
	case rep.OK():
		verdict = "converged"
	case errors.Is(rep.RunErr, sim.ErrStalled):
		verdict = "stalled"
	case errors.Is(rep.RunErr, sim.ErrEventBudget):
		verdict = "budget"
	case rep.RunErr != nil:
		verdict = "run-error"
	case len(rep.ProtoErrs) > 0:
		verdict = "proto-error"
	case !rep.ValidityOK:
		verdict = "validity"
	default:
		verdict = "agreement"
	}
	if rep.Transport.GiveUps > 0 {
		verdict += "+giveups"
	}
	return verdict
}
