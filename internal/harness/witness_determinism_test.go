package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestWitnessDeterminism pins the witness protocol's experiment tables
// across engine parallelism, the correctness bar for the dense-state
// RBC/witness refactor: the E4 (message complexity) and E6 (scaling)
// witness sweeps must render byte-identical at 1 worker and at 8, and
// twice at 8. Because every message a witness run sends is counted into
// these tables, any bookkeeping change that adds, drops, or reorders
// protocol traffic shows up as a table diff.
func TestWitnessDeterminism(t *testing.T) {
	cases := []struct {
		id  string
		run func() (*trace.Table, error)
	}{
		{"E4-witness", func() (*trace.Table, error) {
			return E4MessagesFor([]E4Case{{Proto: core.ProtoWitness, Sizes: []int{4, 7, 13}}})
		}},
		{"E6-witness", func() (*trace.Table, error) {
			return E6ScalingFor([]core.Protocol{core.ProtoWitness}, []int{8, 16})
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			seq := renderAt(t, 1, c.run)
			par := renderAt(t, 8, c.run)
			if seq != par {
				t.Fatalf("%s: parallel table differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
					c.id, seq, par)
			}
			again := renderAt(t, 8, c.run)
			if par != again {
				t.Fatalf("%s: two parallel renders differ", c.id)
			}
		})
	}
}
