package harness

import (
	"repro/internal/fault"
	"repro/internal/sim"
)

// byzMap assigns the Equivocate behavior to the listed parties.
func byzMap(ids ...sim.PartyID) map[sim.PartyID]fault.Behavior {
	m := make(map[sim.PartyID]fault.Behavior, len(ids))
	for _, id := range ids {
		m[id] = fault.Equivocate{Stretch: 2}
	}
	return m
}
