package harness

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vector"
)

// E10Vector measures the multidimensional extension: message and byte cost
// must scale linearly in the dimension d (d independent coordinate
// instances), with per-coordinate ε-agreement and box validity intact. The
// vector runs are not Spec-based (they drive the simulator directly), so
// they fan out through the engine's ordered map rather than RunAll.
func E10Vector() (*trace.Table, error) {
	tbl := trace.NewTable("E10: coordinate-wise agreement in R^d (crash-aa base, n=7 t=3, eps=1e-3)",
		"d", "msgs", "bytes", "msgs/d", "max-spread", "ok")
	base := core.Params{Protocol: core.ProtoCrash, N: 7, T: 3, Eps: 1e-3, Lo: -1, Hi: 1}
	dims := []int{1, 2, 4, 8}
	type vecResult struct {
		msgs, bytes int
		spread      float64
		ok          bool
	}
	results, err := mapOrdered(len(dims), func(i int) (vecResult, error) {
		msgs, bytes, spread, ok, err := runVectorOnce(base, dims[i], 21)
		return vecResult{msgs: msgs, bytes: bytes, spread: spread, ok: ok}, err
	})
	if err != nil {
		return nil, err
	}
	for i, dim := range dims {
		r := results[i]
		tbl.AddRow(trace.I(dim), trace.I(r.msgs), trace.I(r.bytes),
			trace.F(float64(r.msgs)/float64(dim)), trace.F(r.spread), trace.B(r.ok))
	}
	return tbl, nil
}

// runVectorOnce executes one d-dimensional crash-model run under the
// split-views scheduler and verifies the vector invariants.
func runVectorOnce(base core.Params, dim int, seed int64) (msgs, bytes int, spread float64, ok bool, err error) {
	vp := vector.Params{Base: base, Dim: dim}
	if err := vp.Validate(); err != nil {
		return 0, 0, 0, false, err
	}
	inputs := make([][]float64, base.N)
	for i := range inputs {
		pt := make([]float64, dim)
		for d := range pt {
			// Spread every coordinate across [-1, 1] with varying order so
			// different coordinates have different extreme holders.
			pt[d] = -1 + 2*float64((i+d)%base.N)/float64(base.N-1)
		}
		inputs[i] = pt
	}
	scen, err := scenario.Spec{Sched: "splitviews", N: base.N, T: base.T}.Resolve()
	if err != nil {
		return 0, 0, 0, false, err
	}
	net, err := sim.New(sim.Config{
		N:         base.N,
		Scheduler: scen.Scheduler.Scheduler,
		Seed:      seed,
		Core:      EventCore(),
		Batch:     Batching(),
		Shards:    Sharding(),
	})
	if err != nil {
		return 0, 0, 0, false, err
	}
	procs := make([]*vector.AA, base.N)
	for i := 0; i < base.N; i++ {
		proc, err := vector.New(vp, inputs[i])
		if err != nil {
			return 0, 0, 0, false, err
		}
		procs[i] = proc
		if err := net.SetProcess(sim.PartyID(i), proc); err != nil {
			return 0, 0, 0, false, err
		}
	}
	res, runErr := net.Run()
	if runErr != nil {
		return res.Stats.MessagesSent, res.Stats.BytesSent, 0, false,
			fmt.Errorf("vector run: %w", runErr)
	}
	countStats(res.Stats)
	ok = true
	for d := 0; d < dim; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, in := range inputs {
			lo = math.Min(lo, in[d])
			hi = math.Max(hi, in[d])
		}
		outLo, outHi := math.Inf(1), math.Inf(-1)
		for _, proc := range procs {
			pt, decided := proc.Outputs()
			if !decided {
				ok = false
				continue
			}
			if pt[d] < lo-1e-9 || pt[d] > hi+1e-9 {
				ok = false
			}
			outLo = math.Min(outLo, pt[d])
			outHi = math.Max(outHi, pt[d])
		}
		spread = math.Max(spread, outHi-outLo)
	}
	if spread > base.Eps+1e-9 {
		ok = false
	}
	return res.Stats.MessagesSent, res.Stats.BytesSent, spread, ok, nil
}
