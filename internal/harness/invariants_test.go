package harness

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/sim"
)

// TestInvariantGrid is the repository's main correctness battery: every
// protocol at its maximum fault bound, against every scheduler in the
// adversary suite, against every fault behavior, across several seeds and
// input shapes — asserting liveness, validity, and ε-agreement on all of
// them. Roughly 600 adversarial executions.
func TestInvariantGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("grid is expensive; run without -short")
	}
	type protoCase struct {
		proto core.Protocol
		n, tf int
		byz   bool
	}
	protos := []protoCase{
		{core.ProtoCrash, 9, 4, false},
		{core.ProtoByzTrim, 15, 2, true},
		{core.ProtoWitness, 10, 3, true},
	}
	inputGens := map[string]func(n int) []float64{
		"linear":  func(n int) []float64 { return LinearInputs(n, -50, 50) },
		"bimodal": func(n int) []float64 { return BimodalInputs(n, -50, 50) },
		"outlier": func(n int) []float64 { return OutlierInputs(n, -50, 50) },
		"uniform": func(n int) []float64 { return UniformInputs(n, -50, 50, 99) },
	}
	for _, pc := range protos {
		pc := pc
		t.Run(pc.proto.String(), func(t *testing.T) {
			t.Parallel()
			p := core.Params{Protocol: pc.proto, N: pc.n, T: pc.tf, Eps: 1e-3, Lo: -50, Hi: 50}
			var faultPlans []struct {
				name    string
				crashes []sim.CrashPlan
				byz     map[sim.PartyID]fault.Behavior
			}
			if pc.byz {
				for _, b := range fault.Suite(-50, 50) {
					faultPlans = append(faultPlans, struct {
						name    string
						crashes []sim.CrashPlan
						byz     map[sim.PartyID]fault.Behavior
					}{name: b.Name(), byz: byzAssign(pc.tf, b)})
				}
			} else {
				faultPlans = append(faultPlans,
					struct {
						name    string
						crashes []sim.CrashPlan
						byz     map[sim.PartyID]fault.Behavior
					}{name: "crash-staggered", crashes: maxCrashes(pc.n, pc.tf)},
					struct {
						name    string
						crashes []sim.CrashPlan
						byz     map[sim.PartyID]fault.Behavior
					}{name: "crash-immediate", crashes: immediateCrashes(pc.tf)},
					struct {
						name    string
						crashes []sim.CrashPlan
						byz     map[sim.PartyID]fault.Behavior
					}{name: "fault-free"},
				)
			}
			for inputName, gen := range inputGens {
				inputs := gen(pc.n)
				for _, fp := range faultPlans {
					for _, sc := range sched.Suite(pc.n, pc.tf) {
						for seed := int64(1); seed <= 2; seed++ {
							rep, err := Run(Spec{
								Params:    p,
								Inputs:    inputs,
								Scheduler: sc,
								Crashes:   fp.crashes,
								Byz:       fp.byz,
								Seed:      seed,
							})
							if err != nil {
								t.Fatalf("%s/%s/%s/seed%d: %v", inputName, fp.name, sc.Name, seed, err)
							}
							if !rep.OK() {
								t.Errorf("%s/%s/%s/seed%d: %s", inputName, fp.name, sc.Name, seed, rep.Failure())
							}
						}
					}
				}
			}
		})
	}
}

// immediateCrashes kills t parties before they send anything at all.
func immediateCrashes(t int) []sim.CrashPlan {
	plans := make([]sim.CrashPlan, t)
	for i := range plans {
		plans[i] = sim.CrashPlan{Party: sim.PartyID(i), AfterSends: 0}
	}
	return plans
}

// maxCrashes builds t crash plans with staggered mid-multicast budgets, so
// some crashes truncate multicasts part-way. The scenario registry's
// "crash" kind is the same schedule; the invariant grid keeps a direct
// copy so it exercises the raw Spec path too.
func maxCrashes(n, t int) []sim.CrashPlan {
	plans := make([]sim.CrashPlan, 0, t)
	for i := 0; i < t; i++ {
		plans = append(plans, sim.CrashPlan{
			Party:      sim.PartyID(i),
			AfterSends: n/2 + i*n*2, // first victims die mid-INIT-multicast, later ones survive longer
		})
	}
	return plans
}

// byzAssign gives the behavior to the first t parties.
func byzAssign(t int, b fault.Behavior) map[sim.PartyID]fault.Behavior {
	m := make(map[sim.PartyID]fault.Behavior, t)
	for i := 0; i < t; i++ {
		m[sim.PartyID(i)] = b
	}
	return m
}

// TestMixedCrashAndByzantine checks the witness protocol with the fault
// budget split between crashes and Byzantine behaviors.
func TestMixedCrashAndByzantine(t *testing.T) {
	p := core.Params{Protocol: core.ProtoWitness, N: 10, T: 3, Eps: 1e-3, Lo: 0, Hi: 1}
	rep, err := Run(Spec{
		Params:    p,
		Inputs:    LinearInputs(10, 0, 1),
		Scheduler: stdSchedule(10),
		Crashes:   []sim.CrashPlan{{Party: 0, AfterSends: 15}},
		Byz: map[sim.PartyID]fault.Behavior{
			1: fault.Equivocate{Stretch: 2},
			2: fault.Amplifier{Push: 1},
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("mixed faults: %s", rep.Failure())
	}
}

// TestEqualInputsDecideImmediately: when all honest inputs are equal, every
// protocol decides that exact value.
func TestEqualInputsDecideImmediately(t *testing.T) {
	for _, proto := range []core.Protocol{core.ProtoCrash, core.ProtoByzTrim, core.ProtoWitness} {
		n := core.MinN(proto, 1)
		p := core.Params{Protocol: proto, N: n, T: 1, Eps: 1e-6, Lo: 0, Hi: 1}
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = 0.625
		}
		rep, err := Run(Spec{
			Params:    p,
			Inputs:    inputs,
			Scheduler: stdSchedule(n),
			Seed:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("%s: %s", proto, rep.Failure())
		}
		for _, id := range rep.Result.Honest {
			if got := rep.Result.Decisions[id]; got != 0.625 {
				t.Errorf("%s party %d: decided %v, want exactly 0.625", proto, id, got)
			}
		}
	}
}

// TestAdaptiveSavesRounds verifies the adaptive mode's point: with a true
// spread far below the promised range, it terminates in far fewer rounds.
func TestAdaptiveSavesRounds(t *testing.T) {
	base := core.Params{Protocol: core.ProtoCrash, N: 7, T: 3, Eps: 1e-3, Lo: 0, Hi: 1e9}
	inputs := LinearInputs(7, 100, 101) // true spread 1, promised 1e9
	fixedRep, err := Run(Spec{Params: base, Inputs: inputs,
		Scheduler: sched.Named{Name: "sync", Scheduler: sched.NewSynchronous(5)}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	adaptive := base
	adaptive.Adaptive = true
	adaptRep, err := Run(Spec{Params: adaptive, Inputs: inputs,
		Scheduler: sched.Named{Name: "sync", Scheduler: sched.NewSynchronous(5)}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !fixedRep.OK() || !adaptRep.OK() {
		t.Fatalf("fixed: %s; adaptive: %s", fixedRep.Failure(), adaptRep.Failure())
	}
	if adaptRep.Result.Rounds() >= fixedRep.Result.Rounds()/2 {
		t.Errorf("adaptive %0.f rounds vs fixed %0.f: expected a large saving",
			adaptRep.Result.Rounds(), fixedRep.Result.Rounds())
	}
}

// TestAdaptiveWithCrashes exercises the DECIDED-freeze path: parties with
// small spread estimates decide early and their frozen values must keep
// later quorums alive.
func TestAdaptiveWithCrashes(t *testing.T) {
	p := core.Params{Protocol: core.ProtoCrash, N: 9, T: 4, Eps: 1e-3, Adaptive: true}
	for _, sc := range sched.Suite(9, 4) {
		for seed := int64(1); seed <= 3; seed++ {
			rep, err := Run(Spec{
				Params:    p,
				Inputs:    UniformInputs(9, 0, 100, seed),
				Scheduler: sc,
				Crashes:   maxCrashes(9, 4),
				Seed:      seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Adaptive mode guarantees liveness and validity
			// unconditionally; ε-agreement is conditional, so assert the
			// unconditional pair plus report agreement failures.
			if rep.RunErr != nil || len(rep.ProtoErrs) > 0 {
				t.Fatalf("%s/seed%d: liveness lost: %s", sc.Name, seed, rep.Failure())
			}
			if !rep.ValidityOK {
				t.Fatalf("%s/seed%d: validity lost: %s", sc.Name, seed, rep.Failure())
			}
			if !rep.AgreementOK {
				t.Logf("%s/seed%d: adaptive eps-agreement missed (conditional guarantee): spread %v",
					sc.Name, seed, rep.FinalSpread)
			}
		}
	}
}

// TestRunSpecValidation covers the harness's own guards.
func TestRunSpecValidation(t *testing.T) {
	p := core.Params{Protocol: core.ProtoCrash, N: 3, T: 1, Eps: 0.1, Lo: 0, Hi: 1}
	sc := sched.Named{Name: "sync", Scheduler: sched.NewSynchronous(1)}
	if _, err := Run(Spec{Params: p, Inputs: []float64{1}, Scheduler: sc}); err == nil {
		t.Error("wrong input count accepted")
	}
	if _, err := Run(Spec{Params: p, Inputs: []float64{0, 0, 1}, Scheduler: sc,
		Crashes: []sim.CrashPlan{{Party: 0}, {Party: 1}}}); err == nil {
		t.Error("overfaulted spec accepted")
	}
	badParams := p
	badParams.N = 2
	if _, err := Run(Spec{Params: badParams, Inputs: []float64{0, 1}, Scheduler: sc}); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestReportFailureStrings ensures the diagnostics render for each failure
// class.
func TestReportFailureStrings(t *testing.T) {
	rep := &Report{RunErr: fmt.Errorf("boom"), Result: &sim.Result{}}
	if rep.Failure() == "" || rep.OK() {
		t.Error("run error not reported")
	}
	rep = &Report{ProtoErrs: []error{fmt.Errorf("x")}, Result: &sim.Result{}}
	if rep.Failure() == "" || rep.OK() {
		t.Error("proto error not reported")
	}
	rep = &Report{Result: &sim.Result{}, ValidityOK: false, AgreementOK: true}
	if rep.Failure() == "" || rep.OK() {
		t.Error("validity failure not reported")
	}
	rep = &Report{Result: &sim.Result{}, ValidityOK: true, AgreementOK: false}
	if rep.Failure() == "" || rep.OK() {
		t.Error("agreement failure not reported")
	}
	rep = &Report{Result: &sim.Result{}, ValidityOK: true, AgreementOK: true}
	if rep.Failure() != "ok" || !rep.OK() {
		t.Error("success not reported as ok")
	}
}

// TestInputGenerators sanity-checks the generator shapes.
func TestInputGenerators(t *testing.T) {
	lin := LinearInputs(5, 0, 8)
	want := []float64{0, 2, 4, 6, 8}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("LinearInputs = %v", lin)
		}
	}
	if one := LinearInputs(1, 3, 9); one[0] != 3 {
		t.Errorf("single linear input %v", one)
	}
	bi := BimodalInputs(6, -1, 1)
	if bi[0] != -1 || bi[2] != -1 || bi[3] != 1 || bi[5] != 1 {
		t.Errorf("BimodalInputs = %v", bi)
	}
	out := OutlierInputs(4, -9, 3)
	if out[0] != -9 || out[1] != 3 || out[3] != 3 {
		t.Errorf("OutlierInputs = %v", out)
	}
	uni := UniformInputs(100, 2, 5, 7)
	for _, v := range uni {
		if v < 2 || v > 5 {
			t.Fatalf("uniform input %v outside range", v)
		}
	}
	again := UniformInputs(100, 2, 5, 7)
	for i := range uni {
		if uni[i] != again[i] {
			t.Fatal("UniformInputs not deterministic per seed")
		}
	}
	sc := SortedCopy([]float64{3, 1, 2})
	if sc[0] != 1 || sc[2] != 3 {
		t.Errorf("SortedCopy = %v", sc)
	}
}
