package harness

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file pins intra-run sharding (sim.Config.Shards, SetSharding) at the
// experiment level: byte-identical E1–E13 tables across shard counts
// {1, 2, 4, 8}, on both event cores, with batching on and off — the
// experiment-level form of the trace equivalence pinned in internal/sim.
// Sharding composes with the engine's run-level parallelism, so the matrix
// also runs one sharded cell at eight workers.

// renderSharded renders the experiment set (E12 reduced) with the given
// shard count, event core, batch mode, and worker count.
func renderSharded(t *testing.T, shards int, eventCore sim.EventCore, mode sim.BatchMode, workers int) map[string]string {
	t.Helper()
	SetSharding(shards)
	SetEventCore(eventCore)
	SetBatching(mode)
	SetParallelism(workers)
	defer SetSharding(0)
	defer SetEventCore(sim.CoreDefault)
	defer SetBatching(sim.BatchDefault)
	defer SetParallelism(0)
	out := make(map[string]string)
	for _, exp := range Experiments(1) {
		run := exp.Run
		if exp.ID == "E12" {
			run = func() (*trace.Table, error) { return E12LargeNSizes([]int{16, 32}) }
		}
		tbl, err := run()
		if err != nil {
			t.Fatalf("%s (shards=%d, core=%v, batch=%v, workers=%d): %v", exp.ID, shards, eventCore, mode, workers, err)
		}
		var sb strings.Builder
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
		out[exp.ID] = sb.String()
	}
	return out
}

// TestShardedTablesByteIdentical regenerates the full experiment table set
// at shards=1 (the sequential reference) and compares byte-for-byte against
// sharded cells across shard counts, event cores, batch modes, and worker
// counts. Any leak in the barrier merge — worker-order pend concatenation,
// stats folding, completion-trigger max, per-worker arena routing — perturbs
// some run's Seq or rng stream and surfaces as a table diff.
func TestShardedTablesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every experiment table seven times; run without -short")
	}
	want := renderSharded(t, 1, sim.CoreDefault, sim.BatchOn, 1)
	for _, cfg := range []struct {
		shards  int
		core    sim.EventCore
		mode    sim.BatchMode
		workers int
	}{
		{2, sim.CoreDefault, sim.BatchOn, 1},
		{4, sim.CoreDefault, sim.BatchOn, 1},
		{8, sim.CoreDefault, sim.BatchOn, 1},
		{4, sim.CoreHeap, sim.BatchOn, 1},
		{4, sim.CoreDefault, sim.BatchOff, 1}, // sharding must be inert with batching off
		{4, sim.CoreDefault, sim.BatchOn, 8},  // composed with run-level parallelism
	} {
		got := renderSharded(t, cfg.shards, cfg.core, cfg.mode, cfg.workers)
		for id, ref := range want {
			if got[id] != ref {
				t.Errorf("%s diverges (shards=%d, core=%v, batch=%v, workers=%d):\n--- reference ---\n%s\n--- got ---\n%s",
					id, cfg.shards, cfg.core, cfg.mode, cfg.workers, ref, got[id])
			}
		}
	}
}

// TestShardedRunReusedAllocs extends the zero-alloc warm-run contract to
// shards > 1: the per-worker pend lists, touched lists, Batch iterators,
// and payload arenas are all recycled by Reset, so a warm sharded run
// allocates nothing — on the inline worker path (small ticks) and on the
// goroutine dispatch path (n=34 multicast storms are 1156-event ticks >=
// 2*shardParEventsPerWorker at shards=2, which dispatches; job channels
// and WaitGroup signalling are allocation-free).
func TestShardedRunReusedAllocs(t *testing.T) {
	cases := []struct {
		name   string
		p      core.Params
		scen   string
		shards int
		runs   int
	}{
		{"crash-inline", core.Params{Protocol: core.ProtoCrash, N: 10, T: 4, Eps: 1e-3, Lo: 0, Hi: 1},
			"splitviews+crash/n=10,t=4", 4, 200},
		{"byztrim-inline", core.Params{Protocol: core.ProtoByzTrim, N: 15, T: 2, Eps: 1e-3, Lo: 0, Hi: 1},
			"splitviews/n=15,t=2", 8, 200},
		{"crash-dispatch", core.Params{Protocol: core.ProtoCrash, N: 34, T: 16, Eps: 1e-3, Lo: 0, Hi: 1},
			"random+crash/n=34,t=16", 2, 50},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			SetSharding(c.shards)
			defer SetSharding(0)
			spec, err := SpecFrom(c.p, BimodalInputs(c.p.N, 0, 1), scenario.MustParse(c.scen), 7)
			if err != nil {
				t.Fatal(err)
			}
			ctx := NewRunContext()
			if rep, err := ctx.Run(spec); err != nil {
				t.Fatalf("warm-up failed: %v", err)
			} else if !rep.OK() {
				t.Fatalf("warm-up run failed: %s", rep.Failure())
			}
			var runErr error
			var runFail string
			allocs := testing.AllocsPerRun(c.runs, func() {
				rep, err := ctx.Run(spec)
				switch {
				case err != nil:
					runErr = err
				case !rep.OK():
					runFail = rep.Failure()
				}
			})
			if runErr != nil {
				t.Fatalf("run failed: %v", runErr)
			}
			if runFail != "" {
				t.Fatalf("run failed: %s", runFail)
			}
			if allocs != 0 {
				t.Errorf("warm sharded steady state allocates %.2f/run, want 0", allocs)
			}
		})
	}
}

// TestE12XL1024Smoke exercises the n=1024 scale axis the sharding layer
// unlocks: the reduced E12-XL slice at shards=4 with full invariant
// success. It runs from the CI bench-smoke job (make e12-xl); locally it
// is opt-in via E12_XL_SMOKE=1 because a single fault-free n=1024 run
// pushes ~10M messages.
func TestE12XL1024Smoke(t *testing.T) {
	if os.Getenv("E12_XL_SMOKE") == "" {
		t.Skip("set E12_XL_SMOKE=1 to run the n=1024 sharded smoke")
	}
	SetSharding(4)
	defer SetSharding(0)
	tbl, err := E12XLSizes([]int{1024})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "false") {
		t.Errorf("E12-XL row failed invariants:\n%s", sb.String())
	}
	t.Logf("E12-XL n=1024 @ shards=4:\n%s", sb.String())
}
