package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestSmokeCrash(t *testing.T) {
	p := core.Params{Protocol: core.ProtoCrash, N: 7, T: 3, Eps: 1e-3, Lo: 0, Hi: 100}
	rep, err := Run(Spec{
		Params:    p,
		Inputs:    LinearInputs(7, 0, 100),
		Scheduler: sched.Named{Name: "random", Scheduler: &sched.UniformRandom{Min: 1, Max: 10}},
		Crashes:   []sim.CrashPlan{{Party: 0, AfterSends: 3}, {Party: 1, AfterSends: 20}},
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("crash run failed: %s", rep.Failure())
	}
	t.Logf("crash: spread %g rounds %.1f msgs %d", rep.FinalSpread, rep.Result.Rounds(), rep.Result.Stats.MessagesSent)
}

func TestSmokeWitness(t *testing.T) {
	p := core.Params{Protocol: core.ProtoWitness, N: 7, T: 2, Eps: 1e-3, Lo: 0, Hi: 100}
	rep, err := Run(Spec{
		Params:    p,
		Inputs:    LinearInputs(7, 0, 100),
		Scheduler: sched.Named{Name: "splitviews", Scheduler: &sched.SplitViews{Boundary: 3, Fast: 1, Slow: 10}},
		Byz:       byzMap(0, 1),
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("witness run failed: %s", rep.Failure())
	}
	t.Logf("witness: spread %g rounds %.1f msgs %d", rep.FinalSpread, rep.Result.Rounds(), rep.Result.Stats.MessagesSent)
}
