// Package harness assembles protocols, scenarios, and input generators
// into runnable experiments, checks the agreement/validity invariants
// after every run, and implements the experiment drivers (E1–E13 in
// DESIGN.md) behind cmd/aabench and the root benchmark suite.
//
// Adversary wiring is declarative: drivers enumerate scenario.Spec values
// (internal/scenario) and lower them to executable Specs with SpecFrom;
// the scenario registry owns every scheduler parameterization, crash
// schedule, and Byzantine behavior the drivers used to hand-roll.
//
// Experiments run on the parallel engine in pool.go: drivers enumerate
// their independent simulation runs as []Spec and submit them via RunAll
// (or mapOrdered for non-Spec work), which fans them across
// Parallelism() worker goroutines and returns results in spec order.
// Aggregation happens strictly after the barrier, in index order, so the
// rendered tables are byte-identical at any worker count.
package harness

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/relnet"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Spec describes one execution.
type Spec struct {
	// Params are the protocol parameters (shared by all parties).
	Params core.Params
	// Inputs holds one input per party, indexed by PartyID. Entries for
	// Byzantine parties are ignored.
	Inputs []float64
	// Scheduler orders deliveries.
	Scheduler sched.Named
	// Crashes and Byz assign faults; together they must not exceed
	// Params.T (checked).
	Crashes []sim.CrashPlan
	Byz     map[sim.PartyID]fault.Behavior
	// Restarts lists crash-recovery episodes (scenario recover/amnesia
	// axes). Restart parties stay honest — they must re-decide after the
	// rollback — so they occupy no fault slot here either.
	Restarts []sim.RestartPlan
	// Seed drives all randomness in the run.
	Seed int64
	// RecordTrajectory enables diameter-over-time sampling.
	RecordTrajectory bool
	// Observer, when non-nil, sees every delivery (before the trajectory
	// sampler). The core-equivalence tests use it to record full traces.
	// Under batched delivery (the default) a dense tick's callbacks
	// replay at tick end in delivery order, so an observer reading live
	// protocol state sees end-of-tick state; the callback sequence itself
	// is identical across delivery modes.
	Observer func(now sim.Time, env sim.Envelope)
	// MaxEvents overrides the simulator's default event budget.
	MaxEvents int
	// Reliable wraps every honest party in the ack/retransmit transport
	// (internal/relnet): payloads are framed, retransmitted with backoff
	// until acked, and deduplicated on receive — the configuration that
	// survives the lossy-network scenario axes (loss/dup/outage/flap).
	// Byzantine parties stay raw (an adversary owes no acks).
	Reliable bool
	// allowOverfault disables the faults<=T guard; only the resilience
	// overload experiment sets it, to demonstrate what breaks past the
	// bound.
	allowOverfault bool
}

// TrajPoint is one sample of the honest-value diameter over virtual time.
type TrajPoint struct {
	Time     sim.Time
	Diameter float64
}

// Report is the checked outcome of one run.
type Report struct {
	Result *sim.Result
	// RunErr is the simulator's verdict (nil, ErrStalled, ErrEventBudget).
	RunErr error
	// ProtoErrs collects internal protocol errors per party.
	ProtoErrs []error
	// HullLo and HullHi bound the non-Byzantine inputs: the validity hull.
	HullLo, HullHi float64
	// InitialSpread is the diameter of the non-faulty inputs.
	InitialSpread float64
	// FinalSpread is the diameter of the non-faulty outputs.
	FinalSpread float64
	// ValidityOK reports whether every honest output is inside the hull.
	ValidityOK bool
	// AgreementOK reports whether FinalSpread <= eps (with float slack).
	AgreementOK bool
	// Trajectory holds diameter samples if requested.
	Trajectory []TrajPoint
	// Transport aggregates the reliable-transport counters (retransmits,
	// acks, dedup suppressions, give-ups) across the honest parties when
	// the spec ran with Reliable set; zero otherwise.
	Transport relnet.Stats
	// Checkpoints holds one content digest per snapshot the run's restart
	// plans took, in firing order (empty without a restart axis). Replays
	// compare them to pin checkpoint bytes across recorded incidents.
	Checkpoints []uint64
}

// OK reports overall success: live, valid, and ε-agreed.
func (r *Report) OK() bool {
	return r.RunErr == nil && len(r.ProtoErrs) == 0 && r.ValidityOK && r.AgreementOK
}

// Failure summarizes what went wrong, for test messages.
func (r *Report) Failure() string {
	switch {
	case r.RunErr != nil:
		return fmt.Sprintf("run error: %v", r.RunErr)
	case len(r.ProtoErrs) > 0:
		return fmt.Sprintf("protocol error: %v", r.ProtoErrs[0])
	case !r.ValidityOK:
		return fmt.Sprintf("validity violated: outputs %v outside hull [%v, %v]",
			r.Result.HonestDecisions(), r.HullLo, r.HullHi)
	case !r.AgreementOK:
		return fmt.Sprintf("agreement violated: spread %v > eps", r.FinalSpread)
	default:
		return "ok"
	}
}

// errTooManyFaults guards the spec.
var errTooManyFaults = errors.New("harness: fault assignments exceed params.T")

// SpecFrom lowers a declarative scenario to an executable Spec. A scenario
// with an unset fault bound inherits the protocol's T. Resolution happens
// here, per spec — stateful schedulers (fifo) are never shared across runs.
func SpecFrom(p core.Params, inputs []float64, scen scenario.Spec, seed int64) (Spec, error) {
	res, err := scen.WithT(p.T).Resolve()
	if err != nil {
		return Spec{}, err
	}
	return Spec{
		Params:    p,
		Inputs:    inputs,
		Scheduler: res.Scheduler,
		Crashes:   res.Crashes,
		Byz:       res.Byz,
		Restarts:  res.Restarts,
		Seed:      seed,
	}, nil
}

// Run executes a spec and checks the invariants. It draws a recycled run
// context from the package pool (see context.go), so the simulator wheel,
// protocol party state, and RBC slabs of earlier runs are reused rather
// than rebuilt; the returned Report is freshly allocated and safe to
// retain. SetStateRecycling(false) switches to per-run fresh construction.
func Run(spec Spec) (*Report, error) {
	c := acquireContext()
	defer releaseContext(c)
	rep := &Report{Result: &sim.Result{}}
	if err := c.run(spec, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// check fills the invariant verdicts. It is allocation-free: the spreads
// are single min/max passes (matching multiset.Spread and the sorted-
// decisions diameter exactly), part of the recycled hot path's zero-alloc
// steady-state budget.
func (r *Report) check(spec Spec) {
	p := spec.Params
	// Validity hull: inputs of every non-Byzantine party. Crashed parties
	// never lie, so their inputs legitimately enter the computation.
	r.HullLo, r.HullHi = math.Inf(1), math.Inf(-1)
	for i := 0; i < p.N; i++ {
		if _, isByz := spec.Byz[sim.PartyID(i)]; isByz {
			continue
		}
		v := spec.Inputs[i]
		r.HullLo = math.Min(r.HullLo, v)
		r.HullHi = math.Max(r.HullHi, v)
	}
	r.InitialSpread = 0
	var inLo, inHi float64
	for k, id := range r.Result.Honest {
		v := spec.Inputs[id]
		if k == 0 {
			inLo, inHi = v, v
		} else {
			if v < inLo {
				inLo = v
			}
			if v > inHi {
				inHi = v
			}
		}
	}
	if len(r.Result.Honest) > 0 {
		r.InitialSpread = inHi - inLo
	}
	r.FinalSpread = r.Result.HonestSpread()

	tol := 1e-9 * math.Max(1, math.Max(math.Abs(r.HullLo), math.Abs(r.HullHi)))
	r.ValidityOK = true
	for _, id := range r.Result.Honest {
		y, ok := r.Result.Decisions[id]
		if !ok {
			r.ValidityOK = false
			continue
		}
		if y < r.HullLo-tol || y > r.HullHi+tol {
			r.ValidityOK = false
		}
	}
	r.AgreementOK = r.FinalSpread <= p.Eps+tol
}

// behaviorEnv derives what Byzantine behaviors are told about the run.
func behaviorEnv(p core.Params) (fault.Env, error) {
	env := fault.Env{N: p.N, Lo: p.Lo, Hi: p.Hi}
	if p.Adaptive {
		// Behaviors still need a horizon to script against; give them a
		// generous one.
		env.Rounds = 128
		return env, nil
	}
	r, err := p.FixedRounds()
	if err != nil {
		return env, err
	}
	env.Rounds = r
	return env, nil
}

func isCrashPlanned(crashes []sim.CrashPlan, id sim.PartyID) bool {
	for _, c := range crashes {
		if c.Party == id {
			return true
		}
	}
	return false
}

// honestDiameter computes the diameter of the current estimates.
func honestDiameter(est []sim.Estimator) (float64, bool) {
	lo, hi := math.Inf(1), math.Inf(-1)
	any := false
	for _, e := range est {
		v, ok := e.Estimate()
		if !ok {
			continue
		}
		any = true
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if !any {
		return 0, false
	}
	return hi - lo, true
}

// --- Input generators ---

// LinearInputs spreads n inputs evenly across [lo, hi] in party order. The
// interpolation is clamped: lo + (hi−lo)·1.0 can exceed hi by one ulp in
// floating point, which a protocol's range check rightly rejects (found by
// the fuzz harness).
func LinearInputs(n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = lo
		return out
	}
	for i := range out {
		v := lo + (hi-lo)*float64(i)/float64(n-1)
		out[i] = math.Min(math.Max(v, lo), hi)
	}
	return out
}

// BimodalInputs gives the low half of the parties lo and the high half hi —
// the worst case for the split-views scheduler.
func BimodalInputs(n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		if i >= n/2 {
			out[i] = hi
		} else {
			out[i] = lo
		}
	}
	return out
}

// UniformInputs draws n inputs uniformly from [lo, hi].
func UniformInputs(n int, lo, hi float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}

// OutlierInputs puts one party at lo and everyone else at hi: the spread is
// carried by a single party, the hardest case for adaptive estimation.
func OutlierInputs(n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = hi
	}
	if n > 0 {
		out[0] = lo
	}
	return out
}

// SortedCopy is a convenience for tests.
func SortedCopy(v []float64) []float64 {
	out := append([]float64(nil), v...)
	sort.Float64s(out)
	return out
}
