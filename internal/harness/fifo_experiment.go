package harness

import (
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// E11FIFO checks a model assumption: some classical presentations assume
// FIFO channels, but the round-tagged protocols here must be agnostic to
// per-link ordering. The experiment runs each protocol under maximally
// reordered delivery ("unordered") and under the same scheduler wrapped
// with per-link FIFO ("fifo"), and compares invariants and costs. The
// scenario layer resolves a fresh scheduler per spec, which is what makes
// the stateful FIFO wrapper safe to fan across engine workers.
func E11FIFO() (*trace.Table, error) {
	tbl := trace.NewTable("E11: FIFO vs unordered channels (linear inputs over [0,1], eps=1e-3)",
		"protocol", "n", "t", "channels", "rounds", "msgs", "final-spread", "ok")
	cases := []struct {
		proto core.Protocol
		n, t  int
	}{
		{core.ProtoCrash, 9, 4},
		{core.ProtoByzTrim, 15, 2},
		{core.ProtoWitness, 7, 2},
	}
	var specs []Spec
	for _, c := range cases {
		for _, channels := range []string{"unordered", "fifo"} {
			p := core.Params{Protocol: c.proto, N: c.n, T: c.t, Eps: 1e-3, Lo: 0, Hi: 1}
			spec, err := SpecFrom(p, LinearInputs(c.n, 0, 1),
				scenario.Spec{Sched: channels, N: c.n, T: c.t}, 31)
			if err != nil {
				return nil, err
			}
			specs = append(specs, spec)
		}
	}
	reps, err := RunAll(specs)
	if err != nil {
		return nil, err
	}
	for i, spec := range specs {
		p, rep := spec.Params, reps[i]
		tbl.AddRow(p.Protocol.String(), trace.I(p.N), trace.I(p.T), spec.Scheduler.Name,
			trace.F(rep.Result.Rounds()), trace.I(rep.Result.Stats.MessagesSent),
			trace.F(rep.FinalSpread), trace.B(rep.OK()))
	}
	return tbl, nil
}
