package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// E14Recovery is the crash-recovery sweep: recovery axis ∈ {lossless
// checkpoint (lag 0), stale checkpoint (lag 30), amnesia at start} × loss
// ∈ {0, 5%} × transport ∈ {raw, reliable}, on the adaptive crash protocol
// at n=9, t=2. Two parties checkpoint, crash mid-run, lose all state newer
// than their checkpoint, and rejoin after a darkness window.
//
// The table quantifies the recovery trade the checkpoint lag buys: with
// lag 0 the rollback discards nothing and the reliable transport's
// retransmissions repair the darkness window, so the run converges like a
// transient partition. With a stale checkpoint the rolled-back party has
// already acknowledged traffic it no longer remembers — no transport can
// retransmit what the peer believes was delivered — and recovery leans
// entirely on the adaptive DECIDED re-announce: decided peers freeze their
// values and re-multicast them at rejoin-visible times, which the reliable
// transport delivers through the darkness. The raw rows show why the
// transport matters: everything sent into the darkness window is simply
// gone, and the rejoined parties wait forever for round traffic nobody
// will repeat.
//
// Every scenario string is canonical and replayable: the same tokens work
// in aarun -scenario, and recovery runs record and replay bit-for-bit
// (checkpoint digests included) through internal/incident bundle v3.
func E14Recovery() (*trace.Table, error) {
	tbl := trace.NewTable("E14: crash-recovery sweep — checkpoint lag vs transport (crash-aa adaptive, n=9, t=2, eps=1e-3, bimodal inputs over [0,100])",
		"scenario", "transport", "decided", "ok", "verdict", "ckpts", "retransmits", "giveups", "msgs")

	const n, t = 9, 2
	axes := []string{
		"recover:2:50:0",  // checkpoint at the kill instant: nothing rolled back
		"recover:2:50:30", // checkpoint 30 ticks stale: acked state is lost
		"amnesia:2:1",     // restart from the zero checkpoint before any delivery
	}
	var scens []scenario.Spec
	for _, axis := range axes {
		for _, loss := range []string{"", "loss:0.05"} {
			s := scenario.Spec{Sched: "random", N: n, T: t, Faults: []string{axis}}
			if loss != "" {
				s.Faults = append(s.Faults, loss)
			}
			scens = append(scens, s)
		}
	}

	type row struct {
		scen     scenario.Spec
		reliable bool
	}
	rows := make([]row, 0, 2*len(scens))
	specs := make([]Spec, 0, 2*len(scens))
	for _, scen := range scens {
		p := core.Params{Protocol: core.ProtoCrash, N: n, T: t, Eps: 1e-3, Lo: 0, Hi: 100,
			Adaptive: true}
		for _, reliable := range []bool{false, true} {
			spec, err := SpecFrom(p, BimodalInputs(n, 0, 100), scen, 17)
			if err != nil {
				return nil, err
			}
			spec.Reliable = reliable
			spec.MaxEvents = 20_000_000
			rows = append(rows, row{scen: scen, reliable: reliable})
			specs = append(specs, spec)
		}
	}

	reps, err := RunAllLabeled(specs, func(i int) string {
		tr := "raw"
		if rows[i].reliable {
			tr = "rel"
		}
		return fmt.Sprintf("E14 %s %s", rows[i].scen, tr)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		rep := reps[i]
		transport := "raw"
		if r.reliable {
			transport = "reliable"
		}
		tbl.AddRow(r.scen.String(), transport,
			trace.I(len(rep.Result.Decisions)), trace.B(rep.OK()), e13Verdict(rep),
			trace.I(len(rep.Checkpoints)),
			trace.I(int(rep.Transport.Retransmits)), trace.I(int(rep.Transport.GiveUps)),
			trace.I(rep.Result.Stats.MessagesSent))
	}
	return tbl, nil
}
