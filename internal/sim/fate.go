package sim

import "math/rand"

// Fate is the full scheduling decision for one send: the delivery delay
// plus the lossy-network outcomes layered on top of it. The zero value of
// the extension fields means "deliver normally", so a plain Scheduler is
// exactly a FateScheduler whose fates never drop or duplicate.
type Fate struct {
	// Delay is the delivery delay of the (primary) copy, clamped by the
	// simulator to [1, MaxDelayCap] like Scheduler.Delay results.
	Delay Time
	// DupExtra, when > 0, delivers a second copy of the message DupExtra
	// ticks after the primary copy. The duplicate shares the envelope
	// (same Seq, same payload bytes), so receive-side dedup can be tested
	// against honest traffic.
	DupExtra Time
	// Drop suppresses delivery entirely: the send is counted (the sender
	// paid for it) but no event is queued. Dropped sends never feed
	// MaxHonestDelay — eventual delivery is measured on messages that are
	// actually delivered.
	Drop bool
}

// FateScheduler is the lossy-network extension of Scheduler. Schedulers
// that implement it decide, per send, whether the message is dropped or
// duplicated in addition to its delay. The simulator detects the
// interface once per Reset; plain Schedulers run the exact pre-fate code
// path, which is what pins the "axes off ⇒ byte-identical" contract.
//
// Determinism contract: every fate decision must be drawn from the rng
// passed in (the run's seeded scheduler stream) — never from wall clock
// or global state — and implementations must consume rng draws in a
// fixed order per send (innermost base delay first, then each wrapper in
// composition order) so that capture/replay and the batched/unbatched
// loops observe identical streams.
type FateScheduler interface {
	Scheduler
	// Fate returns the full scheduling decision for the envelope. The
	// rng is the same stream Delay would have drawn from.
	Fate(env Envelope, now Time, rng *rand.Rand) Fate
}

// FateOf evaluates a scheduler's full decision for one send: the Fate
// method when the scheduler implements FateScheduler, a plain delay draw
// otherwise. The returned Delay is pre-clamped to [1, MaxDelayCap] so
// wrapper schedulers can compute arrival times from it directly.
func FateOf(s Scheduler, env Envelope, now Time, rng *rand.Rand) Fate {
	var f Fate
	if fs, ok := s.(FateScheduler); ok {
		f = fs.Fate(env, now, rng)
	} else {
		f.Delay = s.Delay(env, now, rng)
	}
	if f.Delay < 1 {
		f.Delay = 1
	}
	if f.Delay > MaxDelayCap {
		f.Delay = MaxDelayCap
	}
	return f
}
