package sim

import (
	"errors"
	"math/rand"
	"testing"
)

// constDelay is a trivial scheduler for tests.
type constDelay struct{ d Time }

func (c constDelay) Delay(Envelope, Time, *rand.Rand) Time { return c.d }

// echoProc decides after receiving a fixed number of messages; on Init it
// multicasts one greeting.
type echoProc struct {
	api     API
	need    int
	got     int
	decided float64
}

func (p *echoProc) Init(api API) {
	p.api = api
	api.Multicast([]byte{1})
}

func (p *echoProc) Deliver(from PartyID, data []byte) {
	p.got++
	if p.got >= p.need {
		p.api.Decide(float64(p.api.ID()))
	}
}

func newEchoNet(t *testing.T, n int, cfgMut func(*Config)) (*Network, []*echoProc) {
	t.Helper()
	cfg := Config{N: n, Scheduler: constDelay{d: 5}, Seed: 1}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*echoProc, n)
	for i := 0; i < n; i++ {
		if _, isByz := cfg.Byzantine[PartyID(i)]; isByz {
			continue
		}
		procs[i] = &echoProc{need: n}
		if err := net.SetProcess(PartyID(i), procs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return net, procs
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero parties", Config{N: 0, Scheduler: constDelay{1}}},
		{"nil scheduler", Config{N: 3}},
		{"crash out of range", Config{N: 3, Scheduler: constDelay{1}, Crashes: []CrashPlan{{Party: 3}}}},
		{"negative budget", Config{N: 3, Scheduler: constDelay{1}, Crashes: []CrashPlan{{Party: 0, AfterSends: -1}}}},
		{"double fault", Config{N: 3, Scheduler: constDelay{1},
			Crashes:   []CrashPlan{{Party: 0, AfterSends: 1}},
			Byzantine: map[PartyID]Process{0: &echoProc{}}}},
		{"byz out of range", Config{N: 3, Scheduler: constDelay{1},
			Byzantine: map[PartyID]Process{5: &echoProc{}}}},
		{"nil byz process", Config{N: 3, Scheduler: constDelay{1},
			Byzantine: map[PartyID]Process{1: nil}}},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	good := Config{N: 3, Scheduler: constDelay{1},
		Crashes:   []CrashPlan{{Party: 0, AfterSends: 2}},
		Byzantine: map[PartyID]Process{1: &echoProc{}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if got := good.NumFaulty(); got != 2 {
		t.Errorf("NumFaulty = %d, want 2", got)
	}
}

func TestAllHonestDecide(t *testing.T) {
	net, _ := newEchoNet(t, 4, nil)
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 4 {
		t.Fatalf("got %d decisions, want 4", len(res.Decisions))
	}
	for id, v := range res.Decisions {
		if v != float64(id) {
			t.Errorf("party %d decided %v", id, v)
		}
	}
	if res.MaxHonestDelay != 5 {
		t.Errorf("MaxHonestDelay = %d, want 5", res.MaxHonestDelay)
	}
	// Every delivery happens at time 5 (one hop), so rounds = 1.
	if r := res.Rounds(); r != 1 {
		t.Errorf("Rounds = %v, want 1", r)
	}
	if res.Stats.MessagesSent != 16 {
		t.Errorf("MessagesSent = %d, want 16 (4 multicasts of 4)", res.Stats.MessagesSent)
	}
	if res.Stats.BytesSent != 16 {
		t.Errorf("BytesSent = %d, want 16", res.Stats.BytesSent)
	}
}

func TestCrashTruncatesMulticast(t *testing.T) {
	// Party 0 may send only 2 of its 4 multicast messages: recipients 0 and
	// 1 get the greeting, 2 and 3 never do, so they stall at need=4.
	net, _ := newEchoNet(t, 4, func(cfg *Config) {
		cfg.Crashes = []CrashPlan{{Party: 0, AfterSends: 2}}
	})
	res, err := net.Run()
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if _, ok := res.Decisions[2]; ok {
		t.Error("party 2 decided despite missing a message")
	}
	// Exactly 2 + 3*4 = 14 messages were sent.
	if res.Stats.MessagesSent != 14 {
		t.Errorf("MessagesSent = %d, want 14", res.Stats.MessagesSent)
	}
}

func TestCrashedPartyStopsReceiving(t *testing.T) {
	counts := make([]int, 3)
	net, err := New(Config{N: 3, Scheduler: constDelay{1}, Seed: 1,
		Crashes: []CrashPlan{{Party: 0, AfterSends: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		i := i
		var api API
		if err := net.SetProcess(PartyID(i), &funcProc{
			init: func(a API) { api = a; a.Multicast([]byte{7}) },
			deliver: func(PartyID, []byte) {
				counts[i]++
				if counts[i] == 2 { // greetings from the two live parties
					api.Decide(0)
				}
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if counts[0] != 0 {
		t.Errorf("crashed party received %d deliveries, want 0", counts[0])
	}
	if counts[1] == 0 || counts[2] == 0 {
		t.Errorf("live parties received %d/%d, want >0", counts[1], counts[2])
	}
}

// funcProc adapts closures to Process.
type funcProc struct {
	init    func(API)
	deliver func(PartyID, []byte)
	timer   func(uint64)
}

func (f *funcProc) Init(api API) {
	if f.init != nil {
		f.init(api)
	}
}

func (f *funcProc) Deliver(from PartyID, data []byte) {
	if f.deliver != nil {
		f.deliver(from, data)
	}
}

func (f *funcProc) OnTimer(tag uint64) {
	if f.timer != nil {
		f.timer(tag)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := Config{N: 5, Scheduler: &randomSched{}, Seed: 77}
		net, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := net.SetProcess(PartyID(i), &echoProc{need: 5}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := net.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.FinishTime != b.FinishTime || a.Stats != b.Stats {
		t.Errorf("nondeterministic executions: %+v vs %+v", a, b)
	}
}

type randomSched struct{}

func (randomSched) Delay(_ Envelope, _ Time, rng *rand.Rand) Time {
	return Time(rng.Int63n(20) + 1)
}

func TestDelayClamping(t *testing.T) {
	// Scheduler returning absurd delays gets clamped into [1, MaxDelayCap].
	net, err := New(Config{N: 2, Scheduler: constDelay{d: -100}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := net.SetProcess(PartyID(i), &echoProc{need: 2}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxHonestDelay != 1 {
		t.Errorf("negative delay not clamped to 1: %d", res.MaxHonestDelay)
	}

	net2, err := New(Config{N: 2, Scheduler: constDelay{d: MaxDelayCap * 10}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := net2.SetProcess(PartyID(i), &echoProc{need: 2}); err != nil {
			t.Fatal(err)
		}
	}
	res2, err := net2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.MaxHonestDelay != MaxDelayCap {
		t.Errorf("oversized delay not clamped to cap: %d", res2.MaxHonestDelay)
	}
}

func TestTimer(t *testing.T) {
	var fired []uint64
	net, err := New(Config{N: 1, Scheduler: constDelay{1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	proc := &funcProc{}
	proc.init = func(api API) {
		api.SetTimer(10, 1)
		api.SetTimer(5, 2)
	}
	proc.timer = func(tag uint64) {
		fired = append(fired, tag)
		if len(fired) == 2 {
			// Timers fire in time order: 2 (t=5) before 1 (t=10).
			net.parties[0].Decide(0)
		}
	}
	if err := net.SetProcess(0, proc); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 1 {
		t.Errorf("timer order = %v, want [2 1]", fired)
	}
}

func TestEventBudget(t *testing.T) {
	// Two processes ping-pong forever; the budget must stop them.
	mk := func() Process {
		return &funcProc{
			init:    func(api API) { api.Multicast([]byte{0}) },
			deliver: func(from PartyID, _ []byte) {},
		}
	}
	pingPong := &funcProc{}
	var api0 API
	pingPong.init = func(api API) { api0 = api; api.Send(1, []byte{0}) }
	pingPong.deliver = func(PartyID, []byte) { api0.Send(1, []byte{0}) }
	pong := &funcProc{}
	var api1 API
	pong.init = func(api API) { api1 = api }
	pong.deliver = func(PartyID, []byte) { api1.Send(0, []byte{0}) }

	net, err := New(Config{N: 2, Scheduler: constDelay{1}, Seed: 1, MaxEvents: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetProcess(0, pingPong); err != nil {
		t.Fatal(err)
	}
	if err := net.SetProcess(1, pong); err != nil {
		t.Fatal(err)
	}
	_ = mk
	if _, err := net.Run(); !errors.Is(err, ErrEventBudget) {
		t.Fatalf("err = %v, want ErrEventBudget", err)
	}
}

func TestStallWhenNoTraffic(t *testing.T) {
	net, err := New(Config{N: 2, Scheduler: constDelay{1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := net.SetProcess(PartyID(i), &funcProc{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Run(); !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

func TestSetProcessErrors(t *testing.T) {
	net, err := New(Config{N: 2, Scheduler: constDelay{1}, Seed: 1,
		Byzantine: map[PartyID]Process{1: &echoProc{}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetProcess(5, &echoProc{}); err == nil {
		t.Error("out-of-range party accepted")
	}
	if err := net.SetProcess(1, &echoProc{}); err == nil {
		t.Error("byzantine party process overwrite accepted")
	}
	if err := net.SetProcess(0, nil); err == nil {
		t.Error("nil process accepted")
	}
	if _, err := net.Run(); err == nil {
		t.Error("run with missing process accepted")
	}
}

func TestObserverAndNow(t *testing.T) {
	net, _ := newEchoNet(t, 3, nil)
	var observed int
	var lastTime Time
	net.SetObserver(func(now Time, env Envelope) {
		observed++
		if now < lastTime {
			t.Error("time went backwards")
		}
		lastTime = now
		if net.Now() != now {
			t.Error("Now() disagrees with observer time")
		}
	})
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if observed != res.Stats.MessagesDelivered {
		t.Errorf("observer saw %d deliveries, stats say %d", observed, res.Stats.MessagesDelivered)
	}
}

func TestDecideIdempotent(t *testing.T) {
	net, err := New(Config{N: 1, Scheduler: constDelay{1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetProcess(0, &funcProc{init: func(api API) {
		api.Decide(1)
		api.Decide(2) // ignored
	}}); err != nil {
		t.Fatal(err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions[0] != 1 {
		t.Errorf("decision = %v, want first value 1", res.Decisions[0])
	}
}

func TestHonestSpreadAndDecisions(t *testing.T) {
	res := &Result{
		Decisions: map[PartyID]float64{0: 3, 1: 1, 2: 5, 3: 100},
		Honest:    []PartyID{0, 1, 2},
	}
	d := res.HonestDecisions()
	if len(d) != 3 || d[0] != 1 || d[2] != 5 {
		t.Errorf("HonestDecisions = %v", d)
	}
	if s := res.HonestSpread(); s != 4 {
		t.Errorf("HonestSpread = %v, want 4", s)
	}
	empty := &Result{Decisions: map[PartyID]float64{}, Honest: []PartyID{0}}
	if s := empty.HonestSpread(); s != 0 {
		t.Errorf("empty spread = %v, want 0", s)
	}
}

func TestByzantinePartyRuns(t *testing.T) {
	// The byzantine replacement process runs and can disturb the others,
	// but its faulty stats are separated.
	byz := &funcProc{init: func(api API) {
		api.Multicast([]byte{9, 9, 9})
	}}
	net, err := New(Config{N: 3, Scheduler: constDelay{1}, Seed: 1,
		Byzantine: map[PartyID]Process{2: byz}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := net.SetProcess(PartyID(i), &echoProc{need: 3}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Honest) != 2 {
		t.Errorf("Honest = %v, want [0 1]", res.Honest)
	}
	if res.Stats.HonestMessagesSent != 6 {
		t.Errorf("HonestMessagesSent = %d, want 6", res.Stats.HonestMessagesSent)
	}
	if res.Stats.MessagesSent != 9 {
		t.Errorf("MessagesSent = %d, want 9", res.Stats.MessagesSent)
	}
}

func TestHeapOrdering(t *testing.T) {
	var h eventHeap
	times := []Time{9, 3, 7, 3, 1, 8, 1}
	for i, at := range times {
		h.Push(event{at: at, env: Envelope{Seq: uint64(i)}})
	}
	var got []Time
	var seqs []uint64
	for h.Len() > 0 {
		e := h.Pop()
		got = append(got, e.at)
		seqs = append(seqs, e.env.Seq)
	}
	want := []Time{1, 1, 3, 3, 7, 8, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heap order %v, want %v", got, want)
		}
	}
	// Equal times pop in send order (seq): the two at=1 events are seqs 4,6
	// and the two at=3 events are seqs 1,3.
	if seqs[0] != 4 || seqs[1] != 6 || seqs[2] != 1 || seqs[3] != 3 {
		t.Errorf("tiebreak order %v", seqs)
	}
}
