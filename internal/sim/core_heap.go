//go:build simheap

package sim

// defaultEventCore under the simheap build tag: the binary-heap reference
// core, kept switchable until (and after) the calendar queue's equivalence
// tests pinned byte-identical traces.
const defaultEventCore = CoreHeap
