// Package sim provides a deterministic discrete-event simulator for fully
// asynchronous message-passing networks, the substrate on which all
// approximate-agreement protocols in this repository run.
//
// The model matches the classical asynchronous setting: n parties, fully
// connected by reliable authenticated point-to-point channels. An adversarial
// Scheduler chooses a finite delivery delay for every message; messages
// between non-faulty parties are always delivered eventually, in an order of
// the scheduler's choosing. There are no synchronized clocks; "virtual time"
// exists only in the simulator so that asynchronous round complexity can be
// measured after the fact (time of last output divided by the maximum delay
// experienced by an honest-to-honest message).
//
// Faults are injected through the Config: a crashed party stops sending and
// receiving at an adversary-chosen point (possibly in the middle of a
// multicast, so only a subset of recipients get the message), while a
// Byzantine party is replaced wholesale by an adversarial Process.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
)

// PartyID identifies a party; IDs are dense in [0, N).
type PartyID int

// Time is a virtual-time instant measured in abstract ticks. Only ratios of
// Time values are meaningful (round complexity is time/maxDelay).
type Time int64

// Envelope is a message in flight.
type Envelope struct {
	From PartyID
	To   PartyID
	// Data is the wire-encoded payload; its length is the bit-complexity
	// unit. It aliases the simulator's recycled payload arena: it is valid
	// during the delivery (and observer) callback only, and must be copied
	// by anything that retains it past the callback.
	Data []byte
	Sent Time   // virtual time at which the sender issued the message
	Seq  uint64 // global send sequence number (deterministic tiebreak)
}

// API is the interface a Process uses to interact with the network. It is
// implemented by the simulator and by the live goroutine runtime
// (internal/livenet), so protocol code is runtime-agnostic.
type API interface {
	// ID returns the party's own identifier.
	ID() PartyID
	// N returns the total number of parties.
	N() int
	// Send transmits data to a single party. Delivery is eventual but the
	// delay and ordering are adversarial. Sending to oneself is allowed and
	// goes through the scheduler like any other message.
	Send(to PartyID, data []byte)
	// Multicast sends data to every party, including the sender itself.
	// It is not atomic: a crash can truncate it part-way through.
	Multicast(data []byte)
	// Decide reports the party's protocol output. Only the first call per
	// party is recorded; later calls are ignored.
	Decide(value float64)
	// SetTimer schedules OnTimer(tag) on the calling party after delay
	// virtual-time ticks. Timers are local clocks: the scheduler cannot
	// interfere with them. Only synchronous protocols use timers; a fully
	// asynchronous protocol must not rely on them.
	SetTimer(delay Time, tag uint64)
	// Rand returns a per-party deterministic random source (for protocols
	// or adversaries that randomize; honest protocols here do not).
	Rand() *rand.Rand
}

// TimerHandler is implemented by processes that use API.SetTimer.
type TimerHandler interface {
	// OnTimer fires a previously set timer.
	OnTimer(tag uint64)
}

// Process is a deterministic reactive state machine driven by the network.
// Implementations must not retain the API past Stop, must not block, and
// must do all communication through the provided API.
type Process interface {
	// Init is called exactly once before any delivery, with the party's API.
	Init(api API)
	// Deliver is called once per received message, in scheduler order.
	Deliver(from PartyID, data []byte)
}

// Estimator is an optional interface protocols implement so the harness can
// record convergence trajectories (current value estimates) mid-execution.
type Estimator interface {
	// Estimate returns the party's current approximation and true if the
	// party holds one (false before initialization completes).
	Estimate() (float64, bool)
}

// Scheduler decides the delivery delay of every message and therefore the
// entire asynchronous interleaving. Implementations live in internal/sched.
type Scheduler interface {
	// Delay returns the delivery delay (>= 1 tick) for the envelope sent at
	// the given time. The simulator clamps the result to [1, MaxDelayCap] to
	// preserve eventual delivery.
	Delay(env Envelope, now Time, rng *rand.Rand) Time
}

// MaxDelayCap bounds any single message delay so that eventual delivery can
// never be violated by a buggy or adversarial Scheduler.
const MaxDelayCap Time = 1 << 20

// CrashPlan describes when a crash-faulty party dies: after it has issued
// AfterSends point-to-point sends (a multicast counts as N sends, so a crash
// can truncate a multicast). A crashed party neither sends nor receives.
type CrashPlan struct {
	Party      PartyID
	AfterSends int
}

// Config assembles a single simulated execution.
type Config struct {
	// N is the number of parties; must be >= 1.
	N int
	// Scheduler orders message deliveries. Required.
	Scheduler Scheduler
	// Seed feeds all randomness (scheduler choices, per-party sources).
	Seed int64
	// Crashes lists crash faults. Crashed parties count as non-faulty for
	// validity (they never lie) but as faulty for resilience accounting.
	Crashes []CrashPlan
	// Byzantine maps a party to a replacement adversarial process.
	Byzantine map[PartyID]Process
	// Restarts lists crash-recovery episodes (checkpoint, crash, rejoin).
	// Restarting parties must be distinct from crash and Byzantine parties
	// and their processes must support checkpointing (core.Snapshotter).
	Restarts []RestartPlan
	// MaxEvents aborts runaway executions; 0 means a generous default.
	MaxEvents int
	// Core selects the event-queue implementation (CoreDefault resolves to
	// the build's default). The cores are trace-equivalent; the switch
	// exists for the equivalence tests and performance comparisons.
	Core EventCore
	// Batch selects between batched tick delivery (the default: each
	// party receives its whole tick through one DeliverBatch call) and
	// the per-envelope reference loop. Results, stats, and the observed
	// delivery sequence are identical across the modes; the one nuance is
	// that a dense tick's observer callbacks replay at tick end, so an
	// observer that reads live simulation state sees end-of-tick state
	// (see Network.fireObservers — tick-boundary state is identical in
	// both modes). The switch exists for the equivalence tests and A/B
	// benchmarks, like Core.
	Batch BatchMode
	// Shards selects intra-run sharding of batched tick delivery: parties
	// are partitioned into this many contiguous shards and a dense tick's
	// per-destination groups are drained by one worker per shard, merged
	// deterministically at the tick-end barrier (see shard.go). 0 means
	// auto — min(GOMAXPROCS, N/shardAutoParties), so small runs stay on
	// the sequential path — and 1 forces the sequential reference path.
	// Tables, stats, delivery traces, and rng streams are identical at
	// every shard count; the switch exists for the equivalence tests and
	// scaling benchmarks, like Core and Batch. Sharding applies only to
	// batched delivery (Batch on): the per-envelope reference loop is
	// always sequential.
	Shards int
}

// Sentinel errors returned by Run.
var (
	// ErrStalled is returned when the event queue drains before every
	// non-faulty party has decided: the protocol lost liveness.
	ErrStalled = errors.New("sim: execution stalled before all honest parties decided")
	// ErrEventBudget is returned when MaxEvents deliveries happen without
	// termination, which almost always indicates a livelock.
	ErrEventBudget = errors.New("sim: event budget exhausted")
)

// Validate checks structural soundness of the configuration.
func (c *Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("sim: config: N = %d, need >= 1", c.N)
	}
	if c.Scheduler == nil {
		return errors.New("sim: config: nil Scheduler")
	}
	if c.Core < CoreDefault || c.Core > CoreHeap {
		return fmt.Errorf("sim: config: unknown event core %d", c.Core)
	}
	if c.Batch < BatchDefault || c.Batch > BatchOff {
		return fmt.Errorf("sim: config: unknown batch mode %d", c.Batch)
	}
	if c.Shards < 0 {
		return fmt.Errorf("sim: config: Shards = %d, need >= 0 (0 = auto)", c.Shards)
	}
	// The duplicate-fault scan is quadratic in the crash count instead of
	// building a set: fault lists are bounded by the protocol fault bound,
	// and Validate runs once per (possibly recycled) execution, so staying
	// allocation-free matters more than asymptotics here.
	for i, cr := range c.Crashes {
		if cr.Party < 0 || int(cr.Party) >= c.N {
			return fmt.Errorf("sim: config: crash party %d out of range [0,%d)", cr.Party, c.N)
		}
		if cr.AfterSends < 0 {
			return fmt.Errorf("sim: config: crash party %d has negative send budget", cr.Party)
		}
		for _, prev := range c.Crashes[:i] {
			if prev.Party == cr.Party {
				return fmt.Errorf("sim: config: party %d assigned two faults", cr.Party)
			}
		}
	}
	for i, rp := range c.Restarts {
		if rp.Party < 0 || int(rp.Party) >= c.N {
			return fmt.Errorf("sim: config: restart party %d out of range [0,%d)", rp.Party, c.N)
		}
		if rp.Down < 1 || rp.Down < rp.Checkpoint {
			return fmt.Errorf("sim: config: restart party %d: down time %d before checkpoint %d", rp.Party, rp.Down, rp.Checkpoint)
		}
		if rp.Rejoin <= rp.Down {
			return fmt.Errorf("sim: config: restart party %d: rejoin %d not after down %d", rp.Party, rp.Rejoin, rp.Down)
		}
		for _, prev := range c.Restarts[:i] {
			if prev.Party == rp.Party {
				return fmt.Errorf("sim: config: party %d assigned two restart plans", rp.Party)
			}
		}
		for _, cr := range c.Crashes {
			if cr.Party == rp.Party {
				return fmt.Errorf("sim: config: party %d assigned two faults", rp.Party)
			}
		}
	}
	for p, proc := range c.Byzantine {
		for _, rp := range c.Restarts {
			if rp.Party == p {
				return fmt.Errorf("sim: config: party %d assigned two faults", p)
			}
		}
		if p < 0 || int(p) >= c.N {
			return fmt.Errorf("sim: config: byzantine party %d out of range [0,%d)", p, c.N)
		}
		if proc == nil {
			return fmt.Errorf("sim: config: byzantine party %d has nil process", p)
		}
		for _, cr := range c.Crashes {
			if cr.Party == p {
				return fmt.Errorf("sim: config: party %d assigned two faults", p)
			}
		}
	}
	return nil
}

// NumFaulty returns the number of parties with any fault assignment.
func (c *Config) NumFaulty() int { return len(c.Crashes) + len(c.Byzantine) }
