package sim

import (
	"errors"
	"math/rand"
	"testing"
)

// This file pins the batched tick-delivery core to the per-envelope
// reference loop: identical delivery traces, stats, decisions, and errors
// across schedulers (including rng-consuming ones), crash plans, timers,
// mid-tick run completion, and event-budget aborts — the simulator-level
// form of the byte-identical-tables contract in internal/harness.

// chattyProc reacts to every delivery with a point-to-point reply and a
// periodic multicast, uses a timer, and decides after a message quota — a
// dense mix of every API call the batching layer defers.
type chattyProc struct {
	api   API
	need  int
	got   int
	burst int
	buf   [3]byte
}

func (p *chattyProc) Init(api API) {
	p.api = api
	p.buf = [3]byte{byte(api.ID()), 0, 0}
	api.Multicast(p.buf[:])
	api.SetTimer(7, 42)
}

func (p *chattyProc) Deliver(from PartyID, data []byte) {
	p.got++
	if p.got >= p.need {
		p.api.Decide(float64(p.api.ID()) + 0.5)
		return
	}
	p.buf[1] = byte(p.got)
	p.api.Send(from, p.buf[:])
	if p.got%5 == 0 {
		p.api.Multicast(p.buf[:])
	}
}

func (p *chattyProc) OnTimer(tag uint64) {
	p.burst++
	if p.burst < 3 {
		p.buf[2] = byte(p.burst)
		p.api.Multicast(p.buf[:])
		p.api.SetTimer(5, tag)
	}
}

// batchRecord is one observed delivery.
type batchRecord struct {
	Now      Time
	From, To PartyID
	Seq      uint64
	Len      int
}

// runBatchTrace executes a chatty mesh under the given scheduler and batch
// mode and returns the delivery trace, result, and run error.
func runBatchTrace(t *testing.T, sched Scheduler, mode BatchMode, mut func(*Config)) ([]batchRecord, *Result, error) {
	t.Helper()
	cfg := Config{N: 6, Scheduler: sched, Seed: 11, Batch: mode}
	if mut != nil {
		mut(&cfg)
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var trace []batchRecord
	net.SetObserver(func(now Time, env Envelope) {
		trace = append(trace, batchRecord{Now: now, From: env.From, To: env.To, Seq: env.Seq, Len: len(env.Data)})
	})
	for i := 0; i < cfg.N; i++ {
		if _, isByz := cfg.Byzantine[PartyID(i)]; isByz {
			continue
		}
		if err := net.SetProcess(PartyID(i), &chattyProc{need: 40}); err != nil {
			t.Fatal(err)
		}
	}
	res, runErr := net.Run()
	return trace, res, runErr
}

// TestBatchModeTraceEquivalence asserts event-for-event identical delivery
// traces, stats, and decisions between batched and unbatched delivery
// across a scheduler matrix that includes shared-rng draws (UniformRandom-
// style) and crash plans that truncate multicasts mid-tick.
func TestBatchModeTraceEquivalence(t *testing.T) {
	randSched := func(Envelope, Time, *rand.Rand) Time { return 0 } // placeholder
	_ = randSched
	scheds := map[string]func() Scheduler{
		"const":  func() Scheduler { return constDelay{d: 5} },
		"random": func() Scheduler { return rngSched{max: 9} },
		"skewed": func() Scheduler { return fromSched{} },
	}
	muts := map[string]func(*Config){
		"fault-free": nil,
		"crash": func(cfg *Config) {
			cfg.Crashes = []CrashPlan{{Party: 1, AfterSends: 9}, {Party: 4, AfterSends: 20}}
		},
	}
	for sname, mk := range scheds {
		for mname, mut := range muts {
			t.Run(sname+"/"+mname, func(t *testing.T) {
				offTrace, offRes, offErr := runBatchTrace(t, mk(), BatchOff, mut)
				onTrace, onRes, onErr := runBatchTrace(t, mk(), BatchOn, mut)
				if !errors.Is(onErr, offErr) && !(onErr == nil && offErr == nil) {
					t.Fatalf("errors diverge: off %v, on %v", offErr, onErr)
				}
				if len(offTrace) != len(onTrace) {
					t.Fatalf("trace lengths diverge: off %d, on %d", len(offTrace), len(onTrace))
				}
				for i := range offTrace {
					if offTrace[i] != onTrace[i] {
						t.Fatalf("delivery %d diverges: off %+v, on %+v", i, offTrace[i], onTrace[i])
					}
				}
				if offRes.Stats != onRes.Stats {
					t.Fatalf("stats diverge: off %+v, on %+v", offRes.Stats, onRes.Stats)
				}
				if offRes.FinishTime != onRes.FinishTime || offRes.MaxHonestDelay != onRes.MaxHonestDelay {
					t.Fatalf("timing diverges: off (%d,%d), on (%d,%d)",
						offRes.FinishTime, offRes.MaxHonestDelay, onRes.FinishTime, onRes.MaxHonestDelay)
				}
				if len(offRes.Decisions) != len(onRes.Decisions) {
					t.Fatal("decision counts diverge")
				}
				for id, v := range offRes.Decisions {
					if onRes.Decisions[id] != v || onRes.DecidedAt[id] != offRes.DecidedAt[id] {
						t.Fatalf("party %d decision diverges", id)
					}
				}
			})
		}
	}
}

// rngSched draws every delay from the shared rng: the serial dependency
// that forces the batched loop to flush deferred sends in trigger order.
type rngSched struct{ max int64 }

func (s rngSched) Delay(_ Envelope, _ Time, rng *rand.Rand) Time {
	return 1 + Time(rng.Int63n(s.max))
}

// fromSched gives each sender a different deterministic delay, spreading a
// multicast's envelopes across many ticks (staggered-style).
type fromSched struct{}

func (fromSched) Delay(env Envelope, _ Time, _ *rand.Rand) Time {
	return 1 + Time(env.From)*2
}

// TestBatchModeBudgetEquivalence pins the event-budget abort: the batched
// loop must abort at the exact same event, with identical partial stats,
// which it does by handing the budget-tripping tick to the reference loop.
func TestBatchModeBudgetEquivalence(t *testing.T) {
	for _, budget := range []int{1, 7, 23, 50} {
		mut := func(cfg *Config) { cfg.MaxEvents = budget }
		offTrace, offRes, offErr := runBatchTrace(t, constDelay{d: 3}, BatchOff, mut)
		onTrace, onRes, onErr := runBatchTrace(t, constDelay{d: 3}, BatchOn, mut)
		if !errors.Is(offErr, ErrEventBudget) {
			t.Fatalf("budget %d: reference run did not trip the budget: %v", budget, offErr)
		}
		if !errors.Is(onErr, ErrEventBudget) {
			t.Fatalf("budget %d: batched run error %v, want ErrEventBudget", budget, onErr)
		}
		if len(offTrace) != len(onTrace) {
			t.Fatalf("budget %d: trace lengths diverge: off %d, on %d", budget, len(offTrace), len(onTrace))
		}
		for i := range offTrace {
			if offTrace[i] != onTrace[i] {
				t.Fatalf("budget %d: delivery %d diverges", budget, i)
			}
		}
		if offRes.Stats != onRes.Stats {
			t.Fatalf("budget %d: partial stats diverge: off %+v, on %+v", budget, offRes.Stats, onRes.Stats)
		}
	}
}

// lateDecider decides on its quota like chattyProc but keeps talking
// afterward only through messages already in flight, so runs routinely end
// in the middle of a dense tick — exercising the completion repair (the
// batched loop's stats and send stream must match the reference loop's
// early exit exactly). The scenario already occurs in the equivalence
// matrix above; this test makes the mid-tick ending certain by having all
// parties decide at the same tick under a constant-delay scheduler.
func TestBatchModeMidTickCompletion(t *testing.T) {
	run := func(mode BatchMode) (*Result, Stats) {
		cfg := Config{N: 8, Scheduler: constDelay{d: 4}, Seed: 3, Batch: mode}
		net, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cfg.N; i++ {
			if err := net.SetProcess(PartyID(i), &chattyProc{need: 25}); err != nil {
				t.Fatal(err)
			}
		}
		res, runErr := net.Run()
		if runErr != nil {
			t.Fatalf("run failed: %v", runErr)
		}
		return res, res.Stats
	}
	offRes, offStats := run(BatchOff)
	onRes, onStats := run(BatchOn)
	if offStats != onStats {
		t.Fatalf("stats diverge: off %+v, on %+v", offStats, onStats)
	}
	if offRes.FinishTime != onRes.FinishTime {
		t.Fatalf("finish time diverges: off %d, on %d", offRes.FinishTime, onRes.FinishTime)
	}
	for id, v := range offRes.Decisions {
		if onRes.Decisions[id] != v {
			t.Fatalf("party %d decision diverges", id)
		}
	}
}

// batchEcho is an echoProc that opts into DeliverBatch, counting batch
// calls so the test can assert batching actually engaged.
type batchEcho struct {
	echoProc
	batches int
}

func (p *batchEcho) DeliverBatch(b *Batch) {
	p.batches++
	for env := b.Next(); env != nil; env = b.Next() {
		p.echoProc.Deliver(env.From, env.Data)
	}
}

// TestBatchProcessDispatch checks that a BatchProcess receives its whole
// tick in one DeliverBatch call (with per-envelope results identical to
// the shim) and that unconsumed envelopes are drained by the runtime.
func TestBatchProcessDispatch(t *testing.T) {
	const n = 5
	cfg := Config{N: n, Scheduler: constDelay{d: 2}, Seed: 9}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*batchEcho, n)
	for i := 0; i < n; i++ {
		procs[i] = &batchEcho{echoProc: echoProc{need: n}}
		if err := net.SetProcess(PartyID(i), procs[i]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != n {
		t.Fatalf("got %d decisions, want %d", len(res.Decisions), n)
	}
	for i, p := range procs {
		// All n greetings land at tick 2 in one batch per party.
		if p.batches != 1 {
			t.Errorf("party %d saw %d batch calls, want 1", i, p.batches)
		}
		if p.got != n {
			t.Errorf("party %d got %d deliveries, want %d", i, p.got, n)
		}
	}
}

// partialBatch consumes only the first envelope of every batch; the
// runtime must drain the rest so behavior matches full consumption.
type partialBatch struct{ echoProc }

func (p *partialBatch) DeliverBatch(b *Batch) {
	if env := b.Next(); env != nil {
		p.echoProc.Deliver(env.From, env.Data)
	}
}

func TestBatchPartialConsumerDrained(t *testing.T) {
	const n = 5
	net, err := New(Config{N: n, Scheduler: constDelay{d: 2}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := net.SetProcess(PartyID(i), &partialBatch{echoProc{need: n}}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != n {
		t.Fatalf("got %d decisions, want %d (drain must deliver unconsumed envelopes)", len(res.Decisions), n)
	}
	if res.Stats.MessagesDelivered != n*n {
		t.Fatalf("MessagesDelivered = %d, want %d", res.Stats.MessagesDelivered, n*n)
	}
}
