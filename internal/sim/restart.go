package sim

import (
	"fmt"

	"repro/internal/checkpoint"
)

// RestartPlan schedules a crash-recovery episode for one party: a state
// snapshot at virtual time Checkpoint, a crash at Down that discards
// everything newer than the snapshot, and a rejoin at Rejoin that restores
// the checkpoint and runs the protocol's catch-up hook.
//
// The plan models STATE loss only. It does not darken the network: a party
// between Down and Rejoin still receives (into state the restore is about
// to discard) and still reacts. Callers that want communication darkness —
// the realistic composition — layer a lossy-network fate over the same
// window (internal/fault.Outage), which the scenario layer's recover axis
// does. Keeping the two concerns separate keeps the per-event hot path
// free of any restart check: plans act only at tick boundaries.
type RestartPlan struct {
	// Party is the party that crashes and recovers.
	Party PartyID
	// Checkpoint is the virtual time at which the snapshot is taken.
	// Values <= 0 snapshot the post-Init state before any delivery — the
	// "zero checkpoint" an amnesiac restart recovers from.
	Checkpoint Time
	// Down is when the crash fires; state newer than the checkpoint is
	// lost. Must be >= Checkpoint and >= 1.
	Down Time
	// Rejoin is when the party restores the checkpoint and re-enters the
	// protocol. Must be > Down.
	Rejoin Time
}

// snapshotter is the process extension restart plans require. It is the
// structural mirror of core.Snapshotter (core imports sim, so sim cannot
// name the exported interface); process wrappers forward it to keep the
// inner protocol recoverable.
type snapshotter interface {
	// Snapshot appends the process's full volatile state to buf.
	Snapshot(buf []byte) ([]byte, error)
	// Restore replaces the process's state with a snapshot's.
	Restore(data []byte) error
	// Rejoin re-issues the idempotent traffic a restarted party needs to
	// catch back up (current-round re-send, decided re-announce).
	Rejoin()
}

// Restart action kinds, in intra-tick firing order: a snapshot scheduled
// at the same instant as a crash captures the pre-crash state.
const (
	restartSnap = iota
	restartDown
	restartRejoin
)

// restartAction is one step of a restart plan, resolved at Reset into the
// network's time-sorted action list.
type restartAction struct {
	at    Time
	plan  int32 // index into cfg.Restarts / planSnaps
	party PartyID
	kind  int8
}

// resetRestarts rebuilds the action list from the new config, recycling
// the list, the per-plan snapshot buffers, and the digest log.
func (n *Network) resetRestarts() {
	n.ractions = n.ractions[:0]
	n.rnext = 0
	n.ckptDigests = n.ckptDigests[:0]
	for len(n.planSnaps) < len(n.cfg.Restarts) {
		n.planSnaps = append(n.planSnaps, nil)
	}
	for i, rp := range n.cfg.Restarts {
		ckpt := rp.Checkpoint
		if ckpt < 0 {
			ckpt = 0
		}
		n.planSnaps[i] = n.planSnaps[i][:0]
		n.ractions = append(n.ractions,
			restartAction{at: ckpt, plan: int32(i), party: rp.Party, kind: restartSnap},
			restartAction{at: rp.Down, plan: int32(i), party: rp.Party, kind: restartDown},
			restartAction{at: rp.Rejoin, plan: int32(i), party: rp.Party, kind: restartRejoin})
	}
	// Insertion sort: the list is three actions per plan and the ordering
	// key is total (at, kind, party), so this stays allocation-free where
	// sort.Slice's closure would cost the warm path its zero-alloc budget.
	for i := 1; i < len(n.ractions); i++ {
		for j := i; j > 0 && restartActionLess(n.ractions[j], n.ractions[j-1]); j-- {
			n.ractions[j], n.ractions[j-1] = n.ractions[j-1], n.ractions[j]
		}
	}
}

// restartActionLess orders the action list by (time, kind, party).
func restartActionLess(a, b restartAction) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.party < b.party
}

// fireRestarts runs every pending restart action scheduled at or before
// the current virtual time. Both run loops call it right after advancing
// n.now to a new tick (before the tick's deliveries) and from the stall
// branch, so actions fire at identical state points in the batched and
// unbatched loops — tick-boundary state is mode-invariant by the batching
// equivalence contract.
func (n *Network) fireRestarts() error {
	for n.rnext < len(n.ractions) && n.ractions[n.rnext].at <= n.now {
		a := n.ractions[n.rnext]
		n.rnext++
		if err := n.fireRestart(a); err != nil {
			return err
		}
	}
	return nil
}

// restartsPending reports whether un-fired restart actions remain; the
// stall branches use it to revive a drained run by advancing virtual time
// to the next action instead of declaring ErrStalled.
func (n *Network) restartsPending() bool { return n.rnext < len(n.ractions) }

// advanceToRestart jumps virtual time to the next pending restart action
// and fires everything due there. Only the stall branches call it: the
// queue is empty, so no delivery can be bypassed by the jump.
func (n *Network) advanceToRestart() error {
	if t := n.ractions[n.rnext].at; t > n.now {
		n.now = t
	}
	return n.fireRestarts()
}

func (n *Network) fireRestart(a restartAction) error {
	ps := n.parties[a.party]
	sn, ok := ps.proc.(snapshotter)
	if !ok {
		return fmt.Errorf("sim: restart plan for party %d: process %T does not support checkpointing", a.party, ps.proc)
	}
	switch a.kind {
	case restartSnap:
		buf, err := sn.Snapshot(n.planSnaps[a.plan][:0])
		if err != nil {
			return fmt.Errorf("sim: checkpoint party %d at t=%d: %w", a.party, n.now, err)
		}
		n.planSnaps[a.plan] = buf
		n.ckptDigests = append(n.ckptDigests, checkpoint.Digest(buf))
	case restartDown:
		// The crash wipes any decision newer than the checkpoint; the
		// party is pending again until it re-decides after the rejoin.
		// FinishTime stays monotone: the re-decision lands at a later
		// virtual time than the forgotten one.
		n.undecide(a.party)
	case restartRejoin:
		n.undecide(a.party)
		if err := sn.Restore(n.planSnaps[a.plan]); err != nil {
			return fmt.Errorf("sim: restore party %d at t=%d: %w", a.party, n.now, err)
		}
		sn.Rejoin()
	}
	return nil
}

// undecide retracts a party's recorded decision (crash-induced memory
// loss). A non-faulty party re-enters the pending-honest count, so the run
// keeps executing until the recovered party decides again.
func (n *Network) undecide(p PartyID) {
	if !n.decided[p] {
		return
	}
	n.decided[p] = false
	n.decision[p] = 0
	n.decidedAt[p] = 0
	if !n.faulty[p] {
		n.pendingHonest++
	}
}

// CheckpointDigests returns one content digest per checkpoint taken during
// the run, in firing order. The incident layer records them so a replay
// can pin snapshot bytes without storing the snapshots themselves. The
// slice aliases run state: copy it to retain past the next Reset.
func (n *Network) CheckpointDigests() []uint64 { return n.ckptDigests }
