package sim

// event is a scheduled delivery or timer expiry.
type event struct {
	at    Time
	env   Envelope
	timer bool
	tag   uint64
}

// eventHeap is a binary min-heap ordered by (delivery time, send sequence).
// The sequence tiebreak makes executions fully deterministic for a given
// scheduler and seed. A hand-rolled heap (rather than container/heap) avoids
// per-operation interface allocations in the simulator's hot loop.
//
// The heap is the reference event core (sim.CoreHeap); the calendar queue
// in calendar.go replaces it on the hot path and is pinned trace-equivalent
// by the core-equivalence tests.
type eventHeap struct {
	items []event
}

var _ eventQueue = (*eventHeap)(nil)

// PopTick implements eventQueue: it pops every event at the earliest
// pending tick, in Seq order (the heap's tiebreak).
func (h *eventHeap) PopTick(buf []event) []event {
	if len(h.items) == 0 {
		return buf
	}
	t := h.items[0].at
	for len(h.items) > 0 && h.items[0].at == t {
		buf = append(buf, h.Pop())
	}
	return buf
}

func (h *eventHeap) Len() int { return len(h.items) }

// Reset implements eventQueue: it empties the heap, keeping the backing
// array but dropping the payload references of any still-pending events.
func (h *eventHeap) Reset() {
	for i := range h.items {
		h.items[i] = event{}
	}
	h.items = h.items[:0]
}

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.env.Seq < b.env.Seq
}

// Push inserts an event.
func (h *eventHeap) Push(e event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// Pop removes and returns the earliest event. It must not be called on an
// empty heap.
func (h *eventHeap) Pop() event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	h.siftDown(0)
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.items)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(left, smallest) {
			smallest = left
		}
		if right < n && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
