package sim

import "slices"

// This file is the batched tick-delivery core. The run loop already drains
// one virtual-time tick per PopTick; here the tick's events are grouped by
// destination in a reusable staging arena and each party receives its whole
// tick in one DeliverBatch call, so a party's protocol state is touched once
// per tick (cache-dense at large n) instead of being round-robined against
// every other party's state per envelope.
//
// Equivalence contract. Batched delivery is observably IDENTICAL to the
// per-envelope loop (sim.BatchOff): every experiment table, delivery trace,
// and stats counter matches byte for byte. Grouping by destination reorders
// processing across parties within a tick, which is invisible to the
// parties themselves (messages have delay >= 1, so no party can observe
// another party's same-tick processing) but WOULD leak through three global
// channels, each of which is closed explicitly:
//
//  1. The scheduler's rng stream and the Seq counter. Unbatched, sends are
//     scheduled (Seq assigned, delay drawn) in the order deliveries trigger
//     them. Batched, sends and timers are DEFERRED: api.Send/SetTimer only
//     record a pending op tagged with the index of the tick event being
//     processed (its trigger), and a tick-end flush schedules the ops in
//     trigger order — a stable in-place sort by trigger index — so the Seq
//     and rng streams are exactly the unbatched ones.
//  2. Mid-tick termination. The unbatched loop stops at the exact event
//     that decides the last pending honest party; later same-tick events
//     are never delivered and their sends never happen. Batched, the tick
//     has already been processed out of order when that decision lands, so
//     the flush repairs the overshoot: pending ops triggered after the
//     completing event are dropped with their send-time stats backed out,
//     and deliveries of later-triggered events are removed from the
//     delivered count. Party-local state past the completion point is
//     unobservable (the run is over; honest parties have all decided and
//     emit nothing further by protocol guard).
//  3. The event budget. MaxEvents aborts mid-tick at an exact event count,
//     and the delivered prefix would differ under grouping — so a tick that
//     cannot complete without tripping the budget is handed to the
//     unbatched loop verbatim (state entering the tick is identical by
//     induction, so the abort prefix is too).

// BatchMode selects between batched tick delivery (the default) and the
// per-envelope reference loop. The two are observably equivalent — pinned
// by delivery-trace tests in this package and byte-identical experiment
// tables in internal/harness — so the switch exists for the equivalence
// tests and A/B benchmarks, like the EventCore switch.
type BatchMode int

const (
	// BatchDefault resolves to batched delivery.
	BatchDefault BatchMode = iota
	// BatchOn groups each tick's envelopes by destination and delivers
	// them through one DeliverBatch call per party (with a compatibility
	// shim for processes that don't implement BatchProcess).
	BatchOn
	// BatchOff is the per-envelope reference loop.
	BatchOff
)

// Resolve maps BatchDefault to the concrete default mode.
func (m BatchMode) Resolve() BatchMode {
	if m == BatchDefault {
		return BatchOn
	}
	return m
}

// String implements fmt.Stringer.
func (m BatchMode) String() string {
	switch m {
	case BatchDefault:
		return "default"
	case BatchOn:
		return "on"
	case BatchOff:
		return "off"
	default:
		return "unknown"
	}
}

// BatchProcess is an optional Process extension: a process that implements
// it receives each tick's envelopes in one DeliverBatch call instead of one
// Deliver call per envelope. Processes that don't implement it are driven
// by a compatibility shim that loops Deliver, so opting in is purely a
// performance choice.
type BatchProcess interface {
	Process
	// DeliverBatch consumes one tick's deliveries by calling batch.Next
	// until it returns false. The implementation must process envelopes in
	// the order Next yields them and must be observably equivalent to
	// receiving each envelope through Deliver: sends, decisions, and timer
	// registrations must happen at the same per-envelope points. Any
	// envelopes left unconsumed when DeliverBatch returns are delivered
	// through Deliver by the runtime.
	DeliverBatch(batch *Batch)
}

// Batch iterates one party's deliveries for one tick, in Seq order. The
// runtime owns the Batch; it is valid only during the DeliverBatch call it
// is passed to. Pulling envelopes through the iterator (rather than
// receiving a plain slice) is what lets the simulator attribute the sends a
// protocol emits to the exact envelope being processed — the bookkeeping
// behind the deferred-flush equivalence argument at the top of this file.
type Batch struct {
	net    *Network
	ps     *partyState
	events []event
	idxs   []int32
	pos    int
}

// Next returns the next envelope of the batch, or nil when the batch is
// exhausted. The pointer (and its Data) is valid until the next Next call
// — copy anything retained past it. Interleaved timer expiries are
// dispatched to the process's OnTimer from inside Next, at their exact
// tick position, so a BatchProcess that also uses timers needs no extra
// handling. Returning a pointer into the tick's event storage keeps the
// per-delivery cost to index arithmetic (no envelope copy).
func (b *Batch) Next() *Envelope {
	n := b.net
	w := b.ps.w
	for b.pos < len(b.idxs) {
		i := b.idxs[b.pos]
		b.pos++
		if n.crashed[b.ps.id] {
			// A crash (send-budget exhaustion) mid-batch drops the rest of
			// the party's tick, exactly as the unbatched loop skips events
			// to a crashed destination.
			continue
		}
		ev := &b.events[i]
		w.curTrig = i
		if ev.timer {
			if th, ok := b.ps.proc.(TimerHandler); ok {
				th.OnTimer(ev.tag)
			}
			continue
		}
		w.stats.MessagesDelivered++
		w.delivTrig = append(w.delivTrig, i)
		return &ev.env
	}
	return nil
}

// drain delivers whatever the process left unconsumed (trailing timers, or
// envelopes if DeliverBatch returned early) through the per-envelope path,
// so a partial consumer cannot change observable behavior.
func (b *Batch) drain() {
	for b.pos < len(b.idxs) {
		i := b.idxs[b.pos]
		b.pos++
		b.net.deliverEvent(b.ps, &b.events[i], i)
	}
}

// pendingOp is one deferred send, multicast, or timer registration,
// recorded during batched tick processing and scheduled by flushPending in
// trigger order. A multicast coalesces into a single op (mcastTo > 0: the
// truncation-adjusted recipient count) so the pending volume scales with
// protocol actions, not fan-out.
type pendingOp struct {
	data    []byte
	tag     uint64
	delay   Time
	from    PartyID
	to      PartyID
	trig    int32
	mcastTo int32
	timer   bool
}

// batchTickMin is the tick size below which grouping is skipped: a sparse
// tick (most parties receive at most one envelope) gains nothing from
// destination grouping, so it runs through the reference body instead of
// paying the staging and deferred-flush bookkeeping. The modes are
// equivalent per tick, so the choice is free per tick.
const batchTickMin = 16

// runBatched is the batched run loop body. budget is the resolved MaxEvents.
func (n *Network) runBatched(budget int) error {
	var err error
	events := 0
	batch := n.batch[:0]
	for n.pendingHonest > 0 {
		if n.queue.Len() == 0 {
			// Mirror the unbatched stall branch: pending restart actions
			// fire (a rejoin can re-seed the queue) before the stall
			// verdict is final.
			if n.restartsPending() {
				if err = n.advanceToRestart(); err != nil {
					break
				}
				continue
			}
			err = ErrStalled
			break
		}
		batch = n.queue.PopTick(batch[:0])
		n.now = batch[0].at
		if n.restartsPending() {
			if err = n.fireRestarts(); err != nil {
				break
			}
		}
		if events+len(batch) > budget {
			// The budget trips inside this tick (or the run completes
			// first): process it with the reference loop so the aborted
			// prefix is event-for-event identical.
			err = n.runTickUnbatched(batch, &events, budget)
			break
		}
		if len(batch) < batchTickMin {
			// Sparse tick: reference body, immediate scheduling. The event
			// count can only overshoot when the run completes mid-tick, in
			// which case it is never read again.
			events += len(batch)
			n.runTickSmall(batch)
			continue
		}
		// Dense tick: stage by destination and drain through the shard
		// workers — one worker when Shards resolves to 1 (the sequential
		// body), S concurrent workers with a deterministic barrier merge
		// otherwise (see shard.go).
		events += len(batch)
		n.runTickSharded(batch)
		if n.pendingHonest == 0 {
			break
		}
	}
	n.batch = batch[:0]
	return err
}

// fireObservers replays the tick's deliveries to the observer, in trigger
// (Seq) order with the completion overshoot dropped — exactly the sequence
// the unbatched loop would have reported. Deferring the callbacks to tick
// end means an observer that reads simulation state (the harness trajectory
// sampler) sees end-of-tick state for every delivery of the tick rather
// than each intermediate state; consumers rely only on tick-boundary state,
// which is identical across modes (no party can observe another party's
// same-tick processing).
func (n *Network) fireObservers(batch []event, maxTrig int32) {
	if n.observer == nil || len(n.delivTrig) == 0 {
		return
	}
	slices.Sort(n.delivTrig)
	for _, trig := range n.delivTrig {
		if trig > maxTrig {
			break
		}
		n.observer(n.now, batch[trig].env)
	}
}

// deliverPartyBatch hands a party its staged tick, through DeliverBatch
// when the process opts in and through the per-envelope shim otherwise.
func (n *Network) deliverPartyBatch(ps *partyState, events []event) {
	idxs := n.stage[ps.id]
	if bp, ok := ps.proc.(BatchProcess); ok {
		b := &ps.w.bat
		*b = Batch{net: n, ps: ps, events: events, idxs: idxs}
		bp.DeliverBatch(b)
		b.drain()
		*b = Batch{} // drop event and payload references
		return
	}
	for _, i := range idxs {
		n.deliverEvent(ps, &events[i], i)
	}
}

// deliverEvent is one per-envelope delivery step (shim and drain path).
// Observer callbacks are deferred to the tick-end replay (fireObservers).
func (n *Network) deliverEvent(ps *partyState, ev *event, trig int32) {
	if n.crashed[ps.id] {
		return
	}
	w := ps.w
	w.curTrig = trig
	if ev.timer {
		if th, ok := ps.proc.(TimerHandler); ok {
			th.OnTimer(ev.tag)
		}
		return
	}
	w.stats.MessagesDelivered++
	w.delivTrig = append(w.delivTrig, trig)
	ps.proc.Deliver(ev.env.From, ev.env.Data)
}

// runTickSmall processes one sparse tick with the reference body (Seq
// order, immediate scheduling, inline observer) — runTickUnbatched minus
// the budget checks, which the caller has already cleared for the tick.
func (n *Network) runTickSmall(batch []event) {
	for bi := range batch {
		if n.pendingHonest == 0 {
			return
		}
		ev := &batch[bi]
		if n.crashed[ev.env.To] {
			continue
		}
		dst := n.parties[ev.env.To]
		if ev.timer {
			if th, ok := dst.proc.(TimerHandler); ok {
				th.OnTimer(ev.tag)
			}
			continue
		}
		n.stats.MessagesDelivered++
		dst.proc.Deliver(ev.env.From, ev.env.Data)
		if n.observer != nil {
			n.observer(n.now, ev.env)
		}
	}
}

// runTickUnbatched processes one tick with the reference loop semantics:
// per-event budget and termination checks in Seq order. It is used for the
// (at most one) tick in which the event budget can trip.
func (n *Network) runTickUnbatched(batch []event, events *int, budget int) error {
	for bi := range batch {
		if n.pendingHonest == 0 {
			return nil
		}
		if *events >= budget {
			return ErrEventBudget
		}
		*events++
		ev := &batch[bi]
		if n.crashed[ev.env.To] {
			continue
		}
		dst := n.parties[ev.env.To]
		if ev.timer {
			if th, ok := dst.proc.(TimerHandler); ok {
				th.OnTimer(ev.tag)
			}
			continue
		}
		n.stats.MessagesDelivered++
		dst.proc.Deliver(ev.env.From, ev.env.Data)
		if n.observer != nil {
			n.observer(n.now, ev.env)
		}
	}
	return nil
}

// flushPending schedules the tick's deferred ops: Seq assignment,
// scheduler delay draws, honest-delay tracking, and queue pushes happen
// here, in trigger order (a stable in-place sort — multicast coalescing
// keeps the op count proportional to protocol actions, so a comparison
// sort stays cheap), which makes the Seq and rng streams identical to the
// unbatched loop's. Ops with trig > maxTrig were triggered after the
// run-completing event: the unbatched loop never reached them, so they are
// dropped and their send-time stats backed out.
func (n *Network) flushPending(maxTrig int32) {
	if len(n.pend) == 0 {
		return
	}
	slices.SortStableFunc(n.pend, func(a, b pendingOp) int {
		return int(a.trig) - int(b.trig)
	})
	for i := range n.pend {
		op := &n.pend[i]
		if op.trig > maxTrig {
			// Triggered past the completion point: the unbatched loop never
			// emitted these; back out their send-time accounting. Timer
			// registrations were never counted as sends — just drop them.
			if op.timer {
				continue
			}
			sends := 1
			if op.mcastTo > 0 {
				sends = int(op.mcastTo)
			}
			n.stats.MessagesSent -= sends
			n.stats.BytesSent -= sends * len(op.data)
			if !n.faulty[op.from] {
				n.stats.HonestMessagesSent -= sends
				n.stats.HonestBytesSent -= sends * len(op.data)
			}
			op.data = nil
			continue
		}
		if op.timer {
			n.seq++
			n.queue.Push(event{
				at:    n.now + op.delay,
				env:   Envelope{From: op.from, To: op.from, Seq: n.seq},
				timer: true,
				tag:   op.tag,
			})
		} else if op.mcastTo > 0 {
			for to := PartyID(0); to < PartyID(op.mcastTo); to++ {
				n.scheduleSend(op.from, to, op.data)
			}
		} else {
			n.scheduleSend(op.from, op.to, op.data)
		}
		op.data = nil
	}
	n.pend = n.pend[:0]
}

// scheduleSend assigns the next Seq, draws the scheduler decision, and
// queues the send — the single tail of both the unbatched send path and
// the batched flush, so the Seq/rng streams and any lossy-network fates
// are identical across delivery modes. When the scheduler is a
// FateScheduler the send can be dropped (no event queued) or duplicated
// (a second event at Delay+DupExtra sharing the envelope); a plain
// Scheduler takes the original delay-only path.
func (n *Network) scheduleSend(from, to PartyID, data []byte) {
	n.seq++
	env := Envelope{From: from, To: to, Data: data, Sent: n.now, Seq: n.seq}
	if n.fate == nil {
		delay := n.cfg.Scheduler.Delay(env, n.now, n.rng)
		if delay < 1 {
			delay = 1
		}
		if delay > MaxDelayCap {
			delay = MaxDelayCap
		}
		if !n.faulty[from] && !n.faulty[to] && delay > n.maxHonestDelay {
			n.maxHonestDelay = delay
		}
		n.queue.Push(event{at: n.now + delay, env: env})
		return
	}
	f := FateOf(n.fate, env, n.now, n.rng)
	if f.Drop {
		// Dropped sends never feed MaxHonestDelay: round complexity is
		// measured on messages the network actually delivers.
		n.stats.MessagesDropped++
		return
	}
	if !n.faulty[from] && !n.faulty[to] && f.Delay > n.maxHonestDelay {
		n.maxHonestDelay = f.Delay
	}
	n.queue.Push(event{at: n.now + f.Delay, env: env})
	if f.DupExtra > 0 {
		// The duplicate shares the envelope (Seq and payload): arena
		// payload blocks are recycled only at Reset, so the bytes stay
		// valid for the later delivery. The extra lag is not an honest
		// delay — the primary copy already bounds eventual delivery.
		n.stats.MessagesDuped++
		n.queue.Push(event{at: n.now + f.Delay + f.DupExtra, env: env})
	}
}
