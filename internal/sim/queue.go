package sim

// EventCore selects the data structure behind the simulator's event queue.
// Both cores order deliveries by (delivery time, send sequence) and are
// trace-equivalent: the core-equivalence tests in internal/harness pin
// event-for-event identical delivery orders and byte-identical experiment
// tables across the two. The calendar queue is the default (amortized O(1)
// per event); the binary heap is kept as the reference implementation and
// can be restored as the default with the `simheap` build tag.
type EventCore int

const (
	// CoreDefault resolves to the build's default core: the calendar queue,
	// or the heap when built with `-tags simheap`.
	CoreDefault EventCore = iota
	// CoreCalendar is the bucketed calendar queue (timing wheel over Time
	// ticks with an overflow heap and a flat event arena).
	CoreCalendar
	// CoreHeap is the binary min-heap reference core.
	CoreHeap
)

// Resolve maps CoreDefault to the build's default core, so callers that
// record or compare the core in effect (the BENCH snapshots) name the
// concrete implementation.
func (c EventCore) Resolve() EventCore {
	if c == CoreDefault {
		return defaultEventCore
	}
	return c
}

// String implements fmt.Stringer.
func (c EventCore) String() string {
	switch c {
	case CoreDefault:
		return "default"
	case CoreCalendar:
		return "calendar"
	case CoreHeap:
		return "heap"
	default:
		return "unknown"
	}
}

// eventQueue is the pluggable event core. Both implementations deliver
// events in strict (at, Seq) order; PopTick exposes the whole earliest tick
// at once so the Run loop can batch same-tick deliveries without
// re-consulting the queue structure per event (delays are >= 1 tick, so a
// delivery can never append to the tick being drained).
type eventQueue interface {
	// Len reports the number of pending events.
	Len() int
	// Push inserts an event. Its time must be strictly after every tick
	// already popped (the simulator guarantees this: delays are >= 1).
	Push(e event)
	// PopTick removes every event scheduled at the earliest pending tick
	// and appends them to buf in Seq order, returning the extended slice.
	// It returns buf unchanged when the queue is empty.
	PopTick(buf []event) []event
	// Reset empties the queue and restores its initial ordering state
	// (virtual time restarts at zero) while keeping its storage for the
	// next run. Payload references held by pending events are released.
	Reset()
}

// newEventQueue builds the queue for the selected core.
func newEventQueue(core EventCore) eventQueue {
	if core.Resolve() == CoreHeap {
		return &eventHeap{}
	}
	return newCalendarQueue()
}
