package sim

import "math/bits"

// calendarQueue is the simulator's default event core: a timing wheel of
// one-tick buckets over the near future, an overflow min-heap for events
// beyond the wheel horizon, and a flat event arena recycled through a free
// list. Push and PopTick are amortized O(1) per event, versus the binary
// heap's O(log M) — the difference is the dominant cost of large-n sweeps,
// where M (messages in flight) grows with n².
//
// Ordering invariant. Deliveries must happen in strict (at, Seq) order,
// and Seq is assigned monotonically at push time, so a bucket's FIFO chain
// is Seq-ordered as long as events enter it in push order. Far-future
// events take a detour through the overflow heap; they are migrated into
// the wheel the moment their tick enters the wheel window (drainOverflow
// runs after every window advance, before control returns to the pusher),
// so a direct push can never slot in underneath an older overflow event.
// The overflow heap itself pops in (at, Seq) order, keeping migration
// appends sorted too.
const (
	wheelBits = 11
	// wheelSize is the wheel horizon in ticks. The standard schedulers
	// assign delays well under it (the largest, heavytail's cap and
	// staggered's base+n·step at n=256, stay in the hundreds); anything
	// bigger — up to MaxDelayCap — overflows to the heap.
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// calNode is one arena slot: an event plus its intrusive bucket-chain link.
type calNode struct {
	ev   event
	next int32
}

// calBucket is a FIFO chain of arena indices; -1 means empty.
type calBucket struct {
	head, tail int32
}

type calendarQueue struct {
	arena    []calNode
	freeHead int32 // free-list head into arena; -1 when exhausted
	wheel    [wheelSize]calBucket
	occupied [wheelSize / 64]uint64 // one bit per non-empty bucket
	// base is the earliest tick the wheel window [base, base+wheelSize)
	// can hold. It only advances within a run; Reset rewinds it to 0.
	base     Time
	inWheel  int
	overflow eventHeap
}

func newCalendarQueue() *calendarQueue {
	q := &calendarQueue{freeHead: -1}
	for i := range q.wheel {
		q.wheel[i] = calBucket{head: -1, tail: -1}
	}
	return q
}

// Len implements eventQueue.
func (q *calendarQueue) Len() int { return q.inWheel + q.overflow.Len() }

// alloc takes a node from the free list (or grows the arena) and stores e.
func (q *calendarQueue) alloc(e event) int32 {
	if q.freeHead >= 0 {
		idx := q.freeHead
		q.freeHead = q.arena[idx].next
		q.arena[idx] = calNode{ev: e, next: -1}
		return idx
	}
	q.arena = append(q.arena, calNode{ev: e, next: -1})
	return int32(len(q.arena) - 1)
}

// Reset implements eventQueue: it empties the wheel and overflow heap and
// rewinds the window to tick zero, keeping the arena (and its free list)
// for the next run. Cost is O(events still pending), not O(arena): only
// the occupied buckets — found through the occupancy bitmap — are walked,
// their nodes freed and payload references dropped, so a context recycled
// from a large-n run resets in constant time for small-n runs. Free-list
// order after a reset differs from a fresh queue's, but arena indices are
// invisible to delivery order (buckets chain FIFO and ties break on Seq),
// so the two are observably identical.
func (q *calendarQueue) Reset() {
	if q.inWheel > 0 {
		for wi, word := range q.occupied {
			for word != 0 {
				slot := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				b := &q.wheel[slot]
				for idx := b.head; idx >= 0; {
					n := &q.arena[idx]
					next := n.next
					n.ev = event{}
					n.next = q.freeHead
					q.freeHead = idx
					idx = next
				}
				b.head, b.tail = -1, -1
			}
			q.occupied[wi] = 0
		}
	}
	q.base = 0
	q.inWheel = 0
	q.overflow.Reset()
}

// Push implements eventQueue.
func (q *calendarQueue) Push(e event) {
	if e.at >= q.base+wheelSize {
		q.overflow.Push(e)
		return
	}
	q.insert(e)
}

// insert appends e to its wheel bucket. e.at must lie inside the window.
func (q *calendarQueue) insert(e event) {
	idx := q.alloc(e)
	slot := int(e.at) & wheelMask
	b := &q.wheel[slot]
	if b.tail >= 0 {
		q.arena[b.tail].next = idx
	} else {
		b.head = idx
		q.occupied[slot>>6] |= 1 << uint(slot&63)
	}
	b.tail = idx
	q.inWheel++
}

// drainOverflow migrates every overflow event whose tick has entered the
// wheel window. Called after every base advance, so bucket chains stay
// Seq-ordered (see the ordering invariant above).
func (q *calendarQueue) drainOverflow() {
	for q.overflow.Len() > 0 && q.overflow.items[0].at < q.base+wheelSize {
		q.insert(q.overflow.Pop())
	}
}

// nextTick returns the earliest occupied tick. inWheel must be > 0.
func (q *calendarQueue) nextTick() Time {
	start := int(q.base) & wheelMask
	w := start >> 6
	word := q.occupied[w] &^ ((1 << uint(start&63)) - 1)
	// One full wrap plus a re-visit of the start word's low bits.
	for i := 0; i <= wheelSize/64; i++ {
		if word != 0 {
			slot := w<<6 + bits.TrailingZeros64(word)
			return q.base + Time((slot-start)&wheelMask)
		}
		w = (w + 1) & (wheelSize/64 - 1)
		word = q.occupied[w]
	}
	panic("sim: calendar queue occupancy bitmap out of sync")
}

// PopTick implements eventQueue.
func (q *calendarQueue) PopTick(buf []event) []event {
	if q.inWheel == 0 {
		if q.overflow.Len() == 0 {
			return buf
		}
		// Wheel is empty: jump the window to the overflow minimum.
		q.base = q.overflow.items[0].at
		q.drainOverflow()
	}
	t := q.nextTick()
	q.base = t
	// The window just advanced; pull newly eligible far-future events in
	// before any post-delivery push can reach their buckets. None of them
	// can land on tick t itself (they were beyond the previous horizon,
	// and t is inside it).
	q.drainOverflow()
	slot := int(t) & wheelMask
	b := &q.wheel[slot]
	for idx := b.head; idx >= 0; {
		n := &q.arena[idx]
		buf = append(buf, n.ev)
		next := n.next
		n.ev = event{} // release the payload reference to the GC
		n.next = q.freeHead
		q.freeHead = idx
		idx = next
		q.inWheel--
	}
	b.head, b.tail = -1, -1
	q.occupied[slot>>6] &^= 1 << uint(slot&63)
	return buf
}
