package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// Stats aggregates message-level accounting for one execution.
type Stats struct {
	// MessagesSent counts point-to-point sends issued (a multicast counts
	// as N sends). Sends truncated by a crash are not counted.
	MessagesSent int
	// MessagesDelivered counts deliveries actually performed.
	MessagesDelivered int
	// BytesSent sums the wire sizes of all sent messages.
	BytesSent int
	// HonestMessagesSent counts sends whose sender has no fault assignment.
	HonestMessagesSent int
	// HonestBytesSent sums wire sizes of honest sends.
	HonestBytesSent int
}

// Result summarizes a finished execution.
type Result struct {
	// Decisions holds one entry per party that called Decide.
	Decisions map[PartyID]float64
	// DecidedAt records the virtual time of each decision.
	DecidedAt map[PartyID]Time
	// FinishTime is the virtual time of the last honest decision.
	FinishTime Time
	// MaxHonestDelay is the largest delay the scheduler imposed on a
	// message between two non-faulty parties. Round complexity of the
	// execution is FinishTime / MaxHonestDelay.
	MaxHonestDelay Time
	// Stats carries message accounting.
	Stats Stats
	// Honest lists the parties with no fault assignment, ascending.
	Honest []PartyID
}

// Rounds reports the asynchronous round complexity of the execution: the
// time of the last honest output divided by the maximum honest message
// delay, per the standard definition of asynchronous rounds.
func (r *Result) Rounds() float64 {
	if r.MaxHonestDelay <= 0 {
		return 0
	}
	return float64(r.FinishTime) / float64(r.MaxHonestDelay)
}

// HonestDecisions returns the decisions of non-faulty parties, sorted
// ascending by value.
func (r *Result) HonestDecisions() []float64 {
	out := make([]float64, 0, len(r.Honest))
	for _, p := range r.Honest {
		if v, ok := r.Decisions[p]; ok {
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}

// HonestSpread returns the diameter of the honest decisions (0 when fewer
// than two parties decided).
func (r *Result) HonestSpread() float64 {
	d := r.HonestDecisions()
	if len(d) < 2 {
		return 0
	}
	return d[len(d)-1] - d[0]
}

// Network is the discrete-event simulator. Create one with New, attach
// processes with SetProcess for every honest party, then call Run.
type Network struct {
	cfg        Config
	parties    []*partyState
	queue      eventQueue
	batch      []event // reusable same-tick delivery batch (Run loop)
	rng        *rand.Rand
	now        Time
	seq        uint64
	stats      Stats
	finishTime Time

	maxHonestDelay Time
	pendingHonest  int // honest parties that have not decided yet

	// observer, when non-nil, is invoked after every delivery.
	observer func(now Time, env Envelope)

	defaultMaxEvents int

	// arena is the block allocator for in-flight message payloads: Send and
	// Multicast snapshot the caller's bytes into it, so protocols encode
	// into reusable scratch buffers and a multicast's n envelopes share one
	// copy. Exhausted blocks are dropped (not recycled) and are reclaimed
	// by the GC once their last envelope is delivered.
	arena    []byte
	arenaOff int
}

// arenaBlock is the payload arena's allocation granularity.
const arenaBlock = 1 << 16

// snapshot copies data into the payload arena and returns the full-slice
// copy. The copy is capacity-clipped so appends can never bleed into a
// neighboring payload.
func (n *Network) snapshot(data []byte) []byte {
	if len(data) == 0 {
		return nil
	}
	if n.arenaOff+len(data) > len(n.arena) {
		size := arenaBlock
		if len(data) > size {
			size = len(data)
		}
		n.arena = make([]byte, size)
		n.arenaOff = 0
	}
	buf := n.arena[n.arenaOff : n.arenaOff+len(data) : n.arenaOff+len(data)]
	n.arenaOff += len(data)
	copy(buf, data)
	return buf
}

type partyState struct {
	id      PartyID
	proc    Process
	net     *Network
	rng     *rand.Rand
	faulty  bool // any fault assignment (crash or byzantine)
	byz     bool
	crashed bool // crash already triggered
	// sendBudget is the number of sends remaining before a crash fires;
	// -1 means unlimited (no crash plan).
	sendBudget int
	decided    bool
	decision   float64
	decidedAt  Time
}

var _ API = (*partyState)(nil)

func (p *partyState) ID() PartyID      { return p.id }
func (p *partyState) N() int           { return p.net.cfg.N }
func (p *partyState) Rand() *rand.Rand { return p.rng }

func (p *partyState) Send(to PartyID, data []byte) {
	p.net.send(p, to, p.net.snapshot(data))
}

func (p *partyState) Multicast(data []byte) {
	// One snapshot shared by all n envelopes: the sender may reuse its
	// buffer immediately, and the n recipients alias a single copy.
	buf := p.net.snapshot(data)
	for to := 0; to < p.net.cfg.N; to++ {
		p.net.send(p, PartyID(to), buf)
	}
}

func (p *partyState) SetTimer(delay Time, tag uint64) {
	if p.crashed {
		return
	}
	if delay < 1 {
		delay = 1
	}
	net := p.net
	net.seq++
	net.queue.Push(event{
		at:    net.now + delay,
		env:   Envelope{From: p.id, To: p.id, Seq: net.seq},
		timer: true,
		tag:   tag,
	})
}

func (p *partyState) Decide(value float64) {
	if p.decided {
		return
	}
	p.decided = true
	p.decision = value
	p.decidedAt = p.net.now
	if !p.faulty {
		p.net.pendingHonest--
		if p.net.now > p.net.finishTime {
			p.net.finishTime = p.net.now
		}
	}
}

// New builds a network from the configuration. Processes for honest parties
// must be attached with SetProcess before Run.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		cfg:              cfg,
		queue:            newEventQueue(cfg.Core),
		rng:              rand.New(rand.NewSource(cfg.Seed)),
		defaultMaxEvents: 5_000_000,
	}
	crashBudget := make(map[PartyID]int, len(cfg.Crashes))
	for _, cr := range cfg.Crashes {
		crashBudget[cr.Party] = cr.AfterSends
	}
	n.parties = make([]*partyState, cfg.N)
	for i := 0; i < cfg.N; i++ {
		id := PartyID(i)
		ps := &partyState{
			id:         id,
			net:        n,
			rng:        rand.New(rand.NewSource(cfg.Seed ^ (int64(i+1) * 0x7E3779B97F4A7C15))),
			sendBudget: -1,
		}
		if budget, ok := crashBudget[id]; ok {
			ps.faulty = true
			ps.sendBudget = budget
		}
		if proc, ok := cfg.Byzantine[id]; ok {
			ps.faulty = true
			ps.byz = true
			ps.proc = proc
		}
		n.parties[i] = ps
	}
	return n, nil
}

// SetProcess attaches the protocol state machine for a party. It must be
// called for every non-Byzantine party before Run. Attaching to a Byzantine
// party is an error: the adversarial process from the Config runs there.
func (n *Network) SetProcess(id PartyID, proc Process) error {
	if id < 0 || int(id) >= n.cfg.N {
		return fmt.Errorf("sim: SetProcess: party %d out of range [0,%d)", id, n.cfg.N)
	}
	ps := n.parties[id]
	if ps.byz {
		return fmt.Errorf("sim: SetProcess: party %d is Byzantine; its process comes from the config", id)
	}
	if proc == nil {
		return fmt.Errorf("sim: SetProcess: nil process for party %d", id)
	}
	ps.proc = proc
	return nil
}

// SetObserver installs a callback invoked after every delivery, used by the
// harness to record convergence trajectories. Pass nil to remove.
func (n *Network) SetObserver(fn func(now Time, env Envelope)) { n.observer = fn }

// Party returns the process attached to a party (nil if none). The harness
// uses this to query Estimator implementations.
func (n *Network) Party(id PartyID) Process {
	if id < 0 || int(id) >= n.cfg.N {
		return nil
	}
	return n.parties[id].proc
}

// Now exposes the current virtual time (used by observers and tests).
func (n *Network) Now() Time { return n.now }

func (n *Network) send(from *partyState, to PartyID, data []byte) {
	if from.crashed {
		return
	}
	if from.sendBudget == 0 {
		// The crash plan fires: this send and everything after it is lost.
		from.crashed = true
		return
	}
	if from.sendBudget > 0 {
		from.sendBudget--
	}
	n.seq++
	env := Envelope{
		From: from.id,
		To:   to,
		Data: data,
		Sent: n.now,
		Seq:  n.seq,
	}
	delay := n.cfg.Scheduler.Delay(env, n.now, n.rng)
	if delay < 1 {
		delay = 1
	}
	if delay > MaxDelayCap {
		delay = MaxDelayCap
	}
	if !from.faulty && !n.parties[to].faulty && delay > n.maxHonestDelay {
		n.maxHonestDelay = delay
	}
	n.stats.MessagesSent++
	n.stats.BytesSent += len(data)
	if !from.faulty {
		n.stats.HonestMessagesSent++
		n.stats.HonestBytesSent += len(data)
	}
	n.queue.Push(event{at: n.now + delay, env: env})
}

// Run executes the simulation until every honest party has decided, the
// event queue drains (ErrStalled), or the event budget is exhausted
// (ErrEventBudget). It returns a Result in all cases; on error the Result
// reflects the partial execution, which tests use for diagnosis.
func (n *Network) Run() (*Result, error) {
	for _, ps := range n.parties {
		if ps.proc == nil {
			return nil, fmt.Errorf("sim: party %d has no process attached", ps.id)
		}
	}
	n.pendingHonest = 0
	for _, ps := range n.parties {
		if !ps.faulty {
			n.pendingHonest++
		}
	}
	// Init in ID order at time zero; Init-time sends are scheduled normally.
	for _, ps := range n.parties {
		ps.proc.Init(ps)
	}
	budget := n.cfg.MaxEvents
	if budget <= 0 {
		budget = n.defaultMaxEvents
	}
	var err error
	events := 0
	// The loop drains the queue one virtual-time tick at a time: PopTick
	// hands over every event of the earliest tick in one batch (delays are
	// >= 1, so deliveries can never append to the tick in flight), and the
	// inner consumption runs straight through the batch without touching
	// the queue structure — same-tick deliveries to the same party hit a
	// warm process with no queue bookkeeping in between.
	batch, bi := n.batch[:0], 0
	for n.pendingHonest > 0 {
		if bi == len(batch) {
			if n.queue.Len() == 0 {
				err = ErrStalled
				break
			}
			batch, bi = n.queue.PopTick(batch[:0]), 0
			n.now = batch[0].at
		}
		if events >= budget {
			err = ErrEventBudget
			break
		}
		events++
		ev := batch[bi]
		bi++
		dst := n.parties[ev.env.To]
		if dst.crashed {
			continue
		}
		if ev.timer {
			if th, ok := dst.proc.(TimerHandler); ok {
				th.OnTimer(ev.tag)
			}
			continue
		}
		n.stats.MessagesDelivered++
		dst.proc.Deliver(ev.env.From, ev.env.Data)
		if n.observer != nil {
			n.observer(n.now, ev.env)
		}
	}
	n.batch = batch[:0]
	return n.result(), err
}

func (n *Network) result() *Result {
	res := &Result{
		Decisions:      make(map[PartyID]float64),
		DecidedAt:      make(map[PartyID]Time),
		FinishTime:     n.finishTime,
		MaxHonestDelay: n.maxHonestDelay,
		Stats:          n.stats,
	}
	for _, ps := range n.parties {
		if ps.decided {
			res.Decisions[ps.id] = ps.decision
			res.DecidedAt[ps.id] = ps.decidedAt
		}
		if !ps.faulty {
			res.Honest = append(res.Honest, ps.id)
		}
	}
	return res
}
