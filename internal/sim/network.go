package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Stats aggregates message-level accounting for one execution.
type Stats struct {
	// MessagesSent counts point-to-point sends issued (a multicast counts
	// as N sends). Sends truncated by a crash are not counted.
	MessagesSent int
	// MessagesDelivered counts deliveries actually performed.
	MessagesDelivered int
	// BytesSent sums the wire sizes of all sent messages.
	BytesSent int
	// HonestMessagesSent counts sends whose sender has no fault assignment.
	HonestMessagesSent int
	// HonestBytesSent sums wire sizes of honest sends.
	HonestBytesSent int
	// MessagesDropped counts sends suppressed by a lossy-network fate
	// (loss/outage/flap axes). Dropped sends are still counted in
	// MessagesSent — the sender paid for them — but never delivered.
	MessagesDropped int
	// MessagesDuped counts sends for which the scheduler queued a second
	// delivery of the same envelope (dup axis). Each duplicate that
	// arrives also increments MessagesDelivered.
	MessagesDuped int
}

// Result summarizes a finished execution.
type Result struct {
	// Decisions holds one entry per party that called Decide.
	Decisions map[PartyID]float64
	// DecidedAt records the virtual time of each decision.
	DecidedAt map[PartyID]Time
	// FinishTime is the virtual time of the last honest decision.
	FinishTime Time
	// MaxHonestDelay is the largest delay the scheduler imposed on a
	// message between two non-faulty parties. Round complexity of the
	// execution is FinishTime / MaxHonestDelay.
	MaxHonestDelay Time
	// Stats carries message accounting.
	Stats Stats
	// Honest lists the parties with no fault assignment, ascending.
	Honest []PartyID
}

// Rounds reports the asynchronous round complexity of the execution: the
// time of the last honest output divided by the maximum honest message
// delay, per the standard definition of asynchronous rounds.
func (r *Result) Rounds() float64 {
	if r.MaxHonestDelay <= 0 {
		return 0
	}
	return float64(r.FinishTime) / float64(r.MaxHonestDelay)
}

// HonestDecisions returns the decisions of non-faulty parties, sorted
// ascending by value.
func (r *Result) HonestDecisions() []float64 {
	out := make([]float64, 0, len(r.Honest))
	for _, p := range r.Honest {
		if v, ok := r.Decisions[p]; ok {
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}

// HonestSpread returns the diameter of the honest decisions (0 when fewer
// than two parties decided). It is allocation-free: the harness calls it
// once per run on the recycled hot path.
func (r *Result) HonestSpread() float64 {
	var lo, hi float64
	count := 0
	for _, p := range r.Honest {
		v, ok := r.Decisions[p]
		if !ok {
			continue
		}
		if count == 0 {
			lo, hi = v, v
		} else {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		count++
	}
	if count < 2 {
		return 0
	}
	return hi - lo
}

// Network is the discrete-event simulator. Create one with New, attach
// processes with SetProcess for every honest party, then call Run.
//
// A Network is resettable: Reset reconfigures it for a new execution while
// recycling every piece of run state — the event queue's arena, the payload
// blocks, the per-party records and their random sources. After a warm-up
// run of the same shape, a Reset + Run cycle performs zero steady-state
// heap allocations. Reset is provably equivalent to fresh construction
// (every field a run can observe is re-derived from the new Config), which
// the harness pins by comparing recycled and freshly-built experiment
// tables byte for byte.
type Network struct {
	cfg        Config
	parties    []*partyState // the run's parties: allParties[:cfg.N]
	allParties []*partyState // every party record ever built, for recycling
	queue      eventQueue
	queueCore  EventCore     // resolved core the queue implements
	batch      []event       // reusable same-tick delivery batch (Run loop)
	fate       FateScheduler // cfg.Scheduler when it decides drops/dups; nil otherwise
	rng        *rand.Rand
	now        Time
	seq        uint64
	stats      Stats
	finishTime Time

	// Hot per-party state lives in parallel flat arrays indexed by PartyID
	// (struct-of-arrays): the per-event loops touch only the field they
	// need, walking contiguous memory instead of chasing partyState
	// pointers — the cache-density move for n >= 256 sweeps. The partyState
	// records keep the cold identity (process, rand source).
	crashed    []bool
	faulty     []bool // any fault assignment (crash or byzantine)
	byz        []bool
	decided    []bool
	sendBudget []int // sends remaining before a crash fires; -1 = unlimited
	decision   []float64
	decidedAt  []Time

	// Batched tick delivery state (see batch.go, shard.go): per-destination
	// staging of the tick's event indices, the shard workers that drain it,
	// and the run-global merge targets for the deferred send/timer ops and
	// delivery triggers (fed from the per-worker lists at the tick barrier).
	batching  bool
	stage     [][]int32
	pend      []pendingOp
	delivTrig []int32
	deferOps  bool
	shards    int            // resolved worker count for this run
	ws        []*shardWorker // worker fleet; only ws[:shards] run a tick
	shardWG   *sync.WaitGroup

	maxHonestDelay Time
	pendingHonest  int // honest parties that have not decided yet

	// Crash-recovery state (see restart.go): the time-sorted action list
	// resolved from cfg.Restarts, the firing cursor, the per-plan snapshot
	// buffers (recycled across runs), and the digest log the incident
	// layer records.
	ractions    []restartAction
	rnext       int
	planSnaps   [][]byte
	ckptDigests []uint64

	// observer, when non-nil, is invoked after every delivery.
	observer func(now Time, env Envelope)

	defaultMaxEvents int
}

// arenaBlock is the payload arena's allocation granularity.
const arenaBlock = 1 << 16

// payloadArena is a recycled block arena for message payloads: Send and
// Multicast snapshot the caller's bytes into the current block, so protocols
// encode into reusable scratch buffers and a multicast's n envelopes share
// one copy. A payload slice is valid only while its envelope is in flight
// (until the delivery callback returns): exhausted blocks are kept and
// recycled by reset, so memory is bounded by the peak per-run payload volume
// rather than churned per run. Each shard worker owns one arena — snapshots
// happen while a party's tick is being delivered, which under sharding runs
// on the worker goroutine — so a party always snapshots through its worker
// (partyState.w), never through shared Network state.
type payloadArena struct {
	blocks [][]byte
	cur    []byte // blocks[blk], the block currently being carved
	blk    int    // index of cur; -1 before the first block exists
	off    int    // write offset into cur
}

// snapshot copies data into the arena and returns the full-slice copy. The
// copy is capacity-clipped so appends can never bleed into a neighboring
// payload. The in-block fast path is kept small enough to inline into
// Send/Multicast; block turnover is outlined in nextBlock.
func (a *payloadArena) snapshot(data []byte) []byte {
	if len(data) == 0 {
		return nil
	}
	if a.off+len(data) > len(a.cur) {
		a.nextBlock(len(data))
	}
	buf := a.cur[a.off : a.off+len(data) : a.off+len(data)]
	a.off += len(data)
	copy(buf, data)
	return buf
}

// nextBlock advances cur to the next pooled block that fits need bytes,
// allocating (and pooling) a new block only when none does. Skipped blocks
// stay pooled for later runs.
func (a *payloadArena) nextBlock(need int) {
	for {
		a.blk++
		if a.blk >= len(a.blocks) {
			size := arenaBlock
			if need > size {
				size = need
			}
			a.blocks = append(a.blocks, make([]byte, size))
		}
		a.cur = a.blocks[a.blk]
		a.off = 0
		if need <= len(a.cur) {
			return
		}
	}
}

// reset rewinds the arena to reuse its pooled blocks for a new run.
func (a *payloadArena) reset() {
	a.off = 0
	if len(a.blocks) > 0 {
		a.blk, a.cur = 0, a.blocks[0]
	} else {
		a.blk, a.cur = -1, nil
	}
}

// partyState is a party's cold identity record and its API implementation.
// The hot flags and values (crashed/decided, send budget, decision) live in
// the Network's parallel arrays, indexed by id. w is the shard worker that
// delivers this party's ticks: the party's API calls route their deferred
// ops, stats deltas, and payload snapshots through it, so under sharding a
// delivering party touches only per-party and worker-local state (the
// ownership argument in shard.go).
type partyState struct {
	id   PartyID
	proc Process
	net  *Network
	rng  *rand.Rand
	w    *shardWorker
}

var _ API = (*partyState)(nil)

func (p *partyState) ID() PartyID      { return p.id }
func (p *partyState) N() int           { return p.net.cfg.N }
func (p *partyState) Rand() *rand.Rand { return p.rng }

func (p *partyState) Send(to PartyID, data []byte) {
	p.net.send(p, to, p.w.arena.snapshot(data))
}

func (p *partyState) Multicast(data []byte) {
	// One snapshot shared by all n envelopes: the sender may reuse its
	// buffer immediately, and the n recipients alias a single copy.
	n := p.net
	buf := p.w.arena.snapshot(data)
	if n.deferOps {
		// Batched tick in progress: the whole multicast coalesces into one
		// pending op (expanded recipient-by-recipient at the flush, in the
		// exact per-send order the unbatched loop produces). The crash
		// budget is settled here, at call time, with the unbatched
		// semantics: a budget smaller than the fan-out truncates the
		// multicast to the first sendBudget recipients and fires the crash.
		id := p.id
		if n.crashed[id] {
			return
		}
		k := n.cfg.N
		if bud := n.sendBudget[id]; bud >= 0 {
			if bud < k {
				k = bud
				n.crashed[id] = true
			}
			n.sendBudget[id] -= k
		}
		if k == 0 {
			return
		}
		w := p.w
		w.stats.MessagesSent += k
		w.stats.BytesSent += k * len(buf)
		if !n.faulty[id] {
			w.stats.HonestMessagesSent += k
			w.stats.HonestBytesSent += k * len(buf)
		}
		w.pend = append(w.pend, pendingOp{data: buf, from: id, trig: w.curTrig, mcastTo: int32(k)})
		return
	}
	for to := 0; to < n.cfg.N; to++ {
		n.send(p, PartyID(to), buf)
	}
}

func (p *partyState) SetTimer(delay Time, tag uint64) {
	net := p.net
	if net.crashed[p.id] {
		return
	}
	if delay < 1 {
		delay = 1
	}
	if net.deferOps {
		w := p.w
		w.pend = append(w.pend, pendingOp{
			from: p.id, delay: delay, tag: tag, trig: w.curTrig, timer: true,
		})
		return
	}
	net.seq++
	net.queue.Push(event{
		at:    net.now + delay,
		env:   Envelope{From: p.id, To: p.id, Seq: net.seq},
		timer: true,
		tag:   tag,
	})
}

func (p *partyState) Decide(value float64) {
	net := p.net
	if net.decided[p.id] {
		return
	}
	net.decided[p.id] = true
	net.decision[p.id] = value
	net.decidedAt[p.id] = net.now
	if net.faulty[p.id] {
		return
	}
	if net.deferOps {
		// Batched tick in progress: record the decision against the worker;
		// the tick barrier folds the pending-honest decrement and the
		// finish-time update (now is tick-constant, so folding is exact) and
		// tracks the latest trigger that produced an honest decision — if
		// this tick completes the run, the unbatched loop would have stopped
		// exactly there (the mid-tick completion repair).
		w := p.w
		w.honestDecided++
		if w.curTrig > w.decideTrig {
			w.decideTrig = w.curTrig
		}
		return
	}
	net.pendingHonest--
	if net.now > net.finishTime {
		net.finishTime = net.now
	}
}

// partySeed derives party i's deterministic random seed from the run seed.
func partySeed(seed int64, i int) int64 {
	return seed ^ (int64(i+1) * 0x7E3779B97F4A7C15)
}

// New builds a network from the configuration. Processes for honest parties
// must be attached with SetProcess before Run.
func New(cfg Config) (*Network, error) {
	n := &Network{defaultMaxEvents: 5_000_000}
	if err := n.Reset(cfg); err != nil {
		return nil, err
	}
	return n, nil
}

// Reset reconfigures the network for a new execution, recycling the event
// queue, the payload arena, and the party records of earlier runs. It is
// observably equivalent to New(cfg): every run-visible field — virtual
// time, sequence counter, stats, party fault assignments, random sources —
// is re-derived from cfg, and the reseeded sources produce the same streams
// a fresh construction would. Attached processes and the observer are
// cleared; reattach with SetProcess (and SetObserver) before Run.
func (n *Network) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	n.cfg = cfg
	// Resolve the lossy-network extension once: per-send type assertions
	// would put an interface check on the hot path for the common
	// (fate-free) case.
	n.fate, _ = cfg.Scheduler.(FateScheduler)
	if core := cfg.Core.Resolve(); n.queue == nil || core != n.queueCore {
		n.queue = newEventQueue(core)
		n.queueCore = core
	} else {
		n.queue.Reset()
	}
	if n.rng == nil {
		n.rng = rand.New(rand.NewSource(cfg.Seed))
	} else {
		n.rng.Seed(cfg.Seed)
	}
	if cap(n.allParties) < cfg.N {
		grown := make([]*partyState, len(n.allParties), cfg.N)
		copy(grown, n.allParties)
		n.allParties = grown
	}
	// recycled counts the parties whose random source must be re-seeded;
	// parties created below are seeded at construction (rngSource seeding
	// is the dominant cost of building a network, so it must happen exactly
	// once per party per run).
	recycled := len(n.allParties)
	if recycled > cfg.N {
		recycled = cfg.N
	}
	for len(n.allParties) < cfg.N {
		i := len(n.allParties)
		n.allParties = append(n.allParties, &partyState{
			id:  PartyID(i),
			net: n,
			rng: rand.New(rand.NewSource(partySeed(cfg.Seed, i))),
		})
	}
	n.parties = n.allParties[:cfg.N]
	// Parties beyond the new N keep their records (and warm rand sources)
	// for later larger runs, but must not pin the previous run's process
	// objects (a Byzantine process graph can be sizable).
	for _, ps := range n.allParties[cfg.N:] {
		ps.proc = nil
	}
	n.resizeSoA(cfg.N)
	// Resolve the worker count and (re)partition the parties into contiguous
	// shards. The fleet only grows; assignment is fixed per Reset so warm-run
	// allocation high-water marks stay deterministic (no work stealing).
	n.shards = resolveShards(cfg.Shards, cfg.N)
	n.ensureWorkers(n.shards)
	for i, ps := range n.parties {
		if i < recycled {
			ps.rng.Seed(partySeed(cfg.Seed, i))
		}
		ps.w = n.ws[i*n.shards/cfg.N]
		ps.proc = nil
		n.faulty[i] = false
		n.byz[i] = false
		n.crashed[i] = false
		n.sendBudget[i] = -1
		n.decided[i] = false
		n.decision[i] = 0
		n.decidedAt[i] = 0
	}
	for _, cr := range cfg.Crashes {
		n.faulty[cr.Party] = true
		n.sendBudget[cr.Party] = cr.AfterSends
	}
	for id, proc := range cfg.Byzantine {
		n.faulty[id] = true
		n.byz[id] = true
		n.parties[id].proc = proc
	}
	n.resetRestarts()
	n.batching = cfg.Batch.Resolve() == BatchOn
	n.now = 0
	n.seq = 0
	n.stats = Stats{}
	n.finishTime = 0
	n.maxHonestDelay = 0
	n.pendingHonest = 0
	n.observer = nil
	// Batching scratch is empty between ticks by construction; clear
	// defensively so an aborted run can never leak payload references.
	for i := range n.pend {
		n.pend[i].data = nil
	}
	n.pend = n.pend[:0]
	n.delivTrig = n.delivTrig[:0]
	n.deferOps = false
	// Reset every worker ever built (not just this run's ws[:shards]): their
	// tick scratch, pend lists, and payload arenas are recycled in place so
	// warm sharded runs stay allocation-free, and workers idled by a smaller
	// shard count must not pin the previous run's payload blocks' contents
	// as live data.
	for _, w := range n.ws {
		w.resetRun()
	}
	return nil
}

// resizeSoA (re)sizes the flat per-party state arrays and the batching
// stage to n parties, growing capacity geometrically and recycling it
// across runs like the party records themselves.
func (n *Network) resizeSoA(size int) {
	if cap(n.crashed) < size {
		n.crashed = make([]bool, size)
		n.faulty = make([]bool, size)
		n.byz = make([]bool, size)
		n.decided = make([]bool, size)
		n.sendBudget = make([]int, size)
		n.decision = make([]float64, size)
		n.decidedAt = make([]Time, size)
	}
	n.crashed = n.crashed[:size]
	n.faulty = n.faulty[:size]
	n.byz = n.byz[:size]
	n.decided = n.decided[:size]
	n.sendBudget = n.sendBudget[:size]
	n.decision = n.decision[:size]
	n.decidedAt = n.decidedAt[:size]
	if cap(n.stage) < size {
		grown := make([][]int32, size)
		copy(grown, n.stage[:cap(n.stage)])
		n.stage = grown
	}
	n.stage = n.stage[:size]
	for i := range n.stage {
		n.stage[i] = n.stage[i][:0]
	}
}

// SetProcess attaches the protocol state machine for a party. It must be
// called for every non-Byzantine party before Run. Attaching to a Byzantine
// party is an error: the adversarial process from the Config runs there.
func (n *Network) SetProcess(id PartyID, proc Process) error {
	if id < 0 || int(id) >= n.cfg.N {
		return fmt.Errorf("sim: SetProcess: party %d out of range [0,%d)", id, n.cfg.N)
	}
	if n.byz[id] {
		return fmt.Errorf("sim: SetProcess: party %d is Byzantine; its process comes from the config", id)
	}
	if proc == nil {
		return fmt.Errorf("sim: SetProcess: nil process for party %d", id)
	}
	n.parties[id].proc = proc
	return nil
}

// SetObserver installs a callback invoked after every delivery, used by the
// harness to record convergence trajectories. Pass nil to remove.
func (n *Network) SetObserver(fn func(now Time, env Envelope)) { n.observer = fn }

// Party returns the process attached to a party (nil if none). The harness
// uses this to query Estimator implementations.
func (n *Network) Party(id PartyID) Process {
	if id < 0 || int(id) >= n.cfg.N {
		return nil
	}
	return n.parties[id].proc
}

// Now exposes the current virtual time (used by observers and tests).
func (n *Network) Now() Time { return n.now }

func (n *Network) send(from *partyState, to PartyID, data []byte) {
	id := from.id
	if n.crashed[id] {
		return
	}
	if n.sendBudget[id] == 0 {
		// The crash plan fires: this send and everything after it is lost.
		n.crashed[id] = true
		return
	}
	if n.sendBudget[id] > 0 {
		n.sendBudget[id]--
	}
	if n.deferOps {
		// Batched tick in progress: record the send (and its accounting)
		// against the sender's shard worker, tagged with the event being
		// processed; Seq assignment and the delay draw happen in trigger
		// order at the tick-end flush (see batch.go, shard.go).
		w := from.w
		w.stats.MessagesSent++
		w.stats.BytesSent += len(data)
		if !n.faulty[id] {
			w.stats.HonestMessagesSent++
			w.stats.HonestBytesSent += len(data)
		}
		w.pend = append(w.pend, pendingOp{data: data, from: id, to: to, trig: w.curTrig})
		return
	}
	n.stats.MessagesSent++
	n.stats.BytesSent += len(data)
	if !n.faulty[id] {
		n.stats.HonestMessagesSent++
		n.stats.HonestBytesSent += len(data)
	}
	n.scheduleSend(id, to, data)
}

// Run executes the simulation until every honest party has decided, the
// event queue drains (ErrStalled), or the event budget is exhausted
// (ErrEventBudget). It returns a Result in all cases; on error the Result
// reflects the partial execution, which tests use for diagnosis.
func (n *Network) Run() (*Result, error) {
	if err := n.checkProcs(); err != nil {
		return nil, err
	}
	res := &Result{}
	return res, n.runInto(res)
}

func (n *Network) checkProcs() error {
	for _, ps := range n.parties {
		if ps.proc == nil {
			return fmt.Errorf("sim: party %d has no process attached", ps.id)
		}
	}
	return nil
}

// RunInto is Run writing its outcome into a caller-owned Result, whose maps
// and slices are reused when already allocated — the allocation-free form
// the recycled harness contexts use. The Result reflects the execution
// (partial on ErrStalled/ErrEventBudget); it is left untouched when a party
// has no process attached.
func (n *Network) RunInto(res *Result) error {
	if err := n.checkProcs(); err != nil {
		return err
	}
	return n.runInto(res)
}

// runInto is the shared execution body; callers have already checkProcs'd.
func (n *Network) runInto(res *Result) error {
	n.pendingHonest = 0
	for i := range n.faulty {
		if !n.faulty[i] {
			n.pendingHonest++
		}
	}
	// Init in ID order at time zero; Init-time sends are scheduled normally.
	for _, ps := range n.parties {
		ps.proc.Init(ps)
	}
	budget := n.cfg.MaxEvents
	if budget <= 0 {
		budget = n.defaultMaxEvents
	}
	var err error
	if n.batching {
		err = n.runBatched(budget)
	} else {
		err = n.runUnbatched(budget)
	}
	n.resultInto(res)
	return err
}

// runUnbatched is the per-envelope reference loop (sim.BatchOff). The loop
// drains the queue one virtual-time tick at a time: PopTick hands over
// every event of the earliest tick in one batch (delays are >= 1, so
// deliveries can never append to the tick in flight), and the inner
// consumption runs straight through the batch in (at, Seq) order. The
// batched loop in batch.go is pinned observably equivalent to this one.
func (n *Network) runUnbatched(budget int) error {
	var err error
	events := 0
	batch, bi := n.batch[:0], 0
	for n.pendingHonest > 0 {
		if bi == len(batch) {
			if n.queue.Len() == 0 {
				// A pending restart can revive a drained run: a rejoin
				// re-sends, so the stall verdict is only final once no
				// actions remain.
				if n.restartsPending() {
					if err = n.advanceToRestart(); err != nil {
						break
					}
					continue
				}
				err = ErrStalled
				break
			}
			batch, bi = n.queue.PopTick(batch[:0]), 0
			n.now = batch[0].at
			if n.restartsPending() {
				if err = n.fireRestarts(); err != nil {
					break
				}
			}
		}
		if events >= budget {
			err = ErrEventBudget
			break
		}
		events++
		ev := batch[bi]
		bi++
		if n.crashed[ev.env.To] {
			continue
		}
		dst := n.parties[ev.env.To]
		if ev.timer {
			if th, ok := dst.proc.(TimerHandler); ok {
				th.OnTimer(ev.tag)
			}
			continue
		}
		n.stats.MessagesDelivered++
		dst.proc.Deliver(ev.env.From, ev.env.Data)
		if n.observer != nil {
			n.observer(n.now, ev.env)
		}
	}
	n.batch = batch[:0]
	return err
}

// resultInto fills res from the finished (or aborted) execution, reusing
// its maps and slices when present.
func (n *Network) resultInto(res *Result) {
	if res.Decisions == nil {
		res.Decisions = make(map[PartyID]float64)
	} else {
		clear(res.Decisions)
	}
	if res.DecidedAt == nil {
		res.DecidedAt = make(map[PartyID]Time)
	} else {
		clear(res.DecidedAt)
	}
	res.Honest = res.Honest[:0]
	res.FinishTime = n.finishTime
	res.MaxHonestDelay = n.maxHonestDelay
	res.Stats = n.stats
	for i := 0; i < n.cfg.N; i++ {
		id := PartyID(i)
		if n.decided[i] {
			res.Decisions[id] = n.decision[i]
			res.DecidedAt[id] = n.decidedAt[i]
		}
		if !n.faulty[i] {
			res.Honest = append(res.Honest, id)
		}
	}
}
