package sim

import (
	"strings"
	"testing"

	"repro/internal/checkpoint"
)

// rollProc is a minimal checkpointable process: it sums received bytes and
// decides once the sum reaches need. Rejoin re-multicasts its greeting, the
// idempotent catch-up a real protocol performs.
type rollProc struct {
	api  API
	sum  int
	need int
}

func (p *rollProc) Init(api API) {
	p.api = api
	api.Multicast([]byte{1})
}

func (p *rollProc) Deliver(from PartyID, data []byte) {
	p.sum += int(data[0])
	if p.sum >= p.need {
		p.api.Decide(float64(p.sum))
	}
}

func (p *rollProc) Snapshot(buf []byte) ([]byte, error) {
	buf = checkpoint.Begin(buf)
	buf = checkpoint.AppendInt(buf, p.sum)
	return checkpoint.Seal(buf), nil
}

func (p *rollProc) Restore(data []byte) error {
	d, err := checkpoint.Open(data)
	if err != nil {
		return err
	}
	p.sum = d.Int()
	return d.Done()
}

func (p *rollProc) Rejoin() { p.api.Multicast([]byte{1}) }

// restartRun executes three rollProc parties where party 0 checkpoints at
// t=0, crashes at t=2, and rejoins at t=4.
func restartRun(t *testing.T, batch BatchMode) (*Network, *Result) {
	t.Helper()
	cfg := Config{
		N:         3,
		Scheduler: constDelay{1},
		Batch:     batch,
		Restarts:  []RestartPlan{{Party: 0, Checkpoint: 0, Down: 2, Rejoin: 4}},
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Party 0 decides on any delivery; the others need the rejoin traffic
	// on top of the initial burst, so the run stalls without the restart.
	n.SetProcess(0, &rollProc{need: 1})
	n.SetProcess(1, &rollProc{need: 4})
	n.SetProcess(2, &rollProc{need: 4})
	res, err := n.Run()
	if err != nil {
		t.Fatalf("run (batch=%v): %v", batch, err)
	}
	return n, res
}

func TestRestartRevivesAndRollsBack(t *testing.T) {
	for _, batch := range []BatchMode{BatchOff, BatchOn} {
		n, res := restartRun(t, batch)
		if len(res.Decisions) != 3 {
			t.Fatalf("batch=%v: %d decisions, want 3", batch, len(res.Decisions))
		}
		// Party 0 decided sum=3 at t=1, was un-decided by the crash, and
		// re-decided after the rollback with sum=1: the decision value
		// proves the restore ran (an un-restored party would report 4).
		if res.Decisions[0] != 1 {
			t.Errorf("batch=%v: party 0 decision %v, want 1 (rolled-back sum)", batch, res.Decisions[0])
		}
		if res.DecidedAt[0] != 5 {
			t.Errorf("batch=%v: party 0 re-decided at t=%d, want 5", batch, res.DecidedAt[0])
		}
		if res.Decisions[1] != 4 || res.Decisions[2] != 4 {
			t.Errorf("batch=%v: peer decisions %v %v, want 4 4", batch, res.Decisions[1], res.Decisions[2])
		}
		if res.FinishTime != 5 {
			t.Errorf("batch=%v: finish time %d, want 5", batch, res.FinishTime)
		}
		dg := n.CheckpointDigests()
		if len(dg) != 1 || dg[0] == 0 {
			t.Errorf("batch=%v: digests %v, want one nonzero entry", batch, dg)
		}
	}
}

func TestRestartDigestsDeterministic(t *testing.T) {
	n1, _ := restartRun(t, BatchOff)
	n2, _ := restartRun(t, BatchOn)
	d1, d2 := n1.CheckpointDigests(), n2.CheckpointDigests()
	if len(d1) != 1 || len(d2) != 1 || d1[0] != d2[0] {
		t.Errorf("digest streams differ across delivery modes: %v vs %v", d1, d2)
	}
}

func TestRestartRequiresSnapshotter(t *testing.T) {
	cfg := Config{
		N:         2,
		Scheduler: constDelay{1},
		Restarts:  []RestartPlan{{Party: 0, Checkpoint: 0, Down: 2, Rejoin: 4}},
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// echoProc does not implement the snapshotter extension.
	n.SetProcess(0, &echoProc{need: 100})
	n.SetProcess(1, &echoProc{need: 100})
	if _, err := n.Run(); err == nil || !strings.Contains(err.Error(), "checkpointing") {
		t.Fatalf("run with un-checkpointable process: %v", err)
	}
}

func TestRestartConfigValidate(t *testing.T) {
	base := func() Config {
		return Config{
			N:         4,
			Scheduler: constDelay{1},
			Restarts:  []RestartPlan{{Party: 1, Checkpoint: 1, Down: 5, Rejoin: 9}},
		}
	}
	good := base()
	if err := good.Validate(); err != nil {
		t.Fatalf("good restart config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"party out of range", func(c *Config) { c.Restarts[0].Party = 4 }},
		{"negative party", func(c *Config) { c.Restarts[0].Party = -1 }},
		{"down before checkpoint", func(c *Config) { c.Restarts[0].Down = 0 }},
		{"rejoin not after down", func(c *Config) { c.Restarts[0].Rejoin = 5 }},
		{"two plans one party", func(c *Config) {
			c.Restarts = append(c.Restarts, RestartPlan{Party: 1, Checkpoint: 0, Down: 2, Rejoin: 3})
		}},
		{"restart overlaps crash", func(c *Config) {
			c.Crashes = []CrashPlan{{Party: 1, AfterSends: 3}}
		}},
		{"restart overlaps byzantine", func(c *Config) {
			c.Byzantine = map[PartyID]Process{1: &echoProc{need: 1}}
		}},
	}
	for _, tc := range cases {
		c := base()
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// A restart axis left empty must not change the run at all; the recycled
// network must also behave identically after a restart-bearing run.
func TestRestartResetRecycles(t *testing.T) {
	n, first := restartRun(t, BatchOff)
	// Re-run the same config on the recycled network.
	cfg := n.cfg
	if err := n.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	n.SetProcess(0, &rollProc{need: 1})
	n.SetProcess(1, &rollProc{need: 4})
	n.SetProcess(2, &rollProc{need: 4})
	res, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinishTime != first.FinishTime || res.Decisions[0] != first.Decisions[0] {
		t.Errorf("recycled run diverged: finish %d vs %d, decision %v vs %v",
			res.FinishTime, first.FinishTime, res.Decisions[0], first.Decisions[0])
	}
	// Dropping the restart axis on the recycled network must clear the
	// plan state: the run now stalls (need=4 is unreachable).
	cfg.Restarts = nil
	if err := n.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	n.SetProcess(0, &rollProc{need: 1})
	n.SetProcess(1, &rollProc{need: 4})
	n.SetProcess(2, &rollProc{need: 4})
	if _, err := n.Run(); err != ErrStalled {
		t.Fatalf("restart-free recycled run: %v, want ErrStalled", err)
	}
	if len(n.CheckpointDigests()) != 0 {
		t.Error("digest log not cleared by Reset")
	}
}
