//go:build !simheap

package sim

// defaultEventCore is the event core used when Config.Core is CoreDefault.
// Build with `-tags simheap` to fall back to the binary-heap reference core.
const defaultEventCore = CoreCalendar
