package sim

import (
	"math/rand"
	"testing"
)

// drainCompare pops both queues tick by tick and asserts identical batches.
func drainCompare(t *testing.T, h, c eventQueue) {
	t.Helper()
	var hb, cb []event
	for h.Len() > 0 || c.Len() > 0 {
		hb = h.PopTick(hb[:0])
		cb = c.PopTick(cb[:0])
		if len(hb) != len(cb) {
			t.Fatalf("batch size mismatch: heap %d, calendar %d", len(hb), len(cb))
		}
		for i := range hb {
			if hb[i].at != cb[i].at || hb[i].env.Seq != cb[i].env.Seq {
				t.Fatalf("batch[%d]: heap (at=%d seq=%d), calendar (at=%d seq=%d)",
					i, hb[i].at, hb[i].env.Seq, cb[i].at, cb[i].env.Seq)
			}
		}
	}
}

// TestCalendarMatchesHeapRandom drives both cores with the same random
// push/pop schedule — delays from 1 tick to past the wheel horizon (so the
// overflow heap and its migration path are exercised) — and asserts
// identical (at, Seq) pop orders.
func TestCalendarMatchesHeapRandom(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := eventQueue(&eventHeap{})
		c := eventQueue(newCalendarQueue())
		now := Time(0)
		seq := uint64(0)
		budget := 4000 // total pushes per seed, so the drain terminates
		push := func(k int) {
			if k > budget {
				k = budget
			}
			budget -= k
			for i := 0; i < k; i++ {
				var delay Time
				switch rng.Intn(4) {
				case 0:
					delay = 1 + Time(rng.Int63n(8)) // dense near-future
				case 1:
					delay = 1 + Time(rng.Int63n(wheelSize-1)) // anywhere in the wheel
				case 2:
					delay = wheelSize + Time(rng.Int63n(3*wheelSize)) // overflow
				default:
					delay = 1 + Time(rng.Int63n(int64(MaxDelayCap))) // worst case
				}
				seq++
				e := event{at: now + delay, env: Envelope{Seq: seq}}
				h.Push(e)
				c.Push(e)
			}
		}
		push(64)
		var hb, cb []event
		for h.Len() > 0 {
			hb = h.PopTick(hb[:0])
			cb = c.PopTick(cb[:0])
			if len(hb) != len(cb) {
				t.Fatalf("seed %d: batch size mismatch: heap %d, calendar %d", seed, len(hb), len(cb))
			}
			for i := range hb {
				if hb[i].at != cb[i].at || hb[i].env.Seq != cb[i].env.Seq {
					t.Fatalf("seed %d: batch[%d]: heap (at=%d seq=%d), calendar (at=%d seq=%d)",
						seed, i, hb[i].at, hb[i].env.Seq, cb[i].at, cb[i].env.Seq)
				}
			}
			now = hb[0].at
			if rng.Intn(3) > 0 {
				push(rng.Intn(16)) // interleave pushes, as deliveries do
			}
		}
		if c.Len() != 0 {
			t.Fatalf("seed %d: calendar retains %d events after heap drained", seed, c.Len())
		}
	}
}

// TestCalendarSameTickFIFO pins the per-bucket FIFO: many events on one
// tick must pop as a single batch in send-sequence order.
func TestCalendarSameTickFIFO(t *testing.T) {
	q := newCalendarQueue()
	const k = 100
	for i := 1; i <= k; i++ {
		q.Push(event{at: 7, env: Envelope{Seq: uint64(i)}})
	}
	batch := q.PopTick(nil)
	if len(batch) != k {
		t.Fatalf("got batch of %d, want %d", len(batch), k)
	}
	for i, e := range batch {
		if e.env.Seq != uint64(i+1) {
			t.Fatalf("batch[%d] has seq %d, want %d", i, e.env.Seq, i+1)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue retains %d events", q.Len())
	}
}

// TestCalendarArenaRecycles pins the free list: pushing and popping in
// waves must not grow the arena past the high-water mark of live events.
func TestCalendarArenaRecycles(t *testing.T) {
	q := newCalendarQueue()
	seq := uint64(0)
	now := Time(0)
	for wave := 0; wave < 50; wave++ {
		for i := 0; i < 40; i++ {
			seq++
			q.Push(event{at: now + 1 + Time(i%5), env: Envelope{Seq: seq}})
		}
		var buf []event
		for q.Len() > 0 {
			buf = q.PopTick(buf[:0])
			now = buf[0].at
		}
	}
	if len(q.arena) > 40 {
		t.Fatalf("arena grew to %d nodes for 40 concurrent events", len(q.arena))
	}
}

// TestNetworkCoresAgree runs the same echo execution on both cores and
// compares results field for field.
func TestNetworkCoresAgree(t *testing.T) {
	run := func(core EventCore) *Result {
		t.Helper()
		net, _ := newEchoNet(t, 5, func(cfg *Config) { cfg.Core = core })
		res, err := net.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(CoreHeap), run(CoreCalendar)
	if a.FinishTime != b.FinishTime || a.Stats != b.Stats || len(a.Decisions) != len(b.Decisions) {
		t.Fatalf("core results diverge: heap %+v, calendar %+v", a, b)
	}
	for id, v := range a.Decisions {
		if b.Decisions[id] != v || a.DecidedAt[id] != b.DecidedAt[id] {
			t.Fatalf("party %d diverges across cores", id)
		}
	}
}
