package sim

import (
	"runtime"
	"sync"
)

// This file is the intra-run sharding layer: a single run's dense ticks are
// drained by S workers concurrently, each owning a contiguous shard of the
// parties, with a deterministic merge at the tick-end barrier. It is the
// scale-out step past batched tick delivery (batch.go): one E12 run at
// n = 512 is ~2.6M messages processed by a single goroutine, and the next
// size doublings (n = 1024, 4096) only fit the wall clock if that work is
// split across cores.
//
// Why this is safe — the ownership argument. During the worker phase of a
// tick, every mutable word is owned by exactly one goroutine:
//
//   - Per-party state (crashed/sendBudget/decided/decision/decidedAt, the
//     party's process and rand source, its stage list) is touched only
//     while delivering to that party, and each party belongs to exactly one
//     shard. Protocol processes hold no state shared across parties, and a
//     delivering party's API calls (Send/Multicast/SetTimer/Decide/Rand)
//     touch only its own records.
//   - Cross-party run state is split per worker: deferred ops, delivery
//     triggers, stats deltas, honest-decision counts, and the payload arena
//     all live in the worker's shardWorker and are folded at the barrier.
//   - Everything serial — the Seq counter, the scheduler and its rng, the
//     event queue, the global Stats, the observer — is touched only between
//     ticks, on the run goroutine.
//
// Why this is deterministic — the barrier-merge argument. Batched delivery
// already defers every send/multicast/timer as a trigger-tagged pendingOp
// and flushes at tick end in trigger order (batch.go). All ops with a given
// trigger index come from delivering one event to one party — which one
// worker processed — so they sit contiguously, in emission order, in that
// worker's pend list. Concatenating the per-worker lists in worker order
// and running the same stable sort by trigger therefore reproduces the
// sequential flush order EXACTLY: Seq assignment, scheduler rng draws,
// lossy-network fate decisions, and observer replay are byte-identical at
// every shard count. Stats deltas, the pending-honest decrement, and the
// mid-tick-completion trigger merge by sum/max, which are order-free. The
// sparse-tick, budget-tripping, and per-envelope (Batch off) paths never
// enter the worker phase at all: they run the sequential reference body.
//
// The worker fleet is persistent: goroutines for workers 1..S-1 are parked
// on unbuffered job channels across ticks, runs, and Resets, so a warm
// sharded run performs zero steady-state heap allocations (the same
// contract as every other recycled piece of run state). A parked goroutine
// references only its shardWorker and channel — never the Network — so an
// abandoned Network remains collectable; a runtime.AddCleanup per worker
// closes the channel when the Network is collected, terminating the fleet.

const (
	// shardAutoParties is the per-shard party count the auto heuristic
	// (Config.Shards == 0) targets: below 2×shardAutoParties parties a run
	// stays sequential, and the shard count never exceeds N/shardAutoParties
	// — message volume scales with n², so shards this fine already hold far
	// more per-tick work than the barrier costs.
	shardAutoParties = 128
	// maxShards bounds the worker fleet (and the merge fan-in).
	maxShards = 64
	// shardParEventsPerWorker is the per-worker tick size below which a
	// sharded network runs its workers inline on the run goroutine instead
	// of dispatching goroutines: waking a worker costs about as much as
	// delivering ~100 envelopes, so thin ticks are cheaper sequential. The
	// two paths execute identical per-worker code, so the choice is free
	// per tick (the same argument as the sparse-tick fallback in batch.go).
	shardParEventsPerWorker = 128
)

// resolveShards maps Config.Shards to the concrete worker count for a run
// of n parties.
func resolveShards(cfgShards, n int) int {
	s := cfgShards
	if s == 0 {
		s = runtime.GOMAXPROCS(0)
		if lim := n / shardAutoParties; s > lim {
			s = lim
		}
	}
	if s > n {
		s = n
	}
	if s > maxShards {
		s = maxShards
	}
	if s < 1 {
		s = 1
	}
	return s
}

// shardWorker is one worker's tick-scoped scratch: everything a delivering
// party's API calls touch that is not per-party. With one shard the single
// worker runs on the run goroutine and the merge degenerates to a pointer
// swap, so the sequential path pays no copies for the indirection.
type shardWorker struct {
	// touched lists this shard's destinations staged for the current tick,
	// in first-appearance (Seq) order; the worker drains exactly these.
	touched []int32
	// pend accumulates the deferred ops emitted by this shard's parties.
	// Within one trigger index the ops are in emission order, and one
	// trigger belongs to exactly one worker — the invariant behind the
	// deterministic barrier merge.
	pend []pendingOp
	// delivTrig records the trigger index of every delivery performed by
	// this worker, for the tick-end observer replay and completion repair.
	delivTrig []int32
	// curTrig is the trigger index of the event currently being processed.
	curTrig int32
	// decideTrig is the largest trigger that produced an honest decision
	// this tick (-1 if none), merged by max at the barrier.
	decideTrig int32
	// honestDecided counts honest decisions this tick, merged by sum.
	honestDecided int
	// stats is the tick's stats delta, folded into Network.stats at the
	// barrier (before the completion repair backs anything out).
	stats Stats
	// bat is the worker's reusable Batch iterator.
	bat Batch
	// arena snapshots the payloads of this shard's deferred sends; blocks
	// are recycled across runs exactly like the Network-level arena.
	arena payloadArena
	// work feeds the parked goroutine behind workers 1..S-1 (nil for
	// worker 0, which always runs on the run goroutine).
	work chan shardJob
}

// shardJob is one tick's work order for a parked worker goroutine. The
// goroutine drops every reference before parking again, so a job cannot
// keep a Network alive across ticks.
type shardJob struct {
	net   *Network
	batch []event
	wg    *sync.WaitGroup
}

// shardLoop is the body of a parked worker goroutine: drain one tick's
// staged parties per job until the channel closes (which the Network's
// runtime cleanup does when the Network is collected).
func shardLoop(w *shardWorker, work chan shardJob) {
	for {
		job, ok := <-work
		if !ok {
			return
		}
		job.net.runWorkerTick(w, job.batch)
		wg := job.wg
		// Drop the Network and tick references before signalling: once Done
		// returns the run goroutine owns the tick again, and a parked
		// goroutine must pin nothing but its worker and channel.
		job = shardJob{}
		wg.Done()
	}
}

// ensureWorkers grows the worker fleet to count, launching the parked
// goroutines behind workers 1..count-1. Worker 0 never gets a goroutine.
// The fleet only grows; a later Reset to fewer shards leaves the extra
// workers parked.
func (n *Network) ensureWorkers(count int) {
	if count > 1 && n.shardWG == nil {
		// Separately allocated so a worker goroutine signalling completion
		// holds a pointer to a 16-byte object, not into the Network.
		n.shardWG = new(sync.WaitGroup)
	}
	for len(n.ws) < count {
		w := new(shardWorker)
		w.resetRun() // initialize decideTrig = -1 and the empty arena
		if len(n.ws) > 0 {
			w.work = make(chan shardJob)
			go shardLoop(w, w.work)
			// The goroutine exits when the channel closes; tie that to the
			// Network's lifetime without the cleanup (or the goroutine)
			// referencing the Network itself.
			runtime.AddCleanup(n, func(ch chan shardJob) { close(ch) }, w.work)
		}
		n.ws = append(n.ws, w)
	}
}

// resetTick clears the worker's per-tick accumulators (the per-run pieces —
// arena, slice capacities — are handled by resetRun).
func (w *shardWorker) resetTick() {
	w.touched = w.touched[:0]
	w.pend = w.pend[:0]
	w.delivTrig = w.delivTrig[:0]
	w.curTrig = 0
	w.decideTrig = -1
	w.honestDecided = 0
	w.stats = Stats{}
}

// resetRun restores the worker for a new run, recycling its scratch
// capacity. Pending payload references are dropped defensively (an aborted
// run can leave ops staged) so recycled arena blocks are never pinned by
// stale ops.
func (w *shardWorker) resetRun() {
	for i := range w.pend {
		w.pend[i].data = nil
	}
	w.resetTick()
	w.bat = Batch{}
	w.arena.reset()
}

// runTickSharded stages one dense tick by destination, drains it through
// the shard workers, and performs the deterministic barrier merge, flush,
// and observer replay. It is the only caller of the worker phase; with one
// shard it is exactly the sequential batched tick body.
func (n *Network) runTickSharded(batch []event) {
	// Stage the tick by destination, routing each destination to its
	// shard's touched list. Staging stores indices into the tick slice
	// (not copies); batch is stable until the next PopTick.
	for i := range batch {
		to := batch[i].env.To
		if len(n.stage[to]) == 0 {
			w := n.parties[to].w
			w.touched = append(w.touched, int32(to))
		}
		n.stage[to] = append(n.stage[to], int32(i))
	}
	n.deferOps = true
	workers := n.ws[:n.shards]
	if n.shards > 1 && len(batch) >= n.shards*shardParEventsPerWorker {
		launched := 0
		for _, w := range workers[1:] {
			if len(w.touched) == 0 {
				continue
			}
			n.shardWG.Add(1)
			w.work <- shardJob{net: n, batch: batch, wg: n.shardWG}
			launched++
		}
		n.runWorkerTick(workers[0], batch)
		if launched > 0 {
			n.shardWG.Wait()
		}
	} else {
		for _, w := range workers {
			if len(w.touched) > 0 {
				n.runWorkerTick(w, batch)
			}
		}
	}
	n.deferOps = false

	// Barrier merge: fold the per-worker deltas into the run-global state.
	// Sum and max are order-free; the pend and delivTrig concatenations
	// are in fixed worker order, and the flush's stable sort by trigger
	// restores the exact sequential emission order (see the file comment).
	decideTrig := int32(-1)
	honestDecided := 0
	n.delivTrig = n.delivTrig[:0]
	if n.shards == 1 {
		w := workers[0]
		n.pend, w.pend = w.pend, n.pend[:0]
		n.delivTrig, w.delivTrig = w.delivTrig, n.delivTrig[:0]
	} else {
		for _, w := range workers {
			n.pend = append(n.pend, w.pend...)
			for i := range w.pend {
				w.pend[i].data = nil
			}
			w.pend = w.pend[:0]
			n.delivTrig = append(n.delivTrig, w.delivTrig...)
			w.delivTrig = w.delivTrig[:0]
		}
	}
	for _, w := range workers {
		n.stats.add(&w.stats)
		honestDecided += w.honestDecided
		if w.decideTrig > decideTrig {
			decideTrig = w.decideTrig
		}
		w.stats = Stats{}
		w.honestDecided = 0
		w.decideTrig = -1
	}
	if honestDecided > 0 {
		n.pendingHonest -= honestDecided
		// now is monotone across ticks, so folding the finish-time update
		// at the barrier lands on the same value as the per-decision update
		// of the sequential path.
		if n.now > n.finishTime {
			n.finishTime = n.now
		}
	}

	maxTrig := int32(len(batch))
	if n.pendingHonest == 0 {
		// The run completed mid-tick: the unbatched loop would have stopped
		// at the completing event. Back out deliveries of later-triggered
		// events and flush only ops triggered at or before it.
		maxTrig = decideTrig
		for _, trig := range n.delivTrig {
			if trig > maxTrig {
				n.stats.MessagesDelivered--
			}
		}
	}
	n.flushPending(maxTrig)
	n.fireObservers(batch, maxTrig)
}

// runWorkerTick drains one worker's staged parties for the tick. It runs
// either on the run goroutine (one shard, or a thin tick) or on the
// worker's parked goroutine; in the parallel case it must touch only
// shard-owned and worker-local state (the ownership argument above).
func (n *Network) runWorkerTick(w *shardWorker, batch []event) {
	for _, pi := range w.touched {
		n.deliverPartyBatch(n.parties[pi], batch)
		n.stage[pi] = n.stage[pi][:0]
	}
	w.touched = w.touched[:0]
}

// add folds a per-worker stats delta into s at the tick barrier.
func (s *Stats) add(d *Stats) {
	s.MessagesSent += d.MessagesSent
	s.MessagesDelivered += d.MessagesDelivered
	s.BytesSent += d.BytesSent
	s.HonestMessagesSent += d.HonestMessagesSent
	s.HonestBytesSent += d.HonestBytesSent
	s.MessagesDropped += d.MessagesDropped
	s.MessagesDuped += d.MessagesDuped
}
