package sim

import (
	"errors"
	"testing"
)

// This file pins intra-run sharding (shard.go) to the sequential batched
// path: identical delivery traces, stats, decisions, and errors at every
// shard count, across schedulers (including rng-consuming ones), crash
// plans, timers, mid-tick run completion, budget aborts, and recycled
// networks — the simulator-level form of the byte-identical-tables contract
// in internal/harness.

func TestResolveShards(t *testing.T) {
	cases := []struct {
		cfg, n, want int
	}{
		{1, 1024, 1},                     // explicit sequential
		{4, 1024, 4},                     // explicit count
		{4, 2, 2},                        // clamped to the party count
		{maxShards + 9, 4096, maxShards}, // fleet bound
		{0, 8, 1},                        // auto: small runs stay sequential
	}
	for _, c := range cases {
		if got := resolveShards(c.cfg, c.n); got != c.want {
			t.Errorf("resolveShards(%d, %d) = %d, want %d", c.cfg, c.n, got, c.want)
		}
	}
	// Auto on a large run is bounded by the density heuristic regardless of
	// core count, and never exceeds it.
	if got := resolveShards(0, 4096); got < 1 || got > 4096/shardAutoParties {
		t.Errorf("resolveShards(0, 4096) = %d, want in [1,%d]", got, 4096/shardAutoParties)
	}
}

// runShardTrace executes a chatty mesh at the given shard count and returns
// the delivery trace, result, and run error.
func runShardTrace(t *testing.T, n int, sched Scheduler, shards int, mut func(*Config)) ([]batchRecord, *Result, error) {
	t.Helper()
	cfg := Config{N: n, Scheduler: sched, Seed: 11, Batch: BatchOn, Shards: shards}
	if mut != nil {
		mut(&cfg)
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var trace []batchRecord
	net.SetObserver(func(now Time, env Envelope) {
		trace = append(trace, batchRecord{Now: now, From: env.From, To: env.To, Seq: env.Seq, Len: len(env.Data)})
	})
	for i := 0; i < cfg.N; i++ {
		if err := net.SetProcess(PartyID(i), &chattyProc{need: 40}); err != nil {
			t.Fatal(err)
		}
	}
	res, runErr := net.Run()
	return trace, res, runErr
}

// requireSameRun asserts two (trace, result, error) triples are identical.
func requireSameRun(t *testing.T, label string,
	refTrace []batchRecord, refRes *Result, refErr error,
	gotTrace []batchRecord, gotRes *Result, gotErr error,
) {
	t.Helper()
	if !errors.Is(gotErr, refErr) && !(gotErr == nil && refErr == nil) {
		t.Fatalf("%s: errors diverge: ref %v, got %v", label, refErr, gotErr)
	}
	if len(refTrace) != len(gotTrace) {
		t.Fatalf("%s: trace lengths diverge: ref %d, got %d", label, len(refTrace), len(gotTrace))
	}
	for i := range refTrace {
		if refTrace[i] != gotTrace[i] {
			t.Fatalf("%s: delivery %d diverges: ref %+v, got %+v", label, i, refTrace[i], gotTrace[i])
		}
	}
	if refRes.Stats != gotRes.Stats {
		t.Fatalf("%s: stats diverge: ref %+v, got %+v", label, refRes.Stats, gotRes.Stats)
	}
	if refRes.FinishTime != gotRes.FinishTime || refRes.MaxHonestDelay != gotRes.MaxHonestDelay {
		t.Fatalf("%s: timing diverges: ref (%d,%d), got (%d,%d)", label,
			refRes.FinishTime, refRes.MaxHonestDelay, gotRes.FinishTime, gotRes.MaxHonestDelay)
	}
	if len(refRes.Decisions) != len(gotRes.Decisions) {
		t.Fatalf("%s: decision counts diverge", label)
	}
	for id, v := range refRes.Decisions {
		if gotRes.Decisions[id] != v || gotRes.DecidedAt[id] != refRes.DecidedAt[id] {
			t.Fatalf("%s: party %d decision diverges", label, id)
		}
	}
}

// TestShardTraceEquivalence asserts event-for-event identical delivery
// traces, stats, and decisions between shards=1 and shards in {2,4,8}
// across a scheduler matrix with shared-rng draws and mid-multicast crash
// truncation. At N=12 every worker runs inline on the run goroutine (ticks
// stay under the dispatch threshold), isolating the merge logic itself;
// the goroutine dispatch path is covered by the large-N test below.
func TestShardTraceEquivalence(t *testing.T) {
	scheds := map[string]func() Scheduler{
		"const":  func() Scheduler { return constDelay{d: 5} },
		"random": func() Scheduler { return rngSched{max: 9} },
		"skewed": func() Scheduler { return fromSched{} },
	}
	muts := map[string]func(*Config){
		"fault-free": nil,
		"crash": func(cfg *Config) {
			cfg.Crashes = []CrashPlan{{Party: 1, AfterSends: 9}, {Party: 4, AfterSends: 20}}
		},
	}
	for sname, mk := range scheds {
		for mname, mut := range muts {
			t.Run(sname+"/"+mname, func(t *testing.T) {
				refTrace, refRes, refErr := runShardTrace(t, 12, mk(), 1, mut)
				for _, shards := range []int{2, 4, 8} {
					gotTrace, gotRes, gotErr := runShardTrace(t, 12, mk(), shards, mut)
					requireSameRun(t, sname+"/"+mname, refTrace, refRes, refErr, gotTrace, gotRes, gotErr)
				}
			})
		}
	}
}

// TestShardTraceEquivalenceParallel runs a mesh large enough that dense
// ticks exceed the goroutine dispatch threshold (N=64 multicast storms are
// 4096-event ticks >= 8*shardParEventsPerWorker), so the concurrent worker
// path — not just the inline loop — must reproduce the sequential streams.
// Run with -race this doubles as the data-race proof for the worker phase.
func TestShardTraceEquivalenceParallel(t *testing.T) {
	for _, mk := range []struct {
		name  string
		sched func() Scheduler
	}{
		{"const", func() Scheduler { return constDelay{d: 5} }},
		{"random", func() Scheduler { return rngSched{max: 4} }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			crash := func(cfg *Config) {
				cfg.Crashes = []CrashPlan{{Party: 3, AfterSends: 70}, {Party: 40, AfterSends: 130}}
			}
			refTrace, refRes, refErr := runShardTrace(t, 64, mk.sched(), 1, crash)
			for _, shards := range []int{2, 8} {
				gotTrace, gotRes, gotErr := runShardTrace(t, 64, mk.sched(), shards, crash)
				requireSameRun(t, mk.name, refTrace, refRes, refErr, gotTrace, gotRes, gotErr)
			}
		})
	}
}

// TestShardBudgetEquivalence pins the event-budget abort under sharding:
// the budget-tripping tick is handed to the sequential reference loop, so
// the aborted prefix must match shards=1 event for event.
func TestShardBudgetEquivalence(t *testing.T) {
	for _, budget := range []int{7, 23, 50} {
		mut := func(cfg *Config) { cfg.MaxEvents = budget }
		refTrace, refRes, refErr := runShardTrace(t, 12, constDelay{d: 3}, 1, mut)
		if !errors.Is(refErr, ErrEventBudget) {
			t.Fatalf("budget %d: reference run did not trip the budget: %v", budget, refErr)
		}
		gotTrace, gotRes, gotErr := runShardTrace(t, 12, constDelay{d: 3}, 4, mut)
		requireSameRun(t, "budget", refTrace, refRes, refErr, gotTrace, gotRes, gotErr)
	}
}

// TestShardMidTickCompletion pins the completion repair under sharding: all
// parties decide in the same dense tick, and the merged decideTrig must cut
// the flush at the same event the sequential loop stops at.
func TestShardMidTickCompletion(t *testing.T) {
	run := func(shards int) (*Result, Stats) {
		cfg := Config{N: 8, Scheduler: constDelay{d: 4}, Seed: 3, Batch: BatchOn, Shards: shards}
		net, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cfg.N; i++ {
			if err := net.SetProcess(PartyID(i), &chattyProc{need: 25}); err != nil {
				t.Fatal(err)
			}
		}
		res, runErr := net.Run()
		if runErr != nil {
			t.Fatalf("shards=%d run failed: %v", shards, runErr)
		}
		return res, res.Stats
	}
	refRes, refStats := run(1)
	for _, shards := range []int{2, 4, 8} {
		gotRes, gotStats := run(shards)
		if refStats != gotStats {
			t.Fatalf("shards=%d: stats diverge: ref %+v, got %+v", shards, refStats, gotStats)
		}
		if refRes.FinishTime != gotRes.FinishTime {
			t.Fatalf("shards=%d: finish time diverges: ref %d, got %d", shards, refRes.FinishTime, gotRes.FinishTime)
		}
		for id, v := range refRes.Decisions {
			if gotRes.Decisions[id] != v {
				t.Fatalf("shards=%d: party %d decision diverges", shards, id)
			}
		}
	}
}

// TestShardRecycledNetworkEquivalence pins Reset's per-shard scratch
// recycling: a network that just ran at shards=8 and is Reset to a
// different shard count must reproduce a fresh network's run exactly
// (worker pend lists, arenas, touched lists all rewound).
func TestShardRecycledNetworkEquivalence(t *testing.T) {
	cfg := Config{N: 12, Scheduler: constDelay{d: 5}, Seed: 11, Batch: BatchOn, Shards: 8}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	attach := func() {
		for i := 0; i < cfg.N; i++ {
			if err := net.SetProcess(PartyID(i), &chattyProc{need: 40}); err != nil {
				t.Fatal(err)
			}
		}
	}
	attach()
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4, 8} {
		cfg.Shards = shards
		if err := net.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		var trace []batchRecord
		net.SetObserver(func(now Time, env Envelope) {
			trace = append(trace, batchRecord{Now: now, From: env.From, To: env.To, Seq: env.Seq, Len: len(env.Data)})
		})
		attach()
		res, runErr := net.Run()
		refTrace, refRes, refErr := runShardTrace(t, 12, constDelay{d: 5}, shards, nil)
		requireSameRun(t, "recycled", refTrace, refRes, refErr, trace, res, runErr)
	}
}

// TestShardConfigValidation covers the new Config field's validation.
func TestShardConfigValidation(t *testing.T) {
	cfg := Config{N: 4, Scheduler: constDelay{d: 1}, Shards: -1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative Shards accepted")
	}
	cfg.Shards = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("auto Shards rejected: %v", err)
	}
}
