package incident

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/harness"
	"repro/internal/sim"
)

func corpusDir() string {
	return filepath.Join("..", "..", "testdata", "incidents")
}

// TestIncidentCorpusReplayMatrix is the CI regression gate: every committed
// bundle must replay with zero divergence across {calendar, heap} event
// cores × batch {on, off} × engine parallelism {1, 8} × intra-run shards
// {1, 4}. A regression in any equivalence-sensitive path (send sequencing,
// rng draw order, mid-tick completion, stats repair, trim/quorum logic, the
// sharded barrier merge) perturbs some episode's schedule and fails here
// with the episode name, the matrix cell, and the first divergent send
// sequence. The shards axis also pins that the shard count cannot leak into
// a bundle digest: delay logs are keyed by send Seq, whose stream is
// identical at every shard count.
//
// Set INCIDENT_REGEN=1 to re-capture the corpus from the episode
// definitions before the matrix runs (used when an episode is added, never
// to paper over a divergence).
func TestIncidentCorpusReplayMatrix(t *testing.T) {
	dir := corpusDir()
	if os.Getenv("INCIDENT_REGEN") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, ep := range Episodes() {
			rep, err := Capture(ep)
			if err != nil {
				t.Fatalf("capture %s: %v", ep.Name, err)
			}
			t.Logf("captured %s: %d sends, verdict %q", ep.Name, len(ep.Delays), rep.Failure())
			if err := Save(ep, filepath.Join(dir, ep.Name+BundleExt)); err != nil {
				t.Fatalf("save %s: %v", ep.Name, err)
			}
		}
	}

	bundles, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading corpus: %v (run with INCIDENT_REGEN=1 to generate)", err)
	}
	if want := len(Episodes()); len(bundles) != want {
		t.Fatalf("corpus has %d bundles, episode list has %d", len(bundles), want)
	}

	defer harness.SetEventCore(sim.CoreDefault)
	defer harness.SetBatching(sim.BatchDefault)
	defer harness.SetParallelism(0)
	defer harness.SetSharding(0)
	for _, core := range []sim.EventCore{sim.CoreCalendar, sim.CoreHeap} {
		for _, batch := range []sim.BatchMode{sim.BatchOn, sim.BatchOff} {
			for _, workers := range []int{1, 8} {
				for _, shards := range []int{1, 4} {
					cell := fmt.Sprintf("core=%v batch=%v workers=%d shards=%d", core, batch, workers, shards)
					harness.SetEventCore(core)
					harness.SetBatching(batch)
					harness.SetParallelism(workers)
					harness.SetSharding(shards)

					prepared := make([]*Prepared, len(bundles))
					specs := make([]harness.Spec, len(bundles))
					for i, b := range bundles {
						p, err := Prepare(b)
						if err != nil {
							t.Fatalf("%s: prepare %s: %v", cell, b.Name, err)
						}
						prepared[i] = p
						specs[i] = p.Spec
					}
					reps, err := harness.RunAll(specs)
					if err != nil {
						t.Fatalf("%s: %v", cell, err)
					}
					for i, rep := range reps {
						if div := prepared[i].Diff(rep); div != nil {
							t.Errorf("%s: %s: %v", cell, bundles[i].Name, div.Error())
						}
					}
				}
			}
		}
	}
}

// TestCorpusMutationDetected mutates a committed bundle in memory and
// asserts the replay matrix would catch it: the diff must name the first
// divergent send sequence.
func TestCorpusMutationDetected(t *testing.T) {
	bundles, err := LoadDir(corpusDir())
	if err != nil {
		t.Skipf("no corpus: %v", err)
	}
	// Pick the all-honest contraction episode: every mid-run message there
	// feeds a quorum, so stretching one delay must shift downstream sends
	// and pin a first divergent sequence. (In byz-heavy episodes a mutated
	// spam delay can replay clean — a message the recorded run never
	// delivered stays undelivered when pushed even later.)
	var b *Bundle
	for _, cand := range bundles {
		if cand.Name == "worst-case-contraction" {
			b = cand
			break
		}
	}
	if b == nil {
		t.Fatal("corpus is missing the worst-case-contraction episode")
	}
	seq := -1
	for i := len(b.Delays) / 3; i < len(b.Delays); i++ {
		if b.Delays[i] != 0 {
			seq = i
			break
		}
	}
	if seq < 0 {
		t.Fatalf("%s has no recorded delays past the first third", b.Name)
	}
	b.Delays[seq] += 5000

	_, div, err := Replay(b)
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatalf("%s: mutated delay at seq %d replayed without divergence", b.Name, seq)
	}
	if div.FirstBadSend == NoDivergentSend {
		t.Fatalf("%s: divergence without a first bad send: %v", b.Name, div.Error())
	}
	t.Logf("%s: mutation at seq %d detected: %v", b.Name, seq, div.Error())
}

// TestCorpusEpisodeNamesUnique guards the regeneration path.
func TestCorpusEpisodeNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, ep := range Episodes() {
		if ep.Name == "" || seen[ep.Name] {
			t.Fatalf("episode name %q empty or duplicated", ep.Name)
		}
		seen[ep.Name] = true
		if err := ep.Validate(); err != nil {
			t.Errorf("episode %s invalid before capture: %v", ep.Name, err)
		}
	}
}
